file(REMOVE_RECURSE
  "CMakeFiles/stamp_runner.dir/stamp_runner.cpp.o"
  "CMakeFiles/stamp_runner.dir/stamp_runner.cpp.o.d"
  "stamp_runner"
  "stamp_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stamp_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
