file(REMOVE_RECURSE
  "CMakeFiles/coarsening_tuning.dir/coarsening_tuning.cpp.o"
  "CMakeFiles/coarsening_tuning.dir/coarsening_tuning.cpp.o.d"
  "coarsening_tuning"
  "coarsening_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsening_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
