# Empty compiler generated dependencies file for coarsening_tuning.
# This may be replaced when dependencies are built.
