# Empty dependencies file for openmp_port.
# This may be replaced when dependencies are built.
