file(REMOVE_RECURSE
  "CMakeFiles/openmp_port.dir/openmp_port.cpp.o"
  "CMakeFiles/openmp_port.dir/openmp_port.cpp.o.d"
  "openmp_port"
  "openmp_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openmp_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
