# Empty compiler generated dependencies file for openmp_port.
# This may be replaced when dependencies are built.
