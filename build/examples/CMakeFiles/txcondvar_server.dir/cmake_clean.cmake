file(REMOVE_RECURSE
  "CMakeFiles/txcondvar_server.dir/txcondvar_server.cpp.o"
  "CMakeFiles/txcondvar_server.dir/txcondvar_server.cpp.o.d"
  "txcondvar_server"
  "txcondvar_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txcondvar_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
