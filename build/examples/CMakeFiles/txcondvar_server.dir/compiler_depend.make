# Empty compiler generated dependencies file for txcondvar_server.
# This may be replaced when dependencies are built.
