# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sync_locks_test[1]_include.cmake")
include("/root/repo/build/tests/sync_elision_test[1]_include.cmake")
include("/root/repo/build/tests/sync_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/stm_tl2_test[1]_include.cmake")
include("/root/repo/build/tests/tmlib_test[1]_include.cmake")
include("/root/repo/build/tests/containers_test[1]_include.cmake")
include("/root/repo/build/tests/clomp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_readevict_test[1]_include.cmake")
include("/root/repo/build/tests/stamp_test[1]_include.cmake")
include("/root/repo/build/tests/rmstm_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/netstack_test[1]_include.cmake")
include("/root/repo/build/tests/rbtree_test[1]_include.cmake")
include("/root/repo/build/tests/sync_hle_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/omp_shim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_test[1]_include.cmake")
