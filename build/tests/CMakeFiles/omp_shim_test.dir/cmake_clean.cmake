file(REMOVE_RECURSE
  "CMakeFiles/omp_shim_test.dir/omp_shim_test.cc.o"
  "CMakeFiles/omp_shim_test.dir/omp_shim_test.cc.o.d"
  "omp_shim_test"
  "omp_shim_test.pdb"
  "omp_shim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp_shim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
