# Empty compiler generated dependencies file for omp_shim_test.
# This may be replaced when dependencies are built.
