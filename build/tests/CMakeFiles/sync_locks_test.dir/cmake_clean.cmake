file(REMOVE_RECURSE
  "CMakeFiles/sync_locks_test.dir/sync_locks_test.cc.o"
  "CMakeFiles/sync_locks_test.dir/sync_locks_test.cc.o.d"
  "sync_locks_test"
  "sync_locks_test.pdb"
  "sync_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
