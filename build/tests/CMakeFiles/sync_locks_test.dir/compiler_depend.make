# Empty compiler generated dependencies file for sync_locks_test.
# This may be replaced when dependencies are built.
