file(REMOVE_RECURSE
  "CMakeFiles/clomp_test.dir/clomp_test.cc.o"
  "CMakeFiles/clomp_test.dir/clomp_test.cc.o.d"
  "clomp_test"
  "clomp_test.pdb"
  "clomp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clomp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
