# Empty dependencies file for clomp_test.
# This may be replaced when dependencies are built.
