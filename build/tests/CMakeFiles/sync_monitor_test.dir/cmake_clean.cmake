file(REMOVE_RECURSE
  "CMakeFiles/sync_monitor_test.dir/sync_monitor_test.cc.o"
  "CMakeFiles/sync_monitor_test.dir/sync_monitor_test.cc.o.d"
  "sync_monitor_test"
  "sync_monitor_test.pdb"
  "sync_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
