file(REMOVE_RECURSE
  "CMakeFiles/sim_readevict_test.dir/sim_readevict_test.cc.o"
  "CMakeFiles/sim_readevict_test.dir/sim_readevict_test.cc.o.d"
  "sim_readevict_test"
  "sim_readevict_test.pdb"
  "sim_readevict_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_readevict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
