# Empty dependencies file for sync_elision_test.
# This may be replaced when dependencies are built.
