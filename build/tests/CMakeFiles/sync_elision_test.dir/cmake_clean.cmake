file(REMOVE_RECURSE
  "CMakeFiles/sync_elision_test.dir/sync_elision_test.cc.o"
  "CMakeFiles/sync_elision_test.dir/sync_elision_test.cc.o.d"
  "sync_elision_test"
  "sync_elision_test.pdb"
  "sync_elision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_elision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
