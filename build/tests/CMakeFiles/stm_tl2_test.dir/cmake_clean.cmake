file(REMOVE_RECURSE
  "CMakeFiles/stm_tl2_test.dir/stm_tl2_test.cc.o"
  "CMakeFiles/stm_tl2_test.dir/stm_tl2_test.cc.o.d"
  "stm_tl2_test"
  "stm_tl2_test.pdb"
  "stm_tl2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stm_tl2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
