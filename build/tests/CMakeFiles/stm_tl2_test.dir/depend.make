# Empty dependencies file for stm_tl2_test.
# This may be replaced when dependencies are built.
