# Empty compiler generated dependencies file for rmstm_test.
# This may be replaced when dependencies are built.
