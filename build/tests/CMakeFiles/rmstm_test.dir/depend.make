# Empty dependencies file for rmstm_test.
# This may be replaced when dependencies are built.
