file(REMOVE_RECURSE
  "CMakeFiles/rmstm_test.dir/rmstm_test.cc.o"
  "CMakeFiles/rmstm_test.dir/rmstm_test.cc.o.d"
  "rmstm_test"
  "rmstm_test.pdb"
  "rmstm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
