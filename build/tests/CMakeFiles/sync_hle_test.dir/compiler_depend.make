# Empty compiler generated dependencies file for sync_hle_test.
# This may be replaced when dependencies are built.
