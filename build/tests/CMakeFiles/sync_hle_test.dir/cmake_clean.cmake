file(REMOVE_RECURSE
  "CMakeFiles/sync_hle_test.dir/sync_hle_test.cc.o"
  "CMakeFiles/sync_hle_test.dir/sync_hle_test.cc.o.d"
  "sync_hle_test"
  "sync_hle_test.pdb"
  "sync_hle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_hle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
