# Empty compiler generated dependencies file for tmlib_test.
# This may be replaced when dependencies are built.
