file(REMOVE_RECURSE
  "CMakeFiles/tmlib_test.dir/tmlib_test.cc.o"
  "CMakeFiles/tmlib_test.dir/tmlib_test.cc.o.d"
  "tmlib_test"
  "tmlib_test.pdb"
  "tmlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
