# Empty compiler generated dependencies file for fig1_clomp.
# This may be replaced when dependencies are built.
