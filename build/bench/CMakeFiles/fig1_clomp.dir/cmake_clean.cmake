file(REMOVE_RECURSE
  "CMakeFiles/fig1_clomp.dir/fig1_clomp.cc.o"
  "CMakeFiles/fig1_clomp.dir/fig1_clomp.cc.o.d"
  "fig1_clomp"
  "fig1_clomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_clomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
