file(REMOVE_RECURSE
  "CMakeFiles/fig4_realworld.dir/fig4_realworld.cc.o"
  "CMakeFiles/fig4_realworld.dir/fig4_realworld.cc.o.d"
  "fig4_realworld"
  "fig4_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
