# Empty compiler generated dependencies file for fig4_realworld.
# This may be replaced when dependencies are built.
