# Empty dependencies file for table1_aborts.
# This may be replaced when dependencies are built.
