file(REMOVE_RECURSE
  "CMakeFiles/table1_aborts.dir/table1_aborts.cc.o"
  "CMakeFiles/table1_aborts.dir/table1_aborts.cc.o.d"
  "table1_aborts"
  "table1_aborts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
