# Empty compiler generated dependencies file for fig2_stamp.
# This may be replaced when dependencies are built.
