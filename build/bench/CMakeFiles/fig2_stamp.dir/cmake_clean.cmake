file(REMOVE_RECURSE
  "CMakeFiles/fig2_stamp.dir/fig2_stamp.cc.o"
  "CMakeFiles/fig2_stamp.dir/fig2_stamp.cc.o.d"
  "fig2_stamp"
  "fig2_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
