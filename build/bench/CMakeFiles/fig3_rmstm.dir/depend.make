# Empty dependencies file for fig3_rmstm.
# This may be replaced when dependencies are built.
