file(REMOVE_RECURSE
  "CMakeFiles/fig3_rmstm.dir/fig3_rmstm.cc.o"
  "CMakeFiles/fig3_rmstm.dir/fig3_rmstm.cc.o.d"
  "fig3_rmstm"
  "fig3_rmstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rmstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
