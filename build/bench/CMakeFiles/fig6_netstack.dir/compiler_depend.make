# Empty compiler generated dependencies file for fig6_netstack.
# This may be replaced when dependencies are built.
