file(REMOVE_RECURSE
  "CMakeFiles/fig6_netstack.dir/fig6_netstack.cc.o"
  "CMakeFiles/fig6_netstack.dir/fig6_netstack.cc.o.d"
  "fig6_netstack"
  "fig6_netstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_netstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
