# Empty dependencies file for ablation_hle_rtm.
# This may be replaced when dependencies are built.
