file(REMOVE_RECURSE
  "CMakeFiles/ablation_hle_rtm.dir/ablation_hle_rtm.cc.o"
  "CMakeFiles/ablation_hle_rtm.dir/ablation_hle_rtm.cc.o.d"
  "ablation_hle_rtm"
  "ablation_hle_rtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hle_rtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
