
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_retry.cc" "bench/CMakeFiles/ablation_retry.dir/ablation_retry.cc.o" "gcc" "bench/CMakeFiles/ablation_retry.dir/ablation_retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clomp/CMakeFiles/tsxhpc_clomp.dir/DependInfo.cmake"
  "/root/repo/build/src/stamp/CMakeFiles/tsxhpc_stamp.dir/DependInfo.cmake"
  "/root/repo/build/src/tmlib/CMakeFiles/tsxhpc_tmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsxhpc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsxhpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
