# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("sync")
subdirs("stm")
subdirs("tmlib")
subdirs("containers")
subdirs("clomp")
subdirs("stamp")
subdirs("rmstm")
subdirs("apps")
subdirs("netstack")
subdirs("netapps")
