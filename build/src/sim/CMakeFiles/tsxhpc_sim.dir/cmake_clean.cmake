file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_sim.dir/context.cc.o"
  "CMakeFiles/tsxhpc_sim.dir/context.cc.o.d"
  "CMakeFiles/tsxhpc_sim.dir/engine.cc.o"
  "CMakeFiles/tsxhpc_sim.dir/engine.cc.o.d"
  "CMakeFiles/tsxhpc_sim.dir/machine.cc.o"
  "CMakeFiles/tsxhpc_sim.dir/machine.cc.o.d"
  "CMakeFiles/tsxhpc_sim.dir/memory.cc.o"
  "CMakeFiles/tsxhpc_sim.dir/memory.cc.o.d"
  "libtsxhpc_sim.a"
  "libtsxhpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
