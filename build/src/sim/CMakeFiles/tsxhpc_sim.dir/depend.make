# Empty dependencies file for tsxhpc_sim.
# This may be replaced when dependencies are built.
