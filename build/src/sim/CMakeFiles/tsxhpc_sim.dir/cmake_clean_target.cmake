file(REMOVE_RECURSE
  "libtsxhpc_sim.a"
)
