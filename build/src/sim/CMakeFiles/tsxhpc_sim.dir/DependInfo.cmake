
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/context.cc" "src/sim/CMakeFiles/tsxhpc_sim.dir/context.cc.o" "gcc" "src/sim/CMakeFiles/tsxhpc_sim.dir/context.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/tsxhpc_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/tsxhpc_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/tsxhpc_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/tsxhpc_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/tsxhpc_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/tsxhpc_sim.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
