# Empty dependencies file for tsxhpc_rmstm.
# This may be replaced when dependencies are built.
