file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_rmstm.dir/apriori.cc.o"
  "CMakeFiles/tsxhpc_rmstm.dir/apriori.cc.o.d"
  "CMakeFiles/tsxhpc_rmstm.dir/fluidanimate.cc.o"
  "CMakeFiles/tsxhpc_rmstm.dir/fluidanimate.cc.o.d"
  "CMakeFiles/tsxhpc_rmstm.dir/registry.cc.o"
  "CMakeFiles/tsxhpc_rmstm.dir/registry.cc.o.d"
  "CMakeFiles/tsxhpc_rmstm.dir/scalparc.cc.o"
  "CMakeFiles/tsxhpc_rmstm.dir/scalparc.cc.o.d"
  "CMakeFiles/tsxhpc_rmstm.dir/utilitymine.cc.o"
  "CMakeFiles/tsxhpc_rmstm.dir/utilitymine.cc.o.d"
  "libtsxhpc_rmstm.a"
  "libtsxhpc_rmstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_rmstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
