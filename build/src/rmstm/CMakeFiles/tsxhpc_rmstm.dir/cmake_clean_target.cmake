file(REMOVE_RECURSE
  "libtsxhpc_rmstm.a"
)
