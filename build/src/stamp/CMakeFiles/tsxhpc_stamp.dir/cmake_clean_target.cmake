file(REMOVE_RECURSE
  "libtsxhpc_stamp.a"
)
