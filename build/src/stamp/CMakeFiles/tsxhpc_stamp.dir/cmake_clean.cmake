file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_stamp.dir/bayes.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/bayes.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/genome.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/genome.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/intruder.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/intruder.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/kmeans.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/kmeans.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/labyrinth.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/labyrinth.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/registry.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/registry.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/ssca2.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/ssca2.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/vacation.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/vacation.cc.o.d"
  "CMakeFiles/tsxhpc_stamp.dir/yada.cc.o"
  "CMakeFiles/tsxhpc_stamp.dir/yada.cc.o.d"
  "libtsxhpc_stamp.a"
  "libtsxhpc_stamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_stamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
