
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stamp/bayes.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/bayes.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/bayes.cc.o.d"
  "/root/repo/src/stamp/genome.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/genome.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/genome.cc.o.d"
  "/root/repo/src/stamp/intruder.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/intruder.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/intruder.cc.o.d"
  "/root/repo/src/stamp/kmeans.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/kmeans.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/kmeans.cc.o.d"
  "/root/repo/src/stamp/labyrinth.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/labyrinth.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/labyrinth.cc.o.d"
  "/root/repo/src/stamp/registry.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/registry.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/registry.cc.o.d"
  "/root/repo/src/stamp/ssca2.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/ssca2.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/ssca2.cc.o.d"
  "/root/repo/src/stamp/vacation.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/vacation.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/vacation.cc.o.d"
  "/root/repo/src/stamp/yada.cc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/yada.cc.o" "gcc" "src/stamp/CMakeFiles/tsxhpc_stamp.dir/yada.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tmlib/CMakeFiles/tsxhpc_tmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsxhpc_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsxhpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
