# Empty dependencies file for tsxhpc_stamp.
# This may be replaced when dependencies are built.
