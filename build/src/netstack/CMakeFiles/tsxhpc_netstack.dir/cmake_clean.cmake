file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_netstack.dir/stack.cc.o"
  "CMakeFiles/tsxhpc_netstack.dir/stack.cc.o.d"
  "libtsxhpc_netstack.a"
  "libtsxhpc_netstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_netstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
