file(REMOVE_RECURSE
  "libtsxhpc_netstack.a"
)
