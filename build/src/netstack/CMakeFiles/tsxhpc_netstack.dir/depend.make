# Empty dependencies file for tsxhpc_netstack.
# This may be replaced when dependencies are built.
