# Empty dependencies file for tsxhpc_tmlib.
# This may be replaced when dependencies are built.
