file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_tmlib.dir/tm.cc.o"
  "CMakeFiles/tsxhpc_tmlib.dir/tm.cc.o.d"
  "libtsxhpc_tmlib.a"
  "libtsxhpc_tmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_tmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
