file(REMOVE_RECURSE
  "libtsxhpc_tmlib.a"
)
