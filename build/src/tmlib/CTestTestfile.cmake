# CMake generated Testfile for 
# Source directory: /root/repo/src/tmlib
# Build directory: /root/repo/build/src/tmlib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
