file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_sync.dir/sync.cc.o"
  "CMakeFiles/tsxhpc_sync.dir/sync.cc.o.d"
  "libtsxhpc_sync.a"
  "libtsxhpc_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
