file(REMOVE_RECURSE
  "libtsxhpc_sync.a"
)
