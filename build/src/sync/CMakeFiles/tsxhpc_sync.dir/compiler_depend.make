# Empty compiler generated dependencies file for tsxhpc_sync.
# This may be replaced when dependencies are built.
