# Empty dependencies file for tsxhpc_clomp.
# This may be replaced when dependencies are built.
