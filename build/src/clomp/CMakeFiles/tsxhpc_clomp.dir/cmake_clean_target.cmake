file(REMOVE_RECURSE
  "libtsxhpc_clomp.a"
)
