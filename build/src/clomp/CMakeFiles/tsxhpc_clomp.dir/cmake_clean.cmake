file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_clomp.dir/clomp.cc.o"
  "CMakeFiles/tsxhpc_clomp.dir/clomp.cc.o.d"
  "libtsxhpc_clomp.a"
  "libtsxhpc_clomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_clomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
