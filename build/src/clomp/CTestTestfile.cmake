# CMake generated Testfile for 
# Source directory: /root/repo/src/clomp
# Build directory: /root/repo/build/src/clomp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
