
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/canneal.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/canneal.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/canneal.cc.o.d"
  "/root/repo/src/apps/graphcluster.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/graphcluster.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/graphcluster.cc.o.d"
  "/root/repo/src/apps/histogram.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/histogram.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/histogram.cc.o.d"
  "/root/repo/src/apps/nufft.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/nufft.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/nufft.cc.o.d"
  "/root/repo/src/apps/physics.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/physics.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/physics.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/ua.cc" "src/apps/CMakeFiles/tsxhpc_apps.dir/ua.cc.o" "gcc" "src/apps/CMakeFiles/tsxhpc_apps.dir/ua.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tsxhpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/tsxhpc_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
