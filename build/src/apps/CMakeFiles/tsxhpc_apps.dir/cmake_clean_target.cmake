file(REMOVE_RECURSE
  "libtsxhpc_apps.a"
)
