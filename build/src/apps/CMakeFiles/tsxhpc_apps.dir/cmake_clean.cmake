file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_apps.dir/canneal.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/canneal.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/graphcluster.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/graphcluster.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/histogram.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/histogram.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/nufft.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/nufft.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/physics.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/physics.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/registry.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/registry.cc.o.d"
  "CMakeFiles/tsxhpc_apps.dir/ua.cc.o"
  "CMakeFiles/tsxhpc_apps.dir/ua.cc.o.d"
  "libtsxhpc_apps.a"
  "libtsxhpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
