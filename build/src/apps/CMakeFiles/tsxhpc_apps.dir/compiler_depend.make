# Empty compiler generated dependencies file for tsxhpc_apps.
# This may be replaced when dependencies are built.
