file(REMOVE_RECURSE
  "CMakeFiles/tsxhpc_netapps.dir/netapps.cc.o"
  "CMakeFiles/tsxhpc_netapps.dir/netapps.cc.o.d"
  "libtsxhpc_netapps.a"
  "libtsxhpc_netapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsxhpc_netapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
