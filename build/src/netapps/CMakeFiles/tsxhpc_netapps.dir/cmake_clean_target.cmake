file(REMOVE_RECURSE
  "libtsxhpc_netapps.a"
)
