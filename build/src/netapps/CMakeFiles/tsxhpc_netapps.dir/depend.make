# Empty dependencies file for tsxhpc_netapps.
# This may be replaced when dependencies are built.
