// sweep: multi-process parameter-grid orchestrator.
//
//   sweep <spec.json> --out=SWEEP_name.json [--jobs=N] [--scale=quick|full]
//         [--bench-dir=DIR] [--cells-dir=DIR] [--timeout=SECS] [--retry=N]
//   sweep <spec.json> --dry-run     print the expanded cell list and the
//                                   exact child argv, without executing
//
// The spec (tsxhpc-sweepspec-v1, see DESIGN.md §9) names a bench binary and
// the flag axes to cross. Each cell of the cross product runs as an
// independent child process — the simulator is single-threaded and
// deterministic in virtual time, so host-level process parallelism is free —
// with its telemetry artifact landing in --cells-dir. Failed or timed-out
// cells are retried once; a cell that fails twice prints its captured stderr
// and fails the sweep. When every cell has succeeded, the per-cell artifacts
// are merged in expansion order into one tsxhpc-sweep-v1 grid artifact
// (byte-identical whatever --jobs was; tsx_report renders and diffs it).
//
// Exit codes: 0 ok, 1 cell failure(s), 2 usage/spec/merge error.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.h"
#include "sim/fsio.h"
#include "sim/json_parse.h"
#include "sim/report.h"
#include "sim/sweep.h"

namespace {

using tsxhpc::sim::JsonParser;
using tsxhpc::sim::JsonValue;
using tsxhpc::sim::SweepCell;
using tsxhpc::sim::SweepSpec;

double monotonic_now() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Zero-padded expansion index: stable per-cell file names that need no
/// label sanitization.
std::string cell_stem(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%05zu", index);
  return buf;
}

struct CellRun {
  std::size_t index = 0;       // position in the expansion order
  int attempts = 0;            // 1 on first launch, 2 on the retry
  pid_t pid = -1;
  double deadline = 0.0;       // CLOCK_MONOTONIC seconds; 0 = no timeout
  bool timed_out = false;
};

class Orchestrator {
 public:
  Orchestrator(std::vector<SweepCell> cells, std::string bench_path,
               std::vector<std::string> common_args, std::string cells_dir,
               int jobs, double timeout_s, int retries)
      : cells_(std::move(cells)),
        bench_path_(std::move(bench_path)),
        common_args_(std::move(common_args)),
        cells_dir_(std::move(cells_dir)),
        jobs_(jobs < 1 ? 1 : jobs),
        timeout_s_(timeout_s),
        retries_(retries) {}

  std::string artifact_path(std::size_t index) const {
    return cells_dir_ + "/" + cell_stem(index) + ".json";
  }
  std::string stderr_path(std::size_t index) const {
    return cells_dir_ + "/" + cell_stem(index) + ".stderr";
  }
  std::string stdout_path(std::size_t index) const {
    return cells_dir_ + "/" + cell_stem(index) + ".stdout";
  }

  std::vector<std::string> child_argv(std::size_t index) const {
    std::vector<std::string> argv;
    argv.push_back(bench_path_);
    for (const std::string& a : common_args_) argv.push_back(a);
    for (const std::string& f : cells_[index].flags) argv.push_back(f);
    argv.push_back("--json=" + artifact_path(index));
    return argv;
  }

  /// Run the whole grid; returns the number of cells that failed for good.
  int run() {
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < cells_.size(); ++i) queue.push_back(i);
    // FIFO over expansion order: deterministic launch order at --jobs=1.
    std::size_t next = 0;
    std::vector<CellRun> running;
    int failed = 0;
    std::size_t done = 0;
    while (next < queue.size() || !running.empty()) {
      while (next < queue.size() &&
             running.size() < static_cast<std::size_t>(jobs_)) {
        CellRun r;
        r.index = queue[next++];
        r.attempts = attempts_[r.index] + 1;
        if (!launch(r)) {
          std::fprintf(stderr, "sweep: cannot launch cell %s\n",
                       cells_[r.index].label.c_str());
          return ++failed;
        }
        running.push_back(r);
      }
      reap_one(running, queue, failed, done);
    }
    return failed;
  }

 private:
  bool launch(CellRun& r) {
    const std::vector<std::string> argv = child_argv(r.index);
    std::vector<char*> cargv;
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0) return false;
    if (pid == 0) {
      // Child: stdout/stderr go to per-cell capture files; stderr is shown
      // on final failure.
      const int out = open(stdout_path(r.index).c_str(),
                           O_CREAT | O_WRONLY | O_TRUNC, 0644);
      const int err = open(stderr_path(r.index).c_str(),
                           O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (out >= 0) dup2(out, 1);
      if (err >= 0) dup2(err, 2);
      execv(cargv[0], cargv.data());
      std::fprintf(stderr, "sweep: execv %s: %s\n", cargv[0],
                   std::strerror(errno));
      _exit(127);
    }
    attempts_[r.index] = r.attempts;
    r.pid = pid;
    r.deadline = timeout_s_ > 0 ? monotonic_now() + timeout_s_ : 0.0;
    return true;
  }

  void reap_one(std::vector<CellRun>& running, std::vector<std::size_t>& queue,
                int& failed, std::size_t& done) {
    for (;;) {
      // Kill any child past its wall-clock deadline (virtual time cannot
      // hang; this guards real bugs — livelocked children, bad flags that
      // stall on a tty, ...).
      const double now = monotonic_now();
      for (CellRun& r : running) {
        if (r.deadline > 0 && now > r.deadline && !r.timed_out) {
          r.timed_out = true;
          kill(r.pid, SIGKILL);
        }
      }
      int status = 0;
      const pid_t pid = waitpid(-1, &status, WNOHANG);
      if (pid > 0) {
        for (std::size_t i = 0; i < running.size(); ++i) {
          if (running[i].pid != pid) continue;
          finish(running[i], status, queue, failed, done);
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
        continue;  // not one of ours (cannot happen in practice)
      }
      if (running.empty()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void finish(const CellRun& r, int status, std::vector<std::size_t>& queue,
              int& failed, std::size_t& done) {
    const bool exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::string artifact_err;
    const bool ok = exited_ok && !r.timed_out &&
                    validate_artifact(artifact_path(r.index), &artifact_err);
    if (ok) {
      done++;
      std::printf("sweep: [%zu/%zu] %s ok%s\n", done, cells_.size(),
                  cells_[r.index].label.c_str(),
                  r.attempts > 1 ? " (on retry)" : "");
      std::fflush(stdout);
      return;
    }
    std::string why;
    if (r.timed_out) {
      why = "timed out after " + std::to_string(timeout_s_) + "s";
    } else if (WIFSIGNALED(status)) {
      why = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (!exited_ok) {
      why = "exit code " + std::to_string(WEXITSTATUS(status));
    } else {
      why = "bad artifact: " + artifact_err;
    }
    if (r.attempts <= retries_) {
      std::fprintf(stderr, "sweep: cell %s %s — retrying\n",
                   cells_[r.index].label.c_str(), why.c_str());
      queue.push_back(r.index);
      return;
    }
    failed++;
    std::fprintf(stderr, "sweep: cell %s FAILED (%s, %d attempt(s))\n",
                 cells_[r.index].label.c_str(), why.c_str(), r.attempts);
    std::string err_text;
    if (tsxhpc::sim::read_file(stderr_path(r.index), err_text) &&
        !err_text.empty()) {
      std::fprintf(stderr, "sweep: --- captured stderr (%s) ---\n%s%s",
                   cells_[r.index].label.c_str(), err_text.c_str(),
                   err_text.back() == '\n' ? "" : "\n");
    }
  }

  static bool validate_artifact(const std::string& path, std::string* error) {
    std::string text;
    if (!tsxhpc::sim::read_file(path, text)) {
      *error = "missing telemetry artifact " + path;
      return false;
    }
    std::string parse_err;
    const JsonValue doc = JsonParser::parse(text, &parse_err);
    if (doc.is_null()) {
      *error = path + ": " + parse_err;
      return false;
    }
    if (!tsxhpc::sim::is_telemetry_doc(doc)) {
      *error = path + " is not a tsxhpc-telemetry artifact";
      return false;
    }
    return true;
  }

  std::vector<SweepCell> cells_;
  std::string bench_path_;
  std::vector<std::string> common_args_;
  std::string cells_dir_;
  int jobs_;
  double timeout_s_;
  int retries_;
  std::map<std::size_t, int> attempts_;
};

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

}  // namespace

int main(int argc, char** argv) {
  tsxhpc::bench::Args args(
      "sweep", "expand a parameter-grid spec, shard the cells across host "
               "cores, merge the telemetry into one tsxhpc-sweep-v1 artifact");
  std::string spec_path, out_path, bench_dir, cells_dir, scale = "quick";
  bool dry_run = false, cli_markdown = false;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  double timeout_s = 300.0;
  int retries = 1;
  // The positional is checked manually after parse so --cli-markdown works
  // without a spec.
  args.add_positional("spec", "tsxhpc-sweepspec-v1 JSON file", &spec_path,
                      false);
  args.add_string("out", "merged grid artifact path (default: SWEEP_<name>."
                         "json)", &out_path);
  args.add_bool("dry-run", "print the expanded cells and exact child argv "
                           "without executing", &dry_run);
  args.add_int("jobs", "max concurrent cell processes (default: host cores)",
               &jobs);
  args.add_string("scale", "which per-scale flag set to append: quick or "
                           "full", &scale);
  args.add_string("bench-dir", "directory holding the bench binaries "
                               "(default: <sweep-binary-dir>/../bench)",
                  &bench_dir);
  args.add_string("cells-dir", "per-cell artifact/log directory (default: "
                               "<out>.cells)", &cells_dir);
  args.add_double("timeout", "per-cell wall-clock timeout in seconds "
                             "(0 = none)", &timeout_s);
  args.add_int("retry", "relaunch a failed/timed-out cell this many times",
               &retries);
  args.add_bool("cli-markdown",
                "print the flag table as markdown and exit (the "
                "EXPERIMENTS.md CLI reference is generated from this)",
                &cli_markdown);
  if (!args.parse(argc, argv)) return args.exit_code();
  if (cli_markdown) {
    std::printf("### `sweep`\n\n%s", args.markdown().c_str());
    return 0;
  }
  if (spec_path.empty()) {
    return args.fail("missing required argument <spec>");
  }
  if (scale != "quick" && scale != "full") {
    return args.fail("bad value for '--scale': '" + scale +
                     "' (expected quick or full)");
  }

  std::string spec_text;
  if (!tsxhpc::sim::read_file(spec_path, spec_text)) {
    std::fprintf(stderr, "sweep: cannot read %s\n", spec_path.c_str());
    return 2;
  }
  std::string err;
  const JsonValue spec_doc = JsonParser::parse(spec_text, &err);
  if (spec_doc.is_null()) {
    std::fprintf(stderr, "sweep: %s: parse error: %s\n", spec_path.c_str(),
                 err.c_str());
    return 2;
  }
  SweepSpec spec;
  if (!tsxhpc::sim::parse_sweep_spec(spec_doc, spec, &err)) {
    std::fprintf(stderr, "sweep: %s: %s\n", spec_path.c_str(), err.c_str());
    return 2;
  }
  const std::vector<SweepCell> cells = tsxhpc::sim::expand_cells(spec);
  const std::vector<std::string> common = spec.args_for_scale(scale);
  if (bench_dir.empty()) bench_dir = dirname_of(argv[0]) + "/../bench";
  const std::string bench_path = bench_dir + "/" + spec.bench;
  if (out_path.empty()) out_path = "SWEEP_" + spec.name + ".json";
  if (cells_dir.empty()) cells_dir = out_path + ".cells";

  Orchestrator orch(cells, bench_path, common, cells_dir, jobs, timeout_s,
                    retries);
  if (dry_run) {
    std::printf("sweep %s: bench=%s scale=%s cells=%zu\n", spec.name.c_str(),
                bench_path.c_str(), scale.c_str(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%s %s:", cell_stem(i).c_str(), cells[i].label.c_str());
      for (const std::string& a : orch.child_argv(i)) {
        std::printf(" %s", a.c_str());
      }
      std::printf("\n");
    }
    return 0;
  }

  if (access(bench_path.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "sweep: bench binary %s is not executable "
                         "(--bench-dir?)\n", bench_path.c_str());
    return 2;
  }
  if (mkdir(cells_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "sweep: cannot create %s: %s\n", cells_dir.c_str(),
                 std::strerror(errno));
    return 2;
  }
  std::printf("sweep %s: %zu cells, --jobs=%d, bench=%s\n", spec.name.c_str(),
              cells.size(), jobs, bench_path.c_str());
  const int failed = orch.run();
  if (failed > 0) {
    std::fprintf(stderr, "sweep: %d cell(s) failed; not merging\n", failed);
    return 1;
  }

  // Merge in expansion order: the artifact bytes are independent of --jobs.
  std::vector<std::string> artifacts(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!tsxhpc::sim::read_file(orch.artifact_path(i), artifacts[i])) {
      std::fprintf(stderr, "sweep: lost cell artifact %s\n",
                   orch.artifact_path(i).c_str());
      return 2;
    }
  }
  const std::string merged =
      tsxhpc::sim::merge_sweep(spec, scale, common, cells, artifacts);
  if (!tsxhpc::sim::atomic_write_file(out_path, merged)) {
    std::fprintf(stderr, "sweep: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("sweep: merged %zu cells -> %s (%zu bytes)\n", cells.size(),
              out_path.c_str(), merged.size());
  return 0;
}
