// simspeed: measures the *simulator's* host-side speed — wall-clock
// nanoseconds per simulated cycle — for each execution backend, on a
// handoff-heavy microbenchmark: N simulated threads advancing in lockstep,
// so the scheduler transfers control roughly every `sched_quantum` cycles.
// That makes the run a nearly pure measurement of backend handoff cost,
// which is exactly where the fiber backend earns its keep (a userspace
// context swap vs. an OS condvar signal/wait round trip per transfer).
//
// Emits a BENCH_simspeed.json entry (schema tsxhpc-simspeed-v1) so CI can
// archive the numbers, and exits non-zero if the two backends disagree on
// the simulated makespan (they must be bit-identical by design).
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/args.h"
#include "sim/machine.h"

using namespace tsxhpc;
using sim::BackendKind;
using sim::Context;
using sim::Machine;

namespace {

struct Measurement {
  BackendKind kind;
  sim::Cycles makespan = 0;   // simulated cycles (must match across backends)
  double wall_ns = 0;         // best-of-reps host wall clock for the run
  double ns_per_cycle = 0;
  double ns_per_handoff = 0;
};

Measurement measure(BackendKind kind, int threads, sim::Cycles quantum,
                    sim::Cycles cycles_per_thread, int reps) {
  Measurement out;
  out.kind = kind;
  for (int rep = 0; rep < reps; ++rep) {
    sim::MachineConfig cfg;
    cfg.backend = kind;
    cfg.sched_quantum = quantum;
    Machine m(cfg);
    sim::RunSpec spec;
    spec.threads = threads;
    spec.label = "handoff";
    spec.body = [cycles_per_thread](Context& c) {
      // Lockstep compute: every thread advances at the same rate, so the
      // token rotates through all N threads once per quantum-sized slice.
      while (c.now() < cycles_per_thread) c.compute(50);
    };
    const auto t0 = std::chrono::steady_clock::now();
    const sim::RunStats rs = m.run(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (rep == 0 || ns < out.wall_ns) out.wall_ns = ns;
    out.makespan = rs.makespan;
  }
  out.ns_per_cycle = out.wall_ns / static_cast<double>(out.makespan);
  // Every thread yields the token once its clock leads by ~quantum; with N
  // threads in lockstep that is about N transfers per quantum of makespan.
  const double handoffs = static_cast<double>(out.makespan) /
                          static_cast<double>(quantum) * threads;
  out.ns_per_handoff = out.wall_ns / handoffs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args("simspeed",
                   "host wall-clock per simulated cycle, per backend");
  int threads = 8;
  std::size_t quantum = 200;
  std::size_t kcycles = 4000;  // simulated kilocycles per thread
  int reps = 3;
  bool quick = false;
  std::string json_path = "BENCH_simspeed.json";
  args.add_int("threads", "simulated threads handing off", &threads);
  args.add_size("quantum", "scheduler quantum in simulated cycles", &quantum);
  args.add_size("kcycles", "simulated kilocycles per thread", &kcycles);
  args.add_int("reps", "repetitions per backend (best is reported)", &reps);
  args.add_bool("quick", "reduced cycle budget (CI smoke runs)", &quick);
  args.add_string("json", "write results to this path (empty = skip)",
                  &json_path);
  if (!args.parse(argc, argv)) return args.exit_code();
  if (threads < 2) return args.fail("--threads must be >= 2 (handoffs!)");
  if (quick) kcycles = kcycles / 4;

  const sim::Cycles per_thread = static_cast<sim::Cycles>(kcycles) * 1000;
  std::printf("simspeed: %d threads, quantum %zu, %zu kcycles/thread, "
              "best of %d reps\n\n",
              threads, quantum, kcycles, reps);

  const Measurement fiber = measure(BackendKind::kFiber, threads, quantum,
                                    per_thread, reps);
  const Measurement thread = measure(BackendKind::kThread, threads, quantum,
                                     per_thread, reps);

  for (const Measurement* m : {&fiber, &thread}) {
    std::printf("%-7s makespan %llu cyc  wall %8.2f ms  %7.3f ns/cyc  "
                "%8.1f ns/handoff\n",
                sim::to_string(m->kind),
                static_cast<unsigned long long>(m->makespan),
                m->wall_ns / 1e6, m->ns_per_cycle, m->ns_per_handoff);
  }

  const double speedup = thread.wall_ns / fiber.wall_ns;
  std::printf("\nfiber speedup over thread backend: %.1fx\n", speedup);

  if (fiber.makespan != thread.makespan) {
    std::fprintf(stderr,
                 "simspeed: DETERMINISM VIOLATION: fiber makespan %llu != "
                 "thread makespan %llu\n",
                 static_cast<unsigned long long>(fiber.makespan),
                 static_cast<unsigned long long>(thread.makespan));
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "simspeed: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"tsxhpc-simspeed-v1\",\n"
                 "  \"threads\": %d,\n"
                 "  \"sched_quantum\": %zu,\n"
                 "  \"sim_cycles\": %llu,\n"
                 "  \"backends\": [\n",
                 threads, quantum,
                 static_cast<unsigned long long>(fiber.makespan));
    bool first = true;
    for (const Measurement* m : {&fiber, &thread}) {
      std::fprintf(f,
                   "%s    {\"backend\": \"%s\", \"wall_ns\": %.0f, "
                   "\"ns_per_sim_cycle\": %.4f, \"ns_per_handoff\": %.1f}",
                   first ? "" : ",\n", sim::to_string(m->kind), m->wall_ns,
                   m->ns_per_cycle, m->ns_per_handoff);
      first = false;
    }
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"fiber_speedup_vs_thread\": %.2f\n"
                 "}\n",
                 speedup);
    std::fclose(f);
    std::printf("simspeed: wrote %s\n", json_path.c_str());
  }
  return 0;
}
