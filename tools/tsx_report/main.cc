// tsx_report: offline analyzer for tsxhpc-telemetry JSON artifacts.
//
//   tsx_report <artifact.json>            print the abort-diagnosis report
//   tsx_report --diff <base.json> <cur.json> [--max-abort-rate-pp=X]
//                                         [--max-wasted-pp=X]
//                                         compare two artifacts; exit 1 when
//                                         the abort rate or the wasted-cycle
//                                         fraction regresses past a threshold
//   tsx_report --top=N <artifact.json>    show N conflict lines (default 10)
//
// Exit codes: 0 ok, 1 regression(s) found (diff mode), 2 usage or I/O error.
#include <cstdio>
#include <string>

#include "bench/args.h"
#include "sim/json_parse.h"
#include "sim/report.h"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

bool load_doc(const std::string& path, tsxhpc::sim::JsonValue& doc) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "tsx_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  doc = tsxhpc::sim::JsonParser::parse(text, &err);
  if (doc.is_null()) {
    std::fprintf(stderr, "tsx_report: %s: parse error: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  if (!tsxhpc::sim::is_telemetry_doc(doc)) {
    std::fprintf(stderr, "tsx_report: %s is not a tsxhpc-telemetry artifact\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tsxhpc::bench::Args args("tsx_report",
                           "analyze/diff tsxhpc-telemetry JSON artifacts");
  bool diff = false;
  std::size_t top = 10;
  tsxhpc::sim::DiffThresholds thr;
  std::string path0, path1;
  args.add_bool("diff", "compare two artifacts; exit 1 on regression", &diff);
  args.add_size("top", "conflict lines to show in the report", &top);
  args.add_double("max-abort-rate-pp",
                  "diff: allowed abort-rate increase (percentage points)",
                  &thr.abort_rate_pp);
  args.add_double("max-wasted-pp",
                  "diff: allowed wasted-cycle increase (percentage points)",
                  &thr.wasted_cycle_pp);
  args.add_positional("artifact", "telemetry artifact (diff: the baseline)",
                      &path0, true);
  args.add_positional("current", "second artifact (diff mode only)", &path1,
                      false);
  if (!args.parse(argc, argv)) return args.exit_code();

  if (diff) {
    if (path1.empty()) {
      return args.fail("--diff needs two artifacts: <base.json> <cur.json>");
    }
    tsxhpc::sim::JsonValue base, cur;
    if (!load_doc(path0, base) || !load_doc(path1, cur)) return 2;
    std::string out;
    const int regressions = tsxhpc::sim::render_diff(base, cur, thr, out);
    std::fputs(out.c_str(), stdout);
    return regressions > 0 ? 1 : 0;
  }

  if (!path1.empty()) {
    return args.fail("exactly one artifact expected (or pass --diff)");
  }
  tsxhpc::sim::ReportOptions opt;
  opt.top_lines = top;
  tsxhpc::sim::JsonValue doc;
  if (!load_doc(path0, doc)) return 2;
  std::fputs(tsxhpc::sim::render_report(doc, opt).c_str(), stdout);
  return 0;
}
