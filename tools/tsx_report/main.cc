// tsx_report: offline analyzer for tsxhpc-telemetry JSON artifacts.
//
//   tsx_report <artifact.json>            print the abort-diagnosis report
//   tsx_report --diff <base.json> <cur.json> [--max-abort-rate-pp=X]
//                                         [--max-wasted-pp=X]
//                                         compare two artifacts; exit 1 when
//                                         the abort rate or the wasted-cycle
//                                         fraction regresses past a threshold
//   tsx_report --top=N <artifact.json>    show N conflict lines (default 10)
//
// Exit codes: 0 ok, 1 regression(s) found (diff mode), 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/json_parse.h"
#include "sim/report.h"

namespace {

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

bool load_doc(const char* path, tsxhpc::sim::JsonValue& doc) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "tsx_report: cannot read %s\n", path);
    return false;
  }
  std::string err;
  doc = tsxhpc::sim::JsonParser::parse(text, &err);
  if (doc.is_null()) {
    std::fprintf(stderr, "tsx_report: %s: parse error: %s\n", path,
                 err.c_str());
    return false;
  }
  if (!tsxhpc::sim::is_telemetry_doc(doc)) {
    std::fprintf(stderr,
                 "tsx_report: %s is not a tsxhpc-telemetry artifact\n", path);
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: tsx_report [--top=N] <artifact.json>\n"
      "       tsx_report --diff <base.json> <current.json>\n"
      "                  [--max-abort-rate-pp=X] [--max-wasted-pp=X]\n");
  return 2;
}

bool parse_double_opt(const char* arg, const char* name, double& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  out = std::strtod(arg + len + 1, nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool diff = false;
  tsxhpc::sim::ReportOptions opt;
  tsxhpc::sim::DiffThresholds thr;
  const char* paths[2] = {nullptr, nullptr};
  int npaths = 0;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    double v = 0;
    if (std::strcmp(a, "--diff") == 0) {
      diff = true;
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      opt.top_lines = static_cast<std::size_t>(std::strtoul(a + 6, nullptr, 10));
    } else if (parse_double_opt(a, "--max-abort-rate-pp", v)) {
      thr.abort_rate_pp = v;
    } else if (parse_double_opt(a, "--max-wasted-pp", v)) {
      thr.wasted_cycle_pp = v;
    } else if (a[0] == '-') {
      return usage();
    } else if (npaths < 2) {
      paths[npaths++] = a;
    } else {
      return usage();
    }
  }

  if (diff) {
    if (npaths != 2) return usage();
    tsxhpc::sim::JsonValue base, cur;
    if (!load_doc(paths[0], base) || !load_doc(paths[1], cur)) return 2;
    std::string out;
    const int regressions =
        tsxhpc::sim::render_diff(base, cur, thr, out);
    std::fputs(out.c_str(), stdout);
    return regressions > 0 ? 1 : 0;
  }

  if (npaths != 1) return usage();
  tsxhpc::sim::JsonValue doc;
  if (!load_doc(paths[0], doc)) return 2;
  std::fputs(tsxhpc::sim::render_report(doc, opt).c_str(), stdout);
  return 0;
}
