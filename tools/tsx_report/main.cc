// tsx_report: offline analyzer for tsxhpc telemetry and sweep-grid JSON
// artifacts.
//
//   tsx_report <artifact.json>            print the abort-diagnosis report
//                                         (or the grid view for a
//                                         tsxhpc-sweep-v1 artifact)
//   tsx_report --pivot=axisA,axisB [--metric=M] <sweep.json>
//                                         two-axis pivot table over a grid
//   tsx_report --diff <base.json> <cur.json> [--max-abort-rate-pp=X]
//                                         [--max-wasted-pp=X]
//                                         compare two artifacts; exit 1 on a
//                                         regression past a threshold or any
//                                         label/axis/cell-set mismatch.
//                                         Grid artifacts diff cell-by-cell.
//   tsx_report --top=N <artifact.json>    show N conflict lines (default 10)
//   tsx_report --sets[=level] <artifact.json>
//                                         per-set heatmaps from a v5
//                                         artifact's set_stats block
//                                         (level: all, l1, llc, l1.c0, ...)
//   tsx_report --html=<out.html> <artifact.json>
//                                         write a self-contained HTML
//                                         dashboard (inline CSS/SVG)
//
// Exit codes: 0 ok, 1 failure(s) found (diff mode), 2 usage or I/O error.
#include <cstdio>
#include <string>

#include "bench/args.h"
#include "sim/fsio.h"
#include "sim/json_parse.h"
#include "sim/report.h"

namespace {

bool load_doc(const std::string& path, tsxhpc::sim::JsonValue& doc) {
  std::string text;
  if (!tsxhpc::sim::read_file(path, text)) {
    std::fprintf(stderr, "tsx_report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  doc = tsxhpc::sim::JsonParser::parse(text, &err);
  if (doc.is_null()) {
    std::fprintf(stderr, "tsx_report: %s: parse error: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  if (!tsxhpc::sim::is_telemetry_doc(doc) && !tsxhpc::sim::is_sweep_doc(doc)) {
    std::fprintf(stderr,
                 "tsx_report: %s is neither a tsxhpc-telemetry nor a "
                 "tsxhpc-sweep artifact\n",
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  tsxhpc::bench::Args args(
      "tsx_report", "analyze/diff tsxhpc telemetry and sweep JSON artifacts");
  bool diff = false, cli_markdown = false;
  std::size_t top = 10;
  tsxhpc::sim::DiffThresholds thr;
  std::string path0, path1, pivot, metric = "abort-rate", sets, html;
  args.add_bool("diff", "compare two artifacts; exit 1 on regression or "
                        "label/axis-set mismatch", &diff);
  args.add_size("top", "conflict lines to show in the report", &top);
  args.add_string("pivot",
                  "sweep grids: render a two-axis pivot table, e.g. "
                  "--pivot=scheme,threads", &pivot);
  args.add_string("metric",
                  "pivot metric: abort-rate, wasted, makespan, commits, or "
                  "a cycle bucket (work, tx_committed, tx_wasted, lock_wait, "
                  "fallback, mem_stall)", &metric);
  args.add_opt_string("sets",
                      "print per-set heatmaps from a v5 artifact's set_stats "
                      "block; optionally select a level (all, l1, llc, or an "
                      "instance like l1.c0)", &sets, "all");
  args.add_string("html",
                  "write a self-contained HTML dashboard (inline CSS/SVG, no "
                  "external assets) to this path", &html);
  args.add_double("max-abort-rate-pp",
                  "diff: allowed abort-rate increase (percentage points)",
                  &thr.abort_rate_pp);
  args.add_double("max-wasted-pp",
                  "diff: allowed wasted-cycle increase (percentage points)",
                  &thr.wasted_cycle_pp);
  args.add_bool("cli-markdown",
                "print the flag table as markdown and exit (the "
                "EXPERIMENTS.md CLI reference is generated from this)",
                &cli_markdown);
  args.add_positional("artifact", "telemetry/sweep artifact (diff: the "
                                  "baseline)", &path0, false);
  args.add_positional("current", "second artifact (diff mode only)", &path1,
                      false);
  if (!args.parse(argc, argv)) return args.exit_code();
  if (cli_markdown) {
    std::printf("### `tsx_report`\n\n%s", args.markdown().c_str());
    return 0;
  }
  if (path0.empty()) {
    return args.fail("missing required argument <artifact>");
  }

  if (diff) {
    if (path1.empty()) {
      return args.fail("--diff needs two artifacts: <base.json> <cur.json>");
    }
    tsxhpc::sim::JsonValue base, cur;
    if (!load_doc(path0, base) || !load_doc(path1, cur)) return 2;
    const bool base_sweep = tsxhpc::sim::is_sweep_doc(base);
    const bool cur_sweep = tsxhpc::sim::is_sweep_doc(cur);
    if (base_sweep != cur_sweep) {
      std::fprintf(stderr,
                   "tsx_report: cannot diff a sweep grid against a flat "
                   "telemetry artifact (%s vs %s)\n",
                   path0.c_str(), path1.c_str());
      return 2;
    }
    std::string out;
    const int failures =
        base_sweep ? tsxhpc::sim::render_sweep_diff(base, cur, thr, out)
                   : tsxhpc::sim::render_diff(base, cur, thr, out);
    std::fputs(out.c_str(), stdout);
    return failures > 0 ? 1 : 0;
  }

  if (!path1.empty()) {
    return args.fail("exactly one artifact expected (or pass --diff)");
  }
  tsxhpc::sim::JsonValue doc;
  if (!load_doc(path0, doc)) return 2;
  if (!html.empty()) {
    const std::string page = tsxhpc::sim::render_html(doc);
    if (!tsxhpc::sim::atomic_write_file(html, page)) {
      std::fprintf(stderr, "tsx_report: cannot write %s\n", html.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu bytes)\n", html.c_str(), page.size());
    if (sets.empty()) return 0;
  }
  if (!sets.empty()) {
    if (!tsxhpc::sim::is_telemetry_doc(doc)) {
      return args.fail("--sets needs a telemetry artifact (sweep grids embed "
                       "per-cell telemetry; report those individually)");
    }
    std::string out;
    const bool ok = tsxhpc::sim::render_set_heatmaps(doc, sets, out);
    std::fputs(out.c_str(), stdout);
    return ok ? 0 : 2;
  }
  if (!pivot.empty()) {
    if (!tsxhpc::sim::is_sweep_doc(doc)) {
      return args.fail("--pivot needs a tsxhpc-sweep-v1 grid artifact");
    }
    const std::size_t comma = pivot.find(',');
    if (comma == std::string::npos) {
      return args.fail("--pivot wants two axis names: --pivot=axisA,axisB");
    }
    std::string out;
    const bool ok = tsxhpc::sim::render_sweep_pivot(
        doc, pivot.substr(0, comma), pivot.substr(comma + 1), metric, out);
    std::fputs(out.c_str(), stdout);
    return ok ? 0 : 2;
  }
  if (tsxhpc::sim::is_sweep_doc(doc)) {
    std::fputs(tsxhpc::sim::render_sweep_report(doc).c_str(), stdout);
    return 0;
  }
  tsxhpc::sim::ReportOptions opt;
  opt.top_lines = top;
  std::fputs(tsxhpc::sim::render_report(doc, opt).c_str(), stdout);
  return 0;
}
