#include "netapps/netapps.h"

#include <cstring>

#include "netstack/stack.h"
#include "sim/rng.h"

namespace tsxhpc::netapps {

using netstack::NetStack;
using sim::Context;
using sim::Machine;
using sim::Xoshiro256;

namespace {

/// Fill a buffer with seeded words and return their sum (payload digest).
std::uint64_t fill(std::uint8_t* buf, std::size_t n, Xoshiro256& rng) {
  std::uint64_t sum = 0;
  for (std::size_t off = 0; off < n; off += 8) {
    const std::uint64_t w = rng.next();
    std::memcpy(buf + off, &w, 8);
    sum += w;
  }
  return sum;
}

std::uint64_t digest(const std::uint8_t* buf, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t off = 0; off < n; off += 8) {
    std::uint64_t w;
    std::memcpy(&w, buf + off, 8);
    sum += w;
  }
  return sum;
}

/// Shared harness: `client` and `server` bodies per connection; collects
/// bandwidth from the server-side byte counts.
template <typename ClientFn, typename ServerFn>
Result run_app(const Config& cfg, ClientFn&& client, ServerFn&& server) {
  Machine m(cfg.machine);
  NetStack stack(m, cfg.scheme, cfg.connections, 64 * 1024, cfg.policy);

  std::vector<std::uint64_t> sent_digest(cfg.connections, 0);
  std::vector<std::uint64_t> recv_digest(cfg.connections, 0);
  std::vector<std::uint64_t> recv_bytes(cfg.connections, 0);

  std::vector<std::function<void(Context&)>> bodies;
  for (int i = 0; i < cfg.connections; ++i) {
    bodies.emplace_back([&, i](Context& c) {
      client(c, m, stack, i, sent_digest[i]);
    });
  }
  for (int i = 0; i < cfg.connections; ++i) {
    bodies.emplace_back([&, i](Context& c) {
      server(c, m, stack, i, recv_digest[i], recv_bytes[i]);
    });
  }

  Result r;
  sim::RunSpec spec;
  spec.bodies = std::move(bodies);
  spec.label = cfg.run_label;
  r.stats = m.run(spec);
  r.makespan = r.stats.makespan;
  bool ok = true;
  for (int i = 0; i < cfg.connections; ++i) {
    r.server_bytes += recv_bytes[i];
    if (recv_digest[i] != sent_digest[i]) ok = false;
  }
  r.bandwidth_mbps =
      static_cast<double>(r.server_bytes) / 1e6 / m.seconds(r.makespan);
  r.checksum = ok && r.server_bytes > 0 ? 0x6E7 : 0;
  return r;
}

}  // namespace

Result run_netferret(const Config& cfg) {
  // Similarity search: the client sends a small query image descriptor; the
  // server ranks candidates and returns a small result list. Thousands of
  // small messages — request/response per query.
  const std::size_t n_queries =
      static_cast<std::size_t>(64 * cfg.scale) < 8
          ? 8
          : static_cast<std::size_t>(64 * cfg.scale);
  // Pure request/response over small packets: every send lands in an empty
  // buffer (signal) and every receive finds it empty (wait) — "the workload
  // sends/receives many small packets over the network" is what breaks
  // tsx.abort: nearly every critical section contains a condition-variable
  // operation and must abort to the lock.
  constexpr std::size_t kQueryBytes = 256;
  constexpr std::size_t kReplyBytes = 128;

  auto client = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& sd) {
    Xoshiro256 rng(cfg.seed * 101 + i);
    std::uint8_t buf[kQueryBytes];
    std::uint8_t reply[kReplyBytes];
    for (std::size_t q = 0; q < n_queries; ++q) {
      c.compute(2500);  // feature extraction for the query
      sd += fill(buf, kQueryBytes, rng);
      stack.send(c, stack.conn(i).to_server, buf, kQueryBytes);
      // Wait for the ranked answer (ping-pong).
      std::size_t got = 0;
      while (got < kReplyBytes) {
        const std::size_t k = stack.recv(c, stack.conn(i).to_client,
                                         reply + got, kReplyBytes - got);
        if (k == 0) break;
        got += k;
      }
    }
    stack.shutdown(c, stack.conn(i).to_server);
  };

  auto server = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& rd, std::uint64_t& rb) {
    Xoshiro256 rng(cfg.seed * 777 + i);
    std::uint8_t buf[kQueryBytes];
    std::uint8_t reply[kReplyBytes];
    for (;;) {
      std::size_t got = 0;
      while (got < kQueryBytes) {
        const std::size_t k = stack.recv(c, stack.conn(i).to_server,
                                         buf + got, kQueryBytes - got);
        if (k == 0) goto done;
        got += k;
      }
      rd += digest(buf, kQueryBytes);
      rb += kQueryBytes;
      c.compute(4000);  // candidate ranking
      fill(reply, kReplyBytes, rng);
      stack.send(c, stack.conn(i).to_client, reply, kReplyBytes);
    }
  done:
    stack.shutdown(c, stack.conn(i).to_client);
  };

  return run_app(cfg, client, server);
}

Result run_netdedup(const Config& cfg) {
  // Dedup pipeline: client streams large chunks; server fingerprints and
  // compresses them. As in the paper, the input stage runs in full first
  // (pure streaming — no request/response coupling).
  const std::size_t n_chunks =
      static_cast<std::size_t>(48 * cfg.scale) < 4
          ? 4
          : static_cast<std::size_t>(48 * cfg.scale);
  constexpr std::size_t kChunkBytes = 4096;

  auto client = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& sd) {
    Xoshiro256 rng(cfg.seed * 131 + i);
    std::vector<std::uint8_t> buf(kChunkBytes);
    for (std::size_t q = 0; q < n_chunks; ++q) {
      c.compute(10000);  // chunking + SHA1 of the outgoing block
      sd += fill(buf.data(), kChunkBytes, rng);
      stack.send(c, stack.conn(i).to_server, buf.data(), kChunkBytes);
    }
    stack.shutdown(c, stack.conn(i).to_server);
  };

  auto server = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& rd, std::uint64_t& rb) {
    std::vector<std::uint8_t> buf(kChunkBytes);
    for (;;) {
      const std::size_t k =
          stack.recv(c, stack.conn(i).to_server, buf.data(), kChunkBytes);
      if (k == 0) break;
      rd += digest(buf.data(), k);
      rb += k;
      // Rabin fingerprinting + compression of the received bytes.
      c.compute(static_cast<sim::Cycles>(k * 12));
    }
  };

  return run_app(cfg, client, server);
}

Result run_netstreamcluster(const Config& cfg) {
  // Online clustering: client streams fixed-size points; server assigns
  // each batch to centers (compute proportional to batch size).
  const std::size_t n_points =
      static_cast<std::size_t>(768 * cfg.scale) < 32
          ? 32
          : static_cast<std::size_t>(768 * cfg.scale);
  constexpr std::size_t kPointBytes = 256;

  auto client = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& sd) {
    Xoshiro256 rng(cfg.seed * 173 + i);
    std::uint8_t buf[kPointBytes];
    for (std::size_t p = 0; p < n_points; ++p) {
      c.compute(5000);  // point generation / parse
      sd += fill(buf, kPointBytes, rng);
      stack.send(c, stack.conn(i).to_server, buf, kPointBytes);
    }
    stack.shutdown(c, stack.conn(i).to_server);
  };

  auto server = [&](Context& c, Machine&, NetStack& stack, int i,
                    std::uint64_t& rd, std::uint64_t& rb) {
    // Point-sized reads: short receive critical sections (long ones overlap
    // many sender sections and conflict on the ring indices).
    std::vector<std::uint8_t> buf(kPointBytes);
    for (;;) {
      const std::size_t k =
          stack.recv(c, stack.conn(i).to_server, buf.data(), buf.size());
      if (k == 0) break;
      rd += digest(buf.data(), k);
      rb += k;
      c.compute(static_cast<sim::Cycles>(k * 25));  // distance computations
    }
  };

  return run_app(cfg, client, server);
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"netferret", run_netferret},
      {"netdedup", run_netdedup},
      {"netstreamcluster", run_netstreamcluster},
  };
  return kWorkloads;
}

}  // namespace tsxhpc::netapps
