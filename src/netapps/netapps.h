// The three network-intensive PARSEC workloads of Section 6.2, organized
// client/server over the user-level stack:
//   netferret        similarity search: many small query/response messages
//                    (the workload that breaks tsx.abort in Figure 6)
//   netdedup         dedup/compress pipeline: client streams large chunks,
//                    the server fingerprints and compresses
//   netstreamcluster online clustering of streamed points
//
// Reported metric, as in the paper: server-side read bandwidth (the
// critical path of the execution).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sync/monitor.h"

namespace tsxhpc::netapps {

struct Config {
  sync::MonitorScheme scheme = sync::MonitorScheme::kMutex;
  /// Client/server pairs; total simulated threads = 2 * connections.
  int connections = 4;
  std::uint64_t seed = 11;
  double scale = 1.0;
  sync::ElisionPolicy policy{};
  /// Telemetry label for the runs this invocation records (carried into
  /// Machine::run via RunSpec; empty = telemetry default naming).
  std::string run_label;
  sim::MachineConfig machine{};
};

struct Result {
  sim::Cycles makespan = 0;
  sim::RunStats stats;
  std::uint64_t server_bytes = 0;  // total payload received by servers
  double bandwidth_mbps = 0.0;     // server-side read bandwidth (MB/s)
  std::uint64_t checksum = 0;      // nonzero iff payload integrity held
};

using WorkloadFn = std::function<Result(const Config&)>;

struct Workload {
  std::string name;
  WorkloadFn fn;
};

Result run_netferret(const Config& cfg);
Result run_netdedup(const Config& cfg);
Result run_netstreamcluster(const Config& cfg);

const std::vector<Workload>& all_workloads();

}  // namespace tsxhpc::netapps
