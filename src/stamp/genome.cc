// STAMP genome: gene sequencing. Phase 1 deduplicates the segment pool into
// a hash set (small transactions on hash buckets, low conflict); phase 2
// matches segment overlaps and links them into chains (transactions doing a
// few lookups plus link writes — medium footprint). Table 1: low abort
// rates that rise mainly at 8 threads (HyperThreading pressure).
#include "stamp/common.h"

#include "containers/hashmap.h"

namespace tsxhpc::stamp {

Result run_genome(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);
  TxArena arena(m);

  // The "gene" is a cyclic sequence of n_unique segments; the sequencer
  // receives n_segments samples (with duplicates) and must dedup and chain.
  const std::size_t n_unique = scaled(cfg.scale, 3072, 64);
  const std::size_t n_segments = n_unique * 3 / 2;
  // Each segment's nucleotide string lives in shared memory; deduplication
  // COMPARES CONTENT, so every insert transaction reads the segment (real
  // genome's transactional read footprint; at reproduction scale it still
  // fits the L1, hence Table 1's genome deviation in EXPERIMENTS.md).
  constexpr std::size_t kSegmentBytes = 512;  // 8 cache lines

  containers::TmHashMap segments(m, arena, 2048);   // dedup set
  containers::TmHashMap links(m, arena, 2048);      // seg -> successor
  sim::Addr seg_data =
      m.alloc({.name = "genome/segments", .bytes = n_unique * kSegmentBytes});
  {
    Xoshiro256 init_rng(cfg.seed * 7 + 1);
    for (std::size_t i = 0; i < n_unique * kSegmentBytes / 8; ++i) {
      m.heap().write_word(seg_data + i * 8, init_rng.next(), 8);
    }
  }

  // Sampled segment stream: segment i of the gene has key i+1 (nonzero);
  // duplicates are induced by sampling with replacement.
  std::vector<std::uint64_t> stream;
  stream.reserve(n_segments);
  Xoshiro256 rng(cfg.seed);
  for (std::size_t i = 0; i < n_segments; ++i) {
    stream.push_back(1 + rng.next_below(n_unique));
  }

  WorkCounter dedup_work(m, n_segments, 16);
  WorkCounter chain_work(m, n_unique, 16);
  auto phase_flag = Shared<std::uint32_t>::alloc(m, {.name = "genome/phase"}, 0);
  auto arrived = Shared<std::uint32_t>::alloc(m, {.name = "genome/phase"}, 0);

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    // --- Phase 1: deduplicate segments into the hash set. ---
    std::uint64_t b, e;
    while (dedup_work.next(c, b, e)) {
      for (std::uint64_t i = b; i < e; ++i) {
        const std::uint64_t key = stream[i];
        c.compute(25);  // segment hashing
        t.atomic([&](TmAccess& tm) {
          // Content comparison against the canonical copy: a strided read
          // over the segment's nucleotide string (annotated for the STM).
          std::uint64_t digest = 0;
          const sim::Addr base = seg_data + (key - 1) * kSegmentBytes;
          for (std::size_t w = 0; w < kSegmentBytes / 8; w += 4) {
            digest ^= tm.read(base + w * 8);
          }
          tm.ctx().compute(kSegmentBytes / 32);
          segments.insert(tm, key, digest & 0xFF);
        });
      }
    }
    // Barrier between phases.
    if (arrived.fetch_add(c, 1) + 1 ==
        static_cast<std::uint32_t>(cfg.threads)) {
      phase_flag.store(c, 1);
    } else {
      while (phase_flag.load(c) == 0) c.compute(80);
    }
    // --- Phase 2: link each present segment to its successor (overlap
    // matching: lookup segment, lookup successor, write the link). ---
    while (chain_work.next(c, b, e)) {
      for (std::uint64_t i = b; i < e; ++i) {
        const std::uint64_t key = 1 + i;
        const std::uint64_t succ = 1 + (i + 1) % n_unique;
        c.compute(40);  // overlap comparison
        t.atomic([&](TmAccess& tm) {
          if (segments.contains(tm, key) && segments.contains(tm, succ)) {
            links.insert(tm, key, succ);
          }
        });
      }
    }
  });

  // Checksum: number of unique segments + number of links + sum of link
  // keys — all order-insensitive set contents.
  std::uint64_t unique = 0, chained = 0;
  segments.peek_each(m, [&](std::uint64_t, std::uint64_t) { unique++; });
  links.peek_each(m, [&](std::uint64_t k, std::uint64_t v) {
    chained++;
    r.checksum += k * 31 + v;
  });
  r.checksum += unique * 1000003 + chained;
  return r;
}

}  // namespace tsxhpc::stamp
