// STAMP ssca2: Kernel 1 of the SSCA2 graph benchmark — parallel construction
// of the graph's adjacency structure. Transactions are tiny (append one edge
// to a vertex's list: read a count, write a slot, bump the count) and the
// target vertices are spread over a large range, so conflicts are rare —
// Table 1 shows ~0-1% abort rates at every thread count.
#include "stamp/common.h"

namespace tsxhpc::stamp {

Result run_ssca2(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);

  const std::size_t n_vertices = scaled(cfg.scale, 4096, 64);
  const std::size_t n_edges = scaled(cfg.scale, 16384, 256);
  constexpr std::size_t kMaxDegree = 32;

  // Per-vertex degree counts and fixed-capacity neighbor slot arrays.
  auto degree = SharedArray<std::uint64_t>::alloc(m, {.name = "ssca2/degree"}, n_vertices, 0);
  auto slots = SharedArray<std::uint64_t>::alloc(m, {.name = "ssca2/slots"}, n_vertices * kMaxDegree, 0);

  // Pre-generate the edge list (Kernel 1's input tuples).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n_edges);
  Xoshiro256 rng(cfg.seed);
  for (std::size_t e = 0; e < n_edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n_vertices));
    const auto v = static_cast<std::uint32_t>(rng.next_below(n_vertices));
    edges.emplace_back(u, v);
  }

  WorkCounter work(m, n_edges, 16);
  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    std::uint64_t b, e;
    while (work.next(c, b, e)) {
      for (std::uint64_t i = b; i < e; ++i) {
        const auto [u, v] = edges[i];
        c.compute(20);  // tuple decode / hashing
        t.atomic([&](TmAccess& tm) {
          const std::uint64_t d = tm.read(degree.addr(u));
          if (d < kMaxDegree) {
            tm.write(slots.addr(u * kMaxDegree + d), v + 1);
            tm.write(degree.addr(u), d + 1);
          }
        });
      }
    }
  });

  // Checksum: total degree plus sum of stored neighbors (order-insensitive).
  for (std::size_t v = 0; v < n_vertices; ++v) {
    const std::uint64_t d = degree.at(v).peek(m);
    r.checksum += d;
    for (std::uint64_t i = 0; i < d; ++i) {
      r.checksum += slots.at(v * kMaxDegree + i).peek(m);
    }
  }
  return r;
}

}  // namespace tsxhpc::stamp
