// STAMP vacation: a travel reservation system. Relations (cars, flights,
// rooms, customers) are ordered maps; a client transaction performs several
// tree lookups plus reservation updates across relations. The read set —
// multiple tree descents over maps much larger than the L1 — is what gives
// tsx its nonzero single-thread abort rate in Table 1 (38%), via read-set
// eviction from the secondary tracking structure.
#include "stamp/common.h"

#include "containers/rbtree.h"

namespace tsxhpc::stamp {

Result run_vacation(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);
  TxArena arena(m);

  const std::size_t n_relations = scaled(cfg.scale, 4096, 32);
  const std::size_t n_tasks = scaled(cfg.scale, 768, 32);
  constexpr int kQueriesPerTask = 4;  // high-contention config

  containers::TmRbMap cars(m, arena), flights(m, arena), rooms(m, arena),
      customers(m, arena);
  containers::TmRbMap* tables[3] = {&cars, &flights, &rooms};

  // Populate the relations (setup, untimed: run once on one thread but not
  // measured — we build through a throwaway single-thread region so the
  // treaps get their deterministic shape, then reset stats via run()).
  {
    TmRuntime setup_rt(m, Backend::kSgl);
    sim::RunSpec setup;
    setup.label = cfg.run_label;  // recorded as the "<label>" setup run
    setup.body = [&](Context& c) {
      TmThread t(setup_rt, c);
      for (std::size_t i = 1; i <= n_relations; ++i) {
        t.atomic([&](TmAccess& tm) {
          cars.insert(tm, i, 100);
          flights.insert(tm, i, 100);
          rooms.insert(tm, i, 100);
        });
      }
      for (std::size_t i = 1; i <= n_relations / 4; ++i) {
        t.atomic([&](TmAccess& tm) { customers.insert(tm, i, 0); });
      }
    };
    m.run(setup);
  }

  WorkCounter work(m, n_tasks, 4);

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    Xoshiro256 rng(cfg.seed * 977 + c.tid());
    std::uint64_t b, e;
    while (work.next(c, b, e)) {
      for (std::uint64_t i = b; i < e; ++i) {
        const std::uint64_t customer = 1 + rng.next_below(n_relations / 4);
        // Pre-draw the query plan so retries replay identically. Most
        // queries only browse; ~30% try to book (STAMP's default mix is
        // read-heavy).
        std::array<std::tuple<int, std::uint64_t, bool>, kQueriesPerTask>
            plan;
        for (auto& q : plan) {
          q = {static_cast<int>(rng.next_below(3)),
               1 + rng.next_below(n_relations), rng.next_bool(0.3)};
        }
        c.compute(80);  // client request parsing
        t.atomic([&](TmAccess& tm) {
          // Browse: find the cheapest available resource per query (tree
          // descents = the big read footprint).
          std::uint64_t booked = 0;
          for (const auto& [table, id, book] : plan) {
            const auto avail = tables[table]->find(tm, id);
            if (book && avail && *avail > 0) {
              tables[table]->update(tm, id, *avail - 1);
              booked++;
            }
          }
          if (booked > 0) {
            const auto cur = customers.find(tm, customer);
            customers.update(tm, customer, (cur ? *cur : 0) + booked);
          }
        });
      }
    }
  });

  // Conservation invariant: booked units must equal the inventory drawdown
  // and the customers' holdings.
  std::uint64_t inventory = 0;
  for (auto* t : tables) {
    t->peek_inorder(m, [&](std::uint64_t, std::uint64_t v) { inventory += v; });
  }
  std::uint64_t holdings = 0;
  customers.peek_inorder(m,
                         [&](std::uint64_t, std::uint64_t v) { holdings += v; });
  const std::uint64_t initial = 3 * n_relations * 100;
  // Conservation: every unit that left the inventory is held by a customer.
  // (The booked total itself is schedule-dependent, so only the invariant
  // is digested.)
  r.checksum = (initial - inventory == holdings) ? 0xC0FFEE : 0;
  return r;
}

}  // namespace tsxhpc::stamp
