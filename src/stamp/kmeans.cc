// STAMP kmeans (high-contention configuration): K-means clustering where
// the per-point center updates are transactional. A transaction adds one
// point into its chosen center's accumulator (one line of doubles plus a
// count) — a small footprint, but with few centers every thread hammers the
// same lines, so the abort rate climbs steeply with thread count (Table 1:
// tsx 0/26/71/96%).
//
// The paper discounts kmeans *timing* comparisons because convergence order
// affects iteration counts; we run a fixed number of iterations so that the
// measured work is identical across backends.
#include "stamp/common.h"

namespace tsxhpc::stamp {

namespace {
constexpr std::size_t kDims = 16;  // two cache lines of doubles per center
}

Result run_kmeans(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);

  const std::size_t n_points = scaled(cfg.scale, 2048, 64);
  const std::size_t k = 8;  // high-contention: few clusters
  const int iterations = 4;

  // Points are read-only input: host-side.
  std::vector<std::array<double, kDims>> points(n_points);
  Xoshiro256 rng(cfg.seed);
  for (auto& p : points) {
    for (auto& x : p) x = rng.next_double() * 100.0;
  }

  // Shared state: center positions (read in the assignment step), center
  // accumulators + member counts (transactionally updated).
  auto centers = SharedArray<double>::alloc(m, {.name = "kmeans/centers"}, k * kDims, 0.0);
  auto accum = SharedArray<double>::alloc(
      m, {.name = "kmeans/accum", .hint = sim::AllocHint::kHot}, k * kDims,
      0.0);
  auto counts = SharedArray<std::uint64_t>::alloc(m, {.name = "kmeans/counts"}, k, 0);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t d = 0; d < kDims; ++d) {
      centers.at(j * kDims + d).init(m, points[j * 7 % n_points][d]);
    }
  }

  auto barrier_word = Shared<std::uint32_t>::alloc(m, {.name = "kmeans/barrier"}, 0);
  auto barrier_arrived = Shared<std::uint32_t>::alloc(m, {.name = "kmeans/barrier"}, 0);
  auto spin_barrier = [&](Context& c) {
    const std::uint32_t sense = barrier_word.load(c);
    if (barrier_arrived.fetch_add(c, 1) + 1 ==
        static_cast<std::uint32_t>(cfg.threads)) {
      barrier_arrived.store(c, 0);
      barrier_word.store(c, sense + 1);
    } else {
      while (barrier_word.load(c) == sense) c.compute(60);
    }
  };

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    const std::size_t per =
        (n_points + cfg.threads - 1) / cfg.threads;
    const std::size_t p0 = c.tid() * per;
    const std::size_t p1 = std::min(n_points, p0 + per);
    for (int it = 0; it < iterations; ++it) {
      for (std::size_t p = p0; p < p1; ++p) {
        // Assignment: unsynchronized reads of the centers (as in STAMP).
        std::size_t best = 0;
        double best_d = 1e300;
        for (std::size_t j = 0; j < k; ++j) {
          double dist = 0;
          for (std::size_t d = 0; d < kDims; ++d) {
            const double cj = centers.at(j * kDims + d).load(c);
            const double diff = points[p][d] - cj;
            dist += diff * diff;
          }
          c.compute(3 * kDims);
          if (dist < best_d) {
            best_d = dist;
            best = j;
          }
        }
        // Update: one transaction per point (the STAMP critical section).
        t.atomic([&](TmAccess& tm) {
          for (std::size_t d = 0; d < kDims; ++d) {
            const Addr a = accum.addr(best * kDims + d);
            const double cur = sim::detail::decode<double>(tm.read(a));
            tm.write(a, sim::detail::encode(cur + points[p][d]));
          }
          tm.write(counts.addr(best), tm.read(counts.addr(best)) + 1);
        });
      }
      spin_barrier(c);
      // Thread 0 recomputes centers from the accumulators, then clears.
      if (c.tid() == 0) {
        for (std::size_t j = 0; j < k; ++j) {
          const std::uint64_t n = counts.at(j).load(c);
          for (std::size_t d = 0; d < kDims; ++d) {
            if (n > 0) {
              const double sum = accum.at(j * kDims + d).load(c);
              centers.at(j * kDims + d).store(c, sum / static_cast<double>(n));
            }
            accum.at(j * kDims + d).store(c, 0.0);
          }
          counts.at(j).store(c, 0);
        }
      }
      spin_barrier(c);
    }
  });

  // Checksum: memberships of the final assignment recomputed serially —
  // depends only on the final center positions. Use a quantized digest so
  // floating-point association differences across schedules do not flip it.
  std::uint64_t digest = 0;
  for (std::size_t j = 0; j < k * kDims; ++j) {
    digest += static_cast<std::uint64_t>(
        std::llround(centers.at(j).peek(m) * 16.0));
  }
  r.checksum = digest;
  return r;
}

}  // namespace tsxhpc::stamp
