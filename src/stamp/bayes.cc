// STAMP bayes: Bayesian network structure learning by hill climbing. A
// transaction evaluates a candidate edge insertion — scoring it requires
// reading a large slice of the sufficient-statistics (ADtree-like) table —
// and, if the score improves, inserts the edge and updates the cached
// scores. The huge read sets give bayes the highest single-thread tsx abort
// rate in Table 1 (64%), and the paper notes its timing should be
// discounted because search order affects the result.
#include "stamp/common.h"

namespace tsxhpc::stamp {

Result run_bayes(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);

  const std::size_t n_vars = scaled(cfg.scale, 24, 8);
  const std::size_t n_moves = scaled(cfg.scale, 192, 16);
  // Sufficient-statistics table: large enough that one scoring pass reads
  // multiple L1s' worth of lines.
  const std::size_t stats_words = scaled(cfg.scale, 8192 * 8, 1024);

  auto stats_table = SharedArray<std::uint64_t>::alloc(m, {.name = "bayes/stats"}, stats_words, 0);
  for (std::size_t i = 0; i < stats_words; i += 7) {
    stats_table.at(i).init(m, i * 2654435761u % 1000);
  }
  // Adjacency matrix (n_vars^2) and per-variable cached scores.
  auto adj = SharedArray<std::uint64_t>::alloc(m, {.name = "bayes/adj"}, n_vars * n_vars, 0);
  auto score = SharedArray<std::uint64_t>::alloc(m, {.name = "bayes/score"}, n_vars, 1000000);
  std::uint64_t accepted_total = 0;

  WorkCounter work(m, n_moves, 2);

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    Xoshiro256 rng(cfg.seed * 53 + c.tid());
    std::uint64_t local_accepted = 0;
    std::uint64_t b, e;
    while (work.next(c, b, e)) {
      for (std::uint64_t mv = b; mv < e; ++mv) {
        const std::size_t from = rng.next_below(n_vars);
        const std::size_t to = (from + 1 + rng.next_below(n_vars - 1)) % n_vars;
        const std::size_t slice = rng.next_below(8);
        bool accepted = false;
        t.atomic([&](TmAccess& tm) {
          accepted = false;
          if (tm.read(adj.addr(from * n_vars + to)) != 0 ||
              tm.read(adj.addr(to * n_vars + from)) != 0) {
            return;  // edge (or reverse) exists
          }
          // Score the candidate parent set: read a large strided slice of
          // the sufficient-statistics table (the ADtree walk).
          std::uint64_t s = 0;
          const std::size_t span = stats_words / 8;
          for (std::size_t i = 0; i < span; i += 8) {
            s += tm.read(stats_table.addr(slice * span + i));
          }
          tm.ctx().compute(span / 2);  // log-likelihood arithmetic
          const std::uint64_t old_score = tm.read(score.addr(to));
          const std::uint64_t new_score =
              old_score - 1 - s % 3;  // hill climbing: always a bit better
          if (new_score < old_score) {
            tm.write(adj.addr(from * n_vars + to), 1);
            tm.write(score.addr(to), new_score);
            accepted = true;
          }
        });
        if (accepted) local_accepted++;
      }
    }
    accepted_total += local_accepted;
  });

  // Invariants: the learned structure has no 2-cycles, and the accepted
  // count equals the number of edges present.
  std::uint64_t edges = 0;
  bool ok = true;
  for (std::size_t i = 0; i < n_vars; ++i) {
    for (std::size_t j = 0; j < n_vars; ++j) {
      const bool eij = adj.at(i * n_vars + j).peek(m) != 0;
      if (eij) {
        edges++;
        if (adj.at(j * n_vars + i).peek(m) != 0) ok = false;
      }
    }
  }
  ok = ok && edges == accepted_total;
  r.checksum = ok ? 0xBA1E5 : 0;
  return r;
}

}  // namespace tsxhpc::stamp
