#include "stamp/stamp.h"

namespace tsxhpc::stamp {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"bayes", run_bayes},         {"genome", run_genome},
      {"intruder", run_intruder},   {"kmeans", run_kmeans},
      {"labyrinth", run_labyrinth}, {"ssca2", run_ssca2},
      {"vacation", run_vacation},   {"yada", run_yada},
  };
  return kWorkloads;
}

}  // namespace tsxhpc::stamp
