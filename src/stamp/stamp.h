// STAMP benchmark suite (Minh et al. [19]), re-implemented against the TM
// macro layer at reduced input scale (Section 4.2 / Figure 2 / Table 1).
//
// Each workload preserves the original's *synchronization structure*: which
// data structures its transactions touch, the read/write footprint class of
// a transaction, its conflict pattern, and which accesses are annotated for
// the STM (TM_SHARED_*) versus left plain. That is what the paper's results
// depend on. Input sizes are scaled so a full Figure 2 sweep runs in
// seconds; EXPERIMENTS.md records the scaling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "tmlib/tm.h"

namespace tsxhpc::stamp {

using tmlib::Backend;

struct Config {
  Backend backend = Backend::kSgl;
  int threads = 1;
  std::uint64_t seed = 1;
  /// Input scale multiplier (1.0 = the default reduced inputs).
  double scale = 1.0;
  sync::ElisionPolicy policy{};
  /// Telemetry label for the runs this invocation records (carried into
  /// Machine::run via RunSpec; empty = telemetry default naming).
  std::string run_label;
  sim::MachineConfig machine{};
};

struct Result {
  sim::Cycles makespan = 0;
  sim::RunStats stats;  // hardware (tsx) counters
  /// Concurrency-control counters of the scheme that ran (the telemetry
  /// `cc` block's content, harvested from the TmRuntime).
  sim::CcStats cc;
  /// Order-insensitive verification value; must match across backends and
  /// thread counts for a given (workload, seed, scale).
  std::uint64_t checksum = 0;

  /// Abort rate (%) of whichever TM ran, in Table 1's definition.
  double abort_rate_pct(Backend b) const {
    if (tmlib::is_stm(b)) return cc.abort_rate_pct();
    return stats.abort_rate_pct();
  }
};

using WorkloadFn = std::function<Result(const Config&)>;

struct Workload {
  std::string name;
  WorkloadFn fn;
};

// The eight STAMP workloads.
Result run_bayes(const Config& cfg);
Result run_genome(const Config& cfg);
Result run_intruder(const Config& cfg);
Result run_kmeans(const Config& cfg);
Result run_labyrinth(const Config& cfg);
Result run_ssca2(const Config& cfg);
Result run_vacation(const Config& cfg);
Result run_yada(const Config& cfg);

/// All workloads in the paper's Figure 2 / Table 1 order.
const std::vector<Workload>& all_workloads();

}  // namespace tsxhpc::stamp
