// STAMP intruder: network intrusion detection pipeline. Threads pop packet
// fragments from a shared capture queue (a transactional hot spot), insert
// them into a per-flow reassembly map, and push completed flows to a
// detector queue. The queue heads make this one of STAMP's most
// conflict-heavy workloads (Table 1: tl2 32-57%).
#include "stamp/common.h"

#include "containers/hashmap.h"
#include "containers/queue.h"

namespace tsxhpc::stamp {

Result run_intruder(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);
  TxArena arena(m);

  const std::size_t n_flows = scaled(cfg.scale, 512, 16);
  constexpr std::uint64_t kFragsPerFlow = 4;

  containers::TmQueue capture(m, arena);
  containers::TmQueue detector(m, arena);
  // flow id -> fragments seen so far.
  containers::TmHashMap assembly(m, arena, 512);
  auto flows_done = Shared<std::uint64_t>::alloc(m, {.name = "intruder/flows_done"}, 0);
  auto attacks = Shared<std::uint64_t>::alloc(m, {.name = "intruder/attacks"}, 0);

  // Seed the capture queue with all fragments in shuffled order.
  std::vector<std::uint64_t> frags;
  frags.reserve(n_flows * kFragsPerFlow);
  for (std::uint64_t f = 1; f <= n_flows; ++f) {
    for (std::uint64_t i = 0; i < kFragsPerFlow; ++i) {
      frags.push_back(f * 16 + i);
    }
  }
  Xoshiro256 rng(cfg.seed);
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.next_below(i)]);
  }
  for (std::uint64_t v : frags) capture.seed(m, v);

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    // Stage 1+2: drain the capture queue, reassemble flows.
    for (;;) {
      bool done = false;
      std::uint64_t frag = 0;
      t.atomic([&](TmAccess& tm) {  // capture-queue pop (hot spot)
        done = false;
        const auto v = capture.pop(tm);
        if (!v) {
          done = true;
          return;
        }
        frag = *v;
      });
      if (done) break;
      const std::uint64_t flow = frag / 16;
      c.compute(60);  // fragment decode
      t.atomic([&](TmAccess& tm) {  // reassembly map update
        const auto seen = assembly.find(tm, flow);
        const std::uint64_t count = seen ? *seen + 1 : 1;
        if (count == kFragsPerFlow) {
          assembly.remove(tm, flow);
          detector.push(tm, flow);
          tm.write(flows_done.addr(), tm.read(flows_done.addr()) + 1);
        } else if (seen) {
          assembly.put(tm, flow, count);
        } else {
          assembly.insert(tm, flow, count);
        }
      });
    }
    // Stage 3: detector — drain completed flows and scan them.
    for (;;) {
      bool done = false;
      std::uint64_t flow = 0;
      t.atomic([&](TmAccess& tm) {
        done = false;
        const auto v = detector.pop(tm);
        if (!v) {
          done = true;
          return;
        }
        flow = *v;
      });
      if (done) break;
      c.compute(220);  // signature scan over the reassembled payload
      if ((flow * 2654435761u) % 8 == 0) {
        attacks.fetch_add(c, 1);
      }
    }
  });

  // Every flow must have been fully reassembled and scanned.
  r.checksum = flows_done.peek(m) * 131 + attacks.peek(m);
  return r;
}

}  // namespace tsxhpc::stamp
