// Shared scaffolding for STAMP workload implementations.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "containers/arena.h"
#include "sim/rng.h"
#include "sim/shared.h"
#include "stamp/stamp.h"

namespace tsxhpc::stamp {

using containers::TxArena;
using sim::Addr;
using sim::Context;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;
using sim::Xoshiro256;
using tmlib::TmAccess;
using tmlib::TmRuntime;
using tmlib::TmThread;

/// Scale an integer parameter, keeping a sane minimum.
inline std::size_t scaled(double scale, std::size_t base, std::size_t min = 1) {
  const auto v = static_cast<std::size_t>(std::llround(base * scale));
  return v < min ? min : v;
}

/// Run the SPMD body under the configured machine/backend; collects hardware
/// stats, CC scheme stats, and the makespan into a Result.
template <typename BodyFn>
Result run_region(const Config& cfg, Machine& m, TmRuntime& rt,
                  BodyFn&& body) {
  Result r;
  sim::RunSpec spec;
  spec.threads = cfg.threads;
  spec.label = cfg.run_label;
  spec.body = [&](Context& c) {
    TmThread t(rt, c);
    body(c, t);
  };
  r.stats = m.run(spec);
  r.makespan = r.stats.makespan;
  r.cc = rt.cc_stats();
  return r;
}

/// Shared work counter: threads grab chunks of `chunk` items until `total`
/// is exhausted (STAMP's thread pools partition work dynamically).
class WorkCounter {
 public:
  WorkCounter(Machine& m, std::uint64_t total, std::uint64_t chunk = 8)
      : total_(total), chunk_(chunk),
        next_(Shared<std::uint64_t>::alloc(
            m, {.name = "work_counter", .hint = sim::AllocHint::kHot}, 0)) {}

  /// Returns [begin, end) or false when exhausted.
  bool next(Context& c, std::uint64_t& begin, std::uint64_t& end) {
    const std::uint64_t b = next_.fetch_add(c, chunk_);
    if (b >= total_) return false;
    begin = b;
    end = b + chunk_ < total_ ? b + chunk_ : total_;
    return true;
  }

 private:
  std::uint64_t total_;
  std::uint64_t chunk_;
  Shared<std::uint64_t> next_;
};

}  // namespace tsxhpc::stamp
