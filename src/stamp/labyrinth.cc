// STAMP labyrinth: Lee's maze routing. Each transaction (1) copies the
// global grid into thread-private memory, (2) runs a breadth-first
// expansion on the private copy, and (3) writes the found path back to the
// shared grid after revalidating it.
//
// The grid copy is the famous annotation asymmetry (Section 4.2): STAMP
// does NOT annotate it, so TL2 ignores those reads and scales; hardware TM
// necessarily tracks every read in the region, so under tsx the copy blows
// out the L1 read tracking and the region aborts nearly always (Table 1:
// 87-100%), degenerating to single-global-lock behaviour.
#include "stamp/common.h"

#include <deque>

namespace tsxhpc::stamp {

namespace {
struct Pt {
  int x, y;
};
}  // namespace

Result run_labyrinth(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);

  // Grid sized to exceed the L1 (the "-i random-x48-y48-z3" flavour).
  const std::size_t dim = scaled(cfg.scale, 80, 16);
  const std::size_t cells = dim * dim;
  const std::size_t n_paths = scaled(cfg.scale, 48, 4);

  // 0 = free, otherwise the claiming path id.
  auto grid = SharedArray<std::uint64_t>::alloc(m, {.name = "labyrinth/grid"}, cells, 0);
  std::uint64_t routed_total = 0, failed_total = 0;

  // Work list of (src, dst) pairs.
  std::vector<std::pair<Pt, Pt>> requests;
  Xoshiro256 rng(cfg.seed);
  for (std::size_t i = 0; i < n_paths; ++i) {
    requests.push_back({{static_cast<int>(rng.next_below(dim)),
                         static_cast<int>(rng.next_below(dim))},
                        {static_cast<int>(rng.next_below(dim)),
                         static_cast<int>(rng.next_below(dim))}});
  }
  WorkCounter work(m, n_paths, 1);

  auto idx = [dim](int x, int y) {
    return static_cast<std::size_t>(y) * dim + x;
  };

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    std::vector<std::uint64_t> priv(cells);   // thread-private grid copy
    std::vector<int> dist(cells);
    std::uint64_t local_routed = 0, local_failed = 0;
    std::uint64_t b, e;
    while (work.next(c, b, e)) {
      const auto [src, dst] = requests[b];
      const std::uint64_t path_id = b + 1;
      int outcome = 0;  // 1 = routed, -1 = failed
      t.atomic([&](TmAccess& tm) {
        outcome = 0;
        Context& cc = tm.ctx();
        // (1) Grid copy — deliberately UNannotated (plain loads). Under
        // TL2 these are invisible to the STM; under tsx they are still
        // hardware-tracked reads.
        cc.load_bytes(grid.base(), priv.data(), cells * 8);
        cc.compute(cells / 4);
        // (2) BFS on the private copy.
        std::fill(dist.begin(), dist.end(), -1);
        std::deque<std::size_t> frontier;
        const std::size_t s = idx(src.x, src.y), d = idx(dst.x, dst.y);
        dist[s] = 0;
        frontier.push_back(s);
        while (!frontier.empty() && dist[d] < 0) {
          const std::size_t u = frontier.front();
          frontier.pop_front();
          const int ux = static_cast<int>(u % dim);
          const int uy = static_cast<int>(u / dim);
          const int nbors[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
          for (const auto& nb : nbors) {
            const int nx = ux + nb[0], ny = uy + nb[1];
            if (nx < 0 || ny < 0 || nx >= static_cast<int>(dim) ||
                ny >= static_cast<int>(dim)) {
              continue;
            }
            const std::size_t v = idx(nx, ny);
            if (dist[v] < 0 && (priv[v] == 0 || v == d)) {
              dist[v] = dist[u] + 1;
              frontier.push_back(v);
            }
          }
        }
        cc.compute(cells / 2);  // expansion cost
        if (dist[d] < 0 || priv[d] != 0 || priv[s] != 0) {
          outcome = -1;
          return;
        }
        // (3) Trace back and claim the path with ANNOTATED accesses,
        // revalidating each cell (it may have been taken since the copy).
        std::vector<std::size_t> path;
        std::size_t cur = d;
        while (cur != s) {
          path.push_back(cur);
          const int cx = static_cast<int>(cur % dim);
          const int cy = static_cast<int>(cur / dim);
          const int nbors[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
          for (const auto& nb : nbors) {
            const int nx = cx + nb[0], ny = cy + nb[1];
            if (nx < 0 || ny < 0 || nx >= static_cast<int>(dim) ||
                ny >= static_cast<int>(dim)) {
              continue;
            }
            if (dist[idx(nx, ny)] == dist[cur] - 1) {
              cur = idx(nx, ny);
              break;
            }
          }
        }
        path.push_back(s);
        for (std::size_t cell : path) {
          if (tm.read(grid.addr(cell)) != 0) {
            // Collision with a concurrently committed path: give up this
            // attempt (the real benchmark re-queues; we count it failed).
            outcome = -1;
            return;
          }
        }
        for (std::size_t cell : path) tm.write(grid.addr(cell), path_id);
        outcome = 1;
      });
      if (outcome > 0) local_routed++;
      if (outcome < 0) local_failed++;
    }
    routed_total += local_routed;
    failed_total += local_failed;
  });

  // Invariants: routed + failed == n_paths; every claimed cell belongs to
  // exactly one path and each routed path is 4-connected.
  const std::uint64_t n_routed = routed_total;
  const std::uint64_t n_failed = failed_total;
  bool ok = n_routed + n_failed == n_paths;
  std::vector<std::uint64_t> claimed(n_paths + 1, 0);
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint64_t id = grid.at(i).peek(m);
    if (id > n_paths) ok = false;
    if (id != 0) claimed[id]++;
  }
  // Which paths win is schedule-dependent; only the invariant is digested.
  r.checksum = ok ? 0xBEEF : 0;
  return r;
}

}  // namespace tsxhpc::stamp
