// STAMP yada: Delaunay mesh refinement (Ruppert's algorithm). Worker
// threads pop the worst "bad" element from a shared work heap, gather its
// cavity from the mesh registry, retriangulate (delete the cavity, insert
// new elements), and push any new bad elements.
//
// We reproduce the synchronization skeleton over an abstract element
// registry: a transaction performs one heap pop (hot spot), several ordered
// map reads (the cavity gather), a handful of deletes/inserts, and a
// conditional heap push — STAMP's medium/large transaction class with
// moderate-to-high conflict rates (Table 1: tl2 46-65%, tsx 46-92%).
#include "stamp/common.h"

#include "containers/heap.h"
#include "containers/rbtree.h"

namespace tsxhpc::stamp {

Result run_yada(const Config& cfg) {
  Machine m(cfg.machine);
  TmRuntime rt(m, cfg.backend, cfg.policy);
  TxArena arena(m);

  const std::size_t n_initial = scaled(cfg.scale, 384, 16);
  // Quality (angle) encoded in the key's low bits; ids grow upward.
  containers::TmRbMap mesh(m, arena);
  containers::TmHeap work_heap(m, n_initial * 8);
  // Each thread allocates element ids from its own space (as STAMP's
  // per-thread TM allocator does); aborted attempts burn ids harmlessly.
  constexpr std::uint64_t kIdSpace = 1ull << 32;
  std::uint64_t created_total = 0, deleted_total = 0;

  // Seed the mesh with elements and the heap with the initially-bad ones.
  {
    TmRuntime setup_rt(m, Backend::kSgl);
    sim::RunSpec setup;
    setup.label = cfg.run_label;  // recorded as the "<label>" setup run
    setup.body = [&](Context& c) {
      TmThread t(setup_rt, c);
      Xoshiro256 rng(cfg.seed);
      for (std::size_t i = 1; i <= n_initial; ++i) {
        const std::uint64_t quality = rng.next_below(100);
        t.atomic([&](TmAccess& tm) { mesh.insert(tm, i, quality); });
        if (quality < 40) work_heap.seed(m, i);
      }
    };
    m.run(setup);
  }

  Result r = run_region(cfg, m, rt, [&](Context& c, TmThread& t) {
    std::uint64_t local_next_id = (c.tid() + 1) * kIdSpace;
    std::uint64_t local_created = 0, local_deleted = 0;
    for (;;) {
      // STAMP yada splits a refinement step into several transactions:
      // pop the work item, grow the cavity, then retriangulate. Keeping
      // the conflict-prone heap pop in its own short transaction is what
      // keeps the benchmark livable at 2-4 threads.
      bool done = false;
      std::uint64_t elem = 0;
      t.atomic([&](TmAccess& tm) {  // txn 1: grab the worst bad element
        done = false;
        const auto bad = work_heap.pop_min(tm);
        if (!bad) {
          done = true;
        } else {
          elem = *bad;
        }
      });
      if (done) break;

      std::uint64_t cavity[4];
      std::size_t n_cavity = 0;
      t.atomic([&](TmAccess& tm) {  // txn 2: gather the cavity
        n_cavity = 0;
        if (!mesh.contains(tm, elem)) return;  // already retriangulated
        cavity[n_cavity++] = elem;
        std::uint64_t probe = elem;
        for (int k = 0; k < 3; ++k) {
          const auto next = mesh.ceil_key(tm, probe + 1);
          if (!next) break;
          cavity[n_cavity++] = *next;
          probe = *next;
        }
      });
      if (n_cavity == 0) continue;
      c.compute(300);  // geometric predicates on the gathered cavity

      std::uint64_t txn_created = 0, txn_deleted = 0;
      t.atomic([&](TmAccess& tm) {  // txn 3: revalidate + retriangulate
        txn_created = txn_deleted = 0;
        for (std::size_t i = 0; i < n_cavity; ++i) {
          if (!mesh.contains(tm, cavity[i])) return;  // raced: retry item
        }
        for (std::size_t i = 0; i < n_cavity; ++i) {
          mesh.remove(tm, cavity[i]);
        }
        txn_deleted = n_cavity;
        const std::uint64_t base = local_next_id;
        local_next_id += n_cavity + 1;  // burned on abort; ids stay unique
        for (std::size_t i = 0; i <= n_cavity; ++i) {
          const std::uint64_t id = base + i;
          const std::uint64_t q = 30 + (id * 2654435761u) % 70;
          mesh.insert(tm, id, q);
          if (q < 40) work_heap.push(tm, id);
        }
        txn_created = n_cavity + 1;
      });
      local_created += txn_created;
      local_deleted += txn_deleted;
    }
    // Host-side accumulation (token-serialized, after commit only).
    created_total += local_created;
    deleted_total += local_deleted;
  });

  // Invariant: live mesh size == initial + created - deleted, and the
  // refinement terminated with an empty heap.
  std::uint64_t live = 0;
  mesh.peek_inorder(m, [&](std::uint64_t, std::uint64_t) { live++; });
  const bool ok = live == n_initial + created_total - deleted_total;
  r.checksum = ok ? 0xADA : 0;
  return r;
}

}  // namespace tsxhpc::stamp
