// graphCluster (Table 2): Kernel 4 of SSCA2 — min-cut graph clustering.
// Vertices are examined in parallel; depending on its neighbours a vertex
// may be added to or removed from a cluster. The original code guards each
// vertex with a per-vertex lock using the Listing-1 double path:
// omp_test_lock() (non-blocking) first, omp_set_lock() (blocking) if that
// fails — i.e. under contention it performs TWO lock operations. Variants:
//   baseline     Listing 1: try-lock path + blocking path per vertex
//   tsx.init     LOCKSET ELISION of the two lock checks: one XBEGIN
//                replaces both acquisition paths (Section 5.2.1)
//   tsx.coarsen  plus dynamic coarsening over `gran` vertex updates
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_graphcluster(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_vertices = scaled(cfg.scale, 2048, 128);
  const std::size_t n_rounds = 3;
  constexpr std::size_t kDegree = 4;
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 2;

  // Per-vertex state, padded to a cache line (as SSCA2's vertex records
  // are): [0]=cluster id, [1]=cut-cost accumulator.
  auto vstate = SharedArray<std::uint64_t>::alloc(m, {.name = "graphcluster/vstate"}, n_vertices * 8, 0);
  auto cluster_at = [&](std::size_t v) { return vstate.at(v * 8); };
  auto cutcost_at = [&](std::size_t v) { return vstate.at(v * 8 + 1); };
  std::vector<sync::SpinLock> locks;
  locks.reserve(n_vertices);
  for (std::size_t i = 0; i < n_vertices; ++i) locks.emplace_back(m);
  sync::ElidedLockSet lockset(cfg.policy);

  // Graph: fixed-degree adjacency, host-side (read-only topology).
  std::vector<std::array<std::uint32_t, kDegree>> adj(n_vertices);
  Xoshiro256 rng(cfg.seed);
  for (auto& nb : adj) {
    for (auto& v : nb) {
      v = static_cast<std::uint32_t>(rng.next_below(n_vertices));
    }
  }
  for (std::size_t v = 0; v < n_vertices; ++v) {
    cluster_at(v).init(m, v % 16);
  }

  // The vertex-status update performed under the vertex's lock.
  auto update_vertex = [&](Context& c, std::size_t v) {
    // Neighbour majority vote (reads are unsynchronized in the original).
    std::uint64_t votes[16] = {};
    for (std::uint32_t nb : adj[v]) votes[cluster_at(nb).load(c) % 16]++;
    std::size_t best = 0;
    for (std::size_t k = 1; k < 16; ++k) {
      if (votes[k] > votes[best]) best = k;
    }
    c.compute(80);  // cluster membership-list bookkeeping
    cluster_at(v).store(c, best);
    vstate.at(v * 8 + 2).store(c, vstate.at(v * 8 + 2).load(c) + 1);
    cutcost_at(v).store(c, cutcost_at(v).load(c) + kDegree - votes[best]);
  };

  // Vertex visit order: random with a hot set (cluster frontiers attract
  // many threads at once), which is what makes Listing 1's non-blocking
  // path fail and fall into the blocking path under contention.
  auto pick_vertex = [&](Xoshiro256& prng) {
    return prng.next_bool(0.12)
               ? prng.next_below(4)  // hot frontier vertices
               : prng.next_below(n_vertices);
  };

  Result r = run_region(cfg, m, [&](Context& c) {
    const std::size_t per = (n_vertices + cfg.threads - 1) / cfg.threads;
    Xoshiro256 prng(cfg.seed * 1117 + c.tid());
    for (std::size_t round = 0; round < n_rounds; ++round) {
      const std::size_t i0 = 0;
      const std::size_t i1 = per;
      auto gain_cost = [&] { c.compute(150); };  // cut-gain evaluation

      switch (cfg.variant) {
        case Variant::kBaseline:
          for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t v = pick_vertex(prng);
            gain_cost();
            // Listing 1: non-blocking path first, blocking path second.
            if (locks[v].try_acquire(c)) {
              update_vertex(c, v);
              locks[v].release(c);
            } else {
              locks[v].acquire(c);
              update_vertex(c, v);
              locks[v].release(c);
            }
          }
          break;
        case Variant::kTsxInit:
          for (std::size_t i = i0; i < i1; ++i) {
            const std::size_t v = pick_vertex(prng);
            gain_cost();
            // One transactional begin replaces both lock checks.
            lockset.critical(c, {&locks[v]}, [&] { update_vertex(c, v); });
          }
          break;
        case Variant::kTsxCoarsen:
          for (std::size_t base = i0; base < i1; base += gran) {
            const std::size_t end = std::min(i1, base + gran);
            std::vector<std::size_t> batch;
            std::vector<sync::SpinLock*> set;
            for (std::size_t i = base; i < end; ++i) {
              gain_cost();
              batch.push_back(pick_vertex(prng));
              set.push_back(&locks[batch.back()]);
            }
            lockset.critical(c, set, [&] {
              for (std::size_t v : batch) update_vertex(c, v);
            });
          }
          break;
        case Variant::kConflictFree:
          throw sim::SimError("graphcluster has no conflict-free variant");
      }
    }
  });

  // Invariant: every vertex was updated n_rounds times in total, so the
  // cut-cost accumulators are bounded; verify cluster ids are in range.
  bool ok = true;
  for (std::size_t v = 0; v < n_vertices; ++v) {
    if (cluster_at(v).peek(m) >= 16) ok = false;
  }
  r.checksum = ok ? 0x6C : 0;
  return r;
}

}  // namespace tsxhpc::apps
