// The six real-world HPC workloads of Table 2 (Section 5), each implemented
// with the synchronization variants the paper compares:
//
//   baseline     - the application's original synchronization (per-entity
//                  locks, LOCK-prefixed atomics, or lock-free algorithms)
//   tsx.init     - the straightforward TSX port: critical sections /
//                  atomics / lock-free algorithms become single-global-lock
//                  sections elided with RTM (Section 5.2), including
//                  lockset elision where the original took several locks
//   tsx.coarsen  - plus transactional coarsening (static merging of
//                  adjacent updates and/or dynamic batching with a
//                  granularity knob; Section 5.2.2 and Table 2)
//   conflictfree - the alternative conflict-free scheme where the paper
//                  evaluates one (histogram: privatization; physicsSolver:
//                  barrier groups; Figure 5)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sync/elision.h"

namespace tsxhpc::apps {

enum class Variant {
  kBaseline,
  kTsxInit,
  kTsxCoarsen,
  kConflictFree,
};

const char* to_string(Variant v);

struct Config {
  Variant variant = Variant::kBaseline;
  int threads = 1;
  std::uint64_t seed = 3;
  double scale = 1.0;
  /// Dynamic-coarsening batch size (TXN_GRAN in Listing 3). 0 = the
  /// workload's default. Only meaningful for kTsxCoarsen.
  std::size_t gran = 0;
  sync::ElisionPolicy policy{};
  /// Telemetry label for the runs this invocation records (carried into
  /// Machine::run via RunSpec; empty = telemetry default naming).
  std::string run_label;
  sim::MachineConfig machine{};
};

struct Result {
  sim::Cycles makespan = 0;
  sim::RunStats stats;
  std::uint64_t checksum = 0;
};

using WorkloadFn = std::function<Result(const Config&)>;

struct Workload {
  std::string name;
  WorkloadFn fn;
  bool has_conflict_free;  // Figure 5 alternative exists
};

Result run_graphcluster(const Config& cfg);
Result run_ua(const Config& cfg);
Result run_physics(const Config& cfg);
Result run_nufft(const Config& cfg);
Result run_histogram(const Config& cfg);
Result run_canneal(const Config& cfg);

const std::vector<Workload>& all_workloads();

}  // namespace tsxhpc::apps
