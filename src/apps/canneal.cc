// canneal (Table 2): PARSEC's VLSI-router, simulated annealing. Each thread
// repeatedly picks two netlist elements and tries to swap their locations.
// The original performs the swap with a SOPHISTICATED LOCK-FREE algorithm:
// version-stamped locations read with atomic loads, cost evaluation, then a
// two-location commit protected by version rechecks and CAS retries.
// Variants:
//   baseline     the lock-free algorithm (atomics + version checks)
//   tsx.init     replace the whole algorithm with one elided region —
//                simpler AND faster, because the atomic read-time checks
//                disappear (Section 5.2, confirming Dice et al. [5])
//   tsx.coarsen  batch `gran` swap attempts per region
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_canneal(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_elements = scaled(cfg.scale, 4096, 256);
  const std::size_t n_swaps = scaled(cfg.scale, 6144, 256);
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 4;

  // Element locations, each with a version counter: [loc, version] pairs.
  auto loc =
      SharedArray<std::uint64_t>::alloc(m, {.name = "canneal/loc"}, n_elements, 0);
  auto ver =
      SharedArray<std::uint64_t>::alloc(m, {.name = "canneal/ver"}, n_elements, 0);
  for (std::size_t i = 0; i < n_elements; ++i) loc.at(i).init(m, i);
  sync::ElidedLock elided(m, cfg.policy);

  Result r = run_region(cfg, m, [&](Context& c) {
    Xoshiro256 rng(cfg.seed * 131 + c.tid());
    const std::size_t per = (n_swaps + cfg.threads - 1) / cfg.threads;
    auto cost_eval = [&] { c.compute(250); };  // routing-cost delta

    auto pick_pair = [&](std::size_t& a, std::size_t& b) {
      a = rng.next_below(n_elements);
      do {
        b = rng.next_below(n_elements);
      } while (b == a);
      if (a > b) std::swap(a, b);
    };

    switch (cfg.variant) {
      case Variant::kBaseline:
        for (std::size_t s = 0; s < per; ++s) {
          std::size_t a, b;
          pick_pair(a, b);
          for (;;) {
            // Lock-free read phase: location + version snapshots. Odd
            // version = concurrent swap in flight; spin.
            const std::uint64_t va = ver.at(a).load(c);
            const std::uint64_t vb = ver.at(b).load(c);
            if (((va | vb) & 1) != 0) {
              c.compute(60);
              continue;
            }
            const std::uint64_t la = loc.at(a).load(c);
            const std::uint64_t lb = loc.at(b).load(c);
            cost_eval();
            // Re-check versions before attempting the commit (the
            // read-time checks tsx.init eliminates).
            if (ver.at(a).load(c) != va || ver.at(b).load(c) != vb) {
              continue;
            }
            // Two-location commit: CAS the versions to odd (busy), swap,
            // release with incremented versions.
            if (!ver.at(a).cas(c, va, va + 1)) continue;
            if (!ver.at(b).cas(c, vb, vb + 1)) {
              ver.at(a).store(c, va);  // roll back a's busy mark
              continue;
            }
            loc.at(a).store(c, lb);
            loc.at(b).store(c, la);
            ver.at(a).store(c, va + 2);
            ver.at(b).store(c, vb + 2);
            break;
          }
        }
        break;
      case Variant::kTsxInit:
        for (std::size_t s = 0; s < per; ++s) {
          std::size_t a, b;
          pick_pair(a, b);
          cost_eval();
          elided.critical(c, [&] {
            const std::uint64_t la = loc.at(a).load(c);
            loc.at(a).store(c, loc.at(b).load(c));
            loc.at(b).store(c, la);
          });
        }
        break;
      case Variant::kTsxCoarsen:
        for (std::size_t base = 0; base < per; base += gran) {
          const std::size_t end = std::min(per, base + gran);
          std::vector<std::pair<std::size_t, std::size_t>> pairs;
          for (std::size_t s = base; s < end; ++s) {
            std::size_t a, b;
            pick_pair(a, b);
            pairs.emplace_back(a, b);
            cost_eval();
          }
          elided.critical(c, [&] {
            for (const auto& [a, b] : pairs) {
              const std::uint64_t la = loc.at(a).load(c);
              loc.at(a).store(c, loc.at(b).load(c));
              loc.at(b).store(c, la);
            }
          });
        }
        break;
      case Variant::kConflictFree:
        throw sim::SimError("canneal has no conflict-free variant");
    }
  });

  // Swaps are permutations: the multiset of locations must be 0..n-1.
  std::vector<bool> seen(n_elements, false);
  bool ok = true;
  for (std::size_t i = 0; i < n_elements; ++i) {
    const std::uint64_t l = loc.at(i).peek(m);
    if (l >= n_elements || seen[l]) ok = false;
    if (l < n_elements) seen[l] = true;
  }
  r.checksum = ok ? 0xCA7 : 0;
  return r;
}

}  // namespace tsxhpc::apps
