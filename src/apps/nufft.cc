// nufft (Table 2): 3-D non-uniform FFT, adjoint operator — reduces a set of
// non-uniformly spaced spectral samples onto a uniform grid. Each sample
// contributes to an unpredictable neighbourhood of grid points; the
// original synchronizes with an ARRAY OF LOCKS hashed over the grid.
// Section 5.2: "nufft has significant concurrency within a critical
// section hidden under lock contention" — distinct samples mapping to the
// same lock rarely touch the same grid points, which is exactly what
// transactional execution exposes. Variants:
//   baseline     lock-array critical section per sample
//   tsx.init     elided region per sample
//   tsx.coarsen  dynamic coarsening: `gran` samples per region
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_nufft(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t grid = scaled(cfg.scale, 32768, 1024);  // grid cells
  const std::size_t n_samples = scaled(cfg.scale, 8192, 256);
  constexpr std::size_t kSpread = 4;  // gridding kernel width
  // Coarse lock array: many grid cells share one lock (as in the baseline
  // of [15]) — this creates the false lock contention tsx removes.
  const std::size_t n_locks = 64;
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 4;

  auto grid_re = SharedArray<double>::alloc(m, {.name = "nufft/grid"}, grid, 0.0);
  std::vector<sync::SpinLock> locks;
  locks.reserve(n_locks);
  for (std::size_t i = 0; i < n_locks; ++i) locks.emplace_back(m);
  sync::ElidedLock elided(m, cfg.policy);

  struct Sample {
    std::uint32_t cell;  // first grid cell of its kernel support
    double v;
  };
  std::vector<Sample> samples(n_samples);
  Xoshiro256 rng(cfg.seed);
  for (auto& s : samples) {
    s = {static_cast<std::uint32_t>(rng.next_below(grid - kSpread)),
         rng.next_double()};
  }

  auto deposit = [&](Context& c, const Sample& s) {
    for (std::size_t j = 0; j < kSpread; ++j) {
      auto cell = grid_re.at(s.cell + j);
      cell.store(c, cell.load(c) + s.v / (1.0 + j));
    }
  };

  Result r = run_region(cfg, m, [&](Context& c) {
    const std::size_t per = (n_samples + cfg.threads - 1) / cfg.threads;
    const std::size_t i0 = c.tid() * per;
    const std::size_t i1 = std::min(n_samples, i0 + per);
    auto kernel_cost = [&] { c.compute(180); };  // interpolation weights

    switch (cfg.variant) {
      case Variant::kBaseline:
        for (std::size_t i = i0; i < i1; ++i) {
          kernel_cost();
          // The kernel support may straddle a lock-region boundary; the
          // original acquires every region lock the support touches.
          const std::size_t region = grid / n_locks;
          const std::size_t l1 = samples[i].cell / region;
          const std::size_t l2 = (samples[i].cell + kSpread - 1) / region;
          locks[l1].acquire(c);
          if (l2 != l1) locks[l2].acquire(c);
          deposit(c, samples[i]);
          if (l2 != l1) locks[l2].release(c);
          locks[l1].release(c);
        }
        break;
      case Variant::kTsxInit:
        for (std::size_t i = i0; i < i1; ++i) {
          kernel_cost();
          elided.critical(c, [&] { deposit(c, samples[i]); });
        }
        break;
      case Variant::kTsxCoarsen:
        for (std::size_t base = i0; base < i1; base += gran) {
          const std::size_t end = std::min(i1, base + gran);
          for (std::size_t i = base; i < end; ++i) kernel_cost();
          elided.critical(c, [&] {
            for (std::size_t i = base; i < end; ++i) deposit(c, samples[i]);
          });
        }
        break;
      case Variant::kConflictFree:
        throw sim::SimError("nufft has no conflict-free variant");
    }
  });

  double total = 0;
  for (std::size_t i = 0; i < grid; ++i) total += grid_re.at(i).peek(m);
  double expect = 0;
  for (const auto& s : samples) {
    for (std::size_t j = 0; j < kSpread; ++j) expect += s.v / (1.0 + j);
  }
  r.checksum = std::abs(total - expect) < 1e-6 * expect ? 0xFF7 : 0;
  return r;
}

}  // namespace tsxhpc::apps
