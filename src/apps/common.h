// Shared scaffolding for the real-world workloads.
#pragma once

#include <algorithm>
#include <vector>

#include "apps/apps.h"
#include "sim/rng.h"
#include "sim/shared.h"
#include "sync/coarsen.h"
#include "sync/elision.h"
#include "sync/locks.h"

namespace tsxhpc::apps {

using sim::Addr;
using sim::Context;
using sim::Cycles;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;
using sim::Xoshiro256;

template <typename BodyFn>
Result run_region(const Config& cfg, Machine& m, BodyFn&& body) {
  Result r;
  sim::RunSpec spec;
  spec.threads = cfg.threads;
  spec.label = cfg.run_label;
  spec.body = std::forward<BodyFn>(body);
  r.stats = m.run(spec);
  r.makespan = r.stats.makespan;
  return r;
}

inline std::size_t scaled(double scale, std::size_t base,
                          std::size_t min = 1) {
  const auto v = static_cast<std::size_t>(base * scale);
  return v < min ? min : v;
}

}  // namespace tsxhpc::apps
