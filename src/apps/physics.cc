// physicsSolver (Table 2): projected SOR solver resolving pairwise force
// constraints between objects. The key critical section updates the total
// force on BOTH objects of a pair; the original acquires two per-object
// locks. Variants:
//   baseline     acquire the pair of per-object mutexes (address order)
//   tsx.init     LOCKSET ELISION (Section 5.2.1): one XBEGIN subscribes
//                both locks and replaces two atomic acquisitions
//   tsx.coarsen  plus dynamic coarsening: `gran` constraints per region
//   conflictfree barrier-based groups of independent constraints; the
//                input's skewed object degrees create the load imbalance
//                that makes this lose at 8 threads (Figure 5b).
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_physics(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_objects = scaled(cfg.scale, 512, 32);
  const std::size_t n_constraints = scaled(cfg.scale, 4096, 128);
  const int iterations = 3;
    // Table 2 applies Lockset elision (not dynamic coarsening) to
  // physicsSolver: the default "coarsened" configuration is gran 1, i.e.
  // pure lockset elision. Figure 5b sweeps gran explicitly.
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 1;

  // Per-object accumulated force (3 components, padded to a line by
  // allocation order) and per-object locks.
  auto force = SharedArray<double>::alloc(m, {.name = "physics/force"}, n_objects * 8, 0.0);
  std::vector<sync::SpinLock> locks;
  locks.reserve(n_objects);
  for (std::size_t i = 0; i < n_objects; ++i) locks.emplace_back(m);
  sync::ElidedLockSet lockset(cfg.policy);

  // Constraints between object pairs. A FEW objects participate in MANY
  // constraints (Section 5.4.2: "the input scene has a few objects with
  // many updates, causing large load imbalance" for the barrier scheme).
  struct Constraint {
    std::uint32_t a, b;
    double f;
  };
  std::vector<Constraint> constraints(n_constraints);
  Xoshiro256 rng(cfg.seed);
  for (auto& k : constraints) {
    // Zipf-ish skew: a quarter of constraints touch one of 2 hub objects.
    const bool hub = rng.next_bool(0.25);
    k.a = hub ? static_cast<std::uint32_t>(rng.next_below(2))
              : static_cast<std::uint32_t>(rng.next_below(n_objects));
    do {
      k.b = static_cast<std::uint32_t>(rng.next_below(n_objects));
    } while (k.b == k.a);
    k.f = rng.next_double();
  }

  // Conflict-free groups for the barrier variant: greedy graph coloring of
  // constraints so no group touches an object twice. The paper omits the
  // group-formation time (amortized over reuse); so do we (host-side).
  std::vector<std::vector<std::uint32_t>> groups;
  if (cfg.variant == Variant::kConflictFree) {
    std::vector<std::vector<bool>> used;  // per group: object used?
    for (std::uint32_t i = 0; i < n_constraints; ++i) {
      const auto& k = constraints[i];
      std::size_t g = 0;
      for (;; ++g) {
        if (g == groups.size()) {
          groups.emplace_back();
          used.emplace_back(n_objects, false);
        }
        if (!used[g][k.a] && !used[g][k.b]) break;
      }
      groups[g].push_back(i);
      used[g][k.a] = used[g][k.b] = true;
    }
  }
  sync::Barrier group_barrier(m, cfg.threads);

  auto apply = [&](Context& c, const Constraint& k) {
    // Update both objects' force components.
    for (int d = 0; d < 3; ++d) {
      auto fa = force.at(k.a * 8 + d);
      fa.store(c, fa.load(c) + k.f);
      auto fb = force.at(k.b * 8 + d);
      fb.store(c, fb.load(c) - k.f);
    }
  };

  Result r = run_region(cfg, m, [&](Context& c) {
    const std::size_t per =
        (n_constraints + cfg.threads - 1) / cfg.threads;
    const std::size_t i0 = c.tid() * per;
    const std::size_t i1 = std::min(n_constraints, i0 + per);
    auto solve_cost = [&] { c.compute(120); };  // PSOR arithmetic

    for (int it = 0; it < iterations; ++it) {
      switch (cfg.variant) {
        case Variant::kBaseline:
          for (std::size_t i = i0; i < i1; ++i) {
            const auto& k = constraints[i];
            solve_cost();
            sync::SpinLock& first = locks[std::min(k.a, k.b)];
            sync::SpinLock& second = locks[std::max(k.a, k.b)];
            first.acquire(c);
            second.acquire(c);
            apply(c, k);
            second.release(c);
            first.release(c);
          }
          break;
        case Variant::kTsxInit:
          for (std::size_t i = i0; i < i1; ++i) {
            const auto& k = constraints[i];
            solve_cost();
            lockset.critical(c, {&locks[k.a], &locks[k.b]},
                             [&] { apply(c, k); });
          }
          break;
        case Variant::kTsxCoarsen:
          for (std::size_t base = i0; base < i1; base += gran) {
            const std::size_t end = std::min(i1, base + gran);
            std::vector<sync::SpinLock*> set;
            for (std::size_t i = base; i < end; ++i) {
              solve_cost();
              set.push_back(&locks[constraints[i].a]);
              set.push_back(&locks[constraints[i].b]);
            }
            lockset.critical(c, set, [&] {
              for (std::size_t i = base; i < end; ++i) {
                apply(c, constraints[i]);
              }
            });
          }
          break;
        case Variant::kConflictFree:
          for (const auto& group : groups) {
            const std::size_t gper =
                (group.size() + cfg.threads - 1) / cfg.threads;
            const std::size_t g0 = c.tid() * gper;
            const std::size_t g1 = std::min(group.size(), g0 + gper);
            for (std::size_t gi = g0; gi < g1; ++gi) {
              solve_cost();
              apply(c, constraints[group[gi]]);  // no synchronization
            }
            group_barrier.wait(c);
          }
          break;
      }
    }
  });

  double total = 0;
  for (std::size_t i = 0; i < n_objects * 8; ++i) {
    total += force.at(i).peek(m);
  }
  // Forces are antisymmetric: the sum over all objects must be ~0.
  r.checksum = std::abs(total) < 1e-6 ? 0x0F12 : 0;
  return r;
}

}  // namespace tsxhpc::apps
