// histogram (Table 2): parallel image histogram construction — the core
// compute of two-point correlation and radix sort. Variants:
//   baseline     one LOCK-prefixed add per bin update (#pragma omp atomic)
//   tsx.init     one elided region per update — SLOWER than baseline, as
//                Figure 4 shows (Section 4.1: a critical section around a
//                single update always loses to an atomic)
//   tsx.coarsen  dynamic coarsening: TXN_GRAN updates per region
//                (Listing 3), which recovers and beats the baseline
//   conflictfree privatization: per-thread histogram copies + reduction.
//                With many bins relative to items, the reduction dominates
//                and privatization stops scaling (Figure 5a).
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_histogram(const Config& cfg) {
  Machine m(cfg.machine);
  // Figure 5a's regime: bin count large relative to the items binned.
  const std::size_t n_bins = scaled(cfg.scale, 65536, 256);
  const std::size_t n_items = scaled(cfg.scale, 262144, 512);
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 8;

  auto bins = SharedArray<std::uint64_t>::alloc(m, {.name = "histogram/bins"}, n_bins, 0);
  sync::ElidedLock elided(m, cfg.policy);

  // Input pixels (host-side, read-only).
  std::vector<std::uint32_t> pixels(n_items);
  Xoshiro256 rng(cfg.seed);
  for (auto& p : pixels) {
    p = static_cast<std::uint32_t>(rng.next_below(n_bins));
  }

  // Privatization state (allocated eagerly so all variants share layout).
  const int max_threads = cfg.threads;
  SharedArray<std::uint64_t> priv;
  sync::Barrier reduce_barrier(m, cfg.threads);
  if (cfg.variant == Variant::kConflictFree) {
    priv = SharedArray<std::uint64_t>::alloc(
        m, n_bins * static_cast<std::size_t>(max_threads), 0);
  }

  Result r = run_region(cfg, m, [&](Context& c) {
    const std::size_t per = (n_items + cfg.threads - 1) / cfg.threads;
    const std::size_t i0 = c.tid() * per;
    const std::size_t i1 = std::min(n_items, i0 + per);
    auto pixel_cost = [&] { c.compute(12); };  // luminance computation

    switch (cfg.variant) {
      case Variant::kBaseline:
        for (std::size_t i = i0; i < i1; ++i) {
          pixel_cost();
          bins.at(pixels[i]).fetch_add(c, 1);
        }
        break;
      case Variant::kTsxInit:
        for (std::size_t i = i0; i < i1; ++i) {
          pixel_cost();
          elided.critical(c, [&] {
            bins.at(pixels[i]).store(c, bins.at(pixels[i]).load(c) + 1);
          });
        }
        break;
      case Variant::kTsxCoarsen: {
        // Listing 3: skip XBEGIN/XEND instances to merge TXN_GRAN updates.
        for (std::size_t base = i0; base < i1; base += gran) {
          const std::size_t end = std::min(i1, base + gran);
          for (std::size_t i = base; i < end; ++i) pixel_cost();
          elided.critical(c, [&] {
            for (std::size_t i = base; i < end; ++i) {
              bins.at(pixels[i]).store(c, bins.at(pixels[i]).load(c) + 1);
            }
          });
        }
        break;
      }
      case Variant::kConflictFree: {
        // Privatize: unsynchronized updates to this thread's copy...
        const std::size_t my = static_cast<std::size_t>(c.tid()) * n_bins;
        for (std::size_t i = i0; i < i1; ++i) {
          pixel_cost();
          const Addr a = priv.addr(my + pixels[i]);
          c.store(a, c.load(a) + 1);
        }
        // ...then reduce: thread t merges bins [t*n/T, (t+1)*n/T) across
        // all copies. Cost grows with n_bins, not with n_items — the
        // Figure 5a scaling killer.
        const std::size_t bper = (n_bins + cfg.threads - 1) / cfg.threads;
        const std::size_t b0 = c.tid() * bper;
        const std::size_t b1 = std::min(n_bins, b0 + bper);
        // Reduction must wait for all counting to finish.
        reduce_barrier.wait(c);
        for (std::size_t b = b0; b < b1; ++b) {
          std::uint64_t sum = 0;
          for (int t = 0; t < cfg.threads; ++t) {
            sum += c.load(priv.addr(static_cast<std::size_t>(t) * n_bins + b));
          }
          if (sum != 0) c.store(bins.addr(b), sum);
        }
        break;
      }
    }
  });

  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n_bins; ++b) total += bins.at(b).peek(m);
  r.checksum = total == n_items ? 0x815 : 0;
  return r;
}

}  // namespace tsxhpc::apps
