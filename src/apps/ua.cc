// ua (Table 2): the Unstructured Adaptive workload from NAS Parallel
// Benchmarks. The Mortar Element Method gathers thread-local collocation
// point values onto mortars of a dynamically changing global grid; each
// gather is synchronized with an atomic (Listing 2: four `#pragma omp
// atomic` adds per collocation point). Variants:
//   baseline     four LOCK-prefixed (CAS-loop) double adds per point
//   tsx.init     each add in its own elided region — slower than baseline
//   tsx.coarsen  STATIC coarsening: all four adds of a point in ONE region
//                (Section 5.2.2 / Listing 2), optionally combined with
//                dynamic batching of `gran` points.
#include "apps/common.h"

namespace tsxhpc::apps {

Result run_ua(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_mortars = scaled(cfg.scale, 8192, 256);
  const std::size_t n_points = scaled(cfg.scale, 16384, 512);
  constexpr std::size_t kAddsPerPoint = 4;  // Listing 2: ig1..ig4
  const std::size_t gran = cfg.gran != 0 ? cfg.gran : 4;

  auto tmor = SharedArray<double>::alloc(m, {.name = "ua/tmor"}, n_mortars, 0.0);
  sync::ElidedLock elided(m, cfg.policy);

  // Host-side inputs: per-point mortar indices and contribution values.
  struct Point {
    std::uint32_t ig[kAddsPerPoint];
    double tx;
  };
  std::vector<Point> points(n_points);
  Xoshiro256 rng(cfg.seed);
  for (auto& p : points) {
    // Mortars of one point are spatially clustered (mesh locality).
    const std::uint32_t base =
        static_cast<std::uint32_t>(rng.next_below(n_mortars - 8));
    for (std::size_t j = 0; j < kAddsPerPoint; ++j) {
      p.ig[j] = base + static_cast<std::uint32_t>(rng.next_below(8));
    }
    p.tx = 1.0 + rng.next_double();
  }

  const double third = 1.0 / 3.0;
  Result r = run_region(cfg, m, [&](Context& c) {
    const std::size_t per = (n_points + cfg.threads - 1) / cfg.threads;
    const std::size_t i0 = c.tid() * per;
    const std::size_t i1 = std::min(n_points, i0 + per);
    auto index_cost = [&] { c.compute(40); };  // collocation/mortar indexing

    switch (cfg.variant) {
      case Variant::kBaseline:
        for (std::size_t i = i0; i < i1; ++i) {
          index_cost();
          for (std::size_t j = 0; j < kAddsPerPoint; ++j) {
            tmor.at(points[i].ig[j]).atomic_add(c, points[i].tx * third);
          }
        }
        break;
      case Variant::kTsxInit:
        for (std::size_t i = i0; i < i1; ++i) {
          index_cost();
          for (std::size_t j = 0; j < kAddsPerPoint; ++j) {
            elided.critical(c, [&] {
              auto cell = tmor.at(points[i].ig[j]);
              cell.store(c, cell.load(c) + points[i].tx * third);
            });
          }
        }
        break;
      case Variant::kTsxCoarsen:
        // Static coarsening merges the four adds; dynamic coarsening then
        // batches `gran` points per region.
        for (std::size_t base = i0; base < i1; base += gran) {
          const std::size_t end = std::min(i1, base + gran);
          for (std::size_t i = base; i < end; ++i) index_cost();
          elided.critical(c, [&] {
            for (std::size_t i = base; i < end; ++i) {
              for (std::size_t j = 0; j < kAddsPerPoint; ++j) {
                auto cell = tmor.at(points[i].ig[j]);
                cell.store(c, cell.load(c) + points[i].tx * third);
              }
            }
          });
        }
        break;
      case Variant::kConflictFree:
        throw sim::SimError("ua has no conflict-free variant");
    }
  });

  double total = 0;
  for (std::size_t i = 0; i < n_mortars; ++i) total += tmor.at(i).peek(m);
  double expect = 0;
  for (const auto& p : points) expect += kAddsPerPoint * p.tx * third;
  // Floating-point association differs across schedules; compare loosely.
  const bool ok = std::abs(total - expect) < 1e-6 * expect;
  r.checksum = ok ? 0x0A : 0;
  return r;
}

}  // namespace tsxhpc::apps
