#include "apps/apps.h"

namespace tsxhpc::apps {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::kBaseline: return "baseline";
    case Variant::kTsxInit: return "tsx.init";
    case Variant::kTsxCoarsen: return "tsx.coarsen";
    case Variant::kConflictFree: return "conflictfree";
  }
  return "?";
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"graphcluster", run_graphcluster, false},
      {"ua", run_ua, false},
      {"physics", run_physics, true},
      {"nufft", run_nufft, false},
      {"histogram", run_histogram, true},
      {"canneal", run_canneal, false},
  };
  return kWorkloads;
}

}  // namespace tsxhpc::apps
