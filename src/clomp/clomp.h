// CLOMP-TM-style synthetic mesh-update benchmark (Schindewolf et al. [23],
// as used in the paper's Section 4.1 / Figure 1).
//
// An unstructured mesh is divided into partitions (one per thread), each
// subdivided into zones. Every zone is pre-wired to deposit a value into a
// set of *scatter zones*: an update reads the scatter zone's coordinate,
// computes, and deposits the new value back. Deposits must be synchronized;
// the benchmark compares synchronization schemes:
//
//   Small Atomic   - one LOCK-prefixed add per deposit (#pragma omp atomic)
//   Small Critical - one global-lock critical section per deposit
//   Large Critical - one global-lock critical section per zone (batched)
//   Small TM       - one elided transactional region per deposit
//   Large TM       - one elided transactional region per zone (batched)
//
// Figure 1's configuration: threads do not contend for memory locations
// (scatter targets stay within the updating thread's partition) and
// HyperThreading is disabled (4 threads on 4 cores).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sync/elision.h"

namespace tsxhpc::clomp {

enum class Scheme {
  kSerial,
  kSmallAtomic,
  kSmallCritical,
  kLargeCritical,
  kSmallTM,
  kLargeTM,
};

const char* to_string(Scheme s);

struct Config {
  int threads = 4;
  int zones_per_thread = 64;
  int scatters_per_zone = 4;
  int repetitions = 20;  // full mesh sweeps
  /// Cycles of index/value computation accompanying each scatter update.
  sim::Cycles compute_per_update = 15;
  /// Fraction of scatter targets wired into *another* thread's partition
  /// (0 reproduces Figure 1's no-contention setup).
  double cross_partition_fraction = 0.0;
  std::uint64_t seed = 42;
  sync::ElisionPolicy policy{};
  /// Telemetry label for the runs this invocation records (carried into
  /// Machine::run via RunSpec; empty = telemetry default naming).
  std::string run_label;
  sim::MachineConfig machine{};
};

struct Result {
  Scheme scheme;
  sim::Cycles makespan = 0;
  sim::RunStats stats;
  /// Sum over all zone values after the run; scheme-independent for a given
  /// (seed, geometry): used to verify synchronization correctness.
  std::uint64_t checksum = 0;
  std::uint64_t total_updates = 0;
};

/// Run one scheme. The serial reference uses the same total work on one
/// thread with no synchronization.
Result run(const Config& cfg, Scheme scheme);

/// Speedup of `scheme` at cfg.threads over the serial version (Figure 1's
/// Y axis).
double speedup_vs_serial(const Config& cfg, Scheme scheme);

}  // namespace tsxhpc::clomp
