#include "clomp/clomp.h"

#include "sim/rng.h"
#include "sim/shared.h"
#include "sync/locks.h"

namespace tsxhpc::clomp {

using sim::Addr;
using sim::Context;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kSerial: return "serial";
    case Scheme::kSmallAtomic: return "small-atomic";
    case Scheme::kSmallCritical: return "small-critical";
    case Scheme::kLargeCritical: return "large-critical";
    case Scheme::kSmallTM: return "small-tm";
    case Scheme::kLargeTM: return "large-tm";
  }
  return "?";
}

namespace {

/// The wired mesh: per-zone scatter target lists plus the shared value and
/// coordinate arrays (packed, as in the original benchmark's zone arrays).
struct Mesh {
  Mesh(Machine& m, const Config& cfg, int total_zones)
      : values(SharedArray<std::uint64_t>::alloc(m, {.name = "clomp/values"}, total_zones, 0)),
        coords(SharedArray<std::uint64_t>::alloc(m, {.name = "clomp/coords"}, total_zones, 0)) {
    sim::Xoshiro256 rng(cfg.seed);
    const int per_thread = cfg.zones_per_thread;
    targets.resize(total_zones);
    for (int z = 0; z < total_zones; ++z) {
      const int owner = z / per_thread;
      targets[z].reserve(cfg.scatters_per_zone);
      for (int s = 0; s < cfg.scatters_per_zone; ++s) {
        int target_part = owner;
        if (cfg.cross_partition_fraction > 0.0 &&
            rng.next_bool(cfg.cross_partition_fraction)) {
          target_part =
              static_cast<int>(rng.next_below(total_zones / per_thread));
        }
        targets[z].push_back(target_part * per_thread +
                             static_cast<int>(rng.next_below(per_thread)));
      }
    }
    for (int z = 0; z < total_zones; ++z) {
      coords.at(z).init(m, 1 + (z * 2654435761u) % 97);
    }
  }

  SharedArray<std::uint64_t> values;
  SharedArray<std::uint64_t> coords;
  std::vector<std::vector<int>> targets;
};

/// One scatter update: read the target's coordinate, compute, deposit.
/// `deposit` performs the synchronized add.
template <typename DepositFn>
void scatter_update(Context& c, const Config& cfg, Mesh& mesh, int target,
                    DepositFn&& deposit) {
  const std::uint64_t coord = mesh.coords.at(target).load(c);
  c.compute(cfg.compute_per_update);
  deposit(target, coord + 1);
}

}  // namespace

Result run(const Config& cfg, Scheme scheme) {
  Machine m(cfg.machine);
  const int threads = scheme == Scheme::kSerial ? 1 : cfg.threads;
  const int total_zones = cfg.threads * cfg.zones_per_thread;
  Mesh mesh(m, cfg, total_zones);
  sync::SpinLock global_lock(m);
  sync::ElidedLock elided(m, cfg.policy);

  auto body = [&](Context& c) {
    // With T worker threads each owns total_zones/T contiguous zones; the
    // serial run owns all of them.
    const int zones_per_worker = total_zones / threads;
    const int z0 = c.tid() * zones_per_worker;
    const int z1 = z0 + zones_per_worker;
    for (int rep = 0; rep < cfg.repetitions; ++rep) {
      for (int z = z0; z < z1; ++z) {
        const auto& tgts = mesh.targets[z];
        switch (scheme) {
          case Scheme::kSerial:
            for (int t : tgts) {
              scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                // Unsynchronized plain add.
                mesh.values.at(tz).store(c, mesh.values.at(tz).load(c) + v);
              });
            }
            break;
          case Scheme::kSmallAtomic:
            for (int t : tgts) {
              scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                mesh.values.at(tz).fetch_add(c, v);
              });
            }
            break;
          case Scheme::kSmallCritical:
            for (int t : tgts) {
              scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                sync::Guard<sync::SpinLock> g(c, global_lock);
                mesh.values.at(tz).store(c, mesh.values.at(tz).load(c) + v);
              });
            }
            break;
          case Scheme::kLargeCritical: {
            sync::Guard<sync::SpinLock> g(c, global_lock);
            for (int t : tgts) {
              scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                mesh.values.at(tz).store(c, mesh.values.at(tz).load(c) + v);
              });
            }
            break;
          }
          case Scheme::kSmallTM:
            for (int t : tgts) {
              scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                elided.critical(c, [&] {
                  mesh.values.at(tz).store(c, mesh.values.at(tz).load(c) + v);
                });
              });
            }
            break;
          case Scheme::kLargeTM:
            elided.critical(c, [&] {
              for (int t : tgts) {
                scatter_update(c, cfg, mesh, t, [&](int tz, std::uint64_t v) {
                  mesh.values.at(tz).store(c, mesh.values.at(tz).load(c) + v);
                });
              }
            });
            break;
        }
      }
    }
  };

  Result r;
  r.scheme = scheme;
  sim::RunSpec spec;
  spec.threads = threads;
  spec.label = cfg.run_label;
  spec.body = body;
  r.stats = m.run(spec);
  r.makespan = r.stats.makespan;
  for (int z = 0; z < total_zones; ++z) {
    r.checksum += mesh.values.at(z).peek(m);
  }
  r.total_updates = static_cast<std::uint64_t>(total_zones) *
                    cfg.scatters_per_zone * cfg.repetitions;
  return r;
}

double speedup_vs_serial(const Config& cfg, Scheme scheme) {
  const Result serial = run(cfg, Scheme::kSerial);
  const Result par = run(cfg, scheme);
  return static_cast<double>(serial.makespan) /
         static_cast<double>(par.makespan);
}

}  // namespace tsxhpc::clomp
