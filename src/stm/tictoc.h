// TicToc-style timestamp-ordering OCC (Yu, Pavlo, Sanchez & Devadas,
// SIGMOD'16) — the "data-driven" OCC the ROADMAP's scheme axis wants as a
// modern baseline against RTM elision and TL2.
//
// Unlike TL2 there is no global version clock: each stripe carries a packed
// (wts, rts) pair — the write timestamp of the version living there and the
// latest logical time anyone is known to have read it. A transaction computes
// its own commit timestamp from its footprint (after every overwritten rts,
// at or after every read wts) and *extends* read timestamps at commit instead
// of aborting when a read is merely old rather than stale. Those extensions
// are the scheme's signature event and are counted first-class
// (`read_set_extensions` in the telemetry `cc` block).
//
// Read modes mirror the oltp-cc-bench "trlock" exemplar family:
//   kOcc    — optimistic reads (ts-word / value / ts-word), validated and
//             possibly extended at commit ("trlock-occ").
//   kLock   — reads take the stripe lock at encounter time, no-wait
//             (locked stripe => immediate abort, so no deadlock) ("trlock").
//   kHybrid — start optimistic, switch to locking reads for the retries
//             after an abort of the same region ("trlock-hybrid").
//
// Cost profile is kept deliberately comparable to TL2 (same kBookkeeping /
// kAbortPenalty, same word-granularity write buffering) so scheme
// comparisons measure the algorithm, not accounting skew.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/context.h"
#include "sim/machine.h"
#include "sim/shared.h"
#include "stm/stm.h"

namespace tsxhpc::stm {

using sim::Addr;
using sim::Context;
using sim::Machine;

/// How TicToc transactional reads acquire their consistency guarantee.
enum class TicTocReadMode : std::uint8_t { kOcc, kLock, kHybrid };

inline const char* to_string(TicTocReadMode m) {
  switch (m) {
    case TicTocReadMode::kOcc: return "occ";
    case TicTocReadMode::kLock: return "lock";
    case TicTocReadMode::kHybrid: return "hybrid";
  }
  return "?";
}

/// Shared TicToc metadata: the per-stripe timestamp-word table. There is no
/// global clock — that is the point of the algorithm.
class TicTocSpace {
 public:
  // TS-word encoding: bit 0 = locked; bits 1..40 = wts; bits 41..63 = delta,
  // with rts = wts + delta. The delta field saturates: an under-stored rts is
  // always safe (it can only force a future extension, never admit a stale
  // read).
  static constexpr unsigned kWtsBits = 40;
  static constexpr unsigned kDeltaBits = 23;
  static constexpr std::uint64_t kWtsMax = (1ULL << kWtsBits) - 1;
  static constexpr std::uint64_t kDeltaMax = (1ULL << kDeltaBits) - 1;

  static std::uint64_t pack(std::uint64_t wts, std::uint64_t rts,
                            bool locked) {
    const std::uint64_t delta = std::min(rts - wts, kDeltaMax);
    return (locked ? 1ULL : 0ULL) | ((wts & kWtsMax) << 1)
           | (delta << (1 + kWtsBits));
  }
  static bool locked(std::uint64_t w) { return (w & 1) != 0; }
  static std::uint64_t wts(std::uint64_t w) { return (w >> 1) & kWtsMax; }
  static std::uint64_t rts(std::uint64_t w) {
    return wts(w) + (w >> (1 + kWtsBits));
  }

  /// `stripes` must be a power of two; stripe = addr >> shift, like TL2.
  TicTocSpace(Machine& m, std::size_t stripes = 1 << 16, unsigned shift = 3)
      : shift_(shift),
        mask_(stripes - 1),
        words_(sim::SharedArray<std::uint64_t>::alloc(
            m, {.name = "tictoc/stripes"}, stripes,
            pack(/*wts=*/2, /*rts=*/2, /*locked=*/false))) {
    if ((stripes & (stripes - 1)) != 0) {
      throw sim::SimError("TicToc stripe count must be a power of two");
    }
  }

  sim::Shared<std::uint64_t> word_for(Addr a) const {
    return words_.at((a >> shift_) & mask_);
  }

 private:
  unsigned shift_;
  std::size_t mask_;
  sim::SharedArray<std::uint64_t> words_;
};

/// Per-thread TicToc transaction descriptor.
class TicTocTx {
 public:
  explicit TicTocTx(TicTocSpace& space) : space_(space) {}

  /// `mode` is the effective read mode for this attempt: kOcc or kLock.
  /// (kHybrid is a region-level policy — the caller maps it to kOcc for the
  /// first attempt and kLock after an abort.)
  void begin(Context& /*c*/, TicTocReadMode mode = TicTocReadMode::kOcc) {
    read_set_.clear();
    write_map_.clear();
    write_log_.clear();
    owned_.clear();
    commit_actions_.clear();
    mode_ = mode;
    active_ = true;
    starts_++;
  }

  /// Register an action to run iff this transaction commits. Discarded on
  /// abort.
  void on_commit(std::function<void(Context&)> action) {
    commit_actions_.push_back(std::move(action));
  }

  std::uint64_t read(Context& c, Addr a, unsigned size = 8) {
    // Write-set lookup first (read-your-writes).
    if (!write_map_.empty()) {
      if (auto it = write_map_.find(detail::word_key(a));
          it != write_map_.end()) {
        return detail::word_extract(write_log_[it->second].value, a, size);
      }
    }
    auto ts = space_.word_for(a);
    if (mode_ == TicTocReadMode::kLock) {
      const std::uint64_t w = lock_word(c, ts);
      const std::uint64_t value = c.load(a, size);
      read_set_.push_back({ts.addr(), TicTocSpace::wts(w),
                           TicTocSpace::rts(w)});
      c.compute(kBookkeeping);
      return value;
    }
    // Optimistic read: ts-word / value / ts-word, like TL2's versioned-lock
    // sandwich but recording (wts, rts) instead of comparing against a
    // global snapshot.
    const std::uint64_t w1 = ts.load(c);
    const std::uint64_t value = c.load(a, size);
    const std::uint64_t w2 = ts.load(c);
    if (TicTocSpace::locked(w1)) abort_tx(c, StmAbortKind::kLockAcquire);
    if (w1 != w2) abort_tx(c, StmAbortKind::kReadValidation);
    read_set_.push_back({ts.addr(), TicTocSpace::wts(w1),
                         TicTocSpace::rts(w1)});
    c.compute(kBookkeeping);
    return value;
  }

  void write(Context& c, Addr a, std::uint64_t value, unsigned size = 8) {
    if (mode_ == TicTocReadMode::kLock) {
      // Encounter-time locking also covers the write stripe, so commit
      // needs no further acquisition for it.
      lock_word(c, space_.word_for(a));
    }
    const Addr k = detail::word_key(a);
    auto [it, fresh] = write_map_.try_emplace(k, write_log_.size());
    if (fresh) {
      write_log_.push_back({k, c.load(k, 8)});
    }
    write_log_[it->second].value =
        detail::word_insert(write_log_[it->second].value, a, value, size);
    c.compute(kBookkeeping);
  }

  /// Commit. Throws StmAbort on failure (state already reset).
  void commit(Context& c) {
    // Lock the write stripes not already owned. Sorted for deterministic
    // access order; progress comes from no-wait acquisition, not ordering.
    std::vector<Addr> write_stripes;
    write_stripes.reserve(write_log_.size());
    for (const auto& w : write_log_) {
      write_stripes.push_back(space_.word_for(w.addr).addr());
    }
    std::sort(write_stripes.begin(), write_stripes.end());
    write_stripes.erase(
        std::unique(write_stripes.begin(), write_stripes.end()),
        write_stripes.end());
    for (Addr ta : write_stripes) {
      if (owned_.count(ta) != 0) continue;
      const std::uint64_t w = c.load(ta, 8);
      if (TicTocSpace::locked(w) || !c.cas(ta, w, w | 1, 8)) {
        abort_tx(c, StmAbortKind::kLockAcquire);
      }
      owned_.emplace(ta, w);
    }
    // Serialization point: strictly after every overwritten version's rts,
    // at or after every read version's wts.
    std::uint64_t commit_ts = 0;
    for (Addr ta : write_stripes) {
      commit_ts = std::max(commit_ts, TicTocSpace::rts(owned_.at(ta)) + 1);
    }
    for (const ReadEntry& r : read_set_) {
      commit_ts = std::max(commit_ts, r.wts);
    }
    // Validate reads whose rts window does not reach commit_ts: re-check the
    // version still lives, then extend its rts in place instead of aborting.
    for (const ReadEntry& r : read_set_) {
      if (r.rts >= commit_ts) continue;
      if (auto it = owned_.find(r.ts_addr); it != owned_.end()) {
        // We hold the stripe (write intent or a kLock read). The version
        // must still be the one we read — a commit that slipped in between
        // our read and our lock acquisition means the value is stale (the
        // classic lost-update window). Extension itself is settled when we
        // release the stripe below.
        if (TicTocSpace::wts(it->second) != r.wts) {
          abort_tx(c, StmAbortKind::kCommitValidation);
        }
        continue;
      }
      const std::uint64_t w = c.load(r.ts_addr, 8);
      if (TicTocSpace::wts(w) != r.wts || TicTocSpace::locked(w)) {
        abort_tx(c, StmAbortKind::kCommitValidation);
      }
      if (TicTocSpace::rts(w) < commit_ts) {
        // CAS, not a plain store: another reader may race its own extension
        // (or a committer may lock the stripe) between our load and store.
        if (!c.cas(r.ts_addr, w,
                   TicTocSpace::pack(r.wts, commit_ts, false), 8)) {
          abort_tx(c, StmAbortKind::kCommitValidation);
        }
        read_set_extensions_++;
      }
    }
    // Write back, then release every owned stripe: write stripes publish
    // (wts = rts = commit_ts); read-locked stripes keep their version with
    // rts extended to commit_ts.
    for (const auto& w : write_log_) c.store(w.addr, w.value, 8);
    for (const auto& [ta, w] : owned_) {
      if (std::binary_search(write_stripes.begin(), write_stripes.end(),
                             ta)) {
        c.store(ta, TicTocSpace::pack(commit_ts, commit_ts, false), 8);
      } else {
        const std::uint64_t old_rts = TicTocSpace::rts(w);
        if (old_rts < commit_ts) read_set_extensions_++;
        c.store(ta,
                TicTocSpace::pack(TicTocSpace::wts(w),
                                  std::max(old_rts, commit_ts), false),
                8);
      }
    }
    owned_.clear();
    active_ = false;
    commits_++;
    run_commit_actions(c);
  }

  bool active() const { return active_; }
  std::uint64_t starts() const { return starts_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t aborts(StmAbortKind k) const {
    return aborts_by_kind_[static_cast<std::size_t>(k)];
  }
  std::uint64_t read_set_extensions() const { return read_set_extensions_; }
  void reset_stats() {
    starts_ = commits_ = aborts_ = read_set_extensions_ = 0;
    aborts_by_kind_ = {};
  }

 private:
  struct ReadEntry {
    Addr ts_addr;
    std::uint64_t wts;
    std::uint64_t rts;
  };
  struct WriteEntry {
    Addr addr;  // word-aligned
    std::uint64_t value;
  };

  /// No-wait stripe lock for kLock-mode reads/writes: a held stripe aborts
  /// immediately (kLockAcquire), so encounter-time locking cannot deadlock.
  /// Returns the (locked) ts-word. Idempotent per stripe.
  std::uint64_t lock_word(Context& c, sim::Shared<std::uint64_t> ts) {
    if (auto it = owned_.find(ts.addr()); it != owned_.end()) {
      return it->second | 1;
    }
    const std::uint64_t w = ts.load(c);
    if (TicTocSpace::locked(w) || !c.cas(ts.addr(), w, w | 1, 8)) {
      abort_tx(c, StmAbortKind::kLockAcquire);
    }
    owned_.emplace(ts.addr(), w);
    return w | 1;
  }

  void release_owned(Context& c) {
    // std::map iteration => ascending, deterministic release order.
    for (const auto& [ta, w] : owned_) c.store(ta, w, 8);
    owned_.clear();
  }

  [[noreturn]] void abort_tx(Context& c, StmAbortKind kind) {
    release_owned(c);
    active_ = false;
    aborts_++;
    aborts_by_kind_[static_cast<std::size_t>(kind)]++;
    commit_actions_.clear();
    c.compute(kAbortPenalty);
    throw StmAbort{kind};
  }

  void run_commit_actions(Context& c) {
    for (auto& action : commit_actions_) action(c);
    commit_actions_.clear();
  }

  static constexpr sim::Cycles kBookkeeping = 6;
  static constexpr sim::Cycles kAbortPenalty = 120;

  TicTocSpace& space_;
  TicTocReadMode mode_ = TicTocReadMode::kOcc;
  bool active_ = false;
  std::vector<ReadEntry> read_set_;
  std::unordered_map<Addr, std::size_t> write_map_;
  std::vector<WriteEntry> write_log_;
  std::map<Addr, std::uint64_t> owned_;  // ts-word addr -> pre-lock word
  std::vector<std::function<void(Context&)>> commit_actions_;
  std::uint64_t starts_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::array<std::uint64_t, 3> aborts_by_kind_{};
  std::uint64_t read_set_extensions_ = 0;
};

}  // namespace tsxhpc::stm
