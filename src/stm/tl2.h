// TL2-style software transactional memory (Dice, Shalev & Shavit, DISC'06) —
// the STM the paper compares against on STAMP (its "tl2" series).
//
// Faithful to the algorithm's structure and, critically, to its *cost
// profile*: every transactional load checks a versioned write-lock, reads
// the value, and re-checks (3 simulated shared accesses + bookkeeping);
// commits acquire per-stripe locks, validate the read set against the
// global version clock, write back, and release. This is exactly the
// instrumentation overhead that makes STM slow at one thread in Figure 2.
//
// Like real TL2 (and unlike RTM), only *annotated* accesses are tracked:
// workloads route TM_READ/TM_WRITE through this class and may do untracked
// accesses elsewhere — e.g. labyrinth's private grid copy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/context.h"
#include "sim/machine.h"
#include "sim/shared.h"
#include "stm/stm.h"

namespace tsxhpc::stm {

using sim::Addr;
using sim::Context;
using sim::Machine;

/// Shared STM metadata: the global version clock and the stripe lock table.
class Tl2Space {
 public:
  /// `stripes` must be a power of two. Each versioned write-lock covers one
  /// stripe of the address space (stripe = addr >> shift).
  Tl2Space(Machine& m, std::size_t stripes = 1 << 16, unsigned shift = 3)
      : shift_(shift),
        mask_(stripes - 1),
        clock_(sim::Shared<std::uint64_t>::alloc(m, {.name = "tl2/clock"}, 2)),
        locks_(sim::SharedArray<std::uint64_t>::alloc(m, {.name = "tl2/stripes"}, stripes, 2)) {
    if ((stripes & (stripes - 1)) != 0) {
      throw sim::SimError("TL2 stripe count must be a power of two");
    }
  }

  // Versioned lock encoding: bit0 = locked; otherwise value = version
  // (even). Initial version 2.
  sim::Shared<std::uint64_t> lock_for(Addr a) const {
    return locks_.at((a >> shift_) & mask_);
  }
  sim::Shared<std::uint64_t> clock() const { return clock_; }

 private:
  unsigned shift_;
  std::size_t mask_;
  sim::Shared<std::uint64_t> clock_;
  sim::SharedArray<std::uint64_t> locks_;
};

/// Per-thread TL2 transaction descriptor.
class Tl2Tx {
 public:
  explicit Tl2Tx(Tl2Space& space) : space_(space) {}

  void begin(Context& c) {
    read_set_.clear();
    write_map_.clear();
    write_log_.clear();
    commit_actions_.clear();
    rv_ = space_.clock().load(c);
    if (rv_ & 1) rv_ ^= 1;  // snapshot must be even (unlocked)
    active_ = true;
    starts_++;
  }

  /// Register an action to run iff this transaction commits (e.g. deferred
  /// frees from a TM-aware allocator). Discarded on abort.
  void on_commit(std::function<void(Context&)> action) {
    commit_actions_.push_back(std::move(action));
  }

  std::uint64_t read(Context& c, Addr a, unsigned size = 8) {
    // Write-set lookup first (read-your-writes).
    if (!write_map_.empty()) {
      if (auto it = write_map_.find(key(a)); it != write_map_.end()) {
        return extract(write_log_[it->second].value, a, size);
      }
    }
    auto lock = space_.lock_for(a);
    const std::uint64_t v1 = lock.load(c);
    const std::uint64_t value = c.load(a, size);
    const std::uint64_t v2 = lock.load(c);
    if ((v1 & 1) != 0 || v1 != v2 || v1 > rv_) {
      abort_tx(c, StmAbortKind::kReadValidation);
    }
    read_set_.push_back(lock.addr());
    c.compute(kBookkeeping);
    return value;
  }

  void write(Context& c, Addr a, std::uint64_t value, unsigned size = 8) {
    const Addr k = key(a);
    auto [it, fresh] = write_map_.try_emplace(k, write_log_.size());
    if (fresh) {
      // Load the enclosing word so sub-word writes merge correctly at
      // write-back time (real TL2 logs at word granularity too).
      write_log_.push_back({k, c.load(k, 8)});
    }
    write_log_[it->second].value =
        insert(write_log_[it->second].value, a, value, size);
    c.compute(kBookkeeping);
  }

  /// Commit. Throws StmAbort on validation failure (state already reset).
  void commit(Context& c) {
    if (write_log_.empty()) {
      // Read-only fast path: reads already validated against rv_.
      active_ = false;
      commits_++;
      run_commit_actions(c);
      return;
    }
    // Acquire stripe locks (sorted to avoid deadlock; real TL2 uses bounded
    // spin + abort, sorting gives the same progress guarantee).
    std::vector<Addr> lock_addrs;
    lock_addrs.reserve(write_log_.size());
    for (const auto& w : write_log_) {
      lock_addrs.push_back(space_.lock_for(w.addr).addr());
    }
    std::sort(lock_addrs.begin(), lock_addrs.end());
    lock_addrs.erase(std::unique(lock_addrs.begin(), lock_addrs.end()),
                     lock_addrs.end());
    std::size_t got = 0;
    for (; got < lock_addrs.size(); ++got) {
      const std::uint64_t v = c.load(lock_addrs[got], 8);
      if ((v & 1) != 0 || v > rv_ ||
          !c.cas(lock_addrs[got], v, v | 1, 8)) {
        break;
      }
    }
    if (got != lock_addrs.size()) {
      release_locks(c, lock_addrs, got, /*new_version=*/0);
      abort_tx(c, StmAbortKind::kLockAcquire);
    }
    // Increment global clock, validate read set.
    const std::uint64_t wv = space_.clock().fetch_add(c, 2) + 2;
    if (wv != rv_ + 2) {
      for (Addr la : read_set_) {
        const std::uint64_t v = c.load(la, 8);
        const bool locked_by_us =
            (v & 1) != 0 &&
            std::binary_search(lock_addrs.begin(), lock_addrs.end(), la);
        if (((v & 1) != 0 && !locked_by_us) || (v & ~1ULL) > rv_) {
          release_locks(c, lock_addrs, lock_addrs.size(), 0);
          abort_tx(c, StmAbortKind::kCommitValidation);
        }
      }
    }
    // Write back and release with the new version.
    for (const auto& w : write_log_) c.store(w.addr, w.value, 8);
    release_locks(c, lock_addrs, lock_addrs.size(), wv);
    active_ = false;
    commits_++;
    run_commit_actions(c);
  }

  bool active() const { return active_; }
  std::uint64_t starts() const { return starts_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  double abort_rate_pct() const {
    return starts_ == 0 ? 0.0
                        : 100.0 * static_cast<double>(aborts_) /
                              static_cast<double>(starts_);
  }
  void reset_stats() { starts_ = commits_ = aborts_ = 0; }

 private:
  struct WriteEntry {
    Addr addr;  // word-aligned
    std::uint64_t value;
  };

  static Addr key(Addr a) { return a & ~static_cast<Addr>(7); }

  static std::uint64_t extract(std::uint64_t word, Addr a, unsigned size) {
    const unsigned shift = static_cast<unsigned>(a & 7) * 8;
    const std::uint64_t mask = size == 8 ? ~0ULL : (1ULL << (size * 8)) - 1;
    return (word >> shift) & mask;
  }

  static std::uint64_t insert(std::uint64_t word, Addr a, std::uint64_t v,
                              unsigned size) {
    const unsigned shift = static_cast<unsigned>(a & 7) * 8;
    const std::uint64_t mask =
        size == 8 ? ~0ULL : ((1ULL << (size * 8)) - 1) << shift;
    return (word & ~mask) | ((v << shift) & mask);
  }

  void release_locks(Context& c, const std::vector<Addr>& addrs,
                     std::size_t count, std::uint64_t new_version) {
    for (std::size_t i = 0; i < count; ++i) {
      if (new_version != 0) {
        c.store(addrs[i], new_version, 8);
      } else {
        const std::uint64_t v = c.load(addrs[i], 8);
        c.store(addrs[i], v & ~1ULL, 8);
      }
    }
  }

  [[noreturn]] void abort_tx(Context& c, StmAbortKind kind) {
    active_ = false;
    aborts_++;
    commit_actions_.clear();
    c.compute(kAbortPenalty);
    throw StmAbort{kind};
  }

  static constexpr sim::Cycles kBookkeeping = 6;
  static constexpr sim::Cycles kAbortPenalty = 120;

  void run_commit_actions(Context& c) {
    for (auto& action : commit_actions_) action(c);
    commit_actions_.clear();
  }

  Tl2Space& space_;
  std::uint64_t rv_ = 0;
  bool active_ = false;
  std::vector<Addr> read_set_;
  std::unordered_map<Addr, std::size_t> write_map_;
  std::vector<WriteEntry> write_log_;
  std::vector<std::function<void(Context&)>> commit_actions_;
  std::uint64_t starts_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace tsxhpc::stm
