// Shared vocabulary of the software-TM family (tl2 / tictoc / mvcc): the
// abort exception their retry loops unwind on, classified by where in the
// transaction lifecycle the conflict surfaced. The classes feed the per-run
// `cc` telemetry block (telemetry v7), which CI reconciles against the abort
// totals — every STM abort is exactly one of these.
#pragma once

#include <cstdint>

namespace tsxhpc::stm {

/// Why a software transaction aborted.
enum class StmAbortKind : std::uint8_t {
  /// A transactional read observed a stripe version newer than the snapshot
  /// (or a torn/locked stripe) — the classic read-time validation failure.
  kReadValidation,
  /// The transaction could not acquire a stripe lock (held by a concurrent
  /// committer, or a no-wait read lock lost the race).
  kLockAcquire,
  /// Commit-time validation of the read set failed (the snapshot went stale
  /// between the last read and the commit point).
  kCommitValidation,
};

inline const char* to_string(StmAbortKind k) {
  switch (k) {
    case StmAbortKind::kReadValidation: return "read_validation";
    case StmAbortKind::kLockAcquire: return "lock_acquire";
    case StmAbortKind::kCommitValidation: return "commit_validation";
  }
  return "?";
}

/// Thrown on validation failure; the caller's retry loop restarts the
/// transaction (analogous to sigsetjmp/siglongjmp in real TL2).
struct StmAbort {
  StmAbortKind kind = StmAbortKind::kReadValidation;
};

namespace detail {

/// Word-granularity write-log helpers shared by the STM write buffers: logs
/// hold the enclosing 8-byte word so sub-word writes merge correctly at
/// write-back time (real TL2 logs at word granularity too).
inline std::uint64_t word_key(std::uint64_t a) {
  return a & ~std::uint64_t{7};
}

inline std::uint64_t word_extract(std::uint64_t word, std::uint64_t a,
                                  unsigned size) {
  const unsigned shift = static_cast<unsigned>(a & 7) * 8;
  const std::uint64_t mask = size == 8 ? ~0ULL : (1ULL << (size * 8)) - 1;
  return (word >> shift) & mask;
}

inline std::uint64_t word_insert(std::uint64_t word, std::uint64_t a,
                                 std::uint64_t v, unsigned size) {
  const unsigned shift = static_cast<unsigned>(a & 7) * 8;
  const std::uint64_t mask =
      size == 8 ? ~0ULL : ((1ULL << (size * 8)) - 1) << shift;
  return (word & ~mask) | ((v << shift) & mask);
}

}  // namespace detail

}  // namespace tsxhpc::stm
