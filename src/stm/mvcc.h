// Multi-version concurrency control on top of the TL2-style stripe/clock
// skeleton — the ROADMAP's "MVCC layer with snapshot read-only transactions
// and epoch-based garbage collection" item, modeled on the sto
// MvRegistry/RBTree exemplars (per-thread registries, GC accounting).
//
// The update path is deliberately TL2-shaped (stripe write-locks, global
// version clock, commit-time read validation — serializable first-committer-
// wins, so cross-scheme workload checksums stay comparable and SI write-skew
// cannot creep in). What MVCC adds is the read path: overwritten values are
// preserved in host-side version chains, so *reads never abort* — a read
// that finds its stripe newer than the snapshot walks the chain for the
// version that was current at `rv` instead of throwing (a stripe still
// mid-publish is briefly waited out, since its commit may already be inside
// the snapshot). A
// transaction that never wrote therefore commits with zero validation work
// (`snapshot_commits` in the telemetry `cc` block) — the standard answer
// for read-mostly production traffic.
//
// Version chains are host-side bookkeeping, not simulated memory: a chain
// entry is the *pre-image* of a committed overwrite, keyed by the word
// address, stamped with the overwriting commit's clock value wv. The entry
// is appended *before* the new value is stored, so a concurrent snapshot
// reader always finds either the old memory value (commit not yet at this
// word) or the chain entry (commit past it) — both equal the value at rv.
// Chain walks are charged simulated compute per hop; they cost time, just
// not coherence traffic (the chain is thread-private history in real MVCC
// implementations too).
//
// Epoch GC: every kGcInterval update commits, the committer prunes entries
// no active snapshot can reach (wv <= min active rv, read from the
// per-thread registry) and is charged for the work; `gc_runs`/`gc_reclaims`
// are attributed to the triggering thread.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/context.h"
#include "sim/machine.h"
#include "sim/shared.h"
#include "stm/stm.h"

namespace tsxhpc::stm {

using sim::Addr;
using sim::Context;
using sim::Machine;

/// Shared MVCC metadata: TL2-style stripe locks + clock, the host-side
/// version chains, and the per-thread active-snapshot registry.
class MvccSpace {
 public:
  MvccSpace(Machine& m, std::size_t stripes = 1 << 16, unsigned shift = 3)
      : shift_(shift),
        mask_(stripes - 1),
        clock_(
            sim::Shared<std::uint64_t>::alloc(m, {.name = "mvcc/clock"}, 2)),
        locks_(sim::SharedArray<std::uint64_t>::alloc(
            m, {.name = "mvcc/stripes"}, stripes, 2)) {
    if ((stripes & (stripes - 1)) != 0) {
      throw sim::SimError("MVCC stripe count must be a power of two");
    }
  }

  // Versioned lock encoding (same as TL2): bit0 = locked; else even version.
  sim::Shared<std::uint64_t> lock_for(Addr a) const {
    return locks_.at((a >> shift_) & mask_);
  }
  sim::Shared<std::uint64_t> clock() const { return clock_; }

  /// Per-thread snapshot registry (the MvRegistry idea): a transaction
  /// publishes its rv at begin and withdraws it at commit/abort; GC reads
  /// the minimum to find the reclamation horizon.
  void set_active(sim::ThreadId tid, std::uint64_t rv) { active_[tid] = rv; }
  void clear_active(sim::ThreadId tid) { active_.erase(tid); }

  /// Append the pre-image of word `addr`, overwritten by the commit at wv.
  void chain_append(Addr addr, std::uint64_t wv, std::uint64_t pre_image) {
    chains_[addr].push_back({wv, pre_image});
  }

  /// Find the value of `addr` at snapshot `rv`: the pre-image of the oldest
  /// overwrite newer than rv. Returns false (memory holds the value) if no
  /// such overwrite exists. `hops` counts entries inspected, `depth` the
  /// chain length.
  bool chain_lookup(Addr addr, std::uint64_t rv, std::uint64_t* value,
                    std::uint64_t* hops, std::uint64_t* depth) const {
    *hops = 0;
    *depth = 0;
    auto it = chains_.find(addr);
    if (it == chains_.end()) return false;
    const auto& chain = it->second;
    *depth = chain.size();
    // Entries ascend by wv; scan newest-first for the oldest entry with
    // wv > rv.
    bool found = false;
    for (auto e = chain.rbegin(); e != chain.rend(); ++e) {
      ++*hops;
      if (e->wv <= rv) break;
      *value = e->pre_image;
      found = true;
    }
    return found;
  }

  /// True every kGcInterval-th update commit — the GC cadence.
  bool note_update_commit() {
    return ++update_commits_ % kGcInterval == 0;
  }

  /// Prune every chain entry no active snapshot can reach (wv <= min active
  /// rv; `horizon` — the caller's wv — bounds it when no snapshot is live).
  /// Returns the number of entries reclaimed.
  std::uint64_t gc(std::uint64_t horizon) {
    std::uint64_t min_rv = horizon;
    for (const auto& [tid, rv] : active_) min_rv = std::min(min_rv, rv);
    std::uint64_t reclaimed = 0;
    for (auto it = chains_.begin(); it != chains_.end();) {
      auto& chain = it->second;
      auto keep = std::find_if(
          chain.begin(), chain.end(),
          [min_rv](const Version& v) { return v.wv > min_rv; });
      reclaimed += static_cast<std::uint64_t>(keep - chain.begin());
      chain.erase(chain.begin(), keep);
      it = chain.empty() ? chains_.erase(it) : std::next(it);
    }
    return reclaimed;
  }

  static constexpr std::uint64_t kGcInterval = 64;

 private:
  struct Version {
    std::uint64_t wv;         // clock value of the overwriting commit
    std::uint64_t pre_image;  // word value it replaced
  };

  unsigned shift_;
  std::size_t mask_;
  sim::Shared<std::uint64_t> clock_;
  sim::SharedArray<std::uint64_t> locks_;
  std::map<Addr, std::vector<Version>> chains_;  // ordered => deterministic
  std::map<sim::ThreadId, std::uint64_t> active_;
  std::uint64_t update_commits_ = 0;
};

/// Per-thread MVCC transaction descriptor.
class MvccTx {
 public:
  explicit MvccTx(MvccSpace& space) : space_(space) {}

  void begin(Context& c) {
    read_set_.clear();
    write_map_.clear();
    write_log_.clear();
    commit_actions_.clear();
    rv_ = space_.clock().load(c);
    if (rv_ & 1) rv_ ^= 1;  // snapshot must be even (unlocked)
    tid_ = c.tid();
    space_.set_active(tid_, rv_);
    active_ = true;
    starts_++;
  }

  /// Register an action to run iff this transaction commits. Discarded on
  /// abort.
  void on_commit(std::function<void(Context&)> action) {
    commit_actions_.push_back(std::move(action));
  }

  /// Snapshot read: never aborts. Fast path = TL2-style sandwich when the
  /// stripe is quiescent at or before rv; otherwise walk the version chain.
  std::uint64_t read(Context& c, Addr a, unsigned size = 8) {
    // Write-set lookup first (read-your-writes).
    if (!write_map_.empty()) {
      if (auto it = write_map_.find(detail::word_key(a));
          it != write_map_.end()) {
        return detail::word_extract(write_log_[it->second].value, a, size);
      }
    }
    auto lock = space_.lock_for(a);
    for (;;) {
      const std::uint64_t v1 = lock.load(c);
      if ((v1 & 1) != 0) {
        // A commit is publishing this stripe. Its wv may be at or below our
        // rv (the clock is bumped before the stores land), in which case
        // the snapshot INCLUDES it and neither memory nor the chain holds
        // the right value yet — wait out the short publish window. Not an
        // abort: reads still never fail.
        c.compute(kLockSpin);
        continue;
      }
      // Version-sandwiched memory load: `word` is the stripe's stable value
      // at version v1.
      const std::uint64_t word = c.load(detail::word_key(a), 8);
      const std::uint64_t v2 = lock.load(c);
      if (v1 != v2) continue;  // the stripe moved under us — recheck
      read_set_.push_back(lock.addr());
      if (v1 <= rv_) {
        c.compute(kBookkeeping);
        return detail::word_extract(word, a, size);
      }
      // The stripe is newer than rv. Update transactions recorded it above
      // — commit validation will see the too-new version and abort them
      // (first-committer-wins); the snapshot value itself comes from the
      // chain. Every overwrite of this word past rv appended its pre-image
      // before storing (and the stripe is quiescent), so a miss means the
      // sibling words moved the stripe and `word` is still the value at rv.
      // The lookup runs host-side directly after the sandwich, with no
      // yield in between.
      std::uint64_t value = 0, hops = 0, depth = 0;
      const bool in_chain = space_.chain_lookup(detail::word_key(a), rv_,
                                                &value, &hops, &depth);
      version_chain_hops_ += hops;
      version_chain_depth_max_ = std::max(version_chain_depth_max_, depth);
      c.compute(kBookkeeping + kChainHop * static_cast<sim::Cycles>(hops));
      return detail::word_extract(in_chain ? value : word, a, size);
    }
  }

  void write(Context& c, Addr a, std::uint64_t value, unsigned size = 8) {
    const Addr k = detail::word_key(a);
    auto [it, fresh] = write_map_.try_emplace(k, write_log_.size());
    if (fresh) {
      const std::uint64_t orig = c.load(k, 8);
      write_log_.push_back({k, orig, orig});
    }
    write_log_[it->second].value =
        detail::word_insert(write_log_[it->second].value, a, value, size);
    c.compute(kBookkeeping);
  }

  /// Commit. Read-only transactions commit for free (the snapshot *is* the
  /// serialization point); update transactions validate like TL2 and
  /// publish pre-images to the version chains.
  void commit(Context& c) {
    if (write_log_.empty()) {
      space_.clear_active(tid_);
      active_ = false;
      commits_++;
      snapshot_commits_++;
      run_commit_actions(c);
      return;
    }
    std::vector<Addr> lock_addrs;
    lock_addrs.reserve(write_log_.size());
    for (const auto& w : write_log_) {
      lock_addrs.push_back(space_.lock_for(w.addr).addr());
    }
    std::sort(lock_addrs.begin(), lock_addrs.end());
    lock_addrs.erase(std::unique(lock_addrs.begin(), lock_addrs.end()),
                     lock_addrs.end());
    std::size_t got = 0;
    for (; got < lock_addrs.size(); ++got) {
      const std::uint64_t v = c.load(lock_addrs[got], 8);
      if ((v & 1) != 0 || v > rv_ || !c.cas(lock_addrs[got], v, v | 1, 8)) {
        break;
      }
    }
    if (got != lock_addrs.size()) {
      release_locks(c, lock_addrs, got, /*new_version=*/0);
      abort_tx(c, StmAbortKind::kLockAcquire);
    }
    const std::uint64_t wv = space_.clock().fetch_add(c, 2) + 2;
    if (wv != rv_ + 2) {
      for (Addr la : read_set_) {
        const std::uint64_t v = c.load(la, 8);
        const bool locked_by_us =
            (v & 1) != 0 &&
            std::binary_search(lock_addrs.begin(), lock_addrs.end(), la);
        if (((v & 1) != 0 && !locked_by_us) || (v & ~1ULL) > rv_) {
          release_locks(c, lock_addrs, lock_addrs.size(), 0);
          abort_tx(c, StmAbortKind::kCommitValidation);
        }
      }
    }
    // Publish: append each pre-image *before* storing the new value, so a
    // concurrent snapshot reader finds one or the other (both correct at
    // its rv — see the header comment).
    for (const auto& w : write_log_) {
      space_.chain_append(w.addr, wv, w.orig);
      versions_created_++;
      c.store(w.addr, w.value, 8);
    }
    release_locks(c, lock_addrs, lock_addrs.size(), wv);
    space_.clear_active(tid_);
    active_ = false;
    commits_++;
    if (space_.note_update_commit()) {
      const std::uint64_t reclaimed = space_.gc(wv);
      gc_runs_++;
      gc_reclaims_ += reclaimed;
      c.compute(kGcBase + kGcPerReclaim * static_cast<sim::Cycles>(reclaimed));
    }
    run_commit_actions(c);
  }

  bool active() const { return active_; }
  std::uint64_t starts() const { return starts_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t aborts() const { return aborts_; }
  std::uint64_t aborts(StmAbortKind k) const {
    return aborts_by_kind_[static_cast<std::size_t>(k)];
  }
  std::uint64_t snapshot_commits() const { return snapshot_commits_; }
  std::uint64_t versions_created() const { return versions_created_; }
  std::uint64_t version_chain_hops() const { return version_chain_hops_; }
  std::uint64_t version_chain_depth_max() const {
    return version_chain_depth_max_;
  }
  std::uint64_t gc_runs() const { return gc_runs_; }
  std::uint64_t gc_reclaims() const { return gc_reclaims_; }
  void reset_stats() {
    starts_ = commits_ = aborts_ = snapshot_commits_ = 0;
    versions_created_ = version_chain_hops_ = version_chain_depth_max_ = 0;
    gc_runs_ = gc_reclaims_ = 0;
    aborts_by_kind_ = {};
  }

 private:
  struct WriteEntry {
    Addr addr;            // word-aligned
    std::uint64_t value;  // merged new value
    std::uint64_t orig;   // pre-image at first buffering (validated fresh)
  };

  void release_locks(Context& c, const std::vector<Addr>& addrs,
                     std::size_t count, std::uint64_t new_version) {
    for (std::size_t i = 0; i < count; ++i) {
      if (new_version != 0) {
        c.store(addrs[i], new_version, 8);
      } else {
        const std::uint64_t v = c.load(addrs[i], 8);
        c.store(addrs[i], v & ~1ULL, 8);
      }
    }
  }

  [[noreturn]] void abort_tx(Context& c, StmAbortKind kind) {
    space_.clear_active(tid_);
    active_ = false;
    aborts_++;
    aborts_by_kind_[static_cast<std::size_t>(kind)]++;
    commit_actions_.clear();
    c.compute(kAbortPenalty);
    throw StmAbort{kind};
  }

  void run_commit_actions(Context& c) {
    for (auto& action : commit_actions_) action(c);
    commit_actions_.clear();
  }

  static constexpr sim::Cycles kBookkeeping = 6;
  static constexpr sim::Cycles kAbortPenalty = 120;
  static constexpr sim::Cycles kChainHop = 4;
  static constexpr sim::Cycles kLockSpin = 4;
  static constexpr sim::Cycles kGcBase = 40;
  static constexpr sim::Cycles kGcPerReclaim = 2;

  MvccSpace& space_;
  std::uint64_t rv_ = 0;
  sim::ThreadId tid_ = 0;
  bool active_ = false;
  std::vector<Addr> read_set_;
  std::unordered_map<Addr, std::size_t> write_map_;
  std::vector<WriteEntry> write_log_;
  std::vector<std::function<void(Context&)>> commit_actions_;
  std::uint64_t starts_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t aborts_ = 0;
  std::array<std::uint64_t, 3> aborts_by_kind_{};
  std::uint64_t snapshot_commits_ = 0;
  std::uint64_t versions_created_ = 0;
  std::uint64_t version_chain_hops_ = 0;
  std::uint64_t version_chain_depth_max_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t gc_reclaims_ = 0;
};

}  // namespace tsxhpc::stm
