// TmQueue: linked FIFO queue over TmAccess (intruder's packet queues,
// labyrinth's work queue).
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

class TmQueue {
 public:
  /// Node layout: [0]=next, [8]=value. Queue header: [0]=head, [8]=tail.
  static constexpr std::size_t kNodeBytes = 16;

  TmQueue() = default;
  TmQueue(Machine& m, TxArena& arena)
      : arena_(&arena), hdr_(m.alloc(16, 8)) {
    m.heap().write_word(hdr_, 0, 8);
    m.heap().write_word(hdr_ + 8, 0, 8);
  }

  void push(TmAccess& tm, std::uint64_t value) {
    const Addr node = tm.alloc(*arena_, kNodeBytes);
    tm.write(node, 0);
    tm.write(node + 8, value);
    const Addr tail = tm.read(hdr_ + 8);
    if (tail == 0) {
      tm.write(hdr_, static_cast<std::uint64_t>(node));
    } else {
      tm.write(tail, static_cast<std::uint64_t>(node));
    }
    tm.write(hdr_ + 8, static_cast<std::uint64_t>(node));
  }

  std::optional<std::uint64_t> pop(TmAccess& tm) {
    const Addr head = tm.read(hdr_);
    if (head == 0) return std::nullopt;
    const std::uint64_t value = tm.read(head + 8);
    const Addr next = tm.read(head);
    tm.write(hdr_, next);
    if (next == 0) tm.write(hdr_ + 8, 0);
    tm.free(*arena_, head, kNodeBytes);
    return value;
  }

  bool empty(TmAccess& tm) const { return tm.read(hdr_) == 0; }

  std::size_t size(TmAccess& tm) const {
    std::size_t n = 0;
    for (Addr cur = tm.read(hdr_); cur != 0; cur = tm.read(cur)) ++n;
    return n;
  }

  /// Untimed push for setup phases.
  void seed(Machine& m, std::uint64_t value) {
    const Addr node = m.heap().allocate(kNodeBytes, 8);
    m.heap().write_word(node, 0, 8);
    m.heap().write_word(node + 8, value, 8);
    const Addr tail = m.heap().read_word(hdr_ + 8, 8);
    if (tail == 0) {
      m.heap().write_word(hdr_, node, 8);
    } else {
      m.heap().write_word(tail, node, 8);
    }
    m.heap().write_word(hdr_ + 8, node, 8);
  }

 private:
  TxArena* arena_ = nullptr;
  Addr hdr_ = sim::kNullAddr;
};

}  // namespace tsxhpc::containers
