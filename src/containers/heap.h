// TmHeap: fixed-capacity binary min-heap over TmAccess (yada's bad-triangle
// work heap). Layout: [0]=size, [8..]=keys.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

class TmHeap {
 public:
  TmHeap() = default;
  TmHeap(Machine& m, std::size_t capacity)
      : capacity_(capacity), base_(m.alloc(8 + capacity * 8, 64)) {
    m.heap().write_word(base_, 0, 8);
  }

  bool push(TmAccess& tm, std::uint64_t key) {
    std::uint64_t n = tm.read(base_);
    if (n >= capacity_) return false;
    // Sift up.
    std::size_t i = n;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      const std::uint64_t pv = tm.read(slot(parent));
      if (pv <= key) break;
      tm.write(slot(i), pv);
      i = parent;
    }
    tm.write(slot(i), key);
    tm.write(base_, n + 1);
    return true;
  }

  std::optional<std::uint64_t> pop_min(TmAccess& tm) {
    const std::uint64_t n = tm.read(base_);
    if (n == 0) return std::nullopt;
    const std::uint64_t min = tm.read(slot(0));
    const std::uint64_t last = tm.read(slot(n - 1));
    tm.write(base_, n - 1);
    // Sift down.
    std::size_t i = 0;
    const std::size_t limit = static_cast<std::size_t>(n - 1);
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= limit) break;
      std::uint64_t cv = tm.read(slot(child));
      if (child + 1 < limit) {
        const std::uint64_t rv = tm.read(slot(child + 1));
        if (rv < cv) {
          cv = rv;
          ++child;
        }
      }
      if (last <= cv) break;
      tm.write(slot(i), cv);
      i = child;
    }
    if (limit > 0) tm.write(slot(i), last);
    return min;
  }

  std::uint64_t size(TmAccess& tm) const { return tm.read(base_); }
  bool empty(TmAccess& tm) const { return size(tm) == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Untimed push for setup phases.
  void seed(Machine& m, std::uint64_t key) {
    std::uint64_t n = m.heap().read_word(base_, 8);
    std::size_t i = n;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      const std::uint64_t pv = m.heap().read_word(slot(parent), 8);
      if (pv <= key) break;
      m.heap().write_word(slot(i), pv, 8);
      i = parent;
    }
    m.heap().write_word(slot(i), key, 8);
    m.heap().write_word(base_, n + 1, 8);
  }

 private:
  Addr slot(std::size_t i) const { return base_ + 8 + i * 8; }

  std::size_t capacity_ = 0;
  Addr base_ = sim::kNullAddr;
};

}  // namespace tsxhpc::containers
