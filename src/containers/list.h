// TmList: sorted singly-linked key/value list over TmAccess. The workhorse
// linked structure of the STAMP-style workloads (genome's segment chains,
// intruder's fragment lists). All node fields are *annotated* accesses.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

/// Node layout: [0]=next, [8]=key, [16]=value.
class TmList {
 public:
  static constexpr std::size_t kNodeBytes = 24;

  TmList() = default;
  TmList(Machine& m, TxArena& arena)
      : arena_(&arena), head_(m.alloc(kNodeBytes, 8)) {
    m.heap().write_word(head_, 0, 8);  // next = null sentinel
  }

  /// Insert (key, value); duplicates allowed only when `allow_dup`.
  /// Returns false if key existed and duplicates are not allowed.
  bool insert(TmAccess& tm, std::uint64_t key, std::uint64_t value,
              bool allow_dup = false) {
    Addr prev = head_;
    Addr cur = tm.read(prev);
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 8);
      if (k >= key) {
        if (k == key && !allow_dup) return false;
        break;
      }
      prev = cur;
      cur = tm.read(cur);
    }
    const Addr node = tm.alloc(*arena_, kNodeBytes);
    tm.write(node, cur);
    tm.write(node + 8, key);
    tm.write(node + 16, value);
    tm.write(prev, static_cast<std::uint64_t>(node));
    return true;
  }

  /// Remove the first node with `key`. Returns its value if found.
  std::optional<std::uint64_t> remove(TmAccess& tm, std::uint64_t key) {
    Addr prev = head_;
    Addr cur = tm.read(prev);
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 8);
      if (k > key) return std::nullopt;
      if (k == key) {
        const std::uint64_t value = tm.read(cur + 16);
        tm.write(prev, tm.read(cur));
        tm.free(*arena_, cur, kNodeBytes);
        return value;
      }
      prev = cur;
      cur = tm.read(cur);
    }
    return std::nullopt;
  }

  std::optional<std::uint64_t> find(TmAccess& tm, std::uint64_t key) const {
    Addr cur = tm.read(head_);
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 8);
      if (k > key) return std::nullopt;
      if (k == key) return tm.read(cur + 16);
      cur = tm.read(cur);
    }
    return std::nullopt;
  }

  bool contains(TmAccess& tm, std::uint64_t key) const {
    return find(tm, key).has_value();
  }

  /// Iterate (key, value) pairs in order; `fn` returns false to stop.
  template <typename Fn>
  void for_each(TmAccess& tm, Fn&& fn) const {
    Addr cur = tm.read(head_);
    while (cur != 0) {
      if (!fn(tm.read(cur + 8), tm.read(cur + 16))) return;
      cur = tm.read(cur);
    }
  }

  std::size_t size(TmAccess& tm) const {
    std::size_t n = 0;
    Addr cur = tm.read(head_);
    while (cur != 0) {
      ++n;
      cur = tm.read(cur);
    }
    return n;
  }

  Addr head() const { return head_; }

 private:
  TxArena* arena_ = nullptr;
  Addr head_ = sim::kNullAddr;
};

}  // namespace tsxhpc::containers
