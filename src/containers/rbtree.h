// TmRbMap: ordered key/value map over TmAccess, implemented as a
// red-black tree with parent pointers (CLRS structure) — the data structure
// STAMP's vacation and yada actually use. Same interface as TmMap (the
// treap), so workloads and property tests are parameterized over both.
//
// Node layout: [0]=left, [8]=right, [16]=parent, [24]=color (0 red,
// 1 black), [32]=key, [40]=value. Null (nil) is address 0 and is black.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

class TmRbMap {
 public:
  static constexpr std::size_t kNodeBytes = 48;

  TmRbMap() = default;
  TmRbMap(Machine& m, TxArena& arena)
      : arena_(&arena), root_(m.alloc(8, 8)) {
    m.heap().write_word(root_, 0, 8);
  }

  bool insert(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    Addr parent = 0;
    Addr cur = root(tm);
    bool went_left = false;
    while (cur != 0) {
      const std::uint64_t k = kkey(tm, cur);
      if (k == key) return false;
      parent = cur;
      went_left = key < k;
      cur = went_left ? left(tm, cur) : right(tm, cur);
    }
    const Addr node = tm.alloc(*arena_, kNodeBytes);
    tm.write(node + 32, key);
    tm.write(node + 40, value);
    tm.write(node + 16, static_cast<std::uint64_t>(parent));
    // color starts red (0 from the zeroed arena block).
    if (parent == 0) {
      set_root(tm, node);
    } else if (went_left) {
      tm.write(parent + 0, static_cast<std::uint64_t>(node));
    } else {
      tm.write(parent + 8, static_cast<std::uint64_t>(node));
    }
    insert_fixup(tm, node);
    return true;
  }

  std::optional<std::uint64_t> find(TmAccess& tm, std::uint64_t key) const {
    const Addr n = find_node(tm, key);
    if (n == 0) return std::nullopt;
    return tm.read(n + 40);
  }

  bool contains(TmAccess& tm, std::uint64_t key) const {
    return find_node(tm, key) != 0;
  }

  bool update(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    const Addr n = find_node(tm, key);
    if (n == 0) return false;
    tm.write(n + 40, value);
    return true;
  }

  std::optional<std::uint64_t> remove(TmAccess& tm, std::uint64_t key) {
    const Addr z = find_node(tm, key);
    if (z == 0) return std::nullopt;
    const std::uint64_t value = tm.read(z + 40);

    // CLRS RB-DELETE. y = node actually spliced out; x = y's child (may be
    // nil, so track its parent explicitly).
    Addr y = z;
    bool y_was_black = color(tm, y);
    Addr x = 0;
    Addr x_parent = 0;

    if (left(tm, z) == 0) {
      x = right(tm, z);
      x_parent = parent(tm, z);
      transplant(tm, z, x);
    } else if (right(tm, z) == 0) {
      x = left(tm, z);
      x_parent = parent(tm, z);
      transplant(tm, z, x);
    } else {
      // y = successor of z (minimum of right subtree).
      y = right(tm, z);
      while (left(tm, y) != 0) y = left(tm, y);
      y_was_black = color(tm, y);
      x = right(tm, y);
      if (parent(tm, y) == z) {
        x_parent = y;
      } else {
        x_parent = parent(tm, y);
        transplant(tm, y, x);
        tm.write(y + 8, right(tm, z));
        tm.write(right(tm, y) + 16, static_cast<std::uint64_t>(y));
      }
      transplant(tm, z, y);
      tm.write(y + 0, left(tm, z));
      tm.write(left(tm, y) + 16, static_cast<std::uint64_t>(y));
      set_color(tm, y, color(tm, z));
    }
    tm.free(*arena_, z, kNodeBytes);
    if (y_was_black) delete_fixup(tm, x, x_parent);
    return value;
  }

  /// Smallest key >= `key`, if any.
  std::optional<std::uint64_t> ceil_key(TmAccess& tm,
                                        std::uint64_t key) const {
    Addr cur = root(tm);
    std::optional<std::uint64_t> best;
    while (cur != 0) {
      const std::uint64_t k = kkey(tm, cur);
      if (k == key) return k;
      if (k > key) {
        best = k;
        cur = left(tm, cur);
      } else {
        cur = right(tm, cur);
      }
    }
    return best;
  }

  std::size_t size(TmAccess& tm) const { return count(tm, root(tm)); }

  /// Untimed in-order traversal (verification outside the measured region).
  template <typename Fn>
  void peek_inorder(Machine& m, Fn&& fn) const {
    peek_rec(m, m.heap().read_word(root_, 8), fn);
  }

  Addr root_cell() const { return root_; }

  /// Untimed structural validation (testing): BST order, no red-red edges,
  /// equal black heights, consistent parent pointers. Returns black height
  /// or -1 on violation.
  int peek_validate(Machine& m) const {
    return validate_rec(m, m.heap().read_word(root_, 8), 0, ~0ULL, 0);
  }

 private:
  // Field accessors (annotated reads/writes).
  Addr root(TmAccess& tm) const { return tm.read(root_); }
  void set_root(TmAccess& tm, Addr n) {
    tm.write(root_, static_cast<std::uint64_t>(n));
  }
  Addr left(TmAccess& tm, Addr n) const { return tm.read(n + 0); }
  Addr right(TmAccess& tm, Addr n) const { return tm.read(n + 8); }
  Addr parent(TmAccess& tm, Addr n) const { return tm.read(n + 16); }
  /// true = black. Nil (0) is black.
  bool color(TmAccess& tm, Addr n) const {
    return n == 0 || tm.read(n + 24) != 0;
  }
  void set_color(TmAccess& tm, Addr n, bool black) {
    if (n != 0) tm.write(n + 24, black ? 1 : 0);
  }
  std::uint64_t kkey(TmAccess& tm, Addr n) const { return tm.read(n + 32); }

  Addr find_node(TmAccess& tm, std::uint64_t key) const {
    Addr cur = root(tm);
    while (cur != 0) {
      const std::uint64_t k = kkey(tm, cur);
      if (k == key) return cur;
      cur = key < k ? left(tm, cur) : right(tm, cur);
    }
    return 0;
  }

  /// Replace subtree rooted at u with subtree rooted at v (v may be nil).
  void transplant(TmAccess& tm, Addr u, Addr v) {
    const Addr p = parent(tm, u);
    if (p == 0) {
      set_root(tm, v);
    } else if (left(tm, p) == u) {
      tm.write(p + 0, static_cast<std::uint64_t>(v));
    } else {
      tm.write(p + 8, static_cast<std::uint64_t>(v));
    }
    if (v != 0) tm.write(v + 16, static_cast<std::uint64_t>(p));
  }

  void rotate_left(TmAccess& tm, Addr x) {
    const Addr y = right(tm, x);
    tm.write(x + 8, left(tm, y));
    if (left(tm, y) != 0) tm.write(left(tm, y) + 16, x);
    const Addr p = parent(tm, x);
    tm.write(y + 16, static_cast<std::uint64_t>(p));
    if (p == 0) {
      set_root(tm, y);
    } else if (left(tm, p) == x) {
      tm.write(p + 0, static_cast<std::uint64_t>(y));
    } else {
      tm.write(p + 8, static_cast<std::uint64_t>(y));
    }
    tm.write(y + 0, static_cast<std::uint64_t>(x));
    tm.write(x + 16, static_cast<std::uint64_t>(y));
  }

  void rotate_right(TmAccess& tm, Addr x) {
    const Addr y = left(tm, x);
    tm.write(x + 0, right(tm, y));
    if (right(tm, y) != 0) tm.write(right(tm, y) + 16, x);
    const Addr p = parent(tm, x);
    tm.write(y + 16, static_cast<std::uint64_t>(p));
    if (p == 0) {
      set_root(tm, y);
    } else if (right(tm, p) == x) {
      tm.write(p + 8, static_cast<std::uint64_t>(y));
    } else {
      tm.write(p + 0, static_cast<std::uint64_t>(y));
    }
    tm.write(y + 8, static_cast<std::uint64_t>(x));
    tm.write(x + 16, static_cast<std::uint64_t>(y));
  }

  void insert_fixup(TmAccess& tm, Addr z) {
    while (!color(tm, parent(tm, z))) {  // parent red
      const Addr p = parent(tm, z);
      const Addr g = parent(tm, p);
      if (p == left(tm, g)) {
        const Addr uncle = right(tm, g);
        if (!color(tm, uncle)) {  // uncle red: recolor, ascend
          set_color(tm, p, true);
          set_color(tm, uncle, true);
          set_color(tm, g, false);
          z = g;
        } else {
          if (z == right(tm, p)) {
            z = p;
            rotate_left(tm, z);
          }
          set_color(tm, parent(tm, z), true);
          set_color(tm, parent(tm, parent(tm, z)), false);
          rotate_right(tm, parent(tm, parent(tm, z)));
        }
      } else {
        const Addr uncle = left(tm, g);
        if (!color(tm, uncle)) {
          set_color(tm, p, true);
          set_color(tm, uncle, true);
          set_color(tm, g, false);
          z = g;
        } else {
          if (z == left(tm, p)) {
            z = p;
            rotate_right(tm, z);
          }
          set_color(tm, parent(tm, z), true);
          set_color(tm, parent(tm, parent(tm, z)), false);
          rotate_left(tm, parent(tm, parent(tm, z)));
        }
      }
      if (z == root(tm)) break;
    }
    set_color(tm, root(tm), true);
  }

  void delete_fixup(TmAccess& tm, Addr x, Addr x_parent) {
    while (x != root(tm) && color(tm, x)) {
      if (x_parent == 0) break;
      if (x == left(tm, x_parent)) {
        Addr w = right(tm, x_parent);
        if (!color(tm, w)) {
          set_color(tm, w, true);
          set_color(tm, x_parent, false);
          rotate_left(tm, x_parent);
          w = right(tm, x_parent);
        }
        if (color(tm, left(tm, w)) && color(tm, right(tm, w))) {
          set_color(tm, w, false);
          x = x_parent;
          x_parent = parent(tm, x);
        } else {
          if (color(tm, right(tm, w))) {
            set_color(tm, left(tm, w), true);
            set_color(tm, w, false);
            rotate_right(tm, w);
            w = right(tm, x_parent);
          }
          set_color(tm, w, color(tm, x_parent));
          set_color(tm, x_parent, true);
          set_color(tm, right(tm, w), true);
          rotate_left(tm, x_parent);
          x = root(tm);
          x_parent = 0;
        }
      } else {
        Addr w = left(tm, x_parent);
        if (!color(tm, w)) {
          set_color(tm, w, true);
          set_color(tm, x_parent, false);
          rotate_right(tm, x_parent);
          w = left(tm, x_parent);
        }
        if (color(tm, right(tm, w)) && color(tm, left(tm, w))) {
          set_color(tm, w, false);
          x = x_parent;
          x_parent = parent(tm, x);
        } else {
          if (color(tm, left(tm, w))) {
            set_color(tm, right(tm, w), true);
            set_color(tm, w, false);
            rotate_left(tm, w);
            w = left(tm, x_parent);
          }
          set_color(tm, w, color(tm, x_parent));
          set_color(tm, x_parent, true);
          set_color(tm, left(tm, w), true);
          rotate_right(tm, x_parent);
          x = root(tm);
          x_parent = 0;
        }
      }
    }
    set_color(tm, x, true);
  }

  std::size_t count(TmAccess& tm, Addr n) const {
    if (n == 0) return 0;
    return 1 + count(tm, left(tm, n)) + count(tm, right(tm, n));
  }

  template <typename Fn>
  void peek_rec(Machine& m, Addr n, Fn& fn) const {
    if (n == 0) return;
    peek_rec(m, m.heap().read_word(n + 0, 8), fn);
    fn(m.heap().read_word(n + 32, 8), m.heap().read_word(n + 40, 8));
    peek_rec(m, m.heap().read_word(n + 8, 8), fn);
  }

  int validate_rec(Machine& m, Addr n, std::uint64_t lo, std::uint64_t hi,
                   Addr expected_parent) const {
    if (n == 0) return 1;  // nil contributes one black node
    const std::uint64_t k = m.heap().read_word(n + 32, 8);
    if (k < lo || k > hi) return -1;
    if (m.heap().read_word(n + 16, 8) != expected_parent) return -1;
    const bool black = m.heap().read_word(n + 24, 8) != 0;
    const Addr l = m.heap().read_word(n + 0, 8);
    const Addr r = m.heap().read_word(n + 8, 8);
    if (!black) {  // red node: both children must be black
      if ((l != 0 && m.heap().read_word(l + 24, 8) == 0) ||
          (r != 0 && m.heap().read_word(r + 24, 8) == 0)) {
        return -1;
      }
    }
    const int lh = validate_rec(m, l, lo, k == 0 ? 0 : k - 1, n);
    const int rh = validate_rec(m, r, k + 1, hi, n);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (black ? 1 : 0);
  }

  TxArena* arena_ = nullptr;
  Addr root_ = sim::kNullAddr;
};

}  // namespace tsxhpc::containers
