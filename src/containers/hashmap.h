// TmHashMap: fixed-bucket chained hash map over TmAccess. Models STAMP's
// hashtable (genome's segment dedup, vacation/intruder lookup tables):
// bucket heads live in one shared array; chains are TmList-style nodes.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "sim/rng.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

class TmHashMap {
 public:
  /// Node layout: [0]=next, [8]=key, [16]=value.
  static constexpr std::size_t kNodeBytes = 24;

  TmHashMap() = default;
  /// `buckets` must be a power of two.
  TmHashMap(Machine& m, TxArena& arena, std::size_t buckets)
      : arena_(&arena), mask_(buckets - 1) {
    if ((buckets & (buckets - 1)) != 0) {
      throw sim::SimError("TmHashMap bucket count must be a power of two");
    }
    buckets_ = m.alloc({.name = "hashmap/buckets", .bytes = buckets * 8});
    for (std::size_t i = 0; i < buckets; ++i) {
      m.heap().write_word(buckets_ + i * 8, 0, 8);
    }
  }

  /// Insert; returns false (no mutation) if the key already exists.
  bool insert(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    const Addr bucket = bucket_of(key);
    Addr cur = tm.read(bucket);
    while (cur != 0) {
      if (tm.read(cur + 8) == key) return false;
      cur = tm.read(cur);
    }
    const Addr node = tm.alloc(*arena_, kNodeBytes);
    tm.write(node, tm.read(bucket));
    tm.write(node + 8, key);
    tm.write(node + 16, value);
    tm.write(bucket, static_cast<std::uint64_t>(node));
    return true;
  }

  /// Insert or overwrite; returns true if the key was new.
  bool put(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    const Addr bucket = bucket_of(key);
    Addr cur = tm.read(bucket);
    while (cur != 0) {
      if (tm.read(cur + 8) == key) {
        tm.write(cur + 16, value);
        return false;
      }
      cur = tm.read(cur);
    }
    const Addr node = tm.alloc(*arena_, kNodeBytes);
    tm.write(node, tm.read(bucket));
    tm.write(node + 8, key);
    tm.write(node + 16, value);
    tm.write(bucket, static_cast<std::uint64_t>(node));
    return true;
  }

  std::optional<std::uint64_t> find(TmAccess& tm, std::uint64_t key) const {
    Addr cur = tm.read(bucket_of(key));
    while (cur != 0) {
      if (tm.read(cur + 8) == key) return tm.read(cur + 16);
      cur = tm.read(cur);
    }
    return std::nullopt;
  }

  bool contains(TmAccess& tm, std::uint64_t key) const {
    return find(tm, key).has_value();
  }

  std::optional<std::uint64_t> remove(TmAccess& tm, std::uint64_t key) {
    const Addr bucket = bucket_of(key);
    Addr prev = bucket;
    Addr cur = tm.read(prev);
    while (cur != 0) {
      if (tm.read(cur + 8) == key) {
        const std::uint64_t value = tm.read(cur + 16);
        tm.write(prev, tm.read(cur));
        tm.free(*arena_, cur, kNodeBytes);
        return value;
      }
      prev = cur;
      cur = tm.read(cur);
    }
    return std::nullopt;
  }

  /// Untimed full scan (verification outside the measured region).
  template <typename Fn>
  void peek_each(Machine& m, Fn&& fn) const {
    for (std::size_t b = 0; b <= mask_; ++b) {
      Addr cur = m.heap().read_word(buckets_ + b * 8, 8);
      while (cur != 0) {
        fn(m.heap().read_word(cur + 8, 8), m.heap().read_word(cur + 16, 8));
        cur = m.heap().read_word(cur, 8);
      }
    }
  }

  std::size_t bucket_count() const { return mask_ + 1; }

 private:
  Addr bucket_of(std::uint64_t key) const {
    sim::SplitMix64 h(key);
    return buckets_ + (h.next() & mask_) * 8;
  }

  TxArena* arena_ = nullptr;
  Addr buckets_ = sim::kNullAddr;
  std::size_t mask_ = 0;
};

}  // namespace tsxhpc::containers
