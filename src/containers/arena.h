// TxArena: shared-memory allocator for transactional data structures.
//
// Per-thread pools, like STAMP's TM allocator: each simulated thread carves
// blocks out of its own chunk of the shared heap and keeps its own free
// lists. Without this, nodes allocated by different threads share cache
// lines and every transactional allocation conflicts with its neighbours
// (allocator-induced false sharing).
//
// Free inside a *hardware* transaction is a no-op (leak): the transaction
// might abort and resurrect the object, and the allocator's host-side
// metadata cannot be rolled back. Software transactions must defer frees to
// commit time through TmAccess::free, which knows the logical transaction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/context.h"
#include "sim/machine.h"

namespace tsxhpc::containers {

using sim::Addr;
using sim::Context;
using sim::Machine;

class TxArena {
 public:
  explicit TxArena(Machine& m) : m_(m), pools_(m.config().num_hw_threads()) {}

  /// Allocate `bytes` of shared memory (8-aligned, zeroed) from the calling
  /// thread's pool. Safe inside a hardware transaction: an abort merely
  /// leaks the block. `reuse` permits free-list recycling; software TMs
  /// pass false (recycling writes memory that per-stripe version validation
  /// cannot see — real TL2 allocators interpose epochs/quiescence instead).
  Addr alloc(Context& c, std::size_t bytes, bool reuse = true) {
    c.compute(kAllocCost);
    Pool& pool = pools_[c.tid()];
    const std::size_t cls = size_class(bytes);
    if (reuse && !c.in_txn() && cls < kClasses && !pool.free[cls].empty()) {
      Addr a = pool.free[cls].back();
      pool.free[cls].pop_back();
      zero(c, a, class_bytes(cls));
      return a;
    }
    const std::size_t rounded = cls < kClasses ? class_bytes(cls) : bytes;
    Addr a = bump(pool, rounded);
    zero(c, a, rounded);
    return a;
  }

  /// Return a block to the calling thread's pool. No-op (leak) inside a
  /// hardware transaction; see header comment.
  void free(Context& c, Addr a, std::size_t bytes) {
    c.compute(kFreeCost);
    if (c.in_txn()) return;
    const std::size_t cls = size_class(bytes);
    if (cls < kClasses) pools_[c.tid()].free[cls].push_back(a);
  }

  Machine& machine() { return m_; }

 private:
  static constexpr std::size_t kClasses = 12;  // 16 B .. 32 KB
  static constexpr std::size_t kChunkBytes = 16 * 1024;
  static constexpr sim::Cycles kAllocCost = 30;
  static constexpr sim::Cycles kFreeCost = 15;

  struct Pool {
    Addr chunk = sim::kNullAddr;
    std::size_t chunk_left = 0;
    std::array<std::vector<Addr>, kClasses> free;
  };

  static std::size_t size_class(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t sz = 16;
    while (sz < bytes && cls < kClasses) {
      sz <<= 1;
      ++cls;
    }
    return cls;
  }
  static std::size_t class_bytes(std::size_t cls) {
    return std::size_t{16} << cls;
  }

  Addr bump(Pool& pool, std::size_t bytes) {
    if (bytes >= kChunkBytes) {
      return m_.heap().allocate({.name = "txarena", .bytes = bytes, .align = 64});
    }
    if (pool.chunk_left < bytes) {
      pool.chunk = m_.heap().allocate(
          {.name = "txarena", .bytes = kChunkBytes, .align = 64});
      pool.chunk_left = kChunkBytes;
    }
    const Addr a = pool.chunk;
    // Keep blocks 8-aligned within the chunk.
    const std::size_t take = (bytes + 7) & ~std::size_t{7};
    pool.chunk += take;
    pool.chunk_left -= take < pool.chunk_left ? take : pool.chunk_left;
    return a;
  }

  /// Zero through *timed* stores so that recycling a block participates in
  /// coherence and hardware conflict detection (a transactional reader that
  /// still has the stale block in its read set gets doomed, exactly as a
  /// real allocator's memset would).
  void zero(Context& c, Addr a, std::size_t bytes) {
    for (std::size_t off = 0; off < bytes; off += 8) c.store(a + off, 0, 8);
  }

  Machine& m_;
  std::vector<Pool> pools_;
};

}  // namespace tsxhpc::containers
