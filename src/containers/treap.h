// TmMap: ordered key/value map over TmAccess, implemented as a treap with
// deterministic priorities (hash of the key) — a lighter alternative to
// TmRbMap (rbtree.h) with the same interface, expected depth, and
// pointer-chasing transactional footprint, but far simpler delete logic.
#pragma once

#include <cstdint>
#include <optional>

#include "containers/arena.h"
#include "sim/rng.h"
#include "tmlib/tm.h"

namespace tsxhpc::containers {

using tmlib::TmAccess;

class TmMap {
 public:
  /// Node layout: [0]=left, [8]=right, [16]=key, [24]=value, [32]=priority.
  static constexpr std::size_t kNodeBytes = 40;

  TmMap() = default;
  TmMap(Machine& m, TxArena& arena)
      : arena_(&arena), root_(m.alloc(8, 8)) {
    m.heap().write_word(root_, 0, 8);
  }

  bool insert(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    return insert_at(tm, root_, key, value);
  }

  std::optional<std::uint64_t> find(TmAccess& tm, std::uint64_t key) const {
    Addr cur = tm.read(root_);
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 16);
      if (k == key) return tm.read(cur + 24);
      cur = tm.read(cur + (key < k ? 0 : 8));
    }
    return std::nullopt;
  }

  bool contains(TmAccess& tm, std::uint64_t key) const {
    return find(tm, key).has_value();
  }

  /// Overwrite the value of an existing key; false if absent.
  bool update(TmAccess& tm, std::uint64_t key, std::uint64_t value) {
    Addr cur = tm.read(root_);
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 16);
      if (k == key) {
        tm.write(cur + 24, value);
        return true;
      }
      cur = tm.read(cur + (key < k ? 0 : 8));
    }
    return false;
  }

  std::optional<std::uint64_t> remove(TmAccess& tm, std::uint64_t key) {
    return remove_at(tm, root_, key);
  }

  /// Smallest key >= `key`, if any (successor query; yada / vacation use).
  std::optional<std::uint64_t> ceil_key(TmAccess& tm,
                                        std::uint64_t key) const {
    Addr cur = tm.read(root_);
    std::optional<std::uint64_t> best;
    while (cur != 0) {
      const std::uint64_t k = tm.read(cur + 16);
      if (k == key) return k;
      if (k > key) {
        best = k;
        cur = tm.read(cur + 0);
      } else {
        cur = tm.read(cur + 8);
      }
    }
    return best;
  }

  std::size_t size(TmAccess& tm) const { return count(tm, tm.read(root_)); }

  /// Untimed in-order traversal (verification outside the measured region).
  template <typename Fn>
  void peek_inorder(Machine& m, Fn&& fn) const {
    peek_rec(m, m.heap().read_word(root_, 8), fn);
  }

  /// Address of the root pointer cell (structural tests).
  Addr root_cell() const { return root_; }

 private:
  static std::uint64_t priority_of(std::uint64_t key) {
    sim::SplitMix64 h(key * 0x9E3779B97F4A7C15ULL + 1);
    return h.next() | 1;  // nonzero
  }

  // `slot` is the address of the pointer to the current subtree root.
  bool insert_at(TmAccess& tm, Addr slot, std::uint64_t key,
                 std::uint64_t value) {
    const Addr cur = tm.read(slot);
    if (cur == 0) {
      const Addr node = tm.alloc(*arena_, kNodeBytes);
      tm.write(node + 16, key);
      tm.write(node + 24, value);
      tm.write(node + 32, priority_of(key));
      tm.write(slot, static_cast<std::uint64_t>(node));
      return true;
    }
    const std::uint64_t k = tm.read(cur + 16);
    if (k == key) return false;
    const Addr child_slot = cur + (key < k ? 0 : 8);
    if (!insert_at(tm, child_slot, key, value)) return false;
    // Restore the heap property by rotating the child up if needed.
    const Addr child = tm.read(child_slot);
    if (tm.read(child + 32) > tm.read(cur + 32)) {
      rotate_up(tm, slot, cur, child, /*left_child=*/key < k);
    }
    return true;
  }

  void rotate_up(TmAccess& tm, Addr slot, Addr parent, Addr child,
                 bool left_child) {
    if (left_child) {  // right rotation
      tm.write(parent + 0, tm.read(child + 8));
      tm.write(child + 8, static_cast<std::uint64_t>(parent));
    } else {  // left rotation
      tm.write(parent + 8, tm.read(child + 0));
      tm.write(child + 0, static_cast<std::uint64_t>(parent));
    }
    tm.write(slot, static_cast<std::uint64_t>(child));
  }

  std::optional<std::uint64_t> remove_at(TmAccess& tm, Addr slot,
                                         std::uint64_t key) {
    const Addr cur = tm.read(slot);
    if (cur == 0) return std::nullopt;
    const std::uint64_t k = tm.read(cur + 16);
    if (key < k) return remove_at(tm, cur + 0, key);
    if (key > k) return remove_at(tm, cur + 8, key);
    const std::uint64_t value = tm.read(cur + 24);
    // Rotate the node down until it has at most one child, then splice.
    sink_and_remove(tm, slot);
    return value;
  }

  void sink_and_remove(TmAccess& tm, Addr slot) {
    const Addr cur = tm.read(slot);
    const Addr left = tm.read(cur + 0);
    const Addr right = tm.read(cur + 8);
    if (left == 0 && right == 0) {
      tm.write(slot, 0);
    } else if (left == 0) {
      tm.write(slot, static_cast<std::uint64_t>(right));
    } else if (right == 0) {
      tm.write(slot, static_cast<std::uint64_t>(left));
    } else {
      const bool rotate_left_up =
          tm.read(left + 32) > tm.read(right + 32);
      rotate_up(tm, slot, cur, rotate_left_up ? left : right,
                rotate_left_up);
      // `cur` is now the child of the rotated-up node; find its new slot.
      const Addr up = tm.read(slot);
      sink_and_remove(tm, up + (rotate_left_up ? 8 : 0));
      return;
    }
    tm.free(*arena_, cur, kNodeBytes);
  }

  std::size_t count(TmAccess& tm, Addr node) const {
    if (node == 0) return 0;
    return 1 + count(tm, tm.read(node + 0)) + count(tm, tm.read(node + 8));
  }

  template <typename Fn>
  void peek_rec(Machine& m, Addr node, Fn& fn) const {
    if (node == 0) return;
    peek_rec(m, m.heap().read_word(node + 0, 8), fn);
    fn(m.heap().read_word(node + 16, 8), m.heap().read_word(node + 24, 8));
    peek_rec(m, m.heap().read_word(node + 8, 8), fn);
  }

  TxArena* arena_ = nullptr;
  Addr root_ = sim::kNullAddr;  // address of the root pointer cell
};

}  // namespace tsxhpc::containers
