// TxPolicy — the pluggable retry/backoff/fallback brain behind every elided
// primitive (the paper's Section 3 software fallback handler, made a seam).
//
// Before this layer, the attempt loop of ElidedLock, ElidedLockSet, TxMonitor
// and (through delegation) omp::Critical each hard-coded the same decisions
// with copy-paste drift. Now the *decision* lives here and the *execution*
// stays in the primitive: a policy answers "should this section elide at all"
// (adaptive skip) and "after this abort, what next" (retry / backoff-then-
// retry / wait-for-lock-then-retry / fall back); the primitive performs the
// chosen spin or backoff so cycle accounting and lock-word traffic stay
// exactly where they always were. hle.h is deliberately NOT a consumer: its
// 2-attempt policy is hardware behaviour, not software (Section 2).
//
// Four concrete policies ship (selected by MachineConfig::tx_policy, i.e.
// the benches' --policy= flag):
//
//   paper         the Section 3 handler, bit-for-bit the pre-seam behaviour
//                 (the default; policy_equivalence_test holds it to that)
//   no-hint       ignores the abort-status retry hint: every non-lock-busy
//                 abort is retried with backoff until the budget runs out
//   expo-backoff  paper's decisions, but the conflict backoff doubles per
//                 attempt with deterministic per-(site,thread) jitter
//   adaptive-site glibc-style per-site elision skip (doubling holiday after
//                 any abort-driven fallback), applied to every site kind
#pragma once

#include <cstdint>
#include <memory>

#include "sim/config.h"
#include "sim/telemetry.h"
#include "sim/types.h"

namespace tsxhpc::sync {

/// XABORT code used when a subscribed lock word is observed held.
inline constexpr std::uint8_t kAbortCodeLockBusy = 0xFF;

/// Whether the hardware would set the "retry may succeed" status bit.
/// Conflicts are transient, and so are secondary-read-tracker losses (the
/// loss depends on incidental cache state, which differs on retry) — this
/// is why the paper's retry-5 policy pays off on vacation despite its
/// 38-52% abort rates. Write-set overflow, syscalls and nesting overflow
/// fail deterministically and clear the hint.
inline bool retry_may_succeed(sim::AbortCause cause) {
  return cause == sim::AbortCause::kConflict ||
         cause == sim::AbortCause::kCapacityRead;
}

/// Capacity-class causes: even when individually retryable, a section that
/// keeps dying of these is structurally oversized and should trigger the
/// adaptive elision holiday.
inline bool is_capacity_class(sim::AbortCause cause) {
  return cause == sim::AbortCause::kCapacityWrite ||
         cause == sim::AbortCause::kCapacityRead ||
         cause == sim::AbortCause::kSyscall ||
         cause == sim::AbortCause::kNesting;
}

/// Fallback policy knobs (the numbers; the *logic* consuming them is the
/// TxPolicy implementation selected by MachineConfig::tx_policy).
struct ElisionPolicy {
  /// Transactional attempts before explicitly acquiring the lock.
  int max_retries = 5;
  /// Wait for the lock to become free before retrying after a lock-busy
  /// abort (avoids the lemming effect: immediately re-eliding while the
  /// lock is held just aborts again).
  bool spin_until_free = true;
  /// Aborts whose cause cannot succeed on retry (capacity, syscall,
  /// nesting) skip the remaining attempts — the analogue of the hardware
  /// abort-status "retry" hint bit being clear.
  bool honor_retry_hint = true;
  /// Backoff between transactional retries after a conflict abort.
  sim::Cycles conflict_backoff = 120;
  /// Adaptive elision (glibc-style skip_lock_internal_abort): once
  /// `adaptive_trigger` CONSECUTIVE sections end in capacity/syscall-driven
  /// fallbacks, skip elision for `adaptive_skip` sections, doubling the
  /// holiday (capped at 128) while the condition persists. Structurally
  /// hopeless sections (labyrinth's over-capacity copies) degenerate to
  /// plain locking; workloads whose sections only *sometimes* overflow
  /// (vacation) keep eliding the ones that fit.
  int adaptive_skip = 4;
  int adaptive_trigger = 4;
};

/// What a primitive should do after one aborted attempt. The policy decides;
/// the primitive executes (it owns the lock words to spin on and the Context
/// to charge backoff against).
///
/// `retry` is carried separately from the action because the paper's handler
/// performs the lock-busy wait / conflict backoff even after the FINAL
/// failed attempt, then falls back — "wait, then fall back" is a real
/// decision and must stay expressible or the fallback path's timing changes.
struct TxDecision {
  enum class Action : std::uint8_t {
    kNone,         // no delay before what comes next
    kBackoff,      // charge `backoff` cycles (Context::tx_backoff)
    kWaitForLock,  // spin until every subscribed lock word reads free
  };

  Action action = Action::kNone;
  bool retry = true;          // false: fall back after performing `action`
  sim::Cycles backoff = 0;    // kBackoff only

  static TxDecision Retry(bool then_retry = true) {
    return {Action::kNone, then_retry, 0};
  }
  static TxDecision BackoffThenRetry(sim::Cycles cycles,
                                     bool then_retry = true) {
    return {Action::kBackoff, then_retry, cycles};
  }
  static TxDecision WaitForLockThenRetry(bool then_retry = true) {
    return {Action::kWaitForLock, then_retry, 0};
  }
  static TxDecision Fallback() { return {Action::kNone, false, 0}; }
};

/// Telemetry classification of a decision: "what happens next" (retry vs
/// fallback) wins, then the flavour of delay before the retry. A final-
/// attempt backoff/wait therefore counts as a fallback — which is what makes
/// the per-site counts reconcile: retries+backoffs+lock_waits+fallbacks ==
/// tx_aborts (one decision per abort) and fallbacks+skips ==
/// fallback_acquires (every real acquisition is preceded by exactly one
/// section-ending decision or one skip).
inline sim::PolicyDecision classify(const TxDecision& d) {
  if (!d.retry) return sim::PolicyDecision::kFallback;
  switch (d.action) {
    case TxDecision::Action::kBackoff: return sim::PolicyDecision::kBackoff;
    case TxDecision::Action::kWaitForLock:
      return sim::PolicyDecision::kLockWait;
    case TxDecision::Action::kNone: break;
  }
  return sim::PolicyDecision::kRetry;
}

/// Per-primitive semantics the `paper` (and `expo-backoff`) policy must
/// respect to stay bit-for-bit with the pre-seam code: only single-lock
/// elision (ElidedLock, omp::Critical) ran the adaptive skip and the
/// two-strikes-per-section capacity break; lockset elision and the monitor
/// did neither. `adaptive-site` deliberately ignores `adaptive` and skips on
/// every site kind; `no-hint` ignores both (it never decodes the cause).
struct TxSiteTraits {
  bool adaptive = false;        // should_attempt may decline (elision holiday)
  bool capacity_break = false;  // 2 capacity-class aborts end the section
};

/// The decision interface. One instance per primitive (primitives construct
/// their brain from MachineConfig::tx_policy via make_tx_policy), holding
/// per-site adaptive state and per-(site,thread) section state — sections on
/// the same site run concurrently on different threads, so section-scoped
/// counters must be keyed by thread. All state is host-side plain data: the
/// scheduler token serializes every call.
class TxPolicy {
 public:
  virtual ~TxPolicy() = default;

  virtual const char* name() const = 0;

  /// Transactional attempt budget per section. Primitives that retry some
  /// aborts *without* consulting on_abort (TxMonitor's condition-variable
  /// aborts are monitor semantics, not retry policy) still burn attempts
  /// against this budget.
  virtual int max_attempts() const = 0;

  /// Section entry. Resets per-(site,thread) section state; returning false
  /// means "do not elide, go straight to the lock" (the adaptive holiday —
  /// the caller records a `skip` decision and must NOT call on_fallback).
  virtual bool should_attempt(sim::Addr site, sim::ThreadId tid) = 0;

  /// One aborted attempt (0-based `attempt`). Exactly one decision per
  /// abort: telemetry's per-site decision counters reconcile against
  /// tx_aborts because of this 1:1 mapping.
  virtual TxDecision on_abort(sim::Addr site, sim::ThreadId tid,
                              const sim::TxAbort& abort, int attempt) = 0;

  /// The section committed transactionally.
  virtual void on_commit(sim::Addr site) = 0;

  /// The section exhausted its attempts (or drew a Fallback decision) and is
  /// about to acquire the lock for real. Not called for skipped sections.
  virtual void on_fallback(sim::Addr site, sim::ThreadId tid) = 0;
};

/// Build the brain selected by `kind` over the given knobs and site traits.
/// Returned shared so copyable primitives (ElidedLockSet lives by value in
/// workload structs) share their adaptive state across copies made after
/// first use.
std::shared_ptr<TxPolicy> make_tx_policy(sim::TxPolicyKind kind,
                                         const ElisionPolicy& knobs,
                                         TxSiteTraits traits);

}  // namespace tsxhpc::sync
