#include "sync/monitor.h"

namespace tsxhpc::sync {

const char* to_string(MonitorScheme s) {
  switch (s) {
    case MonitorScheme::kMutex: return "mutex";
    case MonitorScheme::kTsxAbort: return "tsx.abort";
    case MonitorScheme::kTsxCond: return "tsx.cond";
    case MonitorScheme::kMutexBusyWait: return "mutex.busywait";
    case MonitorScheme::kTsxBusyWait: return "tsx.busywait";
  }
  return "?";
}

}  // namespace tsxhpc::sync
