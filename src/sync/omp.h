// A small OpenMP-flavoured compatibility layer over the simulator, so code
// from the paper's listings ports almost verbatim:
//
//   #pragma omp parallel for       ->  omp::parallel_for(m, threads, ...)
//   #pragma omp atomic             ->  omp::atomic_add(ctx, cell, v)
//   #pragma omp critical           ->  omp::Critical (one global lock)
//   omp_lock_t / omp_set_lock /
//   omp_test_lock / omp_unset_lock ->  omp::Lock (per-object lock)
//
// The locks can be swapped wholesale for TSX elision via omp::Critical's
// `elide` flag — the "changes limited to the synchronization library"
// property the paper demonstrates (Section 3).
#pragma once

#include <functional>

#include "sim/machine.h"
#include "sim/shared.h"
#include "sync/elision.h"
#include "sync/locks.h"

namespace tsxhpc::omp {

using sim::Context;
using sim::Machine;

/// omp_lock_t analogue. `omp_test_lock` really is a try-lock (the paper's
/// footnote 2 points at the OpenMP spec for this).
class Lock {
 public:
  Lock() = default;
  explicit Lock(Machine& m) : lock_(m) {}

  void set(Context& c) { lock_.acquire(c); }      // omp_set_lock
  bool test(Context& c) { return lock_.try_acquire(c); }  // omp_test_lock
  void unset(Context& c) { lock_.release(c); }    // omp_unset_lock

  sync::SpinLock& underlying() { return lock_; }

 private:
  sync::SpinLock lock_;
};

/// #pragma omp critical — one process-wide named lock, optionally elided.
/// Elided sections delegate to ElidedLock::critical, so the shim consumes
/// the machine's TxPolicy (retry/backoff/fallback and the adaptive skip)
/// through that one path — it has no retry loop of its own.
class Critical {
 public:
  Critical() = default;
  explicit Critical(Machine& m, bool elide = false,
                    sync::ElisionPolicy policy = {})
      : elide_(elide), lock_(m, policy) {}

  template <typename F>
  void run(Context& c, F&& f) {
    if (elide_) {
      lock_.critical(c, std::forward<F>(f));
    } else {
      sync::SpinLock& l = lock_.underlying();
      l.acquire(c);
      f();
      l.release(c);
    }
  }

  const sync::ElisionStats& stats() const { return lock_.stats(); }

 private:
  bool elide_ = false;
  sync::ElidedLock lock_;
};

/// #pragma omp atomic for integral cells.
template <typename T>
void atomic_add(Context& c, sim::Shared<T> cell, T v) {
  if constexpr (std::is_floating_point_v<T>) {
    cell.atomic_add(c, v);  // CMPXCHG loop, as the compiler emits
  } else {
    cell.fetch_add(c, v);
  }
}

/// Schedule kinds for parallel_for.
enum class Schedule { kStatic, kDynamic };

/// #pragma omp parallel for over [0, n). `body(ctx, i)` runs for each index.
/// kStatic gives each thread one contiguous block; kDynamic hands out
/// chunks through a shared counter.
template <typename Body>
void parallel_for(Machine& m, int threads, std::size_t n, Body&& body,
                  Schedule schedule = Schedule::kStatic,
                  std::size_t chunk = 8) {
  if (schedule == Schedule::kStatic) {
    m.run({.threads = threads, .body = [&](Context& c) {
      const std::size_t per = (n + threads - 1) / threads;
      const std::size_t i0 = c.tid() * per;
      const std::size_t i1 = std::min(n, i0 + per);
      for (std::size_t i = i0; i < i1; ++i) body(c, i);
    }});
    return;
  }
  auto next = sim::Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = threads, .body = [&](Context& c) {
    for (;;) {
      const std::uint64_t b = next.fetch_add(c, chunk);
      if (b >= n) break;
      const std::uint64_t e = std::min<std::uint64_t>(b + chunk, n);
      for (std::uint64_t i = b; i < e; ++i) body(c, i);
    }
  }});
}

}  // namespace tsxhpc::omp
