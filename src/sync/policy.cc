#include "sync/policy.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/rng.h"

namespace tsxhpc::sync {
namespace {

using sim::AbortCause;
using sim::Addr;
using sim::Cycles;
using sim::ThreadId;
using sim::TxAbort;

/// The paper's Section 3 fallback handler. Every branch below reproduces the
/// pre-seam inline loops exactly (policy_equivalence_test holds the telemetry
/// byte-identical): lock-busy waits for the word to clear when
/// spin_until_free, a cleared retry hint ends the section, everything else
/// backs off conflict_backoff cycles — and the wait/backoff happens even when
/// this was the last attempt, because the old loop ran handle_abort before
/// noticing the budget was spent.
class PaperPolicy : public TxPolicy {
 public:
  PaperPolicy(const ElisionPolicy& knobs, TxSiteTraits traits)
      : knobs_(knobs), traits_(traits) {}

  const char* name() const override { return "paper"; }
  int max_attempts() const override { return knobs_.max_retries; }

  bool should_attempt(Addr site, ThreadId tid) override {
    auto& sec = sections_[{site, tid}];
    sec = SectionState{};
    // A non-positive budget means the old `for (attempt < max_retries)` loop
    // made zero attempts and fell straight through to the lock.
    if (knobs_.max_retries <= 0) return false;
    if (traits_.adaptive) {
      auto& s = site_state(site);
      if (s.skip_left > 0) {
        --s.skip_left;
        return false;
      }
    }
    return on_should_attempt(site);
  }

  TxDecision on_abort(Addr site, ThreadId tid, const TxAbort& abort,
                      int attempt) override {
    auto& sec = sections_[{site, tid}];
    const bool more = attempt + 1 < knobs_.max_retries;
    if (is_capacity_class(abort.cause)) {
      sec.saw_hard_abort = true;
      // Two capacity-class strikes per section: the first might be the
      // probabilistic read tracker, the second means the section really
      // does not fit.
      if (traits_.capacity_break && ++sec.capacity_aborts >= 2)
        return TxDecision::Fallback();
    }
    if (abort.cause == AbortCause::kExplicit &&
        abort.code == kAbortCodeLockBusy) {
      return knobs_.spin_until_free ? TxDecision::WaitForLockThenRetry(more)
                                    : TxDecision::Retry(more);
    }
    if (knobs_.honor_retry_hint && !retry_may_succeed(abort.cause))
      return TxDecision::Fallback();
    return TxDecision::BackoffThenRetry(backoff_for(site, tid, attempt), more);
  }

  void on_commit(Addr site) override {
    if (!traits_.adaptive) return;
    auto& s = site_state(site);
    s.skip_base = knobs_.adaptive_skip;
    s.consecutive_hard_fallbacks = 0;
  }

  void on_fallback(Addr site, ThreadId tid) override {
    if (!traits_.adaptive) return;
    auto& sec = sections_[{site, tid}];
    if (!sec.saw_hard_abort) return;
    auto& s = site_state(site);
    if (++s.consecutive_hard_fallbacks >= knobs_.adaptive_trigger) {
      s.skip_left = s.skip_base;
      if (s.skip_base < 128) s.skip_base *= 2;
    }
  }

 protected:
  /// Extra per-site gate for subclasses (adaptive-site's holiday).
  virtual bool on_should_attempt(Addr) { return true; }
  /// Conflict-backoff schedule; expo-backoff overrides.
  virtual Cycles backoff_for(Addr, ThreadId, int /*attempt*/) {
    return knobs_.conflict_backoff;
  }

  const ElisionPolicy knobs_;
  const TxSiteTraits traits_;

 private:
  struct SiteState {
    int skip_left = 0;
    int skip_base = 0;  // set to knobs_.adaptive_skip on first touch
    int consecutive_hard_fallbacks = 0;
  };
  struct SectionState {
    bool saw_hard_abort = false;
    int capacity_aborts = 0;
  };

  SiteState& site_state(Addr site) {
    auto [it, fresh] = sites_.try_emplace(site);
    if (fresh) it->second.skip_base = knobs_.adaptive_skip;
    return it->second;
  }

  std::map<Addr, SiteState> sites_;
  std::map<std::pair<Addr, ThreadId>, SectionState> sections_;
};

/// `no-hint`: what Section 3 warns against measuring without — the handler
/// never decodes the abort status, so capacity/syscall aborts are retried
/// (with backoff) until the budget runs out instead of falling back early.
/// Lock-busy still waits for the word: that decision comes from the
/// subscription value, not the hint bit.
class NoHintPolicy : public TxPolicy {
 public:
  NoHintPolicy(const ElisionPolicy& knobs) : knobs_(knobs) {}

  const char* name() const override { return "no-hint"; }
  int max_attempts() const override { return knobs_.max_retries; }

  bool should_attempt(Addr, ThreadId) override {
    return knobs_.max_retries > 0;
  }

  TxDecision on_abort(Addr, ThreadId, const TxAbort& abort,
                      int attempt) override {
    const bool more = attempt + 1 < knobs_.max_retries;
    if (abort.cause == AbortCause::kExplicit &&
        abort.code == kAbortCodeLockBusy) {
      return knobs_.spin_until_free ? TxDecision::WaitForLockThenRetry(more)
                                    : TxDecision::Retry(more);
    }
    return TxDecision::BackoffThenRetry(knobs_.conflict_backoff, more);
  }

  void on_commit(Addr) override {}
  void on_fallback(Addr, ThreadId) override {}

 private:
  const ElisionPolicy knobs_;
};

/// `expo-backoff`: paper decisions, but the post-conflict backoff doubles per
/// attempt (capped at 2^6) with deterministic per-(site,thread) jitter in
/// [0, current backoff) drawn from a Xoshiro stream seeded from (site, tid).
/// Host-independent and backend-invariant: the stream state lives here, not
/// in any OS source of entropy, and advances once per backoff decision.
class ExpoBackoffPolicy : public PaperPolicy {
 public:
  using PaperPolicy::PaperPolicy;

  const char* name() const override { return "expo-backoff"; }

 protected:
  Cycles backoff_for(Addr site, ThreadId tid, int attempt) override {
    const Cycles base = knobs_.conflict_backoff
                        << std::min(attempt, 6);
    if (base == 0) return 0;
    auto it = rngs_.find({site, tid});
    if (it == rngs_.end()) {
      // SplitMix64 whitens the (site, tid) pair into a full-entropy seed.
      sim::SplitMix64 seeder(site * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull *
                             (static_cast<std::uint64_t>(tid) + 1));
      it = rngs_.emplace(std::make_pair(site, tid),
                         sim::Xoshiro256(seeder.next())).first;
    }
    return base + it->second.next_below(base);
  }

 private:
  std::map<std::pair<Addr, ThreadId>, sim::Xoshiro256> rngs_;
};

/// `adaptive-site`: the glibc elision heuristic (skip_lock_internal_abort /
/// skip_lock_after_retries) generalized to every site kind. ANY section that
/// ends in a fallback — not just capacity-driven ones, and with no
/// consecutive-section trigger — puts the site on an elision holiday of
/// `window` sections, and the window doubles (capped at 128) while fallbacks
/// keep happening; a transactional commit resets it. Abort handling within a
/// section is otherwise the paper's.
class AdaptiveSitePolicy : public PaperPolicy {
 public:
  AdaptiveSitePolicy(const ElisionPolicy& knobs, TxSiteTraits traits)
      // Strip the paper's own adaptive machinery: this policy replaces it
      // (running both would double-count fallbacks), but keep capacity_break.
      : PaperPolicy(knobs, TxSiteTraits{false, traits.capacity_break}) {}

  const char* name() const override { return "adaptive-site"; }

  void on_commit(Addr site) override {
    sites_[site].window = std::max(knobs_.adaptive_skip, 1);
  }

  void on_fallback(Addr site, ThreadId) override {
    auto& s = sites_[site];
    if (s.window == 0) s.window = std::max(knobs_.adaptive_skip, 1);
    s.skip_left = s.window;
    s.window = std::min(s.window * 2, 128);
  }

 protected:
  bool on_should_attempt(Addr site) override {
    auto& s = sites_[site];
    if (s.skip_left > 0) {
      --s.skip_left;
      return false;
    }
    return true;
  }

 private:
  struct SiteState {
    int skip_left = 0;
    int window = 0;  // next holiday length; 0 = not yet initialised
  };
  std::map<Addr, SiteState> sites_;
};

}  // namespace

std::shared_ptr<TxPolicy> make_tx_policy(sim::TxPolicyKind kind,
                                         const ElisionPolicy& knobs,
                                         TxSiteTraits traits) {
  switch (kind) {
    case sim::TxPolicyKind::kPaper:
      return std::make_shared<PaperPolicy>(knobs, traits);
    case sim::TxPolicyKind::kNoHint:
      return std::make_shared<NoHintPolicy>(knobs);
    case sim::TxPolicyKind::kExpoBackoff:
      return std::make_shared<ExpoBackoffPolicy>(knobs, traits);
    case sim::TxPolicyKind::kAdaptiveSite:
      return std::make_shared<AdaptiveSitePolicy>(knobs, traits);
  }
  return std::make_shared<PaperPolicy>(knobs, traits);
}

}  // namespace tsxhpc::sync
