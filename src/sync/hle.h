// Hardware Lock Elision — the paper's *other* software interface (Section
// 2): XACQUIRE/XRELEASE-prefixed lock operations. Legacy-compatible: on
// hardware without TSX the prefixes are ignored and the code is an ordinary
// lock. On TSX hardware the XACQUIRE'd write to the lock word is elided
// (the lock is only added to the read set), the critical section runs
// transactionally, and the XRELEASE'd restoring write commits it.
//
// Unlike the RTM interface there is no software fallback handler or retry
// policy: hardware retries the elision ONCE at most (implementation
// behaviour of the first TSX parts); on a second failure the lock is
// acquired for real. That fixed policy is exactly why the paper's library
// uses the more flexible RTM interface (Section 3).
//
// Accordingly this lock is NOT a TxPolicy consumer: the hardwired
// try-once-then-acquire below models hardware behaviour, so --policy= has no
// effect on it (policy.h only supplies the shared abort-classification
// helpers and the lock-busy code).
#pragma once

#include "sim/context.h"
#include "sync/locks.h"
#include "sync/policy.h"

namespace tsxhpc::sync {

class HleLock {
 public:
  HleLock() = default;
  explicit HleLock(Machine& m) : lock_(m) {}

  /// Execute `f` as an XACQUIRE/XRELEASE critical section. Same abort
  /// semantics as ElidedLock::critical (the body may re-execute).
  template <typename F>
  void critical(Context& c, F&& f) {
    if (c.in_txn()) {
      // Nested inside another transactional region: flat nesting.
      c.xbegin();
      if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
      f();
      c.xend();
      return;
    }
    sim::Telemetry* tel = c.machine().telemetry();
    if (tel) {
      tel->section_enter(c.tid(), lock_.word().addr(), sim::LockKind::kHle);
    }
    // Hardware policy: one elision attempt, one retry, then the real lock.
    for (int attempt = 0; attempt < 2; ++attempt) {
      try {
        c.xbegin();
        // XACQUIRE semantics: the lock write is suppressed; the word is
        // merely read (added to the read set). A held lock means a real
        // owner exists: abort and do not elide.
        if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        f();
        c.xend();  // XRELEASE: the restoring write commits the elision
        elided_++;
        if (tel) tel->section_commit(c.tid());
        return;
      } catch (const sim::TxAbort& a) {
        aborts_++;
        if (a.cause == sim::AbortCause::kExplicit &&
            a.code == kAbortCodeLockBusy) {
          Context::LockWaitScope wait(c);
          while (lock_.word().load(c) != 0) c.compute(80);
          continue;
        }
        if (!retry_may_succeed(a.cause)) break;
      }
    }
    acquired_++;
    lock_.acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    {
      Context::FallbackScope serialized(c);
      f();
    }
    const Cycles t_rel = tel ? c.now() : 0;
    lock_.release(c);
    if (tel) tel->section_fallback(c.tid(), t_acq, t_rel);
  }

  SpinLock& underlying() { return lock_; }
  std::uint64_t elided() const { return elided_; }
  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t aborts() const { return aborts_; }

 private:
  SpinLock lock_;
  std::uint64_t elided_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t aborts_ = 0;
};

}  // namespace tsxhpc::sync
