// RTM-based lock elision — the synchronization-library technique at the heart
// of the paper (Section 3), plus *lockset elision* (Section 5.2.1).
//
// The elision wrapper executes a critical section transactionally. The lock
// word is read ("subscribed") inside the transaction and the section aborts
// if the lock is held, guaranteeing correct interaction with threads that
// acquired the lock explicitly. On abort, a policy decides between retrying
// transactionally and falling back to a real acquisition; the paper found 5
// retries best on its hardware and workloads, which is our default.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "sim/context.h"
#include "sync/locks.h"

namespace tsxhpc::sync {

/// XABORT code used when the subscribed lock word is observed held.
inline constexpr std::uint8_t kAbortCodeLockBusy = 0xFF;

/// Fallback policy knobs.
struct ElisionPolicy {
  /// Transactional attempts before explicitly acquiring the lock.
  int max_retries = 5;
  /// Wait for the lock to become free before retrying after a lock-busy
  /// abort (avoids the lemming effect: immediately re-eliding while the
  /// lock is held just aborts again).
  bool spin_until_free = true;
  /// Aborts whose cause cannot succeed on retry (capacity, syscall,
  /// nesting) skip the remaining attempts — the analogue of the hardware
  /// abort-status "retry" hint bit being clear.
  bool honor_retry_hint = true;
  /// Backoff between transactional retries after a conflict abort.
  Cycles conflict_backoff = 120;
  /// Adaptive elision (glibc-style skip_lock_internal_abort): once
  /// `adaptive_trigger` CONSECUTIVE sections end in capacity/syscall-driven
  /// fallbacks, skip elision for `adaptive_skip` sections, doubling the
  /// holiday (capped at 128) while the condition persists. Structurally
  /// hopeless sections (labyrinth's over-capacity copies) degenerate to
  /// plain locking; workloads whose sections only *sometimes* overflow
  /// (vacation) keep eliding the ones that fit.
  int adaptive_skip = 4;
  int adaptive_trigger = 4;
};

/// Whether the hardware would set the "retry may succeed" status bit.
/// Conflicts are transient, and so are secondary-read-tracker losses (the
/// loss depends on incidental cache state, which differs on retry) — this
/// is why the paper's retry-5 policy pays off on vacation despite its
/// 38-52% abort rates. Write-set overflow, syscalls and nesting overflow
/// fail deterministically and clear the hint.
inline bool retry_may_succeed(sim::AbortCause cause) {
  return cause == sim::AbortCause::kConflict ||
         cause == sim::AbortCause::kCapacityRead;
}

/// Capacity-class causes: even when individually retryable, a section that
/// keeps dying of these is structurally oversized and should trigger the
/// adaptive elision holiday.
inline bool is_capacity_class(sim::AbortCause cause) {
  return cause == sim::AbortCause::kCapacityWrite ||
         cause == sim::AbortCause::kCapacityRead ||
         cause == sim::AbortCause::kSyscall ||
         cause == sim::AbortCause::kNesting;
}

/// Per-lock elision statistics (host-side: simulated threads are serialized
/// by the scheduler token, so plain integers are race-free).
struct ElisionStats {
  std::uint64_t elided_commits = 0;
  std::uint64_t fallback_acquires = 0;
  std::uint64_t aborts = 0;

  double elision_rate() const {
    const double total =
        static_cast<double>(elided_commits + fallback_acquires);
    return total == 0 ? 0.0 : static_cast<double>(elided_commits) / total;
  }
};

/// A lock whose critical sections are executed via RTM lock elision.
class ElidedLock {
 public:
  ElidedLock() = default;
  explicit ElidedLock(Machine& m, ElisionPolicy policy = {})
      : lock_(m), policy_(policy), skip_base_(policy.adaptive_skip) {}

  /// Execute `f` as an elided critical section.
  ///
  /// Abort semantics follow hardware RTM: on abort, *everything* the section
  /// did is rolled back and `f` re-executes from the top. Consequently `f`
  /// must keep non-simulated (host) side effects idempotent or declare them
  /// inside the lambda.
  template <typename F>
  void critical(Context& c, F&& f) {
    if (c.in_txn()) {
      // Nested elision inside an outer transactional region: subscribe this
      // lock too and run flat; any abort unwinds to the outermost retry loop.
      c.xbegin();
      if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
      f();
      c.xend();
      return;
    }
    sim::Telemetry* tel = c.machine().telemetry();
    if (tel) {
      tel->section_enter(c.tid(), lock_.word().addr(),
                         sim::LockKind::kElided);
    }
    if (skip_elision_ > 0) {
      // Adaptive phase: this lock recently failed to elide; take it.
      skip_elision_--;
      stats_.fallback_acquires++;
      lock_.acquire(c);
      const Cycles t_acq = tel ? c.now() : 0;
      {
        Context::FallbackScope serialized(c);
        f();
      }
      const Cycles t_rel = tel ? c.now() : 0;
      lock_.release(c);
      if (tel) tel->section_fallback(c.tid(), t_acq, t_rel);
      return;
    }
    bool saw_hard_abort = false;   // capacity/syscall: elision is hopeless
    int capacity_aborts_here = 0;  // per-section capacity-class abort count
    for (int attempt = 0; attempt < policy_.max_retries; ++attempt) {
      try {
        c.xbegin();
        if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        f();
        c.xend();
        stats_.elided_commits++;
        skip_base_ = policy_.adaptive_skip;  // elision works again: forgive
        consecutive_hard_fallbacks_ = 0;
        if (tel) tel->section_commit(c.tid());
        return;
      } catch (const sim::TxAbort& a) {
        stats_.aborts++;
        if (is_capacity_class(a.cause)) {
          saw_hard_abort = true;
          // A capacity-class abort may be incidental (secondary-tracker
          // loss) — worth ONE more try — but two in the same section means
          // the footprint itself is the problem: stop wasting work.
          if (++capacity_aborts_here >= 2) break;
        }
        if (!handle_abort(c, a)) break;
      }
    }
    stats_.fallback_acquires++;
    if (saw_hard_abort &&
        ++consecutive_hard_fallbacks_ >= policy_.adaptive_trigger) {
      // Elision looks structurally hopeless here (footprint, syscalls):
      // take a holiday, doubling it while the condition persists.
      skip_elision_ = skip_base_;
      if (skip_base_ < 128) skip_base_ *= 2;
    }
    lock_.acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    {
      Context::FallbackScope serialized(c);
      f();
    }
    const Cycles t_rel = tel ? c.now() : 0;
    lock_.release(c);
    if (tel) tel->section_fallback(c.tid(), t_acq, t_rel);
  }

  /// Explicit (non-transactional) acquisition, for code that needs the lock
  /// across scopes. Any concurrent elided sections subscribed to this lock
  /// are doomed by this write, as on real hardware.
  void acquire(Context& c) {
    stats_.fallback_acquires++;
    lock_.acquire(c);
  }
  void release(Context& c) { lock_.release(c); }

  SpinLock& underlying() { return lock_; }
  const ElisionStats& stats() const { return stats_; }
  const ElisionPolicy& policy() const { return policy_; }

 private:
  friend class ElidedLockSet;

  /// Returns true if another transactional attempt should be made.
  bool handle_abort(Context& c, const sim::TxAbort& a) {
    if (a.cause == sim::AbortCause::kExplicit && a.code == kAbortCodeLockBusy) {
      if (policy_.spin_until_free) {
        Context::LockWaitScope wait(c);
        while (lock_.word().load(c) != 0) c.compute(80);
      }
      return true;
    }
    if (policy_.honor_retry_hint && !retry_may_succeed(a.cause)) return false;
    {
      Context::LockWaitScope wait(c);
      c.compute(policy_.conflict_backoff);
    }
    return true;
  }

  SpinLock lock_;
  ElisionPolicy policy_;
  ElisionStats stats_;
  // Host-side adaptive-skip state (simulated threads are serialized by
  // the scheduler token, so plain ints are race-free).
  int skip_elision_ = 0;
  int skip_base_ = 4;
  int consecutive_hard_fallbacks_ = 0;
};

/// Lockset elision (Section 5.2.1): replace the acquisition of a *set* of
/// locks with a single transactional region. Used by physicsSolver (two
/// object locks per constraint) and graphCluster (test-lock + set-lock
/// paths). The fallback acquires the whole set in a canonical (address)
/// order to stay deadlock free.
class ElidedLockSet {
 public:
  explicit ElidedLockSet(ElisionPolicy policy = {}) : policy_(policy) {}

  /// Elide `locks` (any iterable of SpinLock*) around `f`.
  template <typename F>
  void critical(Context& c, std::initializer_list<SpinLock*> locks, F&& f) {
    critical_impl(c, std::vector<SpinLock*>(locks), std::forward<F>(f));
  }
  template <typename F>
  void critical(Context& c, std::vector<SpinLock*> locks, F&& f) {
    critical_impl(c, std::move(locks), std::forward<F>(f));
  }

  const ElisionStats& stats() const { return stats_; }

 private:
  template <typename F>
  void critical_impl(Context& c, std::vector<SpinLock*> locks, F&& f) {
    sim::Telemetry* tel = c.machine().telemetry();
    if (tel && !locks.empty()) {
      // The set is identified by its first named lock (pre-sort, so the
      // caller's primary lock names the site).
      tel->section_enter(c.tid(), (*locks.begin())->word().addr(),
                         sim::LockKind::kLockset);
    }
    for (int attempt = 0; attempt < policy_.max_retries; ++attempt) {
      try {
        c.xbegin();
        // A single transactional begin subscribes every lock in the set —
        // this is the entire point of lockset elision: one XBEGIN replaces
        // N atomic lock acquisitions.
        for (SpinLock* l : locks) {
          if (l->word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        }
        f();
        c.xend();
        stats_.elided_commits++;
        if (tel && !locks.empty()) tel->section_commit(c.tid());
        return;
      } catch (const sim::TxAbort& a) {
        stats_.aborts++;
        if (a.cause == sim::AbortCause::kExplicit &&
            a.code == kAbortCodeLockBusy) {
          if (policy_.spin_until_free) {
            Context::LockWaitScope wait(c);
            for (SpinLock* l : locks) {
              while (l->word().load(c) != 0) c.compute(80);
            }
          }
          continue;
        }
        if (policy_.honor_retry_hint && !retry_may_succeed(a.cause)) break;
        {
          Context::LockWaitScope wait(c);
          c.compute(policy_.conflict_backoff);
        }
      }
    }
    // Fallback: acquire all locks in canonical order. Deduplicate first —
    // a batched lockset (e.g. dynamic coarsening over constraints sharing
    // an object) may name the same lock twice, and acquiring a lock twice
    // would self-deadlock.
    stats_.fallback_acquires++;
    std::sort(locks.begin(), locks.end(),
              [](const SpinLock* a, const SpinLock* b) {
                return a->word().addr() < b->word().addr();
              });
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    for (SpinLock* l : locks) l->acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    {
      Context::FallbackScope serialized(c);
      f();
    }
    const Cycles t_rel = tel ? c.now() : 0;
    for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
      (*it)->release(c);
    }
    if (tel && !locks.empty()) tel->section_fallback(c.tid(), t_acq, t_rel);
  }

  ElisionPolicy policy_;
  ElisionStats stats_;
};

}  // namespace tsxhpc::sync
