// RTM-based lock elision — the synchronization-library technique at the heart
// of the paper (Section 3), plus *lockset elision* (Section 5.2.1).
//
// The elision wrapper executes a critical section transactionally. The lock
// word is read ("subscribed") inside the transaction and the section aborts
// if the lock is held, guaranteeing correct interaction with threads that
// acquired the lock explicitly. On abort, the machine's TxPolicy (see
// sync/policy.h) decides between retrying transactionally and falling back to
// a real acquisition; the paper found 5 retries best on its hardware and
// workloads, which is our default. The wrapper here only *executes* the
// decisions — spins on its own lock words, charges backoff through
// Context::tx_backoff — so cycle accounting stays in the primitive.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "sim/context.h"
#include "sync/locks.h"
#include "sync/policy.h"

namespace tsxhpc::sync {

/// Per-lock elision statistics (host-side: simulated threads are serialized
/// by the scheduler token, so plain integers are race-free).
struct ElisionStats {
  std::uint64_t elided_commits = 0;
  std::uint64_t fallback_acquires = 0;
  std::uint64_t aborts = 0;

  double elision_rate() const {
    const double total =
        static_cast<double>(elided_commits + fallback_acquires);
    return total == 0 ? 0.0 : static_cast<double>(elided_commits) / total;
  }
};

/// A lock whose critical sections are executed via RTM lock elision.
class ElidedLock {
 public:
  ElidedLock() = default;
  explicit ElidedLock(Machine& m, ElisionPolicy policy = {})
      : lock_(m), policy_(policy),
        brain_(make_tx_policy(m.config().tx_policy, policy, kTraits)) {}

  /// Execute `f` as an elided critical section.
  ///
  /// Abort semantics follow hardware RTM: on abort, *everything* the section
  /// did is rolled back and `f` re-executes from the top. Consequently `f`
  /// must keep non-simulated (host) side effects idempotent or declare them
  /// inside the lambda.
  template <typename F>
  void critical(Context& c, F&& f) {
    if (c.in_txn()) {
      // Nested elision inside an outer transactional region: subscribe this
      // lock too and run flat; any abort unwinds to the outermost retry loop.
      c.xbegin();
      if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
      f();
      c.xend();
      return;
    }
    TxPolicy& brain = this->brain(c);
    const sim::Addr site = lock_.word().addr();
    sim::Telemetry* tel = c.machine().telemetry();
    if (tel) tel->section_enter(c.tid(), site, sim::LockKind::kElided);
    if (!brain.should_attempt(site, c.tid())) {
      // Adaptive phase (or a zero retry budget): elision recently failed
      // here; take the lock. The policy is NOT notified of this fallback —
      // skipped sections carry no evidence about whether elision works.
      if (tel) tel->policy_decision(c.tid(), sim::PolicyDecision::kSkip);
      stats_.fallback_acquires++;
      run_fallback(c, tel, f);
      return;
    }
    for (int attempt = 0;; ++attempt) {
      try {
        c.xbegin();
        if (lock_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        f();
        c.xend();
        stats_.elided_commits++;
        brain.on_commit(site);
        if (tel) tel->section_commit(c.tid());
        return;
      } catch (const sim::TxAbort& a) {
        stats_.aborts++;
        const TxDecision d = brain.on_abort(site, c.tid(), a, attempt);
        if (tel) tel->policy_decision(c.tid(), classify(d));
        perform(c, d);
        if (!d.retry) break;
      }
    }
    stats_.fallback_acquires++;
    brain.on_fallback(site, c.tid());
    run_fallback(c, tel, f);
  }

  /// Explicit (non-transactional) acquisition, for code that needs the lock
  /// across scopes. Any concurrent elided sections subscribed to this lock
  /// are doomed by this write, as on real hardware.
  void acquire(Context& c) {
    stats_.fallback_acquires++;
    lock_.acquire(c);
  }
  void release(Context& c) { lock_.release(c); }

  SpinLock& underlying() { return lock_; }
  const ElisionStats& stats() const { return stats_; }
  const ElisionPolicy& policy() const { return policy_; }

 private:
  friend class ElidedLockSet;

  // ElidedLock is the only primitive with the full Section-3 handler:
  // adaptive skip and the two-strikes capacity break.
  static constexpr TxSiteTraits kTraits{/*adaptive=*/true,
                                        /*capacity_break=*/true};

  TxPolicy& brain(Context& c) {
    // Default-constructed locks have no Machine until first use; bind the
    // brain to the machine the first critical section runs on.
    if (!brain_) {
      brain_ = make_tx_policy(c.machine().config().tx_policy, policy_,
                              kTraits);
    }
    return *brain_;
  }

  /// Execute the delay a decision asks for (the policy decides, we spin on
  /// OUR lock word / charge OUR context — see file comment).
  void perform(Context& c, const TxDecision& d) {
    switch (d.action) {
      case TxDecision::Action::kWaitForLock: {
        Context::LockWaitScope wait(c);
        while (lock_.word().load(c) != 0) c.compute(80);
        break;
      }
      case TxDecision::Action::kBackoff:
        c.tx_backoff(d.backoff);
        break;
      case TxDecision::Action::kNone:
        break;
    }
  }

  template <typename F>
  void run_fallback(Context& c, sim::Telemetry* tel, F&& f) {
    lock_.acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    {
      Context::FallbackScope serialized(c);
      f();
    }
    const Cycles t_rel = tel ? c.now() : 0;
    lock_.release(c);
    if (tel) tel->section_fallback(c.tid(), t_acq, t_rel);
  }

  SpinLock lock_;
  ElisionPolicy policy_;
  ElisionStats stats_;
  std::shared_ptr<TxPolicy> brain_;
};

/// Lockset elision (Section 5.2.1): replace the acquisition of a *set* of
/// locks with a single transactional region. Used by physicsSolver (two
/// object locks per constraint) and graphCluster (test-lock + set-lock
/// paths). The fallback acquires the whole set in a canonical (address)
/// order to stay deadlock free.
class ElidedLockSet {
 public:
  explicit ElidedLockSet(ElisionPolicy policy = {}) : policy_(policy) {}

  /// Elide `locks` (any iterable of SpinLock*) around `f`.
  template <typename F>
  void critical(Context& c, std::initializer_list<SpinLock*> locks, F&& f) {
    critical_impl(c, std::vector<SpinLock*>(locks), std::forward<F>(f));
  }
  template <typename F>
  void critical(Context& c, std::vector<SpinLock*> locks, F&& f) {
    critical_impl(c, std::move(locks), std::forward<F>(f));
  }

  const ElisionStats& stats() const { return stats_; }

 private:
  // Pre-seam lockset elision ran neither the adaptive skip nor the capacity
  // break (a set shares one retry loop across many object pairs, so
  // per-section strikes say little about the site).
  static constexpr TxSiteTraits kTraits{/*adaptive=*/false,
                                        /*capacity_break=*/false};

  TxPolicy& brain(Context& c) {
    if (!brain_) {
      brain_ = make_tx_policy(c.machine().config().tx_policy, policy_,
                              kTraits);
    }
    return *brain_;
  }

  template <typename F>
  void critical_impl(Context& c, std::vector<SpinLock*> locks, F&& f) {
    TxPolicy& brain = this->brain(c);
    // The set is identified by its first named lock (pre-sort, so the
    // caller's primary lock names the site).
    const sim::Addr site =
        locks.empty() ? sim::kNullAddr : (*locks.begin())->word().addr();
    sim::Telemetry* tel = c.machine().telemetry();
    const bool report = tel && !locks.empty();
    if (report) tel->section_enter(c.tid(), site, sim::LockKind::kLockset);
    bool elide = brain.should_attempt(site, c.tid());
    if (!elide && report) {
      tel->policy_decision(c.tid(), sim::PolicyDecision::kSkip);
    }
    for (int attempt = 0; elide; ++attempt) {
      try {
        c.xbegin();
        // A single transactional begin subscribes every lock in the set —
        // this is the entire point of lockset elision: one XBEGIN replaces
        // N atomic lock acquisitions.
        for (SpinLock* l : locks) {
          if (l->word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        }
        f();
        c.xend();
        stats_.elided_commits++;
        brain.on_commit(site);
        if (report) tel->section_commit(c.tid());
        return;
      } catch (const sim::TxAbort& a) {
        stats_.aborts++;
        const TxDecision d = brain.on_abort(site, c.tid(), a, attempt);
        if (report) tel->policy_decision(c.tid(), classify(d));
        switch (d.action) {
          case TxDecision::Action::kWaitForLock: {
            Context::LockWaitScope wait(c);
            for (SpinLock* l : locks) {
              while (l->word().load(c) != 0) c.compute(80);
            }
            break;
          }
          case TxDecision::Action::kBackoff:
            c.tx_backoff(d.backoff);
            break;
          case TxDecision::Action::kNone:
            break;
        }
        if (!d.retry) break;
      }
    }
    // Fallback: acquire all locks in canonical order. Deduplicate first —
    // a batched lockset (e.g. dynamic coarsening over constraints sharing
    // an object) may name the same lock twice, and acquiring a lock twice
    // would self-deadlock.
    stats_.fallback_acquires++;
    if (elide) brain.on_fallback(site, c.tid());
    std::sort(locks.begin(), locks.end(),
              [](const SpinLock* a, const SpinLock* b) {
                return a->word().addr() < b->word().addr();
              });
    locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
    for (SpinLock* l : locks) l->acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    {
      Context::FallbackScope serialized(c);
      f();
    }
    const Cycles t_rel = tel ? c.now() : 0;
    for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
      (*it)->release(c);
    }
    if (report) tel->section_fallback(c.tid(), t_acq, t_rel);
  }

  ElisionPolicy policy_;
  ElisionStats stats_;
  std::shared_ptr<TxPolicy> brain_;
};

}  // namespace tsxhpc::sync
