// Monitors and condition variables under five synchronization schemes —
// the implementation options compared in the paper's TCP/IP stack study
// (Section 6): pthread-style mutex + condvar, TSX with abort-on-wait, TSX
// with a transactional-execution-aware condition variable (futex based,
// after Dudnik & Swift), and the busy-wait variants of Listing 6.
//
// Usage:
//   TxMonitor mon(machine, MonitorScheme::kTsxCond);
//   CondVar cv(machine);
//   mon.enter(ctx, [&](MonitorOps& ops) {
//     if (queue_empty()) ops.wait(cv);   // restarts the body after waking
//     pop(); ops.signal(space_cv);
//   });
//
// Monitor bodies re-execute from the top after a wait — the standard
// `while (!pred) wait();` recheck loop, expressed as restart. CONTRACT:
// statements executed on a path that reaches wait() must not perform shared
// writes (check the predicate first). This mirrors the paper's §6.1 "commit
// partial results when it finds the need to wait": with a read-only prefix,
// the early commit publishes nothing and cannot be half-applied.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/context.h"
#include "sync/elision.h"
#include "sync/locks.h"

namespace tsxhpc::sync {

enum class MonitorScheme {
  kMutex,          // pthread mutex + pthread condvar (baseline)
  kTsxAbort,       // elide; abort + take the lock whenever a condvar is used
  kTsxCond,        // elide; transactional-execution-aware condvar (futex)
  kMutexBusyWait,  // pthread mutex; waits replaced by busy-wait (Listing 6)
  kTsxBusyWait,    // elide; waits replaced by busy-wait
};

const char* to_string(MonitorScheme s);

inline bool scheme_uses_tsx(MonitorScheme s) {
  return s == MonitorScheme::kTsxAbort || s == MonitorScheme::kTsxCond ||
         s == MonitorScheme::kTsxBusyWait;
}

/// Condition variable: a futex sequence word.
class CondVar {
 public:
  CondVar() = default;
  explicit CondVar(Machine& m)
      : seq_(sim::Shared<std::uint32_t>::alloc(m, {.name = "condvar"}, 0)) {}
  sim::Shared<std::uint32_t> seq() const { return seq_; }

 private:
  sim::Shared<std::uint32_t> seq_;
};

/// XABORT code used by kTsxAbort when a wait or signal needs the lock.
inline constexpr std::uint8_t kAbortCodeCondVar = 0xCD;

namespace detail {
/// Control-flow token thrown by MonitorOps::wait; caught by TxMonitor.
struct WaitToken {
  sim::Addr seq_addr = sim::kNullAddr;
  std::uint32_t captured_seq = 0;
};
}  // namespace detail

class TxMonitor;

/// Operations available to a monitor body.
class MonitorOps {
 public:
  /// Give up the monitor until `cv` is signalled (or, under busy-wait
  /// schemes, until a spin delay elapses); then restart the body.
  [[noreturn]] void wait(CondVar& cv);

  /// Signal one / all waiters. Under TSX schemes the futex update is
  /// deferred to the transaction's commit (the §6.1 callback); under mutex
  /// schemes it happens immediately.
  void signal(CondVar& cv) { queue_signal(cv, 1); }
  void broadcast(CondVar& cv) { queue_signal(cv, 1 << 30); }

 private:
  friend class TxMonitor;
  MonitorOps(TxMonitor& mon, Context& c, bool transactional)
      : mon_(mon), c_(c), transactional_(transactional) {}
  void queue_signal(CondVar& cv, int count);

  struct PendingSignal {
    sim::Addr seq_addr;
    int count;
  };

  TxMonitor& mon_;
  Context& c_;
  bool transactional_;
  // Per-attempt deferred-signal registry (the §6.1 commit callbacks). Each
  // body attempt owns its own MonitorOps, so an abort in ANOTHER thread
  // (or this one) can never discard someone else's pending signals.
  std::vector<PendingSignal> pending_;
};

/// A monitor (one internal lock) whose critical sections run under the
/// configured scheme. All workloads sharing a TxMonitor instance contend on
/// the same lock, exactly like the single locking module of the PARSEC
/// user-level TCP/IP stack.
class TxMonitor {
 public:
  TxMonitor() = default;
  TxMonitor(Machine& m, MonitorScheme scheme, ElisionPolicy policy = {},
            Cycles busy_wait_spin = 400)
      : scheme_(scheme),
        policy_(policy),
        busy_wait_spin_(busy_wait_spin),
        mutex_(m),
        brain_(make_tx_policy(m.config().tx_policy, policy, kTraits)) {}

  MonitorScheme scheme() const { return scheme_; }
  const ElisionStats& stats() const { return stats_; }

  template <typename F>
  void enter(Context& c, F&& body) {
    for (;;) {  // wait-restart loop
      if (scheme_ == MonitorScheme::kMutex ||
          scheme_ == MonitorScheme::kMutexBusyWait) {
        if (run_locked(c, body)) return;
        continue;
      }
      if (run_transactional(c, body)) return;
    }
  }

 private:
  friend class MonitorOps;

  // The monitor predates the adaptive skip and the per-section capacity
  // break (its wait-restart loop would make consecutive-section counting
  // meaningless); the paper policy preserves that.
  static constexpr TxSiteTraits kTraits{/*adaptive=*/false,
                                        /*capacity_break=*/false};

  TxPolicy& brain(Context& c) {
    if (!brain_) {
      brain_ = make_tx_policy(c.machine().config().tx_policy, policy_,
                              kTraits);
    }
    return *brain_;
  }

  /// One attempt under the real lock. Returns true when the body completed
  /// (false: it waited and must restart). `fallback` marks attempts that
  /// serialize after failed elision, for cycle accounting (and closes the
  /// open telemetry section as a fallback slice).
  template <typename F>
  bool run_locked(Context& c, F& body, bool fallback = false) {
    sim::Telemetry* tel = fallback ? c.machine().telemetry() : nullptr;
    mutex_.acquire(c);
    const Cycles t_acq = tel ? c.now() : 0;
    try {
      MonitorOps ops(*this, c, /*transactional=*/false);
      if (fallback) {
        Context::FallbackScope serialized(c);
        body(ops);
      } else {
        body(ops);
      }
      if (tel) tel->section_fallback(c.tid(), t_acq, c.now());
      mutex_.release(c);
      return true;
    } catch (const detail::WaitToken& w) {
      if (tel) tel->section_fallback(c.tid(), t_acq, c.now());
      mutex_.release(c);
      do_wait(c, w);
      return false;
    }
  }

  /// Elision attempt loop, then lock fallback. Returns true when the body
  /// completed, false when it waited (restart required).
  template <typename F>
  bool run_transactional(Context& c, F& body) {
    TxPolicy& brain = this->brain(c);
    const sim::Addr site = mutex_.word().addr();
    sim::Telemetry* tel = c.machine().telemetry();
    if (tel) tel->section_enter(c.tid(), site, sim::LockKind::kMonitor);
    if (!brain.should_attempt(site, c.tid())) {
      if (tel) tel->policy_decision(c.tid(), sim::PolicyDecision::kSkip);
      stats_.fallback_acquires++;
      return run_locked(c, body, /*fallback=*/true);
    }
    for (int attempt = 0;; ++attempt) {
      try {
        c.xbegin();
        if (mutex_.word().load(c) != 0) c.xabort(kAbortCodeLockBusy);
        MonitorOps ops(*this, c, /*transactional=*/true);
        body(ops);
        c.xend();
        stats_.elided_commits++;
        brain.on_commit(site);
        if (tel) tel->section_commit(c.tid());
        flush_signals(c, ops);
        return true;
      } catch (const detail::WaitToken& w) {
        // kTsxCond / kTsxBusyWait: wait() committed the (read-only) prefix
        // before throwing; we are no longer transactional.
        stats_.elided_commits++;
        brain.on_commit(site);
        if (tel) tel->section_commit(c.tid());
        do_wait(c, w);
        return false;
      } catch (const sim::TxAbort& a) {
        // Deferred signals die with the aborted attempt: each attempt owns
        // its MonitorOps instance, so nothing to clean up here.
        stats_.aborts++;
        TxDecision d;
        if (a.cause == sim::AbortCause::kExplicit &&
            a.code == kAbortCodeCondVar) {
          // kTsxAbort uses the paper's *generic* Section 3 retry policy:
          // the fallback handler counts failed attempts without decoding
          // the abort reason, so a condition-variable abort is retried
          // like any other — re-executing the whole section and aborting
          // again, up to the attempt budget. This wasted work is precisely
          // why tsx.abort "drops drastically on netferret" (Section 6.2).
          // Monitor semantics, not retry policy: decided here, but it still
          // burns an attempt and is recorded as a decision so the per-site
          // counts keep reconciling with tx_aborts.
          d = TxDecision::Retry(attempt + 1 < brain.max_attempts());
        } else {
          d = brain.on_abort(site, c.tid(), a, attempt);
        }
        if (tel) tel->policy_decision(c.tid(), classify(d));
        switch (d.action) {
          case TxDecision::Action::kWaitForLock: {
            Context::LockWaitScope wait(c);
            while (mutex_.word().load(c) != 0) c.compute(80);
            break;
          }
          case TxDecision::Action::kBackoff:
            c.tx_backoff(d.backoff);
            break;
          case TxDecision::Action::kNone:
            break;
        }
        if (!d.retry) break;
      }
    }
    stats_.fallback_acquires++;
    brain.on_fallback(site, c.tid());
    return run_locked(c, body, /*fallback=*/true);
  }

  void do_wait(Context& c, const detail::WaitToken& w) {
    Context::LockWaitScope wait(c);
    if (scheme_ == MonitorScheme::kMutexBusyWait ||
        scheme_ == MonitorScheme::kTsxBusyWait) {
      c.compute(busy_wait_spin_);
    } else {
      c.futex_wait(w.seq_addr, w.captured_seq);
    }
  }

  void flush_signals(Context& c, MonitorOps& ops);

  MonitorScheme scheme_ = MonitorScheme::kMutex;
  ElisionPolicy policy_;
  Cycles busy_wait_spin_ = 400;
  FutexMutex mutex_;
  ElisionStats stats_;
  std::shared_ptr<TxPolicy> brain_;
};

inline void MonitorOps::wait(CondVar& cv) {
  switch (mon_.scheme_) {
    case MonitorScheme::kMutex: {
      // Lock is held: capturing the sequence then releasing is atomic
      // enough (pthread_cond_wait semantics).
      detail::WaitToken w{cv.seq().addr(), cv.seq().load(c_)};
      throw w;
    }
    case MonitorScheme::kMutexBusyWait:
      throw detail::WaitToken{};
    case MonitorScheme::kTsxAbort:
      if (transactional_ && c_.in_txn()) c_.xabort(kAbortCodeCondVar);
      {
        // Fallback path (lock held): behave like kMutex.
        detail::WaitToken w{cv.seq().addr(), cv.seq().load(c_)};
        throw w;
      }
    case MonitorScheme::kTsxCond: {
      // §6.1: commit partial results, then sleep on the futex. The sequence
      // is captured transactionally (subscribed) before the commit, so a
      // wakeup between commit and FUTEX_WAIT is detected by value mismatch.
      detail::WaitToken w{cv.seq().addr(), cv.seq().load(c_)};
      if (c_.in_txn()) c_.xend();
      throw w;
    }
    case MonitorScheme::kTsxBusyWait: {
      if (c_.in_txn()) c_.xend();
      throw detail::WaitToken{};
    }
  }
  throw sim::SimError("unreachable: unknown monitor scheme");
}

inline void TxMonitor::flush_signals(Context& c, MonitorOps& ops) {
  for (const MonitorOps::PendingSignal& s : ops.pending_) {
    // Bump the sequence and wake; both outside any transaction.
    c.fetch_add(s.seq_addr, 1, 4);
    c.futex_wake(s.seq_addr, s.count);
  }
  ops.pending_.clear();
}

inline void MonitorOps::queue_signal(CondVar& cv, int count) {
  switch (mon_.scheme_) {
    case MonitorScheme::kMutex:
      cv.seq().fetch_add(c_, 1);
      c_.futex_wake(cv.seq().addr(), count);
      return;
    case MonitorScheme::kMutexBusyWait:
    case MonitorScheme::kTsxBusyWait:
      // Busy waiters poll the monitor state; no futex involved. The paper
      // notes this trades wasted cycles for latency (Section 6.2).
      return;
    case MonitorScheme::kTsxAbort:
      if (transactional_ && c_.in_txn()) {
        // pthread_cond_signal may enter the kernel; the transactional
        // execution cannot survive it (Section 6.1).
        c_.xabort(kAbortCodeCondVar);
      }
      cv.seq().fetch_add(c_, 1);
      c_.futex_wake(cv.seq().addr(), count);
      return;
    case MonitorScheme::kTsxCond:
      if (transactional_ && c_.in_txn()) {
        // Register the §6.1 commit callback.
        pending_.push_back({cv.seq().addr(), count});
      } else {
        cv.seq().fetch_add(c_, 1);
        c_.futex_wake(cv.seq().addr(), count);
      }
      return;
  }
  throw sim::SimError("unreachable: unknown monitor scheme");
}

}  // namespace tsxhpc::sync
