// Transactional coarsening helpers (Section 5.2.2).
//
// *Static coarsening* merges different critical sections / atomic updates
// into one transactional region at the source level — expressed directly in
// workload code by putting several updates in one critical() lambda.
//
// *Dynamic coarsening* combines multiple dynamic instances of the same
// region: the paper's Listing 3 skips XBEGIN/XEND instances based on the
// loop index so that TXN_GRAN updates share one region. These helpers are
// that loop structure, packaged.
#pragma once

#include <cstddef>

#include "sync/elision.h"

namespace tsxhpc::sync {

/// Run `fn(i)` for i in [0, n), batching `gran` consecutive iterations into
/// a single elided critical section (TXN_GRAN in the paper's Listing 3).
/// With gran == 1 this degenerates to one region per iteration.
template <typename Fn>
void for_each_coarsened(Context& c, ElidedLock& lock, std::size_t n,
                        std::size_t gran, Fn&& fn) {
  if (gran == 0) gran = 1;
  for (std::size_t i = 0; i < n; i += gran) {
    const std::size_t end = i + gran < n ? i + gran : n;
    lock.critical(c, [&] {
      for (std::size_t j = i; j < end; ++j) fn(j);
    });
  }
}

/// Incremental flavour: accumulates `add()` calls and flushes a batch as one
/// region whenever `gran` updates are pending (or on flush()). Useful when
/// the update stream is not a simple counted loop.
template <typename Fn>
class CoarseningBatcher {
 public:
  CoarseningBatcher(Context& c, ElidedLock& lock, std::size_t gran, Fn fn)
      : c_(c), lock_(lock), gran_(gran == 0 ? 1 : gran), fn_(std::move(fn)) {}

  ~CoarseningBatcher() { flush(); }

  void add(std::size_t item) {
    pending_[count_++] = item;
    if (count_ == gran_) flush();
  }

  void flush() {
    if (count_ == 0) return;
    const std::size_t n = count_;
    lock_.critical(c_, [&] {
      for (std::size_t i = 0; i < n; ++i) fn_(pending_[i]);
    });
    count_ = 0;
  }

 private:
  static constexpr std::size_t kMaxGran = 64;
  Context& c_;
  ElidedLock& lock_;
  std::size_t gran_;
  Fn fn_;
  std::size_t pending_[kMaxGran] = {};
  std::size_t count_ = 0;
};

}  // namespace tsxhpc::sync
