// Baseline synchronization primitives, all built on simulated shared memory
// so their contention behaviour (cache-line bouncing, futex syscalls) is
// modeled rather than assumed.
#pragma once

#include <cstdint>

#include "sim/context.h"
#include "sim/machine.h"
#include "sim/shared.h"
#include "sim/telemetry.h"

namespace tsxhpc::sync {

using sim::Context;
using sim::Cycles;
using sim::Machine;

/// Test-and-test-and-set spinlock with bounded exponential backoff. This is
/// the lock the TM libraries' "sgl" mode and the elision wrappers guard.
class SpinLock {
 public:
  SpinLock() = default;
  explicit SpinLock(Machine& m)
      : word_(sim::Shared<std::uint32_t>::alloc(m, {.name = "lock/spin"}, 0)) {}

  void acquire(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    bool contended = false;
    Cycles backoff = 40;
    {
      Context::LockWaitScope wait(c);
      for (;;) {
        if (word_.load(c) == 0 && word_.cas(c, 0, 1)) break;
        contended = true;
        c.compute(backoff);
        if (backoff < 2000) backoff *= 2;
      }
    }
    if (tel) {
      tel->on_lock_acquired(word_.addr(), sim::LockKind::kSpin, c.tid(), t0,
                            c.now(), contended);
    }
  }

  /// Non-blocking acquisition attempt (omp_test_lock analogue).
  bool try_acquire(Context& c) {
    if (word_.load(c) != 0 || !word_.cas(c, 0, 1)) return false;
    if (sim::Telemetry* tel = c.machine().telemetry()) {
      tel->on_lock_acquired(word_.addr(), sim::LockKind::kSpin, c.tid(),
                            c.now(), c.now(), false);
    }
    return true;
  }

  void release(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    word_.store(c, 0);
    if (tel) tel->on_lock_released(word_.addr(), c.tid(), t0);
  }

  /// Lock-word handle, used by elision to subscribe to the lock.
  sim::Shared<std::uint32_t> word() const { return word_; }
  bool held_now(Machine& m) const { return word_.peek(m) != 0; }

 private:
  sim::Shared<std::uint32_t> word_;
};

/// FIFO ticket lock; used where fairness matters in baselines.
class TicketLock {
 public:
  TicketLock() = default;
  explicit TicketLock(Machine& m)
      : next_(sim::Shared<std::uint32_t>::alloc(m, {.name = "lock/ticket"}, 0)),
        serving_(
            sim::Shared<std::uint32_t>::alloc(m, {.name = "lock/ticket"}, 0)) {}

  void acquire(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    const std::uint32_t my = next_.fetch_add(c, 1);
    bool contended = false;
    {
      Context::LockWaitScope wait(c);
      while (serving_.load(c) != my) {
        contended = true;
        c.compute(60);
      }
    }
    if (tel) {
      tel->on_lock_acquired(next_.addr(), sim::LockKind::kTicket, c.tid(), t0,
                            c.now(), contended);
    }
  }

  void release(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    serving_.fetch_add(c, 1);
    if (tel) tel->on_lock_released(next_.addr(), c.tid(), t0);
  }

 private:
  sim::Shared<std::uint32_t> next_;
  sim::Shared<std::uint32_t> serving_;
};

/// Futex-blocking mutex, glibc style (0 = free, 1 = locked, 2 = locked with
/// waiters). This is the model of pthread_mutex in the TCP/IP stack study.
class FutexMutex {
 public:
  FutexMutex() = default;
  explicit FutexMutex(Machine& m)
      : word_(sim::Shared<std::uint32_t>::alloc(m, {.name = "lock/futex"}, 0)) {}

  void acquire(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    bool contended = false;
    bool got = false;
    if (word_.cas(c, 0, 1)) {  // uncontended fast path
      got = true;
    } else {
      contended = true;
      Context::LockWaitScope wait(c);
      // Adaptive phase (PTHREAD_MUTEX_ADAPTIVE_NP-style): spin briefly before
      // committing to a kernel sleep — short critical sections usually free
      // the lock within a few hundred cycles.
      for (int spin = 0; spin < 10 && !got; ++spin) {
        c.compute(90);
        if (word_.load(c) == 0 && word_.cas(c, 0, 1)) got = true;
      }
      if (!got) {
        do {
          // Mark contended (even if we raced with release) and sleep.
          std::uint32_t v = word_.load(c);
          if (v == 2 || (v == 1 && word_.cas(c, 1, 2))) {
            c.futex_wait(word_.addr(), 2);
          }
        } while (word_.exchange(c, 2) != 0);
      }
    }
    if (tel) {
      tel->on_lock_acquired(word_.addr(), sim::LockKind::kFutex, c.tid(), t0,
                            c.now(), contended);
    }
  }

  bool try_acquire(Context& c) {
    if (!word_.cas(c, 0, 1)) return false;
    if (sim::Telemetry* tel = c.machine().telemetry()) {
      tel->on_lock_acquired(word_.addr(), sim::LockKind::kFutex, c.tid(),
                            c.now(), c.now(), false);
    }
    return true;
  }

  void release(Context& c) {
    sim::Telemetry* tel = c.machine().telemetry();
    const Cycles t0 = tel ? c.now() : 0;
    if (word_.exchange(c, 0) == 2) {
      c.futex_wake(word_.addr(), 1);
    }
    if (tel) tel->on_lock_released(word_.addr(), c.tid(), t0);
  }

  sim::Shared<std::uint32_t> word() const { return word_; }

 private:
  sim::Shared<std::uint32_t> word_;
};

/// Sense-reversing centralized barrier (spin + optional futex blocking).
class Barrier {
 public:
  Barrier() = default;
  Barrier(Machine& m, int parties, bool blocking = false)
      : parties_(parties),
        blocking_(blocking),
        arrived_(sim::Shared<std::uint32_t>::alloc(m, {.name = "barrier"}, 0)),
        sense_(sim::Shared<std::uint32_t>::alloc(m, {.name = "barrier"}, 0)) {}

  void wait(Context& c) {
    const std::uint32_t my_sense = sense_.load(c);
    if (arrived_.fetch_add(c, 1) + 1 == static_cast<std::uint32_t>(parties_)) {
      arrived_.store(c, 0);
      sense_.store(c, my_sense + 1);
      if (blocking_) c.futex_wake(sense_.addr(), parties_);
    } else if (blocking_) {
      Context::LockWaitScope wait(c);
      while (sense_.load(c) == my_sense) {
        c.futex_wait(sense_.addr(), my_sense);
      }
    } else {
      Context::LockWaitScope wait(c);
      while (sense_.load(c) == my_sense) c.compute(50);
    }
  }

 private:
  int parties_ = 0;
  bool blocking_ = false;
  sim::Shared<std::uint32_t> arrived_;
  sim::Shared<std::uint32_t> sense_;
};

/// RAII guard over any lock with acquire/release.
template <typename Lock>
class Guard {
 public:
  Guard(Context& c, Lock& l) : c_(c), l_(l) { l_.acquire(c_); }
  ~Guard() { l_.release(c_); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Context& c_;
  Lock& l_;
};

}  // namespace tsxhpc::sync
