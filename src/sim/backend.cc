#include "sim/backend.h"

#include <cstdlib>

#include "sim/backend_impl.h"
#include "sim/types.h"

namespace tsxhpc::sim {

const char* to_string(BackendKind k) {
  switch (k) {
    case BackendKind::kFiber:
      return "fiber";
    case BackendKind::kThread:
      return "thread";
  }
  return "?";
}

bool backend_from_string(std::string_view s, BackendKind& out) {
  if (s == "fiber") {
    out = BackendKind::kFiber;
    return true;
  }
  if (s == "thread") {
    out = BackendKind::kThread;
    return true;
  }
  return false;
}

BackendKind default_backend() {
  static const BackendKind kind = [] {
    BackendKind k = BackendKind::kFiber;
    if (const char* env = std::getenv("TSXHPC_BACKEND")) {
      if (!backend_from_string(env, k)) {
        throw SimError(std::string("TSXHPC_BACKEND: unknown backend \"") +
                       env + "\" (expected fiber or thread)");
      }
    }
    return k;
  }();
  return kind;
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::size_t fiber_stack_bytes) {
  switch (kind) {
    case BackendKind::kThread:
      return detail::make_thread_backend();
    case BackendKind::kFiber:
      return detail::make_fiber_backend(fiber_stack_bytes);
  }
  return detail::make_fiber_backend(fiber_stack_bytes);
}

}  // namespace tsxhpc::sim
