// Reusable set-associative cache level (sets/ways/LRU) — the building block
// of the modeled hierarchy. MemorySystem instantiates it twice:
//
//   * one L1 data cache per core (SMT siblings share it, which is what
//     creates the extra transactional capacity pressure the paper observes
//     with HyperThreading, Section 4.2). L1 entries carry the transactional
//     read/write marks;
//   * one shared, inclusive last-level cache. LLC entries carry the
//     MESI-style directory state (dirty owner + sharer bitmask), so
//     coherence information lives — and dies — with LLC residency.
//
// A level tracks *which lines are resident* (for latency, capacity and
// coherence), not data values; values live in SharedHeap / the write
// buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

/// Result of touching a line in a cache level.
struct CacheTouch {
  bool hit = false;
  /// Line evicted to make room (only meaningful when !hit and a valid line
  /// was displaced).
  bool evicted = false;
  Addr evicted_line = 0;
  /// Hardware thread whose transaction had *written* the evicted line, or -1.
  /// Evicting such a line is a capacity abort (Section 2: "Eviction of a
  /// transactionally written line from the data cache will cause a
  /// transactional abort").
  ThreadId evicted_tx_writer = -1;
  /// Bitmask of hardware threads that had the evicted line in their
  /// transactional *read* set. Per Section 2 these are moved to a secondary
  /// tracking structure rather than aborting.
  ThreadMask evicted_tx_readers = 0;
  /// Directory state of the evicted entry (LLC evictions only): the core
  /// holding the line dirty (-1 = none) and the sharer bitmask. The caller
  /// uses these to back-invalidate L1 copies (inclusion).
  int evicted_dirty_core = -1;
  CoreMask evicted_sharers = 0;
};

/// Per-set event counters (telemetry v5). One instance per set, enabled on
/// demand via CacheLevel::enable_set_stats() so the default path stays free.
/// The same struct serves both levels; fields that do not apply to a level
/// (e.g. xfers at L1, write dooms at LLC) simply stay zero. The *charging*
/// happens in MemorySystem — which knows which level served an access and
/// which doom belongs to which set — the CacheLevel only owns the storage,
/// keyed by its own set indexing.
struct SetCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< == fills: every miss allocates at this level
  std::uint64_t evictions = 0;
  std::uint64_t xfers = 0;              ///< LLC only: cross-core transfers
  std::uint64_t back_invalidations = 0;  ///< L1 only: inclusion victims
  std::uint64_t doom_draws = 0;   ///< LLC only: read-evict abort lotteries
  std::uint64_t capacity_write_dooms = 0;  ///< L1 only, charged at rollback
  std::uint64_t capacity_read_dooms = 0;   ///< LLC only, charged at rollback
};

class CacheLevel {
 public:
  /// One resident line. The transactional marks are used by L1 instances,
  /// the directory fields by the LLC instance; unused fields stay at their
  /// defaults and cost nothing.
  struct Entry {
    Addr line = 0;
    std::uint64_t lru = 0;
    ThreadId tx_writer = -1;
    ThreadMask tx_readers = 0;
    int dirty_core = -1;      // directory: core holding the line dirty
    CoreMask sharers = 0;     // directory: cores with a copy
    bool valid = false;
  };

  CacheLevel(std::uint32_t sets, std::uint32_t ways)
      : sets_(sets), ways_(ways), entries_(sets * ways) {
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0) {
      throw SimError("cache set count must be a nonzero power of two");
    }
    if (ways_ == 0) throw SimError("cache must have at least one way");
  }

  /// Bring `line` into the level (or refresh its LRU position). Marks the
  /// entry with transactional ownership bits when requested (L1 use).
  CacheTouch touch(Addr line, ThreadId tid, bool tx_write, bool tx_read) {
    CacheTouch r;
    Entry* slot = find(line);
    if (slot != nullptr) {
      r.hit = true;
    } else {
      slot = victim(line);
      if (slot->valid) {
        r.evicted = true;
        r.evicted_line = slot->line;
        r.evicted_tx_writer = slot->tx_writer;
        r.evicted_tx_readers = slot->tx_readers;
        r.evicted_dirty_core = slot->dirty_core;
        r.evicted_sharers = slot->sharers;
      }
      slot->valid = true;
      slot->line = line;
      slot->tx_writer = -1;
      slot->tx_readers = 0;
      slot->dirty_core = -1;
      slot->sharers = 0;
    }
    if (tx_write) slot->tx_writer = tid;
    if (tx_read) slot->tx_readers |= ThreadMask{1} << tid;
    slot->lru = ++tick_;
    return r;
  }

  /// Resident entry for `line` without disturbing LRU order, or null. The
  /// LLC uses this to consult/update directory state.
  Entry* find(Addr line) {
    Entry* base = &entries_[set_of(line) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].line == line) return &base[w];
    }
    return nullptr;
  }

  /// Move an entry returned by find() to most-recently-used.
  void promote(Entry* e) { e->lru = ++tick_; }

  bool contains(Addr line) const {
    return const_cast<CacheLevel*>(this)->find(line) != nullptr;
  }

  /// Remote write: drop our copy (coherence invalidation). Returns whether
  /// a resident copy was actually dropped, so callers distinguishing
  /// back-invalidations (inclusion) from no-ops can count them.
  bool invalidate(Addr line) {
    if (Entry* e = find(line)) {
      e->valid = false;
      return true;
    }
    return false;
  }

  /// Clear transactional marks owned by `tid` (on commit or abort). Aborts
  /// additionally invalidate the written lines: their speculative data was
  /// never real, and Haswell discards them.
  void clear_tx_marks(ThreadId tid, bool invalidate_writes) {
    for (auto& e : entries_) {
      if (!e.valid) continue;
      if (e.tx_writer == tid) {
        e.tx_writer = -1;
        if (invalidate_writes) e.valid = false;
      }
      e.tx_readers &= ~(ThreadMask{1} << tid);
    }
  }

  /// Number of valid resident lines (testing hook; also the bound the
  /// directory-boundedness test checks against, since directory state only
  /// exists on resident LLC lines).
  std::size_t resident_lines() const {
    std::size_t n = 0;
    for (const auto& e : entries_)
      if (e.valid) ++n;
    return n;
  }

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::size_t capacity_lines() const {
    return static_cast<std::size_t>(sets_) * ways_;
  }

  std::uint32_t set_of(Addr line) const {
    // Lines are already addr / line_bytes; index by low bits.
    return static_cast<std::uint32_t>(line) & (sets_ - 1);
  }

  /// Allocate (or zero) the per-set counter table. Idempotent; called by
  /// MemorySystem at region entry when MachineConfig::set_stats is on.
  void reset_set_stats() { set_stats_.assign(sets_, SetCounters{}); }
  bool set_stats_enabled() const { return !set_stats_.empty(); }
  /// Mutable per-set counters for `set`; only valid after reset_set_stats().
  SetCounters& set_stats(std::uint32_t set) { return set_stats_[set]; }
  const std::vector<SetCounters>& set_stats() const { return set_stats_; }

  /// End-of-run occupancy snapshot: valid resident lines per set (0..ways).
  std::vector<std::uint32_t> occupancy_by_set() const {
    std::vector<std::uint32_t> occ(sets_, 0);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].valid) ++occ[i / ways_];
    }
    return occ;
  }

 private:

  /// LRU victim within the set; prefers invalid ways.
  Entry* victim(Addr line) {
    Entry* base = &entries_[set_of(line) * ways_];
    Entry* best = &base[0];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (!base[w].valid) return &base[w];
      if (base[w].lru < best->lru) best = &base[w];
    }
    return best;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;
  std::vector<SetCounters> set_stats_;  // empty unless set-stats is enabled
};

}  // namespace tsxhpc::sim
