#include "sim/engine.h"

#include <algorithm>
#include <limits>

#include "sim/telemetry.h"

namespace tsxhpc::sim {

Engine::Engine(const MachineConfig& cfg, int num_threads)
    : cfg_(cfg),
      cvs_(num_threads),
      states_(num_threads, State::kNotStarted),
      clocks_(num_threads, 0),
      end_clocks_(num_threads, 0) {
  if (num_threads <= 0 || num_threads > cfg.num_hw_threads()) {
    throw SimError("thread count " + std::to_string(num_threads) +
                   " exceeds machine hardware threads (" +
                   std::to_string(cfg.num_hw_threads()) + ")");
  }
}

ThreadId Engine::pick_next(ThreadId exclude) const {
  ThreadId best = -1;
  for (ThreadId t = 0; t < num_threads(); ++t) {
    if (t == exclude || states_[t] != State::kReady) continue;
    if (best < 0 || clocks_[t] < clocks_[best]) best = t;
  }
  return best;
}

void Engine::recompute_deadline_locked(ThreadId running) {
  Cycles min_other = std::numeric_limits<Cycles>::max();
  for (ThreadId t = 0; t < num_threads(); ++t) {
    if (t == running || states_[t] != State::kReady) continue;
    min_other = std::min(min_other, clocks_[t]);
  }
  deadline_ = min_other == std::numeric_limits<Cycles>::max()
                  ? min_other
                  : min_other + cfg_.sched_quantum;
}

void Engine::wait_for_token(std::unique_lock<std::mutex>& lk, ThreadId t) {
  cvs_[t].wait(lk, [&] { return stopping_ || current_ == t; });
  if (stopping_) throw EngineStop{};
  states_[t] = State::kRunning;
  recompute_deadline_locked(t);
}

void Engine::advance(ThreadId t, Cycles cycles) {
  clocks_[t] += cycles;
  if (cfg_.max_cycles != 0 && clocks_[t] > cfg_.max_cycles) {
    throw SimError("thread " + std::to_string(t) +
                   " exceeded max_cycles (livelock guard)");
  }
  // Fast path: still within quantum of the earliest runnable peer.
  if (clocks_[t] <= deadline_ && !stopping_) return;

  std::unique_lock<std::mutex> lk(mu_);
  if (stopping_) throw EngineStop{};
  states_[t] = State::kReady;
  ThreadId next = pick_next(-1);
  if (next == t) {
    states_[t] = State::kRunning;
    recompute_deadline_locked(t);
    return;
  }
  current_ = next;
  cvs_[next].notify_one();
  wait_for_token(lk, t);
}

void Engine::yield_point(ThreadId t) {
  std::unique_lock<std::mutex> lk(mu_);
  if (stopping_) throw EngineStop{};
  states_[t] = State::kReady;
  ThreadId next = pick_next(-1);
  if (next == t) {
    states_[t] = State::kRunning;
    recompute_deadline_locked(t);
    return;
  }
  current_ = next;
  cvs_[next].notify_one();
  wait_for_token(lk, t);
}

void Engine::block(ThreadId t) {
  std::unique_lock<std::mutex> lk(mu_);
  if (stopping_) throw EngineStop{};
  const Cycles blocked_at = clocks_[t];
  states_[t] = State::kBlocked;
  ThreadId next = pick_next(-1);
  if (next < 0) {
    // Every live thread is blocked: genuine deadlock.
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(
          SimError("deadlock: all simulated threads are blocked"));
    }
    stopping_ = true;
    for (auto& cv : cvs_) cv.notify_all();
    throw EngineStop{};
  }
  current_ = next;
  cvs_[next].notify_one();
  wait_for_token(lk, t);
  // Report after resuming: wake() has already advanced our clock to the
  // waker's, so [blocked_at, now] is the full descheduled interval.
  if (tel_) tel_->on_blocked(t, blocked_at, clocks_[t]);
}

void Engine::wake(ThreadId t, Cycles waker_clock) {
  std::unique_lock<std::mutex> lk(mu_);
  if (states_[t] != State::kBlocked) return;  // no waiter: wake is lost
  states_[t] = State::kReady;
  clocks_[t] = std::max(clocks_[t], waker_clock);
  if (current_ >= 0) recompute_deadline_locked(current_);
}

void Engine::thread_main(ThreadId t, const std::function<void()>& body) {
  try {
    {
      std::unique_lock<std::mutex> lk(mu_);
      wait_for_token(lk, t);
    }
    body();
  } catch (EngineStop&) {
    // Torn down by another thread's failure (or a detected deadlock).
    std::unique_lock<std::mutex> lk(mu_);
    states_[t] = State::kDone;
    end_clocks_[t] = clocks_[t];
    alive_--;
    done_cv_.notify_all();
    return;
  } catch (...) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    stopping_ = true;
    states_[t] = State::kDone;
    end_clocks_[t] = clocks_[t];
    alive_--;
    for (auto& cv : cvs_) cv.notify_all();
    done_cv_.notify_all();
    return;
  }

  // Normal completion: pass the token on.
  std::unique_lock<std::mutex> lk(mu_);
  states_[t] = State::kDone;
  end_clocks_[t] = clocks_[t];
  alive_--;
  ThreadId next = pick_next(-1);
  if (next >= 0) {
    current_ = next;
    cvs_[next].notify_one();
  } else if (alive_ > 0) {
    // Remaining threads are all blocked and nobody can wake them.
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(SimError(
          "deadlock: remaining simulated threads are all blocked"));
    }
    stopping_ = true;
    for (auto& cv : cvs_) cv.notify_all();
  } else {
    current_ = -1;
  }
  done_cv_.notify_all();
}

void Engine::run(const std::vector<std::function<void()>>& bodies) {
  if (static_cast<int>(bodies.size()) != num_threads()) {
    throw SimError("body count does not match engine thread count");
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = false;
    first_error_ = nullptr;
    alive_ = num_threads();
    for (ThreadId t = 0; t < num_threads(); ++t) {
      states_[t] = State::kReady;
      clocks_[t] = 0;
      end_clocks_[t] = 0;
    }
    current_ = 0;
    deadline_ = 0;
  }

  std::vector<std::thread> threads;
  threads.reserve(bodies.size());
  for (ThreadId t = 0; t < num_threads(); ++t) {
    threads.emplace_back([this, t, &bodies] { thread_main(t, bodies[t]); });
  }
  for (auto& th : threads) th.join();

  makespan_ = *std::max_element(end_clocks_.begin(), end_clocks_.end());
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace tsxhpc::sim
