#include "sim/engine.h"

#include <algorithm>
#include <limits>

#include "sim/telemetry.h"

namespace tsxhpc::sim {

Engine::Engine(const MachineConfig& cfg, int num_threads)
    : cfg_(cfg),
      backend_(make_backend(cfg.backend, cfg.fiber_stack_bytes)),
      states_(num_threads, State::kNotStarted),
      clocks_(num_threads, 0),
      end_clocks_(num_threads, 0) {
  if (num_threads <= 0 || num_threads > cfg.num_hw_threads()) {
    throw SimError("thread count " + std::to_string(num_threads) +
                   " exceeds machine hardware threads (" +
                   std::to_string(cfg.num_hw_threads()) + ")");
  }
}

Engine::~Engine() = default;

ThreadId Engine::pick_next(ThreadId exclude) const {
  ThreadId best = -1;
  for (ThreadId t = 0; t < num_threads(); ++t) {
    if (t == exclude || states_[t] != State::kReady) continue;
    if (best < 0 || clocks_[t] < clocks_[best]) best = t;
  }
  return best;
}

ThreadId Engine::pick_any_live() const {
  for (ThreadId t = 0; t < num_threads(); ++t) {
    if (states_[t] != State::kDone) return t;
  }
  return -1;
}

void Engine::recompute_deadline(ThreadId running) {
  Cycles min_other = std::numeric_limits<Cycles>::max();
  for (ThreadId t = 0; t < num_threads(); ++t) {
    if (t == running || states_[t] != State::kReady) continue;
    min_other = std::min(min_other, clocks_[t]);
  }
  deadline_ = min_other == std::numeric_limits<Cycles>::max()
                  ? min_other
                  : min_other + cfg_.sched_quantum;
}

void Engine::on_resumed(ThreadId t) {
  if (stopping_) throw EngineStop{};
  states_[t] = State::kRunning;
  recompute_deadline(t);
}

void Engine::switch_from(ThreadId t, ThreadId next) {
  current_ = next;
  backend_->transfer(t, next);
  on_resumed(t);
}

void Engine::advance(ThreadId t, Cycles cycles) {
  clocks_[t] += cycles;
  if (cfg_.max_cycles != 0 && clocks_[t] > cfg_.max_cycles && !stopping_) {
    throw SimError("thread " + std::to_string(t) +
                   " exceeded max_cycles (livelock guard)");
  }
  // Fast path: still within quantum of the earliest runnable peer.
  if (clocks_[t] <= deadline_ && !stopping_) return;

  if (stopping_) {
    // Teardown: if this call came from a destructor unwinding an
    // EngineStop, swallowing it keeps the unwind alive; otherwise join the
    // teardown. (Throwing out of a destructor would std::terminate.)
    if (std::uncaught_exceptions() > 0) return;
    throw EngineStop{};
  }
  states_[t] = State::kReady;
  ThreadId next = pick_next(-1);
  if (next == t) {
    states_[t] = State::kRunning;
    recompute_deadline(t);
    return;
  }
  switch_from(t, next);
}

void Engine::yield_point(ThreadId t) {
  if (stopping_) {
    if (std::uncaught_exceptions() > 0) return;
    throw EngineStop{};
  }
  states_[t] = State::kReady;
  ThreadId next = pick_next(-1);
  if (next == t) {
    states_[t] = State::kRunning;
    recompute_deadline(t);
    return;
  }
  switch_from(t, next);
}

void Engine::block(ThreadId t) {
  if (stopping_) {
    // Teardown: nobody is left to wake us; returning immediately (a
    // spurious wake) lets unwinding destructors pass through safely.
    if (std::uncaught_exceptions() > 0) return;
    throw EngineStop{};
  }
  const Cycles blocked_at = clocks_[t];
  states_[t] = State::kBlocked;
  ThreadId next = pick_next(-1);
  if (next < 0) {
    // Every live thread is blocked: genuine deadlock.
    if (!first_error_) {
      first_error_ = std::make_exception_ptr(
          SimError("deadlock: all simulated threads are blocked"));
    }
    stopping_ = true;
    throw EngineStop{};
  }
  switch_from(t, next);
  // Report after resuming: wake() has already advanced our clock to the
  // waker's, so [blocked_at, now] is the full descheduled interval.
  if (tel_) tel_->on_blocked(t, blocked_at, clocks_[t]);
}

void Engine::wake(ThreadId t, Cycles waker_clock) {
  if (states_[t] != State::kBlocked) return;  // no waiter: wake is lost
  states_[t] = State::kReady;
  clocks_[t] = std::max(clocks_[t], waker_clock);
  if (current_ >= 0) {
    recompute_deadline(current_);
  } else {
    // No thread holds the token (a wake issued from the driver between
    // dispatches). The standing deadline predates t becoming runnable, so
    // the next scheduled thread could overrun its quantum against t; zero
    // it so the next dispatch recomputes.
    deadline_ = 0;
  }
}

void Engine::thread_main(ThreadId t) {
  try {
    on_resumed(t);  // waits for nothing: the backend activated us
    (*bodies_)[t]();
  } catch (EngineStop&) {
    // Torn down by another thread's failure (or a detected deadlock).
  } catch (...) {
    if (!first_error_) first_error_ = std::current_exception();
    stopping_ = true;
  }

  states_[t] = State::kDone;
  end_clocks_[t] = clocks_[t];
  alive_--;

  ThreadId next;
  if (stopping_) {
    // Teardown sweep: resume each remaining thread (in thread-id order, so
    // it is deterministic) to let it unwind its own stack — fibers must run
    // their destructors on their own stacks before the run can end.
    next = pick_any_live();
  } else {
    next = pick_next(-1);
    if (next < 0 && alive_ > 0) {
      // Remaining threads are all blocked and nobody can wake them.
      if (!first_error_) {
        first_error_ = std::make_exception_ptr(SimError(
            "deadlock: remaining simulated threads are all blocked"));
      }
      stopping_ = true;
      next = pick_any_live();
    }
  }
  current_ = next;
  backend_->exit_transfer(t, next);
  // Thread backend: exit_transfer returned; this worker must unwind without
  // touching engine state again. Fiber backend: never reached.
}

void Engine::run(const std::vector<std::function<void()>>& bodies) {
  if (static_cast<int>(bodies.size()) != num_threads()) {
    throw SimError("body count does not match engine thread count");
  }
  stopping_ = false;
  first_error_ = nullptr;
  alive_ = num_threads();
  for (ThreadId t = 0; t < num_threads(); ++t) {
    states_[t] = State::kReady;
    clocks_[t] = 0;
    end_clocks_[t] = 0;
  }
  bodies_ = &bodies;
  current_ = 0;
  deadline_ = 0;
  backend_->run(num_threads(), [this](ThreadId t) { thread_main(t); }, 0);
  bodies_ = nullptr;
  current_ = -1;

  makespan_ = *std::max_element(end_clocks_.begin(), end_clocks_.end());
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace tsxhpc::sim
