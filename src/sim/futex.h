// Simulated Linux futex. The paper's transactional-execution-aware condition
// variable (Section 6.1, after Dudnik & Swift) is built on futexes because
// they do not require holding a lock; we model the same kernel interface.
#pragma once

#include <deque>
#include <unordered_map>

#include "sim/telemetry.h"
#include "sim/types.h"

namespace tsxhpc::sim {

/// Wait queues keyed by futex word address. All operations are performed by
/// the scheduler-token holder, so they are atomic with respect to simulated
/// threads (exactly like the kernel's hashed-bucket spinlocks make real
/// futex ops atomic).
class FutexTable {
 public:
  void enqueue(Addr addr, ThreadId t) {
    waiters_[addr].push_back(t);
    if (tel_) tel_->on_futex_wait(addr);
  }

  /// Pop up to `count` waiters, in FIFO order.
  template <typename WakeFn>
  int wake(Addr addr, int count, WakeFn&& fn) {
    auto it = waiters_.find(addr);
    if (it == waiters_.end()) return 0;
    int n = 0;
    while (n < count && !it->second.empty()) {
      ThreadId t = it->second.front();
      it->second.pop_front();
      if (tel_) tel_->on_futex_wake(addr);
      fn(t);
      ++n;
    }
    if (it->second.empty()) waiters_.erase(it);
    return n;
  }

  /// Telemetry sink for wait-queue events (null = off). Not owned.
  void set_telemetry(Telemetry* tel) { tel_ = tel; }

  /// Drop all waiters (run teardown after an error).
  void clear() { waiters_.clear(); }

  std::size_t waiting_on(Addr addr) const {
    auto it = waiters_.find(addr);
    return it == waiters_.end() ? 0 : it->second.size();
  }

 private:
  std::unordered_map<Addr, std::deque<ThreadId>> waiters_;
  Telemetry* tel_ = nullptr;
};

}  // namespace tsxhpc::sim
