#include "sim/alloc.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/heap.h"

namespace tsxhpc::sim {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Monotone bump placement — the same carve the anonymous path uses, so a
/// bump-strategy heap is bit-for-bit the historic (and baseline) layout.
class BumpStrategy final : public AllocStrategy {
 public:
  AllocStrategyKind kind() const override { return AllocStrategyKind::kBump; }
  Addr place(SharedHeap& heap, const AllocSpec& spec) override {
    return heap.bump_place(spec.bytes, spec.align);
  }
};

/// Per-(name, size-class) slabs: repeated allocations under one name share
/// fixed-slot chunks, the way a production slab malloc clusters same-type
/// objects — and the way the Dice et al. placement study's "malloc groups
/// same-size requests" regime arises. Slab interiors sit below the bump
/// frontier once another name has allocated in between, so this strategy
/// issues addresses out of order (the region registry's sorted insert and
/// region_of's binary search are exercised by exactly this).
class SlabStrategy final : public AllocStrategy {
 public:
  explicit SlabStrategy(const AllocGeometry& geom) : geom_(geom) {}
  AllocStrategyKind kind() const override { return AllocStrategyKind::kSlab; }

  Addr place(SharedHeap& heap, const AllocSpec& spec) override {
    std::size_t slot = next_pow2(std::max<std::size_t>(spec.bytes, 16));
    if (slot < spec.align) slot = next_pow2(spec.align);
    if (slot > kMaxSlotBytes) {
      // Huge objects get their own line-aligned extent; slabbing them would
      // only add a mostly-empty chunk tail.
      return heap.bump_place(spec.bytes,
                             std::max<std::size_t>(spec.align,
                                                   geom_.line_bytes));
    }
    const std::string key =
        std::string(spec.name) + '#' + std::to_string(slot);
    Slab& slab = slabs_[key];
    if (slab.next + slot > slab.end) {
      const std::size_t chunk = slot * kSlotsPerChunk;
      const Addr base = heap.bump_place(
          chunk, std::max<std::size_t>(spec.align, geom_.line_bytes));
      slab.next = base;
      slab.end = base + chunk;
    }
    const Addr a = slab.next;
    slab.next += slot;
    return heap.place_at(a, spec.bytes);
  }

 private:
  static constexpr std::size_t kMaxSlotBytes = 16 * 1024;
  static constexpr std::size_t kSlotsPerChunk = 16;

  struct Slab {
    Addr next = 0;
    Addr end = 0;  // next == end == 0 forces a fresh chunk on first use
  };

  AllocGeometry geom_;
  std::unordered_map<std::string, Slab> slabs_;
};

/// Least-loaded cache-index coloring. The strategy tracks, per LLC set, how
/// many named-object lines have been placed there (kHot lines count 4x) and
/// starts each new object at the color that minimizes the maximum resulting
/// pressure over the sets the object will cover. An object's *base* line
/// counts extra (kBaseBoost) on top of its uniform footprint: bases are
/// where same-stride layouts stack (every page-multiple sibling lands its
/// line 0 in one set) and where access patterns concentrate (headers,
/// counters, first elements) — without the boost, an object spanning a
/// whole-set-count multiple of lines would load every color equally and the
/// choice would collapse to a tie. Ties resolve toward the bump frontier,
/// so on flat pressure the layout degenerates to set-aligned bump placement
/// and only deviates to dodge a stack-up — e.g. sibling arrays whose sizes
/// are multiples of the set span (the classic page-aligned-malloc
/// pathology) get rotated into disjoint index ranges instead of overlaying
/// the same sets.
///
/// Colors are keyed to the LLC set map (read-set capacity is an LLC
/// property); with the default geometry the L1 has the same set count, so
/// L1 write-set spreading follows for free.
///
/// On a sliced LLC (AllocGeometry::llc_slices > 1) pressure is tracked per
/// (slice, in-slice set) bucket — read-set capacity is a property of the
/// *owning slice's* set, and the slice hash scatters consecutive lines, so
/// the single-table wrap arithmetic below would steer against a geometry
/// that no longer exists. The sliced path shares the llc_slice_of_line hash
/// with MemorySystem; the single-slice path is bit-for-bit the historic
/// coloring (the committed baselines' layout under --alloc=color).
class ColorStrategy final : public AllocStrategy {
 public:
  explicit ColorStrategy(const AllocGeometry& geom)
      : geom_(geom),
        pressure_(static_cast<std::size_t>(geom.llc_sets) *
                      std::max(geom.llc_slices, 1),
                  0) {}
  AllocStrategyKind kind() const override { return AllocStrategyKind::kColor; }

  Addr place(SharedHeap& heap, const AllocSpec& spec) override {
    const std::uint32_t sets = geom_.llc_sets;
    const std::uint64_t w = spec.hint == AllocHint::kHot ? 4 : 1;
    if (spec.hint == AllocHint::kCold || spec.align > geom_.line_bytes) {
      // Cold objects don't earn a color lane (and over-aligned requests
      // cannot be line-steered); both still deposit pressure where they
      // land so later hot objects avoid them.
      const Addr a = heap.bump_place(spec.bytes, spec.align);
      deposit(line_of(a), lines_of(a, spec.bytes), w);
      return a;
    }
    const std::uint64_t lines =
        (spec.bytes + geom_.line_bytes - 1) / geom_.line_bytes;
    if (geom_.llc_slices > 1) return place_sliced(heap, spec, w, lines);
    // First line the object could start on: the bump frontier rounded up to
    // a line boundary (colored bases are line-aligned by construction, which
    // also satisfies any power-of-two align <= line_bytes).
    const Addr first_line =
        (heap.brk() + geom_.line_bytes - 1) / geom_.line_bytes;
    const std::uint64_t base_add = lines / sets;  // full wraps cover all sets
    const std::uint32_t rem = static_cast<std::uint32_t>(lines % sets);

    std::uint64_t best_cost = ~std::uint64_t{0};
    std::uint64_t best_gap = ~std::uint64_t{0};
    for (std::uint32_t c = 0; c < sets; ++c) {
      std::uint64_t cost = 0;
      for (std::uint32_t s = 0; s < sets; ++s) {
        const bool in_rem =
            rem != 0 && ((s + sets - c) & (sets - 1)) < rem;
        const std::uint64_t p = pressure_[s] +
                                w * (base_add + (in_rem ? 1 : 0)) +
                                (s == c ? kBaseBoost * w : 0);
        cost = std::max(cost, p);
      }
      const std::uint64_t gap =
          (c + sets - static_cast<std::uint32_t>(first_line & (sets - 1))) &
          (sets - 1);
      if (cost < best_cost || (cost == best_cost && gap < best_gap)) {
        best_cost = cost;
        best_gap = gap;
      }
    }
    const Addr start_line = first_line + best_gap;
    const Addr a = heap.place_at(start_line * geom_.line_bytes, spec.bytes);
    deposit(start_line, lines, w);
    return a;
  }

 private:
  Addr line_of(Addr a) const { return a / geom_.line_bytes; }
  std::uint64_t lines_of(Addr a, std::size_t bytes) const {
    return line_of(a + bytes - 1) - line_of(a) + 1;
  }
  /// Pressure bucket of a line: (owning slice, in-slice set). Degenerates
  /// to the plain set index on a single-slice geometry.
  std::size_t bucket(Addr line) const {
    return static_cast<std::size_t>(
               llc_slice_of_line(line, geom_.llc_slices)) *
               geom_.llc_sets +
           (static_cast<std::uint32_t>(line) & (geom_.llc_sets - 1));
  }
  void deposit(Addr start_line, std::uint64_t lines, std::uint64_t w) {
    for (std::uint64_t i = 0; i < lines; ++i) {
      pressure_[bucket(start_line + i)] += w;
    }
    pressure_[bucket(start_line)] += kBaseBoost * w;
  }

  /// Slice-aware placement: try every base color (line-aligned start within
  /// one set wrap of the bump frontier), score each candidate by the max
  /// pressure over the (slice, set) buckets the object would deposit into,
  /// and take the lowest-cost candidate (ties toward the bump frontier).
  /// Scoring walks real line->bucket mappings via the hash instead of the
  /// single-slice wrap arithmetic; evaluation is capped at two full machine
  /// wraps — beyond that every candidate loads the buckets near-uniformly.
  Addr place_sliced(SharedHeap& heap, const AllocSpec& spec, std::uint64_t w,
                    std::uint64_t lines) {
    const std::uint32_t sets = geom_.llc_sets;
    const Addr first_line =
        (heap.brk() + geom_.line_bytes - 1) / geom_.line_bytes;
    const std::uint64_t eval_lines = std::min<std::uint64_t>(
        lines, 2ull * geom_.llc_slices * sets);
    std::unordered_map<std::size_t, std::uint64_t> add;
    std::uint64_t best_cost = ~std::uint64_t{0};
    std::uint32_t best_gap = 0;
    for (std::uint32_t gap = 0; gap < sets; ++gap) {
      const Addr start = first_line + gap;
      add.clear();
      for (std::uint64_t i = 0; i < eval_lines; ++i) {
        add[bucket(start + i)] += w;
      }
      add[bucket(start)] += kBaseBoost * w;
      std::uint64_t cost = 0;
      for (const auto& [b, extra] : add) {
        cost = std::max(cost, pressure_[b] + extra);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_gap = gap;
      }
    }
    const Addr start_line = first_line + best_gap;
    const Addr a = heap.place_at(start_line * geom_.line_bytes, spec.bytes);
    deposit(start_line, lines, w);
    return a;
  }

  static constexpr std::uint64_t kBaseBoost = 2;

  AllocGeometry geom_;
  std::vector<std::uint64_t> pressure_;
};

/// Deliberate same-set packing: every named object's base line is forced to
/// line index 0 modulo max(l1_sets, llc_sets) — both set counts are powers
/// of two, so every base lands in set 0 of *both* levels. N hot objects
/// whose footprints fit a set span then stack N deep in one set: the
/// malloc-placement pathology as a reproducible stress baseline.
class AdversarialStrategy final : public AllocStrategy {
 public:
  explicit AdversarialStrategy(const AllocGeometry& geom) : geom_(geom) {}
  AllocStrategyKind kind() const override {
    return AllocStrategyKind::kAdversarial;
  }

  Addr place(SharedHeap& heap, const AllocSpec& spec) override {
    if (spec.align > geom_.line_bytes) {
      return heap.bump_place(spec.bytes, spec.align);
    }
    const Addr stride = std::max(geom_.l1_sets, geom_.llc_sets);
    const Addr first_line =
        (heap.brk() + geom_.line_bytes - 1) / geom_.line_bytes;
    const Addr target_line = (first_line + stride - 1) / stride * stride;
    return heap.place_at(target_line * geom_.line_bytes, spec.bytes);
  }

 private:
  AllocGeometry geom_;
};

}  // namespace

std::unique_ptr<AllocStrategy> make_alloc_strategy(AllocStrategyKind kind,
                                                   const AllocGeometry& geom) {
  switch (kind) {
    case AllocStrategyKind::kBump:
      return std::make_unique<BumpStrategy>();
    case AllocStrategyKind::kSlab:
      return std::make_unique<SlabStrategy>(geom);
    case AllocStrategyKind::kColor:
      return std::make_unique<ColorStrategy>(geom);
    case AllocStrategyKind::kAdversarial:
      return std::make_unique<AdversarialStrategy>(geom);
  }
  throw SimError("unknown allocation strategy");
}

}  // namespace tsxhpc::sim
