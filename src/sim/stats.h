// Per-thread and aggregate statistics. This is the reproduction's stand-in
// for the Linux `perf` TSX event counters the paper collects (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

/// Where a simulated cycle went. Every cycle a thread's virtual clock
/// advances is attributed to exactly one bucket, so per-thread buckets sum
/// to the thread's end_cycle — the invariant tsx_report's cycle-accounting
/// table relies on (and tests assert).
enum class CycleBucket : std::uint8_t {
  kWork = 0,      // useful non-transactional execution (compute, L1 hits)
  kTxCommitted,   // inside transactions that eventually committed
  kTxWasted,      // inside transactions that aborted, plus rollback cost
  kLockWait,      // lock-acquire spinning, elision backoff, futex blocking
  kFallback,      // serialized execution under an elision fallback lock
  kMemStall,      // beyond-L1 portion of non-transactional memory accesses
  kNumBuckets,
};

inline const char* to_string(CycleBucket b) {
  switch (b) {
    case CycleBucket::kWork: return "work";
    case CycleBucket::kTxCommitted: return "tx_committed";
    case CycleBucket::kTxWasted: return "tx_wasted";
    case CycleBucket::kLockWait: return "lock_wait";
    case CycleBucket::kFallback: return "fallback";
    case CycleBucket::kMemStall: return "mem_stall";
    default: return "?";
  }
}

/// Counters for one hardware thread. All counters are cumulative over a run.
struct ThreadStats {
  // Transactional execution (RTM).
  std::uint64_t tx_started = 0;
  std::uint64_t tx_committed = 0;
  std::array<std::uint64_t, static_cast<size_t>(AbortCause::kNumCauses)>
      tx_aborted{};  // indexed by AbortCause
  std::uint64_t tx_read_lines_evicted = 0;  // moved to secondary tracking
  std::uint64_t tx_doomed_by_remote = 0;    // requester-wins victims
  // Transactional cycle accounting (perf's cycles-t / cycles-ct analogue):
  // cycles spent inside regions that eventually committed vs. aborted.
  Cycles tx_cycles_committed = 0;
  Cycles tx_cycles_wasted = 0;
  /// Inter-retry backoff charged by the elision policy (Context::tx_backoff).
  /// A sub-counter of the kTxWasted bucket: backoff is time lost *because* a
  /// transaction aborted, not lock-hold contention, so it books as waste.
  Cycles backoff_cycles = 0;

  // Full cycle accounting: every clock advance lands in exactly one bucket,
  // so the buckets sum to end_cycle (see CycleBucket).
  std::array<Cycles, static_cast<size_t>(CycleBucket::kNumBuckets)>
      cycles_by_bucket{};

  // Memory system, per hierarchy level. Every timed access is served by
  // exactly one level, so mem_accesses == l1_hits + l1_misses and
  // l1_misses == xfers_in + llc_hits + llc_misses (CI checks both).
  std::uint64_t mem_accesses = 0;  // total timed cache accesses
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_evictions = 0;   // valid lines displaced from our L1
  std::uint64_t llc_hits = 0;       // served by the shared LLC
  std::uint64_t llc_misses = 0;     // served by memory (DRAM endpoint)
  std::uint64_t llc_evictions = 0;  // LLC victims displaced by our fills
  std::uint64_t xfers_in = 0;  // lines transferred from another core
  std::uint64_t atomics = 0;
  // Interconnect hops (telemetry v6). Zero on a 1-socket/1-slice machine.
  // hop_cycles is a sub-component of the access latencies already booked to
  // the serving level, and reconciles exactly:
  //   hop_cycles == slice_hops * lat_hop_slice + socket_hops * lat_hop_socket
  std::uint64_t slice_hops = 0;   // same-socket, non-local-slice accesses
  std::uint64_t socket_hops = 0;  // cross-socket slice/DRAM/forward hops
  Cycles hop_cycles = 0;
  // Beyond-L1 stall cycles by the level that served the access; sums to the
  // kMemStall bucket (stalls rerouted to lock-wait/fallback are excluded,
  // exactly as they are from the bucket).
  std::array<Cycles, static_cast<size_t>(MemLevel::kNumLevels)>
      mem_stall_by_level{};

  // Kernel interaction.
  std::uint64_t syscalls = 0;
  std::uint64_t futex_waits = 0;
  std::uint64_t futex_wakes = 0;

  // Final virtual clock when the thread body returned.
  Cycles end_cycle = 0;

  std::uint64_t tx_aborts_total() const {
    std::uint64_t n = 0;
    for (auto a : tx_aborted) n += a;
    return n;
  }

  Cycles bucket(CycleBucket b) const {
    return cycles_by_bucket[static_cast<size_t>(b)];
  }
  Cycles cycles_total() const {
    Cycles n = 0;
    for (auto c : cycles_by_bucket) n += c;
    return n;
  }

  /// Wasted-cycle fraction in percent: aborted-transaction cycles over all
  /// transactional cycles (the quantity tsx_report regresses on).
  double wasted_cycle_pct() const {
    const double tx = static_cast<double>(tx_cycles_committed +
                                          tx_cycles_wasted);
    return tx == 0 ? 0.0
                   : 100.0 * static_cast<double>(tx_cycles_wasted) / tx;
  }

  /// Abort rate in percent, as reported in the paper's Table 1:
  /// aborts / started transactions.
  double abort_rate_pct() const {
    return tx_started == 0
               ? 0.0
               : 100.0 * static_cast<double>(tx_aborts_total()) /
                     static_cast<double>(tx_started);
  }
};

/// Per-LLC-slice event counters (telemetry v6), charged by MemorySystem at
/// the same sites as the ThreadStats level totals. Summed over all slices,
/// hits/misses/evictions/xfers equal the run's llc_hits/llc_misses/
/// llc_evictions/xfers_in totals exactly — the v6 decomposition invariant
/// CI checks.
struct SliceStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t xfers = 0;
};

/// Per-socket event counters (telemetry v6), keyed by the *requesting*
/// thread's socket. accesses sums to mem_accesses; dram_local + dram_remote
/// sums to llc_misses; slice_hops/socket_hops decompose the per-thread hop
/// totals by requester socket.
struct SocketStats {
  std::uint64_t accesses = 0;
  std::uint64_t dram_local = 0;   // DRAM fills homed on the requester socket
  std::uint64_t dram_remote = 0;  // DRAM fills homed on a remote socket
  std::uint64_t slice_hops = 0;
  std::uint64_t socket_hops = 0;
};

/// Aggregate over all threads of a run.
struct RunStats {
  std::vector<ThreadStats> threads;

  /// Simulated execution time of the parallel region: the maximum end cycle
  /// over all participating threads.
  Cycles makespan = 0;

  ThreadStats total() const {
    ThreadStats t;
    for (const auto& s : threads) {
      t.tx_started += s.tx_started;
      t.tx_committed += s.tx_committed;
      for (size_t i = 0; i < t.tx_aborted.size(); ++i)
        t.tx_aborted[i] += s.tx_aborted[i];
      t.tx_read_lines_evicted += s.tx_read_lines_evicted;
      t.tx_doomed_by_remote += s.tx_doomed_by_remote;
      t.tx_cycles_committed += s.tx_cycles_committed;
      t.tx_cycles_wasted += s.tx_cycles_wasted;
      t.backoff_cycles += s.backoff_cycles;
      for (size_t i = 0; i < t.cycles_by_bucket.size(); ++i)
        t.cycles_by_bucket[i] += s.cycles_by_bucket[i];
      t.mem_accesses += s.mem_accesses;
      t.l1_hits += s.l1_hits;
      t.l1_misses += s.l1_misses;
      t.l1_evictions += s.l1_evictions;
      t.llc_hits += s.llc_hits;
      t.llc_misses += s.llc_misses;
      t.llc_evictions += s.llc_evictions;
      t.xfers_in += s.xfers_in;
      t.atomics += s.atomics;
      t.slice_hops += s.slice_hops;
      t.socket_hops += s.socket_hops;
      t.hop_cycles += s.hop_cycles;
      for (size_t i = 0; i < t.mem_stall_by_level.size(); ++i)
        t.mem_stall_by_level[i] += s.mem_stall_by_level[i];
      t.syscalls += s.syscalls;
      t.futex_waits += s.futex_waits;
      t.futex_wakes += s.futex_wakes;
    }
    return t;
  }

  double abort_rate_pct() const { return total().abort_rate_pct(); }
};

}  // namespace tsxhpc::sim
