// Fundamental value types shared across the simulator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tsxhpc::sim {

/// Virtual address inside the simulated shared heap.
using Addr = std::uint64_t;

/// Simulated processor cycles.
using Cycles = std::uint64_t;

/// Hardware-thread identifier (0 .. num_hw_threads-1). Thread t runs on core
/// t / smt_per_core when the default affinity policy ("fill cores first") is
/// in effect; see MachineConfig::core_of().
using ThreadId = int;

/// Bitmask over hardware threads (bit t = thread t). 64 bits caps the
/// simulated machine at 64 hardware threads; MemorySystem validates the
/// configured topology against it.
using ThreadMask = std::uint64_t;

/// Bitmask over cores (bit c = core c); same 64-entry cap as ThreadMask.
using CoreMask = std::uint64_t;

inline constexpr Addr kNullAddr = 0;

/// Fatal, non-recoverable simulator error (API misuse, deadlock, timeout).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Why a hardware transaction aborted. Mirrors the abort-cause information
/// Haswell reports via EAX / perf events (tx-abort, capacity, conflict, ...).
enum class AbortCause : std::uint8_t {
  kNone = 0,
  kConflict,        // data conflict with another thread (requester-wins)
  kCapacityWrite,   // transactionally written line evicted from the L1D
                    // (or back-invalidated by an LLC eviction — inclusion)
  kExplicit,        // XABORT executed (e.g. lock observed held)
  kSyscall,         // system call / IO attempted inside a transaction
  kNesting,         // nesting depth limit exceeded
  kLockBusy,        // convenience alias used by elision: lock word was held
  kCapacityRead,    // evicted *read* line lost by the secondary tracker;
                    // probabilistic, so a retry may well succeed
  kNumCauses,
};

const char* to_string(AbortCause cause);

/// Which level of the memory hierarchy served a timed access. Used for
/// latency selection and for attributing the beyond-L1 stall cycles of an
/// access to the level that produced them (telemetry "mem_stall_levels").
enum class MemLevel : std::uint8_t {
  kL1 = 0,  // hit in the core's own L1D
  kXfer,    // line forwarded from another core's L1 (clean or dirty)
  kLlc,     // hit in the shared last-level cache
  kDram,    // LLC miss, served by memory
  kNumLevels,
};

const char* to_string(MemLevel level);

/// Control-flow exception implementing the RTM abort "longjmp" back to the
/// XBEGIN point. Thrown by the simulator whenever the current transaction
/// aborts; caught by the retry loop in the synchronization library (or by
/// Context::with_txn in tests). Workload code inside a transactional lambda
/// must be exception safe: treat this like a hardware rollback.
struct TxAbort {
  AbortCause cause = AbortCause::kNone;
  std::uint8_t code = 0;  // XABORT imm8, when cause == kExplicit
  /// True when the conflicting access that doomed us came while the lock
  /// elision subscription was valid; purely informational.
  bool retry_recommended = true;
};

}  // namespace tsxhpc::sim
