#include "sim/machine.h"

#include <string>
#include <utility>
#include <vector>

#include "sim/telemetry.h"

namespace tsxhpc::sim {

namespace {

/// Snapshot one CacheLevel's per-set counters + end-of-run occupancy.
LevelSetStats snapshot_level(std::string name, const CacheLevel& lvl) {
  LevelSetStats s;
  s.level = std::move(name);
  s.sets = lvl.sets();
  s.ways = lvl.ways();
  s.counters = lvl.set_stats();
  s.occupancy = lvl.occupancy_by_set();
  return s;
}

/// Named-object -> set attribution: a contiguous line range maps onto a
/// wrapped span of `sets` consecutive set indices (pure geometry — identical
/// for every L1 instance, so it is computed once per level kind).
NamedRegionRec attribute_region(const SharedHeap::Region& reg,
                                const MachineConfig& cfg) {
  NamedRegionRec o;
  o.name = reg.name;
  o.base = reg.base;
  o.bytes = reg.end - reg.base;
  const Addr first_line = cfg.line_of(reg.base);
  const Addr last_line = cfg.line_of(reg.end - 1);
  o.lines = last_line - first_line + 1;
  const auto span = [&](std::uint32_t sets, std::uint32_t& start,
                        std::uint32_t& covered) {
    start = static_cast<std::uint32_t>(first_line) & (sets - 1);
    covered = static_cast<std::uint32_t>(
        o.lines < sets ? o.lines : static_cast<std::uint64_t>(sets));
  };
  span(cfg.l1_sets(), o.l1_set_start, o.l1_sets_covered);
  span(cfg.llc_sets(), o.llc_set_start, o.llc_sets_covered);
  return o;
}

}  // namespace

Machine::Machine(MachineConfig cfg) : cfg_(cfg) {
  stats_.resize(cfg_.num_hw_threads());
  mem_ = std::make_unique<MemorySystem>(cfg_, stats_);
  set_telemetry(cfg_.telemetry);
}

void Machine::set_telemetry(Telemetry* tel) {
  telemetry_ = tel;
  mem_->set_telemetry(tel);
  futex_.set_telemetry(tel);
}

RunStats Machine::run(const RunSpec& spec) {
  const bool per_thread = !spec.bodies.empty();
  if (!per_thread && !spec.body) {
    throw SimError("RunSpec: neither body nor bodies set");
  }
  if (per_thread && spec.body) {
    throw SimError("RunSpec: body and bodies are mutually exclusive");
  }
  const int n = per_thread ? static_cast<int>(spec.bodies.size()) : spec.threads;

  for (auto& s : stats_) s = ThreadStats{};
  mem_->reset_all_tx();
  // Per-set counters cover one run, like ThreadStats — cache *contents*
  // stay warm across runs, the counters do not. The same holds for the v6
  // per-slice/per-socket topology counters.
  if (mem_->set_stats_enabled()) mem_->reset_set_stats();
  mem_->reset_topology_stats();
  futex_.clear();

  engine_ = std::make_unique<Engine>(cfg_, n);
  engine_->set_telemetry(telemetry_);
  if (telemetry_) {
    telemetry_->begin_run(n, &stats_, to_string(cfg_.backend), spec.label);
  }
  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(n);
  for (ThreadId t = 0; t < n; ++t) {
    wrapped.emplace_back([this, t, per_thread, &spec] {
      Context ctx(*this, t);
      (per_thread ? spec.bodies[t] : spec.body)(ctx);
      if (mem_->in_tx(t)) {
        throw SimError("thread body returned inside an open transaction");
      }
    });
  }
  try {
    engine_->run(wrapped);
  } catch (...) {
    if (telemetry_) telemetry_->abandon_run();
    engine_.reset();
    throw;
  }

  RunStats rs;
  rs.threads.assign(stats_.begin(), stats_.begin() + n);
  for (ThreadId t = 0; t < n; ++t) rs.threads[t].end_cycle = engine_->end_clock(t);
  rs.makespan = engine_->makespan();
  engine_.reset();
  if (telemetry_ && mem_->set_stats_enabled()) {
    std::vector<LevelSetStats> levels;
    const int slices = mem_->num_slices();
    levels.reserve(static_cast<std::size_t>(cfg_.num_cores) + slices);
    for (int c = 0; c < cfg_.num_cores; ++c) {
      levels.push_back(
          snapshot_level("l1.c" + std::to_string(c), mem_->l1_of_core(c)));
    }
    // One level per LLC slice. A single-slice machine keeps the historic
    // "llc" name (baselines stay byte-identical); sliced machines key the
    // levels "llc.s<i>".
    for (int s = 0; s < slices; ++s) {
      levels.push_back(snapshot_level(
          slices == 1 ? std::string("llc") : "llc.s" + std::to_string(s),
          mem_->llc(s)));
    }
    std::vector<NamedRegionRec> objects;
    objects.reserve(mem_->heap().regions().size());
    for (const SharedHeap::Region& reg : mem_->heap().regions()) {
      objects.push_back(attribute_region(reg, cfg_));
    }
    telemetry_->record_set_stats(std::move(levels), std::move(objects),
                                 cfg_.line_bytes);
  }
  if (telemetry_) {
    TopologyRec topo;
    topo.sockets = cfg_.topology.num_sockets;
    topo.cores_per_socket = cfg_.cores_per_socket();
    topo.slices = mem_->num_slices();
    topo.map = to_string(cfg_.topology.map);
    topo.lat_hop_slice = cfg_.topology.lat_hop_slice;
    topo.lat_hop_socket = cfg_.topology.lat_hop_socket;
    topo.slice_stats = mem_->slice_stats();
    topo.socket_stats = mem_->socket_stats();
    telemetry_->record_topology(std::move(topo));
    telemetry_->end_run(rs);
  }
  return rs;
}

}  // namespace tsxhpc::sim
