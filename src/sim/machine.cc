#include "sim/machine.h"

namespace tsxhpc::sim {

Machine::Machine(MachineConfig cfg) : cfg_(cfg) {
  stats_.resize(cfg_.num_hw_threads());
  mem_ = std::make_unique<MemorySystem>(cfg_, stats_);
  set_telemetry(cfg_.telemetry);
}

void Machine::set_telemetry(Telemetry* tel) {
  telemetry_ = tel;
  mem_->set_telemetry(tel);
  futex_.set_telemetry(tel);
}

RunStats Machine::run(const RunSpec& spec) {
  const bool per_thread = !spec.bodies.empty();
  if (!per_thread && !spec.body) {
    throw SimError("RunSpec: neither body nor bodies set");
  }
  if (per_thread && spec.body) {
    throw SimError("RunSpec: body and bodies are mutually exclusive");
  }
  const int n = per_thread ? static_cast<int>(spec.bodies.size()) : spec.threads;

  for (auto& s : stats_) s = ThreadStats{};
  mem_->reset_all_tx();
  futex_.clear();

  engine_ = std::make_unique<Engine>(cfg_, n);
  engine_->set_telemetry(telemetry_);
  if (telemetry_) {
    telemetry_->begin_run(n, &stats_, to_string(cfg_.backend), spec.label);
  }
  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(n);
  for (ThreadId t = 0; t < n; ++t) {
    wrapped.emplace_back([this, t, per_thread, &spec] {
      Context ctx(*this, t);
      (per_thread ? spec.bodies[t] : spec.body)(ctx);
      if (mem_->in_tx(t)) {
        throw SimError("thread body returned inside an open transaction");
      }
    });
  }
  try {
    engine_->run(wrapped);
  } catch (...) {
    if (telemetry_) telemetry_->abandon_run();
    engine_.reset();
    throw;
  }

  RunStats rs;
  rs.threads.assign(stats_.begin(), stats_.begin() + n);
  for (ThreadId t = 0; t < n; ++t) rs.threads[t].end_cycle = engine_->end_clock(t);
  rs.makespan = engine_->makespan();
  engine_.reset();
  if (telemetry_) telemetry_->end_run(rs);
  return rs;
}

}  // namespace tsxhpc::sim
