#include "sim/telemetry.h"

#include <algorithm>
#include <cstdio>

#include "sim/fsio.h"
#include "sim/json.h"

namespace tsxhpc::sim {

const char* to_string(LockKind k) {
  switch (k) {
    case LockKind::kSpin: return "spin";
    case LockKind::kTicket: return "ticket";
    case LockKind::kFutex: return "futex";
    case LockKind::kElided: return "elided";
    case LockKind::kHle: return "hle";
    case LockKind::kLockset: return "lockset";
    case LockKind::kMonitor: return "monitor";
  }
  return "?";
}

const char* to_string(PolicyDecision d) {
  switch (d) {
    case PolicyDecision::kRetry: return "retries";
    case PolicyDecision::kBackoff: return "backoffs";
    case PolicyDecision::kLockWait: return "lock_waits";
    case PolicyDecision::kFallback: return "fallbacks";
    case PolicyDecision::kSkip: return "skips";
    case PolicyDecision::kNumDecisions: break;
  }
  return "?";
}

Telemetry::Telemetry(TelemetryOptions opt) : opt_(opt) {
  if (opt_.sample_interval == 0) opt_.sample_interval = 1;
  if (opt_.max_samples < 2) opt_.max_samples = 2;
}

std::vector<AttemptRec> RunRecord::attempts_in_order() const {
  std::vector<AttemptRec> out;
  out.reserve(attempts.size());
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    out.push_back(attempts[(attempts_head + i) % attempts.size()]);
  }
  return out;
}

std::vector<BlockedSlice> RunRecord::blocked_in_order() const {
  std::vector<BlockedSlice> out;
  out.reserve(blocked.size());
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    out.push_back(blocked[(blocked_head + i) % blocked.size()]);
  }
  return out;
}

void Telemetry::begin_run(int num_threads,
                          const std::vector<ThreadStats>* live_stats,
                          std::string_view backend, std::string_view label) {
  if (open_run_) abandon_run();  // defensive: a run never ended
  // Re-announcing the label the previous run adopted means "another run of
  // the same region" (a workload passing its RunSpec label on each of its
  // internal runs): keep the established "#2", "#3" suffixing instead of
  // emitting duplicate labels.
  if (!label.empty() && label != last_label_) next_label_ = std::string(label);
  runs_.emplace_back();
  RunRecord& r = runs_.back();
  if (!next_label_.empty()) {
    r.label = std::move(next_label_);
    next_label_.clear();
    last_label_ = r.label;
    label_reuse_ = 1;
  } else if (!last_label_.empty()) {
    // Several engine runs inside one labeled workload invocation.
    r.label = last_label_ + "#" + std::to_string(++label_reuse_);
  } else {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "run_%04llu",
                  static_cast<unsigned long long>(run_seq_));
    r.label = buf;
  }
  run_seq_++;
  r.backend = backend;
  r.num_threads = num_threads;
  r.sample_interval = opt_.sample_interval;
  r.conflicts.assign(
      static_cast<std::size_t>(num_threads) * num_threads, 0);

  open_run_ = true;
  live_stats_ = live_stats;
  open_sections_.assign(static_cast<std::size_t>(num_threads),
                        OpenSection{});
  next_section_id_ = 0;
  last_l1_hits_ = 0;
  last_l1_misses_ = 0;
  last_llc_misses_ = 0;
  last_mem_stall_ = 0;
  hold_since_.clear();
}

void Telemetry::end_run(const RunStats& rs) {
  RunRecord* r = cur();
  if (!r) return;
  // Flush the tail of the v5 memory-pressure columns (deltas accrued since
  // the last sampling event) into the final bucket, so each column sums
  // exactly to its run total (the CI sample-sum invariant). The v4 l1
  // columns deliberately keep their unflushed semantics: their recorded
  // values are frozen by the v4-era goldens, which the policy-equivalence
  // test holds to "new keys only". A run with no sampling events at all
  // keeps an empty series (nothing to flush into).
  if (!r->samples.empty()) {
    const ThreadStats tot = rs.total();
    IntervalSample& last = r->samples.back();
    last.llc_misses += tot.llc_misses - last_llc_misses_;
    last.mem_stall += tot.bucket(CycleBucket::kMemStall) - last_mem_stall_;
  }
  r->stats = rs;
  r->complete = true;
  open_run_ = false;
  live_stats_ = nullptr;
}

void Telemetry::record_set_stats(std::vector<LevelSetStats> levels,
                                 std::vector<NamedRegionRec> objects,
                                 std::uint32_t line_bytes) {
  RunRecord* r = cur();
  if (!r) return;
  r->set_stats = std::move(levels);
  r->set_objects = std::move(objects);
  r->line_bytes = line_bytes;
}

void Telemetry::record_topology(TopologyRec topo) {
  RunRecord* r = cur();
  if (!r) return;
  r->topology = std::move(topo);
}

void Telemetry::record_cc(const CcStats& cc) {
  RunRecord* r = cur();
  if (!r) return;
  r->cc.merge(cc);
  r->has_cc = true;
}

void Telemetry::abandon_run() {
  if (!open_run_) return;
  runs_.pop_back();
  open_run_ = false;
  live_stats_ = nullptr;
}

void Telemetry::bump(std::vector<std::uint64_t>& v, std::size_t idx) {
  // Clamp pathological attempt counts so the arrays stay bounded.
  if (idx > 63) idx = 63;
  if (v.size() <= idx) v.resize(idx + 1, 0);
  v[idx]++;
}

LockSiteStats& Telemetry::site_stats(RunRecord& r, Addr site, LockKind kind) {
  auto [it, inserted] = r.locks.try_emplace(site);
  if (inserted) it->second.kind = kind;
  return it->second;
}

IntervalSample& Telemetry::bucket(RunRecord& r, Cycles at) {
  std::size_t idx = static_cast<std::size_t>(at / r.sample_interval);
  while (idx >= opt_.max_samples) {
    // Compact: merge adjacent buckets, double the interval.
    const std::size_t n = r.samples.size();
    std::vector<IntervalSample> merged((n + 1) / 2);
    for (std::size_t i = 0; i < n; ++i) merged[i / 2].merge(r.samples[i]);
    r.samples = std::move(merged);
    r.sample_interval *= 2;
    idx = static_cast<std::size_t>(at / r.sample_interval);
  }
  if (r.samples.size() <= idx) r.samples.resize(idx + 1);
  return r.samples[idx];
}

void Telemetry::sample_l1(RunRecord& r, Cycles at) {
  if (!live_stats_) return;
  std::uint64_t hits = 0, misses = 0, llc_misses = 0;
  Cycles mem_stall = 0;
  for (const auto& s : *live_stats_) {
    hits += s.l1_hits;
    misses += s.l1_misses;
    llc_misses += s.llc_misses;
    mem_stall += s.bucket(CycleBucket::kMemStall);
  }
  IntervalSample& b = bucket(r, at);
  b.l1_hits += hits - last_l1_hits_;
  b.l1_misses += misses - last_l1_misses_;
  b.llc_misses += llc_misses - last_llc_misses_;
  b.mem_stall += mem_stall - last_mem_stall_;
  last_l1_hits_ = hits;
  last_l1_misses_ = misses;
  last_llc_misses_ = llc_misses;
  last_mem_stall_ = mem_stall;
}

void Telemetry::push_attempt(RunRecord& r, const AttemptRec& rec) {
  if (!opt_.collect_attempts) return;
  if (opt_.max_attempts == 0 || r.attempts.size() < opt_.max_attempts) {
    r.attempts.push_back(rec);
    return;
  }
  r.attempts[r.attempts_head] = rec;
  r.attempts_head = (r.attempts_head + 1) % r.attempts.size();
  r.attempts_dropped++;
}

void Telemetry::on_txn(ThreadId tid, Cycles start, Cycles end, bool committed,
                       AbortCause cause, std::uint32_t read_lines,
                       std::uint32_t write_lines) {
  RunRecord* r = cur();
  if (!r) return;

  AttemptRec rec;
  rec.tid = tid;
  rec.committed = committed;
  rec.cause = cause;
  rec.start = start;
  rec.end = end;
  rec.read_lines = read_lines;
  rec.write_lines = write_lines;

  OpenSection& sec = open_sections_[static_cast<std::size_t>(tid)];
  if (sec.open) {
    rec.section = sec.id;
    rec.attempt = sec.attempts++;
    rec.site = sec.site;
    LockSiteStats& ls = site_stats(*r, sec.site, sec.kind);
    if (committed) {
      ls.tx_cycles_committed += end - start;
    } else {
      ls.tx_cycles_wasted += end - start;
      ls.tx_aborts++;
      ls.aborts_by_cause[static_cast<std::size_t>(cause)]++;
    }
  } else {
    // Raw transaction outside any elided section: its own 1-attempt chain.
    rec.section = next_section_id_++;
    rec.attempt = 0;
    if (committed) bump(r->committed_by_attempt, 0);
  }

  bucket(*r, start).tx_started++;
  const std::uint64_t footprint = read_lines + write_lines;
  const Cycles spent = end - start;
  if (committed) {
    bucket(*r, end).tx_committed++;
    r->commit_footprint_lines.add(footprint);
    r->commit_cycles.add(spent);
  } else {
    bucket(*r, end).tx_aborted++;
    r->abort_footprint_lines.add(footprint);
    r->abort_cycles.add(spent);
  }
  sample_l1(*r, end);
  push_attempt(*r, rec);
}

void Telemetry::section_enter(ThreadId tid, Addr site, LockKind kind) {
  RunRecord* r = cur();
  if (!r) return;
  OpenSection& sec = open_sections_[static_cast<std::size_t>(tid)];
  sec.open = true;
  sec.site = site;
  sec.kind = kind;
  sec.id = next_section_id_++;
  sec.attempts = 0;
  site_stats(*r, site, kind);  // register the site even if nothing happens
}

void Telemetry::section_commit(ThreadId tid) {
  RunRecord* r = cur();
  if (!r) return;
  OpenSection& sec = open_sections_[static_cast<std::size_t>(tid)];
  if (!sec.open) return;
  sec.open = false;
  site_stats(*r, sec.site, sec.kind).elided_commits++;
  bump(r->committed_by_attempt,
       sec.attempts > 0 ? sec.attempts - 1u : 0u);
}

void Telemetry::section_fallback(ThreadId tid, Cycles acquired_at,
                                 Cycles released_at) {
  RunRecord* r = cur();
  if (!r) return;
  OpenSection& sec = open_sections_[static_cast<std::size_t>(tid)];
  if (!sec.open) return;
  sec.open = false;
  LockSiteStats& ls = site_stats(*r, sec.site, sec.kind);
  ls.fallback_acquires++;
  ls.fallback_hold_cycles += released_at - acquired_at;
  bump(r->fallback_after_attempts, sec.attempts);
  bucket(*r, released_at).fallbacks++;

  AttemptRec rec;
  rec.tid = tid;
  rec.section = sec.id;
  rec.attempt = sec.attempts;
  rec.fallback = true;
  rec.committed = true;
  rec.start = acquired_at;
  rec.end = released_at;
  rec.site = sec.site;
  push_attempt(*r, rec);
}

void Telemetry::policy_decision(ThreadId tid, PolicyDecision d) {
  RunRecord* r = cur();
  if (!r) return;
  OpenSection& sec = open_sections_[static_cast<std::size_t>(tid)];
  if (!sec.open) return;
  site_stats(*r, sec.site, sec.kind)
      .policy_decisions[static_cast<std::size_t>(d)]++;
}

void Telemetry::on_lock_acquired(Addr site, LockKind kind, ThreadId tid,
                                 Cycles wait_start, Cycles now,
                                 bool contended) {
  RunRecord* r = cur();
  if (!r) return;
  LockSiteStats& ls = site_stats(*r, site, kind);
  ls.acquires++;
  if (contended) ls.contended_acquires++;
  ls.wait_cycles += now - wait_start;
  hold_since_[{site, tid}] = now;
}

void Telemetry::on_lock_released(Addr site, ThreadId tid, Cycles now) {
  RunRecord* r = cur();
  if (!r) return;
  auto it = hold_since_.find({site, tid});
  if (it == hold_since_.end()) return;  // acquired via an untracked path
  auto ls = r->locks.find(site);
  if (ls != r->locks.end()) ls->second.hold_cycles += now - it->second;
  hold_since_.erase(it);
  sample_l1(*r, now);
}

void Telemetry::on_blocked(ThreadId tid, Cycles start, Cycles end) {
  RunRecord* r = cur();
  if (!r) return;
  r->blocked_slices++;
  r->blocked_cycles += end - start;
  if (!opt_.collect_attempts) return;
  BlockedSlice s{tid, start, end};
  if (opt_.max_blocked == 0 || r->blocked.size() < opt_.max_blocked) {
    r->blocked.push_back(s);
    return;
  }
  r->blocked[r->blocked_head] = s;
  r->blocked_head = (r->blocked_head + 1) % r->blocked.size();
  r->blocked_dropped++;
}

void Telemetry::on_conflict(ThreadId aggressor, ThreadId victim, Addr line,
                            bool is_write, std::string_view object) {
  RunRecord* r = cur();
  if (!r) return;
  r->conflict_dooms++;
  const std::size_t n = static_cast<std::size_t>(r->num_threads);
  const auto a = static_cast<std::size_t>(aggressor);
  const auto v = static_cast<std::size_t>(victim);
  if (a < n && v < n) r->conflicts[a * n + v]++;

  auto [it, inserted] = r->conflict_lines.try_emplace(line);
  ConflictLineStats& cl = it->second;
  if (inserted) {
    cl.object = std::string(object);
    cl.by_aggressor.assign(n, 0);
    cl.by_victim.assign(n, 0);
  }
  cl.dooms++;
  (is_write ? cl.write_dooms : cl.read_dooms)++;
  if (a < n) cl.by_aggressor[a]++;
  if (v < n) cl.by_victim[v]++;
}

void Telemetry::on_capacity(ThreadId /*victim*/, Addr line, bool read_line,
                            std::string_view object) {
  RunRecord* r = cur();
  if (!r) return;
  auto [it, inserted] = r->capacity_lines.try_emplace(line);
  if (inserted) it->second.object = std::string(object);
  (read_line ? it->second.read_evict_dooms
             : it->second.write_evict_dooms)++;
}

std::vector<std::pair<Addr, const ConflictLineStats*>>
RunRecord::conflict_lines_by_heat() const {
  std::vector<std::pair<Addr, const ConflictLineStats*>> v;
  v.reserve(conflict_lines.size());
  for (const auto& [addr, cl] : conflict_lines) v.emplace_back(addr, &cl);
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.second->dooms != b.second->dooms)
      return a.second->dooms > b.second->dooms;
    return a.first < b.first;
  });
  return v;
}

void Telemetry::on_futex_wait(Addr addr) {
  RunRecord* r = cur();
  if (!r) return;
  r->futexes[addr].waits++;
}

void Telemetry::on_futex_wake(Addr addr) {
  RunRecord* r = cur();
  if (!r) return;
  r->futexes[addr].wakes++;
}

namespace {

void write_counter_block(JsonWriter& w, const ThreadStats& t) {
  w.kv("tx_started", t.tx_started);
  w.kv("tx_committed", t.tx_committed);
  w.kv("tx_aborted", t.tx_aborts_total());
  w.kv("abort_rate_pct", t.abort_rate_pct());
  w.key("aborts_by_cause");
  w.begin_object();
  for (std::size_t i = 1;
       i < static_cast<std::size_t>(AbortCause::kNumCauses); ++i) {
    w.kv(to_string(static_cast<AbortCause>(i)), t.tx_aborted[i]);
  }
  w.end_object();
  w.kv("tx_read_lines_evicted", t.tx_read_lines_evicted);
  w.kv("tx_doomed_by_remote", t.tx_doomed_by_remote);
  w.kv("tx_cycles_committed", t.tx_cycles_committed);
  w.kv("tx_cycles_wasted", t.tx_cycles_wasted);
  w.kv("wasted_cycle_pct", t.wasted_cycle_pct());
  w.key("cycles");
  w.begin_object();
  for (std::size_t b = 0;
       b < static_cast<std::size_t>(CycleBucket::kNumBuckets); ++b) {
    w.kv(to_string(static_cast<CycleBucket>(b)), t.cycles_by_bucket[b]);
  }
  w.kv("total", t.cycles_total());
  w.end_object();
  // Policy backoff is a sub-counter of the tx_wasted bucket (v4):
  // backoff_cycles <= cycles.tx_wasted always.
  w.kv("backoff_cycles", t.backoff_cycles);
  w.key("mem_stall_levels");
  w.begin_object();
  // kL1 is usually zero (the hit latency is all work) but not structurally
  // so: an atomic's RMW surcharge on an L1-hit line stalls at the L1. Emit
  // every level so the entries partition the mem_stall bucket exactly.
  for (std::size_t l = 0;
       l < static_cast<std::size_t>(MemLevel::kNumLevels); ++l) {
    w.kv(to_string(static_cast<MemLevel>(l)), t.mem_stall_by_level[l]);
  }
  w.end_object();
  w.kv("mem_accesses", t.mem_accesses);
  w.kv("l1_hits", t.l1_hits);
  w.kv("l1_misses", t.l1_misses);
  w.kv("l1_evictions", t.l1_evictions);
  w.kv("llc_hits", t.llc_hits);
  w.kv("llc_misses", t.llc_misses);
  w.kv("llc_evictions", t.llc_evictions);
  w.kv("xfers_in", t.xfers_in);
  w.kv("atomics", t.atomics);
  // v6 interconnect hops. hop_cycles reconciles exactly:
  //   hop_cycles == slice_hops * lat_hop_slice + socket_hops * lat_hop_socket
  w.kv("slice_hops", t.slice_hops);
  w.kv("socket_hops", t.socket_hops);
  w.kv("hop_cycles", t.hop_cycles);
  w.kv("syscalls", t.syscalls);
  w.kv("futex_waits", t.futex_waits);
  w.kv("futex_wakes", t.futex_wakes);
}

void write_histogram(JsonWriter& w, const char* key, const Histogram& h) {
  w.key(key);
  w.begin_array();
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    w.begin_array();
    w.value(Histogram::lower_bound_of(i));
    w.value(h.buckets[i]);
    w.end_array();
  }
  w.end_array();
}

void write_u64_array(JsonWriter& w, const char* key,
                     const std::vector<std::uint64_t>& v) {
  w.key(key);
  w.begin_array();
  for (auto x : v) w.value(x);
  w.end_array();
}

}  // namespace

std::string Telemetry::json(const std::string& bench_name) const {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "tsxhpc-telemetry-v7");
  w.kv("bench", bench_name);
  w.key("runs");
  w.begin_array();
  for (const RunRecord& r : runs_) {
    w.begin_object();
    w.kv("label", r.label);
    w.kv("backend", r.backend);
    w.kv("num_threads", r.num_threads);
    w.kv("complete", r.complete);
    w.kv("makespan", r.stats.makespan);

    w.key("totals");
    w.begin_object();
    write_counter_block(w, r.stats.total());
    w.end_object();

    // Concurrency-control block (v7): only when a TM runtime reported into
    // this run, so non-TM artifacts keep their shape.
    if (r.has_cc) {
      w.key("cc");
      w.begin_object();
      w.kv("scheme", r.cc.scheme);
      w.kv("starts", r.cc.starts);
      w.kv("commits", r.cc.commits);
      w.kv("aborts", r.cc.aborts);
      w.kv("abort_rate_pct", r.cc.abort_rate_pct());
      w.key("aborts_by_class");
      w.begin_object();
      w.kv("read_validation", r.cc.aborts_read_validation);
      w.kv("lock_acquire", r.cc.aborts_lock_acquire);
      w.kv("commit_validation", r.cc.aborts_commit_validation);
      w.end_object();
      w.kv("read_set_extensions", r.cc.read_set_extensions);
      w.kv("snapshot_commits", r.cc.snapshot_commits);
      w.kv("versions_created", r.cc.versions_created);
      w.kv("version_chain_hops", r.cc.version_chain_hops);
      w.kv("version_chain_depth_max", r.cc.version_chain_depth_max);
      w.kv("gc_runs", r.cc.gc_runs);
      w.kv("gc_reclaims", r.cc.gc_reclaims);
      w.end_object();
    }

    // Uniform per-level hierarchy table (derived from the totals): for each
    // level, accesses it served, accesses it passed down (misses), lines it
    // displaced, and the stall cycles attributed to it. "dram" is the miss
    // endpoint: it serves every LLC miss and never misses itself.
    {
      const ThreadStats tot = r.stats.total();
      struct Row {
        const char* level;
        std::uint64_t served, misses, evictions;
        Cycles stall;
      };
      const auto stall = [&tot](MemLevel l) {
        return tot.mem_stall_by_level[static_cast<std::size_t>(l)];
      };
      const Row rows[] = {
          {"l1", tot.l1_hits, tot.l1_misses, tot.l1_evictions,
           stall(MemLevel::kL1)},
          {"xfer", tot.xfers_in, 0, 0, stall(MemLevel::kXfer)},
          {"llc", tot.llc_hits, tot.llc_misses, tot.llc_evictions,
           stall(MemLevel::kLlc)},
          {"dram", tot.llc_misses, 0, 0, stall(MemLevel::kDram)},
      };
      w.key("cache_levels");
      w.begin_array();
      for (const Row& row : rows) {
        w.begin_object();
        w.kv("level", row.level);
        w.kv("served", row.served);
        w.kv("misses", row.misses);
        w.kv("evictions", row.evictions);
        w.kv("stall_cycles", row.stall);
        w.end_object();
      }
      w.end_array();
    }

    // v6: machine topology and its per-slice/per-socket event counters.
    // Summed over slices, hits/misses/evictions/xfers reproduce the run's
    // llc_hits/llc_misses/llc_evictions/xfers_in totals exactly; summed over
    // sockets, accesses reproduces mem_accesses and dram_local + dram_remote
    // reproduces llc_misses (CI checks all of these).
    {
      const TopologyRec& topo = r.topology;
      w.key("topology");
      w.begin_object();
      w.kv("sockets", topo.sockets);
      w.kv("cores_per_socket", topo.cores_per_socket);
      w.kv("slices", topo.slices);
      w.kv("map", topo.map);
      w.kv("lat_hop_slice", topo.lat_hop_slice);
      w.kv("lat_hop_socket", topo.lat_hop_socket);
      w.key("slice_stats");
      w.begin_array();
      for (const SliceStats& s : topo.slice_stats) {
        w.begin_object();
        w.kv("hits", s.hits);
        w.kv("misses", s.misses);
        w.kv("evictions", s.evictions);
        w.kv("xfers", s.xfers);
        w.end_object();
      }
      w.end_array();
      w.key("socket_stats");
      w.begin_array();
      for (const SocketStats& s : topo.socket_stats) {
        w.begin_object();
        w.kv("accesses", s.accesses);
        w.kv("dram_local", s.dram_local);
        w.kv("dram_remote", s.dram_remote);
        w.kv("slice_hops", s.slice_hops);
        w.kv("socket_hops", s.socket_hops);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }

    w.key("threads");
    w.begin_array();
    for (std::size_t t = 0; t < r.stats.threads.size(); ++t) {
      const ThreadStats& ts = r.stats.threads[t];
      w.begin_object();
      w.kv("tid", static_cast<std::uint64_t>(t));
      write_counter_block(w, ts);
      w.kv("end_cycle", ts.end_cycle);
      w.end_object();
    }
    w.end_array();

    w.key("locks");
    w.begin_array();
    for (const auto& [site, ls] : r.locks) {
      w.begin_object();
      w.kv_hex("site", site);
      w.kv("kind", to_string(ls.kind));
      w.kv("acquires", ls.acquires);
      w.kv("contended_acquires", ls.contended_acquires);
      w.kv("wait_cycles", ls.wait_cycles);
      w.kv("hold_cycles", ls.hold_cycles);
      w.kv("elided_commits", ls.elided_commits);
      w.kv("fallback_acquires", ls.fallback_acquires);
      w.kv("elision_rate_pct", 100.0 * ls.elision_rate());
      w.kv("tx_cycles_committed", ls.tx_cycles_committed);
      w.kv("tx_cycles_wasted", ls.tx_cycles_wasted);
      w.kv("fallback_hold_cycles", ls.fallback_hold_cycles);
      w.kv("tx_aborts", ls.tx_aborts);
      w.key("aborts_by_cause");
      w.begin_object();
      for (std::size_t i = 1;
           i < static_cast<std::size_t>(AbortCause::kNumCauses); ++i) {
        if (ls.aborts_by_cause[i] == 0) continue;
        w.kv(to_string(static_cast<AbortCause>(i)), ls.aborts_by_cause[i]);
      }
      w.end_object();
      // TxPolicy decision counts (v4). Reconciliation invariants:
      // retries+backoffs+lock_waits+fallbacks == tx_aborts, and
      // fallbacks+skips == fallback_acquires (elided-family sites).
      w.key("policy");
      w.begin_object();
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(PolicyDecision::kNumDecisions); ++i) {
        w.kv(to_string(static_cast<PolicyDecision>(i)),
             ls.policy_decisions[i]);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();

    w.key("sections");
    w.begin_object();
    write_u64_array(w, "committed_by_attempt", r.committed_by_attempt);
    write_u64_array(w, "fallback_after_attempts", r.fallback_after_attempts);
    w.end_object();

    w.key("histograms");
    w.begin_object();
    write_histogram(w, "commit_footprint_lines", r.commit_footprint_lines);
    write_histogram(w, "abort_footprint_lines", r.abort_footprint_lines);
    write_histogram(w, "commit_cycles", r.commit_cycles);
    write_histogram(w, "abort_cycles", r.abort_cycles);
    w.end_object();

    w.key("samples");
    w.begin_object();
    w.kv("interval_cycles", r.sample_interval);
    w.kv("count", static_cast<std::uint64_t>(r.samples.size()));
    auto column = [&](const char* key, auto get) {
      w.key(key);
      w.begin_array();
      for (const IntervalSample& s : r.samples) w.value(get(s));
      w.end_array();
    };
    column("tx_started", [](const IntervalSample& s) { return s.tx_started; });
    column("tx_committed",
           [](const IntervalSample& s) { return s.tx_committed; });
    column("tx_aborted", [](const IntervalSample& s) { return s.tx_aborted; });
    column("fallbacks", [](const IntervalSample& s) { return s.fallbacks; });
    column("l1_hits", [](const IntervalSample& s) { return s.l1_hits; });
    column("l1_misses", [](const IntervalSample& s) { return s.l1_misses; });
    // v5 memory-pressure columns; end_run flushes their tail so each sums
    // exactly to the run total.
    column("llc_misses", [](const IntervalSample& s) { return s.llc_misses; });
    column("mem_stall", [](const IntervalSample& s) { return s.mem_stall; });
    w.end_object();

    w.key("conflicts");
    w.begin_array();
    const std::size_t n = static_cast<std::size_t>(r.num_threads);
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t c = r.conflicts[a * n + v];
        if (c == 0) continue;
        w.begin_array();
        w.value(static_cast<std::uint64_t>(a));
        w.value(static_cast<std::uint64_t>(v));
        w.value(c);
        w.end_array();
      }
    }
    w.end_array();

    w.key("conflict_lines");
    w.begin_array();
    {
      auto hot = r.conflict_lines_by_heat();
      const std::size_t limit = std::min<std::size_t>(hot.size(), 64);
      for (std::size_t i = 0; i < limit; ++i) {
        const auto& [addr, cl] = hot[i];
        w.begin_object();
        w.kv_hex("line", addr);
        w.kv("object", cl->object);
        w.kv("dooms", cl->dooms);
        w.kv("write_dooms", cl->write_dooms);
        w.kv("read_dooms", cl->read_dooms);
        write_u64_array(w, "by_aggressor", cl->by_aggressor);
        write_u64_array(w, "by_victim", cl->by_victim);
        w.end_object();
      }
    }
    w.end_array();
    w.kv("conflict_lines_total",
         static_cast<std::uint64_t>(r.conflict_lines.size()));

    w.key("capacity_lines");
    w.begin_array();
    {
      std::size_t emitted = 0;
      for (const auto& [addr, cs] : r.capacity_lines) {
        if (emitted++ >= 64) break;
        w.begin_object();
        w.kv_hex("line", addr);
        w.kv("object", cs.object);
        w.kv("write_evict_dooms", cs.write_evict_dooms);
        w.kv("read_evict_dooms", cs.read_evict_dooms);
        w.end_object();
      }
    }
    w.end_array();
    w.kv("capacity_lines_total",
         static_cast<std::uint64_t>(r.capacity_lines.size()));

    // Per-set accounting (v5). Omitted entirely when the run was recorded
    // without MachineConfig::set_stats, so default artifacts only change by
    // the documented schema-string/sample-column deltas.
    if (!r.set_stats.empty()) {
      w.key("set_stats");
      w.begin_object();
      w.kv("line_bytes", static_cast<std::uint64_t>(r.line_bytes));
      w.key("levels");
      w.begin_array();
      for (const LevelSetStats& lv : r.set_stats) {
        w.begin_object();
        w.kv("level", lv.level);
        w.kv("sets", static_cast<std::uint64_t>(lv.sets));
        w.kv("ways", static_cast<std::uint64_t>(lv.ways));
        auto set_column = [&](const char* key, auto get) {
          w.key(key);
          w.begin_array();
          for (const SetCounters& c : lv.counters) w.value(get(c));
          w.end_array();
        };
        set_column("hits", [](const SetCounters& c) { return c.hits; });
        set_column("misses", [](const SetCounters& c) { return c.misses; });
        set_column("evictions",
                   [](const SetCounters& c) { return c.evictions; });
        set_column("xfers", [](const SetCounters& c) { return c.xfers; });
        set_column("back_invalidations",
                   [](const SetCounters& c) { return c.back_invalidations; });
        set_column("doom_draws",
                   [](const SetCounters& c) { return c.doom_draws; });
        set_column("capacity_write_dooms", [](const SetCounters& c) {
          return c.capacity_write_dooms;
        });
        set_column("capacity_read_dooms", [](const SetCounters& c) {
          return c.capacity_read_dooms;
        });
        {
          w.key("occupancy");
          w.begin_array();
          for (std::uint32_t o : lv.occupancy) {
            w.value(static_cast<std::uint64_t>(o));
          }
          w.end_array();
        }
        w.end_object();
      }
      w.end_array();
      w.key("objects");
      w.begin_array();
      for (const NamedRegionRec& o : r.set_objects) {
        w.begin_object();
        w.kv("name", o.name);
        w.kv_hex("base", o.base);
        w.kv("bytes", o.bytes);
        w.kv("lines", o.lines);
        w.kv("l1_set_start", static_cast<std::uint64_t>(o.l1_set_start));
        w.kv("l1_sets_covered",
             static_cast<std::uint64_t>(o.l1_sets_covered));
        w.kv("llc_set_start", static_cast<std::uint64_t>(o.llc_set_start));
        w.kv("llc_sets_covered",
             static_cast<std::uint64_t>(o.llc_sets_covered));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }

    w.key("futexes");
    w.begin_array();
    for (const auto& [addr, fs] : r.futexes) {
      w.begin_object();
      w.kv_hex("addr", addr);
      w.kv("waits", fs.waits);
      w.kv("wakes", fs.wakes);
      w.end_object();
    }
    w.end_array();

    w.key("blocked");
    w.begin_object();
    w.kv("slices", r.blocked_slices);
    w.kv("cycles", r.blocked_cycles);
    w.end_object();

    w.kv("attempts_recorded",
         static_cast<std::uint64_t>(r.attempts.size()));
    w.kv("attempts_dropped", r.attempts_dropped);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string Telemetry::chrome_trace() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t run = 0; run < runs_.size(); ++run) {
    const RunRecord& r = runs_[run];
    const auto pid = static_cast<std::uint64_t>(run);

    w.begin_object();
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("name", "process_name");
    w.key("args");
    w.begin_object();
    w.kv("name", r.label);
    w.end_object();
    w.end_object();

    for (int t = 0; t < r.num_threads; ++t) {
      w.begin_object();
      w.kv("ph", "M");
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::uint64_t>(t));
      w.kv("name", "thread_name");
      w.key("args");
      w.begin_object();
      w.kv("name", "hw thread " + std::to_string(t));
      w.end_object();
      w.end_object();
    }

    for (const AttemptRec& a : r.attempts_in_order()) {
      w.begin_object();
      w.kv("ph", "X");
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::uint64_t>(a.tid));
      w.kv("ts", a.start);
      w.kv("dur", a.end > a.start ? a.end - a.start : 0);
      w.kv("cat", a.fallback ? "lock" : "txn");
      // The slice name carries the outcome: Perfetto colours by name, so
      // commits / each abort cause / fallbacks separate visually.
      w.kv("name", a.fallback ? std::string("fallback(lock held)")
                   : a.committed
                       ? std::string("txn commit")
                       : std::string("txn abort:") + to_string(a.cause));
      w.key("args");
      w.begin_object();
      w.kv("section", static_cast<std::uint64_t>(a.section));
      w.kv("attempt", static_cast<std::uint64_t>(a.attempt));
      w.kv("read_lines", static_cast<std::uint64_t>(a.read_lines));
      w.kv("write_lines", static_cast<std::uint64_t>(a.write_lines));
      w.kv_hex("site", a.site);
      w.end_object();
      w.end_object();
    }

    for (const BlockedSlice& b : r.blocked_in_order()) {
      w.begin_object();
      w.kv("ph", "X");
      w.kv("pid", pid);
      w.kv("tid", static_cast<std::uint64_t>(b.tid));
      w.kv("ts", b.start);
      w.kv("dur", b.end > b.start ? b.end - b.start : 0);
      w.kv("cat", "sched");
      w.kv("name", "blocked(futex)");
      w.key("args");
      w.begin_object();
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  // Virtual cycles are presented in the `ts` microsecond field; there is no
  // wall-clock anywhere in this file.
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

// Artifact writes go through <path>.tmp + rename (sim/fsio.h): a sweep
// driver polling the path, or a run interrupted mid-write, can never see a
// torn JSON file.
bool Telemetry::write_json(const std::string& path,
                           const std::string& bench_name) const {
  return atomic_write_file(path, json(bench_name));
}

bool Telemetry::write_chrome_trace(const std::string& path) const {
  return atomic_write_file(path, chrome_trace());
}

}  // namespace tsxhpc::sim
