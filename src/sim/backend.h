// Execution backends: the mechanism the Engine uses to multiplex simulated
// hardware threads onto the host. The Engine owns all scheduling *policy*
// (virtual clocks, quantum deadlines, deadlock detection, teardown); a
// backend provides only the *mechanism* — start N cooperative workers and
// transfer control between them such that exactly one executes at a time.
//
// Two implementations:
//   * FiberBackend  — every simulated thread is a stackful fiber (ucontext)
//     on ONE host thread; a token handoff is a userspace context switch.
//     This is the default: on a single-core host it removes a kernel futex
//     round-trip from every virtual-time handoff, the simulator's hottest
//     path.
//   * ThreadBackend — one OS thread per simulated thread, handoff via
//     mutex + condition variable (the original engine mechanism). Kept for
//     differential testing: both backends must produce byte-identical
//     telemetry artifacts and identical makespans.
//
// Contract (token discipline): at any instant at most one worker executes
// engine or workload code. `transfer(from, to)` suspends the caller until
// someone transfers control back to it. `exit_transfer(from, to)` hands
// control away for good; the caller must immediately return from its body
// without touching engine state if the call itself returns (it does on the
// thread backend, never on the fiber backend). All happens-before edges a
// worker needs are established by the transfer itself.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

#include "sim/types.h"

namespace tsxhpc::sim {

/// Which execution mechanism a Machine's engines use.
enum class BackendKind { kFiber, kThread };

const char* to_string(BackendKind k);

/// Parse "fiber" / "thread" into a BackendKind. Returns false (and leaves
/// `out` untouched) on anything else.
bool backend_from_string(std::string_view s, BackendKind& out);

/// Process-wide default backend: kFiber, overridable with the environment
/// variable TSXHPC_BACKEND=fiber|thread (read once). CI uses the override to
/// run the whole test suite under both mechanisms without rebuilding.
BackendKind default_backend();

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;

  /// Run `body(t)` for every t in [0, n). body(t) begins executing only when
  /// control is first transferred to t; control is initially given to
  /// `first`. Returns once every body has finished (i.e. after some worker
  /// called exit_transfer with to < 0). `body` must not let exceptions
  /// escape.
  virtual void run(int n, const std::function<void(ThreadId)>& body,
                   ThreadId first) = 0;

  /// Called by the running worker `from`: suspend it and resume `to`.
  /// Returns when control is next transferred back to `from`.
  virtual void transfer(ThreadId from, ThreadId to) = 0;

  /// Called by worker `from` when its body is finished: resume `to`, or
  /// return control to run()'s caller when to < 0. `from` is never resumed
  /// again; if this call returns (thread backend), the body must return
  /// immediately.
  virtual void exit_transfer(ThreadId from, ThreadId to) = 0;
};

/// Factory. `fiber_stack_bytes` sizes each fiber's stack (ignored by the
/// thread backend).
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::size_t fiber_stack_bytes);

}  // namespace tsxhpc::sim
