// Typed wrappers over simulated shared memory: Shared<T> (one scalar cell)
// and SharedArray<T>. T must be trivially copyable and at most 8 bytes.
#pragma once

#include <bit>
#include <cstring>
#include <type_traits>

#include "sim/context.h"
#include "sim/machine.h"

namespace tsxhpc::sim {

namespace detail {

template <typename T>
constexpr unsigned size_class() {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                    sizeof(T) == 8,
                "Shared<T> requires a power-of-two size up to 8 bytes");
  return sizeof(T);
}

template <typename T>
std::uint64_t encode(T v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  return bits;
}

template <typename T>
T decode(std::uint64_t bits) {
  T v;
  std::memcpy(&v, &bits, sizeof(T));
  return v;
}

}  // namespace detail

/// Handle to one shared scalar of type T at a fixed simulated address.
template <typename T>
class Shared {
 public:
  Shared() : a_(kNullAddr) {}
  explicit Shared(Addr a) : a_(a) {}

  /// Allocate a fresh, cache-line-aligned cell and initialize it (untimed).
  static Shared alloc(Machine& m, T init = T{}) {
    return alloc(m, AllocSpec{}, init);
  }

  /// Allocate per `spec` through the unified Machine::alloc(AllocSpec)
  /// entry point; spec.bytes is filled from T. A named spec registers the
  /// cell for telemetry conflict/capacity attribution:
  ///   Shared<std::uint64_t>::alloc(m, {.name = "work_counter"});
  static Shared alloc(Machine& m, AllocSpec spec, T init = T{}) {
    spec.bytes = sizeof(T);
    Shared s(m.alloc(spec));
    s.init(m, init);
    return s;
  }


  Addr addr() const { return a_; }
  bool valid() const { return a_ != kNullAddr; }

  /// Untimed initialization (setup phases, outside the measured region).
  void init(Machine& m, T v) const {
    m.heap().write_word(a_, detail::encode(v), detail::size_class<T>());
  }
  T peek(Machine& m) const {
    return detail::decode<T>(m.heap().read_word(a_, detail::size_class<T>()));
  }

  // Timed accesses.
  T load(Context& c) const {
    return detail::decode<T>(c.load(a_, detail::size_class<T>()));
  }
  void store(Context& c, T v) const {
    c.store(a_, detail::encode(v), detail::size_class<T>());
  }
  /// LOCK XADD-style atomic add (integral T); returns the old value.
  T fetch_add(Context& c, T delta) const
    requires std::is_integral_v<T>
  {
    return detail::decode<T>(c.fetch_add(
        a_, static_cast<std::int64_t>(delta), detail::size_class<T>()));
  }
  /// CMPXCHG-loop atomic add for floating-point T (what `#pragma omp
  /// atomic` compiles to for doubles); returns the old value.
  T atomic_add(Context& c, T delta) const
    requires std::is_floating_point_v<T>
  {
    for (;;) {
      T old = load(c);
      if (cas(c, old, old + delta)) return old;
    }
  }
  bool cas(Context& c, T expected, T desired) const {
    return c.cas(a_, detail::encode(expected), detail::encode(desired),
                 detail::size_class<T>());
  }
  T exchange(Context& c, T v) const {
    return detail::decode<T>(
        c.exchange(a_, detail::encode(v), detail::size_class<T>()));
  }

 private:
  Addr a_;
};

/// Contiguous shared array of T. Elements are *packed* (natural alignment):
/// multiple elements share cache lines exactly as they would in C.
template <typename T>
class SharedArray {
 public:
  SharedArray() : base_(kNullAddr), n_(0) {}
  SharedArray(Addr base, std::size_t n) : base_(base), n_(n) {}

  static SharedArray alloc(Machine& m, std::size_t n, T init = T{}) {
    return alloc(m, AllocSpec{}, n, init);
  }

  /// Allocate per `spec` through the unified Machine::alloc(AllocSpec)
  /// entry point; spec.bytes is filled from n. A named spec registers the
  /// array for telemetry conflict/capacity attribution:
  ///   SharedArray<double>::alloc(m, {.name = "kmeans/accum",
  ///                                  .hint = sim::AllocHint::kHot}, n);
  static SharedArray alloc(Machine& m, AllocSpec spec, std::size_t n,
                           T init = T{}) {
    spec.bytes = n * sizeof(T);
    SharedArray arr(m.alloc(spec), n);
    for (std::size_t i = 0; i < n; ++i) arr.at(i).init(m, init);
    return arr;
  }


  std::size_t size() const { return n_; }
  std::size_t bytes() const { return n_ * sizeof(T); }
  /// Distinct cache lines the array spans under `line_bytes` — the object's
  /// geometry footprint, matched against the telemetry v5 set-attribution
  /// block by tests and reports.
  std::size_t lines(std::uint32_t line_bytes) const {
    if (n_ == 0) return 0;
    return static_cast<std::size_t>((base_ + bytes() - 1) / line_bytes -
                                    base_ / line_bytes + 1);
  }
  Addr addr(std::size_t i) const { return base_ + i * sizeof(T); }
  Shared<T> at(std::size_t i) const {
    if (i >= n_) throw SimError("SharedArray index out of range");
    return Shared<T>(addr(i));
  }
  Shared<T> operator[](std::size_t i) const { return at(i); }
  Addr base() const { return base_; }

 private:
  Addr base_;
  std::size_t n_;
};

}  // namespace tsxhpc::sim
