// Machine: the top-level simulator object. Owns the memory system, the
// futex table, and per-run engines; provides the parallel-region entry
// points that workloads and benchmarks call.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/config.h"
#include "sim/context.h"
#include "sim/engine.h"
#include "sim/futex.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/telemetry.h"
#include "sim/trace.h"

namespace tsxhpc::sim {

class Machine {
 public:
  explicit Machine(MachineConfig cfg = MachineConfig{});

  const MachineConfig& config() const { return cfg_; }
  MemorySystem& mem() { return *mem_; }
  SharedHeap& heap() { return mem_->heap(); }
  FutexTable& futex() { return futex_; }

  /// Allocate shared memory (cache-line aligned by default to avoid
  /// accidental false sharing; pass align explicitly to study it).
  Addr alloc(std::size_t bytes, std::size_t align = 64) {
    return heap().allocate(bytes, align);
  }

  /// Named allocation: telemetry attributes conflict/capacity aborts on
  /// these lines back to `name` (see SharedHeap::allocate_named).
  Addr alloc_named(std::string_view name, std::size_t bytes,
                   std::size_t align = 64) {
    return heap().allocate_named(name, bytes, align);
  }

  /// Run `body` on `num_threads` simulated threads (SPMD style). Statistics
  /// are reset at region entry; returns per-thread stats and the makespan.
  RunStats run(int num_threads, const std::function<void(Context&)>& body);

  /// Run one distinct body per thread.
  RunStats run_each(const std::vector<std::function<void(Context&)>>& bodies);

  /// Engine of the in-flight run (used by Context; null between runs).
  Engine* engine() { return engine_.get(); }

  /// Attach/detach an event trace (null = tracing off; default).
  void set_trace(TraceLog* trace) { trace_ = trace; }
  TraceLog* trace() { return trace_; }

  /// Attach/detach a telemetry collector (null = off; default). Also set
  /// automatically from MachineConfig::telemetry at construction.
  void set_telemetry(Telemetry* tel);
  Telemetry* telemetry() { return telemetry_; }

  std::vector<ThreadStats>& stats() { return stats_; }

  /// Convert cycles to seconds using the configured frequency (bandwidth
  /// reporting for Figure 6).
  double seconds(Cycles c) const { return static_cast<double>(c) / (cfg_.ghz * 1e9); }

 private:
  MachineConfig cfg_;
  std::vector<ThreadStats> stats_;
  std::unique_ptr<MemorySystem> mem_;
  FutexTable futex_;
  std::unique_ptr<Engine> engine_;
  TraceLog* trace_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace tsxhpc::sim
