// Machine: the top-level simulator object. Owns the memory system, the
// futex table, and per-run engines; provides the parallel-region entry
// points that workloads and benchmarks call.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/context.h"
#include "sim/engine.h"
#include "sim/futex.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/telemetry.h"
#include "sim/trace.h"

namespace tsxhpc::sim {

/// Everything that defines one parallel region: how many simulated threads,
/// what each runs, and how the run is labeled in telemetry artifacts.
/// Exactly one of `body` (SPMD: every thread runs it) or `bodies` (one
/// entry per thread; overrides `threads`) must be set.
struct RunSpec {
  int threads = 1;
  std::function<void(Context&)> body;
  std::vector<std::function<void(Context&)>> bodies;
  /// Telemetry run label. Replaces the old BenchIo::label →
  /// set_next_run_label side channel: the label now rides with the run it
  /// names. Empty keeps the telemetry default ("run_<seq>", or the last
  /// explicit label with a "#N" suffix).
  std::string label;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = MachineConfig{});

  const MachineConfig& config() const { return cfg_; }
  MemorySystem& mem() { return *mem_; }
  SharedHeap& heap() { return mem_->heap(); }
  FutexTable& futex() { return futex_; }

  /// The unified allocation entry point (see sim/alloc.h). A named spec is
  /// placed by the configured AllocStrategy and registered so telemetry
  /// attributes conflict/capacity aborts on its lines back to `spec.name`;
  /// an anonymous spec is bump-placed. align 0 defaults to one cache line
  /// (avoids accidental false sharing; set align explicitly to study it).
  Addr alloc(AllocSpec spec) {
    if (spec.align == 0) spec.align = 64;
    return heap().allocate(spec);
  }

  /// Anonymous allocation (cache-line aligned by default).
  Addr alloc(std::size_t bytes, std::size_t align = 64) {
    return alloc(AllocSpec{{}, bytes, align, AllocHint::kAuto});
  }


  /// Run one parallel region. Statistics are reset at region entry; returns
  /// per-thread stats and the makespan.
  RunStats run(const RunSpec& spec);

  /// Engine of the in-flight run (used by Context; null between runs).
  Engine* engine() { return engine_.get(); }

  /// Attach/detach an event trace (null = tracing off; default).
  void set_trace(TraceLog* trace) { trace_ = trace; }
  TraceLog* trace() { return trace_; }

  /// Attach/detach a telemetry collector (null = off; default). Also set
  /// automatically from MachineConfig::telemetry at construction.
  void set_telemetry(Telemetry* tel);
  Telemetry* telemetry() { return telemetry_; }

  std::vector<ThreadStats>& stats() { return stats_; }

  /// Convert cycles to seconds using the configured frequency (bandwidth
  /// reporting for Figure 6).
  double seconds(Cycles c) const { return static_cast<double>(c) / (cfg_.ghz * 1e9); }

 private:
  MachineConfig cfg_;
  std::vector<ThreadStats> stats_;
  std::unique_ptr<MemorySystem> mem_;
  FutexTable futex_;
  std::unique_ptr<Engine> engine_;
  TraceLog* trace_ = nullptr;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace tsxhpc::sim
