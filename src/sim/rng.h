// Deterministic, seedable RNGs used by every workload. No wall-clock entropy
// anywhere in the repository: identical seeds give identical runs on any host.
#pragma once

#include <cstdint>

namespace tsxhpc::sim {

/// SplitMix64: used for seeding and for light-duty streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tsxhpc::sim
