#include "sim/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace tsxhpc::sim {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// Index of the largest element (ties to the lowest index); -1 if empty.
int argmax(const JsonValue& arr) {
  int best = -1;
  std::uint64_t best_v = 0;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::uint64_t v = arr.at(i).as_u64();
    if (best < 0 || v > best_v) {
      best = static_cast<int>(i);
      best_v = v;
    }
  }
  return best;
}

void render_abort_tree(std::string& out, const JsonValue& totals) {
  const std::uint64_t started = totals["tx_started"].as_u64();
  const std::uint64_t committed = totals["tx_committed"].as_u64();
  const std::uint64_t aborted = totals["tx_aborted"].as_u64();
  appendf(out, "  transactions: started=%llu\n",
          static_cast<unsigned long long>(started));
  const double of_started = started == 0 ? 0.0 : 100.0 / static_cast<double>(started);
  appendf(out, "  |- committed  %12llu  (%5.1f%%)\n",
          static_cast<unsigned long long>(committed),
          static_cast<double>(committed) * of_started);
  appendf(out, "  `- aborted    %12llu  (%5.1f%%)\n",
          static_cast<unsigned long long>(aborted),
          static_cast<double>(aborted) * of_started);
  const JsonValue& causes = totals["aborts_by_cause"];
  const auto& members = causes.members();
  std::size_t shown = 0, nonzero = 0;
  for (const auto& [k, v] : members) {
    if (v.as_u64() != 0) nonzero++;
  }
  for (const auto& [k, v] : members) {
    const std::uint64_t n = v.as_u64();
    if (n == 0) continue;
    shown++;
    const double pct =
        aborted == 0 ? 0.0
                     : 100.0 * static_cast<double>(n) / static_cast<double>(aborted);
    appendf(out, "     %s %-14s %12llu  (%5.1f%% of aborts)\n",
            shown == nonzero ? "`-" : "|-", k.c_str(),
            static_cast<unsigned long long>(n), pct);
  }
}

/// Concurrency-control block (v7 artifacts; absent on v6 and earlier).
/// Region-level counters from the CcBackend seam: attempt chain, abort
/// classes, and the scheme-specific extras (TicToc rts extensions, MVCC
/// snapshot/version/GC accounting) — rendered only when nonzero so sgl/tsx
/// rows stay compact.
void render_cc(std::string& out, const JsonValue& run) {
  const JsonValue& cc = run["cc"];
  if (!cc.is_object()) return;
  appendf(out,
          "  cc [%s]: starts=%llu commits=%llu aborts=%llu (%.2f%%)\n",
          cc["scheme"].as_string().c_str(),
          static_cast<unsigned long long>(cc["starts"].as_u64()),
          static_cast<unsigned long long>(cc["commits"].as_u64()),
          static_cast<unsigned long long>(cc["aborts"].as_u64()),
          cc["abort_rate_pct"].as_double());
  const JsonValue& cls = cc["aborts_by_class"];
  if (cls.is_object() && cc["aborts"].as_u64() != 0) {
    appendf(
        out,
        "    abort classes: read-validation=%llu lock-acquire=%llu "
        "commit-validation=%llu\n",
        static_cast<unsigned long long>(cls["read_validation"].as_u64()),
        static_cast<unsigned long long>(cls["lock_acquire"].as_u64()),
        static_cast<unsigned long long>(cls["commit_validation"].as_u64()));
  }
  if (cc["read_set_extensions"].as_u64() != 0) {
    appendf(out, "    rts extensions: %llu\n",
            static_cast<unsigned long long>(
                cc["read_set_extensions"].as_u64()));
  }
  if (cc["snapshot_commits"].as_u64() != 0 ||
      cc["versions_created"].as_u64() != 0) {
    appendf(out,
            "    mvcc: snapshot-commits=%llu versions=%llu chain-hops=%llu "
            "depth-max=%llu gc(runs=%llu reclaims=%llu)\n",
            static_cast<unsigned long long>(cc["snapshot_commits"].as_u64()),
            static_cast<unsigned long long>(cc["versions_created"].as_u64()),
            static_cast<unsigned long long>(
                cc["version_chain_hops"].as_u64()),
            static_cast<unsigned long long>(
                cc["version_chain_depth_max"].as_u64()),
            static_cast<unsigned long long>(cc["gc_runs"].as_u64()),
            static_cast<unsigned long long>(cc["gc_reclaims"].as_u64()));
  }
}

void render_conflict_lines(std::string& out, const JsonValue& run,
                           std::size_t top) {
  const JsonValue& lines = run["conflict_lines"];
  const std::uint64_t total = run["conflict_lines_total"].as_u64();
  if (lines.size() == 0) {
    out += "  top conflicting lines: none\n";
    return;
  }
  appendf(out, "  top conflicting lines (%zu of %llu):\n",
          std::min<std::size_t>(lines.size(), top),
          static_cast<unsigned long long>(total));
  for (std::size_t i = 0; i < lines.size() && i < top; ++i) {
    const JsonValue& l = lines.at(i);
    const std::string& object = l["object"].as_string();
    const int agg = argmax(l["by_aggressor"]);
    const int vic = argmax(l["by_victim"]);
    char agg_s[16] = "-", vic_s[16] = "-";
    if (agg >= 0) std::snprintf(agg_s, sizeof(agg_s), "t%d", agg);
    if (vic >= 0) std::snprintf(vic_s, sizeof(vic_s), "t%d", vic);
    appendf(out,
            "    %-18s %-20s dooms=%-6llu (w=%llu r=%llu) "
            "top-aggressor=%s top-victim=%s\n",
            l["line"].as_string().c_str(),
            object.empty() ? "(unnamed)" : object.c_str(),
            static_cast<unsigned long long>(l["dooms"].as_u64()),
            static_cast<unsigned long long>(l["write_dooms"].as_u64()),
            static_cast<unsigned long long>(l["read_dooms"].as_u64()),
            agg_s, vic_s);
  }
}

void render_capacity_lines(std::string& out, const JsonValue& run,
                           std::size_t top) {
  const JsonValue& lines = run["capacity_lines"];
  if (lines.size() == 0) return;
  appendf(out, "  capacity-doomed lines (%zu of %llu):\n",
          std::min<std::size_t>(lines.size(), top),
          static_cast<unsigned long long>(run["capacity_lines_total"].as_u64()));
  for (std::size_t i = 0; i < lines.size() && i < top; ++i) {
    const JsonValue& l = lines.at(i);
    const std::string& object = l["object"].as_string();
    appendf(out, "    %-18s %-20s write-evict=%llu read-evict=%llu\n",
            l["line"].as_string().c_str(),
            object.empty() ? "(unnamed)" : object.c_str(),
            static_cast<unsigned long long>(l["write_evict_dooms"].as_u64()),
            static_cast<unsigned long long>(l["read_evict_dooms"].as_u64()));
  }
}

/// Per-level hit/miss/evict table (v3 artifacts; absent on v2 and earlier).
void render_cache_levels(std::string& out, const JsonValue& run) {
  const JsonValue& levels = run["cache_levels"];
  if (levels.size() == 0) return;
  out +=
      "  cache hierarchy (run totals):\n"
      "    level        served        misses     evictions  stall-cycles\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const JsonValue& l = levels.at(i);
    appendf(out, "    %-5s  %12llu  %12llu  %12llu  %12llu\n",
            l["level"].as_string().c_str(),
            static_cast<unsigned long long>(l["served"].as_u64()),
            static_cast<unsigned long long>(l["misses"].as_u64()),
            static_cast<unsigned long long>(l["evictions"].as_u64()),
            static_cast<unsigned long long>(l["stall_cycles"].as_u64()));
  }
}

/// Topology-resolved view (v6 artifacts). Rendered only for machines with
/// an actual interconnect (more than one socket or slice) — the default
/// 1-socket/1-slice reports read exactly as they always did.
void render_topology(std::string& out, const JsonValue& run) {
  const JsonValue& topo = run["topology"];
  if (!topo.is_object()) return;
  const std::uint64_t sockets = topo["sockets"].as_u64();
  const std::uint64_t slices = topo["slices"].as_u64();
  if (sockets <= 1 && slices <= 1) return;
  appendf(out,
          "  topology: %llu socket(s) x %llu cores, %llu LLC slice(s), "
          "map=%s (hop cycles: slice=%llu socket=%llu)\n",
          static_cast<unsigned long long>(sockets),
          static_cast<unsigned long long>(topo["cores_per_socket"].as_u64()),
          static_cast<unsigned long long>(slices),
          topo["map"].as_string().c_str(),
          static_cast<unsigned long long>(topo["lat_hop_slice"].as_u64()),
          static_cast<unsigned long long>(topo["lat_hop_socket"].as_u64()));
  const JsonValue& ss = topo["slice_stats"];
  for (std::size_t s = 0; s < ss.size(); ++s) {
    const JsonValue& sl = ss.at(s);
    appendf(out,
            "    slice s%zu: hits=%llu misses=%llu evictions=%llu "
            "xfers=%llu\n",
            s, static_cast<unsigned long long>(sl["hits"].as_u64()),
            static_cast<unsigned long long>(sl["misses"].as_u64()),
            static_cast<unsigned long long>(sl["evictions"].as_u64()),
            static_cast<unsigned long long>(sl["xfers"].as_u64()));
  }
  const JsonValue& so = topo["socket_stats"];
  for (std::size_t s = 0; s < so.size(); ++s) {
    const JsonValue& sk = so.at(s);
    appendf(out,
            "    socket %zu: accesses=%llu dram(local=%llu remote=%llu) "
            "hops(slice=%llu socket=%llu)\n",
            s, static_cast<unsigned long long>(sk["accesses"].as_u64()),
            static_cast<unsigned long long>(sk["dram_local"].as_u64()),
            static_cast<unsigned long long>(sk["dram_remote"].as_u64()),
            static_cast<unsigned long long>(sk["slice_hops"].as_u64()),
            static_cast<unsigned long long>(sk["socket_hops"].as_u64()));
  }
  const JsonValue& tot = run["totals"];
  if (tot["hop_cycles"].as_u64() != 0) {
    appendf(out, "    hop cycles: %llu (slice hops=%llu, socket hops=%llu)\n",
            static_cast<unsigned long long>(tot["hop_cycles"].as_u64()),
            static_cast<unsigned long long>(tot["slice_hops"].as_u64()),
            static_cast<unsigned long long>(tot["socket_hops"].as_u64()));
  }
}

constexpr const char* kBucketKeys[] = {"work",      "tx_committed", "tx_wasted",
                                       "lock_wait", "fallback",     "mem_stall"};

void render_cycle_table(std::string& out, const JsonValue& run) {
  const JsonValue& threads = run["threads"];
  if (threads.size() == 0 || !threads.at(0).has("cycles")) return;
  out +=
      "  cycle accounting (cycles per thread):\n"
      "    tid          work  tx_committed     tx_wasted     lock_wait"
      "      fallback     mem_stall         total\n";
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const JsonValue& th = threads.at(t);
    const JsonValue& cy = th["cycles"];
    appendf(out, "    %3llu",
            static_cast<unsigned long long>(th["tid"].as_u64()));
    for (const char* k : kBucketKeys) {
      appendf(out, "  %12llu", static_cast<unsigned long long>(cy[k].as_u64()));
    }
    const std::uint64_t total = cy["total"].as_u64();
    const std::uint64_t end = th["end_cycle"].as_u64();
    appendf(out, "  %12llu", static_cast<unsigned long long>(total));
    // The accounting invariant: buckets sum to the thread's final clock.
    if (total != end) {
      appendf(out, "  !! end_cycle=%llu",
              static_cast<unsigned long long>(end));
    }
    out += '\n';
  }
  const JsonValue& cy = run["totals"]["cycles"];
  out += "    sum";
  for (const char* k : kBucketKeys) {
    appendf(out, "  %12llu", static_cast<unsigned long long>(cy[k].as_u64()));
  }
  appendf(out, "  %12llu\n",
          static_cast<unsigned long long>(cy["total"].as_u64()));
}

void render_locks(std::string& out, const JsonValue& run) {
  const JsonValue& locks = run["locks"];
  if (locks.size() == 0) return;
  out += "  lock sites:\n";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    const JsonValue& l = locks.at(i);
    appendf(out,
            "    %-14s %-8s acquires=%-6llu elision=%5.1f%% "
            "tx-cycles(committed=%llu wasted=%llu) fallback-hold=%llu "
            "wait=%llu\n",
            l["site"].as_string().c_str(), l["kind"].as_string().c_str(),
            static_cast<unsigned long long>(l["acquires"].as_u64()),
            l["elision_rate_pct"].as_double(),
            static_cast<unsigned long long>(l["tx_cycles_committed"].as_u64()),
            static_cast<unsigned long long>(l["tx_cycles_wasted"].as_u64()),
            static_cast<unsigned long long>(l["fallback_hold_cycles"].as_u64()),
            static_cast<unsigned long long>(l["wait_cycles"].as_u64()));
    // TxPolicy decision counts (schema v4+; older artifacts lack the key).
    // Only render sites the policy actually touched, so plain spin/futex
    // rows stay one line.
    const JsonValue& pd = l["policy"];
    if (pd.is_object()) {
      std::uint64_t total = 0;
      for (const char* k :
           {"retries", "backoffs", "lock_waits", "fallbacks", "skips"}) {
        total += pd[k].as_u64();
      }
      if (total > 0) {
        appendf(out,
                "      policy: retries=%llu backoffs=%llu lock-waits=%llu "
                "fallbacks=%llu skips=%llu\n",
                static_cast<unsigned long long>(pd["retries"].as_u64()),
                static_cast<unsigned long long>(pd["backoffs"].as_u64()),
                static_cast<unsigned long long>(pd["lock_waits"].as_u64()),
                static_cast<unsigned long long>(pd["fallbacks"].as_u64()),
                static_cast<unsigned long long>(pd["skips"].as_u64()));
      }
    }
  }
}

}  // namespace

bool is_telemetry_doc(const JsonValue& doc) {
  return doc.is_object() && doc["runs"].is_array() &&
         doc["schema"].as_string().rfind("tsxhpc-telemetry-", 0) == 0;
}

std::string render_report(const JsonValue& doc, const ReportOptions& opt) {
  std::string out;
  appendf(out, "tsx_report: bench=%s schema=%s runs=%zu\n",
          doc["bench"].as_string().c_str(), doc["schema"].as_string().c_str(),
          doc["runs"].size());
  const JsonValue& runs = doc["runs"];
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonValue& run = runs.at(i);
    const JsonValue& totals = run["totals"];
    appendf(out, "\nrun %s: threads=%llu makespan=%llu%s\n",
            run["label"].as_string().c_str(),
            static_cast<unsigned long long>(run["num_threads"].as_u64()),
            static_cast<unsigned long long>(run["makespan"].as_u64()),
            run["complete"].as_bool() ? "" : " (incomplete)");
    render_abort_tree(out, totals);
    appendf(out, "  abort rate: %.2f%% of started transactions\n",
            totals["abort_rate_pct"].as_double());
    appendf(out, "  wasted cycles: %.2f%% of transactional cycles\n",
            totals["wasted_cycle_pct"].as_double());
    render_cc(out, run);
    render_conflict_lines(out, run, opt.top_lines);
    render_capacity_lines(out, run, opt.top_lines);
    render_cache_levels(out, run);
    render_topology(out, run);
    render_cycle_table(out, run);
    render_locks(out, run);
  }
  return out;
}

namespace {

/// Run-by-run comparison shared by the flat diff and the per-cell grid
/// diff. A label present on one side only is a label-set mismatch and
/// counts as a failure — "(skipped)" silently waved through sweeps that
/// dropped runs. `where` prefixes every line ("" or "cell <label>: ").
int diff_run_sets(const JsonValue& base_runs, const JsonValue& cur_runs,
                  const DiffThresholds& thr, const std::string& where,
                  std::string& out) {
  int failures = 0;
  for (std::size_t i = 0; i < cur_runs.size(); ++i) {
    const JsonValue& c = cur_runs.at(i);
    const std::string& label = c["label"].as_string();
    const JsonValue* b = nullptr;
    for (std::size_t j = 0; j < base_runs.size(); ++j) {
      if (base_runs.at(j)["label"].as_string() == label) {
        b = &base_runs.at(j);
        break;
      }
    }
    if (!b) {
      appendf(out,
              "%srun %s: MISMATCH — present in current but not in baseline "
              "(label-set mismatch is a failure)\n",
              where.c_str(), label.c_str());
      failures++;
      continue;
    }
    const double abort_b = (*b)["totals"]["abort_rate_pct"].as_double();
    const double abort_c = c["totals"]["abort_rate_pct"].as_double();
    const double waste_b = (*b)["totals"]["wasted_cycle_pct"].as_double();
    const double waste_c = c["totals"]["wasted_cycle_pct"].as_double();
    const std::uint64_t mk_b = (*b)["makespan"].as_u64();
    const std::uint64_t mk_c = c["makespan"].as_u64();
    const bool abort_reg = abort_c - abort_b > thr.abort_rate_pp;
    const bool waste_reg = waste_c - waste_b > thr.wasted_cycle_pp;
    appendf(out,
            "%srun %s: abort-rate %.2f%% -> %.2f%% (%+.2fpp)%s  "
            "wasted-cycles %.2f%% -> %.2f%% (%+.2fpp)%s  "
            "makespan %llu -> %llu\n",
            where.c_str(), label.c_str(), abort_b, abort_c, abort_c - abort_b,
            abort_reg ? " REGRESSION" : "", waste_b, waste_c,
            waste_c - waste_b, waste_reg ? " REGRESSION" : "",
            static_cast<unsigned long long>(mk_b),
            static_cast<unsigned long long>(mk_c));
    failures += (abort_reg ? 1 : 0) + (waste_reg ? 1 : 0);
  }
  // The reverse direction: baseline runs the current artifact dropped.
  for (std::size_t j = 0; j < base_runs.size(); ++j) {
    const std::string& label = base_runs.at(j)["label"].as_string();
    bool found = false;
    for (std::size_t i = 0; i < cur_runs.size() && !found; ++i) {
      found = cur_runs.at(i)["label"].as_string() == label;
    }
    if (!found) {
      appendf(out,
              "%srun %s: MISMATCH — present in baseline but missing from "
              "current (label-set mismatch is a failure)\n",
              where.c_str(), label.c_str());
      failures++;
    }
  }
  return failures;
}

/// Comparing artifacts across telemetry schema revisions silently hides (or
/// invents) fields, so a schema-version mismatch is a loud counted failure
/// naming both versions — the fix is refreshing the stale side, never a
/// partial comparison. Used for flat diffs and per-cell embedded telemetry.
int diff_schemas(const JsonValue& base, const JsonValue& cur,
                 const std::string& where, std::string& out) {
  const std::string& sb = base["schema"].as_string();
  const std::string& sc = cur["schema"].as_string();
  if (sb == sc) return 0;
  appendf(out,
          "%sschema: MISMATCH — baseline is '%s' but current is '%s' "
          "(cross-schema comparison is a failure; refresh the stale "
          "artifact)\n",
          where.c_str(), sb.c_str(), sc.c_str());
  return 1;
}

}  // namespace

int render_diff(const JsonValue& base, const JsonValue& cur,
                const DiffThresholds& thr, std::string& out) {
  appendf(out, "tsx_report diff: base bench=%s, current bench=%s\n",
          base["bench"].as_string().c_str(),
          cur["bench"].as_string().c_str());
  appendf(out,
          "thresholds: abort-rate +%.2fpp, wasted-cycles +%.2fpp\n",
          thr.abort_rate_pp, thr.wasted_cycle_pp);
  int failures = diff_schemas(base, cur, "", out);
  failures += diff_run_sets(base["runs"], cur["runs"], thr, "", out);
  appendf(out, "%d failure(s) (regressions, schema or label-set mismatches)\n",
          failures);
  return failures;
}

// ---------------------------------------------------------------------------
// Per-set heatmaps (telemetry v5 `set_stats` block)
// ---------------------------------------------------------------------------

namespace {

/// 10-step density ramp; 0 maps to ' ' so cold sets stay visually silent.
char density_glyph(std::uint64_t v, std::uint64_t max) {
  static const char kRamp[] = " .:-=+*#%@";
  if (v == 0) return kRamp[0];
  if (max == 0) return kRamp[1];
  std::size_t idx = 1 + static_cast<std::size_t>((v * 8) / max);
  if (idx > 9) idx = 9;
  return kRamp[idx];
}

std::vector<std::uint64_t> set_column(const JsonValue& level,
                                      const char* key) {
  const JsonValue& arr = level[key];
  std::vector<std::uint64_t> v(arr.size(), 0);
  for (std::size_t i = 0; i < arr.size(); ++i) v[i] = arr.at(i).as_u64();
  return v;
}

void render_density_row(std::string& out, const char* name,
                        const std::vector<std::uint64_t>& v) {
  std::uint64_t max = 0, total = 0;
  for (std::uint64_t x : v) {
    total += x;
    if (x > max) max = x;
  }
  appendf(out, "    %-10s |", name);
  for (std::uint64_t x : v) out.push_back(density_glyph(x, max));
  appendf(out, "| total=%llu max=%llu\n",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(max));
}

/// Does the (wrapped) span [start, start+covered) of a level with `sets`
/// sets contain `set`?
bool span_covers(std::uint64_t start, std::uint64_t covered,
                 std::uint64_t sets, std::uint64_t set) {
  if (covered >= sets) return true;
  return (set + sets - start) % sets < covered;
}

bool level_matches(const std::string& name, const std::string& filter) {
  if (filter == "all" || filter.empty()) return true;
  if (filter == "l1") return name.rfind("l1.", 0) == 0;
  // "llc" covers the single-slice level and every "llc.s<i>" slice; a full
  // instance name ("llc.s2") still selects one slice.
  if (filter == "llc") return name == "llc" || name.rfind("llc.", 0) == 0;
  return name == filter;
}

}  // namespace

bool render_set_heatmaps(const JsonValue& doc, const std::string& level_filter,
                         std::string& out) {
  bool any_block = false;
  bool any_level = false;
  const JsonValue& runs = doc["runs"];
  for (std::size_t ri = 0; ri < runs.size(); ++ri) {
    const JsonValue& run = runs.at(ri);
    const JsonValue& ss = run["set_stats"];
    if (!ss.is_object()) continue;
    any_block = true;
    appendf(out, "\nrun %s: per-set heatmaps (line_bytes=%llu)\n",
            run["label"].as_string().c_str(),
            static_cast<unsigned long long>(ss["line_bytes"].as_u64()));
    const JsonValue& levels = ss["levels"];
    const JsonValue& objects = ss["objects"];
    for (std::size_t li = 0; li < levels.size(); ++li) {
      const JsonValue& lv = levels.at(li);
      const std::string& name = lv["level"].as_string();
      if (!level_matches(name, level_filter)) continue;
      any_level = true;
      const std::uint64_t sets = lv["sets"].as_u64();
      appendf(out, "  level %s: %llu sets x %llu ways\n", name.c_str(),
              static_cast<unsigned long long>(sets),
              static_cast<unsigned long long>(lv["ways"].as_u64()));
      const auto occupancy = set_column(lv, "occupancy");
      const auto evictions = set_column(lv, "evictions");
      const auto back_inv = set_column(lv, "back_invalidations");
      const auto w_dooms = set_column(lv, "capacity_write_dooms");
      const auto r_dooms = set_column(lv, "capacity_read_dooms");
      std::vector<std::uint64_t> dooms(sets, 0);
      for (std::size_t s = 0; s < dooms.size(); ++s) {
        dooms[s] = w_dooms[s] + r_dooms[s];
      }
      render_density_row(out, "occupancy", occupancy);
      render_density_row(out, "evictions", evictions);
      std::uint64_t bi_total = 0;
      for (std::uint64_t x : back_inv) bi_total += x;
      if (bi_total != 0) render_density_row(out, "back-inv", back_inv);
      render_density_row(out, "dooms", dooms);
      // Hottest sets by eviction pressure + capacity dooms, with the named
      // objects whose span covers each (the "which object overflows which
      // set" attribution the placement work needs).
      // Named-object geometry attribution applies to any LLC level — the
      // single-slice "llc" or a "llc.s<i>" slice (every slice shares the
      // same set map; only line *membership* differs by hash).
      const bool is_llc = name.rfind("llc", 0) == 0;
      std::vector<std::size_t> order(dooms.size());
      for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         const std::uint64_t sa = evictions[a] + dooms[a];
                         const std::uint64_t sb = evictions[b] + dooms[b];
                         return sa > sb;
                       });
      for (std::size_t k = 0; k < order.size() && k < 4; ++k) {
        const std::size_t s = order[k];
        if (evictions[s] + dooms[s] == 0) break;
        appendf(out, "    hot set %3zu: evictions=%llu dooms=%llu",
                s, static_cast<unsigned long long>(evictions[s]),
                static_cast<unsigned long long>(dooms[s]));
        std::string names;
        for (std::size_t oi = 0; oi < objects.size(); ++oi) {
          const JsonValue& o = objects.at(oi);
          const std::uint64_t start =
              is_llc ? o["llc_set_start"].as_u64() : o["l1_set_start"].as_u64();
          const std::uint64_t covered = is_llc ? o["llc_sets_covered"].as_u64()
                                               : o["l1_sets_covered"].as_u64();
          if (!span_covers(start, covered, sets, s)) continue;
          if (!names.empty()) names += ", ";
          names += o["name"].as_string();
        }
        appendf(out, "  objects: %s\n", names.empty() ? "-" : names.c_str());
      }
    }
  }
  if (!any_block) {
    appendf(out, "no set_stats block in this artifact — re-run the bench "
                 "with --set-stats (telemetry v6)\n");
    return false;
  }
  if (!any_level) {
    appendf(out, "no cache level matches --sets=%s (use all, l1, llc, or an "
                 "instance like l1.c0)\n", level_filter.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Sweep-grid artifacts (tsxhpc-sweep-v1)
// ---------------------------------------------------------------------------

namespace {

/// One cell's aggregate over every run embedded in its telemetry: counters
/// and cycle buckets are summed (a cell whose bench records phases — e.g.
/// vacation's low/high-contention pair — contributes both), makespans are
/// summed (the phases run back to back), and rates are recomputed from the
/// summed counts.
struct CellMetrics {
  std::uint64_t makespan = 0;
  std::uint64_t tx_started = 0;
  std::uint64_t tx_committed = 0;
  std::uint64_t tx_aborted = 0;
  std::uint64_t tx_cycles_committed = 0;
  std::uint64_t tx_cycles_wasted = 0;
  std::uint64_t buckets[6] = {};
  std::uint64_t cycles_total = 0;
  std::size_t runs = 0;

  double abort_rate_pct() const {
    return tx_started == 0 ? 0.0
                           : 100.0 * static_cast<double>(tx_aborted) /
                                 static_cast<double>(tx_started);
  }
  double wasted_cycle_pct() const {
    const std::uint64_t tx = tx_cycles_committed + tx_cycles_wasted;
    return tx == 0 ? 0.0
                   : 100.0 * static_cast<double>(tx_cycles_wasted) /
                         static_cast<double>(tx);
  }
  double bucket_pct(std::size_t b) const {
    return cycles_total == 0 ? 0.0
                             : 100.0 * static_cast<double>(buckets[b]) /
                                   static_cast<double>(cycles_total);
  }
};

CellMetrics cell_metrics(const JsonValue& cell) {
  CellMetrics m;
  const JsonValue& runs = cell["telemetry"]["runs"];
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonValue& run = runs.at(i);
    const JsonValue& totals = run["totals"];
    m.makespan += run["makespan"].as_u64();
    m.tx_started += totals["tx_started"].as_u64();
    m.tx_committed += totals["tx_committed"].as_u64();
    m.tx_aborted += totals["tx_aborted"].as_u64();
    m.tx_cycles_committed += totals["tx_cycles_committed"].as_u64();
    m.tx_cycles_wasted += totals["tx_cycles_wasted"].as_u64();
    const JsonValue& cy = totals["cycles"];
    for (std::size_t b = 0; b < 6; ++b) {
      m.buckets[b] += cy[kBucketKeys[b]].as_u64();
    }
    m.cycles_total += cy["total"].as_u64();
    m.runs++;
  }
  return m;
}

int axis_index(const JsonValue& axes, const std::string& name) {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    if (axes.at(i)["axis"].as_string() == name) return static_cast<int>(i);
  }
  return -1;
}

/// "workload=genome/threads=4" for every axis except `skip` (-1 = none).
std::string coords_label(const JsonValue& axes, const JsonValue& coords,
                         int skip) {
  std::string label;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (static_cast<int>(a) == skip) continue;
    const std::string& name = axes.at(a)["axis"].as_string();
    if (!label.empty()) label += '/';
    label += name + '=' + coords[name].as_string();
  }
  return label;
}

void render_scaling_curves(std::string& out, const JsonValue& doc) {
  const JsonValue& axes = doc["axes"];
  const int t_axis = axis_index(axes, "threads");
  if (t_axis < 0) {
    out += "  (no 'threads' axis: scaling curves not applicable)\n";
    return;
  }
  const JsonValue& t_values = axes.at(static_cast<std::size_t>(t_axis))["values"];
  // Group cells by the non-thread coordinates, preserving grid order.
  struct Group {
    std::string label;
    std::vector<std::uint64_t> makespan;  // indexed by thread-value position
  };
  std::vector<Group> groups;
  const JsonValue& cells = doc["cells"];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cells.at(i);
    const std::string key = coords_label(axes, cell["coords"], t_axis);
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.label == key) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      groups.push_back(Group{key, std::vector<std::uint64_t>(t_values.size(), 0)});
      g = &groups.back();
    }
    const std::string& tv =
        cell["coords"][axes.at(static_cast<std::size_t>(t_axis))["axis"]
                           .as_string()]
            .as_string();
    for (std::size_t p = 0; p < t_values.size(); ++p) {
      if (t_values.at(p).as_string() == tv) {
        g->makespan[p] = cell_metrics(cell).makespan;
        break;
      }
    }
  }
  std::size_t wide = 24;
  for (const Group& g : groups) wide = std::max(wide, g.label.size());
  out += "  scaling curves (makespan by threads; speedup vs t=" +
         t_values.at(0).as_string() + "):\n";
  appendf(out, "    %-*s", static_cast<int>(wide), "cell group");
  for (std::size_t p = 0; p < t_values.size(); ++p) {
    appendf(out, "  %12s", ("t=" + t_values.at(p).as_string()).c_str());
  }
  for (std::size_t p = 1; p < t_values.size(); ++p) {
    appendf(out, "  %8s", ("x@" + t_values.at(p).as_string()).c_str());
  }
  out += '\n';
  for (const Group& g : groups) {
    appendf(out, "    %-*s", static_cast<int>(wide), g.label.c_str());
    for (std::size_t p = 0; p < g.makespan.size(); ++p) {
      appendf(out, "  %12llu", static_cast<unsigned long long>(g.makespan[p]));
    }
    for (std::size_t p = 1; p < g.makespan.size(); ++p) {
      const double speedup =
          g.makespan[p] == 0 ? 0.0
                             : static_cast<double>(g.makespan[0]) /
                                   static_cast<double>(g.makespan[p]);
      appendf(out, "  %8.2f", speedup);
    }
    out += '\n';
  }
}

}  // namespace

bool is_sweep_doc(const JsonValue& doc) {
  return doc.is_object() && doc["cells"].is_array() &&
         doc["schema"].as_string() == "tsxhpc-sweep-v1";
}

std::string render_sweep_report(const JsonValue& doc) {
  std::string out;
  const JsonValue& axes = doc["axes"];
  const JsonValue& cells = doc["cells"];
  appendf(out, "tsx_report sweep: %s bench=%s scale=%s schema=%s cells=%zu\n",
          doc["sweep"].as_string().c_str(), doc["bench"].as_string().c_str(),
          doc["scale"].as_string().c_str(), doc["schema"].as_string().c_str(),
          cells.size());
  out += "  grid: ";
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (a > 0) out += " x ";
    appendf(out, "%s(%zu)", axes.at(a)["axis"].as_string().c_str(),
            axes.at(a)["values"].size());
  }
  out += "\n\n";

  std::size_t wide = 24;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    wide = std::max(wide, cells.at(i)["cell"].as_string().size());
  }
  appendf(out, "  %-*s  %4s  %12s  %11s  %11s\n", static_cast<int>(wide),
          "cell", "runs", "makespan", "abort-rate", "wasted-cyc");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cells.at(i);
    const CellMetrics m = cell_metrics(cell);
    appendf(out, "  %-*s  %4zu  %12llu  %10.2f%%  %10.2f%%\n",
            static_cast<int>(wide), cell["cell"].as_string().c_str(), m.runs,
            static_cast<unsigned long long>(m.makespan), m.abort_rate_pct(),
            m.wasted_cycle_pct());
  }
  out += '\n';
  render_scaling_curves(out, doc);
  return out;
}

bool render_sweep_pivot(const JsonValue& doc, const std::string& axis_a,
                        const std::string& axis_b, const std::string& metric,
                        std::string& out) {
  const JsonValue& axes = doc["axes"];
  const int ia = axis_index(axes, axis_a);
  const int ib = axis_index(axes, axis_b);
  if (ia < 0 || ib < 0 || ia == ib) {
    out += "pivot: need two distinct axes of this grid (have:";
    for (std::size_t a = 0; a < axes.size(); ++a) {
      out += ' ' + axes.at(a)["axis"].as_string();
    }
    out += ")\n";
    return false;
  }
  int bucket = -1;
  for (std::size_t b = 0; b < 6; ++b) {
    if (metric == kBucketKeys[b]) bucket = static_cast<int>(b);
  }
  if (bucket < 0 && metric != "abort-rate" && metric != "wasted" &&
      metric != "makespan" && metric != "commits") {
    out += "pivot: unknown metric '" + metric +
           "' (abort-rate, wasted, makespan, commits, or a cycle bucket: "
           "work, tx_committed, tx_wasted, lock_wait, fallback, mem_stall)\n";
    return false;
  }
  const JsonValue& va = axes.at(static_cast<std::size_t>(ia))["values"];
  const JsonValue& vb = axes.at(static_cast<std::size_t>(ib))["values"];
  std::vector<double> sum(va.size() * vb.size(), 0.0);
  std::vector<std::size_t> count(va.size() * vb.size(), 0);
  const JsonValue& cells = doc["cells"];
  std::size_t averaged_over = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cells.at(i);
    const JsonValue& coords = cell["coords"];
    std::size_t pa = va.size(), pb = vb.size();
    const std::string& cva = coords[axis_a].as_string();
    const std::string& cvb = coords[axis_b].as_string();
    for (std::size_t p = 0; p < va.size(); ++p) {
      if (va.at(p).as_string() == cva) pa = p;
    }
    for (std::size_t p = 0; p < vb.size(); ++p) {
      if (vb.at(p).as_string() == cvb) pb = p;
    }
    if (pa == va.size() || pb == vb.size()) continue;
    const CellMetrics m = cell_metrics(cell);
    double v = 0.0;
    if (bucket >= 0) {
      v = m.bucket_pct(static_cast<std::size_t>(bucket));
    } else if (metric == "abort-rate") {
      v = m.abort_rate_pct();
    } else if (metric == "wasted") {
      v = m.wasted_cycle_pct();
    } else if (metric == "makespan") {
      v = static_cast<double>(m.makespan);
    } else {  // commits
      v = static_cast<double>(m.tx_committed);
    }
    sum[pa * vb.size() + pb] += v;
    count[pa * vb.size() + pb]++;
  }
  for (std::size_t k = 0; k < count.size(); ++k) {
    averaged_over = std::max(averaged_over, count[k]);
  }
  appendf(out, "  pivot %s[rows] x %s[cols], metric=%s%s:\n", axis_a.c_str(),
          axis_b.c_str(), metric.c_str(),
          averaged_over > 1 ? " (mean over remaining axes)" : "");
  std::size_t wide = axis_a.size();
  for (std::size_t p = 0; p < va.size(); ++p) {
    wide = std::max(wide, va.at(p).as_string().size());
  }
  appendf(out, "    %-*s", static_cast<int>(wide), axis_a.c_str());
  for (std::size_t p = 0; p < vb.size(); ++p) {
    appendf(out, "  %12s", vb.at(p).as_string().c_str());
  }
  out += '\n';
  for (std::size_t pa = 0; pa < va.size(); ++pa) {
    appendf(out, "    %-*s", static_cast<int>(wide),
            va.at(pa).as_string().c_str());
    for (std::size_t pb = 0; pb < vb.size(); ++pb) {
      const std::size_t k = pa * vb.size() + pb;
      if (count[k] == 0) {
        appendf(out, "  %12s", "-");
      } else if (metric == "makespan" || metric == "commits") {
        appendf(out, "  %12.0f", sum[k] / static_cast<double>(count[k]));
      } else {
        appendf(out, "  %11.2f%%", sum[k] / static_cast<double>(count[k]));
      }
    }
    out += '\n';
  }
  return true;
}

int render_sweep_diff(const JsonValue& base, const JsonValue& cur,
                      const DiffThresholds& thr, std::string& out) {
  int failures = 0;
  appendf(out, "tsx_report sweep diff: base=%s (bench=%s), current=%s (bench=%s)\n",
          base["sweep"].as_string().c_str(), base["bench"].as_string().c_str(),
          cur["sweep"].as_string().c_str(), cur["bench"].as_string().c_str());
  appendf(out, "thresholds: abort-rate +%.2fpp, wasted-cycles +%.2fpp\n",
          thr.abort_rate_pp, thr.wasted_cycle_pp);
  failures += diff_schemas(base, cur, "", out);
  // The grids must describe the same axes with the same value lists (order
  // included — expansion order names the cells).
  const JsonValue& base_axes = base["axes"];
  const JsonValue& cur_axes = cur["axes"];
  if (base_axes.size() != cur_axes.size()) {
    appendf(out, "AXIS MISMATCH: baseline has %zu axes, current has %zu\n",
            base_axes.size(), cur_axes.size());
    failures++;
  } else {
    for (std::size_t a = 0; a < base_axes.size(); ++a) {
      const JsonValue& ba = base_axes.at(a);
      const JsonValue& ca = cur_axes.at(a);
      if (ba["axis"].as_string() != ca["axis"].as_string()) {
        appendf(out, "AXIS MISMATCH: axis %zu is '%s' in baseline, '%s' in "
                     "current\n",
                a, ba["axis"].as_string().c_str(),
                ca["axis"].as_string().c_str());
        failures++;
        continue;
      }
      const JsonValue& bv = ba["values"];
      const JsonValue& cv = ca["values"];
      bool same = bv.size() == cv.size();
      for (std::size_t p = 0; same && p < bv.size(); ++p) {
        same = bv.at(p).as_string() == cv.at(p).as_string();
      }
      if (!same) {
        appendf(out, "AXIS MISMATCH: axis '%s' value lists differ\n",
                ba["axis"].as_string().c_str());
        failures++;
      }
    }
  }
  const JsonValue& base_cells = base["cells"];
  const JsonValue& cur_cells = cur["cells"];
  for (std::size_t i = 0; i < cur_cells.size(); ++i) {
    const JsonValue& c = cur_cells.at(i);
    const std::string& label = c["cell"].as_string();
    const JsonValue* b = nullptr;
    for (std::size_t j = 0; j < base_cells.size(); ++j) {
      if (base_cells.at(j)["cell"].as_string() == label) {
        b = &base_cells.at(j);
        break;
      }
    }
    if (!b) {
      appendf(out,
              "cell %s: MISMATCH — present in current but not in baseline\n",
              label.c_str());
      failures++;
      continue;
    }
    // Embedded telemetry rides verbatim per cell, so a schema bump shows up
    // here (the grid wrapper stays tsxhpc-sweep-v1 across telemetry bumps).
    failures += diff_schemas((*b)["telemetry"], c["telemetry"],
                             "cell " + label + ": ", out);
    failures += diff_run_sets((*b)["telemetry"]["runs"],
                              c["telemetry"]["runs"], thr,
                              "cell " + label + ": ", out);
  }
  for (std::size_t j = 0; j < base_cells.size(); ++j) {
    const std::string& label = base_cells.at(j)["cell"].as_string();
    bool found = false;
    for (std::size_t i = 0; i < cur_cells.size() && !found; ++i) {
      found = cur_cells.at(i)["cell"].as_string() == label;
    }
    if (!found) {
      appendf(out,
              "cell %s: MISMATCH — present in baseline but missing from "
              "current\n",
              label.c_str());
      failures++;
    }
  }
  appendf(out, "%d failure(s) (regressions or grid mismatches)\n", failures);
  return failures;
}

}  // namespace tsxhpc::sim
