#include "sim/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace tsxhpc::sim {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

/// Index of the largest element (ties to the lowest index); -1 if empty.
int argmax(const JsonValue& arr) {
  int best = -1;
  std::uint64_t best_v = 0;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::uint64_t v = arr.at(i).as_u64();
    if (best < 0 || v > best_v) {
      best = static_cast<int>(i);
      best_v = v;
    }
  }
  return best;
}

void render_abort_tree(std::string& out, const JsonValue& totals) {
  const std::uint64_t started = totals["tx_started"].as_u64();
  const std::uint64_t committed = totals["tx_committed"].as_u64();
  const std::uint64_t aborted = totals["tx_aborted"].as_u64();
  appendf(out, "  transactions: started=%llu\n",
          static_cast<unsigned long long>(started));
  const double of_started = started == 0 ? 0.0 : 100.0 / static_cast<double>(started);
  appendf(out, "  |- committed  %12llu  (%5.1f%%)\n",
          static_cast<unsigned long long>(committed),
          static_cast<double>(committed) * of_started);
  appendf(out, "  `- aborted    %12llu  (%5.1f%%)\n",
          static_cast<unsigned long long>(aborted),
          static_cast<double>(aborted) * of_started);
  const JsonValue& causes = totals["aborts_by_cause"];
  const auto& members = causes.members();
  std::size_t shown = 0, nonzero = 0;
  for (const auto& [k, v] : members) {
    if (v.as_u64() != 0) nonzero++;
  }
  for (const auto& [k, v] : members) {
    const std::uint64_t n = v.as_u64();
    if (n == 0) continue;
    shown++;
    const double pct =
        aborted == 0 ? 0.0
                     : 100.0 * static_cast<double>(n) / static_cast<double>(aborted);
    appendf(out, "     %s %-14s %12llu  (%5.1f%% of aborts)\n",
            shown == nonzero ? "`-" : "|-", k.c_str(),
            static_cast<unsigned long long>(n), pct);
  }
}

void render_conflict_lines(std::string& out, const JsonValue& run,
                           std::size_t top) {
  const JsonValue& lines = run["conflict_lines"];
  const std::uint64_t total = run["conflict_lines_total"].as_u64();
  if (lines.size() == 0) {
    out += "  top conflicting lines: none\n";
    return;
  }
  appendf(out, "  top conflicting lines (%zu of %llu):\n",
          std::min<std::size_t>(lines.size(), top),
          static_cast<unsigned long long>(total));
  for (std::size_t i = 0; i < lines.size() && i < top; ++i) {
    const JsonValue& l = lines.at(i);
    const std::string& object = l["object"].as_string();
    const int agg = argmax(l["by_aggressor"]);
    const int vic = argmax(l["by_victim"]);
    char agg_s[16] = "-", vic_s[16] = "-";
    if (agg >= 0) std::snprintf(agg_s, sizeof(agg_s), "t%d", agg);
    if (vic >= 0) std::snprintf(vic_s, sizeof(vic_s), "t%d", vic);
    appendf(out,
            "    %-18s %-20s dooms=%-6llu (w=%llu r=%llu) "
            "top-aggressor=%s top-victim=%s\n",
            l["line"].as_string().c_str(),
            object.empty() ? "(unnamed)" : object.c_str(),
            static_cast<unsigned long long>(l["dooms"].as_u64()),
            static_cast<unsigned long long>(l["write_dooms"].as_u64()),
            static_cast<unsigned long long>(l["read_dooms"].as_u64()),
            agg_s, vic_s);
  }
}

void render_capacity_lines(std::string& out, const JsonValue& run,
                           std::size_t top) {
  const JsonValue& lines = run["capacity_lines"];
  if (lines.size() == 0) return;
  appendf(out, "  capacity-doomed lines (%zu of %llu):\n",
          std::min<std::size_t>(lines.size(), top),
          static_cast<unsigned long long>(run["capacity_lines_total"].as_u64()));
  for (std::size_t i = 0; i < lines.size() && i < top; ++i) {
    const JsonValue& l = lines.at(i);
    const std::string& object = l["object"].as_string();
    appendf(out, "    %-18s %-20s write-evict=%llu read-evict=%llu\n",
            l["line"].as_string().c_str(),
            object.empty() ? "(unnamed)" : object.c_str(),
            static_cast<unsigned long long>(l["write_evict_dooms"].as_u64()),
            static_cast<unsigned long long>(l["read_evict_dooms"].as_u64()));
  }
}

/// Per-level hit/miss/evict table (v3 artifacts; absent on v2 and earlier).
void render_cache_levels(std::string& out, const JsonValue& run) {
  const JsonValue& levels = run["cache_levels"];
  if (levels.size() == 0) return;
  out +=
      "  cache hierarchy (run totals):\n"
      "    level        served        misses     evictions  stall-cycles\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const JsonValue& l = levels.at(i);
    appendf(out, "    %-5s  %12llu  %12llu  %12llu  %12llu\n",
            l["level"].as_string().c_str(),
            static_cast<unsigned long long>(l["served"].as_u64()),
            static_cast<unsigned long long>(l["misses"].as_u64()),
            static_cast<unsigned long long>(l["evictions"].as_u64()),
            static_cast<unsigned long long>(l["stall_cycles"].as_u64()));
  }
}

constexpr const char* kBucketKeys[] = {"work",      "tx_committed", "tx_wasted",
                                       "lock_wait", "fallback",     "mem_stall"};

void render_cycle_table(std::string& out, const JsonValue& run) {
  const JsonValue& threads = run["threads"];
  if (threads.size() == 0 || !threads.at(0).has("cycles")) return;
  out +=
      "  cycle accounting (cycles per thread):\n"
      "    tid          work  tx_committed     tx_wasted     lock_wait"
      "      fallback     mem_stall         total\n";
  for (std::size_t t = 0; t < threads.size(); ++t) {
    const JsonValue& th = threads.at(t);
    const JsonValue& cy = th["cycles"];
    appendf(out, "    %3llu",
            static_cast<unsigned long long>(th["tid"].as_u64()));
    for (const char* k : kBucketKeys) {
      appendf(out, "  %12llu", static_cast<unsigned long long>(cy[k].as_u64()));
    }
    const std::uint64_t total = cy["total"].as_u64();
    const std::uint64_t end = th["end_cycle"].as_u64();
    appendf(out, "  %12llu", static_cast<unsigned long long>(total));
    // The accounting invariant: buckets sum to the thread's final clock.
    if (total != end) {
      appendf(out, "  !! end_cycle=%llu",
              static_cast<unsigned long long>(end));
    }
    out += '\n';
  }
  const JsonValue& cy = run["totals"]["cycles"];
  out += "    sum";
  for (const char* k : kBucketKeys) {
    appendf(out, "  %12llu", static_cast<unsigned long long>(cy[k].as_u64()));
  }
  appendf(out, "  %12llu\n",
          static_cast<unsigned long long>(cy["total"].as_u64()));
}

void render_locks(std::string& out, const JsonValue& run) {
  const JsonValue& locks = run["locks"];
  if (locks.size() == 0) return;
  out += "  lock sites:\n";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    const JsonValue& l = locks.at(i);
    appendf(out,
            "    %-14s %-8s acquires=%-6llu elision=%5.1f%% "
            "tx-cycles(committed=%llu wasted=%llu) fallback-hold=%llu "
            "wait=%llu\n",
            l["site"].as_string().c_str(), l["kind"].as_string().c_str(),
            static_cast<unsigned long long>(l["acquires"].as_u64()),
            l["elision_rate_pct"].as_double(),
            static_cast<unsigned long long>(l["tx_cycles_committed"].as_u64()),
            static_cast<unsigned long long>(l["tx_cycles_wasted"].as_u64()),
            static_cast<unsigned long long>(l["fallback_hold_cycles"].as_u64()),
            static_cast<unsigned long long>(l["wait_cycles"].as_u64()));
    // TxPolicy decision counts (schema v4+; older artifacts lack the key).
    // Only render sites the policy actually touched, so plain spin/futex
    // rows stay one line.
    const JsonValue& pd = l["policy"];
    if (pd.is_object()) {
      std::uint64_t total = 0;
      for (const char* k :
           {"retries", "backoffs", "lock_waits", "fallbacks", "skips"}) {
        total += pd[k].as_u64();
      }
      if (total > 0) {
        appendf(out,
                "      policy: retries=%llu backoffs=%llu lock-waits=%llu "
                "fallbacks=%llu skips=%llu\n",
                static_cast<unsigned long long>(pd["retries"].as_u64()),
                static_cast<unsigned long long>(pd["backoffs"].as_u64()),
                static_cast<unsigned long long>(pd["lock_waits"].as_u64()),
                static_cast<unsigned long long>(pd["fallbacks"].as_u64()),
                static_cast<unsigned long long>(pd["skips"].as_u64()));
      }
    }
  }
}

}  // namespace

bool is_telemetry_doc(const JsonValue& doc) {
  return doc.is_object() && doc["runs"].is_array() &&
         doc["schema"].as_string().rfind("tsxhpc-telemetry-", 0) == 0;
}

std::string render_report(const JsonValue& doc, const ReportOptions& opt) {
  std::string out;
  appendf(out, "tsx_report: bench=%s schema=%s runs=%zu\n",
          doc["bench"].as_string().c_str(), doc["schema"].as_string().c_str(),
          doc["runs"].size());
  const JsonValue& runs = doc["runs"];
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonValue& run = runs.at(i);
    const JsonValue& totals = run["totals"];
    appendf(out, "\nrun %s: threads=%llu makespan=%llu%s\n",
            run["label"].as_string().c_str(),
            static_cast<unsigned long long>(run["num_threads"].as_u64()),
            static_cast<unsigned long long>(run["makespan"].as_u64()),
            run["complete"].as_bool() ? "" : " (incomplete)");
    render_abort_tree(out, totals);
    appendf(out, "  abort rate: %.2f%% of started transactions\n",
            totals["abort_rate_pct"].as_double());
    appendf(out, "  wasted cycles: %.2f%% of transactional cycles\n",
            totals["wasted_cycle_pct"].as_double());
    render_conflict_lines(out, run, opt.top_lines);
    render_capacity_lines(out, run, opt.top_lines);
    render_cache_levels(out, run);
    render_cycle_table(out, run);
    render_locks(out, run);
  }
  return out;
}

int render_diff(const JsonValue& base, const JsonValue& cur,
                const DiffThresholds& thr, std::string& out) {
  int regressions = 0;
  appendf(out, "tsx_report diff: base bench=%s, current bench=%s\n",
          base["bench"].as_string().c_str(),
          cur["bench"].as_string().c_str());
  appendf(out,
          "thresholds: abort-rate +%.2fpp, wasted-cycles +%.2fpp\n",
          thr.abort_rate_pp, thr.wasted_cycle_pp);
  const JsonValue& cur_runs = cur["runs"];
  const JsonValue& base_runs = base["runs"];
  for (std::size_t i = 0; i < cur_runs.size(); ++i) {
    const JsonValue& c = cur_runs.at(i);
    const std::string& label = c["label"].as_string();
    const JsonValue* b = nullptr;
    for (std::size_t j = 0; j < base_runs.size(); ++j) {
      if (base_runs.at(j)["label"].as_string() == label) {
        b = &base_runs.at(j);
        break;
      }
    }
    if (!b) {
      appendf(out, "run %s: no baseline run with this label (skipped)\n",
              label.c_str());
      continue;
    }
    const double abort_b = (*b)["totals"]["abort_rate_pct"].as_double();
    const double abort_c = c["totals"]["abort_rate_pct"].as_double();
    const double waste_b = (*b)["totals"]["wasted_cycle_pct"].as_double();
    const double waste_c = c["totals"]["wasted_cycle_pct"].as_double();
    const std::uint64_t mk_b = (*b)["makespan"].as_u64();
    const std::uint64_t mk_c = c["makespan"].as_u64();
    const bool abort_reg = abort_c - abort_b > thr.abort_rate_pp;
    const bool waste_reg = waste_c - waste_b > thr.wasted_cycle_pp;
    appendf(out,
            "run %s: abort-rate %.2f%% -> %.2f%% (%+.2fpp)%s  "
            "wasted-cycles %.2f%% -> %.2f%% (%+.2fpp)%s  "
            "makespan %llu -> %llu\n",
            label.c_str(), abort_b, abort_c, abort_c - abort_b,
            abort_reg ? " REGRESSION" : "", waste_b, waste_c,
            waste_c - waste_b, waste_reg ? " REGRESSION" : "",
            static_cast<unsigned long long>(mk_b),
            static_cast<unsigned long long>(mk_c));
    regressions += (abort_reg ? 1 : 0) + (waste_reg ? 1 : 0);
  }
  appendf(out, "%d regression(s)\n", regressions);
  return regressions;
}

}  // namespace tsxhpc::sim
