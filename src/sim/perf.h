// perf-style reporting of the simulated TSX event counters — the analogue
// of `perf stat -e tx-start,tx-commit,tx-abort,cycles-t,cycles-ct ...`
// that the paper uses to collect Table 1 (Section 4.2: "We collect Intel
// TSX statistics through Linux perf").
#pragma once

#include <cstdio>
#include <string>

#include "sim/stats.h"

namespace tsxhpc::sim {

namespace perf_detail {

/// One "  <count>      <label>" line, optionally with a "# ..." annotation.
inline void line(std::string& out, std::uint64_t count, const char* rest) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %12llu      %s\n",
                static_cast<unsigned long long>(count), rest);
  out += buf;
}

inline void line_pct(std::string& out, std::uint64_t count, const char* label,
                     double pct, const char* suffix) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %12llu      %s# %5.1f%% of %s\n",
                static_cast<unsigned long long>(count), label, pct, suffix);
  out += buf;
}

}  // namespace perf_detail

/// Render a perf-stat-like counter block for a finished run. Built line by
/// line so the report can grow with the counter set — no fixed buffer to
/// silently truncate.
inline std::string perf_report(const RunStats& rs) {
  const ThreadStats t = rs.total();
  const double abort_pct = t.abort_rate_pct();
  const double tx_cycles =
      static_cast<double>(t.tx_cycles_committed + t.tx_cycles_wasted);
  const double wasted_pct =
      tx_cycles == 0 ? 0.0
                     : 100.0 * static_cast<double>(t.tx_cycles_wasted) /
                           tx_cycles;
  const auto aborted = [&](AbortCause c) {
    return t.tx_aborted[static_cast<size_t>(c)];
  };

  std::string out;
  out.reserve(1536);
  using perf_detail::line;
  using perf_detail::line_pct;
  line(out, t.tx_started, "tx-start");
  line(out, t.tx_committed, "tx-commit");
  line_pct(out, t.tx_aborts_total(), "tx-abort                  ", abort_pct,
           "starts");
  line(out, aborted(AbortCause::kConflict), "tx-abort.conflict");
  line(out, aborted(AbortCause::kCapacityWrite), "tx-abort.capacity");
  line(out, aborted(AbortCause::kExplicit), "tx-abort.explicit");
  line(out, aborted(AbortCause::kSyscall), "tx-abort.syscall");
  line(out, aborted(AbortCause::kCapacityRead),
       "tx-abort.capacity-read    # secondary-tracker losses");
  line(out, t.tx_cycles_committed + t.tx_cycles_wasted,
       "cycles-t                  # cycles in transactions");
  line(out, t.tx_cycles_committed,
       "cycles-ct                 # committed-transaction cycles");
  line_pct(out, t.tx_cycles_wasted, "cycles-wasted             ", wasted_pct,
           "transactional cycles");
  line(out, t.tx_read_lines_evicted,
       "tx-read-lines-evicted     # secondary tracking");
  line(out, t.l1_hits, "l1-hits");
  line(out, t.l1_misses, "l1-misses");
  line(out, t.atomics, "atomics");
  line(out, t.syscalls, "syscalls");
  line(out, rs.makespan, "makespan-cycles");
  // Derived summary lines, formatted identically to tools/tsx_report so the
  // inline report and the artifact analysis agree to the printed digit.
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  abort rate: %.2f%% of started transactions\n", abort_pct);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  wasted cycles: %.2f%% of transactional cycles\n",
                wasted_pct);
  out += buf;
  return out;
}

}  // namespace tsxhpc::sim
