// perf-style reporting of the simulated TSX event counters — the analogue
// of `perf stat -e tx-start,tx-commit,tx-abort,cycles-t,cycles-ct ...`
// that the paper uses to collect Table 1 (Section 4.2: "We collect Intel
// TSX statistics through Linux perf").
#pragma once

#include <cstdio>
#include <string>

#include "sim/stats.h"

namespace tsxhpc::sim {

/// Render a perf-stat-like counter block for a finished run.
inline std::string perf_report(const RunStats& rs) {
  const ThreadStats t = rs.total();
  char buf[1536];
  const double abort_pct = t.abort_rate_pct();
  const double tx_cycles =
      static_cast<double>(t.tx_cycles_committed + t.tx_cycles_wasted);
  const double wasted_pct =
      tx_cycles == 0 ? 0.0
                     : 100.0 * static_cast<double>(t.tx_cycles_wasted) /
                           tx_cycles;
  std::snprintf(
      buf, sizeof(buf),
      "  %12llu      tx-start\n"
      "  %12llu      tx-commit\n"
      "  %12llu      tx-abort                  # %5.1f%% of starts\n"
      "  %12llu      tx-abort.conflict\n"
      "  %12llu      tx-abort.capacity\n"
      "  %12llu      tx-abort.explicit\n"
      "  %12llu      tx-abort.syscall\n"
      "  %12llu      tx-abort.capacity-read    # secondary-tracker losses\n"
      "  %12llu      cycles-t                  # cycles in transactions\n"
      "  %12llu      cycles-ct                 # committed-transaction cycles\n"
      "  %12llu      cycles-wasted             # %5.1f%% of transactional cycles\n"
      "  %12llu      tx-read-lines-evicted     # secondary tracking\n"
      "  %12llu      l1-hits\n"
      "  %12llu      l1-misses\n"
      "  %12llu      atomics\n"
      "  %12llu      syscalls\n"
      "  %12llu      makespan-cycles\n",
      static_cast<unsigned long long>(t.tx_started),
      static_cast<unsigned long long>(t.tx_committed),
      static_cast<unsigned long long>(t.tx_aborts_total()), abort_pct,
      static_cast<unsigned long long>(
          t.tx_aborted[static_cast<size_t>(AbortCause::kConflict)]),
      static_cast<unsigned long long>(
          t.tx_aborted[static_cast<size_t>(AbortCause::kCapacity)]),
      static_cast<unsigned long long>(
          t.tx_aborted[static_cast<size_t>(AbortCause::kExplicit)]),
      static_cast<unsigned long long>(
          t.tx_aborted[static_cast<size_t>(AbortCause::kSyscall)]),
      static_cast<unsigned long long>(
          t.tx_aborted[static_cast<size_t>(AbortCause::kCapacityRead)]),
      static_cast<unsigned long long>(t.tx_cycles_committed +
                                      t.tx_cycles_wasted),
      static_cast<unsigned long long>(t.tx_cycles_committed),
      static_cast<unsigned long long>(t.tx_cycles_wasted), wasted_pct,
      static_cast<unsigned long long>(t.tx_read_lines_evicted),
      static_cast<unsigned long long>(t.l1_hits),
      static_cast<unsigned long long>(t.l1_misses),
      static_cast<unsigned long long>(t.atomics),
      static_cast<unsigned long long>(t.syscalls),
      static_cast<unsigned long long>(rs.makespan));
  return buf;
}

}  // namespace tsxhpc::sim
