// Deterministic virtual-time scheduler. Each simulated hardware thread runs
// on its own OS thread, but exactly one executes at a time: the engine hands
// a token to the runnable thread with the minimum (virtual clock, thread id)
// pair. A thread keeps the token until its clock exceeds the next runnable
// thread's clock by the scheduling quantum. The interleaving is therefore a
// pure function of the program and the configuration — no host scheduling or
// wall-clock time ever leaks into results.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Telemetry;

class Engine {
 public:
  Engine(const MachineConfig& cfg, int num_threads);

  /// Run all thread bodies to completion. Body i executes as simulated
  /// thread i. Rethrows the first exception raised by any body.
  void run(const std::vector<std::function<void()>>& bodies);

  // --- Called from simulated threads while they hold the token ------------

  /// Advance t's virtual clock; may hand the token to another thread and
  /// return only when t is scheduled again.
  void advance(ThreadId t, Cycles cycles);

  /// Voluntarily reschedule even if within quantum (used at synchronization
  /// boundary points that need fine-grained interleaving).
  void yield_point(ThreadId t);

  /// Block t until some other thread calls wake(t). Hands off the token.
  void block(ThreadId t);

  /// Make t runnable again; its clock jumps forward to the waker's clock if
  /// it was behind. Caller must currently hold the token.
  void wake(ThreadId t, Cycles waker_clock);

  Cycles clock(ThreadId t) const { return clocks_[t]; }
  void add_clock(ThreadId t, Cycles c) { clocks_[t] += c; }
  bool is_blocked(ThreadId t) const { return states_[t] == State::kBlocked; }
  int num_threads() const { return static_cast<int>(clocks_.size()); }

  /// Makespan of the last run(): max end clock over all threads.
  Cycles makespan() const { return makespan_; }
  Cycles end_clock(ThreadId t) const { return end_clocks_[t]; }

  /// Telemetry sink for scheduler events (blocked intervals). Not owned.
  void set_telemetry(Telemetry* tel) { tel_ = tel; }

 private:
  enum class State { kNotStarted, kReady, kRunning, kBlocked, kDone };

  /// Thrown into a simulated thread when another thread failed and the run
  /// is being torn down. Not derived from std::exception on purpose so that
  /// workload catch blocks do not swallow it.
  struct EngineStop {};

  void thread_main(ThreadId t, const std::function<void()>& body);

  // All of the below require mu_ held.
  ThreadId pick_next(ThreadId exclude) const;
  void hand_off_locked(std::unique_lock<std::mutex>& lk, ThreadId t,
                       bool leaving);
  void wait_for_token(std::unique_lock<std::mutex>& lk, ThreadId t);
  void recompute_deadline_locked(ThreadId running);

  const MachineConfig& cfg_;
  mutable std::mutex mu_;
  std::vector<std::condition_variable> cvs_;
  std::condition_variable done_cv_;
  std::vector<State> states_;
  std::vector<Cycles> clocks_;
  std::vector<Cycles> end_clocks_;
  ThreadId current_ = -1;
  Cycles deadline_ = 0;  // clock value at which the current thread must yield
  int alive_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  Cycles makespan_ = 0;
  Telemetry* tel_ = nullptr;
};

}  // namespace tsxhpc::sim
