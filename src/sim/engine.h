// Deterministic virtual-time scheduler. Exactly one simulated thread
// executes at a time: the engine hands a token to the runnable thread with
// the minimum (virtual clock, thread id) pair. A thread keeps the token
// until its clock exceeds the next runnable thread's clock by the
// scheduling quantum. The interleaving is therefore a pure function of the
// program and the configuration — no host scheduling or wall-clock time
// ever leaks into results.
//
// The engine owns scheduling *policy* only; the mechanism that suspends and
// resumes simulated threads is a pluggable ExecutionBackend (sim/backend.h):
// cooperative fibers on one host thread (default) or one OS thread per
// simulated thread with condvar handoff. Both produce the same interleaving
// cycle for cycle.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/backend.h"
#include "sim/config.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Telemetry;
class EngineTestPeer;

class Engine {
 public:
  Engine(const MachineConfig& cfg, int num_threads);
  ~Engine();

  /// Run all thread bodies to completion. Body i executes as simulated
  /// thread i. Rethrows the first exception raised by any body.
  void run(const std::vector<std::function<void()>>& bodies);

  // --- Called from simulated threads while they hold the token ------------

  /// Advance t's virtual clock; may hand the token to another thread and
  /// return only when t is scheduled again.
  void advance(ThreadId t, Cycles cycles);

  /// Voluntarily reschedule even if within quantum (used at synchronization
  /// boundary points that need fine-grained interleaving).
  void yield_point(ThreadId t);

  /// Block t until some other thread calls wake(t). Hands off the token.
  void block(ThreadId t);

  /// Make t runnable again; its clock jumps forward to the waker's clock if
  /// it was behind. Usually called by the token holder; also safe with no
  /// token holder (current() < 0), where it forces the next dispatch to
  /// recompute its quantum deadline against the woken thread.
  void wake(ThreadId t, Cycles waker_clock);

  Cycles clock(ThreadId t) const { return clocks_[t]; }
  void add_clock(ThreadId t, Cycles c) { clocks_[t] += c; }
  bool is_blocked(ThreadId t) const { return states_[t] == State::kBlocked; }
  int num_threads() const { return static_cast<int>(clocks_.size()); }

  /// Thread currently holding the token, or -1 if none.
  ThreadId current() const { return current_; }

  /// Execution mechanism in use (fiber or thread).
  BackendKind backend_kind() const { return backend_->kind(); }

  /// Makespan of the last run(): max end clock over all threads.
  Cycles makespan() const { return makespan_; }
  Cycles end_clock(ThreadId t) const { return end_clocks_[t]; }

  /// Telemetry sink for scheduler events (blocked intervals). Not owned.
  void set_telemetry(Telemetry* tel) { tel_ = tel; }

 private:
  friend class EngineTestPeer;

  enum class State { kNotStarted, kReady, kRunning, kBlocked, kDone };

  /// Thrown into a simulated thread when another thread failed and the run
  /// is being torn down. Not derived from std::exception on purpose so that
  /// workload catch blocks do not swallow it.
  struct EngineStop {};

  /// Per-thread driver the backend invokes: initial token wait, body, and
  /// deterministic completion/teardown handoff.
  void thread_main(ThreadId t);

  // All of the below execute with the token held (or, for run()'s
  // bookkeeping, with no simulated thread running); happens-before edges
  // across handoffs are the backend's responsibility.
  ThreadId pick_next(ThreadId exclude) const;
  ThreadId pick_any_live() const;
  void recompute_deadline(ThreadId running);
  /// Hand the token from t to next and wait until t is resumed; throws
  /// EngineStop on resume when the run is being torn down.
  void switch_from(ThreadId t, ThreadId next);
  /// Token-acquisition bookkeeping after a resume (or first activation).
  void on_resumed(ThreadId t);

  const MachineConfig& cfg_;
  std::unique_ptr<ExecutionBackend> backend_;
  std::vector<State> states_;
  std::vector<Cycles> clocks_;
  std::vector<Cycles> end_clocks_;
  const std::vector<std::function<void()>>* bodies_ = nullptr;
  ThreadId current_ = -1;
  Cycles deadline_ = 0;  // clock value at which the current thread must yield
  int alive_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  Cycles makespan_ = 0;
  Telemetry* tel_ = nullptr;
};

}  // namespace tsxhpc::sim
