// MemorySystem: ties together the shared heap, the modeled cache hierarchy
// (per-core L1s + an array of shared inclusive LLC slices + per-socket DRAM
// endpoints), and the per-hardware-thread RTM transactional state
// (read/write line sets, write buffer, abort causes).
//
// Topology (MachineConfig::topology): a line's owning slice is an address
// hash (llc_slice_of_line); the coherence directory for the line lives in
// that slice's entries, and TSX read-set tracking keys off that slice's
// residency. Accesses that leave the core pay the interconnect model on top
// of the level latency: lat_hop_slice to a non-local slice on the same
// socket, lat_hop_socket to a remote socket's slice, to remote-homed DRAM,
// and for dirty lines forwarded from a remote socket's core. The default
// 1-socket/1-slice topology charges no hops and is bit-for-bit the historic
// single-LLC model.
//
// Every *timed* shared-memory access in the simulator funnels through
// MemorySystem::load/store; this is where conflicts are detected (eagerly,
// requester-wins, at cache-line granularity — matching the first TSX
// implementation described in Section 2 of the paper) and where capacity
// aborts originate:
//
//   * a transactionally *written* line leaving the L1 — whether displaced
//     by the owner's own traffic or back-invalidated by an LLC eviction
//     (the LLC is inclusive) — aborts the writing transaction immediately
//     (kCapacityWrite);
//   * a transactionally *read* line evicted from the L1 moves to the
//     secondary tracking structure and does NOT abort while the line stays
//     LLC-resident; evicting it from the LLC exposes the tracker's
//     imprecision and dooms each reader with read_evict_abort_prob
//     (kCapacityRead). Read-set capacity is therefore a function of LLC
//     geometry.
//
// The MESI-style coherence directory lives in the LLC's entries: directory
// state exists exactly for LLC-resident lines and is reclaimed on eviction,
// so the memory system's footprint is bounded by the configured geometry
// (plus the transient read/write-set registries of active transactions).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/heap.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Telemetry;

/// Transactional state of one hardware thread.
struct TxState {
  bool active = false;
  int nest_depth = 0;

  // Doomed by a remote conflicting access (requester wins); the victim
  // observes this at its next simulator event and rolls back.
  bool doomed = false;
  AbortCause doom_cause = AbortCause::kNone;

  // Provenance of the doom, captured at detection time: the cache line
  // (byte address) whose access killed us, who issued it (-1 when the doom
  // was a capacity event rather than a remote access), and the access kind.
  Addr doom_line = kNullAddr;
  ThreadId doom_aggressor = -1;
  bool doom_was_write = false;

  // Line-granularity read/write sets (global registry holds reverse maps).
  std::vector<Addr> read_lines;
  std::vector<Addr> write_lines;

  // Word-granularity (8 B aligned) speculative write buffer: address -> value.
  std::unordered_map<Addr, std::uint64_t> write_buffer;

  std::size_t footprint_lines() const {
    return read_lines.size() + write_lines.size();
  }

  void reset() {
    active = false;
    nest_depth = 0;
    doomed = false;
    doom_cause = AbortCause::kNone;
    doom_line = kNullAddr;
    doom_aggressor = -1;
    doom_was_write = false;
    read_lines.clear();
    write_lines.clear();
    write_buffer.clear();
  }
};

/// Outcome of a timed access, consumed by Context.
struct AccessResult {
  Cycles latency = 0;
  MemLevel level = MemLevel::kL1;  // level that served the access
  std::uint64_t value = 0;         // loads only
};


class MemorySystem {
 public:
  MemorySystem(const MachineConfig& cfg, std::vector<ThreadStats>& stats);

  SharedHeap& heap() { return heap_; }
  const MachineConfig& config() const { return cfg_; }

  // --- Timed accesses (called by Context with the scheduler token held) ----

  /// Timed load of `size` (1/2/4/8, naturally aligned) bytes at `a`.
  AccessResult load(ThreadId t, Addr a, unsigned size);

  /// Timed store. `value` is unused in the result.
  AccessResult store(ThreadId t, Addr a, std::uint64_t v, unsigned size);

  /// LOCK-prefixed read-modify-write outside a transaction; inside a
  /// transaction it degenerates to load+store within the speculative domain
  /// (legal on real hardware). `op` combines old value and operand. The
  /// result's level is the load's serving level (the store that follows
  /// always hits the just-filled L1 line).
  template <typename F>
  AccessResult atomic_rmw(ThreadId t, Addr a, unsigned size, F&& op) {
    AccessResult r = load(t, a, size);
    std::uint64_t nv = op(r.value);
    r.latency += store(t, a, nv, size).latency;
    if (!tx_[t].active) r.latency += cfg_.lat_atomic_rmw;
    stats_[t].atomics++;
    return r;
  }

  // --- Transactional control -----------------------------------------------

  /// XBEGIN. Returns false (and records an explicit-style abort) only on
  /// nesting overflow; the caller converts that into a TxAbort.
  void tx_begin(ThreadId t);

  /// XEND: publish the write buffer, clear sets. Caller charges lat_xend.
  void tx_end(ThreadId t);

  /// Roll back thread t's transaction with the given cause. Clears all
  /// speculative state; caller throws TxAbort and charges lat_abort.
  void tx_rollback(ThreadId t, AbortCause cause);

  bool in_tx(ThreadId t) const { return tx_[t].active; }
  const TxState& tx_state(ThreadId t) const { return tx_[t]; }
  TxState& tx_state_mut(ThreadId t) { return tx_[t]; }

  /// True if t has been doomed by a remote conflict and must roll back.
  bool doomed(ThreadId t) const { return tx_[t].doomed; }

  /// Abandon any in-flight transactions (run teardown after an error).
  void reset_all_tx();

  /// Zero (and, on first use, allocate) the per-set counter tables of every
  /// level. Machine::run calls this at region entry when
  /// MachineConfig::set_stats is on, mirroring the ThreadStats reset, so
  /// per-set counters cover exactly one run even though cache *contents*
  /// stay warm across runs.
  void reset_set_stats();
  bool set_stats_enabled() const { return set_stats_; }

  /// Telemetry sink for conflict events (null = off). Not owned.
  void set_telemetry(Telemetry* tel) { tel_ = tel; }

  /// Zero the per-slice/per-socket topology counters; Machine::run calls
  /// this at region entry, mirroring the ThreadStats reset.
  void reset_topology_stats();
  const std::vector<SliceStats>& slice_stats() const { return slice_stats_; }
  const std::vector<SocketStats>& socket_stats() const {
    return socket_stats_;
  }

  // Testing hooks.
  const CacheLevel& l1_of_core(int core) const { return l1_[core]; }
  /// LLC slice `slice` (default: slice 0, the whole LLC on a single-slice
  /// machine).
  const CacheLevel& llc(int slice = 0) const { return llc_[slice]; }
  int num_slices() const { return static_cast<int>(llc_.size()); }
  ThreadMask readers_of_line(Addr line) const;
  ThreadMask writers_of_line(Addr line) const;
  /// Lines with live directory state == LLC-resident lines (the directory
  /// rides in each slice's entries; boundedness tests check this never
  /// exceeds the configured LLC capacity).
  std::size_t directory_entries() const {
    std::size_t n = 0;
    for (const CacheLevel& s : llc_) n += s.resident_lines();
    return n;
  }
  /// Live entries across the transactional reverse maps (bounded by the
  /// footprints of currently active transactions).
  std::size_t tx_registry_entries() const {
    return line_readers_.size() + line_writers_.size();
  }

 private:
  Addr line_of(Addr a) const { return cfg_.line_of(a); }
  int core_of(ThreadId t) const { return cfg_.core_of(t); }
  int slice_of(Addr line) const { return cfg_.slice_of_line(line); }

  /// DRAM home socket of `line`: first-touch under --map=sharing-aware
  /// (recorded at the line's first DRAM fill, by requester socket),
  /// line-interleaved otherwise. Single-socket machines always home to 0.
  int home_socket(Addr line, int requester_socket);

  /// Eager conflict detection, requester wins: doom every *other* thread
  /// whose transactional sets overlap this access.
  void detect_conflicts(ThreadId t, Addr line, bool is_write);

  /// Returns true if the victim was actually doomed by this call (it had an
  /// active, not-yet-doomed transaction). `line` is the byte address of the
  /// cache line responsible; `aggressor` is the thread whose access doomed
  /// the victim (-1 for capacity evictions).
  bool doom(ThreadId victim, AbortCause cause, Addr line, ThreadId aggressor,
            bool is_write);

  /// Track line membership in t's transactional read or write set.
  void tx_track(ThreadId t, Addr line, bool is_write);

  /// Run the hierarchy (L1 -> owning slice's directory/LLC -> DRAM);
  /// returns the latency (including any slice/socket hop charges) and the
  /// level that served the access.
  AccessResult cache_access(ThreadId t, Addr line, bool is_write);

  /// Capacity consequences of an L1 eviction: doom the tx writer (write-set
  /// capacity), move tx readers to secondary tracking (no abort — the line
  /// is still resident in its owning slice by inclusion).
  void on_l1_eviction(const CacheTouch& touch);

  /// An eviction from LLC slice `slice`: back-invalidate L1 copies
  /// (inclusion), doom tx writers (kCapacityWrite), and doom tx readers
  /// with read_evict_abort_prob (kCapacityRead) — the secondary tracker
  /// loses the line with the slice that backed it. Directory state dies
  /// with the entry.
  void on_llc_eviction(const CacheTouch& touch, int slice);

  /// MESI-style directory update on the line's LLC entry: a write
  /// invalidates all other cores' copies and takes dirty ownership; a read
  /// joins the sharers (downgrading a remote dirty owner).
  void update_directory(CacheLevel::Entry& e, int core, bool is_write);

  /// One deterministic draw of the secondary-tracker imprecision hash;
  /// true = the eviction dooms the reader.
  bool read_evict_dooms(Addr line);

  /// Remove t's bits from the global line->readers/writers registries.
  void clear_tx_registry(ThreadId t);

  void check_alignment(Addr a, unsigned size) const;

  const MachineConfig& cfg_;
  std::vector<ThreadStats>& stats_;
  SharedHeap heap_;
  std::vector<CacheLevel> l1_;   // per core (SMT siblings share)
  std::vector<CacheLevel> llc_;  // one inclusive slice per topology slice;
                                 // each hosts its shard of the directory
  std::vector<TxState> tx_;      // per hardware thread
  // Reverse maps: line -> bitmask of hw threads with the line in their
  // transactional read / write set. Enables O(1) conflict checks and keeps
  // evicted-read lines visible to conflict detection (the secondary
  // tracker); entries are erased when the last bit clears, so the maps stay
  // bounded by live transactional footprints.
  std::unordered_map<Addr, ThreadMask> line_readers_;
  std::unordered_map<Addr, ThreadMask> line_writers_;
  // v6 topology counters (one run's worth; Machine::run resets them) and
  // the sharing-aware first-touch home registry (persistent across runs,
  // like cache contents; only populated on multi-socket machines).
  std::vector<SliceStats> slice_stats_;
  std::vector<SocketStats> socket_stats_;
  std::unordered_map<Addr, int> line_home_;
  // True when the topology can charge hops (more than one slice or socket);
  // caches the test out of the per-access hot path.
  bool topo_multi_ = false;
  // Monotone counter feeding the deterministic read-evict abort hash.
  std::uint64_t evict_events_ = 0;
  Telemetry* tel_ = nullptr;
  // Cached MachineConfig::set_stats: when true, every charge site above also
  // bumps the matching CacheLevel::set_stats() counter (tables are lazily
  // allocated by reset_set_stats()).
  bool set_stats_ = false;
};

}  // namespace tsxhpc::sim
