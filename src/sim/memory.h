// MemorySystem: ties together the shared heap, per-core L1 models, a
// directory-based coherence cost model, and the per-hardware-thread RTM
// transactional state (read/write line sets, write buffer, abort causes).
//
// Every *timed* shared-memory access in the simulator funnels through
// MemorySystem::access(); this is where conflicts are detected (eagerly,
// requester-wins, at cache-line granularity — matching the first TSX
// implementation described in Section 2 of the paper) and where capacity
// aborts originate (transactionally written line evicted from the L1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/heap.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Telemetry;

/// Transactional state of one hardware thread.
struct TxState {
  bool active = false;
  int nest_depth = 0;

  // Doomed by a remote conflicting access (requester wins); the victim
  // observes this at its next simulator event and rolls back.
  bool doomed = false;
  AbortCause doom_cause = AbortCause::kNone;

  // Provenance of the doom, captured at detection time: the cache line
  // (byte address) whose access killed us, who issued it (-1 when the doom
  // was a capacity event rather than a remote access), and the access kind.
  Addr doom_line = kNullAddr;
  ThreadId doom_aggressor = -1;
  bool doom_was_write = false;

  // Line-granularity read/write sets (global registry holds reverse maps).
  std::vector<Addr> read_lines;
  std::vector<Addr> write_lines;

  // Word-granularity (8 B aligned) speculative write buffer: address -> value.
  std::unordered_map<Addr, std::uint64_t> write_buffer;

  std::size_t footprint_lines() const {
    return read_lines.size() + write_lines.size();
  }

  void reset() {
    active = false;
    nest_depth = 0;
    doomed = false;
    doom_cause = AbortCause::kNone;
    doom_line = kNullAddr;
    doom_aggressor = -1;
    doom_was_write = false;
    read_lines.clear();
    write_lines.clear();
    write_buffer.clear();
  }
};

/// Outcome of a timed access, consumed by Context.
struct AccessResult {
  Cycles latency = 0;
  std::uint64_t value = 0;  // loads only
};

class MemorySystem {
 public:
  MemorySystem(const MachineConfig& cfg, std::vector<ThreadStats>& stats);

  SharedHeap& heap() { return heap_; }
  const MachineConfig& config() const { return cfg_; }

  // --- Timed accesses (called by Context with the scheduler token held) ----

  /// Timed load of `size` (1/2/4/8, naturally aligned) bytes at `a`.
  AccessResult load(ThreadId t, Addr a, unsigned size);

  /// Timed store.
  Cycles store(ThreadId t, Addr a, std::uint64_t v, unsigned size);

  /// LOCK-prefixed read-modify-write outside a transaction; inside a
  /// transaction it degenerates to load+store within the speculative domain
  /// (legal on real hardware). `op` combines old value and operand.
  template <typename F>
  AccessResult atomic_rmw(ThreadId t, Addr a, unsigned size, F&& op) {
    AccessResult r = load(t, a, size);
    std::uint64_t nv = op(r.value);
    r.latency += store(t, a, nv, size);
    if (!tx_[t].active) r.latency += cfg_.lat_atomic_rmw;
    stats_[t].atomics++;
    return r;
  }

  // --- Transactional control -----------------------------------------------

  /// XBEGIN. Returns false (and records an explicit-style abort) only on
  /// nesting overflow; the caller converts that into a TxAbort.
  void tx_begin(ThreadId t);

  /// XEND: publish the write buffer, clear sets. Caller charges lat_xend.
  void tx_end(ThreadId t);

  /// Roll back thread t's transaction with the given cause. Clears all
  /// speculative state; caller throws TxAbort and charges lat_abort.
  void tx_rollback(ThreadId t, AbortCause cause);

  bool in_tx(ThreadId t) const { return tx_[t].active; }
  const TxState& tx_state(ThreadId t) const { return tx_[t]; }
  TxState& tx_state_mut(ThreadId t) { return tx_[t]; }

  /// True if t has been doomed by a remote conflict and must roll back.
  bool doomed(ThreadId t) const { return tx_[t].doomed; }

  /// Abandon any in-flight transactions (run teardown after an error).
  void reset_all_tx();

  /// Telemetry sink for conflict events (null = off). Not owned.
  void set_telemetry(Telemetry* tel) { tel_ = tel; }

  // Testing hooks.
  const L1Cache& l1_of_core(int core) const { return l1_[core]; }
  std::uint16_t readers_of_line(Addr line) const;
  std::uint16_t writers_of_line(Addr line) const;

 private:
  struct DirEntry {
    int dirty_core = -1;       // core holding the line dirty, or -1
    std::uint16_t sharers = 0;  // bitmask of cores with a (clean) copy
    bool ever_touched = false;
  };

  Addr line_of(Addr a) const { return cfg_.line_of(a); }
  int core_of(ThreadId t) const { return cfg_.core_of(t); }

  /// Eager conflict detection, requester wins: doom every *other* thread
  /// whose transactional sets overlap this access.
  void detect_conflicts(ThreadId t, Addr line, bool is_write);

  /// Returns true if the victim was actually doomed by this call (it had an
  /// active, not-yet-doomed transaction). `line` is the byte address of the
  /// cache line responsible; `aggressor` is the thread whose access doomed
  /// the victim (-1 for capacity evictions).
  bool doom(ThreadId victim, AbortCause cause, Addr line, ThreadId aggressor,
            bool is_write);

  /// Track line membership in t's transactional read or write set.
  void tx_track(ThreadId t, Addr line, bool is_write);

  /// Run the L1 + directory machinery; returns access latency.
  Cycles cache_access(ThreadId t, Addr line, bool is_write);

  /// Remove t's bits from the global line->readers/writers registries.
  void clear_tx_registry(ThreadId t);

  void check_alignment(Addr a, unsigned size) const;

  const MachineConfig& cfg_;
  std::vector<ThreadStats>& stats_;
  SharedHeap heap_;
  std::vector<L1Cache> l1_;           // per core
  std::vector<TxState> tx_;           // per hardware thread
  std::unordered_map<Addr, DirEntry> dir_;
  // Reverse maps: line -> bitmask of hw threads with the line in their
  // transactional read / write set. Enables O(1) conflict checks.
  std::unordered_map<Addr, std::uint16_t> line_readers_;
  std::unordered_map<Addr, std::uint16_t> line_writers_;
  // Monotone counter feeding the deterministic read-evict abort hash.
  std::uint64_t evict_events_ = 0;
  Telemetry* tel_ = nullptr;
};

}  // namespace tsxhpc::sim
