// ThreadBackend: one OS thread per simulated hardware thread, token handoff
// via mutex + condition variable. This is the engine's original execution
// mechanism, preserved verbatim behind the ExecutionBackend seam so the
// fiber backend can be differentially tested against it: both must yield
// the same interleaving, telemetry artifact and makespan.
//
// Memory-ordering note: engine state (clocks, states, deadline) is only
// ever touched by the worker that holds the token. Each handoff goes
// through mu_, so the predecessor's writes happen-before the successor's
// reads — the engine itself needs no lock.
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/backend_impl.h"

namespace tsxhpc::sim {
namespace {

class ThreadBackend final : public ExecutionBackend {
 public:
  BackendKind kind() const override { return BackendKind::kThread; }

  void run(int n, const std::function<void(ThreadId)>& body,
           ThreadId first) override {
    cvs_ = std::vector<std::condition_variable>(n);
    running_ = kNobody;

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (ThreadId t = 0; t < n; ++t) {
      threads.emplace_back([this, t, &body] {
        {
          std::unique_lock<std::mutex> lk(mu_);
          cvs_[t].wait(lk, [&] { return running_ == t; });
        }
        body(t);
      });
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      running_ = first;
      cvs_[first].notify_one();
    }
    for (auto& th : threads) th.join();
  }

  void transfer(ThreadId from, ThreadId to) override {
    std::unique_lock<std::mutex> lk(mu_);
    running_ = to;
    cvs_[to].notify_one();
    cvs_[from].wait(lk, [&] { return running_ == from; });
  }

  void exit_transfer(ThreadId from, ThreadId to) override {
    (void)from;
    std::lock_guard<std::mutex> lk(mu_);
    running_ = to >= 0 ? to : kNobody;
    if (to >= 0) cvs_[to].notify_one();
  }

 private:
  static constexpr ThreadId kNobody = -2;

  std::mutex mu_;
  std::vector<std::condition_variable> cvs_;
  ThreadId running_ = kNobody;
};

}  // namespace

namespace detail {
std::unique_ptr<ExecutionBackend> make_thread_backend() {
  return std::make_unique<ThreadBackend>();
}
}  // namespace detail

}  // namespace tsxhpc::sim
