#include "sim/context.h"

#include <cstring>

#include "sim/machine.h"

namespace tsxhpc::sim {

namespace {
constexpr Addr kWordMask = ~static_cast<Addr>(7);
}

int Context::num_threads() const { return m_.engine()->num_threads(); }

Cycles Context::now() const { return m_.engine()->clock(tid_); }

ThreadStats& Context::stats() { return m_.stats()[tid_]; }

void Context::charge(Cycles c, CycleBucket dflt) {
  if (c == 0) return;
  if (m_.mem().in_tx(tid_)) {
    // Outcome unknown until commit/abort; flushed by tx_account_end.
    tx_pending_ += c;
    return;
  }
  CycleBucket b = dflt;
  if (b == CycleBucket::kWork || b == CycleBucket::kMemStall) {
    if (lock_wait_depth_ > 0) {
      b = CycleBucket::kLockWait;
    } else if (fallback_depth_ > 0) {
      b = CycleBucket::kFallback;
    }
  }
  stats().cycles_by_bucket[static_cast<std::size_t>(b)] += c;
}

void Context::charge_mem(Cycles lat, MemLevel level) {
  if (m_.mem().in_tx(tid_)) {
    tx_pending_ += lat;
    return;
  }
  const Cycles hit = m_.config().lat_l1_hit;
  const Cycles work = lat < hit ? lat : hit;
  charge(work, CycleBucket::kWork);
  const Cycles stall = lat - work;
  charge(stall, CycleBucket::kMemStall);
  // Mirror charge()'s rerouting: only stalls that land in kMemStall are
  // attributed per level, so sum(mem_stall_by_level) == the kMemStall bucket.
  if (stall > 0 && lock_wait_depth_ == 0 && fallback_depth_ == 0) {
    stats().mem_stall_by_level[static_cast<std::size_t>(level)] += stall;
  }
}

void Context::compute(Cycles cycles) {
  check_doom();
  m_.engine()->advance(tid_, cycles);
  charge(cycles, CycleBucket::kWork);
}

void Context::yield() {
  check_doom();
  m_.engine()->yield_point(tid_);
}

void Context::tx_backoff(Cycles cycles) {
  check_doom();
  if (m_.mem().in_tx(tid_)) {
    throw SimError("tx_backoff inside a transaction");
  }
  if (cycles == 0) return;
  m_.engine()->advance(tid_, cycles);
  // Bypasses charge()'s scope rerouting on purpose: backoff is abort waste
  // even when a lock-wait scope happens to be open.
  stats().cycles_by_bucket[static_cast<std::size_t>(CycleBucket::kTxWasted)] +=
      cycles;
  stats().backoff_cycles += cycles;
}

void Context::tx_account_start() {
  tx_start_clock_ = now();
  if (TraceLog* t = m_.trace()) {
    t->record({TraceEvent::Kind::kBegin, tid_, now(), AbortCause::kNone, 0,
               0});
  }
}

void Context::tx_account_end(bool committed, AbortCause cause,
                             std::uint32_t read_lines,
                             std::uint32_t write_lines) {
  const Cycles spent = now() - tx_start_clock_;
  if (committed) {
    stats().tx_cycles_committed += spent;
  } else {
    stats().tx_cycles_wasted += spent;
  }
  // Flush cycles accumulated while the outcome was unknown into the bucket
  // the outcome selects. tx_pending_ equals `spent` because nothing but this
  // thread's own charged advances can move its clock inside a transaction.
  stats().cycles_by_bucket[static_cast<std::size_t>(
      committed ? CycleBucket::kTxCommitted : CycleBucket::kTxWasted)] +=
      tx_pending_;
  tx_pending_ = 0;
  if (TraceLog* t = m_.trace()) {
    t->record({committed ? TraceEvent::Kind::kCommit
                         : TraceEvent::Kind::kAbort,
               tid_, now(), cause, read_lines, write_lines});
  }
  if (Telemetry* tel = m_.telemetry()) {
    tel->on_txn(tid_, tx_start_clock_, now(), committed, cause, read_lines,
                write_lines);
  }
}

void Context::check_doom() {
  MemorySystem& mem = m_.mem();
  if (!mem.in_tx(tid_) || !mem.doomed(tid_)) return;
  const TxState& st = mem.tx_state(tid_);
  const AbortCause cause = st.doom_cause;
  const auto r = static_cast<std::uint32_t>(st.read_lines.size());
  const auto w = static_cast<std::uint32_t>(st.write_lines.size());
  mem.tx_rollback(tid_, cause);
  tx_account_end(false, cause, r, w);
  m_.engine()->advance(tid_, m_.config().lat_abort);
  charge(m_.config().lat_abort, CycleBucket::kTxWasted);
  throw TxAbort{cause, 0};
}

std::uint64_t Context::load(Addr a, unsigned size) {
  check_doom();
  AccessResult r = m_.mem().load(tid_, a, size);
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
  return r.value;
}

void Context::store(Addr a, std::uint64_t v, unsigned size) {
  check_doom();
  AccessResult r = m_.mem().store(tid_, a, v, size);
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
}

std::uint64_t Context::fetch_add(Addr a, std::int64_t delta, unsigned size) {
  check_doom();
  AccessResult r = m_.mem().atomic_rmw(
      tid_, a, size, [delta](std::uint64_t old) {
        return old + static_cast<std::uint64_t>(delta);
      });
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
  return r.value;
}

bool Context::cas(Addr a, std::uint64_t expected, std::uint64_t desired,
                  unsigned size) {
  check_doom();
  bool ok = false;
  AccessResult r = m_.mem().atomic_rmw(
      tid_, a, size, [&](std::uint64_t old) {
        ok = old == expected;
        return ok ? desired : old;
      });
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
  return ok;
}

std::uint64_t Context::exchange(Addr a, std::uint64_t v, unsigned size) {
  check_doom();
  AccessResult r =
      m_.mem().atomic_rmw(tid_, a, size, [v](std::uint64_t) { return v; });
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
  return r.value;
}

std::uint64_t Context::fetch_or(Addr a, std::uint64_t bits, unsigned size) {
  check_doom();
  AccessResult r = m_.mem().atomic_rmw(
      tid_, a, size, [bits](std::uint64_t old) { return old | bits; });
  m_.engine()->advance(tid_, r.latency);
  charge_mem(r.latency, r.level);
  return r.value;
}

void Context::load_bytes(Addr a, void* dst, std::size_t n) {
  check_doom();
  if ((a & 7) != 0 || (n & 7) != 0) {
    throw SimError("load_bytes requires 8-byte alignment");
  }
  auto* out = static_cast<std::uint8_t*>(dst);
  if (m_.mem().in_tx(tid_)) {
    // Word loop: must observe our own speculative buffer.
    for (std::size_t off = 0; off < n; off += 8) {
      AccessResult r = m_.mem().load(tid_, a + off, 8);
      m_.engine()->advance(tid_, r.latency);
      charge_mem(r.latency, r.level);
      std::memcpy(out + off, &r.value, 8);
    }
    return;
  }
  // Non-transactional: one timed access per line, bulk value copy.
  const Cycles line = m_.config().line_bytes;
  for (Addr p = a & ~static_cast<Addr>(line - 1); p < a + n; p += line) {
    AccessResult r = m_.mem().load(tid_, p >= a ? p : a, 8);
    m_.engine()->advance(tid_, r.latency);
    charge_mem(r.latency, r.level);
  }
  m_.heap().read_bytes(a, out, n);
}

void Context::store_bytes(Addr a, const void* src, std::size_t n) {
  check_doom();
  if ((a & 7) != 0 || (n & 7) != 0) {
    throw SimError("store_bytes requires 8-byte alignment");
  }
  const auto* in = static_cast<const std::uint8_t*>(src);
  if (m_.mem().in_tx(tid_)) {
    for (std::size_t off = 0; off < n; off += 8) {
      std::uint64_t v;
      std::memcpy(&v, in + off, 8);
      AccessResult r = m_.mem().store(tid_, a + off, v, 8);
      m_.engine()->advance(tid_, r.latency);
      charge_mem(r.latency, r.level);
    }
    return;
  }
  const Cycles line = m_.config().line_bytes;
  for (Addr p = a & ~static_cast<Addr>(line - 1); p < a + n; p += line) {
    Addr at = p >= a ? p : a;
    std::uint64_t v;
    std::memcpy(&v, in + (at - a), 8);
    AccessResult r = m_.mem().store(tid_, at, v, 8);
    m_.engine()->advance(tid_, r.latency);
    charge_mem(r.latency, r.level);
  }
  m_.heap().write_bytes(a, in, n);
}

void Context::xbegin() {
  check_doom();
  const bool outer = !m_.mem().in_tx(tid_);
  m_.mem().tx_begin(tid_);
  if (outer) tx_account_start();
  if (m_.mem().doomed(tid_)) {
    // Nesting-depth overflow detected at begin.
    const TxState& st = m_.mem().tx_state(tid_);
    const AbortCause cause = st.doom_cause;
    const auto r = static_cast<std::uint32_t>(st.read_lines.size());
    const auto w = static_cast<std::uint32_t>(st.write_lines.size());
    m_.mem().tx_rollback(tid_, cause);
    tx_account_end(false, cause, r, w);
    m_.engine()->advance(tid_, m_.config().lat_abort);
    charge(m_.config().lat_abort, CycleBucket::kTxWasted);
    throw TxAbort{cause, 0};
  }
  m_.engine()->advance(tid_, m_.config().lat_xbegin);
  charge(m_.config().lat_xbegin, CycleBucket::kWork);  // in-tx: pends
}

void Context::xend() {
  check_doom();
  const TxState& st = m_.mem().tx_state(tid_);
  const auto r = static_cast<std::uint32_t>(st.read_lines.size());
  const auto w = static_cast<std::uint32_t>(st.write_lines.size());
  m_.mem().tx_end(tid_);
  if (!m_.mem().in_tx(tid_)) {
    tx_account_end(true, AbortCause::kNone, r, w);
  }
  m_.engine()->advance(tid_, m_.config().lat_xend);
  // Outer commit lands in kTxCommitted; a nested XEND is still in-tx and
  // pends with the rest of the transaction.
  charge(m_.config().lat_xend, CycleBucket::kTxCommitted);
}

void Context::xabort(std::uint8_t code) {
  if (!m_.mem().in_tx(tid_)) {
    // Architecturally XABORT outside a transaction is a no-op, but in this
    // codebase it is always a bug; fail loudly.
    throw SimError("XABORT outside a transaction");
  }
  const TxState& st = m_.mem().tx_state(tid_);
  const auto r = static_cast<std::uint32_t>(st.read_lines.size());
  const auto w = static_cast<std::uint32_t>(st.write_lines.size());
  m_.mem().tx_rollback(tid_, AbortCause::kExplicit);
  tx_account_end(false, AbortCause::kExplicit, r, w);
  m_.engine()->advance(tid_, m_.config().lat_abort);
  charge(m_.config().lat_abort, CycleBucket::kTxWasted);
  throw TxAbort{AbortCause::kExplicit, code};
}

bool Context::in_txn() const { return m_.mem().in_tx(tid_); }

std::size_t Context::txn_footprint_lines() const {
  return m_.mem().tx_state(tid_).footprint_lines();
}

void Context::syscall(Cycles extra_cost) {
  check_doom();
  if (m_.mem().in_tx(tid_)) {
    const TxState& st = m_.mem().tx_state(tid_);
    const auto r = static_cast<std::uint32_t>(st.read_lines.size());
    const auto w = static_cast<std::uint32_t>(st.write_lines.size());
    m_.mem().tx_rollback(tid_, AbortCause::kSyscall);
    tx_account_end(false, AbortCause::kSyscall, r, w);
    m_.engine()->advance(tid_, m_.config().lat_abort);
    charge(m_.config().lat_abort, CycleBucket::kTxWasted);
    throw TxAbort{AbortCause::kSyscall, 0};
  }
  stats().syscalls++;
  m_.engine()->advance(tid_, m_.config().lat_syscall + extra_cost);
  charge(m_.config().lat_syscall + extra_cost, CycleBucket::kWork);
}

void Context::futex_wait(Addr addr, std::uint32_t expected) {
  check_doom();
  if (m_.mem().in_tx(tid_)) {
    throw SimError("futex_wait inside a transaction");
  }
  stats().syscalls++;
  stats().futex_waits++;
  m_.engine()->advance(tid_, m_.config().lat_syscall);
  charge(m_.config().lat_syscall, CycleBucket::kLockWait);
  // Atomic check-and-enqueue: we hold the scheduler token throughout.
  const std::uint32_t v =
      static_cast<std::uint32_t>(m_.heap().read_word(addr, 4));
  if (v != expected) return;  // EAGAIN
  // The value check, enqueue and block must be atomic: no engine call (and
  // hence no token handoff) may occur between them, or a concurrent wake
  // could be lost. Descheduling costs are charged after we are woken.
  m_.futex().enqueue(addr, tid_);
  const Cycles blocked_at = now();
  m_.engine()->block(tid_);
  // wake() jumped our clock to the waker's; that interval is lock-wait too.
  charge(now() - blocked_at, CycleBucket::kLockWait);
  m_.engine()->advance(tid_, m_.config().lat_block + m_.config().lat_wake);
  charge(m_.config().lat_block + m_.config().lat_wake,
         CycleBucket::kLockWait);
}

int Context::futex_wake(Addr addr, int count) {
  check_doom();
  if (m_.mem().in_tx(tid_)) {
    const TxState& st = m_.mem().tx_state(tid_);
    const auto r = static_cast<std::uint32_t>(st.read_lines.size());
    const auto w = static_cast<std::uint32_t>(st.write_lines.size());
    m_.mem().tx_rollback(tid_, AbortCause::kSyscall);
    tx_account_end(false, AbortCause::kSyscall, r, w);
    m_.engine()->advance(tid_, m_.config().lat_abort);
    charge(m_.config().lat_abort, CycleBucket::kTxWasted);
    throw TxAbort{AbortCause::kSyscall, 0};
  }
  stats().syscalls++;
  stats().futex_wakes++;
  m_.engine()->advance(tid_, m_.config().lat_syscall);
  charge(m_.config().lat_syscall, CycleBucket::kWork);
  Engine* e = m_.engine();
  const Cycles now = e->clock(tid_);
  return m_.futex().wake(addr, count,
                         [e, now](ThreadId t) { e->wake(t, now); });
}

}  // namespace tsxhpc::sim
