#include "sim/sweep.h"

#include <algorithm>

#include "sim/json.h"

namespace tsxhpc::sim {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

/// Read an array of strings at `key` (absent key -> empty, which is fine for
/// the optional arg lists); false if present but not an array of strings.
bool read_string_array(const JsonValue& doc, const char* key,
                       std::vector<std::string>& out, std::string* error) {
  const JsonValue& v = doc[key];
  if (v.is_null()) return true;
  if (!v.is_array()) {
    return fail(error, std::string("'") + key + "' must be an array");
  }
  for (std::size_t i = 0; i < v.size(); ++i) {
    const JsonValue& e = v.at(i);
    if (e.type() != JsonValue::Type::kString) {
      return fail(error, std::string("'") + key + "' entries must be strings");
    }
    out.push_back(e.as_string());
  }
  return true;
}

}  // namespace

std::vector<std::string> SweepSpec::args_for_scale(
    const std::string& scale) const {
  std::vector<std::string> out = args;
  const std::vector<std::string>& extra =
      scale == "full" ? full_args : quick_args;
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

bool parse_sweep_spec(const JsonValue& doc, SweepSpec& spec,
                      std::string* error) {
  if (!doc.is_object()) return fail(error, "spec is not a JSON object");
  if (doc["schema"].as_string() != kSweepSpecSchema) {
    return fail(error, "spec schema is not " + std::string(kSweepSpecSchema) +
                           " (got '" + doc["schema"].as_string() + "')");
  }
  spec.name = doc["name"].as_string();
  if (spec.name.empty()) return fail(error, "spec has no 'name'");
  spec.bench = doc["bench"].as_string();
  if (spec.bench.empty()) return fail(error, "spec has no 'bench'");
  if (spec.bench.find('/') != std::string::npos) {
    return fail(error, "'bench' must be a binary name, not a path (the "
                       "orchestrator resolves it against --bench-dir)");
  }
  if (!read_string_array(doc, "args", spec.args, error) ||
      !read_string_array(doc, "quick_args", spec.quick_args, error) ||
      !read_string_array(doc, "full_args", spec.full_args, error)) {
    return false;
  }
  const JsonValue& axes = doc["axes"];
  if (!axes.is_array() || axes.size() == 0) {
    return fail(error, "spec needs a non-empty 'axes' array");
  }
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const JsonValue& a = axes.at(i);
    SweepAxis axis;
    axis.name = a["axis"].as_string();
    axis.flag = a["flag"].as_string();
    if (axis.name.empty()) {
      return fail(error, "axis " + std::to_string(i) + " has no 'axis' name");
    }
    if (axis.name.find('=') != std::string::npos ||
        axis.name.find('/') != std::string::npos) {
      return fail(error, "axis name '" + axis.name +
                             "' may not contain '=' or '/' (they delimit "
                             "cell labels)");
    }
    if (axis.flag.rfind("--", 0) != 0) {
      return fail(error, "axis '" + axis.name +
                             "' needs a 'flag' starting with --");
    }
    if (!read_string_array(a, "values", axis.values, error)) return false;
    if (axis.values.empty()) {
      return fail(error, "axis '" + axis.name + "' has no values");
    }
    for (const SweepAxis& prev : spec.axes) {
      if (prev.name == axis.name) {
        return fail(error, "duplicate axis name '" + axis.name + "'");
      }
    }
    for (std::size_t v = 0; v < axis.values.size(); ++v) {
      if (axis.values[v].empty()) {
        return fail(error, "axis '" + axis.name + "' has an empty value");
      }
      for (std::size_t w = v + 1; w < axis.values.size(); ++w) {
        if (axis.values[v] == axis.values[w]) {
          return fail(error, "axis '" + axis.name + "' repeats value '" +
                                 axis.values[v] + "'");
        }
      }
    }
    spec.axes.push_back(std::move(axis));
  }
  return true;
}

std::vector<SweepCell> expand_cells(const SweepSpec& spec) {
  std::vector<SweepCell> cells;
  cells.reserve(spec.cell_count());
  std::vector<std::size_t> idx(spec.axes.size(), 0);
  for (;;) {
    SweepCell cell;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const SweepAxis& axis = spec.axes[a];
      const std::string& value = axis.values[idx[a]];
      if (a > 0) cell.label += '/';
      cell.label += axis.name + '=' + value;
      cell.coords.push_back(value);
      cell.flags.push_back(axis.flag + '=' + value);
    }
    cells.push_back(std::move(cell));
    // Odometer: last axis fastest.
    std::size_t a = spec.axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < spec.axes[a].values.size()) break;
      idx[a] = 0;
      if (a == 0) return cells;
    }
  }
}

std::string merge_sweep(const SweepSpec& spec, const std::string& scale,
                        const std::vector<std::string>& effective_args,
                        const std::vector<SweepCell>& cells,
                        const std::vector<std::string>& cell_artifacts) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", kSweepSchema);
  w.kv("sweep", spec.name);
  w.kv("bench", spec.bench);
  w.kv("scale", scale);
  w.key("args");
  w.begin_array();
  for (const std::string& a : effective_args) w.value(a);
  w.end_array();
  w.key("axes");
  w.begin_array();
  for (const SweepAxis& axis : spec.axes) {
    w.begin_object();
    w.kv("axis", axis.name);
    w.kv("flag", axis.flag);
    w.key("values");
    w.begin_array();
    for (const std::string& v : axis.values) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < cells.size() && i < cell_artifacts.size(); ++i) {
    w.begin_object();
    w.kv("cell", cells[i].label);
    w.key("coords");
    w.begin_object();
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      w.kv(spec.axes[a].name, cells[i].coords[a]);
    }
    w.end_object();
    w.key("telemetry");
    w.raw_value(cell_artifacts[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace tsxhpc::sim
