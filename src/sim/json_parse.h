// Minimal recursive-descent JSON parser — the read side of json.h's
// writer, used by the report layer (tools/tsx_report and the in-process
// --report path both consume telemetry artifacts through it, so they
// compute identical numbers). Deliberately small: no streaming, no
// surrogate-pair decoding, numbers kept as raw text so 64-bit cycle
// counters survive the round trip without a double conversion. The sweep
// merger feeds it artifacts this process did not write, so malformed input
// (truncation, bad escapes, duplicate keys, unescaped control bytes,
// non-UTF-8 bytes) fails with an offset-located error rather than yielding
// a silently wrong document.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool as_bool() const { return type_ == Type::kBool && bool_; }
  /// Unsigned integer view of a number (0 for non-numbers).
  std::uint64_t as_u64() const {
    if (type_ != Type::kNumber) return 0;
    return std::strtoull(text_.c_str(), nullptr, 10);
  }
  double as_double() const {
    if (type_ != Type::kNumber) return 0.0;
    return std::strtod(text_.c_str(), nullptr);
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return type_ == Type::kString ? text_ : kEmpty;
  }
  /// Addresses are serialized as "0x..." strings; parse one back (0 if not).
  Addr as_addr() const {
    if (type_ != Type::kString) return 0;
    return std::strtoull(text_.c_str(), nullptr, 16);
  }

  const std::vector<JsonValue>& items() const { return arr_; }
  std::size_t size() const { return arr_.size(); }
  const JsonValue& at(std::size_t i) const {
    static const JsonValue kNull;
    return i < arr_.size() ? arr_[i] : kNull;
  }

  /// Object member lookup; returns a null value for missing keys so report
  /// code can read older/newer schema revisions without branching.
  const JsonValue& operator[](std::string_view key) const {
    static const JsonValue kNull;
    for (const auto& [k, v] : obj_) {
      if (k == key) return v;
    }
    return kNull;
  }
  bool has(std::string_view key) const { return !(*this)[key].is_null(); }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return obj_;
  }

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string text_;  // number (raw) or string (unescaped)
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

class JsonParser {
 public:
  /// Parse `text`; on malformed input sets *error and returns a null value.
  static JsonValue parse(std::string_view text, std::string* error = nullptr) {
    JsonParser p(text);
    JsonValue v;
    try {
      v = p.value();
      p.skip_ws();
      if (p.pos_ != text.size()) p.fail("trailing characters");
    } catch (const ParseError& e) {
      if (error) *error = e.what;
      return JsonValue{};
    }
    return v;
  }

 private:
  struct ParseError {
    std::string what;
  };

  explicit JsonParser(std::string_view text) : text_(text) {}

  [[noreturn]] void fail(const char* msg) {
    throw ParseError{std::string(msg) + " at offset " +
                     std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      pos_++;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    pos_++;
  }

  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
        if (!consume_lit("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_lit("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_lit("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type_ = JsonValue::Type::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      pos_++;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      // Duplicate keys are always a writer bug; first-wins lookup would
      // silently hide the second value, so fail loudly with the offset.
      for (const auto& kv : v.obj_) {
        if (kv.first == key) fail("duplicate object key");
      }
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        pos_++;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      pos_++;
      return v;
    }
    for (;;) {
      v.arr_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        pos_++;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type_ = JsonValue::Type::kString;
    v.text_ = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      pos_++;
      if (c == '"') return out;
      if (c != '\\') {
        const unsigned char u = static_cast<unsigned char>(c);
        // JSON requires control characters to be escaped, and the document
        // to be UTF-8. The writer guarantees both; reject bytes that cannot
        // have come from it (truncation, corruption, a foreign producer)
        // with a located error instead of passing garbage downstream.
        if (u < 0x20) fail("unescaped control character in string");
        if (u >= 0x80) {
          int tail;
          if (u >= 0xc2 && u <= 0xdf) tail = 1;
          else if (u >= 0xe0 && u <= 0xef) tail = 2;
          else if (u >= 0xf0 && u <= 0xf4) tail = 3;
          else fail("invalid UTF-8 byte in string");  // 0x80-0xC1, 0xF5-0xFF
          out += c;
          for (int i = 0; i < tail; ++i) {
            const char cc = peek();
            if ((static_cast<unsigned char>(cc) & 0xc0) != 0x80) {
              fail("truncated UTF-8 sequence in string");
            }
            pos_++;
            out += cc;
          }
          continue;
        }
        out += c;
        continue;
      }
      const char esc = peek();
      pos_++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00XX control escapes; anything wider is
          // replaced rather than UTF-8 encoded.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_++;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      pos_++;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      digits();
    }
    if (!any) fail("bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.text_.assign(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace tsxhpc::sim
