// The simulated shared heap: a flat virtual address space whose contents are
// the *values* of shared memory. All inter-thread-visible data in a workload
// lives here so that the cache / conflict models see every access.
//
// Allocations go through the unified allocate(AllocSpec) entry point
// (sim/alloc.h). A *named* spec registers the address range in the region
// registry mapping ranges back to workload data structures — which is what
// lets conflict and capacity telemetry say "this abort came from
// `vacation.relations`" instead of printing a bare line address — and is
// placed by the attached AllocStrategy (bump / slab / color / adversarial).
// Anonymous allocations always take the plain bump path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/alloc.h"
#include "sim/types.h"

namespace tsxhpc::sim {

/// Shared address space with pluggable placement for named allocations.
/// Address 0 is reserved (null); the first allocation starts at one full
/// cache line to keep line indices nonzero. Backing storage grows on demand;
/// addresses are stable offsets. With no strategy attached (or the bump
/// strategy), every allocation is a monotone bump — bit-for-bit the layout
/// all committed telemetry baselines were recorded against.
class SharedHeap {
 public:
  explicit SharedHeap(std::uint32_t line_bytes = 64)
      : line_bytes_(line_bytes), brk_(line_bytes) {
    mem_.resize(1 << 20);
  }

  /// Attach the placement strategy for named allocations (null = bump).
  /// MemorySystem installs the MachineConfig::alloc_strategy choice at
  /// construction, before any workload allocates.
  void set_strategy(std::unique_ptr<AllocStrategy> strategy) {
    strategy_ = std::move(strategy);
  }
  AllocStrategyKind strategy_kind() const {
    return strategy_ ? strategy_->kind() : AllocStrategyKind::kBump;
  }

  /// The unified allocation entry point. A named spec is placed by the
  /// attached strategy and registered for telemetry attribution; an
  /// anonymous spec is bump-placed. align 0 falls back to 8 (the historic
  /// SharedHeap default; Machine::alloc upgrades its own default to a full
  /// cache line before forwarding).
  Addr allocate(const AllocSpec& spec) {
    const std::size_t bytes = spec.bytes == 0 ? 1 : spec.bytes;
    const std::size_t align = spec.align == 0 ? 8 : spec.align;
    Addr a;
    if (strategy_ && !spec.name.empty()) {
      AllocSpec normalized = spec;
      normalized.bytes = bytes;
      normalized.align = align;
      a = strategy_->place(*this, normalized);
    } else {
      a = bump_place(bytes, align);
    }
    if (!spec.name.empty()) register_region(spec.name, a, bytes);
    return a;
  }

  /// Allocate `bytes` with the given alignment (power of two). Anonymous:
  /// never strategy-placed, never registered.
  Addr allocate(std::size_t bytes, std::size_t align = 8) {
    return allocate(AllocSpec{{}, bytes, align, AllocHint::kAuto});
  }

  /// Allocate starting on a fresh cache line (avoids false sharing).
  Addr allocate_lines(std::size_t bytes) {
    return allocate(bytes, line_bytes_);
  }


  /// A named allocation registered via a named allocate(AllocSpec).
  struct Region {
    Addr base = 0;
    Addr end = 0;  // one past the last byte
    std::string name;
  };

  /// The named region containing `a`, or null if `a` was never named.
  const Region* region_of(Addr a) const {
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), a,
        [](Addr x, const Region& r) { return x < r.base; });
    if (it == regions_.begin()) return nullptr;
    --it;
    return a < it->end ? &*it : nullptr;
  }

  /// Name of the allocation containing `a` ("" if unnamed).
  std::string_view name_of(Addr a) const {
    const Region* r = region_of(a);
    return r ? std::string_view(r->name) : std::string_view();
  }

  /// Registered regions, sorted by base address. Under the bump strategy
  /// this coincides with registration order; slab/color issue addresses out
  /// of order, so consumers must not read this as an allocation timeline.
  const std::vector<Region>& regions() const { return regions_; }

  /// First region *registered* under `name`, or null — an O(1) name-index
  /// lookup, so tsx_report --sets object attribution stays cheap on heaps
  /// with thousands of named regions. Lets tests and reports recover a named
  /// object's extent (and therefore its expected set span) without
  /// re-threading base/size through the workload.
  const Region* region_named(std::string_view name) const {
    auto it = name_index_.find(std::string(name));
    return it == name_index_.end() ? nullptr : region_of(it->second);
  }

  // --- Low-level carving API (AllocStrategy implementations only) ---------

  /// Monotone bump carve: the historic allocate() formula, shared by the
  /// anonymous path and the bump strategy so the two can never diverge.
  Addr bump_place(std::size_t bytes, std::size_t align) {
    Addr a = (brk_ + (align - 1)) & ~static_cast<Addr>(align - 1);
    brk_ = a + bytes;
    ensure_capacity(brk_);
    return a;
  }

  /// Carve `bytes` at exactly `at` (which the caller owns: either at/beyond
  /// the bump frontier, or inside a chunk it previously carved). Advances
  /// the frontier past the range when it extends it.
  Addr place_at(Addr at, std::size_t bytes) {
    if (at == kNullAddr) throw SimError("place_at: null address");
    if (at + bytes > brk_) brk_ = at + bytes;
    ensure_capacity(brk_);
    return at;
  }

  /// Current bump frontier (the next bump allocation starts at or above
  /// this). Strategies use it to pick target addresses that stay clear of
  /// already-issued ranges.
  Addr brk() const { return brk_; }

  // Raw, *untimed* value access. The Context routes all timed accesses here
  // after running the coherence/transaction machinery. Tests and workload
  // setup phases may use these directly for initialization.
  std::uint64_t read_word(Addr a, unsigned size) const {
    check(a, size);
    std::uint64_t v = 0;
    std::memcpy(&v, mem_.data() + a, size);
    return v;
  }

  void write_word(Addr a, std::uint64_t v, unsigned size) {
    check(a, size);
    std::memcpy(mem_.data() + a, &v, size);
  }

  void read_bytes(Addr a, void* dst, std::size_t n) const {
    check(a, n);
    std::memcpy(dst, mem_.data() + a, n);
  }

  void write_bytes(Addr a, const void* src, std::size_t n) {
    check(a, n);
    std::memcpy(mem_.data() + a, src, n);
  }

  Addr bytes_allocated() const { return brk_; }
  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  /// Insert into the registry keeping it sorted by base — slab and color
  /// issue addresses out of order, and region_of's binary search silently
  /// returns wrong regions on an unsorted registry (the historic bump-only
  /// code relied on monotone allocation for sortedness).
  void register_region(std::string_view name, Addr base, std::size_t bytes) {
    Region reg{base, base + bytes, std::string(name)};
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), base,
        [](Addr x, const Region& r) { return x < r.base; });
    name_index_.emplace(reg.name, base);  // first registration wins
    regions_.insert(it, std::move(reg));
  }

  void ensure_capacity(Addr limit) {
    if (limit + line_bytes_ > mem_.size()) {
      mem_.resize(next_pow2(limit + line_bytes_));
    }
  }

  void check(Addr a, std::size_t n) const {
    // Allow access up to the end of the last allocated cache line: the
    // transactional write buffer merges at word granularity and may read
    // back padding bytes of the final allocation.
    const Addr limit = (brk_ + line_bytes_ - 1) & ~static_cast<Addr>(line_bytes_ - 1);
    if (a == kNullAddr || a + n > limit) {
      throw SimError("shared heap access out of bounds: addr=" +
                     std::to_string(a) + " size=" + std::to_string(n) +
                     " brk=" + std::to_string(brk_));
    }
  }

  static std::size_t next_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::uint32_t line_bytes_;
  Addr brk_;
  std::vector<std::uint8_t> mem_;
  std::vector<Region> regions_;  // sorted by base (kept so on insert)
  // name -> base of the first region registered under that name; resolved
  // through region_of so Region pointers never dangle across inserts.
  std::unordered_map<std::string, Addr> name_index_;
  std::unique_ptr<AllocStrategy> strategy_;  // null = bump
};

}  // namespace tsxhpc::sim
