// The simulated shared heap: a flat virtual address space whose contents are
// the *values* of shared memory. All inter-thread-visible data in a workload
// lives here so that the cache / conflict models see every access.
//
// Allocations can be *named* (allocate_named): the heap keeps a sorted
// region registry mapping address ranges back to workload data structures,
// which is what lets conflict and capacity telemetry say "this abort came
// from `vacation.relations`" instead of printing a bare line address.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

/// Bump-allocated shared address space. Address 0 is reserved (null); the
/// first allocation starts at one full cache line to keep line indices
/// nonzero. Backing storage grows on demand; addresses are stable offsets.
class SharedHeap {
 public:
  explicit SharedHeap(std::uint32_t line_bytes = 64)
      : line_bytes_(line_bytes), brk_(line_bytes) {
    mem_.resize(1 << 20);
  }

  /// Allocate `bytes` with the given alignment (power of two).
  Addr allocate(std::size_t bytes, std::size_t align = 8) {
    if (bytes == 0) bytes = 1;
    Addr a = (brk_ + (align - 1)) & ~static_cast<Addr>(align - 1);
    brk_ = a + bytes;
    if (brk_ + line_bytes_ > mem_.size()) {
      mem_.resize(next_pow2(brk_ + line_bytes_));
    }
    return a;
  }

  /// Allocate starting on a fresh cache line (avoids false sharing).
  Addr allocate_lines(std::size_t bytes) {
    return allocate(bytes, line_bytes_);
  }

  /// Allocate and register the range under `name` so conflict/capacity
  /// telemetry can attribute line addresses back to this object.
  Addr allocate_named(std::string_view name, std::size_t bytes,
                      std::size_t align = 8) {
    const Addr a = allocate(bytes, align);
    // The bump allocator is monotone, so regions_ stays sorted by base.
    regions_.push_back(Region{a, a + (bytes == 0 ? 1 : bytes),
                              std::string(name)});
    return a;
  }

  /// A named allocation registered via allocate_named.
  struct Region {
    Addr base = 0;
    Addr end = 0;  // one past the last byte
    std::string name;
  };

  /// The named region containing `a`, or null if `a` was never named.
  const Region* region_of(Addr a) const {
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), a,
        [](Addr x, const Region& r) { return x < r.base; });
    if (it == regions_.begin()) return nullptr;
    --it;
    return a < it->end ? &*it : nullptr;
  }

  /// Name of the allocation containing `a` ("" if unnamed).
  std::string_view name_of(Addr a) const {
    const Region* r = region_of(a);
    return r ? std::string_view(r->name) : std::string_view();
  }

  const std::vector<Region>& regions() const { return regions_; }

  /// First region registered under `name`, or null. Lets tests and reports
  /// recover a named object's extent (and therefore its expected set span)
  /// without re-threading base/size through the workload.
  const Region* region_named(std::string_view name) const {
    for (const Region& r : regions_) {
      if (r.name == name) return &r;
    }
    return nullptr;
  }

  // Raw, *untimed* value access. The Context routes all timed accesses here
  // after running the coherence/transaction machinery. Tests and workload
  // setup phases may use these directly for initialization.
  std::uint64_t read_word(Addr a, unsigned size) const {
    check(a, size);
    std::uint64_t v = 0;
    std::memcpy(&v, mem_.data() + a, size);
    return v;
  }

  void write_word(Addr a, std::uint64_t v, unsigned size) {
    check(a, size);
    std::memcpy(mem_.data() + a, &v, size);
  }

  void read_bytes(Addr a, void* dst, std::size_t n) const {
    check(a, n);
    std::memcpy(dst, mem_.data() + a, n);
  }

  void write_bytes(Addr a, const void* src, std::size_t n) {
    check(a, n);
    std::memcpy(mem_.data() + a, src, n);
  }

  Addr bytes_allocated() const { return brk_; }
  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  void check(Addr a, std::size_t n) const {
    // Allow access up to the end of the last allocated cache line: the
    // transactional write buffer merges at word granularity and may read
    // back padding bytes of the final allocation.
    const Addr limit = (brk_ + line_bytes_ - 1) & ~static_cast<Addr>(line_bytes_ - 1);
    if (a == kNullAddr || a + n > limit) {
      throw SimError("shared heap access out of bounds: addr=" +
                     std::to_string(a) + " size=" + std::to_string(n) +
                     " brk=" + std::to_string(brk_));
    }
  }

  static std::size_t next_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::uint32_t line_bytes_;
  Addr brk_;
  std::vector<std::uint8_t> mem_;
  std::vector<Region> regions_;  // sorted by base (bump alloc is monotone)
};

}  // namespace tsxhpc::sim
