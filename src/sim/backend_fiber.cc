// FiberBackend: every simulated hardware thread is a stackful fiber, all
// multiplexed on the ONE host thread that called Engine::run. A token
// handoff is a userspace context switch — no mutex, no condition variable,
// no kernel involvement — which on a single-core host removes a futex
// round-trip from the simulator's hottest path (every virtual-time handoff).
//
// The switch itself is a minimal hand-rolled x86-64 swap (save the six
// callee-saved registers + rsp, flip stacks, restore): the System V ABI
// makes everything else caller-saved, and the compiler already spilled
// those around the call. Other architectures fall back to ucontext
// (swapcontext), which is portable but pays a sigprocmask syscall per
// switch.
//
// Determinism: the engine makes identical scheduling decisions on every
// backend; fibers only change the transfer mechanism. Exceptions stay
// fiber-local — the engine's thread_main catches everything before the
// fiber exits, and unwinding never crosses a switch frame.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/backend_impl.h"
#include "sim/types.h"

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

// The Itanium C++ ABI keeps per-thread exception-handling state (the
// caught-exception stack and the uncaught count) in __cxa_eh_globals. It is
// per HOST thread, while our fibers interleave freely — a fiber can suspend
// inside a catch block (monitors futex-wait from one) and another fiber can
// throw/catch meanwhile. Without isolation, the resumed fiber's
// __cxa_end_catch would pop the OTHER fiber's exception. So each fiber
// carries its own copy of the (pointer + unsigned, zero-initialized for a
// fresh thread) globals, swapped at every context switch — the same
// technique Boost.Context and folly::fibers use.
namespace __cxxabiv1 {
struct __cxa_eh_globals;
extern "C" __cxa_eh_globals* __cxa_get_globals() noexcept;
}  // namespace __cxxabiv1

namespace tsxhpc::sim {
namespace {

class FiberBackend;

/// Start-of-fiber handshake: set immediately before the first switch into a
/// fiber, read once at its entry point. thread_local so a fiber machine
/// nested inside a thread-backend machine stays correct.
thread_local FiberBackend* g_starting = nullptr;

}  // namespace

#if defined(__x86_64__)

extern "C" {
/// Save callee-saved registers + rsp into *save_sp, switch to restore_sp,
/// restore, return on the new stack. Defined in the asm block below.
void tsxhpc_ctx_swap(void** save_sp, void* restore_sp);
/// Entry point every new fiber "returns" into (see make_start_stack).
void tsxhpc_fiber_entry();
}

asm(R"(
  .text
  .globl tsxhpc_ctx_swap
  .type tsxhpc_ctx_swap, @function
tsxhpc_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
  .size tsxhpc_ctx_swap, .-tsxhpc_ctx_swap
)");

#endif  // __x86_64__

namespace {

class FiberBackend final : public ExecutionBackend {
 public:
  explicit FiberBackend(std::size_t stack_bytes)
      : stack_bytes_(stack_bytes < kMinStack ? kMinStack : stack_bytes) {}

  BackendKind kind() const override { return BackendKind::kFiber; }

  void run(int n, const std::function<void(ThreadId)>& body,
           ThreadId first) override {
    body_ = &body;
    fibers_.clear();
    fibers_.resize(n);
    switch_from_driver(first);
    // All fibers have exited (the last one switched back here); release
    // their stacks. The saved contexts pointing into them are dead.
    fibers_.clear();
    body_ = nullptr;
  }

  void transfer(ThreadId from, ThreadId to) override {
    prepare(to);
    swap_eh(fibers_[from].eh_state, fibers_[to].eh_state);
#if defined(__x86_64__)
    tsxhpc_ctx_swap(&fibers_[from].sp, fibers_[to].sp);
#else
    swapcontext(&fibers_[from].ctx, &fibers_[to].ctx);
#endif
  }

  void exit_transfer(ThreadId from, ThreadId to) override {
    if (to >= 0) {
      transfer(from, to);  // saved context is simply never resumed
    } else {
      swap_eh(fibers_[from].eh_state, driver_eh_);
#if defined(__x86_64__)
      tsxhpc_ctx_swap(&fibers_[from].sp, driver_sp_);
#else
      swapcontext(&fibers_[from].ctx, &driver_ctx_);
#endif
    }
  }

  /// Called from the entry shim: run the body of the fiber being started.
  void fiber_main() {
    const ThreadId t = start_tid_;
    (*body_)(t);
    // The engine's thread_main ends in exit_transfer and never returns
    // here; reaching this point means the token discipline was violated.
    std::abort();
  }

 private:
  static constexpr std::size_t kMinStack = 16 * 1024;
  /// Size of __cxa_eh_globals: a __cxa_exception* plus an unsigned count
  /// (padded). Copying by size keeps the struct opaque.
  static constexpr std::size_t kEhBytes = 2 * sizeof(void*);

  struct Fiber {
    // Default-initialized (not zeroed) stack, allocated on first start.
    std::unique_ptr<unsigned char[]> stack;
#if defined(__x86_64__)
    void* sp = nullptr;
#else
    ucontext_t ctx{};
#endif
    bool started = false;
    // Zero = "no exceptions in flight", the state of a fresh thread.
    unsigned char eh_state[kEhBytes] = {};
  };

  /// Park the outgoing context's EH globals and install the incoming ones.
  static void swap_eh(unsigned char* save, const unsigned char* restore) {
    void* g = static_cast<void*>(__cxxabiv1::__cxa_get_globals());
    std::memcpy(save, g, kEhBytes);
    std::memcpy(g, restore, kEhBytes);
  }

  void switch_from_driver(ThreadId first) {
    prepare(first);
    swap_eh(driver_eh_, fibers_[first].eh_state);
#if defined(__x86_64__)
    tsxhpc_ctx_swap(&driver_sp_, fibers_[first].sp);
#else
    swapcontext(&driver_ctx_, &fibers_[first].ctx);
#endif
  }

  /// Lay out `to`'s stack for its first activation, if it has none yet,
  /// and arm the start handshake. Always called immediately before the
  /// switch into `to`, so the handshake cannot be clobbered in between.
  void prepare(ThreadId to) {
    Fiber& f = fibers_[to];
    if (f.started) return;
    if (!f.stack) f.stack.reset(new unsigned char[stack_bytes_]);
#if defined(__x86_64__)
    // Frame for the initial "return" into tsxhpc_fiber_entry. The entry
    // address sits at a 16-byte-aligned slot so that after the six restore
    // pops and the ret, rsp % 16 == 8 — exactly the ABI state at a normal
    // function entry. Below it, six zeroed register slots (rbp = 0
    // terminates backtraces).
    auto top = reinterpret_cast<std::uintptr_t>(f.stack.get()) + stack_bytes_;
    std::uintptr_t entry_slot = (top - 64) & ~static_cast<std::uintptr_t>(15);
    auto* frame = reinterpret_cast<void**>(entry_slot);
    frame[0] = reinterpret_cast<void*>(&tsxhpc_fiber_entry);
    for (int i = 1; i <= 6; ++i) frame[-i] = nullptr;
    f.sp = frame - 6;
#else
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.get();
    f.ctx.uc_stack.ss_size = stack_bytes_;
    f.ctx.uc_link = &driver_ctx_;
    makecontext(&f.ctx, reinterpret_cast<void (*)()>(&fiber_entry_shim), 0);
#endif
    f.started = true;
    start_tid_ = to;
    g_starting = this;
  }

#if !defined(__x86_64__)
  static void fiber_entry_shim() {
    FiberBackend* self = g_starting;
    g_starting = nullptr;
    self->fiber_main();
  }
  ucontext_t driver_ctx_{};
#else
  void* driver_sp_ = nullptr;
#endif
  unsigned char driver_eh_[kEhBytes] = {};

  std::size_t stack_bytes_;
  std::vector<Fiber> fibers_;
  const std::function<void(ThreadId)>* body_ = nullptr;
  ThreadId start_tid_ = -1;
};

}  // namespace

#if defined(__x86_64__)
extern "C" void tsxhpc_fiber_entry() {
  FiberBackend* self = g_starting;
  g_starting = nullptr;
  self->fiber_main();
}
#endif

namespace detail {
std::unique_ptr<ExecutionBackend> make_fiber_backend(std::size_t stack_bytes) {
  return std::make_unique<FiberBackend>(stack_bytes);
}
}  // namespace detail

}  // namespace tsxhpc::sim
