// Machine configuration: core/cache geometry and cycle cost model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/alloc.h"
#include "sim/backend.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Telemetry;

/// Geometry and latency model of the simulated machine. Defaults model the
/// paper's part: an Intel 4th Generation Core (Haswell) with 4 cores x 2
/// HyperThreads and a 32 KB, 8-way, 64 B-line L1 data cache per core.
///
/// Latencies are first-order approximations of Haswell; the reproduction
/// depends on their *ratios* (atomic vs. transaction overhead, L1 hit vs.
/// cross-core transfer), not their absolute values.
/// Thread-to-core placement policy (paper Section 3: "we use thread
/// affinity to bind threads to cores so that as many cores are used as
/// possible").
enum class Affinity {
  kSpreadCores,  // fill distinct cores first (the paper's policy)
  kPackCores,    // fill HyperThread siblings first (for SMT ablations)
};

/// Thread/data mapping policy on a multi-socket topology (the benches'
/// `--map=` flag). The policy picks the *socket* a thread lands on and the
/// socket a DRAM line is homed to; within a socket, the Affinity policy
/// still orders cores and SMT siblings. On a single-socket machine all
/// three policies degenerate to the same historic placement, so the default
/// configuration is byte-identical to the pre-topology model.
enum class MapPolicy : std::uint8_t {
  kCompact,       // threads fill sockets in order; lines interleave
  kScatter,       // threads round-robin across sockets; lines interleave
  kSharingAware,  // compact placement + first-touch line homing
};

inline const char* to_string(MapPolicy map) {
  switch (map) {
    case MapPolicy::kCompact: return "compact";
    case MapPolicy::kScatter: return "scatter";
    case MapPolicy::kSharingAware: return "sharing-aware";
  }
  return "?";
}

/// Parse a `--map=` value; returns false (leaving `out` untouched) on an
/// unknown name so callers can print the valid set.
inline bool map_policy_from_string(const std::string& s, MapPolicy& out) {
  if (s == "compact") out = MapPolicy::kCompact;
  else if (s == "scatter") out = MapPolicy::kScatter;
  else if (s == "sharing-aware") out = MapPolicy::kSharingAware;
  else return false;
  return true;
}

/// Machine topology beyond the single shared LLC: sockets, LLC slices and
/// the interconnect hop costs between them. The default (1 socket, 1 slice)
/// is the paper's machine and reproduces the pre-topology model exactly: no
/// hop is ever charged and the slice hash is the identity.
///
/// Slices model a real sliced LLC (one slice per core complex on Intel
/// parts): each slice has the full configured `llc_bytes` geometry, so
/// adding slices scales aggregate LLC capacity the way adding core tiles
/// does on hardware — and each slice stays large enough to back an L1
/// inclusively. A line's slice is an address hash (llc_slice_of_line);
/// the coherence directory for a line lives in its slice's entries.
struct Topology {
  int num_sockets = 1;
  /// Cores per socket; 0 derives num_cores / num_sockets. When nonzero it
  /// must agree with num_cores (MemorySystem validates).
  int cores_per_socket = 0;
  /// Total LLC slices across the machine; must be a multiple of
  /// num_sockets (each socket hosts llc_slices / num_sockets of them).
  int llc_slices = 1;
  /// Extra cycles to reach a non-local slice on the requester's socket
  /// (ring/mesh hop, Haswell-order magnitude).
  Cycles lat_hop_slice = 12;
  /// Extra cycles to cross the socket interconnect (QPI-order magnitude):
  /// charged for remote-socket slices, remote-homed DRAM lines, and dirty
  /// lines forwarded from a remote socket's core.
  Cycles lat_hop_socket = 140;
  /// Thread/data mapping policy (--map=).
  MapPolicy map = MapPolicy::kCompact;
};

/// Address-hash slice selection: which LLC slice owns `line`. A pure
/// function of (line, slices) — an XOR-fold mix like Intel's slice hash —
/// so it is stable across runs, hosts and backends, and the identity on a
/// single-slice machine. Shared by MemorySystem (residency, directory,
/// hop charging) and AllocStrategy (slice-aware coloring).
inline int llc_slice_of_line(Addr line, int slices) {
  if (slices <= 1) return 0;
  std::uint64_t z = line * 0x9E3779B97F4A7C15ULL;
  z ^= z >> 29;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 32;
  return static_cast<int>(z % static_cast<std::uint64_t>(slices));
}

/// Which retry/backoff/fallback brain the elided primitives use
/// (sync::make_tx_policy). Lives on the machine config so one `--policy=`
/// flag reaches every ElidedLock/ElidedLockSet/TxMonitor a workload builds,
/// the same way the telemetry sink and backend do.
enum class TxPolicyKind : std::uint8_t {
  kPaper,         // Section 3 handler, bit-for-bit the pre-seam behaviour
  kNoHint,        // ignore the abort-status retry hint
  kExpoBackoff,   // exponential conflict backoff + deterministic jitter
  kAdaptiveSite,  // glibc-style per-site skip, doubling windows, all kinds
};

inline const char* to_string(TxPolicyKind kind) {
  switch (kind) {
    case TxPolicyKind::kPaper: return "paper";
    case TxPolicyKind::kNoHint: return "no-hint";
    case TxPolicyKind::kExpoBackoff: return "expo-backoff";
    case TxPolicyKind::kAdaptiveSite: return "adaptive-site";
  }
  return "?";
}

/// Parse a `--policy=` value; returns false (leaving `out` untouched) on an
/// unknown name so callers can print the valid set.
inline bool tx_policy_from_string(const std::string& s, TxPolicyKind& out) {
  if (s == "paper") out = TxPolicyKind::kPaper;
  else if (s == "no-hint") out = TxPolicyKind::kNoHint;
  else if (s == "expo-backoff") out = TxPolicyKind::kExpoBackoff;
  else if (s == "adaptive-site") out = TxPolicyKind::kAdaptiveSite;
  else return false;
  return true;
}

struct MachineConfig {
  // --- Topology -----------------------------------------------------------
  int num_cores = 4;
  int smt_per_core = 2;
  Affinity affinity = Affinity::kSpreadCores;
  /// Sockets, LLC slices, interconnect hops and the thread/data map. The
  /// default single-socket single-slice topology reproduces the historic
  /// model bit-for-bit.
  Topology topology;

  // --- L1 data cache (transactional buffering domain) ----------------------
  std::uint32_t l1_bytes = 32 * 1024;
  std::uint32_t l1_ways = 8;
  std::uint32_t line_bytes = 64;

  // --- Shared last-level cache ----------------------------------------------
  /// The LLC is a real modeled level (sets/ways/LRU, inclusive of the L1s)
  /// shared by all cores; the coherence directory lives in its entries. Like
  /// the L1 it is a *scaled* model: the workloads are scaled down from the
  /// paper's sizes, so the LLC is too (a full 8 MB Haswell L3 would never
  /// evict a scaled working set). Evicting a transactionally *read* line
  /// from the LLC is what exposes the secondary-tracking imprecision, so
  /// read-set capacity is a function of this geometry (see
  /// read_evict_abort_prob below and bench/ablation_hierarchy.cc).
  /// Default 40 KB / 10-way (64 sets): ~1.25x one L1, tuned so the scaled
  /// STAMP read sets overflow it the way the paper's full-size sets overflow
  /// the real tracking structure — labyrinth/bayes die single-threaded,
  /// vacation partially, everything else fits (Table 1 ordering).
  std::uint32_t llc_bytes = 40 * 1024;
  std::uint32_t llc_ways = 10;

  // --- Memory access latencies (cycles) ------------------------------------
  Cycles lat_l1_hit = 4;
  Cycles lat_llc_hit = 36;          // LLC hit: on-chip, not in any L1
  /// LLC miss, served by DRAM. Deliberately below Haswell's ~190 cycles:
  /// the modeled LLC is scaled down with the workloads (see llc_bytes), so
  /// capacity misses are proportionally more frequent than on the real
  /// 8 MB L3 — a scaled-down penalty keeps the aggregate memory-stall
  /// share of the cycle budget (and thus the paper's relative scheme
  /// orderings in Figures 5/6) in the realistic range.
  Cycles lat_mem = 88;
  Cycles lat_xfer_clean = 70;       // line shared-in from another core
  Cycles lat_xfer_dirty = 84;       // dirty line forwarded from another core

  // --- Synchronization instruction costs (cycles) ---------------------------
  /// Extra cost of a LOCK-prefixed RMW on top of the memory access itself.
  Cycles lat_atomic_rmw = 20;
  /// XBEGIN retire cost (checkpoint registers, enter transactional mode).
  Cycles lat_xbegin = 32;
  /// XEND retire cost (commit, make write set visible).
  Cycles lat_xend = 24;
  /// Rollback cost on abort: discard write set, restore checkpoint, redirect
  /// to fallback ip. Charged once per abort, plus pipeline-refill effects.
  Cycles lat_abort = 150;
  /// Cost of a kernel entry/exit (futex, file IO, mmap...).
  Cycles lat_syscall = 900;
  /// Additional cost to block (context switch away) in futex-wait, and to be
  /// woken (scheduled back in). The paper observes this sleep/wake delay
  /// dominates the TCP/IP stack critical path (Section 6.2).
  Cycles lat_block = 1800;
  Cycles lat_wake = 1800;

  // --- Transactional execution model ---------------------------------------
  /// Maximum supported transaction nesting depth (flat nesting).
  int max_nest_depth = 7;
  /// Probability that evicting a transactionally *read* line from the LLC
  /// aborts the reading transaction. Section 2: read lines evicted from the
  /// L1 move to a secondary tracking structure "and may result in an abort
  /// at some later time" — on Haswell that structure is imprecise
  /// (bloom-filter-like), so large read sets abort even single-threaded
  /// (Table 1: vacation 38%, bayes 64%, labyrinth 87% at 1 thread). In the
  /// hierarchy model the L1->secondary handoff itself is free; it is losing
  /// the line from the *LLC* (the level backing the tracker) that risks the
  /// abort, so read-set capacity tracks LLC geometry. The decision is a
  /// deterministic hash of (line, event counter): reproducible across runs
  /// and hosts.
  double read_evict_abort_prob = 0.05;

  // --- Scheduler -----------------------------------------------------------
  /// A running thread keeps the token until its virtual clock exceeds the
  /// minimum runnable clock by this many cycles. Smaller = finer-grain
  /// interleaving (and slower simulation). Always deterministic.
  Cycles sched_quantum = 200;
  /// Hard per-run cap on any thread's virtual clock; exceeding it raises
  /// SimError (livelock / runaway guard). 0 disables the guard.
  Cycles max_cycles = 0;

  /// Simulated core frequency, used only to convert cycles to seconds when
  /// reporting bandwidth numbers (Figure 6).
  double ghz = 3.4;

  // --- Execution backend ----------------------------------------------------
  /// How simulated threads are multiplexed onto the host: cooperative
  /// fibers on one host thread (default; a token handoff is a userspace
  /// context switch) or one OS thread per simulated thread with condvar
  /// handoff (kept for differential testing). Both produce identical
  /// interleavings, telemetry and makespans; only host wall-clock differs.
  /// The process-wide default honours TSXHPC_BACKEND=fiber|thread.
  BackendKind backend = default_backend();
  /// Retry/backoff/fallback policy for every elided primitive built over
  /// this machine (the benches' --policy= flag). The knob selects the
  /// *brain* (sync::TxPolicy); the per-primitive numbers still come from
  /// each workload's sync::ElisionPolicy.
  TxPolicyKind tx_policy = TxPolicyKind::kPaper;
  /// Placement strategy for named shared-heap allocations (the benches'
  /// --alloc= flag; see sim/alloc.h). kBump is bit-for-bit the historic
  /// layout — every committed telemetry baseline assumes it.
  AllocStrategyKind alloc_strategy = AllocStrategyKind::kBump;
  /// Stack bytes per fiber (fiber backend only). Fibers do not grow their
  /// stacks on demand the way OS threads do; raise this for workloads with
  /// deep recursion.
  std::size_t fiber_stack_bytes = 1024 * 1024;

  // --- Observability --------------------------------------------------------
  /// Optional telemetry sink. Riding on the config means every Machine a
  /// workload builds from this config reports to the same collector without
  /// threading an extra parameter through each workload entry point. Not
  /// owned; null (the default) disables all recording.
  Telemetry* telemetry = nullptr;

  /// Record per-cache-set counters (telemetry v6 `set_stats` block): per-set
  /// fills/hits/evictions/back-invalidations plus capacity-doom attribution,
  /// and per-object set spans. Off by default: the charging adds a counter
  /// bump per access, and the artifact grows by O(sets) per run.
  bool set_stats = false;

  int num_hw_threads() const { return num_cores * smt_per_core; }

  /// Cores per socket, resolving Topology::cores_per_socket = 0 to
  /// num_cores / num_sockets.
  int cores_per_socket() const {
    return topology.cores_per_socket > 0 ? topology.cores_per_socket
                                         : num_cores / topology.num_sockets;
  }
  int socket_of_core(int core) const { return core / cores_per_socket(); }
  int slices_per_socket() const {
    return topology.llc_slices / topology.num_sockets;
  }
  int socket_of_slice(int slice) const { return slice / slices_per_socket(); }
  /// The slice a core reaches without a hop: its socket's slices, assigned
  /// round-robin within the socket (core tiles pair with slice tiles).
  int local_slice_of_core(int core) const {
    return socket_of_slice_base(socket_of_core(core)) +
           (core % cores_per_socket()) % slices_per_socket();
  }
  int socket_of_slice_base(int socket) const {
    return socket * slices_per_socket();
  }
  int slice_of_line(Addr line) const {
    return llc_slice_of_line(line, topology.llc_slices);
  }

  /// Core hosting hardware thread t. The MapPolicy picks the socket
  /// (compact/sharing-aware fill sockets in order, scatter round-robins);
  /// the Affinity policy orders cores and SMT siblings within the socket.
  /// Under kSpreadCores a 4-thread run puts one thread on each core and an
  /// 8-thread run puts two; under kPackCores threads 0 and 1 are siblings.
  /// On one socket every map degenerates to the historic formula.
  int core_of(ThreadId t) const {
    const int sockets = topology.num_sockets;
    const int cps = cores_per_socket();
    int s, j;  // socket; thread index within the socket's fill order
    if (topology.map == MapPolicy::kScatter) {
      s = t % sockets;
      j = t / sockets;
    } else {
      const int per_socket = cps * smt_per_core;
      s = (t / per_socket) % sockets;
      j = t % per_socket;
    }
    const int local = affinity == Affinity::kSpreadCores
                          ? j % cps
                          : (j / smt_per_core) % cps;
    return s * cps + local;
  }
  int socket_of_thread(ThreadId t) const { return socket_of_core(core_of(t)); }

  std::uint32_t l1_sets() const { return l1_bytes / (l1_ways * line_bytes); }
  std::uint32_t llc_sets() const {
    return llc_bytes / (llc_ways * line_bytes);
  }
  Addr line_of(Addr a) const { return a / line_bytes; }
};

}  // namespace tsxhpc::sim
