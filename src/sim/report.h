// Human-readable analysis of tsxhpc artifacts: per-run telemetry reports
// (tsxhpc-telemetry-v*) and grid views over merged sweep artifacts
// (tsxhpc-sweep-v1). Both consumers — the tools/tsx_report CLI (from a JSON
// file) and bench --report (from the in-process Telemetry, serialized and
// re-parsed) — go through this one code path, so the numbers they print are
// identical by construction.
#pragma once

#include <string>

#include "sim/json_parse.h"

namespace tsxhpc::sim {

struct ReportOptions {
  std::size_t top_lines = 10;  // conflict/capacity lines to show per run
};

/// Regression thresholds for diff mode, in percentage points.
struct DiffThresholds {
  double abort_rate_pp = 1.0;
  double wasted_cycle_pp = 1.0;
};

/// True if `doc` looks like a telemetry artifact this report understands.
bool is_telemetry_doc(const JsonValue& doc);

/// True if `doc` is a merged tsxhpc-sweep-v1 grid artifact.
bool is_sweep_doc(const JsonValue& doc);

/// Render the report for one parsed artifact.
std::string render_report(const JsonValue& doc, const ReportOptions& opt = {});

/// Compare `cur` against `base` run-by-run (matched by label). Appends the
/// comparison to `out` and returns the number of failures: regressions
/// (abort rate or wasted-cycle fraction grew past a threshold) plus
/// label-set mismatches — a run present on one side only is a failure, not
/// a skip, so an artifact that silently drops runs cannot pass the gate.
int render_diff(const JsonValue& base, const JsonValue& cur,
                const DiffThresholds& thr, std::string& out);

/// Render terminal per-set heatmaps from a v5 artifact's `set_stats` block:
/// per-level occupancy, eviction-pressure and capacity-abort density rows
/// (one glyph per set), plus the named objects spanning the hottest sets.
/// `level_filter` selects levels: "all", "l1" (every L1 instance), "llc",
/// or an exact instance name like "l1.c0". Returns false — with an
/// explanatory message appended — when the artifact has no set_stats block
/// (run without --set-stats) or the filter matches no level.
bool render_set_heatmaps(const JsonValue& doc, const std::string& level_filter,
                         std::string& out);

/// Self-contained HTML dashboard (report_html.cc): inline CSS + SVG, zero
/// external dependencies, deterministic bytes. Telemetry artifacts get
/// per-run set heatmaps (when present), interval time series and per-site
/// policy tables; sweep artifacts additionally get scaling curves.
std::string render_html(const JsonValue& doc);

/// Render the grid view of a sweep artifact: the axes, a per-cell summary
/// table, and — when the grid has a "threads" axis — makespan/speedup
/// scaling curves per combination of the remaining axes.
std::string render_sweep_report(const JsonValue& doc);

/// Append a two-axis pivot table of `metric` over the grid to `out`: rows
/// are `axis_a` values, columns `axis_b` values; cells averaging over any
/// remaining axes. Metrics: abort-rate, wasted, makespan, commits, or a
/// cycle bucket (work, tx_committed, tx_wasted, lock_wait, fallback,
/// mem_stall) as a percentage of total cycles. False (with a message
/// appended) on an unknown axis or metric.
bool render_sweep_pivot(const JsonValue& doc, const std::string& axis_a,
                        const std::string& axis_b, const std::string& metric,
                        std::string& out);

/// Compare two sweep artifacts cell-by-cell. Axis-set or cell-label-set
/// mismatch (missing/extra cell, differing axis names or value lists) is a
/// failure; matching cells diff their embedded runs with the same
/// thresholds and label-set rules as render_diff. Returns the failure
/// count.
int render_sweep_diff(const JsonValue& base, const JsonValue& cur,
                      const DiffThresholds& thr, std::string& out);

}  // namespace tsxhpc::sim
