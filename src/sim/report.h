// Human-readable analysis of a tsxhpc-telemetry-v3 artifact: the abort-cause
// tree, top conflicting lines with object attribution, per-thread cycle
// accounting, and per-lock-site elision economics. Both consumers — the
// tools/tsx_report CLI (from a JSON file) and bench --report (from the
// in-process Telemetry, serialized and re-parsed) — go through this one
// code path, so the numbers they print are identical by construction.
#pragma once

#include <string>

#include "sim/json_parse.h"

namespace tsxhpc::sim {

struct ReportOptions {
  std::size_t top_lines = 10;  // conflict/capacity lines to show per run
};

/// Regression thresholds for diff mode, in percentage points.
struct DiffThresholds {
  double abort_rate_pp = 1.0;
  double wasted_cycle_pp = 1.0;
};

/// True if `doc` looks like a telemetry artifact this report understands.
bool is_telemetry_doc(const JsonValue& doc);

/// Render the report for one parsed artifact.
std::string render_report(const JsonValue& doc, const ReportOptions& opt = {});

/// Compare `cur` against `base` run-by-run (matched by label). Appends the
/// comparison to `out` and returns the number of regressions: runs where
/// the abort rate or the wasted-cycle fraction grew by more than the
/// threshold.
int render_diff(const JsonValue& base, const JsonValue& cur,
                const DiffThresholds& thr, std::string& out);

}  // namespace tsxhpc::sim
