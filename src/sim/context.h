// Context: the per-simulated-thread execution handle. All timed work a
// workload performs — compute, shared loads/stores, atomics, RTM
// instructions, syscalls, futex — goes through this API.
#pragma once

#include <cstdint>

#include "sim/stats.h"
#include "sim/types.h"

namespace tsxhpc::sim {

class Machine;

class Context {
 public:
  Context(Machine& m, ThreadId tid) : m_(m), tid_(tid) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  ThreadId tid() const { return tid_; }
  int num_threads() const;
  Machine& machine() { return m_; }
  Cycles now() const;

  /// Local (non-shared) computation: advance virtual time only.
  void compute(Cycles cycles);

  // --- Timed shared-memory accesses ---------------------------------------
  std::uint64_t load(Addr a, unsigned size = 8);
  void store(Addr a, std::uint64_t v, unsigned size = 8);

  /// LOCK-prefixed fetch-and-add; returns the *old* value.
  std::uint64_t fetch_add(Addr a, std::int64_t delta, unsigned size = 8);
  /// LOCK-prefixed compare-and-swap; returns success.
  bool cas(Addr a, std::uint64_t expected, std::uint64_t desired,
           unsigned size = 8);
  /// LOCK-prefixed exchange; returns the old value.
  std::uint64_t exchange(Addr a, std::uint64_t v, unsigned size = 8);
  /// LOCK-prefixed bitwise-or (used by lock-free algorithms).
  std::uint64_t fetch_or(Addr a, std::uint64_t bits, unsigned size = 8);

  /// Bulk copies, charged per cache line. Base and size must be 8-aligned.
  void load_bytes(Addr a, void* dst, std::size_t n);
  void store_bytes(Addr a, const void* src, std::size_t n);

  // --- Restricted Transactional Memory ------------------------------------
  /// XBEGIN. On abort, control returns to the retry loop *by throwing
  /// TxAbort* from whichever simulator call observed the abort condition —
  /// the software analogue of the hardware rolling back to the fallback ip.
  void xbegin();
  /// XEND: commit. Throws TxAbort if the transaction was doomed in flight.
  void xend();
  /// XABORT imm8.
  [[noreturn]] void xabort(std::uint8_t code);
  bool in_txn() const;
  /// Lines currently in the transactional read+write sets (testing hook).
  std::size_t txn_footprint_lines() const;

  /// Inter-retry backoff charged by the elision policy after an abort.
  /// Advances virtual time like compute(), but books the cycles into the
  /// kTxWasted bucket (and the backoff_cycles sub-counter): the delay exists
  /// only because a transaction aborted, so it is abort waste, not work or
  /// lock-hold contention. Must be called outside any transaction.
  void tx_backoff(Cycles cycles);

  // --- Kernel interaction ---------------------------------------------------
  /// Any system call. Inside a transaction this aborts it (Section 2:
  /// "instructions that may always abort (e.g., system calls)").
  void syscall(Cycles extra_cost = 0);

  /// futex(FUTEX_WAIT): blocks iff *addr == expected, else returns
  /// immediately (EAGAIN). Must not be called inside a transaction.
  void futex_wait(Addr addr, std::uint32_t expected);
  /// futex(FUTEX_WAKE): wakes up to `count` waiters, returns number woken.
  int futex_wake(Addr addr, int count);

  /// Cooperative fine-grain reschedule point (precise interleaving).
  void yield();

  ThreadStats& stats();

  // --- Cycle-accounting scopes ---------------------------------------------
  // While a scope is active, cycles the thread spends outside transactions
  // are classified as lock-wait (spinning for a lock) or serialized-fallback
  // (running a critical section under the fallback lock) instead of work.
  // Scopes nest; the sync layer opens them around spin loops and fallback
  // critical sections.
  class LockWaitScope {
   public:
    explicit LockWaitScope(Context& c) : c_(c) { c_.lock_wait_depth_++; }
    ~LockWaitScope() { c_.lock_wait_depth_--; }
    LockWaitScope(const LockWaitScope&) = delete;
    LockWaitScope& operator=(const LockWaitScope&) = delete;

   private:
    Context& c_;
  };
  class FallbackScope {
   public:
    explicit FallbackScope(Context& c) : c_(c) { c_.fallback_depth_++; }
    ~FallbackScope() { c_.fallback_depth_--; }
    FallbackScope(const FallbackScope&) = delete;
    FallbackScope& operator=(const FallbackScope&) = delete;

   private:
    Context& c_;
  };

 private:
  /// If a remote conflict doomed our transaction, roll back and throw.
  void check_doom();
  /// Cycle-accounting / tracing hooks around transactional regions.
  void tx_account_start();
  void tx_account_end(bool committed, AbortCause cause,
                      std::uint32_t read_lines, std::uint32_t write_lines);

  /// Classify `c` cycles that were just charged to the clock. Inside a
  /// transaction the cycles accumulate in tx_pending_ and are flushed to
  /// kTxCommitted / kTxWasted when the outcome is known; outside, kWork and
  /// kMemStall defaults are overridden by an active lock-wait or fallback
  /// scope. Every Engine::advance in this class is paired with exactly one
  /// charge so the buckets sum to end_cycle.
  void charge(Cycles c, CycleBucket dflt);
  /// Memory-access latency: the L1-hit portion is work, the excess is stall,
  /// attributed to the hierarchy level that served the access (the per-level
  /// breakdown only counts stalls that actually land in kMemStall — cycles
  /// rerouted to lock-wait/fallback scopes are excluded the same way).
  void charge_mem(Cycles lat, MemLevel level);

  Machine& m_;
  ThreadId tid_;
  Cycles tx_start_clock_ = 0;
  Cycles tx_pending_ = 0;
  int lock_wait_depth_ = 0;
  int fallback_depth_ = 0;
};

}  // namespace tsxhpc::sim
