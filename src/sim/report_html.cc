// Self-contained HTML dashboard for tsxhpc artifacts (tsx_report --html=).
//
// Everything is generated inline — CSS in a <style> block, charts as inline
// SVG — so the output is one file with zero external dependencies that
// renders offline and uploads cleanly as a CI artifact. All numbers come
// from the deterministic JSON artifact and are formatted with fixed
// precision, so the dashboard bytes are deterministic too.
//
// Telemetry artifacts (tsxhpc-telemetry-v*) get, per run: a summary strip,
// the concurrency-control table (v7 `cc` block, when present),
// topology-resolved slice/socket tables (v6, sliced/multi-socket machines
// only), per-set heatmaps (v5 `set_stats` block, when present) with
// named-object spans, the interval-sample time series, and the per-site
// policy table; multi-run topology artifacts additionally get makespan
// scaling curves per (map, slices, sockets) combination. Sweep artifacts
// (tsxhpc-sweep-v1) get the per-cell summary plus makespan scaling curves
// along the "threads" axis.
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "sim/report.h"

namespace tsxhpc::sim {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::vector<std::uint64_t> u64_column(const JsonValue& obj, const char* key) {
  const JsonValue& arr = obj[key];
  std::vector<std::uint64_t> v(arr.size(), 0);
  for (std::size_t i = 0; i < arr.size(); ++i) v[i] = arr.at(i).as_u64();
  return v;
}

std::uint64_t vmax(const std::vector<std::uint64_t>& v) {
  std::uint64_t m = 0;
  for (std::uint64_t x : v) m = std::max(m, x);
  return m;
}

// --- SVG pieces -----------------------------------------------------------

/// One heatmap strip: `sets` cells, intensity = value/max on the given base
/// color (r,g,b at full intensity over a near-white background).
void svg_heat_row(std::string& out, const std::vector<std::uint64_t>& v,
                  std::uint64_t max, int y, int r, int g, int b,
                  const char* label) {
  const int cell = 9, h = 14;
  appendf(out,
          "<text x=\"0\" y=\"%d\" class=\"lbl\">%s</text>", y + h - 3, label);
  for (std::size_t s = 0; s < v.size(); ++s) {
    const double t =
        max == 0 ? 0.0 : static_cast<double>(v[s]) / static_cast<double>(max);
    const int cr = 245 + static_cast<int>(t * (r - 245));
    const int cg = 245 + static_cast<int>(t * (g - 245));
    const int cb = 245 + static_cast<int>(t * (b - 245));
    appendf(out,
            "<rect x=\"%zu\" y=\"%d\" width=\"%d\" height=\"%d\" "
            "fill=\"rgb(%d,%d,%d)\"><title>set %zu: %llu</title></rect>",
            90 + s * cell, y, cell - 1, h - 1, cr, cg, cb, s,
            static_cast<unsigned long long>(v[s]));
  }
}

/// Normalized polyline for one sample column.
void svg_series(std::string& out, const std::vector<std::uint64_t>& v,
                int w, int h, const char* color) {
  if (v.empty()) return;
  const std::uint64_t max = vmax(v);
  std::string pts;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double x = v.size() == 1
                         ? 0.0
                         : static_cast<double>(i) * w /
                               static_cast<double>(v.size() - 1);
    const double y =
        max == 0 ? h
                 : h - static_cast<double>(v[i]) * h / static_cast<double>(max);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
    pts += buf;
  }
  appendf(out,
          "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" "
          "points=\"%s\"/>",
          color, pts.c_str());
}

// --- Telemetry sections ---------------------------------------------------

void emit_run_summary(std::string& out, const JsonValue& run) {
  const JsonValue& totals = run["totals"];
  out += "<div class=\"cards\">";
  const struct {
    const char* label;
    std::string value;
  } cards[] = {
      {"makespan", std::to_string(run["makespan"].as_u64())},
      {"threads", std::to_string(run["num_threads"].as_u64())},
      {"tx started", std::to_string(totals["tx_started"].as_u64())},
      {"tx committed", std::to_string(totals["tx_committed"].as_u64())},
      {"abort rate",
       [&] {
         char b[32];
         std::snprintf(b, sizeof(b), "%.2f%%",
                       totals["abort_rate_pct"].as_double());
         return std::string(b);
       }()},
      {"wasted cycles",
       [&] {
         char b[32];
         std::snprintf(b, sizeof(b), "%.2f%%",
                       totals["wasted_cycle_pct"].as_double());
         return std::string(b);
       }()},
  };
  for (const auto& c : cards) {
    appendf(out,
            "<div class=\"card\"><div class=\"k\">%s</div>"
            "<div class=\"v\">%s</div></div>",
            c.label, c.value.c_str());
  }
  out += "</div>";
}

/// Topology-resolved tables (v6 artifacts): per-slice and per-socket event
/// counters plus the hop summary. Skipped for the default 1-socket/1-slice
/// machine, whose reports look exactly as they always did.
void emit_topology(std::string& out, const JsonValue& run) {
  const JsonValue& topo = run["topology"];
  if (!topo.is_object()) return;
  const std::uint64_t sockets = topo["sockets"].as_u64();
  const std::uint64_t slices = topo["slices"].as_u64();
  if (sockets <= 1 && slices <= 1) return;
  appendf(out,
          "<h3>Topology</h3><div class=\"legend\">%llu socket(s) × %llu "
          "cores/socket, %llu LLC slice(s), map=%s, hop cycles "
          "slice=%llu/socket=%llu</div>",
          static_cast<unsigned long long>(sockets),
          static_cast<unsigned long long>(topo["cores_per_socket"].as_u64()),
          static_cast<unsigned long long>(slices),
          html_escape(topo["map"].as_string()).c_str(),
          static_cast<unsigned long long>(topo["lat_hop_slice"].as_u64()),
          static_cast<unsigned long long>(topo["lat_hop_socket"].as_u64()));
  const JsonValue& ss = topo["slice_stats"];
  if (ss.size() != 0) {
    out += "<table><tr><th>slice</th><th>hits</th><th>misses</th>"
           "<th>evictions</th><th>xfers</th></tr>";
    for (std::size_t s = 0; s < ss.size(); ++s) {
      const JsonValue& sl = ss.at(s);
      appendf(out,
              "<tr><td>s%zu</td><td>%llu</td><td>%llu</td><td>%llu</td>"
              "<td>%llu</td></tr>",
              s, static_cast<unsigned long long>(sl["hits"].as_u64()),
              static_cast<unsigned long long>(sl["misses"].as_u64()),
              static_cast<unsigned long long>(sl["evictions"].as_u64()),
              static_cast<unsigned long long>(sl["xfers"].as_u64()));
    }
    out += "</table>";
  }
  const JsonValue& so = topo["socket_stats"];
  if (so.size() != 0) {
    out += "<table><tr><th>socket</th><th>accesses</th><th>dram local</th>"
           "<th>dram remote</th><th>slice hops</th><th>socket hops</th></tr>";
    for (std::size_t s = 0; s < so.size(); ++s) {
      const JsonValue& sk = so.at(s);
      appendf(out,
              "<tr><td>%zu</td><td>%llu</td><td>%llu</td><td>%llu</td>"
              "<td>%llu</td><td>%llu</td></tr>",
              s, static_cast<unsigned long long>(sk["accesses"].as_u64()),
              static_cast<unsigned long long>(sk["dram_local"].as_u64()),
              static_cast<unsigned long long>(sk["dram_remote"].as_u64()),
              static_cast<unsigned long long>(sk["slice_hops"].as_u64()),
              static_cast<unsigned long long>(sk["socket_hops"].as_u64()));
    }
    out += "</table>";
  }
}

/// Scaling curves over a multi-run topology artifact (ablation_topology's
/// internal map × threads sweep) or a sweep grid whose cells carry such
/// runs: one makespan polyline per (map, slices, sockets) combination, x
/// ordered by each run's thread count. Emitted only when some combination
/// has at least two runs.
void emit_topology_scaling(std::string& out, const JsonValue& doc) {
  std::map<std::string, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      groups;  // key -> (threads, makespan)
  const auto collect = [&groups](const JsonValue& runs) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const JsonValue& run = runs.at(i);
      const JsonValue& topo = run["topology"];
      if (!topo.is_object()) continue;
      if (topo["sockets"].as_u64() <= 1 && topo["slices"].as_u64() <= 1) {
        continue;
      }
      const std::string key =
          topo["map"].as_string() + "/s" +
          std::to_string(topo["slices"].as_u64()) + "/" +
          std::to_string(topo["sockets"].as_u64()) + "skt";
      groups[key].emplace_back(run["num_threads"].as_u64(),
                               run["makespan"].as_u64());
    }
  };
  collect(doc["runs"]);
  const JsonValue& cells = doc["cells"];
  for (std::size_t c = 0; c < cells.size(); ++c) {
    collect(cells.at(c)["telemetry"]["runs"]);
  }
  bool any = false;
  for (const auto& [key, points] : groups) any |= points.size() >= 2;
  if (!any) return;
  out += "<section><h2>Topology scaling</h2><h3>Makespan vs sockets × "
         "threads</h3>";
  static const char* kPalette[] = {"#2a7a2a", "#c03030", "#3050c0", "#c08020",
                                   "#703090", "#208080", "#806020", "#404040"};
  appendf(out, "<svg width=\"640\" height=\"160\" class=\"chart\">");
  std::size_t ci = 0;
  for (auto& [key, points] : groups) {
    std::sort(points.begin(), points.end());
    std::vector<std::uint64_t> series;
    for (const auto& [threads, makespan] : points) series.push_back(makespan);
    svg_series(out, series, 630, 150, kPalette[ci % 8]);
    ci++;
  }
  out += "</svg><div class=\"legend\">";
  ci = 0;
  for (const auto& [key, points] : groups) {
    appendf(out, "<span style=\"color:%s\">— %s</span> ", kPalette[ci % 8],
            html_escape(key).c_str());
    ci++;
  }
  out += "(x: thread counts ascending; y: makespan, each line normalized to "
         "its own max)</div></section>";
}

void emit_set_heatmaps(std::string& out, const JsonValue& run) {
  const JsonValue& ss = run["set_stats"];
  if (!ss.is_object()) return;
  out += "<h3>Per-set heatmaps</h3>";
  const JsonValue& levels = ss["levels"];
  for (std::size_t li = 0; li < levels.size(); ++li) {
    const JsonValue& lv = levels.at(li);
    const auto occupancy = u64_column(lv, "occupancy");
    const auto evictions = u64_column(lv, "evictions");
    const auto w_dooms = u64_column(lv, "capacity_write_dooms");
    const auto r_dooms = u64_column(lv, "capacity_read_dooms");
    std::vector<std::uint64_t> dooms(occupancy.size(), 0);
    for (std::size_t s = 0; s < dooms.size(); ++s) {
      dooms[s] = w_dooms[s] + r_dooms[s];
    }
    const std::size_t sets = occupancy.size();
    appendf(out, "<div class=\"lvl\"><b>%s</b> (%llu sets × %llu ways)",
            html_escape(lv["level"].as_string()).c_str(),
            static_cast<unsigned long long>(lv["sets"].as_u64()),
            static_cast<unsigned long long>(lv["ways"].as_u64()));
    appendf(out, "<svg width=\"%zu\" height=\"48\">", 90 + sets * 9 + 4);
    svg_heat_row(out, occupancy, lv["ways"].as_u64(), 0, 40, 90, 200,
                 "occupancy");
    svg_heat_row(out, evictions, vmax(evictions), 16, 230, 140, 30,
                 "evictions");
    svg_heat_row(out, dooms, vmax(dooms), 32, 200, 40, 40, "dooms");
    out += "</svg></div>";
  }
  const JsonValue& objects = ss["objects"];
  if (objects.size() != 0) {
    out += "<table><tr><th>object</th><th>bytes</th><th>lines</th>"
           "<th>l1 sets</th><th>llc sets</th></tr>";
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const JsonValue& o = objects.at(i);
      appendf(out,
              "<tr><td>%s</td><td>%llu</td><td>%llu</td>"
              "<td>%llu+%llu</td><td>%llu+%llu</td></tr>",
              html_escape(o["name"].as_string()).c_str(),
              static_cast<unsigned long long>(o["bytes"].as_u64()),
              static_cast<unsigned long long>(o["lines"].as_u64()),
              static_cast<unsigned long long>(o["l1_set_start"].as_u64()),
              static_cast<unsigned long long>(o["l1_sets_covered"].as_u64()),
              static_cast<unsigned long long>(o["llc_set_start"].as_u64()),
              static_cast<unsigned long long>(o["llc_sets_covered"].as_u64()));
    }
    out += "</table>";
  }
}

/// Concurrency-control table (v7 `cc` block): the CcBackend seam's
/// region-level attempt chain and abort classes, plus whichever
/// scheme-specific extras are nonzero (TicToc rts extensions, MVCC
/// snapshot/version/GC accounting).
void emit_cc(std::string& out, const JsonValue& run) {
  const JsonValue& cc = run["cc"];
  if (!cc.is_object()) return;
  const JsonValue& cls = cc["aborts_by_class"];
  appendf(out,
          "<h3>Concurrency control <small>(%s)</small></h3>"
          "<table><tr><th>starts</th><th>commits</th><th>aborts</th>"
          "<th>abort rate</th><th>read-val</th><th>lock-acq</th>"
          "<th>commit-val</th></tr>"
          "<tr><td>%llu</td><td>%llu</td><td>%llu</td><td>%.2f%%</td>"
          "<td>%llu</td><td>%llu</td><td>%llu</td></tr></table>",
          html_escape(cc["scheme"].as_string()).c_str(),
          static_cast<unsigned long long>(cc["starts"].as_u64()),
          static_cast<unsigned long long>(cc["commits"].as_u64()),
          static_cast<unsigned long long>(cc["aborts"].as_u64()),
          cc["abort_rate_pct"].as_double(),
          static_cast<unsigned long long>(cls["read_validation"].as_u64()),
          static_cast<unsigned long long>(cls["lock_acquire"].as_u64()),
          static_cast<unsigned long long>(cls["commit_validation"].as_u64()));
  if (cc["read_set_extensions"].as_u64() != 0) {
    appendf(out, "<div class=\"legend\">rts extensions: %llu</div>",
            static_cast<unsigned long long>(
                cc["read_set_extensions"].as_u64()));
  }
  if (cc["snapshot_commits"].as_u64() != 0 ||
      cc["versions_created"].as_u64() != 0) {
    appendf(out,
            "<div class=\"legend\">mvcc: snapshot-commits=%llu "
            "versions=%llu chain-hops=%llu depth-max=%llu gc-runs=%llu "
            "gc-reclaims=%llu</div>",
            static_cast<unsigned long long>(cc["snapshot_commits"].as_u64()),
            static_cast<unsigned long long>(cc["versions_created"].as_u64()),
            static_cast<unsigned long long>(
                cc["version_chain_hops"].as_u64()),
            static_cast<unsigned long long>(
                cc["version_chain_depth_max"].as_u64()),
            static_cast<unsigned long long>(cc["gc_runs"].as_u64()),
            static_cast<unsigned long long>(cc["gc_reclaims"].as_u64()));
  }
}

void emit_samples(std::string& out, const JsonValue& run) {
  const JsonValue& samples = run["samples"];
  if (!samples.is_object() || samples["count"].as_u64() == 0) return;
  out += "<h3>Interval time series</h3>";
  const struct {
    const char* key;
    const char* color;
  } series[] = {
      {"tx_committed", "#2a7a2a"}, {"tx_aborted", "#c03030"},
      {"llc_misses", "#3050c0"},   {"mem_stall", "#c08020"},
  };
  appendf(out, "<svg width=\"640\" height=\"130\" class=\"chart\">");
  for (const auto& s : series) {
    svg_series(out, u64_column(samples, s.key), 630, 120, s.color);
  }
  out += "</svg><div class=\"legend\">";
  for (const auto& s : series) {
    appendf(out, "<span style=\"color:%s\">— %s</span> ", s.color, s.key);
  }
  appendf(out, "(interval=%llu cycles, %llu buckets; each line normalized "
               "to its own max)</div>",
          static_cast<unsigned long long>(samples["interval_cycles"].as_u64()),
          static_cast<unsigned long long>(samples["count"].as_u64()));
}

void emit_locks(std::string& out, const JsonValue& run) {
  const JsonValue& locks = run["locks"];
  if (locks.size() == 0) return;
  out += "<h3>Lock sites &amp; policy decisions</h3>"
         "<table><tr><th>site</th><th>kind</th><th>acquires</th>"
         "<th>elided</th><th>fallbacks</th><th>elision</th><th>aborts</th>"
         "<th>retry</th><th>backoff</th><th>lock-wait</th><th>fallback</th>"
         "<th>skip</th></tr>";
  for (std::size_t i = 0; i < locks.size(); ++i) {
    const JsonValue& lk = locks.at(i);
    const JsonValue& p = lk["policy"];
    appendf(out,
            "<tr><td>%s</td><td>%s</td><td>%llu</td><td>%llu</td>"
            "<td>%llu</td><td>%.1f%%</td><td>%llu</td><td>%llu</td>"
            "<td>%llu</td><td>%llu</td><td>%llu</td><td>%llu</td></tr>",
            html_escape(lk["site"].as_string()).c_str(),
            html_escape(lk["kind"].as_string()).c_str(),
            static_cast<unsigned long long>(lk["acquires"].as_u64()),
            static_cast<unsigned long long>(lk["elided_commits"].as_u64()),
            static_cast<unsigned long long>(lk["fallback_acquires"].as_u64()),
            lk["elision_rate_pct"].as_double(),
            static_cast<unsigned long long>(lk["tx_aborts"].as_u64()),
            static_cast<unsigned long long>(p["retries"].as_u64()),
            static_cast<unsigned long long>(p["backoffs"].as_u64()),
            static_cast<unsigned long long>(p["lock_waits"].as_u64()),
            static_cast<unsigned long long>(p["fallbacks"].as_u64()),
            static_cast<unsigned long long>(p["skips"].as_u64()));
  }
  out += "</table>";
}

void emit_telemetry_doc(std::string& out, const JsonValue& doc) {
  const JsonValue& runs = doc["runs"];
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const JsonValue& run = runs.at(i);
    appendf(out, "<section><h2>run %s <small>(%s backend)</small></h2>",
            html_escape(run["label"].as_string()).c_str(),
            html_escape(run["backend"].as_string()).c_str());
    emit_run_summary(out, run);
    emit_cc(out, run);
    emit_topology(out, run);
    emit_set_heatmaps(out, run);
    emit_samples(out, run);
    emit_locks(out, run);
    out += "</section>";
  }
  emit_topology_scaling(out, doc);
}

// --- Sweep sections -------------------------------------------------------

void emit_sweep_doc(std::string& out, const JsonValue& doc) {
  const JsonValue& cells = doc["cells"];
  appendf(out, "<section><h2>sweep %s <small>(scale %s, %zu cells)</small>"
               "</h2>",
          html_escape(doc["sweep"].as_string()).c_str(),
          html_escape(doc["scale"].as_string()).c_str(), cells.size());

  // Per-cell summary table.
  out += "<table><tr><th>cell</th><th>makespan</th><th>abort rate</th>"
         "<th>wasted</th></tr>";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cells.at(i);
    const JsonValue& run = cell["telemetry"]["runs"].at(0);
    appendf(out,
            "<tr><td>%s</td><td>%llu</td><td>%.2f%%</td><td>%.2f%%</td></tr>",
            html_escape(cell["cell"].as_string()).c_str(),
            static_cast<unsigned long long>(run["makespan"].as_u64()),
            run["totals"]["abort_rate_pct"].as_double(),
            run["totals"]["wasted_cycle_pct"].as_double());
  }
  out += "</table>";

  // Scaling curves along the "threads" axis: one polyline of makespan per
  // combination of the remaining axes (groups keyed by the cell label with
  // the threads coordinate removed).
  const JsonValue& axes = doc["axes"];
  std::size_t threads_axis = axes.size();
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (axes.at(a)["axis"].as_string() == "threads") threads_axis = a;
  }
  if (threads_axis == axes.size()) {
    // No threads axis (e.g. the topology grid sweeps map × slices and each
    // cell's bench scales threads internally) — the topology scaling
    // section below still gets its shot at the per-cell runs.
    out += "</section>";
    emit_topology_scaling(out, doc);
    return;
  }
  std::map<std::string, std::vector<std::uint64_t>> groups;  // key -> series
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const JsonValue& cell = cells.at(i);
    std::string key;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      if (a == threads_axis) continue;
      const std::string& ax = axes.at(a)["axis"].as_string();
      if (!key.empty()) key += "/";
      key += ax + "=" + cell["coords"][ax].as_string();
    }
    groups[key].push_back(
        cell["telemetry"]["runs"].at(0)["makespan"].as_u64());
  }
  out += "<h3>Makespan vs threads</h3>";
  static const char* kPalette[] = {"#2a7a2a", "#c03030", "#3050c0", "#c08020",
                                   "#703090", "#208080", "#806020", "#404040"};
  appendf(out, "<svg width=\"640\" height=\"160\" class=\"chart\">");
  std::size_t ci = 0;
  for (const auto& [key, series] : groups) {
    svg_series(out, series, 630, 150, kPalette[ci % 8]);
    ci++;
  }
  out += "</svg><div class=\"legend\">";
  ci = 0;
  for (const auto& [key, series] : groups) {
    appendf(out, "<span style=\"color:%s\">— %s</span> ", kPalette[ci % 8],
            html_escape(key).c_str());
    ci++;
  }
  out += "(x: threads-axis values in grid order; y: makespan, each line "
         "normalized to its own max)</div></section>";
  emit_topology_scaling(out, doc);
}

}  // namespace

std::string render_html(const JsonValue& doc) {
  const bool sweep = is_sweep_doc(doc);
  std::string out;
  out +=
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
      "<title>tsxhpc report</title><style>"
      "body{font-family:system-ui,sans-serif;margin:24px;color:#222}"
      "h2{border-bottom:1px solid #ddd;padding-bottom:4px}"
      "small{color:#888;font-weight:normal}"
      "table{border-collapse:collapse;margin:8px 0;font-size:13px}"
      "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}"
      "td:first-child,th:first-child{text-align:left}"
      ".cards{display:flex;gap:12px;flex-wrap:wrap;margin:8px 0}"
      ".card{border:1px solid #ddd;border-radius:6px;padding:6px 12px}"
      ".card .k{font-size:11px;color:#888}.card .v{font-size:17px}"
      ".lvl{margin:6px 0}.lbl{font-size:10px;fill:#555}"
      ".chart{border:1px solid #eee;margin-top:4px}"
      ".legend{font-size:12px;color:#555;margin-bottom:10px}"
      "section{margin-bottom:28px}"
      "</style></head><body>";
  appendf(out, "<h1>tsxhpc %s report</h1><div class=\"legend\">bench=%s "
               "schema=%s</div>",
          sweep ? "sweep" : "telemetry",
          html_escape(doc["bench"].as_string()).c_str(),
          html_escape(doc["schema"].as_string()).c_str());
  if (sweep) {
    emit_sweep_doc(out, doc);
  } else {
    emit_telemetry_doc(out, doc);
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace tsxhpc::sim
