// Optional event tracing of transactional execution — the debugging tool
// you reach for when an abort storm appears: every XBEGIN/commit/abort is
// recorded with its thread, cycle stamp, cause, and footprint.
//
// Tracing is off by default (zero overhead beyond a null check). Attach a
// TraceLog to a Machine for the duration of a run:
//
//   sim::TraceLog trace;
//   machine.set_trace(&trace);
//   machine.run(...);
//   machine.set_trace(nullptr);
//   for (const auto& e : trace.events()) ...      // or trace.dump(stdout)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t { kBegin, kCommit, kAbort };
  Kind kind;
  ThreadId tid;
  Cycles at;
  AbortCause cause;          // kAbort only
  std::uint32_t read_lines;  // footprint at commit/abort
  std::uint32_t write_lines;
};

class TraceLog {
 public:
  void record(TraceEvent e) { events_.push_back(e); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  std::size_t count(TraceEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  void dump(std::FILE* out) const {
    for (const auto& e : events_) {
      const char* kind = e.kind == TraceEvent::Kind::kBegin    ? "BEGIN "
                         : e.kind == TraceEvent::Kind::kCommit ? "COMMIT"
                                                               : "ABORT ";
      // ThreadId is a typedef that may widen; print through a fixed-width
      // cast instead of assuming it stays int-sized.
      std::fprintf(out, "%12llu  t%-2lld %s  r=%u w=%u%s%s\n",
                   static_cast<unsigned long long>(e.at),
                   static_cast<long long>(e.tid), kind, e.read_lines,
                   e.write_lines,
                   e.kind == TraceEvent::Kind::kAbort ? "  cause=" : "",
                   e.kind == TraceEvent::Kind::kAbort ? to_string(e.cause)
                                                      : "");
    }
  }

  /// File overload (used by bench --trace plumbing); returns false if the
  /// path cannot be opened or written.
  bool dump(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    dump(f);
    return std::fclose(f) == 0;
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace tsxhpc::sim
