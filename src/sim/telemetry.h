// Structured telemetry — the machine-readable counterpart of perf_report().
//
// The paper's entire methodology is observability: Table 1 and Figures 1-6
// are built from Linux `perf` TSX event counters. This layer is the
// reproduction's analogue of that tooling, but with the per-site and
// per-attempt visibility `perf stat` aggregates away:
//
//   * per-transaction ATTEMPT CHAINS: every hardware transaction is recorded
//     with its attempt number inside an elided section, its abort cause and
//     footprint, and the retry -> fallback lineage of the section it served;
//   * per-LOCK-SITE elision stats: elision success rate, lock-hold cycles and
//     acquire-path wait (handoff) cycles per lock word — the per-workload
//     analogue of Table 1;
//   * VIRTUAL-TIME INTERVAL SAMPLES: abort-rate / L1-miss time series, so
//     abort storms and phase behaviour are visible instead of averaged away;
//   * exports: JSON (aggregates + histograms + samples, stable key order) and
//     Chrome trace-event format viewable in Perfetto (one track per hardware
//     thread, transaction slices named by outcome).
//
// Lifecycle: construct a Telemetry, point MachineConfig::telemetry at it (or
// call Machine::set_telemetry), and every run of every Machine built from
// that config appends a RunRecord. Detached (the default) every hook site is
// a single null-check, exactly like TraceLog. All timestamps are virtual
// cycles — no wall-clock time ever enters the output, so two identical runs
// export byte-identical artifacts.
//
// Thread-safety: hooks are only called by simulated threads holding the
// scheduler token (or by the engine under its own mutex), so all state here
// is written race-free, the same argument ThreadStats relies on.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cache.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace tsxhpc::sim {

/// What kind of synchronization object a lock site is. Recorded on the first
/// event a site produces in a run; purely descriptive.
enum class LockKind : std::uint8_t {
  kSpin,
  kTicket,
  kFutex,
  kElided,
  kHle,
  kLockset,
  kMonitor,
};

const char* to_string(LockKind k);

/// How a TxPolicy (sync/policy.h) resolved one policy consultation inside an
/// elided section. Aborts map 1:1 to decisions, so the per-site counts
/// reconcile with the attempt chains: retries+backoffs+lock_waits+fallbacks
/// == tx_aborts, and fallbacks+skips == fallback_acquires (CI asserts both).
enum class PolicyDecision : std::uint8_t {
  kRetry,     // retry immediately
  kBackoff,   // backoff cycles charged, then retry
  kLockWait,  // waited for the subscribed lock word(s), then retried
  kFallback,  // the decision ended the section: acquire the lock for real
  kSkip,      // should_attempt declined — no transactional attempt at all
  kNumDecisions,
};

const char* to_string(PolicyDecision d);

struct TelemetryOptions {
  /// Initial virtual-time sampling interval. When a run outgrows
  /// `max_samples` buckets, adjacent buckets are merged and the interval
  /// doubles — long runs keep a bounded, coarser series instead of OOMing.
  Cycles sample_interval = 1 << 15;
  std::size_t max_samples = 256;

  /// Collect per-attempt records (required for the Chrome trace export).
  /// Off by default: aggregate stats, lock sites and samples are always on.
  bool collect_attempts = false;
  /// Ring-buffer capacity for attempt records per run (0 = unbounded). When
  /// full, the oldest records are dropped — the tail of an abort storm is
  /// more diagnostic than its head.
  std::size_t max_attempts = 8192;
  /// Ring-buffer capacity for scheduler blocked-slices per run.
  std::size_t max_blocked = 4096;
};

/// One hardware-transaction attempt (or a fallback lock-hold slice).
struct AttemptRec {
  ThreadId tid = 0;
  std::uint32_t section = 0;  // retry chains share a section id
  std::uint16_t attempt = 0;  // 0-based attempt number within the section
  bool fallback = false;      // lock-held fallback slice, not a transaction
  bool committed = false;
  AbortCause cause = AbortCause::kNone;
  Cycles start = 0;
  Cycles end = 0;
  std::uint32_t read_lines = 0;
  std::uint32_t write_lines = 0;
  Addr site = 0;  // lock word subscribed by the section; 0 = raw transaction
};

/// A futex-blocked interval of one simulated thread.
struct BlockedSlice {
  ThreadId tid = 0;
  Cycles start = 0;
  Cycles end = 0;
};

/// Conflict provenance for one cache line (keyed by the line's byte
/// address): how often accesses to this line doomed a transaction, who the
/// aggressors and victims were, and which named allocation the line belongs
/// to. This is the per-run "top conflicting lines" table — the repo's
/// analogue of Dice et al.'s address-level abort attribution.
struct ConflictLineStats {
  std::string object;  // named-allocation owner ("" when unnamed)
  std::uint64_t dooms = 0;
  std::uint64_t write_dooms = 0;  // aggressor access was a write
  std::uint64_t read_dooms = 0;   // aggressor access was a read
  std::vector<std::uint64_t> by_aggressor;  // indexed by thread id
  std::vector<std::uint64_t> by_victim;
};

/// Capacity provenance for one cache line: transactions doomed because this
/// line was evicted from the L1 (written line) or lost by the secondary
/// read tracker (read line).
struct CapacityLineStats {
  std::string object;
  std::uint64_t write_evict_dooms = 0;
  std::uint64_t read_evict_dooms = 0;
};

/// Per-lock-site statistics (keyed by the lock word's heap address, which
/// the deterministic allocator makes stable across runs).
struct LockSiteStats {
  LockKind kind = LockKind::kSpin;
  // Real (non-elided) lock-word traffic.
  std::uint64_t acquires = 0;
  std::uint64_t contended_acquires = 0;
  Cycles wait_cycles = 0;  // acquire-path spin/block time (handoff latency)
  Cycles hold_cycles = 0;  // time the lock word was actually held
  // Elision outcomes for sections subscribed to this word.
  std::uint64_t elided_commits = 0;
  std::uint64_t fallback_acquires = 0;
  std::uint64_t tx_aborts = 0;
  std::array<std::uint64_t, static_cast<size_t>(AbortCause::kNumCauses)>
      aborts_by_cause{};
  // Cycle accounting for sections subscribed to this word: transactional
  // cycles by outcome, plus time spent holding the lock on fallback.
  Cycles tx_cycles_committed = 0;
  Cycles tx_cycles_wasted = 0;
  Cycles fallback_hold_cycles = 0;
  // TxPolicy consultations for sections on this site, by outcome (schema
  // v4; see PolicyDecision for the reconciliation invariants).
  std::array<std::uint64_t,
             static_cast<size_t>(PolicyDecision::kNumDecisions)>
      policy_decisions{};

  std::uint64_t policy_decisions_total() const {
    std::uint64_t n = 0;
    for (auto d : policy_decisions) n += d;
    return n;
  }

  double elision_rate() const {
    const double total =
        static_cast<double>(elided_commits + fallback_acquires);
    return total == 0 ? 0.0 : static_cast<double>(elided_commits) / total;
  }
};

struct FutexStats {
  std::uint64_t waits = 0;
  std::uint64_t wakes = 0;
};

/// One virtual-time bucket of the per-run time series.
struct IntervalSample {
  std::uint64_t tx_started = 0;
  std::uint64_t tx_committed = 0;
  std::uint64_t tx_aborted = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  // v5 memory-pressure columns. Unlike the l1 columns (whose tail between
  // the last sampling event and run end is never flushed — frozen v4
  // semantics), these are flushed into the final bucket at end_run, so each
  // column sums exactly to its run total (CI-checked).
  std::uint64_t llc_misses = 0;
  Cycles mem_stall = 0;

  void merge(const IntervalSample& o) {
    tx_started += o.tx_started;
    tx_committed += o.tx_committed;
    tx_aborted += o.tx_aborted;
    fallbacks += o.fallbacks;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    llc_misses += o.llc_misses;
    mem_stall += o.mem_stall;
  }
};

/// Per-set counters of one cache level, snapshotted at end of run (schema
/// v5, present only when MachineConfig::set_stats is on). `level` names the
/// instance ("l1.c0".."l1.cN" / "llc"); `occupancy` is the end-of-run valid
/// line count per set (0..ways).
struct LevelSetStats {
  std::string level;
  std::uint32_t sets = 0;
  std::uint32_t ways = 0;
  std::vector<SetCounters> counters;
  std::vector<std::uint32_t> occupancy;
};

/// One named allocation's geometry footprint: which contiguous line range it
/// occupies and the (wrapped) set span it maps to at each level. Computed
/// at export from the registry + geometry — a pure function, no counters.
struct NamedRegionRec {
  std::string name;
  Addr base = 0;
  std::uint64_t bytes = 0;
  std::uint64_t lines = 0;
  std::uint32_t l1_set_start = 0;   // first_line % l1_sets
  std::uint32_t l1_sets_covered = 0;  // min(lines, l1_sets)
  std::uint32_t llc_set_start = 0;
  std::uint32_t llc_sets_covered = 0;
};

/// Machine topology of a run plus its per-slice/per-socket counters
/// (telemetry v6, always present). The slice counters decompose the run's
/// llc_* level totals exactly and the socket counters its mem_accesses /
/// llc_misses; hop latencies ride along so invariant checkers can reconcile
/// hop_cycles == slice_hops * lat_hop_slice + socket_hops * lat_hop_socket
/// from the artifact alone.
struct TopologyRec {
  int sockets = 1;
  int cores_per_socket = 0;
  int slices = 1;
  std::string map;  // compact | scatter | sharing-aware
  Cycles lat_hop_slice = 0;
  Cycles lat_hop_socket = 0;
  std::vector<SliceStats> slice_stats;
  std::vector<SocketStats> socket_stats;
};

/// Power-of-two-bucket histogram: bucket 0 holds value 0, bucket i holds
/// [2^(i-1), 2^i).
struct Histogram {
  std::array<std::uint64_t, 34> buckets{};

  void add(std::uint64_t v) {
    const int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
    buckets[b < 33 ? b : 33]++;
  }
  static std::uint64_t lower_bound_of(std::size_t bucket) {
    return bucket == 0 ? 0 : 1ULL << (bucket - 1);
  }
  bool empty() const {
    for (auto b : buckets)
      if (b != 0) return false;
    return true;
  }
};

/// Concurrency-control counters for one run (schema v7): what the tmlib
/// scheme seam saw, aggregated over threads. Emitted as the per-run `cc`
/// block. For hardware/lock schemes (sgl/tsx) `starts`/`commits` count
/// atomic *regions* — hardware retries live below this layer in the attempt
/// chains, so `aborts` stays 0 and CI enforces it. For STM schemes each
/// attempt is a start, and every abort carries exactly one class
/// (starts == commits + aborts; the classes sum to aborts — CI-enforced).
struct CcStats {
  std::string scheme;  // "sgl"/"tl2"/"tsx"/"tictoc"/"tictoc-hybrid"/"mvcc"
  std::uint64_t starts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  // Abort classes (STM schemes only; all zero for sgl/tsx).
  std::uint64_t aborts_read_validation = 0;
  std::uint64_t aborts_lock_acquire = 0;
  std::uint64_t aborts_commit_validation = 0;
  // TicToc: commit-time rts extensions that saved a would-be abort.
  std::uint64_t read_set_extensions = 0;
  // MVCC: validation-free read-only commits, version-chain accounting, GC.
  std::uint64_t snapshot_commits = 0;
  std::uint64_t versions_created = 0;
  std::uint64_t version_chain_hops = 0;
  std::uint64_t version_chain_depth_max = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_reclaims = 0;

  double abort_rate_pct() const {
    return starts == 0 ? 0.0
                       : 100.0 * static_cast<double>(aborts) /
                             static_cast<double>(starts);
  }

  /// Fold another thread's (or run's) counters into this one.
  void merge(const CcStats& o) {
    if (scheme.empty()) {
      scheme = o.scheme;
    } else if (!o.scheme.empty() && o.scheme != scheme) {
      scheme = "mixed";
    }
    starts += o.starts;
    commits += o.commits;
    aborts += o.aborts;
    aborts_read_validation += o.aborts_read_validation;
    aborts_lock_acquire += o.aborts_lock_acquire;
    aborts_commit_validation += o.aborts_commit_validation;
    read_set_extensions += o.read_set_extensions;
    snapshot_commits += o.snapshot_commits;
    versions_created += o.versions_created;
    version_chain_hops += o.version_chain_hops;
    version_chain_depth_max =
        std::max(version_chain_depth_max, o.version_chain_depth_max);
    gc_runs += o.gc_runs;
    gc_reclaims += o.gc_reclaims;
  }
};

/// Everything recorded about one Machine::run region.
struct RunRecord {
  std::string label;
  /// Execution backend name ("fiber"/"thread"). Purely descriptive — every
  /// other byte of the record is backend-invariant (the equivalence tests
  /// assert exactly that).
  std::string backend;
  int num_threads = 0;
  bool complete = false;  // end_run seen (false = engine teardown)
  RunStats stats;

  // Attempt chains (ring; only populated when collect_attempts is set).
  std::vector<AttemptRec> attempts;
  std::size_t attempts_head = 0;  // ring start index
  std::uint64_t attempts_dropped = 0;
  std::vector<BlockedSlice> blocked;
  std::size_t blocked_head = 0;
  std::uint64_t blocked_dropped = 0;
  Cycles blocked_cycles = 0;
  std::uint64_t blocked_slices = 0;

  // Retry -> fallback lineage, aggregated: how many sections committed on
  // their k-th transactional attempt / fell back after k aborted attempts.
  std::vector<std::uint64_t> committed_by_attempt;
  std::vector<std::uint64_t> fallback_after_attempts;

  Histogram commit_footprint_lines;
  Histogram abort_footprint_lines;
  Histogram commit_cycles;
  Histogram abort_cycles;

  std::map<Addr, LockSiteStats> locks;
  std::map<Addr, FutexStats> futexes;

  /// aggressor-major num_threads x num_threads conflict-doom counts.
  std::vector<std::uint64_t> conflicts;
  std::uint64_t conflict_dooms = 0;

  /// Conflict / capacity provenance, keyed by line byte address (stable
  /// across runs thanks to the deterministic allocator).
  std::map<Addr, ConflictLineStats> conflict_lines;
  std::map<Addr, CapacityLineStats> capacity_lines;

  /// conflict_lines sorted hottest-first (dooms desc, address asc) — the
  /// order the JSON export and reports use.
  std::vector<std::pair<Addr, const ConflictLineStats*>>
      conflict_lines_by_heat() const;

  std::vector<IntervalSample> samples;
  Cycles sample_interval = 0;

  /// Per-set accounting (v5). Empty unless MachineConfig::set_stats was on
  /// for the run; the exporter omits the block entirely when empty so
  /// ungated artifacts do not change shape.
  std::vector<LevelSetStats> set_stats;
  std::vector<NamedRegionRec> set_objects;
  std::uint32_t line_bytes = 0;  // geometry context for the set block

  /// Topology + per-slice/per-socket counters (v6, always present).
  TopologyRec topology;

  /// Concurrency-control counters (v7). Emitted only when a TM runtime
  /// reported into the run (`has_cc`), so non-TM runs keep their shape.
  CcStats cc;
  bool has_cc = false;

  /// Attempts in chronological (ring-unrolled) order.
  std::vector<AttemptRec> attempts_in_order() const;
  std::vector<BlockedSlice> blocked_in_order() const;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions opt = {});

  const TelemetryOptions& options() const { return opt_; }

  // --- Run lifecycle (called by Machine) ----------------------------------

  /// Open a run record. `label` (usually RunSpec::label) names the run;
  /// re-announcing the label the previous run adopted means "another run of
  /// the same region" and gets a "#2", "#3", ... suffix. Empty label: reuse
  /// the last explicit label (suffixed), or fall back to "run_<seq>".
  void begin_run(int num_threads, const std::vector<ThreadStats>* live_stats,
                 std::string_view backend = {}, std::string_view label = {});
  void end_run(const RunStats& rs);
  /// Discard the open run record (engine teardown path).
  void abandon_run();

  /// Attach the per-set snapshot to the open run (called by Machine just
  /// before end_run when MachineConfig::set_stats is on). No-op when no run
  /// is open.
  void record_set_stats(std::vector<LevelSetStats> levels,
                        std::vector<NamedRegionRec> objects,
                        std::uint32_t line_bytes);

  /// Attach the topology snapshot (v6) to the open run (called by Machine
  /// just before end_run). No-op when no run is open.
  void record_topology(TopologyRec topo);

  /// Merge concurrency-control counters (v7) into the open run (called by
  /// the tmlib runtime as each TM thread retires). No-op when no run is
  /// open — e.g. a TmRuntime torn down outside any region.
  void record_cc(const CcStats& cc);

  // --- Hooks (called with the scheduler token held) -----------------------

  /// One outermost hardware transaction finished (committed or aborted).
  void on_txn(ThreadId tid, Cycles start, Cycles end, bool committed,
              AbortCause cause, std::uint32_t read_lines,
              std::uint32_t write_lines);

  /// An elided section opens on `tid`, subscribed to lock word `site`.
  void section_enter(ThreadId tid, Addr site, LockKind kind);
  /// The open section committed transactionally.
  void section_commit(ThreadId tid);
  /// The open section fell back to a real acquisition held over
  /// [acquired_at, released_at].
  void section_fallback(ThreadId tid, Cycles acquired_at, Cycles released_at);

  /// The TxPolicy resolved one consultation for `tid`'s open section.
  /// Attributed to that section's site; dropped when no section is open
  /// (e.g. a lockset over zero locks).
  void policy_decision(ThreadId tid, PolicyDecision d);

  /// A real lock acquisition completed (wait began at `wait_start`).
  void on_lock_acquired(Addr site, LockKind kind, ThreadId tid,
                        Cycles wait_start, Cycles now, bool contended);
  void on_lock_released(Addr site, ThreadId tid, Cycles now);

  /// Engine: thread `tid` was futex-blocked over [start, end].
  void on_blocked(ThreadId tid, Cycles start, Cycles end);

  /// Memory system: `aggressor`'s access to `line` (byte address) doomed
  /// `victim`'s transaction. `object` is the named allocation owning the
  /// line ("" if unnamed), resolved by the caller who owns the heap.
  void on_conflict(ThreadId aggressor, ThreadId victim, Addr line,
                   bool is_write, std::string_view object);

  /// Memory system: `victim` was doomed by the eviction of `line` — a
  /// written line leaving the L1, or a read line lost by the secondary
  /// tracker (`read_line`).
  void on_capacity(ThreadId victim, Addr line, bool read_line,
                   std::string_view object);

  /// Futex table events.
  void on_futex_wait(Addr addr);
  void on_futex_wake(Addr addr);

  // --- Export -------------------------------------------------------------

  const std::vector<RunRecord>& runs() const { return runs_; }

  /// Full JSON artifact (schema tsxhpc-telemetry-v7), stable key order.
  std::string json(const std::string& bench_name) const;
  /// Chrome trace-event JSON (catapult format, loadable in Perfetto): one
  /// process per run, one track per hardware thread, transaction slices
  /// named by outcome. Timestamps are virtual cycles presented as µs.
  std::string chrome_trace() const;

  bool write_json(const std::string& path,
                  const std::string& bench_name) const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct OpenSection {
    bool open = false;
    Addr site = 0;
    LockKind kind = LockKind::kSpin;
    std::uint32_t id = 0;
    std::uint16_t attempts = 0;  // transactional attempts so far
  };

  RunRecord* cur() { return open_run_ ? &runs_.back() : nullptr; }
  LockSiteStats& site_stats(RunRecord& r, Addr site, LockKind kind);
  IntervalSample& bucket(RunRecord& r, Cycles at);
  void sample_l1(RunRecord& r, Cycles at);
  void push_attempt(RunRecord& r, const AttemptRec& rec);
  static void bump(std::vector<std::uint64_t>& v, std::size_t idx);

  TelemetryOptions opt_;
  std::vector<RunRecord> runs_;
  bool open_run_ = false;
  std::uint64_t run_seq_ = 0;
  std::string next_label_;
  std::string last_label_;
  std::uint64_t label_reuse_ = 0;

  // Per-run scratch state.
  const std::vector<ThreadStats>* live_stats_ = nullptr;
  std::vector<OpenSection> open_sections_;
  std::uint32_t next_section_id_ = 0;
  std::uint64_t last_l1_hits_ = 0;
  std::uint64_t last_l1_misses_ = 0;
  std::uint64_t last_llc_misses_ = 0;
  Cycles last_mem_stall_ = 0;
  std::map<std::pair<Addr, ThreadId>, Cycles> hold_since_;
};

}  // namespace tsxhpc::sim
