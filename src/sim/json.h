// Minimal streaming JSON writer for telemetry export. Deliberately tiny:
// no DOM, no parsing — just deterministic serialization. Keys are emitted
// in call order (stable across runs), doubles are printed with a fixed
// locale-independent format, and non-finite doubles are clamped to 0 so a
// stray NaN can never produce invalid JSON. This determinism is load-bearing:
// telemetry goldens are diffed byte-for-byte in CI.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace tsxhpc::sim {

class JsonWriter {
 public:
  JsonWriter() { frames_.push_back(Frame{false, 0}); }

  void begin_object() {
    comma_for_value();
    out_ += '{';
    frames_.push_back(Frame{false, 0});
  }

  void end_object() {
    frames_.pop_back();
    out_ += '}';
  }

  void begin_array() {
    comma_for_value();
    out_ += '[';
    frames_.push_back(Frame{false, 0});
  }

  void end_array() {
    frames_.pop_back();
    out_ += ']';
  }

  void key(std::string_view k) {
    if (frames_.back().count++ > 0) out_ += ',';
    append_string(k);
    out_ += ':';
    frames_.back().after_key = true;
  }

  void value(std::uint64_t v) {
    comma_for_value();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void value(std::int64_t v) {
    comma_for_value();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  void value(double v) {
    comma_for_value();
    if (!(v == v) || v > 1e308 || v < -1e308) v = 0.0;  // NaN / inf guard
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }

  void value(bool v) {
    comma_for_value();
    out_ += v ? "true" : "false";
  }

  void value(std::string_view v) {
    comma_for_value();
    append_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }

  /// Splice pre-serialized JSON bytes in as one value, verbatim. The sweep
  /// merger uses this to embed per-cell telemetry artifacts without a
  /// re-serialization round trip, so merged-artifact bytes cannot depend on
  /// how the cells were sharded. The caller guarantees `json` is valid.
  void raw_value(std::string_view json) {
    comma_for_value();
    out_ += json;
  }

  /// Hex-formatted address value (lock sites, futex words).
  void value_hex(Addr a) {
    comma_for_value();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                  static_cast<unsigned long long>(a));
    out_ += buf;
  }

  // key/value in one call.
  template <typename V>
  void kv(std::string_view k, V v) {
    key(k);
    value(v);
  }
  void kv_hex(std::string_view k, Addr a) {
    key(k);
    value_hex(a);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  struct Frame {
    bool after_key = false;
    std::size_t count = 0;
  };

  void comma_for_value() {
    Frame& f = frames_.back();
    if (f.after_key) {
      f.after_key = false;  // key() already emitted the separator
      return;
    }
    if (f.count++ > 0) out_ += ',';
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> frames_;
};

}  // namespace tsxhpc::sim
