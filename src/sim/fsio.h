// Tiny shared file I/O helpers for artifact producers and consumers.
// Artifacts are written atomically — the bytes land in `<path>.tmp` and are
// renamed into place — so a concurrently-polling sweep driver or a run killed
// mid-write can never observe a torn JSON file: the destination path either
// does not exist yet or holds a complete artifact.
#pragma once

#include <cstdio>
#include <string>

namespace tsxhpc::sim {

/// Read a whole file into `out`; false on open/read error.
inline bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = !std::ferror(f);
  std::fclose(f);
  return ok;
}

/// Write `content` to `path` via `<path>.tmp` + rename. On any failure the
/// temp file is removed and `path` is left untouched.
inline bool atomic_write_file(const std::string& path,
                              const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (!ok) {
    if (n != content.size()) std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace tsxhpc::sim
