// Internal factory declarations shared by backend.cc and the per-backend
// translation units. Not part of the public simulator API.
#pragma once

#include <cstddef>
#include <memory>

#include "sim/backend.h"

namespace tsxhpc::sim::detail {

std::unique_ptr<ExecutionBackend> make_thread_backend();
std::unique_ptr<ExecutionBackend> make_fiber_backend(std::size_t stack_bytes);

}  // namespace tsxhpc::sim::detail
