#include "sim/memory.h"

#include <string>

#include "sim/telemetry.h"

namespace tsxhpc::sim {

const char* to_string(AbortCause cause) {
  switch (cause) {
    case AbortCause::kNone: return "none";
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacityWrite: return "capacity";
    case AbortCause::kExplicit: return "explicit";
    case AbortCause::kSyscall: return "syscall";
    case AbortCause::kNesting: return "nesting";
    case AbortCause::kLockBusy: return "lock-busy";
    case AbortCause::kCapacityRead: return "capacity-read";
    default: return "?";
  }
}

const char* to_string(MemLevel level) {
  switch (level) {
    case MemLevel::kL1: return "l1";
    case MemLevel::kXfer: return "xfer";
    case MemLevel::kLlc: return "llc";
    case MemLevel::kDram: return "dram";
    default: return "?";
  }
}

MemorySystem::MemorySystem(const MachineConfig& cfg,
                           std::vector<ThreadStats>& stats)
    : cfg_(cfg), stats_(stats), heap_(cfg.line_bytes) {
  if ((cfg_.l1_sets() & (cfg_.l1_sets() - 1)) != 0) {
    throw SimError("L1 set count must be a power of two");
  }
  const Topology& topo = cfg_.topology;
  if (topo.num_sockets < 1) throw SimError("topology needs >= 1 socket");
  if (cfg_.num_cores % topo.num_sockets != 0) {
    throw SimError("num_cores must be a multiple of num_sockets");
  }
  if (topo.cores_per_socket > 0 &&
      topo.cores_per_socket * topo.num_sockets != cfg_.num_cores) {
    throw SimError("cores_per_socket * num_sockets must equal num_cores");
  }
  if (topo.llc_slices < 1 || topo.llc_slices % topo.num_sockets != 0) {
    throw SimError("llc_slices must be a positive multiple of num_sockets");
  }
  if (cfg_.num_hw_threads() > 64 || cfg_.num_cores > 64) {
    throw SimError("topology exceeds 64 hardware threads/cores "
                   "(ThreadMask/CoreMask width)");
  }
  // Each slice carries the full configured llc geometry (capacity scales
  // with slices, like hardware core tiles), so per-slice inclusion over a
  // whole L1 stays structurally possible.
  if (static_cast<std::size_t>(cfg_.llc_sets()) * cfg_.llc_ways <
      static_cast<std::size_t>(cfg_.l1_sets()) * cfg_.l1_ways) {
    throw SimError("LLC slice must be at least as large as one L1 "
                   "(inclusive)");
  }
  // Install the configured placement strategy before any workload
  // allocates; the strategy steers against the same set geometry the
  // capacity model charges (write sets = L1, read sets = the owning LLC
  // slice).
  heap_.set_strategy(make_alloc_strategy(
      cfg_.alloc_strategy,
      AllocGeometry{cfg_.line_bytes, cfg_.l1_sets(), cfg_.l1_ways,
                    cfg_.llc_sets(), cfg_.llc_ways, topo.llc_slices}));
  l1_.reserve(cfg_.num_cores);
  for (int c = 0; c < cfg_.num_cores; ++c) {
    l1_.emplace_back(cfg_.l1_sets(), cfg_.l1_ways);
  }
  llc_.reserve(topo.llc_slices);
  for (int s = 0; s < topo.llc_slices; ++s) {
    llc_.emplace_back(cfg_.llc_sets(), cfg_.llc_ways);
  }
  tx_.resize(cfg_.num_hw_threads());
  slice_stats_.assign(topo.llc_slices, SliceStats{});
  socket_stats_.assign(topo.num_sockets, SocketStats{});
  topo_multi_ = topo.llc_slices > 1 || topo.num_sockets > 1;
  set_stats_ = cfg_.set_stats;
  // Allocate the per-set tables up front so the charge sites never race a
  // missing reset (Machine::run re-zeros them at each region entry).
  if (set_stats_) reset_set_stats();
}

void MemorySystem::reset_set_stats() {
  for (CacheLevel& l1 : l1_) l1.reset_set_stats();
  for (CacheLevel& slice : llc_) slice.reset_set_stats();
}

void MemorySystem::reset_topology_stats() {
  slice_stats_.assign(slice_stats_.size(), SliceStats{});
  socket_stats_.assign(socket_stats_.size(), SocketStats{});
}

int MemorySystem::home_socket(Addr line, int requester_socket) {
  const Topology& topo = cfg_.topology;
  if (topo.num_sockets == 1) return 0;
  if (topo.map == MapPolicy::kSharingAware) {
    return line_home_.try_emplace(line, requester_socket).first->second;
  }
  return static_cast<int>(line % topo.num_sockets);
}

void MemorySystem::check_alignment(Addr a, unsigned size) const {
  if (size == 0 || size > 8 || (size & (size - 1)) != 0 ||
      (a & (size - 1)) != 0) {
    throw SimError("unaligned or invalid-size access: addr=" +
                   std::to_string(a) + " size=" + std::to_string(size));
  }
}

bool MemorySystem::doom(ThreadId victim, AbortCause cause, Addr line,
                        ThreadId aggressor, bool is_write) {
  TxState& v = tx_[victim];
  if (!v.active || v.doomed) return false;
  v.doomed = true;
  v.doom_cause = cause;
  v.doom_line = line;
  v.doom_aggressor = aggressor;
  v.doom_was_write = is_write;
  stats_[victim].tx_doomed_by_remote++;
  return true;
}

void MemorySystem::detect_conflicts(ThreadId t, Addr line, bool is_write) {
  const ThreadMask self = ThreadMask{1} << t;
  // A read conflicts with remote transactional writers; a write conflicts
  // with remote transactional readers *and* writers.
  ThreadMask victims = 0;
  if (auto it = line_writers_.find(line); it != line_writers_.end()) {
    victims |= it->second & ~self;
  }
  if (is_write) {
    if (auto it = line_readers_.find(line); it != line_readers_.end()) {
      victims |= it->second & ~self;
    }
  }
  const Addr line_addr = line * cfg_.line_bytes;
  while (victims != 0) {
    int v = __builtin_ctzll(victims);
    victims &= victims - 1;
    if (doom(v, AbortCause::kConflict, line_addr, t, is_write) && tel_) {
      tel_->on_conflict(t, v, line_addr, is_write, heap_.name_of(line_addr));
    }
  }
}

void MemorySystem::tx_track(ThreadId t, Addr line, bool is_write) {
  const ThreadMask bit = ThreadMask{1} << t;
  if (is_write) {
    ThreadMask& mask = line_writers_[line];
    if ((mask & bit) == 0) {
      mask |= bit;
      tx_[t].write_lines.push_back(line);
    }
  } else {
    ThreadMask& mask = line_readers_[line];
    if ((mask & bit) == 0) {
      mask |= bit;
      tx_[t].read_lines.push_back(line);
    }
  }
}

bool MemorySystem::read_evict_dooms(Addr line) {
  std::uint64_t z = (line * 0x9E3779B97F4A7C15ULL) ^
                    (++evict_events_ * 0xBF58476D1CE4E5B9ULL);
  z ^= z >> 31;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 29;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
  return u < cfg_.read_evict_abort_prob;
}

void MemorySystem::on_l1_eviction(const CacheTouch& touch) {
  const Addr evicted_addr = touch.evicted_line * cfg_.line_bytes;
  // Evicting a line a transaction has *written* destroys its speculative
  // data: immediate capacity abort (Section 2).
  if (touch.evicted_tx_writer >= 0) {
    if (doom(touch.evicted_tx_writer, AbortCause::kCapacityWrite,
             evicted_addr, /*aggressor=*/-1, /*is_write=*/true) &&
        tel_) {
      tel_->on_capacity(touch.evicted_tx_writer, evicted_addr,
                        /*read_line=*/false, heap_.name_of(evicted_addr));
    }
  }
  // Evicted *read* lines move to the secondary tracking structure. While
  // the line stays resident in its owning slice (guaranteed here — the
  // slices are inclusive) the tracker holds it safely; the abort risk
  // materializes only if the slice later loses the line (on_llc_eviction).
  ThreadMask readers = touch.evicted_tx_readers;
  while (readers != 0) {
    int r = __builtin_ctzll(readers);
    readers &= readers - 1;
    stats_[r].tx_read_lines_evicted++;
  }
}

void MemorySystem::on_llc_eviction(const CacheTouch& touch, int slice) {
  const Addr line = touch.evicted_line;
  const Addr evicted_addr = line * cfg_.line_bytes;

  // Write-set capacity: the (inclusion-mandated) back-invalidation below
  // destroys the speculative data of any transactionally written copy.
  ThreadMask writers = writers_of_line(line);
  while (writers != 0) {
    int w = __builtin_ctzll(writers);
    writers &= writers - 1;
    if (doom(w, AbortCause::kCapacityWrite, evicted_addr, /*aggressor=*/-1,
             /*is_write=*/true) &&
        tel_) {
      tel_->on_capacity(w, evicted_addr, /*read_line=*/false,
                        heap_.name_of(evicted_addr));
    }
  }

  // Read-set capacity: the slice backing the secondary tracker lost the
  // line. Readers still holding it in their L1 were precisely tracked until
  // now and enter the secondary structure as they are back-invalidated;
  // either way each reader takes one deterministic imprecision draw.
  ThreadMask readers = readers_of_line(line);
  while (readers != 0) {
    int r = __builtin_ctzll(readers);
    readers &= readers - 1;
    if (l1_[core_of(r)].contains(line)) {
      stats_[r].tx_read_lines_evicted++;
    }
    if (cfg_.read_evict_abort_prob > 0.0) {
      if (set_stats_) {
        llc_[slice].set_stats(llc_[slice].set_of(line)).doom_draws++;
      }
      if (read_evict_dooms(line) &&
          doom(r, AbortCause::kCapacityRead, evicted_addr, /*aggressor=*/-1,
               /*is_write=*/false) &&
          tel_) {
        tel_->on_capacity(r, evicted_addr, /*read_line=*/true,
                          heap_.name_of(evicted_addr));
      }
    }
  }

  // Inclusion: drop every L1 copy. Directory state (the entry's dirty/
  // sharer bits) dies with the slice's entry — nothing is leaked for dead
  // lines. The sharer mask can over-approximate (L1s evict silently), so
  // some of these are no-ops.
  CoreMask cores = touch.evicted_sharers;
  if (touch.evicted_dirty_core >= 0) {
    cores |= CoreMask{1} << touch.evicted_dirty_core;
  }
  for (int c = 0; c < cfg_.num_cores; ++c) {
    if ((cores & (CoreMask{1} << c)) && l1_[c].invalidate(line) &&
        set_stats_) {
      // Only count copies actually dropped: the sharer mask can
      // over-approximate. Coherence invalidations (update_directory) are
      // deliberately not counted here — back-invalidation pressure is the
      // inclusion-driven component.
      l1_[c].set_stats(l1_[c].set_of(line)).back_invalidations++;
    }
  }
}

void MemorySystem::update_directory(CacheLevel::Entry& e, int core,
                                    bool is_write) {
  if (is_write) {
    // Invalidate all other cores' copies and take dirty ownership.
    for (int c = 0; c < cfg_.num_cores; ++c) {
      if (c != core && (e.sharers & (CoreMask{1} << c))) {
        l1_[c].invalidate(e.line);
      }
    }
    if (e.dirty_core >= 0 && e.dirty_core != core) {
      l1_[e.dirty_core].invalidate(e.line);
    }
    e.dirty_core = core;
    e.sharers = CoreMask{1} << core;
  } else {
    if (e.dirty_core >= 0 && e.dirty_core != core) e.dirty_core = -1;
    e.sharers |= CoreMask{1} << core;
  }
}

AccessResult MemorySystem::cache_access(ThreadId t, Addr line, bool is_write) {
  const int core = core_of(t);
  const int socket = cfg_.socket_of_core(core);
  TxState& tx = tx_[t];
  const bool tx_write = tx.active && is_write;
  const bool tx_read = tx.active && !is_write;
  ThreadStats& st = stats_[t];
  st.mem_accesses++;
  SocketStats& sock = socket_stats_[socket];
  sock.accesses++;

  CacheLevel& l1 = l1_[core];
  SetCounters* l1set =
      set_stats_ ? &l1.set_stats(l1.set_of(line)) : nullptr;

  CacheTouch l1t = l1.touch(line, t, tx_write, tx_read);
  if (l1t.evicted) {
    st.l1_evictions++;
    // The victim lives in the same L1 set as the fill that displaced it.
    if (l1set) l1set->evictions++;
    on_l1_eviction(l1t);
  }

  AccessResult r;
  const int slice = slice_of(line);
  CacheLevel& llc = llc_[slice];
  SliceStats& slst = slice_stats_[slice];
  CacheLevel::Entry* e = llc.find(line);
  if (l1t.hit) {
    if (e == nullptr) {
      // Every L1-resident line must be resident in its owning slice; a miss
      // here is a bug in the back-invalidation plumbing, not a workload
      // condition.
      throw SimError("inclusive-LLC invariant violated");
    }
    llc.promote(e);
    r.latency = cfg_.lat_l1_hit;
    r.level = MemLevel::kL1;
    st.l1_hits++;
    if (l1set) l1set->hits++;
    // An L1 hit never consults the interconnect: no hop, straight to the
    // directory update below.
    update_directory(*e, core, is_write);
    return r;
  }

  st.l1_misses++;
  if (l1set) l1set->misses++;  // every L1 miss allocated in this set
  // Interconnect model: any access that leaves the core consults the
  // owning slice's directory, paying a hop to a non-local slice (on-socket
  // ring) or to a remote socket.
  Cycles hop = 0;
  if (topo_multi_) {
    if (cfg_.socket_of_slice(slice) != socket) {
      hop += cfg_.topology.lat_hop_socket;
      st.socket_hops++;
      sock.socket_hops++;
    } else if (slice != cfg_.local_slice_of_core(core)) {
      hop += cfg_.topology.lat_hop_slice;
      st.slice_hops++;
      sock.slice_hops++;
    }
  }
  SetCounters* llcset =
      set_stats_ ? &llc.set_stats(llc.set_of(line)) : nullptr;
  if (e != nullptr) {
    // Served on-chip: a transfer from another core's L1 (the directory
    // says who has it and how) or a plain hit in the owning slice.
    if (e->dirty_core >= 0 && e->dirty_core != core) {
      r.latency = cfg_.lat_xfer_dirty;
      r.level = MemLevel::kXfer;
      st.xfers_in++;
      if (llcset) llcset->xfers++;
      slst.xfers++;
      // Forwarding a dirty line from a remote socket's core crosses the
      // interconnect a second time.
      if (topo_multi_ && cfg_.socket_of_core(e->dirty_core) != socket) {
        hop += cfg_.topology.lat_hop_socket;
        st.socket_hops++;
        sock.socket_hops++;
      }
    } else if ((e->sharers & ~(CoreMask{1} << core)) != 0) {
      r.latency = cfg_.lat_xfer_clean;
      r.level = MemLevel::kXfer;
      st.xfers_in++;
      if (llcset) llcset->xfers++;
      slst.xfers++;
    } else {
      r.latency = cfg_.lat_llc_hit;
      r.level = MemLevel::kLlc;
      st.llc_hits++;
      if (llcset) llcset->hits++;
      slst.hits++;
    }
    llc.promote(e);
  } else {
    // DRAM is the explicit miss endpoint, one per socket; a line is served
    // by its home socket's endpoint (interleaved or first-touch per the
    // map policy), paying the socket hop when the home is remote. The fill
    // allocates an entry in the owning slice (with fresh directory state)
    // and may evict a victim.
    r.latency = cfg_.lat_mem;
    r.level = MemLevel::kDram;
    st.llc_misses++;
    if (llcset) llcset->misses++;
    slst.misses++;
    if (home_socket(line, socket) == socket) {
      sock.dram_local++;
    } else {
      sock.dram_remote++;
      hop += cfg_.topology.lat_hop_socket;
      st.socket_hops++;
      sock.socket_hops++;
    }
    CacheTouch fill = llc.touch(line, t, /*tx_write=*/false,
                                /*tx_read=*/false);
    if (fill.evicted) {
      st.llc_evictions++;
      if (llcset) llcset->evictions++;
      slst.evictions++;
      on_llc_eviction(fill, slice);
    }
    e = llc.find(line);
  }
  r.latency += hop;
  st.hop_cycles += hop;
  update_directory(*e, core, is_write);
  return r;
}

AccessResult MemorySystem::load(ThreadId t, Addr a, unsigned size) {
  check_alignment(a, size);
  const Addr line = line_of(a);
  TxState& tx = tx_[t];

  detect_conflicts(t, line, /*is_write=*/false);
  AccessResult r = cache_access(t, line, /*is_write=*/false);
  if (tx.active) tx_track(t, line, /*is_write=*/false);

  // Read our own speculative value if present.
  if (tx.active && !tx.write_buffer.empty()) {
    const Addr word = a & ~static_cast<Addr>(7);
    if (auto it = tx.write_buffer.find(word); it != tx.write_buffer.end()) {
      std::uint64_t w = it->second;
      const unsigned shift = static_cast<unsigned>(a - word) * 8;
      std::uint64_t mask =
          size == 8 ? ~0ULL : ((1ULL << (size * 8)) - 1) << shift;
      r.value = (w & mask) >> shift;
      return r;
    }
  }
  r.value = heap_.read_word(a, size);
  return r;
}

AccessResult MemorySystem::store(ThreadId t, Addr a, std::uint64_t v,
                                 unsigned size) {
  check_alignment(a, size);
  const Addr line = line_of(a);
  TxState& tx = tx_[t];

  detect_conflicts(t, line, /*is_write=*/true);
  AccessResult r = cache_access(t, line, /*is_write=*/true);

  if (!tx.active) {
    heap_.write_word(a, v, size);
    return r;
  }

  tx_track(t, line, /*is_write=*/true);
  // Merge into the word-granularity speculative buffer.
  const Addr word = a & ~static_cast<Addr>(7);
  std::uint64_t w;
  if (auto it = tx.write_buffer.find(word); it != tx.write_buffer.end()) {
    w = it->second;
  } else {
    w = heap_.read_word(word, 8);
  }
  const unsigned shift = static_cast<unsigned>(a - word) * 8;
  const std::uint64_t mask =
      size == 8 ? ~0ULL : ((1ULL << (size * 8)) - 1) << shift;
  w = (w & ~mask) | ((v << shift) & mask);
  tx.write_buffer[word] = w;
  return r;
}

void MemorySystem::tx_begin(ThreadId t) {
  TxState& tx = tx_[t];
  if (tx.active) {
    // Flat nesting: just bump the depth.
    if (++tx.nest_depth > cfg_.max_nest_depth) {
      tx.nest_depth--;  // keep state consistent; caller rolls back
      tx.doomed = true;
      tx.doom_cause = AbortCause::kNesting;
    }
    return;
  }
  tx.active = true;
  tx.nest_depth = 1;
  tx.doomed = false;
  tx.doom_cause = AbortCause::kNone;
  stats_[t].tx_started++;
}

void MemorySystem::clear_tx_registry(ThreadId t) {
  const ThreadMask bit = ThreadMask{1} << t;
  TxState& tx = tx_[t];
  for (Addr line : tx.read_lines) {
    auto it = line_readers_.find(line);
    if (it != line_readers_.end()) {
      it->second &= ~bit;
      if (it->second == 0) line_readers_.erase(it);
    }
  }
  for (Addr line : tx.write_lines) {
    auto it = line_writers_.find(line);
    if (it != line_writers_.end()) {
      it->second &= ~bit;
      if (it->second == 0) line_writers_.erase(it);
    }
  }
}

void MemorySystem::tx_end(ThreadId t) {
  TxState& tx = tx_[t];
  if (!tx.active) throw SimError("XEND outside a transaction");
  if (tx.nest_depth > 1) {
    tx.nest_depth--;
    return;
  }
  // Publish the speculative writes.
  for (const auto& [word, value] : tx.write_buffer) {
    heap_.write_word(word, value, 8);
  }
  clear_tx_registry(t);
  l1_[core_of(t)].clear_tx_marks(t, /*invalidate_writes=*/false);
  tx.reset();
  stats_[t].tx_committed++;
}

void MemorySystem::tx_rollback(ThreadId t, AbortCause cause) {
  TxState& tx = tx_[t];
  if (!tx.active) throw SimError("rollback outside a transaction");
  // Per-set capacity attribution is charged here — next to the
  // tx_aborted[cause] increment it must reconcile with — not at doom time:
  // a doomed transaction can still roll back under a different cause (an
  // explicit abort racing the doom), in which case neither counter moves,
  // keeping sum(per-set dooms) == tx_aborted[capacity class] exact.
  if (set_stats_ && tx.doom_line != kNullAddr) {
    const Addr line = line_of(tx.doom_line);
    if (cause == AbortCause::kCapacityWrite) {
      CacheLevel& l1 = l1_[core_of(t)];
      l1.set_stats(l1.set_of(line)).capacity_write_dooms++;
    } else if (cause == AbortCause::kCapacityRead) {
      CacheLevel& slice = llc_[slice_of(line)];
      slice.set_stats(slice.set_of(line)).capacity_read_dooms++;
    }
  }
  clear_tx_registry(t);
  l1_[core_of(t)].clear_tx_marks(t, /*invalidate_writes=*/true);
  tx.reset();
  stats_[t].tx_aborted[static_cast<size_t>(cause)]++;
}

void MemorySystem::reset_all_tx() {
  for (ThreadId t = 0; t < static_cast<ThreadId>(tx_.size()); ++t) {
    if (!tx_[t].active) continue;
    clear_tx_registry(t);
    l1_[core_of(t)].clear_tx_marks(t, /*invalidate_writes=*/true);
    tx_[t].reset();
  }
}

ThreadMask MemorySystem::readers_of_line(Addr line) const {
  auto it = line_readers_.find(line);
  return it == line_readers_.end() ? 0 : it->second;
}

ThreadMask MemorySystem::writers_of_line(Addr line) const {
  auto it = line_writers_.find(line);
  return it == line_writers_.end() ? 0 : it->second;
}

}  // namespace tsxhpc::sim
