// Declarative parameter-grid sweeps. A sweep spec (tsxhpc-sweepspec-v1 JSON)
// names a bench binary, the flag axes to cross (scheme, policy, threads,
// ...), common passthrough flags, and per-scale flag sets. This header owns
// the pure parts of the pipeline — spec parsing/validation, deterministic
// cell expansion, and merging per-cell telemetry artifacts into one
// tsxhpc-sweep-v1 grid artifact — so tools/sweep (the multi-process
// orchestrator), tools/tsx_report (grid views + grid diff) and the tests all
// agree on cell naming and artifact layout by construction.
//
// Determinism contract: expand_cells() is a stable cross product (axes in
// spec order, values in spec order, last axis fastest), and merge_sweep()
// splices each cell's artifact bytes verbatim in expansion order. The merged
// artifact is therefore byte-identical however the cells were sharded across
// processes — committed sweep baselines rely on this.
#pragma once

#include <string>
#include <vector>

#include "sim/json_parse.h"

namespace tsxhpc::sim {

inline constexpr const char* kSweepSpecSchema = "tsxhpc-sweepspec-v1";
inline constexpr const char* kSweepSchema = "tsxhpc-sweep-v1";

struct SweepAxis {
  std::string name;                 // axis name, e.g. "threads"
  std::string flag;                 // child flag, e.g. "--threads"
  std::vector<std::string> values;  // axis values, spec order
};

struct SweepSpec {
  std::string name;   // sweep name, e.g. "fig2_quick"
  std::string bench;  // bench binary name (the orchestrator resolves a path)
  std::vector<std::string> args;        // passed to every cell
  std::vector<std::string> quick_args;  // appended at scale "quick"
  std::vector<std::string> full_args;   // appended at scale "full"
  std::vector<SweepAxis> axes;

  /// Cross-product size.
  std::size_t cell_count() const {
    std::size_t n = 1;
    for (const SweepAxis& a : axes) n *= a.values.size();
    return n;
  }
  /// args + the per-scale flags ("quick" or "full").
  std::vector<std::string> args_for_scale(const std::string& scale) const;
};

/// Parse + validate a tsxhpc-sweepspec-v1 document. False (with *error set)
/// on schema mismatch, missing/empty fields, duplicate axis names or values.
bool parse_sweep_spec(const JsonValue& doc, SweepSpec& spec,
                      std::string* error);

struct SweepCell {
  std::string label;                // "workload=genome/scheme=tsx/threads=4"
  std::vector<std::string> coords;  // one value per spec axis, axis order
  std::vector<std::string> flags;   // "--workload=genome", "--scheme=tsx", ...
};

/// Deterministic, stable-ordered cross-product expansion. These labels name
/// the cells in committed sweep baselines — never reorder.
std::vector<SweepCell> expand_cells(const SweepSpec& spec);

/// Assemble the merged tsxhpc-sweep-v1 artifact. `cell_artifacts[i]` holds
/// the raw JSON bytes of `cells[i]`'s telemetry artifact, spliced verbatim.
/// `effective_args` records the common argv the orchestrator actually passed
/// (args + scale flags). The caller validates the artifacts first.
std::string merge_sweep(const SweepSpec& spec, const std::string& scale,
                        const std::vector<std::string>& effective_args,
                        const std::vector<SweepCell>& cells,
                        const std::vector<std::string>& cell_artifacts);

}  // namespace tsxhpc::sim
