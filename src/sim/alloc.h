// The placement-aware allocation layer of the shared heap.
//
// Dice et al., "The Influence of Malloc Placement on TSX Hardware
// Transactional Memory" show that *where* the allocator puts objects — via
// cache-index conflicts and set overflow — swings TSX abort rates by integer
// factors. The repo's capacity model is set-associative (write-set capacity
// = L1 set overflow, read-set capacity = LLC set eviction pressure; DESIGN.md
// §4.1/§10), so placement is a first-class experimental knob here too.
//
// Two pieces live in this header:
//
//   * AllocSpec — the one allocation request record behind the unified
//     Machine::alloc(AllocSpec) entry point (the sole spelling since the
//     pre-AllocSpec shims were removed);
//   * AllocStrategy — the pluggable placement seam inside SharedHeap.
//     Strategies choose base addresses for *named* allocations only; unnamed
//     allocations always take the plain bump path, so infrastructure
//     allocations (container nodes, scratch) never depend on the strategy.
//
// Shipped strategies (MachineConfig::alloc_strategy, bench `--alloc=`):
//
//   bump        monotone bump pointer — bit-for-bit the historic layout;
//               the default, and the layout every committed baseline uses.
//   slab        per-(name, size-class) slabs: repeated allocations under one
//               name group into shared chunks, the way a production slab
//               malloc clusters same-type objects. Issues addresses out of
//               order (slab interiors sit below the bump frontier).
//   color       cache-index coloring: each named object's base line is
//               steered to the LLC-set color that minimizes the maximum
//               per-set line pressure over the sets the object will cover,
//               spreading hot objects across L1/LLC sets instead of letting
//               coincidental size sums stack their footprints into the same
//               index range. Ties resolve toward the bump frontier, so flat
//               pressure degenerates to (set-aligned) bump placement.
//   adversarial deliberate same-set packing: every named object's base line
//               is forced into set 0 of both levels — the malloc-placement
//               pathology made reproducible, as the stress baseline the
//               ablation compares against.
//
// Determinism: strategies are pure functions of the allocation sequence and
// the configured geometry. No host state, no randomness — layouts are
// byte-identical across runs, hosts and execution backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/types.h"

namespace tsxhpc::sim {

class SharedHeap;

/// Placement hint on an AllocSpec. Only non-bump strategies look at it, so
/// annotating a workload never perturbs the default layout.
enum class AllocHint : std::uint8_t {
  kAuto,  ///< strategy default
  kHot,   ///< transactionally hot: coloring weighs its set pressure 4x, so
          ///< later objects steer clear of its index range
  kCold,  ///< rarely touched: coloring leaves it on the bump path instead of
          ///< spending a color lane on it
};

/// One allocation request — the unified argument of Machine::alloc and
/// SharedHeap::allocate. Designated initializers keep call sites readable:
///
///   m.alloc({.name = "kmeans/accum", .bytes = 1024});
///   SharedArray<double>::alloc(m, {.name = "kmeans/accum",
///                                  .hint = AllocHint::kHot}, n);
///
/// An empty name is an anonymous allocation: no registry entry, no telemetry
/// attribution, and always bump-placed whatever the strategy.
struct AllocSpec {
  std::string_view name{};
  std::size_t bytes = 0;
  /// Power-of-two alignment; 0 = the caller-level default (Machine::alloc
  /// fills in one cache line, SharedHeap::allocate falls back to 8).
  std::size_t align = 0;
  AllocHint hint = AllocHint::kAuto;
};

/// Which placement strategy the shared heap runs (MachineConfig, --alloc=).
enum class AllocStrategyKind : std::uint8_t {
  kBump,         // monotone bump pointer (default; the historic layout)
  kSlab,         // per-(name, size-class) slabs
  kColor,        // least-loaded cache-index coloring
  kAdversarial,  // same-set packing stress baseline
};

inline const char* to_string(AllocStrategyKind kind) {
  switch (kind) {
    case AllocStrategyKind::kBump: return "bump";
    case AllocStrategyKind::kSlab: return "slab";
    case AllocStrategyKind::kColor: return "color";
    case AllocStrategyKind::kAdversarial: return "adversarial";
  }
  return "?";
}

/// Parse an `--alloc=` value; returns false (leaving `out` untouched) on an
/// unknown name so callers can print the valid set.
inline bool alloc_strategy_from_string(const std::string& s,
                                       AllocStrategyKind& out) {
  if (s == "bump") out = AllocStrategyKind::kBump;
  else if (s == "slab") out = AllocStrategyKind::kSlab;
  else if (s == "color") out = AllocStrategyKind::kColor;
  else if (s == "adversarial") out = AllocStrategyKind::kAdversarial;
  else return false;
  return true;
}

/// The cache geometry a placement strategy steers against — a value copy of
/// the MachineConfig fields that determine line->set (and line->slice)
/// mapping, so the strategy layer does not depend on the full machine
/// config. llc_sets/llc_ways describe one slice; llc_slices is the machine
/// total (1 = the classic monolithic LLC), and strategies share the
/// llc_slice_of_line hash with MemorySystem.
struct AllocGeometry {
  std::uint32_t line_bytes = 64;
  std::uint32_t l1_sets = 64;
  std::uint32_t l1_ways = 8;
  std::uint32_t llc_sets = 64;
  std::uint32_t llc_ways = 10;
  int llc_slices = 1;
};

/// Placement policy for *named* shared-heap allocations. place() returns the
/// base address for `spec` and may reserve backing pages through the heap's
/// low-level carving API (SharedHeap::bump_place / place_at). Called outside
/// the timed region (allocation is setup-phase work), single-threaded.
class AllocStrategy {
 public:
  virtual ~AllocStrategy() = default;
  virtual AllocStrategyKind kind() const = 0;
  virtual Addr place(SharedHeap& heap, const AllocSpec& spec) = 0;
};

/// Strategy factory. Every kind returns a fresh stateful instance; kBump's
/// place() is the same bump carve the anonymous path uses, so a bump heap is
/// bit-for-bit identical to a heap with no strategy attached.
std::unique_ptr<AllocStrategy> make_alloc_strategy(AllocStrategyKind kind,
                                                   const AllocGeometry& geom);

}  // namespace tsxhpc::sim
