#include "netstack/stack.h"

#include <cstring>

namespace tsxhpc::netstack {

SocketBuffer::SocketBuffer(Machine& m, sync::TxMonitor& /*monitor*/,
                           std::size_t capacity)
    : capacity_(capacity),
      data_(m.alloc({.name = "sockbuf/data", .bytes = capacity})),
      head_(sim::Shared<std::uint64_t>::alloc(m, {.name = "sockbuf/head"}, 0)),
      tail_(sim::Shared<std::uint64_t>::alloc(m, {.name = "sockbuf/tail"}, 0)),
      eof_(sim::Shared<std::uint32_t>::alloc(m, {.name = "sockbuf/eof"}, 0)),
      not_empty_(m),
      not_full_(m) {
  if (capacity % 8 != 0) {
    throw sim::SimError("socket buffer capacity must be a multiple of 8");
  }
}

std::uint64_t SocketBuffer::readable(Context& c) const {
  return tail_.load(c) - head_.load(c);
}

std::uint64_t SocketBuffer::writable(Context& c) const {
  return capacity_ - (tail_.load(c) - head_.load(c));
}

void SocketBuffer::push(Context& c, const std::uint8_t* data, std::size_t n) {
  std::uint64_t pos = tail_.load(c);
  for (std::size_t off = 0; off < n; off += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + off, 8);
    c.store(data_ + (pos + off) % capacity_, w, 8);
  }
  tail_.store(c, pos + n);
}

void SocketBuffer::pop(Context& c, std::uint8_t* out, std::size_t n) {
  std::uint64_t pos = head_.load(c);
  for (std::size_t off = 0; off < n; off += 8) {
    const std::uint64_t w = c.load(data_ + (pos + off) % capacity_, 8);
    std::memcpy(out + off, &w, 8);
  }
  head_.store(c, pos + n);
}

void SocketBuffer::mark_eof(Context& c) { eof_.store(c, 1); }
bool SocketBuffer::eof(Context& c) const { return eof_.load(c) != 0; }

NetStack::NetStack(Machine& m, sync::MonitorScheme scheme,
                   int num_connections, std::size_t socket_bytes,
                   sync::ElisionPolicy policy)
    : monitor_(m, scheme, policy),
      next_slot_(sim::Shared<std::uint64_t>::alloc(m, {.name = "netstack/next_slot"}, 0)),
      accept_head_(
          sim::Shared<std::uint64_t>::alloc(m, {.name = "netstack/accept"}, 0)),
      accept_tail_(
          sim::Shared<std::uint64_t>::alloc(m, {.name = "netstack/accept"}, 0)),
      accept_queue_(sim::SharedArray<std::uint64_t>::alloc(
          m, {.name = "netstack/accept_queue"},
          static_cast<std::size_t>(num_connections), 0)),
      listener_open_(
          sim::Shared<std::uint32_t>::alloc(m, {.name = "netstack/listener"}, 1)),
      accept_cv_(m) {
  conns_.reserve(num_connections);
  for (int i = 0; i < num_connections; ++i) {
    auto conn = std::make_unique<Connection>();
    conn->to_server = SocketBuffer(m, monitor_, socket_bytes);
    conn->to_client = SocketBuffer(m, monitor_, socket_bytes);
    conns_.push_back(std::move(conn));
  }
}

int NetStack::connect(Context& c) {
  int idx = -1;
  monitor_.enter(c, [&](sync::MonitorOps& ops) {
    c.compute(kSegmentCost);  // SYN/SYN-ACK processing
    const std::uint64_t slot = next_slot_.load(c);
    if (slot >= conns_.size()) {
      throw sim::SimError("netstack: connection slots exhausted");
    }
    next_slot_.store(c, slot + 1);
    const std::uint64_t t = accept_tail_.load(c);
    accept_queue_.at(t % conns_.size()).store(c, slot);
    accept_tail_.store(c, t + 1);
    idx = static_cast<int>(slot);
    ops.signal(accept_cv_);
  });
  return idx;
}

int NetStack::accept(Context& c) {
  int idx = kNoConnection;
  monitor_.enter(c, [&](sync::MonitorOps& ops) {
    idx = kNoConnection;
    const std::uint64_t h = accept_head_.load(c);
    if (h == accept_tail_.load(c)) {
      if (listener_open_.load(c) == 0) return;  // drained + closed
      ops.wait(accept_cv_);
    }
    c.compute(kSegmentCost);  // ACK / socket setup
    idx = static_cast<int>(accept_queue_.at(h % conns_.size()).load(c));
    accept_head_.store(c, h + 1);
  });
  return idx;
}

void NetStack::close_listener(Context& c) {
  monitor_.enter(c, [&](sync::MonitorOps& ops) {
    listener_open_.store(c, 0);
    ops.broadcast(accept_cv_);
  });
}

void NetStack::send(Context& c, SocketBuffer& dir, const std::uint8_t* data,
                    std::size_t n) {
  if (n % 8 != 0) throw sim::SimError("send size must be a multiple of 8");
  std::size_t off = 0;
  while (off < n) {
    const std::size_t seg = std::min(kMss, n - off);
    monitor_.enter(c, [&](sync::MonitorOps& ops) {
      // Read-only prefix: check space, wait if the peer is slow.
      if (dir.writable(c) < seg) ops.wait(dir.not_full());
      const bool was_empty = dir.readable(c) == 0;
      c.compute(kSegmentCost);  // header build, checksum, enqueue
      dir.push(c, data + off, seg);
      // Signal only on the empty -> non-empty transition: a reader can
      // only be waiting if it found the buffer empty.
      if (was_empty) ops.signal(dir.not_empty());
    });
    off += seg;
  }
}

std::size_t NetStack::recv(Context& c, SocketBuffer& dir, std::uint8_t* out,
                           std::size_t n) {
  n &= ~std::size_t{7};
  std::size_t got = 0;
  monitor_.enter(c, [&](sync::MonitorOps& ops) {
    got = 0;
    const std::uint64_t avail = dir.readable(c);
    if (avail == 0) {
      if (dir.eof(c)) return;  // connection drained
      ops.wait(dir.not_empty());
    }
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(avail, n));
    // A writer can only be waiting if it found less than one MSS of space.
    const bool was_tight = dir.writable(c) < kMss;
    c.compute(kSegmentCost);  // protocol receive path
    dir.pop(c, out, take);
    got = take;
    if (was_tight) ops.signal(dir.not_full());
  });
  return got;
}

void NetStack::shutdown(Context& c, SocketBuffer& dir) {
  monitor_.enter(c, [&](sync::MonitorOps& ops) {
    dir.mark_eof(c);
    ops.broadcast(dir.not_empty());
  });
}

}  // namespace tsxhpc::netstack
