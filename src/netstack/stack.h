// User-level TCP/IP-like stack (Section 6): a re-creation of the PARSEC 3.0
// multithreaded user-level network stack's synchronization structure. All
// stack synchronization — the stack lock and every condition variable —
// lives in ONE locking module (a TxMonitor), exactly like the PARSEC port
// wraps pthreads in a single locking module. Swapping the module's scheme
// converts the whole stack between the paper's five variants (mutex,
// tsx.abort, tsx.cond, mutex.busywait, tsx.busywait) with no changes to
// stack or application code.
//
// Data moves through per-connection socket ring buffers in simulated shared
// memory; the copies are timed, so protocol processing under the stack lock
// is the serialization bottleneck the paper studies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/machine.h"
#include "sim/shared.h"
#include "sync/monitor.h"

namespace tsxhpc::netstack {

using sim::Addr;
using sim::Context;
using sim::Machine;

/// Maximum segment size, in bytes (must be a multiple of 8).
inline constexpr std::size_t kMss = 1464;

/// One direction of a connection: a bounded byte ring in shared memory.
class SocketBuffer {
 public:
  SocketBuffer() = default;
  SocketBuffer(Machine& m, sync::TxMonitor& monitor, std::size_t capacity);

  /// Bytes available to read / space available to write (call under the
  /// stack monitor).
  std::uint64_t readable(Context& c) const;
  std::uint64_t writable(Context& c) const;

  /// Copy `n` bytes (multiple of 8) in/out; caller must have checked
  /// readable/writable under the monitor.
  void push(Context& c, const std::uint8_t* data, std::size_t n);
  void pop(Context& c, std::uint8_t* out, std::size_t n);

  sync::CondVar& not_empty() { return not_empty_; }
  sync::CondVar& not_full() { return not_full_; }
  std::size_t capacity() const { return capacity_; }

  /// Sender is done; readers must not wait once drained.
  void mark_eof(Context& c);
  bool eof(Context& c) const;

 private:
  std::size_t capacity_ = 0;
  Addr data_ = sim::kNullAddr;
  sim::Shared<std::uint64_t> head_;  // total bytes consumed
  sim::Shared<std::uint64_t> tail_;  // total bytes produced
  sim::Shared<std::uint32_t> eof_;
  sync::CondVar not_empty_;
  sync::CondVar not_full_;
};

/// A full-duplex connection: client->server and server->client buffers.
struct Connection {
  SocketBuffer to_server;
  SocketBuffer to_client;
};

/// The stack: a set of connections plus the single locking module.
class NetStack {
 public:
  /// Returned by accept(); -1 = listener shut down and drained.
  static constexpr int kNoConnection = -1;
  /// `scheme` selects the locking-module implementation (Figure 6 series).
  NetStack(Machine& m, sync::MonitorScheme scheme, int num_connections,
           std::size_t socket_bytes = 16 * 1024,
           sync::ElisionPolicy policy = {});

  Connection& conn(int i) { return *conns_[i]; }
  int num_connections() const { return static_cast<int>(conns_.size()); }
  sync::TxMonitor& monitor() { return monitor_; }

  // --- Blocking socket API (application side) -----------------------------

  /// Send `n` bytes (multiple of 8), segmenting into MSS-sized protocol
  /// units. Blocks (per the locking module's wait policy) when the peer's
  /// buffer is full.
  void send(Context& c, SocketBuffer& dir, const std::uint8_t* data,
            std::size_t n);

  /// Receive up to `n` bytes; blocks until at least 8 bytes are available
  /// or EOF. Returns bytes read (0 = EOF and drained).
  std::size_t recv(Context& c, SocketBuffer& dir, std::uint8_t* out,
                   std::size_t n);

  /// Close the sending side.
  void shutdown(Context& c, SocketBuffer& dir);

  /// Protocol-processing cycles charged under the stack lock per segment
  /// (header parsing, checksum, demux — the PARSEC stack does this under
  /// its lock, which is why eliding it exposes concurrency).
  static constexpr sim::Cycles kSegmentCost = 350;

  // --- Connection establishment (listen/accept/connect) -------------------
  // Connection slots are provisioned up front (num_connections); connect()
  // claims one and enqueues it on the accept queue; accept() blocks on the
  // stack's locking module until a connection (or listener shutdown)
  // arrives. Handshake processing is charged under the stack lock, like
  // everything else.

  /// Client side: claim a connection slot and enqueue it for accept().
  /// Returns the connection index.
  int connect(Context& c);

  /// Server side: wait for the next incoming connection; returns its index
  /// or kNoConnection once the listener is closed and the backlog drained.
  int accept(Context& c);

  /// Stop accepting: pending and future accept() calls drain then return
  /// kNoConnection.
  void close_listener(Context& c);

 private:
  sync::TxMonitor monitor_;
  std::vector<std::unique_ptr<Connection>> conns_;
  // Accept queue state (shared words guarded by the locking module).
  sim::Shared<std::uint64_t> next_slot_;
  sim::Shared<std::uint64_t> accept_head_;
  sim::Shared<std::uint64_t> accept_tail_;
  sim::SharedArray<std::uint64_t> accept_queue_;
  sim::Shared<std::uint32_t> listener_open_;
  sync::CondVar accept_cv_;
};

}  // namespace tsxhpc::netstack
