// RMS-TM benchmark suite (Kestor et al. [16]), re-implemented against the
// simulator (Section 4.3 / Figure 3).
//
// Unlike STAMP, RMS-TM adapts *existing* fine-grained-lock applications:
// critical sections have moderate footprints, no accesses are annotated,
// and the workloads perform native memory allocation and file I/O inside
// critical sections (the paper disables TM-MEM / TM-FILE, so those system
// calls happen inside transactional regions and force early fallback).
//
// Schemes compared, as in Figure 3:
//   fgl - the application's original fine-grained locks
//   sgl - every critical section maps to ONE global lock
//   tsx - the same single-global-lock sections, elided with RTM
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sync/elision.h"

namespace tsxhpc::rmstm {

enum class Scheme { kFgl, kSgl, kTsx };

const char* to_string(Scheme s);

struct Config {
  Scheme scheme = Scheme::kFgl;
  int threads = 1;
  std::uint64_t seed = 7;
  double scale = 1.0;
  sync::ElisionPolicy policy{};
  /// Telemetry label for the runs this invocation records (carried into
  /// Machine::run via RunSpec; empty = telemetry default naming).
  std::string run_label;
  sim::MachineConfig machine{};
};

struct Result {
  sim::Cycles makespan = 0;
  sim::RunStats stats;
  std::uint64_t checksum = 0;
};

using WorkloadFn = std::function<Result(const Config&)>;

struct Workload {
  std::string name;
  WorkloadFn fn;
};

Result run_apriori(const Config& cfg);
Result run_scalparc(const Config& cfg);
Result run_utilitymine(const Config& cfg);
Result run_fluidanimate(const Config& cfg);

const std::vector<Workload>& all_workloads();

}  // namespace tsxhpc::rmstm
