// RMS-TM fluidanimate (from PARSEC): SPH fluid simulation. Force
// accumulation between particles in neighbouring grid cells takes one lock
// per cell — a torrent of *tiny* critical sections. Under a single global
// lock the sheer synchronization frequency serializes the run (Figure 3's
// sgl collapse); fine-grained locks and TSX elision both scale.
#include "rmstm/common.h"

namespace tsxhpc::rmstm {

Result run_fluidanimate(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t grid_dim = 16;
  const std::size_t n_cells = grid_dim * grid_dim;
  const std::size_t n_particles = scaled(cfg.scale, 4096, 256);
  const int timesteps = 2;
  CsRunner cs(m, cfg, n_cells);

  // Per-cell force accumulators (3 components + density).
  auto force = SharedArray<std::uint64_t>::alloc(m, {.name = "fluid/force"}, n_cells * 4, 0);

  // Particle -> cell assignment (host-side; rebinning not modeled).
  std::vector<std::uint32_t> cell_of(n_particles);
  Xoshiro256 rng(cfg.seed);
  for (auto& c0 : cell_of) {
    c0 = static_cast<std::uint32_t>(rng.next_below(n_cells));
  }

  const std::uint64_t total_items =
      static_cast<std::uint64_t>(timesteps) * n_particles;
  auto next = Shared<std::uint64_t>::alloc(m, {.name = "fluid/next"}, 0);
  Result r = run_region(cfg, m, [&](Context& c) {
    for (;;) {
      const std::uint64_t b = next.fetch_add(c, 16);
      if (b >= total_items) break;
      const std::uint64_t e = std::min<std::uint64_t>(b + 16, total_items);
      for (std::uint64_t i = b; i < e; ++i) {
        const std::uint64_t p = i % n_particles;
        const std::size_t cell = cell_of[p];
        const std::size_t neighbor =
            (cell + 1 + (p % 3) * grid_dim) % n_cells;
        // Kernel evaluation between the particle and its neighbours.
        c.compute(90);
        // Tiny critical section #1: own-cell density update.
        cs.section(c, cell, [&] {
          const Addr d = force.addr(cell * 4 + 3);
          c.store(d, c.load(d) + 1);
        });
        // Tiny critical section #2: symmetric force on the neighbour
        // cell (the original acquires that cell's lock).
        cs.section(c, neighbor, [&] {
          const Addr fx = force.addr(neighbor * 4);
          c.store(fx, c.load(fx) + p % 7);
        });
      }
    }
  });

  std::uint64_t density = 0;
  for (std::size_t i = 0; i < n_cells; ++i) {
    density += force.at(i * 4 + 3).peek(m);
  }
  r.checksum =
      density == static_cast<std::uint64_t>(timesteps) * n_particles
          ? 0xF1D
          : 0;
  return r;
}

}  // namespace tsxhpc::rmstm
