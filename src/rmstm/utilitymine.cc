// RMS-TM UtilityMine: high-utility itemset mining. More than 30% of the
// execution is spent in critical sections updating the shared utility
// table (Section 4.3 cites this number) — so a single global lock fails to
// scale, while fine-grained locks and Intel TSX both exploit the available
// parallelism. This and fluidanimate are the two workloads where Figure 3
// separates sgl from fgl/tsx.
#include "rmstm/common.h"

namespace tsxhpc::rmstm {

Result run_utilitymine(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_items = 512;
  const std::size_t n_transactions = scaled(cfg.scale, 1024, 64);
  constexpr std::size_t kTxnLen = 8;
  CsRunner cs(m, cfg, n_items);

  // Per-item utility accumulators (the shared table).
  auto utility =
      SharedArray<std::uint64_t>::alloc(m, {.name = "utility/utility"}, n_items, 0);
  auto twu =
      SharedArray<std::uint64_t>::alloc(m, {.name = "utility/twu"}, n_items, 0);

  struct Entry {
    std::uint16_t item;
    std::uint16_t qty;
  };
  std::vector<std::array<Entry, kTxnLen>> txns(n_transactions);
  Xoshiro256 rng(cfg.seed);
  for (auto& t : txns) {
    for (auto& e : t) {
      e = {static_cast<std::uint16_t>(rng.next_below(n_items)),
           static_cast<std::uint16_t>(1 + rng.next_below(9))};
    }
  }

  auto next = Shared<std::uint64_t>::alloc(m, {.name = "utility/next"}, 0);
  Result r = run_region(cfg, m, [&](Context& c) {
    for (;;) {
      const std::uint64_t i = next.fetch_add(c, 1);
      if (i >= n_transactions) break;
      const auto& t = txns[i];
      // Transaction-utility computation: light parallel work — the
      // critical sections below are >30% of the execution.
      std::uint64_t txn_utility = 0;
      for (const auto& e : t) txn_utility += e.qty * 10;
      c.compute(350);
      for (const auto& e : t) {
        cs.section(c, e.item, [&] {
          const Addr u = utility.addr(e.item);
          c.store(u, c.load(u) + e.qty * 10);
          const Addr w = twu.addr(e.item);
          c.store(w, c.load(w) + txn_utility);
          c.compute(60);  // candidate pruning bookkeeping under the lock
        });
      }
    }
  });

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_items; ++i) total += utility.at(i).peek(m);
  std::uint64_t expect = 0;
  for (const auto& t : txns) {
    for (const auto& e : t) expect += e.qty * 10;
  }
  r.checksum = total == expect ? 0x07117 : 0;
  return r;
}

}  // namespace tsxhpc::rmstm
