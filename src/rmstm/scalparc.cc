// RMS-TM ScalParC: parallel decision-tree classification. Threads partition
// attribute records to child nodes and update per-node class histograms;
// the original code takes one lock per tree node. Critical sections are
// moderate and well spread, so all three schemes scale (Figure 3 shows no
// sgl collapse for ScalParC-like workloads).
#include "rmstm/common.h"

namespace tsxhpc::rmstm {

Result run_scalparc(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_nodes = 128;   // current tree frontier
  const std::size_t n_classes = 4;
  const std::size_t n_records = scaled(cfg.scale, 8192, 256);
  CsRunner cs(m, cfg, n_nodes);

  // Per-node class histograms and record counts.
  auto hist = SharedArray<std::uint64_t>::alloc(m, {.name = "scalparc/hist"}, n_nodes * n_classes, 0);
  auto node_count = SharedArray<std::uint64_t>::alloc(m, {.name = "scalparc/node_count"}, n_nodes, 0);

  // Records: (attribute value, class label), host-side input.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> records(n_records);
  Xoshiro256 rng(cfg.seed);
  for (auto& rec : records) {
    rec = {static_cast<std::uint32_t>(rng.next()),
           static_cast<std::uint8_t>(rng.next_below(n_classes))};
  }

  auto next = Shared<std::uint64_t>::alloc(m, {.name = "scalparc/next"}, 0);
  Result r = run_region(cfg, m, [&](Context& c) {
    for (;;) {
      const std::uint64_t b = next.fetch_add(c, 8);
      if (b >= n_records) break;
      const std::uint64_t e = std::min<std::uint64_t>(b + 8, n_records);
      for (std::uint64_t i = b; i < e; ++i) {
        const auto [attr, label] = records[i];
        // Split-criterion evaluation: the parallel bulk.
        c.compute(600);
        const std::size_t node = attr % n_nodes;
        cs.section(c, node, [&] {
          const Addr h = hist.addr(node * n_classes + label);
          c.store(h, c.load(h) + 1);
          c.store(node_count.addr(node), c.load(node_count.addr(node)) + 1);
        });
      }
    }
  });

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_nodes; ++i) total += node_count.at(i).peek(m);
  std::uint64_t htotal = 0;
  for (std::size_t i = 0; i < n_nodes * n_classes; ++i) {
    htotal += hist.at(i).peek(m);
  }
  r.checksum = (total == n_records && htotal == n_records) ? 0x5CA1 : 0;
  return r;
}

}  // namespace tsxhpc::rmstm
