// Shared scaffolding for RMS-TM workloads: the scheme-dispatching critical
// section runner.
#pragma once

#include <algorithm>
#include <vector>

#include "rmstm/rmstm.h"
#include "sim/rng.h"
#include "sim/shared.h"
#include "sync/locks.h"

namespace tsxhpc::rmstm {

using sim::Addr;
using sim::Context;
using sim::Cycles;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;
using sim::Xoshiro256;

/// Runs critical sections under the configured scheme. `entity` selects the
/// fine-grained lock; sgl and tsx ignore it (one global lock, the tsx
/// scheme eliding exactly that lock — Section 4.3: "the code section that
/// is being synchronized is the same as Intel TSX").
class CsRunner {
 public:
  CsRunner(Machine& m, const Config& cfg, std::size_t n_entities)
      : scheme_(cfg.scheme), global_(m, cfg.policy) {
    fine_.reserve(n_entities);
    for (std::size_t i = 0; i < n_entities; ++i) fine_.emplace_back(m);
  }

  template <typename F>
  void section(Context& c, std::size_t entity, F&& f) {
    switch (scheme_) {
      case Scheme::kFgl: {
        sync::Guard<sync::SpinLock> g(c, fine_[entity]);
        f();
        return;
      }
      case Scheme::kSgl: {
        sync::Guard<sync::SpinLock> g(c, global_.underlying());
        f();
        return;
      }
      case Scheme::kTsx:
        global_.critical(c, f);
        return;
    }
  }

  /// Two-entity critical section (fgl acquires both locks in index order).
  template <typename F>
  void section2(Context& c, std::size_t e1, std::size_t e2, F&& f) {
    if (scheme_ != Scheme::kFgl || e1 == e2) {
      section(c, e1, std::forward<F>(f));
      return;
    }
    const std::size_t lo = std::min(e1, e2), hi = std::max(e1, e2);
    sync::Guard<sync::SpinLock> g1(c, fine_[lo]);
    sync::Guard<sync::SpinLock> g2(c, fine_[hi]);
    f();
  }

  const sync::ElisionStats& elision_stats() const { return global_.stats(); }

 private:
  Scheme scheme_;
  sync::ElidedLock global_;
  std::vector<sync::SpinLock> fine_;
};

/// Run the SPMD region and collect a Result.
template <typename BodyFn>
Result run_region(const Config& cfg, Machine& m, BodyFn&& body) {
  Result r;
  sim::RunSpec spec;
  spec.threads = cfg.threads;
  spec.label = cfg.run_label;
  spec.body = std::forward<BodyFn>(body);
  r.stats = m.run(spec);
  r.makespan = r.stats.makespan;
  return r;
}

inline std::size_t scaled(double scale, std::size_t base,
                          std::size_t min = 1) {
  const auto v = static_cast<std::size_t>(base * scale);
  return v < min ? min : v;
}

}  // namespace tsxhpc::rmstm
