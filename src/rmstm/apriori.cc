// RMS-TM apriori: frequent-itemset mining. Threads scan transaction baskets
// and bump support counters in a shared candidate hash tree, guarded by
// per-bucket locks in the original code. Critical sections are a small
// fraction of the work, but they perform *native memory allocation* (node
// expansion) and occasional *file I/O* (logging) — with TM-MEM / TM-FILE
// disabled these system calls occur inside transactional regions, which is
// exactly the hazard Section 4.3 studies: as long as the abort is detected
// early and the lock acquired, they are not a performance disaster.
#include "rmstm/common.h"

namespace tsxhpc::rmstm {

Result run_apriori(const Config& cfg) {
  Machine m(cfg.machine);
  const std::size_t n_buckets = 256;
  const std::size_t n_items = 64;
  const std::size_t n_baskets = scaled(cfg.scale, 1536, 64);
  constexpr std::size_t kBasketLen = 6;
  CsRunner cs(m, cfg, n_buckets);

  // Candidate pair-support counters, bucketed: support[bucket][slot].
  constexpr std::size_t kSlots = 8;
  auto support =
      SharedArray<std::uint64_t>::alloc(m, {.name = "apriori/buckets"}, n_buckets * kSlots, 0);
  // Expansion count per bucket: models hash-tree node splits (mallocs).
  auto expansions = SharedArray<std::uint64_t>::alloc(m, {.name = "apriori/expansions"}, n_buckets, 0);

  // Input baskets (host-side, read-only).
  std::vector<std::array<std::uint16_t, kBasketLen>> baskets(n_baskets);
  Xoshiro256 rng(cfg.seed);
  for (auto& b : baskets) {
    for (auto& item : b) {
      item = static_cast<std::uint16_t>(rng.next_below(n_items));
    }
  }

  auto next = Shared<std::uint64_t>::alloc(m, {.name = "apriori/next"}, 0);
  Result r = run_region(cfg, m, [&](Context& c) {
    for (;;) {
      const std::uint64_t i = next.fetch_add(c, 1);
      if (i >= n_baskets) break;
      const auto& basket = baskets[i];
      // Candidate generation / subset enumeration: the parallel bulk.
      c.compute(4000);
      for (std::size_t a = 0; a < kBasketLen; ++a) {
        for (std::size_t b = a + 1; b < kBasketLen; ++b) {
          const std::uint64_t pair = basket[a] * n_items + basket[b];
          const std::size_t bucket = pair % n_buckets;
          const std::size_t slot = (pair / n_buckets) % kSlots;
          cs.section(c, bucket, [&] {
            const Addr cell = support.addr(bucket * kSlots + slot);
            const std::uint64_t cnt = c.load(cell) + 1;
            c.store(cell, cnt);
            // Node split every 16 hits: native malloc inside the CS.
            if (cnt % 16 == 0) {
              c.syscall(300);  // mmap-backed allocation
              c.store(expansions.addr(bucket),
                      c.load(expansions.addr(bucket)) + 1);
            }
            // Periodic candidate logging: file I/O inside the CS.
            if (cnt % 64 == 0) c.syscall(600);
          });
        }
      }
    }
  });

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets * kSlots; ++i) {
    total += support.at(i).peek(m);
  }
  const std::uint64_t expect =
      n_baskets * (kBasketLen * (kBasketLen - 1) / 2);
  r.checksum = total == expect ? 0xA1 + total % 7 : 0;
  return r;
}

}  // namespace tsxhpc::rmstm
