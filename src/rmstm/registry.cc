#include "rmstm/rmstm.h"

namespace tsxhpc::rmstm {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kFgl: return "fgl";
    case Scheme::kSgl: return "sgl";
    case Scheme::kTsx: return "tsx";
  }
  return "?";
}

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> kWorkloads = {
      {"apriori", run_apriori},
      {"scalparc", run_scalparc},
      {"utilitymine", run_utilitymine},
      {"fluidanimate", run_fluidanimate},
  };
  return kWorkloads;
}

}  // namespace tsxhpc::rmstm
