// The TM macro layer used by the benchmark suites (Section 4): one region
// API, interchangeable concurrency-control backends behind the CcBackend
// seam (cc.h) —
//   sgl           : transactional regions become critical sections under one
//                   global lock (the paper's "sgl" series);
//   tl2           : regions run under the TL2 STM, tracking only annotated
//                   accesses (the "tl2" series);
//   tsx           : regions elide the same single global lock with RTM (the
//                   "tsx" series — the paper's approach);
//   tictoc        : TicToc timestamp-ordering OCC, optimistic reads with
//                   commit-time rts extension;
//   tictoc-hybrid : TicToc with optimistic first attempts and no-wait
//                   locking reads on retries;
//   mvcc          : multi-version CC — snapshot reads that never abort,
//                   validation-free read-only commits, epoch GC.
//
// Workload code is written once against TmAccess:
//   thread.atomic(c, [&](TmAccess& tm) {
//     auto v = tm.read(cell);           // annotated (CC-tracked) access
//     tm.write(cell, v + 1);
//     tm.ctx().load(other);             // unannotated access (plain)
//   });
#pragma once

#include <cstdint>
#include <memory>

#include "stm/tl2.h"
#include "sync/elision.h"
#include "sync/locks.h"
#include "tmlib/cc.h"

namespace tsxhpc::tmlib {

/// Shared, per-run TM state (one instance per Machine/workload run).
class TmRuntime {
 public:
  TmRuntime(Machine& m, Backend backend,
            sync::ElisionPolicy policy = {})
      : backend_(backend),
        global_lock_(m, policy),
        tl2_space_(m),
        machine_(&m),
        cc_(make_cc_backend(m, backend, global_lock_, tl2_space_)) {}

  Backend backend() const { return backend_; }
  sync::ElidedLock& global_lock() { return global_lock_; }
  stm::Tl2Space& tl2_space() { return tl2_space_; }
  Machine& machine() { return *machine_; }
  CcBackend& cc_backend() { return *cc_; }

  /// Aggregated CC statistics, reported by TmThread on destruction
  /// (host-side state; simulated threads are token-serialized). Also
  /// forwarded into the open telemetry run's `cc` block, if any.
  void record_cc(const sim::CcStats& s) {
    cc_stats_.merge(s);
    if (auto* tel = machine_->telemetry()) tel->record_cc(s);
  }
  const sim::CcStats& cc_stats() const { return cc_stats_; }

 private:
  Backend backend_;
  // Pre-seam allocation order (lock word, then TL2 clock + stripes) is load-
  // bearing: sgl/tl2/tsx goldens were captured against this heap layout.
  // New backends allocate their spaces inside make_cc_backend, *after*.
  sync::ElidedLock global_lock_;
  stm::Tl2Space tl2_space_;
  Machine* machine_;
  sim::CcStats cc_stats_;
  std::unique_ptr<CcBackend> cc_;
};

class TmAccess;

/// Per-thread TM handle; construct inside the thread body.
class TmThread {
 public:
  TmThread(TmRuntime& rt, Context& c)
      : rt_(rt), c_(c), cc_(rt.cc_backend().attach()) {}

  ~TmThread() { rt_.record_cc(cc_->stats()); }

  TmThread(const TmThread&) = delete;
  TmThread& operator=(const TmThread&) = delete;

  /// Execute `f(TmAccess&)` as one transactional region. Under the STM and
  /// tsx backends the body may re-execute after aborts; host side effects
  /// must follow the same idempotence rules as ElidedLock::critical.
  template <typename F>
  void atomic(F&& f);

  Context& ctx() { return c_; }
  TmRuntime& runtime() { return rt_; }
  CcThread& cc() { return *cc_; }

 private:
  friend class TmAccess;
  TmRuntime& rt_;
  Context& c_;
  std::unique_ptr<CcThread> cc_;
};

/// Access handle passed to a region body. read()/write() are the *annotated*
/// accesses (STAMP's TM_SHARED_READ/TM_SHARED_WRITE): instrumented under the
/// STM backends, plain (but transactional at cache-line level) under tsx,
/// plain under sgl. Unannotated accesses go through ctx() directly.
class TmAccess {
 public:
  std::uint64_t read(Addr a, unsigned size = 8) {
    return cc_->read(c_, a, size);
  }

  void write(Addr a, std::uint64_t v, unsigned size = 8) {
    cc_->write(c_, a, v, size);
  }

  // Typed convenience over Shared<T>.
  template <typename T>
  T read(sim::Shared<T> s) {
    return sim::detail::decode<T>(read(s.addr(), sizeof(T)));
  }
  template <typename T>
  void write(sim::Shared<T> s, T v) {
    write(s.addr(), sim::detail::encode(v), sizeof(T));
  }

  // Transaction-aware allocation (STAMP's TM_MALLOC / TM_FREE). ArenaT is
  // any allocator with alloc(Context&, size, reuse) and free(Context&,
  // addr, size) — in practice containers::TxArena.
  //
  // Under the write-buffering (STM) backends, frees are deferred to commit
  // (an abort must resurrect the block) and the free list is never reused
  // (recycling writes memory that per-stripe validation cannot see; real
  // TL2 allocators use quiescence). Under tsx the arena defers by itself
  // via Context::in_txn().
  template <typename ArenaT>
  Addr alloc(ArenaT& arena, std::size_t bytes) {
    return arena.alloc(c_, bytes, /*reuse=*/!cc_->buffers_writes());
  }

  template <typename ArenaT>
  void free(ArenaT& arena, Addr a, std::size_t bytes) {
    if (cc_->buffers_writes()) {
      cc_->defer_to_commit([&arena, a, bytes](Context& c) {
        arena.free(c, a, bytes);
      });
      c_.compute(10);
    } else {
      arena.free(c_, a, bytes);
    }
  }

  Context& ctx() { return c_; }
  Backend backend() const { return backend_; }

 private:
  friend class TmThread;
  TmAccess(TmThread& t)
      : c_(t.c_), cc_(t.cc_.get()), backend_(t.rt_.backend()) {}
  Context& c_;
  CcThread* cc_;
  Backend backend_;
};

template <typename F>
void TmThread::atomic(F&& f) {
  TmAccess access(*this);
  auto body = [&] { f(access); };
  cc_->execute(c_, RegionRef::of(body));
}

}  // namespace tsxhpc::tmlib
