// The TM macro layer used by the benchmark suites (Section 4): one region
// API, three interchangeable backends —
//   sgl : transactional regions become critical sections under one global
//         lock (the paper's "sgl" series);
//   tl2 : regions run under the TL2 STM, tracking only annotated accesses
//         (the "tl2" series);
//   tsx : regions elide the same single global lock with RTM (the "tsx"
//         series — the paper's approach: no application changes, only the
//         synchronization library changes).
//
// Workload code is written once against TmAccess:
//   thread.atomic(c, [&](TmAccess& tm) {
//     auto v = tm.read(cell);           // annotated (STM-tracked) access
//     tm.write(cell, v + 1);
//     tm.ctx().load(other);             // unannotated access (plain)
//   });
#pragma once

#include <cstdint>

#include "stm/tl2.h"
#include "sync/elision.h"
#include "sync/locks.h"

namespace tsxhpc::tmlib {

using sim::Addr;
using sim::Context;
using sim::Machine;

enum class Backend { kSgl, kTl2, kTsx };

const char* to_string(Backend b);

/// Shared, per-run TM state (one instance per Machine/workload run).
class TmRuntime {
 public:
  TmRuntime(Machine& m, Backend backend,
            sync::ElisionPolicy policy = {})
      : backend_(backend),
        global_lock_(m, policy),
        tl2_space_(m),
        machine_(&m) {}

  Backend backend() const { return backend_; }
  sync::ElidedLock& global_lock() { return global_lock_; }
  stm::Tl2Space& tl2_space() { return tl2_space_; }
  Machine& machine() { return *machine_; }

  // Aggregated TL2 statistics, reported by TmThread on destruction
  // (host-side state; simulated threads are token-serialized).
  void report_tl2(std::uint64_t starts, std::uint64_t commits,
                  std::uint64_t aborts) {
    tl2_starts_ += starts;
    tl2_commits_ += commits;
    tl2_aborts_ += aborts;
  }
  std::uint64_t tl2_starts() const { return tl2_starts_; }
  std::uint64_t tl2_aborts() const { return tl2_aborts_; }
  double tl2_abort_rate_pct() const {
    return tl2_starts_ == 0 ? 0.0
                            : 100.0 * static_cast<double>(tl2_aborts_) /
                                  static_cast<double>(tl2_starts_);
  }

 private:
  Backend backend_;
  sync::ElidedLock global_lock_;
  stm::Tl2Space tl2_space_;
  Machine* machine_;
  std::uint64_t tl2_starts_ = 0;
  std::uint64_t tl2_commits_ = 0;
  std::uint64_t tl2_aborts_ = 0;
};

class TmAccess;

/// Per-thread TM handle; construct inside the thread body.
class TmThread {
 public:
  TmThread(TmRuntime& rt, Context& c) : rt_(rt), c_(c), tl2_(rt.tl2_space()) {}

  ~TmThread() { rt_.report_tl2(tl2_.starts(), tl2_.commits(), tl2_.aborts()); }

  TmThread(const TmThread&) = delete;
  TmThread& operator=(const TmThread&) = delete;

  /// Execute `f(TmAccess&)` as one transactional region. Under tl2 and tsx
  /// the body may re-execute after aborts; host side effects must follow
  /// the same idempotence rules as ElidedLock::critical.
  template <typename F>
  void atomic(F&& f);

  Context& ctx() { return c_; }
  TmRuntime& runtime() { return rt_; }

 private:
  friend class TmAccess;
  TmRuntime& rt_;
  Context& c_;
  stm::Tl2Tx tl2_;
};

/// Access handle passed to a region body. read()/write() are the *annotated*
/// accesses (STAMP's TM_SHARED_READ/TM_SHARED_WRITE): instrumented under
/// TL2, plain (but transactional at cache-line level) under tsx, plain under
/// sgl. Unannotated accesses go through ctx() directly.
class TmAccess {
 public:
  std::uint64_t read(Addr a, unsigned size = 8) {
    if (backend_ == Backend::kTl2) return t_.tl2_.read(c_, a, size);
    return c_.load(a, size);
  }

  void write(Addr a, std::uint64_t v, unsigned size = 8) {
    if (backend_ == Backend::kTl2) {
      t_.tl2_.write(c_, a, v, size);
    } else {
      c_.store(a, v, size);
    }
  }

  // Typed convenience over Shared<T>.
  template <typename T>
  T read(sim::Shared<T> s) {
    return sim::detail::decode<T>(read(s.addr(), sizeof(T)));
  }
  template <typename T>
  void write(sim::Shared<T> s, T v) {
    write(s.addr(), sim::detail::encode(v), sizeof(T));
  }

  // Transaction-aware allocation (STAMP's TM_MALLOC / TM_FREE). ArenaT is
  // any allocator with alloc(Context&, size, reuse) and free(Context&,
  // addr, size) — in practice containers::TxArena.
  //
  // Under tl2, frees are deferred to commit (an abort must resurrect the
  // block) and the free list is never reused (recycling writes memory that
  // per-stripe validation cannot see; real TL2 allocators use quiescence).
  // Under tsx the arena defers by itself via Context::in_txn().
  template <typename ArenaT>
  Addr alloc(ArenaT& arena, std::size_t bytes) {
    return arena.alloc(c_, bytes, /*reuse=*/backend_ != Backend::kTl2);
  }

  template <typename ArenaT>
  void free(ArenaT& arena, Addr a, std::size_t bytes) {
    if (backend_ == Backend::kTl2) {
      t_.tl2_.on_commit([&arena, a, bytes](Context& c) {
        arena.free(c, a, bytes);
      });
      c_.compute(10);
    } else {
      arena.free(c_, a, bytes);
    }
  }

  Context& ctx() { return c_; }
  Backend backend() const { return backend_; }

 private:
  friend class TmThread;
  TmAccess(TmThread& t) : t_(t), c_(t.c_), backend_(t.rt_.backend()) {}
  TmThread& t_;
  Context& c_;
  Backend backend_;
};

template <typename F>
void TmThread::atomic(F&& f) {
  TmAccess access(*this);
  switch (rt_.backend()) {
    case Backend::kSgl: {
      auto& lock = rt_.global_lock().underlying();
      lock.acquire(c_);
      f(access);
      lock.release(c_);
      return;
    }
    case Backend::kTsx: {
      rt_.global_lock().critical(c_, [&] { f(access); });
      return;
    }
    case Backend::kTl2: {
      sim::Cycles backoff = 80;
      for (;;) {
        tl2_.begin(c_);
        try {
          f(access);
          tl2_.commit(c_);
          return;
        } catch (const stm::StmAbort&) {
          c_.compute(backoff);
          if (backoff < 4000) backoff *= 2;
        }
      }
    }
  }
  throw sim::SimError("unreachable: unknown TM backend");
}

}  // namespace tsxhpc::tmlib
