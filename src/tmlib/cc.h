// The pluggable concurrency-control seam behind the TM macro layer —
// tmlib's analogue of the sync::TxPolicy seam: a per-run `CcBackend` owns
// whatever shared state the scheme needs (stripe tables, clocks, version
// chains), hands out one `CcThread` per simulated thread, and the macro
// layer (`TmThread::atomic`, `TmAccess::read/write`) funnels every region
// and every annotated access through the handle's hooks.
//
// The seam replaced the closed three-value switch in tm.h. The contract
// that made that safe, and that every new backend must honor:
//
//   * `execute` owns the whole region lifecycle — retry loop, backoff,
//     abort classification. The body may run multiple times; host side
//     effects inside it follow the same idempotence rules as
//     ElidedLock::critical.
//   * `read`/`write` are the *annotated* accesses (STAMP's TM_SHARED_*).
//     The defaults are plain timed load/store — correct for any scheme
//     whose region is a real critical section (sgl, tsx).
//   * Virtual dispatch is host-side only: a hook implementation charges
//     exactly the simulated operations the scheme needs, so re-expressing
//     a scheme through the seam is bit-for-bit (proven for sgl/tl2/tsx by
//     tests/cc_equivalence_test.cc against pre-seam goldens).
//   * Every handle keeps its own CcStats; TmThread reports them to the
//     runtime on destruction, which merges them into the run's telemetry
//     `cc` block (v7) — the successor of the old report_tl2 side-channel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/context.h"
#include "sim/telemetry.h"

namespace tsxhpc::sync {
class ElidedLock;
}
namespace tsxhpc::stm {
class Tl2Space;
}

namespace tsxhpc::tmlib {

using sim::Addr;
using sim::Context;
using sim::Machine;

/// The scheme axis (`--scheme=` on every bench that takes one).
enum class Backend { kSgl, kTl2, kTsx, kTicToc, kTicTocHybrid, kMvcc };

const char* to_string(Backend b);

/// All schemes, in CLI/display order.
const std::vector<Backend>& all_backends();

/// Parse a scheme name; returns false (out untouched) on an unknown name.
bool backend_from_name(const std::string& name, Backend* out);

/// True for the software-TM schemes: writes are buffered until commit, the
/// region body may re-execute, frees must defer to commit, and the arena
/// free list must not be recycled (per-stripe validation cannot see it).
inline bool is_stm(Backend b) {
  return b == Backend::kTl2 || b == Backend::kTicToc ||
         b == Backend::kTicTocHybrid || b == Backend::kMvcc;
}

/// Non-owning reference to a region body (the `atomic` lambda wrapped with
/// its TmAccess). A plain (object, fn) pair rather than std::function so
/// per-region host overhead stays two indirect calls, no allocation.
class RegionRef {
 public:
  template <typename F>
  static RegionRef of(F& f) {
    return RegionRef(&f, [](void* o) { (*static_cast<F*>(o))(); });
  }
  void operator()() const { fn_(obj_); }

 private:
  RegionRef(void* obj, void (*fn)(void*)) : obj_(obj), fn_(fn) {}
  void* obj_;
  void (*fn_)(void*);
};

/// Per-thread handle: the scheme's transaction descriptor plus its stats.
class CcThread {
 public:
  virtual ~CcThread() = default;

  /// Run one transactional region to completion (committed).
  virtual void execute(Context& c, RegionRef body) = 0;

  /// Annotated read/write. Defaults are plain timed accesses.
  virtual std::uint64_t read(Context& c, Addr a, unsigned size) {
    return c.load(a, size);
  }
  virtual void write(Context& c, Addr a, std::uint64_t v, unsigned size) {
    c.store(a, v, size);
  }

  /// True when writes are buffered until commit (STM schemes): TmAccess
  /// then defers frees via defer_to_commit and disables arena reuse.
  virtual bool buffers_writes() const { return false; }

  /// Register an action to run iff the current region commits. Only valid
  /// when buffers_writes() — direct schemes free inline instead.
  virtual void defer_to_commit(std::function<void(Context&)> /*action*/) {
    throw sim::SimError("defer_to_commit on a non-buffering CC backend");
  }

  const sim::CcStats& stats() const { return stats_; }

 protected:
  sim::CcStats stats_;
};

/// Per-run backend: owns the scheme's shared state, vends thread handles.
class CcBackend {
 public:
  virtual ~CcBackend() = default;
  virtual const char* name() const = 0;
  virtual std::unique_ptr<CcThread> attach() = 0;
};

/// Build the backend for `b`. The sgl/tl2/tsx backends borrow the runtime's
/// pre-seam allocations (`global_lock`, `tl2_space`) so their heap layout —
/// and therefore their telemetry — is bit-for-bit the pre-seam layout; the
/// new schemes allocate their own spaces afterwards (appended allocations
/// do not disturb the historic `bump` layout).
std::unique_ptr<CcBackend> make_cc_backend(Machine& m, Backend b,
                                           sync::ElidedLock& global_lock,
                                           stm::Tl2Space& tl2_space);

}  // namespace tsxhpc::tmlib
