// Concrete CcBackend adapters. The sgl/tl2/tsx adapters re-express the
// pre-seam switch dispatch *exactly* — same simulated operations in the
// same order — so their telemetry is bit-for-bit the pre-seam output
// (tests/cc_equivalence_test.cc proves it against committed goldens). The
// tictoc/tictoc-hybrid/mvcc adapters share the STM retry-loop shape
// (backoff 80 doubling to 4000, like tl2) so scheme comparisons measure
// the algorithms, not harness skew.

#include "tmlib/tm.h"

#include <memory>
#include <utility>

#include "stm/mvcc.h"
#include "stm/tictoc.h"

namespace tsxhpc::tmlib {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSgl: return "sgl";
    case Backend::kTl2: return "tl2";
    case Backend::kTsx: return "tsx";
    case Backend::kTicToc: return "tictoc";
    case Backend::kTicTocHybrid: return "tictoc-hybrid";
    case Backend::kMvcc: return "mvcc";
  }
  return "?";
}

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> kAll = {
      Backend::kSgl,    Backend::kTl2,          Backend::kTsx,
      Backend::kTicToc, Backend::kTicTocHybrid, Backend::kMvcc,
  };
  return kAll;
}

bool backend_from_name(const std::string& name, Backend* out) {
  for (Backend b : all_backends()) {
    if (name == to_string(b)) {
      *out = b;
      return true;
    }
  }
  return false;
}

namespace {

void bump_abort_class(sim::CcStats& s, stm::StmAbortKind kind) {
  switch (kind) {
    case stm::StmAbortKind::kReadValidation:
      s.aborts_read_validation++;
      break;
    case stm::StmAbortKind::kLockAcquire:
      s.aborts_lock_acquire++;
      break;
    case stm::StmAbortKind::kCommitValidation:
      s.aborts_commit_validation++;
      break;
  }
}

// ---- sgl: critical sections under the global lock ------------------------

class SglThread final : public CcThread {
 public:
  explicit SglThread(sync::ElidedLock& lock) : lock_(lock) {
    stats_.scheme = "sgl";
  }
  void execute(Context& c, RegionRef body) override {
    auto& lock = lock_.underlying();
    lock.acquire(c);
    body();
    lock.release(c);
    stats_.starts++;
    stats_.commits++;
  }

 private:
  sync::ElidedLock& lock_;
};

class SglBackend final : public CcBackend {
 public:
  explicit SglBackend(sync::ElidedLock& lock) : lock_(lock) {}
  const char* name() const override { return "sgl"; }
  std::unique_ptr<CcThread> attach() override {
    return std::make_unique<SglThread>(lock_);
  }

 private:
  sync::ElidedLock& lock_;
};

// ---- tsx: RTM elision of the same global lock ----------------------------
// Region-level accounting only: hardware retries live below this seam, in
// the telemetry attempt chains, so cc.aborts stays 0 (CI-enforced) and
// cc.commits reconciles against elided_commits + fallback_acquires.

class TsxThread final : public CcThread {
 public:
  explicit TsxThread(sync::ElidedLock& lock) : lock_(lock) {
    stats_.scheme = "tsx";
  }
  void execute(Context& c, RegionRef body) override {
    lock_.critical(c, [&] { body(); });
    stats_.starts++;
    stats_.commits++;
  }

 private:
  sync::ElidedLock& lock_;
};

class TsxBackend final : public CcBackend {
 public:
  explicit TsxBackend(sync::ElidedLock& lock) : lock_(lock) {}
  const char* name() const override { return "tsx"; }
  std::unique_ptr<CcThread> attach() override {
    return std::make_unique<TsxThread>(lock_);
  }

 private:
  sync::ElidedLock& lock_;
};

// ---- Shared STM retry-loop shape -----------------------------------------

constexpr sim::Cycles kStmBackoffStart = 80;
constexpr sim::Cycles kStmBackoffCap = 4000;

// ---- tl2 -----------------------------------------------------------------

class Tl2Thread final : public CcThread {
 public:
  explicit Tl2Thread(stm::Tl2Space& space) : tx_(space) {
    stats_.scheme = "tl2";
  }
  void execute(Context& c, RegionRef body) override {
    sim::Cycles backoff = kStmBackoffStart;
    for (;;) {
      tx_.begin(c);
      stats_.starts++;
      try {
        body();
        tx_.commit(c);
        stats_.commits++;
        return;
      } catch (const stm::StmAbort& a) {
        stats_.aborts++;
        bump_abort_class(stats_, a.kind);
        c.compute(backoff);
        if (backoff < kStmBackoffCap) backoff *= 2;
      }
    }
  }
  std::uint64_t read(Context& c, Addr a, unsigned size) override {
    return tx_.read(c, a, size);
  }
  void write(Context& c, Addr a, std::uint64_t v, unsigned size) override {
    tx_.write(c, a, v, size);
  }
  bool buffers_writes() const override { return true; }
  void defer_to_commit(std::function<void(Context&)> action) override {
    tx_.on_commit(std::move(action));
  }

 private:
  stm::Tl2Tx tx_;
};

class Tl2Backend final : public CcBackend {
 public:
  explicit Tl2Backend(stm::Tl2Space& space) : space_(space) {}
  const char* name() const override { return "tl2"; }
  std::unique_ptr<CcThread> attach() override {
    return std::make_unique<Tl2Thread>(space_);
  }

 private:
  stm::Tl2Space& space_;
};

// ---- tictoc / tictoc-hybrid ----------------------------------------------

class TicTocThread final : public CcThread {
 public:
  TicTocThread(stm::TicTocSpace& space, stm::TicTocReadMode mode)
      : tx_(space), mode_(mode) {
    stats_.scheme = mode == stm::TicTocReadMode::kHybrid ? "tictoc-hybrid"
                                                         : "tictoc";
  }
  void execute(Context& c, RegionRef body) override {
    sim::Cycles backoff = kStmBackoffStart;
    // Hybrid: optimistic first attempt, no-wait locking reads on retries.
    stm::TicTocReadMode attempt_mode =
        mode_ == stm::TicTocReadMode::kHybrid ? stm::TicTocReadMode::kOcc
                                              : mode_;
    for (;;) {
      tx_.begin(c, attempt_mode);
      stats_.starts++;
      try {
        body();
        tx_.commit(c);
        stats_.commits++;
        sync_extras();
        return;
      } catch (const stm::StmAbort& a) {
        stats_.aborts++;
        bump_abort_class(stats_, a.kind);
        sync_extras();
        if (mode_ == stm::TicTocReadMode::kHybrid) {
          attempt_mode = stm::TicTocReadMode::kLock;
        }
        c.compute(backoff);
        if (backoff < kStmBackoffCap) backoff *= 2;
      }
    }
  }
  std::uint64_t read(Context& c, Addr a, unsigned size) override {
    return tx_.read(c, a, size);
  }
  void write(Context& c, Addr a, std::uint64_t v, unsigned size) override {
    tx_.write(c, a, v, size);
  }
  bool buffers_writes() const override { return true; }
  void defer_to_commit(std::function<void(Context&)> action) override {
    tx_.on_commit(std::move(action));
  }

 private:
  void sync_extras() {
    stats_.read_set_extensions = tx_.read_set_extensions();
  }

  stm::TicTocTx tx_;
  stm::TicTocReadMode mode_;
};

class TicTocBackend final : public CcBackend {
 public:
  TicTocBackend(Machine& m, stm::TicTocReadMode mode)
      : space_(m), mode_(mode) {}
  const char* name() const override {
    return mode_ == stm::TicTocReadMode::kHybrid ? "tictoc-hybrid"
                                                 : "tictoc";
  }
  std::unique_ptr<CcThread> attach() override {
    return std::make_unique<TicTocThread>(space_, mode_);
  }

 private:
  stm::TicTocSpace space_;
  stm::TicTocReadMode mode_;
};

// ---- mvcc ----------------------------------------------------------------

class MvccThread final : public CcThread {
 public:
  explicit MvccThread(stm::MvccSpace& space) : tx_(space) {
    stats_.scheme = "mvcc";
  }
  void execute(Context& c, RegionRef body) override {
    sim::Cycles backoff = kStmBackoffStart;
    for (;;) {
      tx_.begin(c);
      stats_.starts++;
      try {
        body();
        tx_.commit(c);
        stats_.commits++;
        sync_extras();
        return;
      } catch (const stm::StmAbort& a) {
        stats_.aborts++;
        bump_abort_class(stats_, a.kind);
        sync_extras();
        c.compute(backoff);
        if (backoff < kStmBackoffCap) backoff *= 2;
      }
    }
  }
  std::uint64_t read(Context& c, Addr a, unsigned size) override {
    return tx_.read(c, a, size);
  }
  void write(Context& c, Addr a, std::uint64_t v, unsigned size) override {
    tx_.write(c, a, v, size);
  }
  bool buffers_writes() const override { return true; }
  void defer_to_commit(std::function<void(Context&)> action) override {
    tx_.on_commit(std::move(action));
  }

 private:
  void sync_extras() {
    stats_.snapshot_commits = tx_.snapshot_commits();
    stats_.versions_created = tx_.versions_created();
    stats_.version_chain_hops = tx_.version_chain_hops();
    stats_.version_chain_depth_max = tx_.version_chain_depth_max();
    stats_.gc_runs = tx_.gc_runs();
    stats_.gc_reclaims = tx_.gc_reclaims();
  }

  stm::MvccTx tx_;
};

class MvccBackend final : public CcBackend {
 public:
  explicit MvccBackend(Machine& m) : space_(m) {}
  const char* name() const override { return "mvcc"; }
  std::unique_ptr<CcThread> attach() override {
    return std::make_unique<MvccThread>(space_);
  }

 private:
  stm::MvccSpace space_;
};

}  // namespace

std::unique_ptr<CcBackend> make_cc_backend(Machine& m, Backend b,
                                           sync::ElidedLock& global_lock,
                                           stm::Tl2Space& tl2_space) {
  switch (b) {
    case Backend::kSgl:
      return std::make_unique<SglBackend>(global_lock);
    case Backend::kTl2:
      return std::make_unique<Tl2Backend>(tl2_space);
    case Backend::kTsx:
      return std::make_unique<TsxBackend>(global_lock);
    case Backend::kTicToc:
      return std::make_unique<TicTocBackend>(m, stm::TicTocReadMode::kOcc);
    case Backend::kTicTocHybrid:
      return std::make_unique<TicTocBackend>(m,
                                             stm::TicTocReadMode::kHybrid);
    case Backend::kMvcc:
      return std::make_unique<MvccBackend>(m);
  }
  throw sim::SimError("unknown TM backend");
}

}  // namespace tsxhpc::tmlib
