#include "tmlib/tm.h"

namespace tsxhpc::tmlib {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSgl: return "sgl";
    case Backend::kTl2: return "tl2";
    case Backend::kTsx: return "tsx";
  }
  return "?";
}

}  // namespace tsxhpc::tmlib
