// Ablation: which cache level bounds each transactional footprint. Sweeps
// the L1 and LLC geometry independently and reports single-thread commit
// rates, demonstrating the hierarchy split introduced with the modeled LLC:
//   * write-set capacity is an L1 property — commit rates move with the L1
//     size and are identical across LLC sizes (eviction of a written line
//     aborts immediately, whatever backs it);
//   * read-set capacity is an LLC property — evicted read lines survive in
//     the secondary tracker as long as the LLC holds them, so commit rates
//     move with the LLC size (Table 1's single-thread abort regime).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/machine.h"

using namespace tsxhpc;
using sim::Context;
using sim::Machine;

namespace {

struct Geometry {
  std::uint32_t l1_kb;
  std::uint32_t l1_ways;
  std::uint32_t llc_kb;
  std::uint32_t llc_ways;
  std::string name() const {
    return "l1-" + std::to_string(l1_kb) + "K/llc-" + std::to_string(llc_kb) +
           "K";
  }
};

// Commit rate (%) of single-thread transactions sequentially touching
// `lines` cache lines under the given geometry. Sequential footprints fill
// sets evenly, so the capacity edge is sharp and the sweep reads as a
// function of geometry rather than of placement luck.
double commit_rate(bench::BenchIo& io, const Geometry& g, bool writes,
                   std::size_t lines, int txns) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  cfg.l1_bytes = g.l1_kb * 1024;
  cfg.l1_ways = g.l1_ways;
  cfg.llc_bytes = g.llc_kb * 1024;
  cfg.llc_ways = g.llc_ways;
  Machine m(cfg);
  sim::Addr base = m.alloc(lines * cfg.line_bytes, 64);
  int commits = 0;
  sim::RunSpec spec;
  spec.label = std::string(writes ? "write" : "read") + "-set/" + g.name() +
               "/" + std::to_string(lines) + "-lines";
  spec.body = [&](Context& c) {
    for (int t = 0; t < txns; ++t) {
      try {
        c.xbegin();
        for (std::size_t i = 0; i < lines; ++i) {
          const sim::Addr a = base + i * cfg.line_bytes;
          if (writes) {
            c.store(a, t);
          } else {
            (void)c.load(a);
          }
        }
        c.xend();
        commits++;
      } catch (const sim::TxAbort&) {
      }
    }
  };
  m.run(spec);
  return 100.0 * commits / txns;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_hierarchy",
                    "cache level vs. transactional capacity (hierarchy sweep)");
  if (!io.parse()) return io.exit_code();
  const int txns = io.quick() ? 10 : 30;

  // --- Write sets: sweep the L1, pin the LLC (and prove LLC independence
  // by repeating one L1 size under two LLC sizes).
  const std::vector<Geometry> write_geoms = {
      {16, 8, 256, 16}, {32, 8, 64, 16}, {32, 8, 256, 16}, {64, 8, 256, 16}};
  const std::vector<std::size_t> write_lines =
      io.quick() ? std::vector<std::size_t>{256, 512, 640}
                 : std::vector<std::size_t>{128, 256, 384, 512, 640, 1024};

  bench::banner("Write-set commit rate (%): bounded by the L1, not the LLC");
  {
    std::vector<std::string> headers = {"lines", "KB"};
    for (const auto& g : write_geoms) headers.push_back(g.name());
    bench::Table table(headers);
    for (std::size_t lines : write_lines) {
      std::vector<std::string> row = {std::to_string(lines),
                                      bench::fmt(lines * 64.0 / 1024.0, 0)};
      for (const auto& g : write_geoms) {
        row.push_back(bench::fmt(commit_rate(io, g, true, lines, txns), 0));
      }
      table.add_row(row);
    }
    table.print();
  }

  // --- Read sets: sweep the LLC, pin the L1.
  const std::vector<Geometry> read_geoms = {
      {32, 8, 32, 8}, {32, 8, 64, 16}, {32, 8, 128, 16}, {32, 8, 256, 16}};
  const std::vector<std::size_t> read_lines =
      io.quick() ? std::vector<std::size_t>{512, 1024, 1536}
                 : std::vector<std::size_t>{512, 768, 1024, 1536, 3072};

  bench::banner("Read-set commit rate (%): bounded by the LLC");
  {
    std::vector<std::string> headers = {"lines", "KB"};
    for (const auto& g : read_geoms) headers.push_back(g.name());
    bench::Table table(headers);
    for (std::size_t lines : read_lines) {
      std::vector<std::string> row = {std::to_string(lines),
                                      bench::fmt(lines * 64.0 / 1024.0, 0)};
      for (const auto& g : read_geoms) {
        row.push_back(bench::fmt(commit_rate(io, g, false, lines, txns), 0));
      }
      table.add_row(row);
    }
    table.print();
  }

  std::printf(
      "\nExpected: write columns depend only on the L1 size (the two\n"
      "l1-32K columns are identical); read columns shift right as the LLC\n"
      "grows — footprints commit once they fit the LLC, whatever the L1.\n");
  return io.finish();
}
