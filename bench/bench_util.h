// Shared helpers for the figure/table reproduction harnesses: fixed-width
// table printing in the style of the paper's figures, the declarative
// bench::Args command line (bench/args.h), and the BenchIo telemetry
// plumbing behind the shared --json=<path> / --trace=<path> flags.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/args.h"
#include "sim/config.h"
#include "sim/json_parse.h"
#include "sim/report.h"
#include "sim/telemetry.h"

namespace tsxhpc::bench {

/// Shared bench I/O: declares the flags every bench supports (--quick,
/// --report, --json=, --trace=, --backend=, --policy=), owns the Telemetry
/// collector, and writes the artifacts at exit. Bench-specific flags are declared on
/// args() between construction and parse().
///
///   int main(int argc, char** argv) {
///     bench::BenchIo io(argc, argv, "fig2_stamp", "STAMP scaling (Fig 2)");
///     int threads = 0;
///     io.args().add_int("threads", "run only this count (0 = sweep)",
///                       &threads);
///     if (!io.parse()) return io.exit_code();
///     Config cfg;
///     io.apply(cfg.machine);   // telemetry sink + --backend choice
///     ...
///     run_vacation(cfg);       // cfg.run_label names the recorded runs
///     return io.finish();
///   }
///
/// telemetry() is null when none of the artifact flags was given, so the
/// detached path stays zero-cost. --trace additionally enables per-attempt
/// collection (rings bounded by TelemetryOptions defaults). --report prints
/// the tsx_report summary inline after the run — same renderer, same
/// numbers as `tsx_report <artifact>`.
class BenchIo {
 public:
  BenchIo(int argc, char** argv, std::string bench_name, std::string summary)
      : bench_name_(std::move(bench_name)),
        argc_(argc),
        argv_(argv),
        args_(bench_name_, std::move(summary)) {
    args_.add_bool("quick", "reduced problem sizes (CI smoke runs)", &quick_);
    args_.add_bool("report", "print the tsx_report summary after the run",
                   &report_);
    args_.add_string("json", "write the telemetry artifact to this path",
                     &json_path_);
    args_.add_string("trace",
                     "write a Chrome trace to this path (enables "
                     "per-attempt collection)",
                     &trace_path_);
    args_.add_choice("backend",
                     "execution backend (default: fiber, or $TSXHPC_BACKEND)",
                     &backend_name_, {"fiber", "thread"});
    args_.add_choice("policy",
                     "elision retry/backoff/fallback policy (default: paper)",
                     &policy_name_,
                     {"paper", "no-hint", "expo-backoff", "adaptive-site"});
    args_.add_choice("alloc",
                     "named-allocation placement strategy (default: bump)",
                     &alloc_name_,
                     {"bump", "slab", "color", "adversarial"});
    args_.add_int("sockets",
                  "number of sockets (NUMA domains; threads map onto them "
                  "per --map=, DRAM is homed per socket; 0 = model default)",
                  &sockets_);
    args_.add_int("slices",
                  "LLC slices across the machine, a positive multiple of the "
                  "socket count; lines hash to an owning slice "
                  "(0 = model default)",
                  &slices_);
    args_.add_choice("map",
                     "thread/data mapping policy (default: compact)",
                     &map_name_, {"compact", "scatter", "sharing-aware"});
    args_.add_bool("cli-markdown",
                   "print the flag table as markdown and exit (the "
                   "EXPERIMENTS.md CLI reference is generated from this)",
                   &cli_markdown_);
    args_.add_size("l1-bytes",
                   "L1 data cache bytes per core (0 = model default)",
                   &l1_bytes_);
    args_.add_size("l1-ways", "L1 associativity (0 = model default)",
                   &l1_ways_);
    args_.add_size("llc-bytes",
                   "shared LLC bytes (0 = model default; read-set capacity "
                   "aborts track this)",
                   &llc_bytes_);
    args_.add_size("llc-ways", "LLC associativity (0 = model default)",
                   &llc_ways_);
    args_.add_bool("set-stats",
                   "record per-cache-set counters (telemetry v6 set_stats "
                   "block: fills, evictions, back-invalidations, capacity "
                   "dooms per set)",
                   &set_stats_);
    args_.add_size("sample-interval",
                   "initial virtual-time sampling interval in cycles "
                   "(0 = telemetry default)",
                   &sample_interval_);
    args_.add_size("max-samples",
                   "interval-series bucket cap before merge-and-double "
                   "(0 = telemetry default)",
                   &max_samples_);
  }

  /// The underlying parser, for bench-specific flag declarations.
  Args& args() { return args_; }

  /// Parse the command line; false means exit with exit_code() (help was
  /// printed, or a usage error was reported).
  bool parse() {
    if (!args_.parse(argc_, argv_)) return false;
    if (cli_markdown_) {
      std::printf("### `%s`\n\n%s", bench_name_.c_str(),
                  args_.markdown().c_str());
      return false;  // exit_code() == 0
    }
    if (!backend_name_.empty() &&
        !sim::backend_from_string(backend_name_, backend_)) {
      args_.fail("bad value for '--backend': '" + backend_name_ +
                 "' (expected fiber or thread)");
      return false;
    }
    if (!policy_name_.empty() &&
        !sim::tx_policy_from_string(policy_name_, tx_policy_)) {
      args_.fail("bad value for '--policy': '" + policy_name_ +
                 "' (expected paper, no-hint, expo-backoff or "
                 "adaptive-site)");
      return false;
    }
    if (!alloc_name_.empty() &&
        !sim::alloc_strategy_from_string(alloc_name_, alloc_strategy_)) {
      args_.fail("bad value for '--alloc': '" + alloc_name_ +
                 "' (expected bump, slab, color or adversarial)");
      return false;
    }
    if (!map_name_.empty() && !sim::map_policy_from_string(map_name_, map_)) {
      args_.fail("bad value for '--map': '" + map_name_ +
                 "' (expected compact, scatter or sharing-aware)");
      return false;
    }
    if (sockets_ < 0 || slices_ < 0) {
      args_.fail("--sockets and --slices must be non-negative");
      return false;
    }
    if (report_ || !json_path_.empty() || !trace_path_.empty()) {
      sim::TelemetryOptions opt;
      opt.collect_attempts = !trace_path_.empty();
      if (sample_interval_ != 0) {
        opt.sample_interval = static_cast<sim::Cycles>(sample_interval_);
      }
      if (max_samples_ != 0) opt.max_samples = max_samples_;
      telemetry_ = std::make_unique<sim::Telemetry>(opt);
    }
    return true;
  }

  int exit_code() const { return args_.exit_code(); }

  /// Wire this bench's choices into a machine config: telemetry sink, the
  /// --backend selection, and any cache-geometry overrides. Call once per
  /// MachineConfig the bench builds.
  void apply(sim::MachineConfig& mc) {
    mc.telemetry = telemetry_.get();
    mc.backend = backend_;
    mc.tx_policy = tx_policy_;
    mc.alloc_strategy = alloc_strategy_;
    if (l1_bytes_ != 0) mc.l1_bytes = static_cast<std::uint32_t>(l1_bytes_);
    if (l1_ways_ != 0) mc.l1_ways = static_cast<std::uint32_t>(l1_ways_);
    if (llc_bytes_ != 0) mc.llc_bytes = static_cast<std::uint32_t>(llc_bytes_);
    if (llc_ways_ != 0) mc.llc_ways = static_cast<std::uint32_t>(llc_ways_);
    mc.set_stats = set_stats_;
    if (sockets_ != 0) mc.topology.num_sockets = sockets_;
    if (slices_ != 0) mc.topology.llc_slices = slices_;
    if (!map_name_.empty()) mc.topology.map = map_;
  }

  bool quick() const { return quick_; }
  sim::BackendKind backend() const { return backend_; }
  sim::TxPolicyKind tx_policy() const { return tx_policy_; }
  /// Raw --policy= spelling; empty when the flag was not given. Benches that
  /// sweep policies internally use this to honor an explicit restriction
  /// (the sweep orchestrator pins one policy per grid cell this way).
  const std::string& policy_name() const { return policy_name_; }
  sim::AllocStrategyKind alloc_strategy() const { return alloc_strategy_; }
  /// Raw --alloc= spelling; empty when the flag was not given. Like
  /// policy_name(), benches that sweep strategies internally use this to
  /// honor an explicit restriction (one strategy per sweep grid cell).
  const std::string& alloc_name() const { return alloc_name_; }
  const std::string& bench_name() const { return bench_name_; }
  /// Topology overrides; 0 / empty mean "flag not given" (model default).
  int sockets() const { return sockets_; }
  int slices() const { return slices_; }
  sim::MapPolicy map() const { return map_; }
  /// Raw --map= spelling; empty when the flag was not given. Benches that
  /// sweep mappings internally use this to honor an explicit restriction
  /// (one mapping per sweep grid cell).
  const std::string& map_name() const { return map_name_; }

  /// Null unless --json or --trace was given. Assign to
  /// MachineConfig::telemetry (or pass to Machine::set_telemetry).
  sim::Telemetry* telemetry() { return telemetry_.get(); }

  /// Write the requested artifacts; returns a process exit code (non-zero
  /// if a file could not be written).
  int finish() {
    int rc = 0;
    if (telemetry_ && report_) {
      // Serialize and re-parse so the inline summary goes through the exact
      // code path tsx_report uses on the artifact file.
      std::string err;
      const sim::JsonValue doc =
          sim::JsonParser::parse(telemetry_->json(bench_name_), &err);
      if (err.empty()) {
        std::fputs(sim::render_report(doc).c_str(), stdout);
      } else {
        std::fprintf(stderr, "telemetry: --report parse error: %s\n",
                     err.c_str());
        rc = 1;
      }
    }
    if (telemetry_ && !json_path_.empty()) {
      if (telemetry_->write_json(json_path_, bench_name_)) {
        std::printf("telemetry: wrote %s\n", json_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     json_path_.c_str());
        rc = 1;
      }
    }
    if (telemetry_ && !trace_path_.empty()) {
      if (telemetry_->write_chrome_trace(trace_path_)) {
        std::printf("telemetry: wrote %s (open in Perfetto / chrome://tracing)\n",
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string bench_name_;
  int argc_;
  char** argv_;
  Args args_;
  bool quick_ = false;
  bool report_ = false;
  bool cli_markdown_ = false;
  std::string json_path_;
  std::string trace_path_;
  std::string backend_name_;
  std::string policy_name_;
  std::string alloc_name_;
  std::string map_name_;
  int sockets_ = 0;
  int slices_ = 0;
  sim::MapPolicy map_ = sim::MapPolicy::kCompact;
  std::size_t l1_bytes_ = 0;
  std::size_t l1_ways_ = 0;
  std::size_t llc_bytes_ = 0;
  std::size_t llc_ways_ = 0;
  bool set_stats_ = false;
  std::size_t sample_interval_ = 0;
  std::size_t max_samples_ = 0;
  sim::BackendKind backend_ = sim::default_backend();
  sim::TxPolicyKind tx_policy_ = sim::TxPolicyKind::kPaper;
  sim::AllocStrategyKind alloc_strategy_ = sim::AllocStrategyKind::kBump;
  std::unique_ptr<sim::Telemetry> telemetry_;
};

/// Column-aligned table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) {
      rule += std::string(width[i], '-');
      if (i + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      std::printf("%-*s", static_cast<int>(width[i]), cell.c_str());
      if (i + 1 < width.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace tsxhpc::bench
