// Shared helpers for the figure/table reproduction harnesses: fixed-width
// table printing in the style of the paper's figures, simple argv parsing
// (--quick for CI-speed runs), and the BenchIo telemetry plumbing behind
// the shared --json=<path> / --trace=<path> flags.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/json_parse.h"
#include "sim/report.h"
#include "sim/telemetry.h"

namespace tsxhpc::bench {

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Value of a `--name=value` flag, or "" if absent.
inline std::string flag_value(int argc, char** argv,
                              const std::string& name) {
  const std::string prefix = name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return "";
}

/// Shared bench I/O: parses --quick / --json=<path> / --trace=<path>, owns
/// the Telemetry collector, and writes the artifacts at exit.
///
///   int main(int argc, char** argv) {
///     bench::BenchIo io(argc, argv, "fig2_stamp");
///     Config cfg;
///     cfg.machine.telemetry = io.telemetry();
///     ...
///     io.label("vacation/t4");   // names the next Machine run
///     run_vacation(cfg);
///     return io.finish();
///   }
///
/// telemetry() is null when none of the flags was given, so the detached
/// path stays zero-cost. --trace additionally enables per-attempt
/// collection (rings bounded by TelemetryOptions defaults). --report prints
/// the tsx_report summary inline after the run — same renderer, same
/// numbers as `tsx_report <artifact>`.
class BenchIo {
 public:
  BenchIo(int argc, char** argv, std::string bench_name)
      : bench_name_(std::move(bench_name)),
        quick_(has_flag(argc, argv, "--quick")),
        report_(has_flag(argc, argv, "--report")),
        json_path_(flag_value(argc, argv, "--json")),
        trace_path_(flag_value(argc, argv, "--trace")) {
    if (report_ || !json_path_.empty() || !trace_path_.empty()) {
      sim::TelemetryOptions opt;
      opt.collect_attempts = !trace_path_.empty();
      telemetry_ = std::make_unique<sim::Telemetry>(opt);
    }
  }

  bool quick() const { return quick_; }
  const std::string& bench_name() const { return bench_name_; }

  /// Null unless --json or --trace was given. Assign to
  /// MachineConfig::telemetry (or pass to Machine::set_telemetry).
  sim::Telemetry* telemetry() { return telemetry_.get(); }

  /// Label the next recorded run (passthrough to set_next_run_label).
  void label(std::string l) {
    if (telemetry_) telemetry_->set_next_run_label(std::move(l));
  }

  /// Write the requested artifacts; returns a process exit code (non-zero
  /// if a file could not be written).
  int finish() {
    int rc = 0;
    if (telemetry_ && report_) {
      // Serialize and re-parse so the inline summary goes through the exact
      // code path tsx_report uses on the artifact file.
      std::string err;
      const sim::JsonValue doc =
          sim::JsonParser::parse(telemetry_->json(bench_name_), &err);
      if (err.empty()) {
        std::fputs(sim::render_report(doc).c_str(), stdout);
      } else {
        std::fprintf(stderr, "telemetry: --report parse error: %s\n",
                     err.c_str());
        rc = 1;
      }
    }
    if (telemetry_ && !json_path_.empty()) {
      if (telemetry_->write_json(json_path_, bench_name_)) {
        std::printf("telemetry: wrote %s\n", json_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     json_path_.c_str());
        rc = 1;
      }
    }
    if (telemetry_ && !trace_path_.empty()) {
      if (telemetry_->write_chrome_trace(trace_path_)) {
        std::printf("telemetry: wrote %s (open in Perfetto / chrome://tracing)\n",
                    trace_path_.c_str());
      } else {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     trace_path_.c_str());
        rc = 1;
      }
    }
    return rc;
  }

 private:
  std::string bench_name_;
  bool quick_ = false;
  bool report_ = false;
  std::string json_path_;
  std::string trace_path_;
  std::unique_ptr<sim::Telemetry> telemetry_;
};

/// Column-aligned table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) {
      rule += std::string(width[i], '-');
      if (i + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      std::printf("%-*s", static_cast<int>(width[i]), cell.c_str());
      if (i + 1 < width.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace tsxhpc::bench
