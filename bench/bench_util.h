// Shared helpers for the figure/table reproduction harnesses: fixed-width
// table printing in the style of the paper's figures, plus simple argv
// parsing (--quick for CI-speed runs).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace tsxhpc::bench {

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Column-aligned table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        if (row[i].size() > width[i]) width[i] = row[i].size();
      }
    }
    print_row(headers_, width);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) {
      rule += std::string(width[i], '-');
      if (i + 1 < width.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : "";
      std::printf("%-*s", static_cast<int>(width[i]), cell.c_str());
      if (i + 1 < width.size()) std::printf(" | ");
    }
    std::printf("\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace tsxhpc::bench
