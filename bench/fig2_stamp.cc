// Reproduces Figure 2: STAMP execution time for sgl / tl2 / tsx at 1, 2, 4,
// and 8 threads, normalized to single-thread sgl (reported as speedup =
// sgl(1)/T so larger is better). Paper claims to check:
//   * sgl never scales;
//   * tl2 pays a large single-thread instrumentation overhead but scales;
//   * tsx single-thread cost ≈ sgl, and it scales, beating tl2 wherever its
//     abort rate stays moderate (labyrinth is the counter-example).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stamp/stamp.h"

using namespace tsxhpc;
using tmlib::Backend;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig2_stamp",
                    "STAMP speedup over 1-thread sgl (Figure 2)");
  int threads = 0;
  std::string workload_filter;
  std::string scheme_filter;
  bool ref = true;
  io.args().add_int("threads", "run only this thread count (0 = 1/2/4/8)",
                    &threads);
  std::vector<std::string> workload_names;
  for (const auto& w : stamp::all_workloads()) workload_names.push_back(w.name);
  io.args().add_choice("workload", "run only this STAMP workload",
                       &workload_filter, workload_names);
  std::vector<std::string> scheme_names;
  for (Backend b : tmlib::all_backends()) {
    scheme_names.push_back(tmlib::to_string(b));
  }
  io.args().add_choice("scheme", "run only this TM scheme", &scheme_filter,
                       scheme_names);
  io.args().add_bool("ref",
                     "run the 1-thread sgl reference and report speedups; "
                     "--ref=0 skips it and reports raw makespans (sweep "
                     "cells use this so each cell records only its own runs)",
                     &ref);
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner(ref
                    ? "Figure 2: STAMP, speedup over 1-thread sgl (higher is "
                      "better)"
                    : "Figure 2: STAMP, makespan in cycles (lower is better)");

  const int sweep[] = {1, 2, 4, 8};
  // Default columns are the paper's scheme set; --scheme=X narrows the run
  // to exactly that scheme (which is how the extended schemes — tictoc /
  // tictoc-hybrid / mvcc — are exercised without changing the Figure 2
  // default grid).
  std::vector<Backend> schemes{Backend::kSgl, Backend::kTl2, Backend::kTsx};
  if (!scheme_filter.empty()) {
    Backend only = Backend::kSgl;
    tmlib::backend_from_name(scheme_filter, &only);
    schemes = {only};
  }
  for (const auto& w : stamp::all_workloads()) {
    if (!workload_filter.empty() && workload_filter != w.name) continue;
    stamp::Config base;
    base.scale = scale;
    io.apply(base.machine);

    double ref_span = 0.0;
    if (ref) {
      stamp::Config sgl1 = base;
      sgl1.backend = Backend::kSgl;
      sgl1.threads = 1;
      sgl1.run_label = std::string(w.name) + "/sgl/ref";
      ref_span = static_cast<double>(w.fn(sgl1).makespan);
    }

    std::vector<std::string> head{w.name};
    for (Backend b : schemes) head.push_back(tmlib::to_string(b));
    bench::Table table(head);
    for (int t : sweep) {
      if (threads != 0 && threads != t) continue;
      std::vector<std::string> row{std::to_string(t) + " thr"};
      for (Backend b : schemes) {
        stamp::Config cfg = base;
        cfg.backend = b;
        cfg.threads = t;
        cfg.run_label = std::string(w.name) + "/" + tmlib::to_string(b) +
                        "/t" + std::to_string(t);
        const stamp::Result r = w.fn(cfg);
        if (r.checksum == 0) {
          row.push_back("INVALID");
        } else if (ref) {
          row.push_back(
              bench::fmt(ref_span / static_cast<double>(r.makespan)));
        } else {
          row.push_back(std::to_string(r.makespan));
        }
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Expected shapes: sgl flat at ~1x; tl2 starts well below 1x and "
      "climbs;\ntsx starts near 1x and climbs (except labyrinth, where the "
      "unannotated\ngrid copy forces tsx back to sgl behaviour).\n");
  return io.finish();
}
