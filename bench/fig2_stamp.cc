// Reproduces Figure 2: STAMP execution time for sgl / tl2 / tsx at 1, 2, 4,
// and 8 threads, normalized to single-thread sgl (reported as speedup =
// sgl(1)/T so larger is better). Paper claims to check:
//   * sgl never scales;
//   * tl2 pays a large single-thread instrumentation overhead but scales;
//   * tsx single-thread cost ≈ sgl, and it scales, beating tl2 wherever its
//     abort rate stays moderate (labyrinth is the counter-example).
#include <cstdio>

#include "bench/bench_util.h"
#include "stamp/stamp.h"

using namespace tsxhpc;
using tmlib::Backend;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig2_stamp");
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner(
      "Figure 2: STAMP, speedup over 1-thread sgl (higher is better)");

  const int thread_counts[] = {1, 2, 4, 8};
  for (const auto& w : stamp::all_workloads()) {
    stamp::Config base;
    base.scale = scale;
    base.machine.telemetry = io.telemetry();

    stamp::Config sgl1 = base;
    sgl1.backend = Backend::kSgl;
    sgl1.threads = 1;
    io.label(std::string(w.name) + "/sgl/ref");
    const double ref = static_cast<double>(w.fn(sgl1).makespan);

    bench::Table table({w.name, "sgl", "tl2", "tsx"});
    for (int threads : thread_counts) {
      std::vector<std::string> row{std::to_string(threads) + " thr"};
      for (Backend b : {Backend::kSgl, Backend::kTl2, Backend::kTsx}) {
        stamp::Config cfg = base;
        cfg.backend = b;
        cfg.threads = threads;
        io.label(std::string(w.name) + "/" + tmlib::to_string(b) + "/t" +
                 std::to_string(threads));
        const stamp::Result r = w.fn(cfg);
        if (r.checksum == 0) {
          row.push_back("INVALID");
        } else {
          row.push_back(
              bench::fmt(ref / static_cast<double>(r.makespan)));
        }
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Expected shapes: sgl flat at ~1x; tl2 starts well below 1x and "
      "climbs;\ntsx starts near 1x and climbs (except labyrinth, where the "
      "unannotated\ngrid copy forces tsx back to sgl behaviour).\n");
  return io.finish();
}
