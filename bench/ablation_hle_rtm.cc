// Ablation: HLE vs RTM elision (Section 2 describes both interfaces; the
// paper's library uses RTM "for programmers who prefer a more flexible
// interface"). HLE's fixed hardware policy (one retry, then acquire) loses
// to RTM's tunable retry loop exactly where conflicts are transient.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/shared.h"
#include "sync/elision.h"
#include "sync/hle.h"

using namespace tsxhpc;
using sim::Context;
using sim::Machine;

namespace {

// A critical-section microbenchmark with tunable conflict probability:
// each section updates one of `span` cells; smaller span = more conflicts.
template <typename RunSection>
sim::Cycles run_contention(bench::BenchIo& io, int threads, const char* scheme,
                           std::size_t span, RunSection&& section_factory) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  Machine m(cfg);
  auto cells = sim::SharedArray<std::uint64_t>::alloc(m, span * 8, 0);
  auto section = section_factory(m);
  sim::RunSpec spec;
  spec.threads = threads;
  spec.label = std::string(scheme) + "/span" + std::to_string(span);
  spec.body = [&](Context& c) {
    sim::Xoshiro256 rng(c.tid() + 3);
    for (int i = 0; i < 400; ++i) {
      const std::size_t idx = rng.next_below(span) * 8;
      section(c, [&] {
        auto cell = cells.at(idx);
        cell.store(c, cell.load(c) + 1);
        c.compute(150);
      });
    }
  };
  return m.run(spec).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_hle_rtm",
                    "HLE vs RTM elision under contention (Section 3)");
  int threads = 8;
  io.args().add_int("threads", "simulated threads contending", &threads);
  if (!io.parse()) return io.exit_code();
  bench::banner(
      "Ablation: HLE (fixed 1-retry policy) vs RTM elision (retry 5) vs "
      "plain lock, " + std::to_string(threads) + " threads");

  bench::Table table({"distinct cells", "plain lock Mcyc", "hle Mcyc",
                      "rtm Mcyc", "rtm/hle"});
  for (std::size_t span : {1, 4, 16, 64, 256}) {
    const auto lock_cycles =
        run_contention(io, threads, "lock", span, [](Machine& m) {
          auto lock = std::make_shared<sync::SpinLock>(m);
          return [lock](Context& c, auto&& f) {
            lock->acquire(c);
            f();
            lock->release(c);
          };
        });
    const auto hle_cycles =
        run_contention(io, threads, "hle", span, [](Machine& m) {
          auto lock = std::make_shared<sync::HleLock>(m);
          return [lock](Context& c, auto&& f) { lock->critical(c, f); };
        });
    const auto rtm_cycles =
        run_contention(io, threads, "rtm", span, [](Machine& m) {
          auto lock = std::make_shared<sync::ElidedLock>(m);
          return [lock](Context& c, auto&& f) { lock->critical(c, f); };
        });
    table.add_row({std::to_string(span), bench::fmt(lock_cycles / 1e6),
                   bench::fmt(hle_cycles / 1e6),
                   bench::fmt(rtm_cycles / 1e6),
                   bench::fmt(static_cast<double>(rtm_cycles) /
                              static_cast<double>(hle_cycles))});
  }
  table.print();
  std::printf(
      "\nExpected: HLE's fixed 1-retry policy makes it give up early, and\n"
      "once one thread holds the real lock the other eliders abort and\n"
      "convert too (the lemming effect) — without RTM's software-controlled\n"
      "retries and adaptive recovery, HLE stays pinned near plain-lock\n"
      "performance even when conflicts are rare. This is why the paper's\n"
      "library uses the RTM interface (Section 3).\n");
  return io.finish();
}
