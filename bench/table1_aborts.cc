// Reproduces Table 1: transactional abort rates (%) for tl2 and tsx on the
// STAMP suite at 1, 2, 4, and 8 threads. Paper claims to check:
//   * tl2 aborts ~0% at 1 thread everywhere (no concurrent writers);
//   * tsx has nonzero 1-thread abort rates on medium/large-footprint
//     workloads (bayes, labyrinth, vacation, yada) — L1 capacity effects;
//   * 8 threads (HyperThreading: two threads share an L1) show markedly
//     higher tsx abort rates than 4 threads;
//   * ssca2 stays ~0% for both.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stamp/stamp.h"

using namespace tsxhpc;
using tmlib::Backend;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "table1_aborts",
                    "STAMP transactional abort rates (Table 1)");
  int threads = 0;
  std::string workload_filter;
  std::string scheme_filter;
  io.args().add_int("threads", "run only this thread count (0 = 1/2/4/8)",
                    &threads);
  std::vector<std::string> workload_names;
  for (const auto& w : stamp::all_workloads()) workload_names.push_back(w.name);
  io.args().add_choice("workload", "run only this STAMP workload",
                       &workload_filter, workload_names);
  io.args().add_choice(
      "scheme", "run only this TM scheme", &scheme_filter,
      {"tl2", "tsx", "tictoc", "tictoc-hybrid", "mvcc"});
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner("Table 1: STAMP transactional abort rates (%)");

  // Default columns are the paper's pair; --scheme=X narrows the table to
  // that scheme alone (how the extended STM schemes are measured).
  std::vector<Backend> schemes{Backend::kTl2, Backend::kTsx};
  if (!scheme_filter.empty()) {
    Backend only = Backend::kTl2;
    tmlib::backend_from_name(scheme_filter, &only);
    schemes = {only};
  }
  std::vector<std::string> head{"workload"};
  for (int t : {1, 2, 4, 8}) {
    for (Backend b : schemes) {
      head.push_back(std::string(tmlib::to_string(b)) + "@" +
                     std::to_string(t));
    }
  }
  bench::Table table(head);
  for (const auto& w : stamp::all_workloads()) {
    if (!workload_filter.empty() && workload_filter != w.name) continue;
    std::vector<std::string> row{w.name};
    for (int t : {1, 2, 4, 8}) {
      for (Backend b : schemes) {
        if (threads != 0 && threads != t) {
          row.push_back("-");
          continue;
        }
        stamp::Config cfg;
        cfg.backend = b;
        cfg.threads = t;
        cfg.scale = scale;
        io.apply(cfg.machine);
        cfg.run_label = std::string(w.name) + "/" + tmlib::to_string(b) +
                        "/t" + std::to_string(t);
        const stamp::Result r = w.fn(cfg);
        row.push_back(bench::fmt(r.abort_rate_pct(b), 0));
      }
    }
    table.add_row(row);
  }
  table.print();

  std::printf(
      "\nPaper's Table 1 for reference (tsx columns): bayes 64/91/89/94, "
      "genome 6/11/19/88,\nintruder 6/11/31/74, kmeans 0/26/71/96, "
      "labyrinth 87/95/100/97, ssca2 0/1/1/1,\nvacation 38/51/52/99, yada "
      "46/68/84/92.\n");
  return io.finish();
}
