// Reproduces Table 1: transactional abort rates (%) for tl2 and tsx on the
// STAMP suite at 1, 2, 4, and 8 threads. Paper claims to check:
//   * tl2 aborts ~0% at 1 thread everywhere (no concurrent writers);
//   * tsx has nonzero 1-thread abort rates on medium/large-footprint
//     workloads (bayes, labyrinth, vacation, yada) — L1 capacity effects;
//   * 8 threads (HyperThreading: two threads share an L1) show markedly
//     higher tsx abort rates than 4 threads;
//   * ssca2 stays ~0% for both.
#include <cstdio>

#include "bench/bench_util.h"
#include "stamp/stamp.h"

using namespace tsxhpc;
using tmlib::Backend;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "table1_aborts");
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner("Table 1: STAMP transactional abort rates (%)");

  bench::Table table({"workload", "tl2@1", "tsx@1", "tl2@2", "tsx@2",
                      "tl2@4", "tsx@4", "tl2@8", "tsx@8"});
  for (const auto& w : stamp::all_workloads()) {
    std::vector<std::string> row{w.name};
    for (int threads : {1, 2, 4, 8}) {
      for (Backend b : {Backend::kTl2, Backend::kTsx}) {
        stamp::Config cfg;
        cfg.backend = b;
        cfg.threads = threads;
        cfg.scale = scale;
        cfg.machine.telemetry = io.telemetry();
        io.label(std::string(w.name) + "/" + tmlib::to_string(b) + "/t" +
                 std::to_string(threads));
        const stamp::Result r = w.fn(cfg);
        row.push_back(bench::fmt(r.abort_rate_pct(b), 0));
      }
    }
    table.add_row(row);
  }
  table.print();

  std::printf(
      "\nPaper's Table 1 for reference (tsx columns): bayes 64/91/89/94, "
      "genome 6/11/19/88,\nintruder 6/11/31/74, kmeans 0/26/71/96, "
      "labyrinth 87/95/100/97, ssca2 0/1/1/1,\nvacation 38/51/52/99, yada "
      "46/68/84/92.\n");
  return io.finish();
}
