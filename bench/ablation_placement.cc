// Ablation: placement of named shared objects (the sim::AllocStrategy seam).
// The paper's capacity results (Section 2, Table 1) are functions of *where*
// objects land in the cache index space, not just how big they are: write
// sets die on L1 set overflow and read sets on LLC evictions, so two layouts
// of the same footprint can sit on opposite sides of the capacity cliff.
// This bench sweeps the shipped strategies — bump (historic layout), slab,
// color, adversarial — over two placement-sensitive kernels and a STAMP
// subset and reports capacity-class aborts (kCapacityWrite + kCapacityRead)
// per cell:
//   * multiarray: 12 named arrays, each exactly one set wrap long. A bump
//     (or slab) layout puts every array's line 0 in the same L1/LLC set, so
//     a transaction writing one line of each overflows the 8-way L1 set and
//     dies; coloring rotates the bases apart and the same transaction fits.
//   * objects: 24 named half-wrap objects, transactionally *read*. Bump
//     stacks the bases in two LLC sets (12 > 10 ways), so reads churn the
//     set and feed the read-eviction lottery; coloring spreads them and the
//     lottery never draws.
// Per-set doom heatmaps come from the artifact: run with --set-stats and
// feed the JSON to `tsx_report --sets=l1 | --sets=llc`. CI diffs the merged
// placement grid against bench/baselines/BENCH_placement.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/machine.h"
#include "stamp/stamp.h"

using namespace tsxhpc;
using sim::AbortCause;
using sim::Context;
using sim::Machine;

namespace {

std::uint64_t capacity_aborts(const sim::RunStats& rs) {
  const sim::ThreadStats t = rs.total();
  return t.tx_aborted[static_cast<std::size_t>(AbortCause::kCapacityWrite)] +
         t.tx_aborted[static_cast<std::size_t>(AbortCause::kCapacityRead)];
}

// 12 arrays x one full set wrap: under bump every base shares one cache
// index, and 12 written lines exceed the 8-way L1 set. 12 also exceeds the
// 10-way LLC set, so even the read variant of this shape would not hide.
std::uint64_t run_multiarray(bench::BenchIo& io, sim::AllocStrategyKind s,
                             bool quick) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  cfg.alloc_strategy = s;
  Machine m(cfg);
  constexpr int kArrays = 12;  // > max(l1_ways, llc_ways)
  const std::size_t wrap =
      static_cast<std::size_t>(cfg.llc_sets()) * cfg.line_bytes;
  std::vector<sim::Addr> base;
  for (int i = 0; i < kArrays; ++i) {
    base.push_back(
        m.alloc({.name = "multiarray/a" + std::to_string(i), .bytes = wrap}));
  }
  const int txns = quick ? 30 : 80;
  sim::RunSpec spec;
  spec.threads = 1;
  spec.label = std::string("multiarray/") + sim::to_string(s);
  spec.body = [&](Context& c) {
    for (int t = 0; t < txns; ++t) {
      try {
        c.xbegin();
        for (int i = 0; i < kArrays; ++i) c.store(base[i], t);
        c.xend();
      } catch (const sim::TxAbort&) {
      }
    }
  };
  return capacity_aborts(m.run(spec));
}

// 24 read-only objects of half a set wrap: bump stacks 12 bases per LLC set
// (10 ways), so every transaction evicts transactionally read lines and
// rolls the read-eviction lottery; adversarial stacks all 24 in set 0.
std::uint64_t run_objects(bench::BenchIo& io, sim::AllocStrategyKind s,
                          bool quick) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  cfg.alloc_strategy = s;
  Machine m(cfg);
  constexpr int kObjects = 24;
  const std::size_t half_wrap =
      static_cast<std::size_t>(cfg.llc_sets()) * cfg.line_bytes / 2;
  std::vector<sim::Addr> base;
  for (int i = 0; i < kObjects; ++i) {
    base.push_back(m.alloc(
        {.name = "objects/o" + std::to_string(i), .bytes = half_wrap}));
  }
  const int txns = quick ? 40 : 100;
  sim::RunSpec spec;
  spec.threads = 1;
  spec.label = std::string("objects/") + sim::to_string(s);
  spec.body = [&](Context& c) {
    for (int t = 0; t < txns; ++t) {
      try {
        c.xbegin();
        for (int i = 0; i < kObjects; ++i) (void)c.load(base[i]);
        c.xend();
      } catch (const sim::TxAbort&) {
      }
    }
  };
  return capacity_aborts(m.run(spec));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_placement",
                    "allocation-placement sweep (AllocStrategy seam over "
                    "capacity kernels and a STAMP subset)");
  int threads = 4;
  std::string workload_filter;
  io.args().add_int("threads", "STAMP thread count for the sweep", &threads);
  io.args().add_choice("workload", "run only this workload",
                       &workload_filter,
                       {"multiarray", "objects", "vacation", "genome",
                        "kmeans"});
  if (!io.parse()) return io.exit_code();
  const bool quick = io.quick();

  bench::banner(
      "Ablation: named-object placement (AllocStrategy seam, capacity-class "
      "aborts)");

  // An explicit --alloc= restricts the sweep to that strategy; the sweep
  // orchestrator pins one (workload, alloc) pair per grid cell this way.
  std::vector<sim::AllocStrategyKind> strategies;
  for (sim::AllocStrategyKind s :
       {sim::AllocStrategyKind::kBump, sim::AllocStrategyKind::kSlab,
        sim::AllocStrategyKind::kColor,
        sim::AllocStrategyKind::kAdversarial}) {
    if (io.alloc_name().empty() || s == io.alloc_strategy()) {
      strategies.push_back(s);
    }
  }
  std::vector<std::string> workloads;
  for (const char* name :
       {"multiarray", "objects", "vacation", "genome", "kmeans"}) {
    if (workload_filter.empty() || workload_filter == name) {
      workloads.push_back(name);
    }
  }

  std::vector<std::string> headers{"alloc"};
  for (const std::string& w : workloads) headers.push_back(w);
  headers.push_back("total cap aborts");
  bench::Table table(headers);

  int best_idx = 0;
  std::uint64_t best_total = ~0ull;
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    const sim::AllocStrategyKind s = strategies[si];
    const std::string sname = sim::to_string(s);
    std::vector<std::string> row{sname};
    std::uint64_t total = 0;
    for (const std::string& name : workloads) {
      std::uint64_t cap = 0;
      if (name == "multiarray") {
        cap = run_multiarray(io, s, quick);
      } else if (name == "objects") {
        cap = run_objects(io, s, quick);
      } else {
        for (const auto& w : stamp::all_workloads()) {
          if (w.name != name) continue;
          stamp::Config cfg;
          cfg.backend = tmlib::Backend::kTsx;
          cfg.threads = threads;
          cfg.scale = quick ? 0.25 : 0.5;
          io.apply(cfg.machine);
          cfg.machine.alloc_strategy = s;  // the sweep overrides --alloc=
          cfg.run_label = name + "/" + sname;
          cap = capacity_aborts(w.fn(cfg).stats);
        }
      }
      row.push_back(std::to_string(cap));
      total += cap;
    }
    row.push_back(std::to_string(total));
    table.add_row(row);
    if (total < best_total) {
      best_total = total;
      best_idx = static_cast<int>(si);
    }
  }
  table.print();
  std::printf(
      "\nFewest capacity aborts here: %s (the historic layout is '%s').\n"
      "Per-set evidence: rerun with --set-stats --json=<path> and render\n"
      "the doom heatmaps with `tsx_report --sets=l1 <path>` / --sets=llc.\n",
      sim::to_string(strategies[best_idx]),
      sim::to_string(sim::AllocStrategyKind::kBump));
  return io.finish();
}
