// Reproduces Figure 1: CLOMP-TM speedup over serial at 4 threads, as a
// function of the number of scatter-zone updates per zone, for the five
// synchronization schemes. Paper claims to check:
//   * Small Atomic is fastest at 1 scatter; Small TM "not too much worse";
//   * Small Critical is far slower; Large Critical stays slow (global lock);
//   * Large TM overtakes Small Atomic once 3-4 updates are batched.
#include <cstdio>

#include "bench/bench_util.h"
#include "clomp/clomp.h"

using namespace tsxhpc;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig1_clomp",
                    "CLOMP-TM speedup vs serial by scatters/zone (Figure 1)");
  int threads = 4;
  std::string scheme_filter;
  io.args().add_int("threads", "simulated threads for every scheme",
                    &threads);
  io.args().add_string("scheme",
                       "run only this scheme (small-atomic, small-critical, "
                       "small-tm, large-critical, large-tm)",
                       &scheme_filter);
  if (!io.parse()) return io.exit_code();
  const bool quick = io.quick();

  bench::banner(
      "Figure 1: CLOMP-TM, 4 threads (no HT), speedup vs serial by "
      "scatters/zone");

  clomp::Config base;
  base.threads = threads;
  base.zones_per_thread = quick ? 24 : 64;
  base.repetitions = quick ? 4 : 12;
  io.apply(base.machine);

  const int scatter_counts[] = {1, 2, 3, 4, 6, 8, 12, 16};
  const clomp::Scheme schemes[] = {
      clomp::Scheme::kSmallAtomic, clomp::Scheme::kSmallCritical,
      clomp::Scheme::kSmallTM, clomp::Scheme::kLargeCritical,
      clomp::Scheme::kLargeTM};

  bench::Table table({"scatters", "small-atomic", "small-critical",
                      "small-tm", "large-critical", "large-tm"});

  double cross_small_atomic = 0, cross_large_tm = 0;
  int crossover_at = -1;
  for (int s : scatter_counts) {
    clomp::Config cfg = base;
    cfg.scatters_per_zone = s;
    std::vector<std::string> row{std::to_string(s)};
    double small_atomic = 0, large_tm = 0;
    for (clomp::Scheme scheme : schemes) {
      if (!scheme_filter.empty() &&
          scheme_filter != clomp::to_string(scheme)) {
        row.push_back("-");
        continue;
      }
      cfg.run_label = std::string(clomp::to_string(scheme)) + "/scatters" +
                      std::to_string(s);
      const double sp = clomp::speedup_vs_serial(cfg, scheme);
      row.push_back(bench::fmt(sp));
      if (scheme == clomp::Scheme::kSmallAtomic) small_atomic = sp;
      if (scheme == clomp::Scheme::kLargeTM) large_tm = sp;
    }
    table.add_row(row);
    if (crossover_at < 0 && large_tm > small_atomic) {
      crossover_at = s;
      cross_small_atomic = small_atomic;
      cross_large_tm = large_tm;
    }
  }
  table.print();

  if (crossover_at > 0) {
    std::printf(
        "\nLarge TM first outperforms Small Atomic at %d batched updates "
        "(%.2fx vs %.2fx).\n",
        crossover_at, cross_large_tm, cross_small_atomic);
    std::printf("Paper: crossover at 3-4 batched updates.\n");
  } else if (scheme_filter.empty()) {
    std::printf("\nWARNING: no crossover observed (paper: 3-4 updates).\n");
  }
  return io.finish();
}
