// Ablation: thread/data mapping on a many-core NUMA topology. Sweeps the
// --map= policy against LLC slice counts and thread counts (up to 64 cores)
// on a multi-socket machine and reports makespan, abort rate and
// interconnect traffic per cell.
//
// The workload is pair-sharing: threads t and t^1 transactionally update a
// region their pair owns (plus a private streaming region that generates
// DRAM traffic). Under --map=compact a pair lands on one socket, so its
// dirty-line ping-pong stays on-package; under --map=scatter the pair
// straddles the socket interconnect — every forwarded line pays
// lat_hop_socket, transactions hold their window open longer, and the
// makespan and abort rate shift. --map=sharing-aware additionally homes DRAM
// lines on the first-touching socket, which converts the private streams'
// remote DRAM fills into local ones.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/machine.h"

using namespace tsxhpc;
using sim::Context;
using sim::Machine;

namespace {

struct CellResult {
  sim::Cycles makespan = 0;
  double abort_pct = 0;
  std::uint64_t slice_hops = 0;
  std::uint64_t socket_hops = 0;
  double hop_cycle_pct = 0;  // hop cycles as % of total cycles
};

CellResult run_cell(bench::BenchIo& io, sim::MapPolicy map, int sockets,
                    int slices, int threads, int iters) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  // One core per simulated thread: the scaling axis is cores, not SMT.
  cfg.num_cores = threads;
  cfg.smt_per_core = 1;
  cfg.topology.num_sockets = sockets;
  cfg.topology.llc_slices = slices;
  cfg.topology.map = map;
  Machine m(cfg);

  constexpr int kPairLines = 16;   // transactionally shared per pair
  constexpr int kPrivLines = 256;  // private stream (16 KB: spills the L1)
  std::vector<sim::Addr> pair_base(threads);
  std::vector<sim::Addr> priv_base(threads);
  for (int t = 0; t < threads; t += 2) {
    const sim::Addr a =
        m.alloc({"pair" + std::to_string(t / 2), kPairLines * 64ull, 64});
    pair_base[t] = a;
    if (t + 1 < threads) pair_base[t + 1] = a;
  }
  for (int t = 0; t < threads; ++t) {
    priv_base[t] = m.alloc({"priv" + std::to_string(t), kPrivLines * 64ull, 64});
  }

  sim::RunSpec spec;
  spec.threads = threads;
  spec.label = std::string("topology/") + sim::to_string(map) + "/s" +
               std::to_string(slices) + "/t" + std::to_string(threads);
  spec.body = [&](Context& c) {
    const int t = c.tid();
    for (int i = 0; i < iters; ++i) {
      try {
        c.xbegin();
        for (int k = 0; k < 8; ++k) {
          (void)c.load(pair_base[t] + ((i + k) % kPairLines) * 64ull);
        }
        c.store(pair_base[t] + (i % kPairLines) * 64ull,
                static_cast<std::uint64_t>(i));
        c.xend();
      } catch (const sim::TxAbort&) {
      }
      for (int k = 0; k < 4; ++k) {
        (void)c.load(priv_base[t] + ((i * 4 + k) % kPrivLines) * 64ull);
      }
    }
  };
  const sim::RunStats rs = m.run(spec);
  const sim::ThreadStats tot = rs.total();
  CellResult r;
  r.makespan = rs.makespan;
  r.abort_pct = tot.abort_rate_pct();
  r.slice_hops = tot.slice_hops;
  r.socket_hops = tot.socket_hops;
  const double cycles = static_cast<double>(tot.cycles_total());
  r.hop_cycle_pct =
      cycles == 0 ? 0 : 100.0 * static_cast<double>(tot.hop_cycles) / cycles;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_topology",
                    "thread/data mapping vs. sliced-LLC NUMA topology");
  int threads = 0;
  io.args().add_int("threads",
                    "run only this thread count (0 = sweep; one core per "
                    "thread, so the cap is 64)",
                    &threads);
  if (!io.parse()) return io.exit_code();

  const int sockets = io.sockets() != 0 ? io.sockets() : 2;
  const std::vector<int> slice_list =
      io.slices() != 0 ? std::vector<int>{io.slices()}
                       : std::vector<int>{sockets, 4 * sockets};
  std::vector<sim::MapPolicy> maps;
  for (sim::MapPolicy m : {sim::MapPolicy::kCompact, sim::MapPolicy::kScatter,
                           sim::MapPolicy::kSharingAware}) {
    if (io.map_name().empty() || m == io.map()) maps.push_back(m);
  }
  const std::vector<int> thread_list =
      threads != 0 ? std::vector<int>{threads}
                   : (io.quick() ? std::vector<int>{4, 8}
                                 : std::vector<int>{8, 16, 32, 64});
  const int iters = io.quick() ? 200 : 400;

  for (int t : thread_list) {
    if (t > 64 || t % sockets != 0) {
      return io.args().fail("thread count " + std::to_string(t) +
                            " needs one core each (max 64) and must be a "
                            "multiple of --sockets=" + std::to_string(sockets));
    }
  }
  for (int s : slice_list) {
    if (s % sockets != 0) {
      return io.args().fail("--slices=" + std::to_string(s) +
                            " must be a positive multiple of --sockets=" +
                            std::to_string(sockets));
    }
  }

  bench::banner("Ablation: thread/data mapping on " +
                std::to_string(sockets) + "-socket sliced-LLC topologies");
  for (int slices : slice_list) {
    std::printf("-- %d LLC slices, %d sockets --\n", slices, sockets);
    bench::Table table({"map", "threads", "makespan", "abort%", "slice hops",
                        "socket hops", "hop cyc%"});
    for (sim::MapPolicy map : maps) {
      for (int t : thread_list) {
        const CellResult r = run_cell(io, map, sockets, slices, t, iters);
        table.add_row({sim::to_string(map), std::to_string(t),
                       std::to_string(r.makespan), bench::fmt(r.abort_pct, 1),
                       std::to_string(r.slice_hops),
                       std::to_string(r.socket_hops),
                       bench::fmt(r.hop_cycle_pct, 1)});
      }
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Expected: scatter splits every sharing pair across sockets — its\n"
      "socket-hop count and makespan sit above compact at every scale, and\n"
      "the shifted conflict windows move the abort rate. sharing-aware\n"
      "matches compact's placement and converts the private streams' remote\n"
      "DRAM fills into local ones: the fewest socket hops and the shortest\n"
      "makespan of the three.\n");
  return io.finish();
}
