// Micro-benchmarks (google-benchmark) for the synchronization primitives'
// *simulated* cycle costs: the cost model behind every figure. Each
// benchmark reports the simulated cycles per operation as a counter, so the
// cost-model ratios (atomic vs. transaction vs. lock; Figure 1's 3-4 update
// crossover) can be read directly.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/machine.h"
#include "sim/shared.h"
#include "sync/elision.h"
#include "sync/locks.h"

using namespace tsxhpc;
using sim::Context;
using sim::Machine;

namespace {

// Shared --json/--trace/--backend plumbing; set up in main before
// benchmarks run.
bench::BenchIo* g_io = nullptr;

sim::MachineConfig machine_config() {
  sim::MachineConfig cfg;
  if (g_io) g_io->apply(cfg);
  return cfg;
}

/// Run `op` `iters` times on one simulated thread; returns cycles/op.
template <typename SetupFn>
double cycles_per_op(benchmark::State& state, const char* label,
                     SetupFn&& setup) {
  Machine m(machine_config());
  auto op = setup(m);
  constexpr int kIters = 512;
  sim::RunSpec spec;
  spec.label = label;
  spec.body = [&](Context& c) {
    // Warm up the cache.
    for (int i = 0; i < 32; ++i) op(c);
    const sim::Cycles t0 = c.now();
    for (int i = 0; i < kIters; ++i) op(c);
    state.counters["sim_cycles_per_op"] =
        static_cast<double>(c.now() - t0) / kIters;
  };
  (void)m.run(spec);
  return state.counters["sim_cycles_per_op"];
}

void BM_PlainStore(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_PlainStore", [](Machine& m) {
      auto cell = sim::Shared<std::uint64_t>::alloc(m, 0);
      return [cell](Context& c) { cell.store(c, 1); };
    });
  }
}
BENCHMARK(BM_PlainStore)->Iterations(1);

void BM_AtomicFetchAdd(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_AtomicFetchAdd", [](Machine& m) {
      auto cell = sim::Shared<std::uint64_t>::alloc(m, 0);
      return [cell](Context& c) { cell.fetch_add(c, 1); };
    });
  }
}
BENCHMARK(BM_AtomicFetchAdd)->Iterations(1);

void BM_SpinLockRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_SpinLockRoundTrip", [](Machine& m) {
      auto lock = std::make_shared<sync::SpinLock>(m);
      return [lock](Context& c) {
        lock->acquire(c);
        lock->release(c);
      };
    });
  }
}
BENCHMARK(BM_SpinLockRoundTrip)->Iterations(1);

void BM_FutexMutexRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_FutexMutexRoundTrip", [](Machine& m) {
      auto lock = std::make_shared<sync::FutexMutex>(m);
      return [lock](Context& c) {
        lock->acquire(c);
        lock->release(c);
      };
    });
  }
}
BENCHMARK(BM_FutexMutexRoundTrip)->Iterations(1);

void BM_EmptyElidedSection(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_EmptyElidedSection", [](Machine& m) {
      auto lock = std::make_shared<sync::ElidedLock>(m);
      return [lock](Context& c) { lock->critical(c, [] {}); };
    });
  }
}
BENCHMARK(BM_EmptyElidedSection)->Iterations(1);

void BM_ElidedSectionWithStore(benchmark::State& state) {
  for (auto _ : state) {
    cycles_per_op(state, "BM_ElidedSectionWithStore", [](Machine& m) {
      auto lock = std::make_shared<sync::ElidedLock>(m);
      auto cell = sim::Shared<std::uint64_t>::alloc(m, 0);
      return [lock, cell](Context& c) {
        lock->critical(c, [&] { cell.store(c, cell.load(c) + 1); });
      };
    });
  }
}
BENCHMARK(BM_ElidedSectionWithStore)->Iterations(1);

// The Figure 1 relationship in miniature: batching k updates in one region.
void BM_ElidedBatchedUpdates(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Machine m(machine_config());
    sync::ElidedLock lock(m);
    auto cells = sim::SharedArray<std::uint64_t>::alloc(m, 64, 0);
    constexpr int kIters = 256;
    sim::RunSpec spec;
    spec.label = "BM_ElidedBatchedUpdates/" + std::to_string(k);
    spec.body = [&](Context& c) {
      for (int i = 0; i < 64; ++i) (void)cells.at(i).load(c);  // warm
      const sim::Cycles t0 = c.now();
      for (int i = 0; i < kIters; ++i) {
        lock.critical(c, [&] {
          for (int j = 0; j < k; ++j) {
            auto cell = cells.at((i + j) % 64);
            cell.store(c, cell.load(c) + 1);
          }
        });
      }
      state.counters["sim_cycles_per_update"] =
          static_cast<double>(c.now() - t0) / (kIters * k);
    };
    m.run(spec);
  }
}
BENCHMARK(BM_ElidedBatchedUpdates)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "micro_sync",
                    "simulated cycle costs of the sync primitives");
  // Anything we don't declare (--benchmark_filter=..., etc.) is forwarded
  // to google-benchmark's own parser instead of being an error.
  std::vector<std::string> extra;
  io.args().set_passthrough(&extra);
  if (!io.parse()) return io.exit_code();
  g_io = &io;

  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (std::string& a : extra) bench_argv.push_back(a.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return io.finish();
}
