// Reproduces Figure 6: server-side read bandwidth of the user-level TCP/IP
// stack under the five locking-module implementations, on three network
// intensive applications. Values are normalized to `mutex` as in the paper.
// Paper claims to check:
//   * tsx.abort drops drastically on netferret (many small packets =>
//     constant condition-variable aborts);
//   * tsx.cond fixes netferret and roughly matches mutex elsewhere (the
//     futex sleep/wake delay dominates the critical path);
//   * busy-waiting lifts everything; tsx.busywait is best on all three
//     (paper: 1.31x average bandwidth improvement over mutex).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "netapps/netapps.h"

using namespace tsxhpc;
using sync::MonitorScheme;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig6_netstack",
                    "TCP/IP-stack read bandwidth by locking module (Fig 6)");
  int connections = 4;
  std::string workload_filter;
  io.args().add_int("connections",
                    "client/server pairs (threads = 2x this)", &connections);
  io.args().add_string("workload", "run only this network app",
                       &workload_filter);
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner(
      "Figure 6: user-level TCP/IP stack, server read bandwidth "
      "(normalized to mutex)");

  const MonitorScheme schemes[] = {
      MonitorScheme::kMutex, MonitorScheme::kTsxAbort,
      MonitorScheme::kTsxCond, MonitorScheme::kMutexBusyWait,
      MonitorScheme::kTsxBusyWait};

  bench::Table table({"workload", "mutex", "tsx.abort", "tsx.cond",
                      "mutex.busywait", "tsx.busywait", "raw mutex MB/s"});
  double product = 1.0;
  int n = 0;
  for (const auto& w : netapps::all_workloads()) {
    if (!workload_filter.empty() && workload_filter != w.name) continue;
    netapps::Config cfg;
    cfg.scale = scale;
    cfg.connections = connections;
    cfg.scheme = MonitorScheme::kMutex;
    io.apply(cfg.machine);
    cfg.run_label = std::string(w.name) + "/mutex/ref";
    const netapps::Result ref = w.fn(cfg);

    std::vector<std::string> row{w.name};
    double tsx_busywait = 0;
    for (MonitorScheme s : schemes) {
      cfg.scheme = s;
      cfg.run_label = std::string(w.name) + "/" + sync::to_string(s);
      const netapps::Result r = w.fn(cfg);
      const double rel = r.bandwidth_mbps / ref.bandwidth_mbps;
      row.push_back(r.checksum == 0 ? "INVALID" : bench::fmt(rel));
      if (s == MonitorScheme::kTsxBusyWait) tsx_busywait = rel;
    }
    row.push_back(bench::fmt(ref.bandwidth_mbps, 0));
    table.add_row(row);
    product *= tsx_busywait;
    n++;
  }
  table.print();
  if (n > 0) {
    std::printf(
        "\nGeomean tsx.busywait bandwidth vs mutex: %.2fx (paper: 1.31x "
        "average).\n",
        std::pow(product, 1.0 / n));
  }
  return io.finish();
}
