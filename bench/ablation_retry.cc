// Ablation: the transactional retry count before falling back to the lock.
// Section 3: "The decision to acquire the lock explicitly is based on the
// number of times the transactional execution has been tried but failed;
// for our hardware and workloads, 5 gave the best overall performance."
//
// We sweep the retry budget over a contended CLOMP-TM configuration and a
// STAMP subset and report the geomean speedup over retry=1.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "clomp/clomp.h"
#include "stamp/stamp.h"

using namespace tsxhpc;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_retry",
                    "elision retry-budget sweep (Section 3; paper best: 5)");
  int threads = 4;
  io.args().add_int("threads", "STAMP thread count for the sweep", &threads);
  if (!io.parse()) return io.exit_code();
  const bool quick = io.quick();

  bench::banner("Ablation: elision retry budget (Section 3; paper best: 5)");

  const int retries[] = {1, 2, 3, 5, 8, 16};
  bench::Table table({"retries", "clomp(contended)", "genome", "intruder",
                      "vacation", "geomean vs retry=1"});

  // Baselines at retry = 1.
  std::vector<double> base;
  std::vector<std::vector<double>> rows;
  for (int r : retries) {
    std::vector<double> spans;
    {
      clomp::Config cfg;
      cfg.zones_per_thread = quick ? 24 : 48;
      cfg.scatters_per_zone = 4;
      cfg.repetitions = quick ? 4 : 10;
      cfg.cross_partition_fraction = 0.35;  // real conflicts
      cfg.policy.max_retries = r;
      io.apply(cfg.machine);
      cfg.run_label = "clomp/retry" + std::to_string(r);
      spans.push_back(
          static_cast<double>(clomp::run(cfg, clomp::Scheme::kLargeTM).makespan));
    }
    for (const char* name : {"genome", "intruder", "vacation"}) {
      for (const auto& w : stamp::all_workloads()) {
        if (w.name != name) continue;
        stamp::Config cfg;
        cfg.backend = tmlib::Backend::kTsx;
        cfg.threads = threads;
        cfg.scale = quick ? 0.25 : 0.5;
        cfg.policy.max_retries = r;
        io.apply(cfg.machine);
        cfg.run_label = std::string(name) + "/retry" + std::to_string(r);
        spans.push_back(static_cast<double>(w.fn(cfg).makespan));
      }
    }
    if (base.empty()) base = spans;
    rows.push_back(spans);
  }

  int best_idx = 0;
  double best_geo = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> row{std::to_string(retries[i])};
    double product = 1.0;
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      const double sp = base[j] / rows[i][j];
      row.push_back(bench::fmt(sp));
      product *= sp;
    }
    const double geo = std::pow(product, 1.0 / rows[i].size());
    row.push_back(bench::fmt(geo, 3));
    table.add_row(row);
    if (geo > best_geo) {
      best_geo = geo;
      best_idx = static_cast<int>(i);
    }
  }
  table.print();
  std::printf("\nBest retry budget here: %d (paper: 5).\n", retries[best_idx]);
  return io.finish();
}
