// Ablation: the retry/backoff/fallback policy behind the elided primitives.
// Section 3 fixes one software fallback handler ("the number of times the
// transactional execution has been tried but failed; for our hardware and
// workloads, 5 gave the best overall performance"). With the TxPolicy seam
// that handler is swappable, so this bench sweeps the shipped policies —
// paper, no-hint, expo-backoff, adaptive-site — over a contended CLOMP-TM
// configuration and a STAMP subset and reports the geomean speedup over the
// paper policy. The four policies must produce four distinct deterministic
// orderings; CI diffs this bench's artifact against
// bench/baselines/BENCH_retry_policy.json.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "clomp/clomp.h"
#include "stamp/stamp.h"

using namespace tsxhpc;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_retry",
                    "elision policy sweep (Section 3 fallback handler "
                    "variants over the TxPolicy seam)");
  int threads = 4;
  std::string workload_filter;
  io.args().add_int("threads", "STAMP thread count for the sweep", &threads);
  io.args().add_choice("workload", "run only this workload",
                       &workload_filter,
                       {"clomp", "genome", "intruder", "vacation"});
  if (!io.parse()) return io.exit_code();
  const bool quick = io.quick();

  bench::banner(
      "Ablation: elision policy (Section 3 handler vs TxPolicy variants)");

  // An explicit --policy= restricts the sweep to that policy; the sweep
  // orchestrator pins one (workload, policy) pair per grid cell this way.
  std::vector<sim::TxPolicyKind> policies;
  for (sim::TxPolicyKind p :
       {sim::TxPolicyKind::kPaper, sim::TxPolicyKind::kNoHint,
        sim::TxPolicyKind::kExpoBackoff, sim::TxPolicyKind::kAdaptiveSite}) {
    if (io.policy_name().empty() || p == io.tx_policy()) policies.push_back(p);
  }
  std::vector<std::string> workloads;
  for (const char* name : {"clomp", "genome", "intruder", "vacation"}) {
    if (workload_filter.empty() || workload_filter == name) {
      workloads.push_back(name);
    }
  }
  std::vector<std::string> headers{"policy"};
  for (const std::string& w : workloads) {
    headers.push_back(w == "clomp" ? "clomp(contended)" : w);
  }
  headers.push_back("geomean vs " + std::string(sim::to_string(policies[0])));
  bench::Table table(headers);

  // Baselines at the first policy in the sweep (row 0).
  std::vector<double> base;
  std::vector<std::vector<double>> rows;
  for (sim::TxPolicyKind p : policies) {
    const std::string pname = sim::to_string(p);
    std::vector<double> spans;
    for (const std::string& name : workloads) {
      if (name == "clomp") {
        clomp::Config cfg;
        cfg.zones_per_thread = quick ? 24 : 48;
        cfg.scatters_per_zone = 4;
        cfg.repetitions = quick ? 4 : 10;
        cfg.cross_partition_fraction = 0.35;  // real conflicts
        io.apply(cfg.machine);
        cfg.machine.tx_policy = p;  // the sweep overrides any --policy= flag
        cfg.run_label = "clomp/" + pname;
        spans.push_back(static_cast<double>(
            clomp::run(cfg, clomp::Scheme::kLargeTM).makespan));
        continue;
      }
      for (const auto& w : stamp::all_workloads()) {
        if (w.name != name) continue;
        stamp::Config cfg;
        cfg.backend = tmlib::Backend::kTsx;
        cfg.threads = threads;
        cfg.scale = quick ? 0.25 : 0.5;
        io.apply(cfg.machine);
        cfg.machine.tx_policy = p;
        cfg.run_label = name + "/" + pname;
        spans.push_back(static_cast<double>(w.fn(cfg).makespan));
      }
    }
    if (base.empty()) base = spans;
    rows.push_back(spans);
  }

  int best_idx = 0;
  double best_geo = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::vector<std::string> row{sim::to_string(policies[i])};
    double product = 1.0;
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      const double sp = base[j] / rows[i][j];
      row.push_back(bench::fmt(sp));
      product *= sp;
    }
    const double geo = std::pow(product, 1.0 / rows[i].size());
    row.push_back(bench::fmt(geo, 3));
    table.add_row(row);
    if (geo > best_geo) {
      best_geo = geo;
      best_idx = static_cast<int>(i);
    }
  }
  table.print();
  std::printf("\nBest policy here: %s (the paper ships '%s').\n",
              sim::to_string(policies[best_idx]),
              sim::to_string(sim::TxPolicyKind::kPaper));
  return io.finish();
}
