// Reproduces Figure 3: RMS-TM speedup over 1-thread fgl for fgl / sgl / tsx
// at 1, 2, 4, 8 threads. Paper claims to check:
//   * fine-grained locking scales reasonably on all workloads;
//   * tsx provides comparable performance — even with malloc and file I/O
//     happening inside transactional regions (early abort + lock);
//   * the single global lock collapses only on fluidanimate (tiny critical
//     sections at enormous rate) and utilitymine (>30% of time in critical
//     sections), where tsx keeps scaling.
#include <cstdio>

#include "bench/bench_util.h"
#include "rmstm/rmstm.h"

using namespace tsxhpc;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig3_rmstm",
                    "RMS-TM speedup over 1-thread fgl (Figure 3)");
  int threads = 0;
  std::string workload_filter;
  std::string scheme_filter;
  io.args().add_int("threads", "run only this thread count (0 = 1/2/4/8)",
                    &threads);
  io.args().add_string("workload", "run only this RMS-TM workload",
                       &workload_filter);
  io.args().add_string("scheme", "run only this scheme (fgl, sgl, tsx)",
                       &scheme_filter);
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner("Figure 3: RMS-TM, speedup over 1-thread fgl");

  for (const auto& w : rmstm::all_workloads()) {
    if (!workload_filter.empty() && workload_filter != w.name) continue;
    rmstm::Config ref_cfg;
    ref_cfg.scheme = rmstm::Scheme::kFgl;
    ref_cfg.threads = 1;
    ref_cfg.scale = scale;
    io.apply(ref_cfg.machine);
    ref_cfg.run_label = std::string(w.name) + "/fgl/ref";
    const double ref = static_cast<double>(w.fn(ref_cfg).makespan);

    bench::Table table({w.name, "fgl", "sgl", "tsx"});
    for (int t : {1, 2, 4, 8}) {
      if (threads != 0 && threads != t) continue;
      std::vector<std::string> row{std::to_string(t) + " thr"};
      for (rmstm::Scheme s :
           {rmstm::Scheme::kFgl, rmstm::Scheme::kSgl, rmstm::Scheme::kTsx}) {
        if (!scheme_filter.empty() && scheme_filter != rmstm::to_string(s)) {
          row.push_back("-");
          continue;
        }
        rmstm::Config cfg = ref_cfg;
        cfg.scheme = s;
        cfg.threads = t;
        cfg.run_label = std::string(w.name) + "/" + rmstm::to_string(s) +
                        "/t" + std::to_string(t);
        const rmstm::Result r = w.fn(cfg);
        row.push_back(r.checksum == 0
                          ? "INVALID"
                          : bench::fmt(ref / static_cast<double>(r.makespan)));
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: tsx tracks fgl on every row; sgl collapses only on\n"
      "fluidanimate and utilitymine.\n");
  return io.finish();
}
