// Ablation: transactional capacity behaviour (Section 2). Sweeps the
// write-set and read-set footprint of a single-threaded transaction and
// reports commit rates, demonstrating:
//   * write sets are bounded by the L1 (eviction of a transactionally
//     written line aborts immediately, including set-conflict evictions
//     well before the full 32 KB);
//   * read sets survive L1 eviction via the secondary tracking structure,
//     but with an abort probability per evicted line (Table 1's nonzero
//     single-thread abort rates);
//   * a HyperThread sibling halves the effective capacity.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/machine.h"
#include "sim/rng.h"

using namespace tsxhpc;
using sim::AbortCause;
using sim::Context;
using sim::Machine;

namespace {

// Commit rate (%) of transactions touching `lines` random cache lines.
double commit_rate(bench::BenchIo& io, bool writes, std::size_t lines,
                   bool smt_sibling, int txns = 40) {
  sim::MachineConfig cfg;
  io.apply(cfg);
  Machine m(cfg);
  const std::string label = std::string(writes ? "write" : "read") + "-set/" +
                            std::to_string(lines) + "-lines" +
                            (smt_sibling ? "/smt" : "");
  const std::size_t span_lines = 4096;
  sim::Addr base = m.alloc(span_lines * cfg.line_bytes, 64);
  int commits = 0;

  auto worker = [&](Context& c) {
    sim::Xoshiro256 rng(7);
    for (int t = 0; t < txns; ++t) {
      // Pre-draw the footprint so aborted attempts replay identically.
      std::vector<std::size_t> idx(lines);
      for (auto& i : idx) i = rng.next_below(span_lines);
      try {
        c.xbegin();
        for (std::size_t i : idx) {
          const sim::Addr a = base + i * cfg.line_bytes;
          if (writes) {
            c.store(a, t);
          } else {
            (void)c.load(a);
          }
        }
        c.xend();
        commits++;
      } catch (const sim::TxAbort&) {
      }
    }
  };

  sim::RunSpec spec;
  spec.label = label;
  if (!smt_sibling) {
    spec.body = worker;
  } else {
    // Thread 4 shares core 0's L1 with thread 0 (4-core topology).
    std::vector<std::function<void(Context&)>> bodies(
        5, [](Context& c) { c.compute(1); });
    bodies[0] = worker;
    bodies[4] = [&](Context& c) {
      // Sibling thrashes the shared L1 non-transactionally.
      sim::Xoshiro256 rng(99);
      for (int i = 0; i < 20000; ++i) {
        c.store(base + rng.next_below(span_lines) * 64, i);
        c.compute(40);
      }
    };
    spec.bodies = std::move(bodies);
  }
  m.run(spec);
  return 100.0 * commits / txns;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "ablation_capacity",
                    "transactional footprint vs. commit rate (Section 2)");
  if (!io.parse()) return io.exit_code();
  bench::banner("Ablation: transactional footprint vs. commit rate (1 thread)");

  bench::Table table({"lines touched", "KB", "write-set commit %",
                      "read-set commit %", "write-set + HT sibling %"});
  for (std::size_t lines : {16, 64, 128, 256, 384, 448, 512, 768, 1024}) {
    table.add_row({std::to_string(lines),
                   bench::fmt(lines * 64.0 / 1024.0, 0),
                   bench::fmt(commit_rate(io, true, lines, false), 0),
                   bench::fmt(commit_rate(io, false, lines, false), 0),
                   bench::fmt(commit_rate(io, true, lines, true), 0)});
  }
  table.print();

  std::printf(
      "\nExpected: write sets die as footprints approach the 512-line L1\n"
      "(set-conflict evictions bite earlier); read sets degrade gradually\n"
      "(secondary tracking); an active HyperThread sibling roughly halves\n"
      "the usable write capacity (Section 4.2).\n");
  return io.finish();
}
