// Reproduces Figure 5: synchronization-scheme comparison with varying
// transactional granularity.
//   (a) histogram: atomic vs privatize vs tsx.gran{1,2,3}
//   (b) physicsSolver: mutex vs barrier vs tsx.gran{1,2,3}
// Paper claims to check:
//   * privatization/barriers perform well at low thread counts but do not
//     scale: at 8 threads even atomics/locks beat them (Section 5.4.2);
//   * coarser transactional granularity amortizes overhead, but there is a
//     performance inflection point — at 8 threads the LARGEST granularity
//     is not the best (Section 5.4.3).
#include <cstdio>

#include "apps/apps.h"
#include "bench/bench_util.h"

using namespace tsxhpc;

namespace {

void sweep(bench::BenchIo& io, const char* title, const apps::Workload& w,
           const char* alt_name, const std::size_t grans[3], double scale) {
  apps::Config ref;
  ref.variant = apps::Variant::kBaseline;
  ref.threads = 1;
  ref.scale = scale;
  io.apply(ref.machine);
  ref.run_label = std::string(w.name) + "/baseline/ref";
  const double base1 = static_cast<double>(w.fn(ref).makespan);

  bench::banner(title);
  bench::Table table({"threads", "baseline", alt_name, "tsx.gran1",
                      "tsx.gran2", "tsx.gran3"});
  double best8[6] = {};
  for (int threads : {1, 2, 4, 8}) {
    std::vector<std::string> row{std::to_string(threads)};
    int col = 1;
    auto add = [&](apps::Variant v, std::size_t gran) {
      apps::Config cfg = ref;
      cfg.variant = v;
      cfg.threads = threads;
      cfg.gran = gran;
      cfg.run_label = std::string(w.name) + "/" + apps::to_string(v) +
                      "/gran" + std::to_string(gran) + "/t" +
                      std::to_string(threads);
      const apps::Result r = w.fn(cfg);
      const double sp = base1 / static_cast<double>(r.makespan);
      row.push_back(r.checksum == 0 ? "INVALID" : bench::fmt(sp));
      if (threads == 8) best8[col] = sp;
      col++;
    };
    add(apps::Variant::kBaseline, 0);
    add(apps::Variant::kConflictFree, 0);
    add(apps::Variant::kTsxCoarsen, grans[0]);
    add(apps::Variant::kTsxCoarsen, grans[1]);
    add(apps::Variant::kTsxCoarsen, grans[2]);
    table.add_row(row);
  }
  table.print();
  std::printf(
      "  At 8 threads: baseline %.2fx vs conflict-free %.2fx (paper: "
      "conflict-free loses);\n  gran%zu %.2fx vs gran%zu %.2fx (paper: "
      "largest granularity not best).\n",
      best8[1], best8[2], grans[1], best8[4], grans[2], best8[5]);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig5_granularity",
                    "transaction-granularity sweeps (Figure 5)");
  std::string workload_filter;
  io.args().add_string("workload",
                       "run only this sweep (histogram or physics)",
                       &workload_filter);
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  const apps::Workload* histogram = nullptr;
  const apps::Workload* physics = nullptr;
  for (const auto& w : apps::all_workloads()) {
    if (w.name == "histogram") histogram = &w;
    if (w.name == "physics") physics = &w;
  }

  if (workload_filter.empty() || workload_filter == "histogram") {
    const std::size_t hist_grans[3] = {2, 8, 32};
    sweep(io, "Figure 5a: histogram — atomic / privatize / tsx.gran*",
          *histogram, "privatize", hist_grans, scale);
  }
  if (workload_filter.empty() || workload_filter == "physics") {
    const std::size_t phys_grans[3] = {1, 2, 4};
    sweep(io, "Figure 5b: physicsSolver — mutex / barrier / tsx.gran*",
          *physics, "barrier", phys_grans, scale);
  }
  return io.finish();
}
