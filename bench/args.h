// bench::Args — the one command-line parser every bench binary and tool
// shares. Flags are *declared* (name, help text, typed destination) before
// parse(); in exchange every binary gets --help for free, an error (not
// silence) on unknown or malformed flags, and a uniform `--name=value`
// spelling for the knobs that recur across benches (--threads=, --scheme=,
// --backend=). The declarations double as documentation: markdown() renders
// the flag table EXPERIMENTS.md embeds.
//
//   int main(int argc, char** argv) {
//     bench::Args args("fig1_clomp", "CLOMP weak-scaling sweep (Figure 1)");
//     int threads = 0;
//     args.add_int("threads", "run only this thread count (0 = sweep)",
//                  &threads);
//     if (!args.parse(argc, argv)) return args.exit_code();
//     ...
//   }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tsxhpc::bench {

class Args {
 public:
  Args(std::string prog, std::string summary)
      : prog_(std::move(prog)), summary_(std::move(summary)) {}

  // --- Flag declarations (call before parse) ------------------------------

  /// `--name` (presence) or `--name=0|1|true|false`.
  void add_bool(const std::string& name, const std::string& help, bool* out) {
    add(name, help, *out ? "true" : "false", Kind::kBool, out);
  }
  void add_int(const std::string& name, const std::string& help, int* out) {
    add(name, help, std::to_string(*out), Kind::kInt, out);
  }
  void add_size(const std::string& name, const std::string& help,
                std::size_t* out) {
    add(name, help, std::to_string(*out), Kind::kSize, out);
  }
  void add_double(const std::string& name, const std::string& help,
                  double* out) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", *out);
    add(name, help, buf, Kind::kDouble, out);
  }
  void add_string(const std::string& name, const std::string& help,
                  std::string* out) {
    add(name, help, out->empty() ? "" : *out, Kind::kString, out);
  }
  /// String flag restricted to a fixed value set. A value outside `choices`
  /// is a usage error (exit 2) that names the valid set — the one place
  /// every enum-like flag gets its validation, instead of each bench
  /// re-implementing (or forgetting) the check. An empty *out default means
  /// "flag not given"; the empty string itself is not a valid value.
  void add_choice(const std::string& name, const std::string& help,
                  std::string* out, std::vector<std::string> choices) {
    add(name, help, out->empty() ? "" : *out, Kind::kChoice, out);
    flags_.back().choices = std::move(choices);
  }
  /// String flag whose value is optional: bare `--name` assigns
  /// `bare_value`, `--name=v` assigns v (tsx_report's `--sets[=level]`).
  void add_opt_string(const std::string& name, const std::string& help,
                      std::string* out, const std::string& bare_value) {
    add(name, help, out->empty() ? "" : *out, Kind::kOptString, out);
    flags_.back().bare_value = bare_value;
  }

  /// Bare (non `--`) argument, filled in declaration order.
  void add_positional(const std::string& name, const std::string& help,
                      std::string* out, bool required) {
    positionals_.push_back(Positional{name, help, out, required});
  }

  /// Collect unrecognized arguments here instead of erroring — for binaries
  /// that forward them to another library's own parser (micro_sync hands
  /// google-benchmark its --benchmark_* flags).
  void set_passthrough(std::vector<std::string>* out) { passthrough_ = out; }

  // --- Parsing ------------------------------------------------------------

  /// Returns true when the program should proceed. False means either
  /// --help was printed (exit_code() == 0) or a usage error was reported on
  /// stderr (exit_code() == 2).
  bool parse(int argc, char** argv) {
    std::size_t next_pos = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::fputs(usage().c_str(), stdout);
        exit_code_ = 0;
        return false;
      }
      if (arg.rfind("--", 0) != 0) {
        if (next_pos < positionals_.size()) {
          *positionals_[next_pos++].out = arg;
          continue;
        }
        if (passthrough_) {
          passthrough_->push_back(arg);
          continue;
        }
        return error("unexpected argument '" + arg + "'");
      }
      const std::size_t eq = arg.find('=');
      const std::string name =
          eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
      Flag* f = find(name);
      if (!f) {
        if (passthrough_) {
          passthrough_->push_back(arg);
          continue;
        }
        return error("unknown flag '--" + name + "'");
      }
      if (eq == std::string::npos) {
        if (f->kind == Kind::kOptString) {
          *static_cast<std::string*>(f->out) = f->bare_value;
          continue;
        }
        if (f->kind != Kind::kBool) {
          return error("flag '--" + name + "' requires a value (--" + name +
                       "=...)");
        }
        *static_cast<bool*>(f->out) = true;
        continue;
      }
      if (f->kind == Kind::kChoice) {
        const std::string v = arg.substr(eq + 1);
        bool known = false;
        for (const std::string& c : f->choices) known |= c == v;
        if (!known) {
          return error("bad value for '--" + name + "': '" + v +
                       "' (expected " + spell_choices(f->choices) + ")");
        }
        *static_cast<std::string*>(f->out) = v;
        continue;
      }
      if (!assign(*f, arg.substr(eq + 1))) {
        return error("bad value for '--" + name + "': '" + arg.substr(eq + 1) +
                     "'");
      }
    }
    for (std::size_t p = next_pos; p < positionals_.size(); ++p) {
      if (positionals_[p].required) {
        return error("missing required argument <" + positionals_[p].name +
                     ">");
      }
    }
    return true;
  }

  int exit_code() const { return exit_code_; }

  /// Report a post-parse validation failure (bad flag combination, value out
  /// of range) with the same formatting as parse errors; returns the exit
  /// code to return from main.
  int fail(const std::string& msg) {
    error(msg);
    return exit_code_;
  }

  // --- Rendering ----------------------------------------------------------

  std::string usage() const {
    std::string u = prog_ + " — " + summary_ + "\n\nusage: " + prog_;
    for (const Positional& p : positionals_) {
      u += p.required ? " <" + p.name + ">" : " [" + p.name + "]";
    }
    u += " [flags]\n";
    if (!positionals_.empty()) {
      u += "\narguments:\n";
      for (const Positional& p : positionals_) {
        u += "  " + pad(p.name, 24) + p.help + "\n";
      }
    }
    u += "\nflags:\n";
    for (const Flag& f : flags_) {
      std::string left = "--" + f.name;
      if (f.kind == Kind::kOptString) {
        left += std::string("[=<") + type_name(f.kind) + ">]";
      } else if (f.kind == Kind::kChoice) {
        left += "=<" + bar_choices(f.choices) + ">";
      } else if (f.kind != Kind::kBool) {
        left += std::string("=<") + type_name(f.kind) + ">";
      }
      std::string right = f.help;
      if (!f.def.empty() && f.def != "false") right += " [default: " + f.def + "]";
      u += "  " + pad(left, 24) + right + "\n";
    }
    u += "  " + pad("--help", 24) + "print this message\n";
    if (passthrough_) {
      u += "\nunrecognized flags are forwarded (google-benchmark options"
           " work as usual)\n";
    }
    return u;
  }

  /// One markdown table row per flag — EXPERIMENTS.md's CLI reference is
  /// generated from these (see docs/EXPERIMENTS.md "Bench CLI reference").
  std::string markdown() const {
    std::string md = "| flag | default | description |\n|---|---|---|\n";
    for (const Flag& f : flags_) {
      std::string spelled = "`--" + f.name;
      if (f.kind == Kind::kOptString) {
        spelled += std::string("[=<") + type_name(f.kind) + ">]";
      } else if (f.kind == Kind::kChoice) {
        spelled += "=<" + bar_choices(f.choices) + ">";
      } else if (f.kind != Kind::kBool) {
        spelled += std::string("=<") + type_name(f.kind) + ">";
      }
      spelled += "`";
      md += "| " + spelled + " | " + (f.def.empty() ? "—" : "`" + f.def + "`") +
            " | " + f.help + " |\n";
    }
    return md;
  }

 private:
  enum class Kind { kBool, kInt, kSize, kDouble, kString, kOptString, kChoice };

  struct Flag {
    std::string name;
    std::string help;
    std::string def;
    Kind kind;
    void* out;
    std::string bare_value;  // kOptString only: value a bare `--name` assigns
    std::vector<std::string> choices;  // kChoice only: the valid value set
  };
  struct Positional {
    std::string name;
    std::string help;
    std::string* out;
    bool required;
  };

  void add(const std::string& name, const std::string& help,
           const std::string& def, Kind kind, void* out) {
    flags_.push_back(Flag{name, help, def, kind, out, {}, {}});
  }

  /// "a, b or c" — the spelling usage errors and help text use for a choice
  /// flag's valid set.
  static std::string spell_choices(const std::vector<std::string>& choices) {
    std::string s;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (i != 0) s += i + 1 == choices.size() ? " or " : ", ";
      s += choices[i];
    }
    return s;
  }

  Flag* find(const std::string& name) {
    for (Flag& f : flags_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  static bool assign(Flag& f, const std::string& v) {
    char* end = nullptr;
    switch (f.kind) {
      case Kind::kBool:
        if (v == "1" || v == "true") { *static_cast<bool*>(f.out) = true; return true; }
        if (v == "0" || v == "false") { *static_cast<bool*>(f.out) = false; return true; }
        return false;
      case Kind::kInt: {
        const long n = std::strtol(v.c_str(), &end, 10);
        if (v.empty() || *end != '\0') return false;
        *static_cast<int*>(f.out) = static_cast<int>(n);
        return true;
      }
      case Kind::kSize: {
        const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
        if (v.empty() || *end != '\0' || v[0] == '-') return false;
        *static_cast<std::size_t*>(f.out) = static_cast<std::size_t>(n);
        return true;
      }
      case Kind::kDouble: {
        const double d = std::strtod(v.c_str(), &end);
        if (v.empty() || *end != '\0') return false;
        *static_cast<double*>(f.out) = d;
        return true;
      }
      case Kind::kString:
      case Kind::kOptString:
        *static_cast<std::string*>(f.out) = v;
        return true;
    }
    return false;
  }

  static const char* type_name(Kind k) {
    switch (k) {
      case Kind::kBool: return "bool";
      case Kind::kInt: return "int";
      case Kind::kSize: return "n";
      case Kind::kDouble: return "float";
      case Kind::kString: return "str";
      case Kind::kOptString: return "str";
      case Kind::kChoice: return "choice";
    }
    return "?";
  }

  /// "a|b|c" — the spelling --help and the markdown table use for a choice
  /// flag's value slot.
  static std::string bar_choices(const std::vector<std::string>& choices) {
    std::string s;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (i != 0) s += '|';
      s += choices[i];
    }
    return s;
  }

  static std::string pad(std::string s, std::size_t w) {
    if (s.size() < w) s += std::string(w - s.size(), ' ');
    else s += "  ";
    return s;
  }

  bool error(const std::string& msg) {
    std::fprintf(stderr, "%s: %s\n(run with --help for usage)\n",
                 prog_.c_str(), msg.c_str());
    exit_code_ = 2;
    return false;
  }

  std::string prog_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  std::vector<std::string>* passthrough_ = nullptr;
  int exit_code_ = 0;
};

}  // namespace tsxhpc::bench
