// Reproduces Figure 4: the six real-world workloads of Table 2 at 1-8
// threads, comparing the original synchronization (baseline), the
// straightforward TSX port (tsx.init) and the coarsened port (tsx.coarsen),
// normalized to 1-thread baseline. Paper claims to check:
//   * tsx.init already wins on lock-based workloads (nufft, canneal,
//     graphcluster, physics — via lockset elision);
//   * tsx.init LOSES on the atomics workloads (ua, histogram);
//   * coarsening recovers those and lifts the rest: average 1.41x over
//     baseline at 8 threads.
#include <cmath>
#include <cstdio>

#include "apps/apps.h"
#include "bench/bench_util.h"

using namespace tsxhpc;

int main(int argc, char** argv) {
  bench::BenchIo io(argc, argv, "fig4_realworld",
                    "real-world workload scaling vs baseline (Figure 4)");
  int threads = 0;
  std::string workload_filter;
  io.args().add_int("threads", "run only this thread count (0 = 1/2/4/8)",
                    &threads);
  io.args().add_string("workload", "run only this workload", &workload_filter);
  if (!io.parse()) return io.exit_code();
  const double scale = io.quick() ? 0.25 : 1.0;

  bench::banner("Figure 4: real-world workloads, speedup over 1-thread baseline");

  double product = 1.0;
  int n = 0;
  for (const auto& w : apps::all_workloads()) {
    if (!workload_filter.empty() && workload_filter != w.name) continue;
    apps::Config ref_cfg;
    ref_cfg.variant = apps::Variant::kBaseline;
    ref_cfg.threads = 1;
    ref_cfg.scale = scale;
    io.apply(ref_cfg.machine);
    ref_cfg.run_label = std::string(w.name) + "/baseline/ref";
    const double ref = static_cast<double>(w.fn(ref_cfg).makespan);

    bench::Table table({w.name, "baseline", "tsx.init", "tsx.coarsen"});
    double base8 = 0, coarsen8 = 0;
    for (int t : {1, 2, 4, 8}) {
      if (threads != 0 && threads != t) continue;
      std::vector<std::string> row{std::to_string(t) + " thr"};
      for (apps::Variant v :
           {apps::Variant::kBaseline, apps::Variant::kTsxInit,
            apps::Variant::kTsxCoarsen}) {
        apps::Config cfg = ref_cfg;
        cfg.variant = v;
        cfg.threads = t;
        cfg.run_label = std::string(w.name) + "/" + apps::to_string(v) +
                        "/t" + std::to_string(t);
        const apps::Result r = w.fn(cfg);
        const double sp = ref / static_cast<double>(r.makespan);
        row.push_back(r.checksum == 0 ? "INVALID" : bench::fmt(sp));
        if (t == 8 && v == apps::Variant::kBaseline) base8 = sp;
        if (t == 8 && v == apps::Variant::kTsxCoarsen) coarsen8 = sp;
      }
      table.add_row(row);
    }
    table.print();
    if (base8 > 0) {
      std::printf("  8-thread tsx.coarsen/baseline = %.2fx\n\n",
                  coarsen8 / base8);
      product *= coarsen8 / base8;
      n++;
    }
  }
  if (n > 0) {
    std::printf(
        "Geomean tsx.coarsen speedup over baseline at 8 threads: %.2fx "
        "(paper: 1.41x average)\n",
        std::pow(product, 1.0 / n));
  }
  return io.finish();
}
