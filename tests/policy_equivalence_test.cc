// The TxPolicy seam's load-bearing guarantee: with --policy=paper (the
// default), the refactored primitives reproduce the pre-seam telemetry
// BIT FOR BIT. This test re-runs fig2_stamp and ablation_hierarchy in quick
// mode and deep-compares their artifacts against goldens captured at the
// commit before the seam was introduced (tests/golden/*_prerefactor.json).
//
// Exactly these schema-v3 -> v6 deltas are allowed, nothing else:
//   - the schema string itself ("tsxhpc-telemetry-v3" -> "-v6"),
//   - each counter block's new `backoff_cycles` sub-counter (v4), whose
//     cycles moved from the kLockWait bucket to kTxWasted (the refactor
//     books post-conflict backoff as wasted transactional work, not lock
//     waiting): old.lock_wait == new.lock_wait + backoff and
//     old.tx_wasted + backoff == new.tx_wasted must reconcile exactly,
//   - each lock site's new `policy` decision-count object (v4),
//   - the samples block's new `llc_misses` / `mem_stall` columns (v5) — new
//     keys only; the pre-existing sample columns stay byte-identical. (The
//     v5 `set_stats` block is gated behind --set-stats, which these benches
//     do not pass, so it never appears here; the skip covers a future
//     regeneration that enables it),
//   - the per-run `topology` block and the counter blocks' new
//     `slice_hops` / `socket_hops` / `hop_cycles` keys (v6) — new keys
//     only; on the default 1-socket/1-slice machine every hop counter is
//     zero and no existing number moves.
//
// Invoked with the bench binaries and the golden directory as arguments
// (plain add_test, not gtest_discover_tests — the binaries are build
// products whose paths only CMake knows).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/json_parse.h"

namespace tsxhpc::sim {
namespace {

std::string g_fig2_bin;
std::string g_hier_bin;
std::string g_golden_dir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string describe(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return v.as_bool() ? "true" : "false";
    case JsonValue::Type::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_double());
      return buf;
    }
    case JsonValue::Type::kString: return "\"" + v.as_string() + "\"";
    case JsonValue::Type::kArray:
      return "array[" + std::to_string(v.size()) + "]";
    case JsonValue::Type::kObject:
      return "object{" + std::to_string(v.members().size()) + "}";
  }
  return "?";
}

/// Deep comparison of a pre-seam (v3) value against a post-seam (v6) value,
/// applying exactly the allowed deltas. Reports the first divergence path.
/// `delta` is the counter block's backoff_cycles, threaded down into its
/// `cycles` child where the lock_wait -> tx_wasted shift lives.
class Comparator {
 public:
  bool equivalent(const JsonValue& oldv, const JsonValue& newv) {
    diff_.clear();
    return compare(oldv, newv, "$", 0);
  }
  const std::string& diff() const { return diff_; }

 private:
  bool mismatch(const std::string& path, const JsonValue& oldv,
                const JsonValue& newv, const char* why) {
    diff_ = path + ": " + why + " (old " + describe(oldv) + ", new " +
            describe(newv) + ")";
    return false;
  }

  bool compare(const JsonValue& oldv, const JsonValue& newv,
               const std::string& path, std::uint64_t delta) {
    if (path == "$.schema") {
      if (oldv.as_string() != "tsxhpc-telemetry-v3" ||
          newv.as_string() != "tsxhpc-telemetry-v6") {
        return mismatch(path, oldv, newv, "unexpected schema pair");
      }
      return true;
    }
    if (oldv.type() != newv.type()) {
      return mismatch(path, oldv, newv, "type differs");
    }
    switch (oldv.type()) {
      case JsonValue::Type::kNull:
        return true;
      case JsonValue::Type::kBool:
        if (oldv.as_bool() != newv.as_bool()) {
          return mismatch(path, oldv, newv, "bool differs");
        }
        return true;
      case JsonValue::Type::kNumber:
        if (delta != 0 && ends_with(path, ".lock_wait")) {
          if (oldv.as_u64() != newv.as_u64() + delta) {
            return mismatch(path, oldv, newv,
                            "lock_wait does not reconcile with backoff");
          }
          return true;
        }
        if (delta != 0 && ends_with(path, ".tx_wasted")) {
          if (oldv.as_u64() + delta != newv.as_u64()) {
            return mismatch(path, oldv, newv,
                            "tx_wasted does not reconcile with backoff");
          }
          return true;
        }
        if (oldv.as_double() != newv.as_double()) {
          return mismatch(path, oldv, newv, "number differs");
        }
        return true;
      case JsonValue::Type::kString:
        if (oldv.as_string() != newv.as_string()) {
          return mismatch(path, oldv, newv, "string differs");
        }
        return true;
      case JsonValue::Type::kArray: {
        if (oldv.size() != newv.size()) {
          return mismatch(path, oldv, newv, "array length differs");
        }
        for (std::size_t i = 0; i < oldv.size(); ++i) {
          if (!compare(oldv.at(i), newv.at(i),
                       path + "[" + std::to_string(i) + "]", 0)) {
            return false;
          }
        }
        return true;
      }
      case JsonValue::Type::kObject: {
        // A v4 counter block carries the backoff sub-counter explaining the
        // bucket shift inside its `cycles` child.
        const std::uint64_t backoff = newv["backoff_cycles"].as_u64();
        for (const auto& [key, oldchild] : oldv.members()) {
          const std::uint64_t child_delta = key == "cycles" ? backoff : delta;
          if (!compare(oldchild, newv[key], path + "." + key, child_delta)) {
            return false;
          }
        }
        for (const auto& [key, newchild] : newv.members()) {
          if (key == "backoff_cycles" || key == "policy") continue;  // v4-only
          if (key == "llc_misses" || key == "mem_stall" ||
              key == "set_stats") {
            continue;  // v5-only
          }
          if (key == "topology" || key == "slice_hops" ||
              key == "socket_hops" || key == "hop_cycles") {
            continue;  // v6-only
          }
          if (!oldv.has(key) && !newchild.is_null()) {
            diff_ = path + "." + key + ": unexpected new key";
            return false;
          }
        }
        return true;
      }
    }
    return true;
  }

  std::string diff_;
};

void check_bench(const std::string& bin, const std::string& golden_name,
                 const std::string& artifact_name) {
  ASSERT_FALSE(bin.empty()) << "bench binary path not passed on the command "
                               "line (run via ctest)";
  const std::string cmd =
      bin + " --quick --json=" + artifact_name + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string err;
  const std::string old_text = slurp(g_golden_dir + "/" + golden_name);
  ASSERT_FALSE(old_text.empty()) << "missing golden " << golden_name;
  const JsonValue oldv = JsonParser::parse(old_text, &err);
  ASSERT_EQ(err, "") << golden_name;
  const JsonValue newv = JsonParser::parse(slurp(artifact_name), &err);
  ASSERT_EQ(err, "") << artifact_name;

  Comparator cmp;
  EXPECT_TRUE(cmp.equivalent(oldv, newv))
      << "paper policy diverged from the pre-seam telemetry at "
      << cmp.diff();
}

TEST(PolicyEquivalence, Fig2StampMatchesPreSeamTelemetry) {
  check_bench(g_fig2_bin, "fig2_quick_prerefactor.json",
              "policy_equiv_fig2.json");
}

TEST(PolicyEquivalence, AblationHierarchyMatchesPreSeamTelemetry) {
  check_bench(g_hier_bin, "hierarchy_quick_prerefactor.json",
              "policy_equiv_hierarchy.json");
}

}  // namespace
}  // namespace tsxhpc::sim

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: policy_equivalence_test <fig2_stamp> "
                 "<ablation_hierarchy> <golden_dir>\n");
    return 2;
  }
  tsxhpc::sim::g_fig2_bin = argv[1];
  tsxhpc::sim::g_hier_bin = argv[2];
  tsxhpc::sim::g_golden_dir = argv[3];
  return RUN_ALL_TESTS();
}
