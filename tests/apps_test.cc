// Tests for the real-world workloads: correctness of every variant at
// every thread count, plus the Figure 4 / Figure 5 shape claims.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/apps.h"

namespace tsxhpc::apps {
namespace {

Config quick(Variant v, int threads) {
  Config cfg;
  cfg.variant = v;
  cfg.threads = threads;
  cfg.scale = 0.25;
  return cfg;
}

class AppsMatrix
    : public ::testing::TestWithParam<std::tuple<int, Variant, int>> {};

TEST_P(AppsMatrix, ChecksumIsValid) {
  const int widx = std::get<0>(GetParam());
  const Variant v = std::get<1>(GetParam());
  const Workload& w = all_workloads()[widx];
  if (v == Variant::kConflictFree && !w.has_conflict_free) {
    GTEST_SKIP() << w.name << " has no conflict-free variant";
  }
  const Result r = w.fn(quick(v, std::get<2>(GetParam())));
  EXPECT_NE(r.checksum, 0u) << w.name << "/" << to_string(v);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppsMatrix,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(Variant::kBaseline,
                                         Variant::kTsxInit,
                                         Variant::kTsxCoarsen,
                                         Variant::kConflictFree),
                       ::testing::Values(1, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, Variant, int>>& info) {
      std::string name = all_workloads()[std::get<0>(info.param)].name +
                         std::string("_") +
                         to_string(std::get<1>(info.param)) + "_t" +
                         std::to_string(std::get<2>(info.param));
      for (auto& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

// Shape claims are calibrated at full input scale: quarter-scale inputs
// inflate transactional conflict probability ~4x and distort Figure 4/5.
double speedup(const Workload& w, Variant v, int threads,
               std::size_t gran = 0) {
  Config ref;
  ref.variant = Variant::kBaseline;
  ref.threads = 1;
  const double base = static_cast<double>(w.fn(ref).makespan);
  Config cfg = ref;
  cfg.variant = v;
  cfg.threads = threads;
  cfg.gran = gran;
  return base / static_cast<double>(w.fn(cfg).makespan);
}

const Workload& by_name(const char* name) {
  for (const auto& w : all_workloads()) {
    if (w.name == std::string(name)) return w;
  }
  throw std::runtime_error("no such workload");
}

TEST(Apps, Figure4TsxInitLosesOnAtomicsWorkloads) {
  // ua and histogram use single-location atomics; wrapping each update in
  // its own transactional region must LOSE to the baseline (Section 5.2.2).
  for (const char* name : {"ua", "histogram"}) {
    const Workload& w = by_name(name);
    EXPECT_LT(speedup(w, Variant::kTsxInit, 4),
              speedup(w, Variant::kBaseline, 4))
        << name;
  }
}

TEST(Apps, Figure4CoarseningRecovers) {
  // Transactional coarsening turns those losses into wins.
  for (const char* name : {"ua", "histogram"}) {
    const Workload& w = by_name(name);
    EXPECT_GT(speedup(w, Variant::kTsxCoarsen, 4),
              speedup(w, Variant::kBaseline, 4))
        << name;
  }
}

TEST(Apps, Figure4AverageSpeedupNearPaper) {
  // Paper: 1.41x average speedup of tsx.coarsen over baseline at 8 threads.
  double product = 1.0;
  int n = 0;
  for (const auto& w : all_workloads()) {
    const double base = speedup(w, Variant::kBaseline, 8);
    const double tsx = speedup(w, Variant::kTsxCoarsen, 8);
    product *= tsx / base;
    n++;
  }
  const double geomean = std::pow(product, 1.0 / n);
  EXPECT_GT(geomean, 1.12) << "average tsx.coarsen win should be sizable";
  EXPECT_LT(geomean, 2.6) << "and not absurd";
}

TEST(Apps, Figure5PrivatizationWinsLowLosesHigh) {
  const Workload& w = by_name("histogram");
  // Low thread count: privatization beats atomics.
  EXPECT_GT(speedup(w, Variant::kConflictFree, 1),
            speedup(w, Variant::kBaseline, 1));
  // 8 threads: the reduction dominates; even atomics win (Section 5.4.2).
  EXPECT_GT(speedup(w, Variant::kBaseline, 8),
            speedup(w, Variant::kConflictFree, 8));
}

TEST(Apps, Figure5BarrierLosesAtHighThreadCounts) {
  // The barrier scheme wins at 1-2 threads but the skewed constraint graph
  // stops it scaling; by 8 threads plain locks have caught up (Fig. 5b).
  const Workload& w = by_name("physics");
  const double barrier2 = speedup(w, Variant::kConflictFree, 2);
  const double barrier8 = speedup(w, Variant::kConflictFree, 8);
  EXPECT_GT(barrier2, speedup(w, Variant::kBaseline, 2));
  EXPECT_GT(speedup(w, Variant::kBaseline, 8), 0.95 * barrier8);
  EXPECT_LT(barrier8 / barrier2, 2.5) << "barrier must stop scaling";
}

TEST(Apps, Figure5GranularityHasAnInflectionPoint) {
  // Section 5.4.3: coarser regions amortize overhead but conflict more;
  // at 8 threads the LARGEST granularity must not be the best.
  const Workload& w = by_name("histogram");
  const double g2 = speedup(w, Variant::kTsxCoarsen, 8, 8);
  const double g3 = speedup(w, Variant::kTsxCoarsen, 8, 32);
  EXPECT_GT(g2, g3) << "largest granularity should lose under contention";
  // And coarsening must help relative to gran=1 at low threads.
  const double g1 = speedup(w, Variant::kTsxCoarsen, 1, 1);
  const double g2lo = speedup(w, Variant::kTsxCoarsen, 1, 8);
  EXPECT_GT(g2lo, g1);
}

TEST(Apps, LocksetElisionBeatsDoubleLocking) {
  // physics: one XBEGIN replacing two lock acquisitions must win at any
  // thread count (Section 5.2.1).
  const Workload& w = by_name("physics");
  for (int threads : {1, 4}) {
    EXPECT_GT(speedup(w, Variant::kTsxInit, threads),
              speedup(w, Variant::kBaseline, threads))
        << threads << " threads";
  }
}

TEST(Apps, CannealTransactionalBeatsLockFree) {
  const Workload& w = by_name("canneal");
  EXPECT_GT(speedup(w, Variant::kTsxInit, 4),
            speedup(w, Variant::kBaseline, 4));
}

TEST(Apps, NufftTsxExposesHiddenConcurrency) {
  // The lock array serializes independent deposits; elision exposes them.
  const Workload& w = by_name("nufft");
  EXPECT_GT(speedup(w, Variant::kTsxCoarsen, 8),
            1.2 * speedup(w, Variant::kBaseline, 8));
}

TEST(Apps, Determinism) {
  const Workload& w = by_name("canneal");
  const Result a = w.fn(quick(Variant::kTsxCoarsen, 8));
  const Result b = w.fn(quick(Variant::kTsxCoarsen, 8));
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace tsxhpc::apps
