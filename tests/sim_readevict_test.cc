// Tests for the secondary read-tracking imprecision model (the source of
// the paper's nonzero single-thread abort rates in Table 1). In the
// hierarchy model the L1 -> secondary-tracker handoff is free; the abort
// risk materializes only when the *LLC* (the level backing the tracker)
// loses the line, so read-set capacity is a function of LLC geometry. The
// tests shrink the LLC to 64 KB so footprints that overflow it stay small.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/shared.h"

namespace tsxhpc::sim {
namespace {

// Run a single-thread transaction whose read set spans `lines` cache lines,
// retrying on abort; returns the observed abort rate (%).
double abort_rate_for_read_footprint(double prob, std::size_t lines,
                                     int txns) {
  MachineConfig cfg;
  cfg.sched_quantum = 0;
  cfg.read_evict_abort_prob = prob;
  cfg.llc_bytes = 64 * 1024;  // 1024 lines: 2x the L1, small enough to blow
  cfg.llc_ways = 16;          // 64 sets (sets must be a power of two)
  Machine m(cfg);
  Addr base = m.alloc(lines * cfg.line_bytes, 64);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    for (int t = 0; t < txns; ++t) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        try {
          c.xbegin();
          for (std::size_t i = 0; i < lines; ++i) {
            c.load(base + i * cfg.line_bytes);
          }
          c.xend();
          break;
        } catch (const TxAbort&) {
        }
      }
    }
  }});
  return rs.threads[0].abort_rate_pct();
}

TEST(ReadEvict, SmallFootprintNeverAborts) {
  // Fits in L1: no evictions anywhere, no aborts regardless of probability.
  EXPECT_EQ(abort_rate_for_read_footprint(0.5, 64, 50), 0.0);
}

TEST(ReadEvict, LlcResidentFootprintNeverAborts) {
  // 768 lines overflow the 512-line L1 (secondary tracking engages) but fit
  // the 1024-line LLC: losing the L1 copy is harmless while the LLC still
  // backs the tracker — the defining behaviour of the hierarchy model.
  EXPECT_EQ(abort_rate_for_read_footprint(0.5, 768, 50), 0.0);
}

TEST(ReadEvict, ZeroProbabilityNeverAborts) {
  EXPECT_EQ(abort_rate_for_read_footprint(0.0, 2048, 20), 0.0);
}

TEST(ReadEvict, LargeFootprintAbortsOften) {
  // 2x the LLC: the sequential scan evicts transactionally read lines from
  // the LLC wholesale; with p=0.05 nearly every txn dies, exactly the
  // labyrinth/bayes single-thread regime of Table 1.
  const double rate = abort_rate_for_read_footprint(0.05, 2048, 20);
  EXPECT_GT(rate, 40.0);
}

TEST(ReadEvict, RateGrowsWithFootprint) {
  const double mid = abort_rate_for_read_footprint(0.02, 1536, 40);
  const double big = abort_rate_for_read_footprint(0.02, 3072, 40);
  EXPECT_GE(big, mid);
  EXPECT_GT(big, 0.0);
}

TEST(ReadEvict, Deterministic) {
  const double a = abort_rate_for_read_footprint(0.03, 2048, 30);
  const double b = abort_rate_for_read_footprint(0.03, 2048, 30);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tsxhpc::sim
