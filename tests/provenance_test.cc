// Conflict provenance and cycle accounting on a fully deterministic
// two-thread ping-pong: thread 0 runs hardware transactions over one named
// cache line while thread 1 hammers the same line with plain stores. Every
// doom therefore has a known aggressor (t1), a known victim (t0) and a
// known address — the test pins the whole provenance chain down to exact
// counter identities, and checks the cycle-accounting invariant that every
// thread's buckets sum to its final virtual clock.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/machine.h"
#include "sim/shared.h"
#include "sim/stats.h"
#include "sim/telemetry.h"
#include "sync/elision.h"

namespace tsxhpc::sim {
namespace {

/// Buckets-sum-to-end_cycle, for every thread of a finished run.
void expect_buckets_cover_clock(const RunStats& rs) {
  for (std::size_t t = 0; t < rs.threads.size(); ++t) {
    const ThreadStats& ts = rs.threads[t];
    EXPECT_GT(ts.end_cycle, 0u) << "thread " << t;
    EXPECT_EQ(ts.cycles_total(), ts.end_cycle) << "thread " << t;
  }
}

TEST(Provenance, PingPongAttributesLineObjectAndAggressor) {
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  Machine m(cfg);
  auto cell = Shared<std::uint64_t>::alloc(m, {.name = "pingpong/cell"}, 0);

  const RunStats rs = m.run({.threads = 2, .body = [&](Context& c) {
    if (c.tid() == 0) {
      // Transactional incrementer; retries until the line quiets down.
      for (int i = 0; i < 8; ++i) {
        for (;;) {
          try {
            c.xbegin();
            cell.store(c, cell.load(c) + 1);
            c.compute(200);
            c.xend();
            break;
          } catch (const TxAbort&) {
            c.compute(60);
          }
        }
      }
    } else {
      // Plain-store aggressor: every write dooms t0's open transaction.
      for (int i = 0; i < 40; ++i) {
        cell.store(c, 0);
        c.compute(100);
      }
    }
  }});

  ASSERT_EQ(tel.runs().size(), 1u);
  const RunRecord& r = tel.runs().at(0);
  ASSERT_TRUE(r.complete);

  // The only conflicting line is the named cell's line.
  ASSERT_EQ(r.conflict_lines.size(), 1u);
  const auto hot = r.conflict_lines_by_heat();
  ASSERT_EQ(hot.size(), 1u);
  const Cycles line_bytes = m.config().line_bytes;
  const Addr expected_line = cell.addr() / line_bytes * line_bytes;
  EXPECT_EQ(hot[0].first, expected_line);
  const ConflictLineStats& cl = *hot[0].second;
  EXPECT_EQ(cl.object, "pingpong/cell");

  // Exact provenance: t1 is the aggressor of every doom, t0 the victim, and
  // every aggressor access was a write.
  EXPECT_GT(cl.dooms, 0u);
  EXPECT_EQ(cl.write_dooms, cl.dooms);
  EXPECT_EQ(cl.read_dooms, 0u);
  ASSERT_EQ(cl.by_aggressor.size(), 2u);
  ASSERT_EQ(cl.by_victim.size(), 2u);
  EXPECT_EQ(cl.by_aggressor[0], 0u);
  EXPECT_EQ(cl.by_aggressor[1], cl.dooms);
  EXPECT_EQ(cl.by_victim[0], cl.dooms);
  EXPECT_EQ(cl.by_victim[1], 0u);

  // Each doom kills exactly one attempt: remote-doom and conflict-abort
  // counters agree with the provenance table.
  const ThreadStats& t0 = rs.threads[0];
  EXPECT_EQ(t0.tx_doomed_by_remote, cl.dooms);
  EXPECT_EQ(t0.tx_aborted[static_cast<std::size_t>(AbortCause::kConflict)],
            cl.dooms);
  EXPECT_EQ(t0.tx_committed, 8u);

  // Cycle accounting: buckets sum to each thread's final clock, and land
  // where this workload puts them.
  expect_buckets_cover_clock(rs);
  EXPECT_GT(t0.bucket(CycleBucket::kTxCommitted), 0u);
  EXPECT_GT(t0.bucket(CycleBucket::kTxWasted), 0u);
  EXPECT_EQ(t0.bucket(CycleBucket::kLockWait), 0u);
  EXPECT_EQ(t0.bucket(CycleBucket::kFallback), 0u);
  const ThreadStats& t1 = rs.threads[1];
  EXPECT_EQ(t1.bucket(CycleBucket::kTxCommitted), 0u);
  EXPECT_EQ(t1.bucket(CycleBucket::kTxWasted), 0u);
  EXPECT_EQ(t1.bucket(CycleBucket::kLockWait), 0u);
  EXPECT_EQ(t1.bucket(CycleBucket::kFallback), 0u);
  // t1 ran nothing but plain stores and compute: work + mem_stall is its
  // entire clock, exactly.
  EXPECT_EQ(t1.bucket(CycleBucket::kWork) + t1.bucket(CycleBucket::kMemStall),
            t1.end_cycle);

  // And the run is deterministic: a second identical machine reproduces the
  // provenance table verbatim.
  Telemetry tel2;
  MachineConfig cfg2;
  cfg2.telemetry = &tel2;
  Machine m2(cfg2);
  auto cell2 = Shared<std::uint64_t>::alloc(m2, {.name = "pingpong/cell"}, 0);
  m2.run({.threads = 2, .body = [&](Context& c) {
    if (c.tid() == 0) {
      for (int i = 0; i < 8; ++i) {
        for (;;) {
          try {
            c.xbegin();
            cell2.store(c, cell2.load(c) + 1);
            c.compute(200);
            c.xend();
            break;
          } catch (const TxAbort&) {
            c.compute(60);
          }
        }
      }
    } else {
      for (int i = 0; i < 40; ++i) {
        cell2.store(c, 0);
        c.compute(100);
      }
    }
  }});
  const RunRecord& r2 = tel2.runs().at(0);
  ASSERT_EQ(r2.conflict_lines.size(), 1u);
  EXPECT_EQ(r2.conflict_lines.begin()->second.dooms, cl.dooms);
  EXPECT_EQ(r2.conflict_lines.begin()->first, expected_line);
}

TEST(Provenance, BucketsSumToEndCycleUnderLockContention) {
  // The invariant must also survive the messy paths: elision retries,
  // fallback serialization, futex sleeps and wake-jumps.
  Machine m;
  sync::ElidedLock lock(m);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 8, 0);
  const RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    for (int i = 0; i < 60; ++i) {
      lock.critical(c, [&] {
        auto cell = cells.at((c.tid() + i) % 8);
        cell.store(c, cell.load(c) + 1);
        c.compute(80);
      });
    }
  }});
  expect_buckets_cover_clock(rs);
  // Contention makes all the interesting buckets non-empty somewhere.
  const ThreadStats t = rs.total();
  EXPECT_GT(t.bucket(CycleBucket::kTxCommitted), 0u);
  // Post-conflict backoff books into kTxWasted (tracked by the
  // backoff_cycles sub-counter) since the TxPolicy seam — this workload's
  // aborts are all conflicts, so that is where its retry delay shows up.
  EXPECT_GT(t.backoff_cycles, 0u);
  EXPECT_LE(t.backoff_cycles, t.bucket(CycleBucket::kTxWasted));
  // The buckets cover at least the legacy in-region counters — they add the
  // commit/abort latencies (lat_xend, lat_abort) the region counters omit.
  EXPECT_GE(t.bucket(CycleBucket::kTxCommitted), t.tx_cycles_committed);
  EXPECT_GE(t.bucket(CycleBucket::kTxWasted), t.tx_cycles_wasted);
}

}  // namespace
}  // namespace tsxhpc::sim
