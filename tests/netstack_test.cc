// Tests for the user-level TCP/IP stack and the network applications:
// payload integrity under every locking-module scheme, EOF semantics,
// flow control, and the Figure 6 shape claims.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "netapps/netapps.h"
#include "netstack/stack.h"
#include "sim/rng.h"

namespace tsxhpc::netstack {
namespace {

using sim::Context;
using sim::Machine;
using sync::MonitorScheme;

class StackSchemes : public ::testing::TestWithParam<MonitorScheme> {};

TEST_P(StackSchemes, BulkTransferPreservesPayload) {
  Machine m;
  NetStack stack(m, GetParam(), 1);
  constexpr std::size_t kTotal = 64 * 1024;  // 4x the socket buffer
  std::uint64_t sent = 0, received = 0, bytes = 0;
  m.run({.bodies = {
      [&](Context& c) {
        sim::Xoshiro256 rng(5);
        std::vector<std::uint8_t> buf(4096);
        for (std::size_t off = 0; off < kTotal; off += buf.size()) {
          for (std::size_t i = 0; i < buf.size(); i += 8) {
            const std::uint64_t w = rng.next();
            std::memcpy(buf.data() + i, &w, 8);
            sent += w;
          }
          stack.send(c, stack.conn(0).to_server, buf.data(), buf.size());
        }
        stack.shutdown(c, stack.conn(0).to_server);
      },
      [&](Context& c) {
        std::vector<std::uint8_t> buf(4096);
        for (;;) {
          const std::size_t k =
              stack.recv(c, stack.conn(0).to_server, buf.data(), buf.size());
          if (k == 0) break;
          for (std::size_t i = 0; i < k; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, buf.data() + i, 8);
            received += w;
          }
          bytes += k;
        }
      },
  }});
  EXPECT_EQ(bytes, kTotal);
  EXPECT_EQ(received, sent);
}

TEST_P(StackSchemes, PingPongSmallMessages) {
  Machine m;
  NetStack stack(m, GetParam(), 1);
  constexpr int kRounds = 40;
  int client_rounds = 0, server_rounds = 0;
  m.run({.bodies = {
      [&](Context& c) {
        std::uint8_t msg[32];
        for (int r = 0; r < kRounds; ++r) {
          std::memset(msg, r & 0xFF, sizeof(msg));
          stack.send(c, stack.conn(0).to_server, msg, sizeof(msg));
          std::size_t got = 0;
          while (got < sizeof(msg)) {
            got += stack.recv(c, stack.conn(0).to_client, msg + got,
                              sizeof(msg) - got);
          }
          EXPECT_EQ(msg[0], static_cast<std::uint8_t>(r + 1));
          client_rounds++;
        }
        stack.shutdown(c, stack.conn(0).to_server);
      },
      [&](Context& c) {
        std::uint8_t msg[32];
        for (;;) {
          std::size_t got = 0;
          while (got < sizeof(msg)) {
            const std::size_t k = stack.recv(c, stack.conn(0).to_server,
                                             msg + got, sizeof(msg) - got);
            if (k == 0) goto out;
            got += k;
          }
          std::memset(msg, msg[0] + 1, sizeof(msg));
          stack.send(c, stack.conn(0).to_client, msg, sizeof(msg));
          server_rounds++;
        }
      out:
        stack.shutdown(c, stack.conn(0).to_client);
      },
  }});
  EXPECT_EQ(client_rounds, kRounds);
  EXPECT_EQ(server_rounds, kRounds);
}

TEST_P(StackSchemes, MultipleConnectionsInParallel) {
  Machine m;
  constexpr int kConns = 4;
  NetStack stack(m, GetParam(), kConns);
  std::vector<std::uint64_t> bytes(kConns, 0);
  std::vector<std::function<void(Context&)>> bodies;
  for (int i = 0; i < kConns; ++i) {
    bodies.emplace_back([&, i](Context& c) {
      std::vector<std::uint8_t> buf(2048, static_cast<std::uint8_t>(i));
      for (int r = 0; r < 8; ++r) {
        stack.send(c, stack.conn(i).to_server, buf.data(), buf.size());
      }
      stack.shutdown(c, stack.conn(i).to_server);
    });
  }
  for (int i = 0; i < kConns; ++i) {
    bodies.emplace_back([&, i](Context& c) {
      std::vector<std::uint8_t> buf(2048);
      for (;;) {
        const std::size_t k =
            stack.recv(c, stack.conn(i).to_server, buf.data(), buf.size());
        if (k == 0) break;
        for (std::size_t j = 0; j < k; ++j) {
          ASSERT_EQ(buf[j], static_cast<std::uint8_t>(i)) << "cross-talk";
        }
        bytes[i] += k;
      }
    });
  }
  m.run({.bodies = bodies});
  for (int i = 0; i < kConns; ++i) EXPECT_EQ(bytes[i], 2048u * 8);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, StackSchemes,
    ::testing::Values(MonitorScheme::kMutex, MonitorScheme::kTsxAbort,
                      MonitorScheme::kTsxCond, MonitorScheme::kMutexBusyWait,
                      MonitorScheme::kTsxBusyWait),
    [](const ::testing::TestParamInfo<MonitorScheme>& info) {
      std::string s = to_string(info.param);
      for (auto& ch : s) {
        if (ch == '.') ch = '_';
      }
      return s;
    });

TEST(Stack, FlowControlLimitsBufferOccupancy) {
  // A fast sender against a slow receiver must block rather than overrun.
  Machine m;
  NetStack stack(m, MonitorScheme::kMutex, 1, /*socket_bytes=*/4096);
  m.run({.bodies = {
      [&](Context& c) {
        std::vector<std::uint8_t> buf(2048, 7);
        for (int r = 0; r < 16; ++r) {
          stack.send(c, stack.conn(0).to_server, buf.data(), buf.size());
          // Occupancy can never exceed the socket buffer.
          ASSERT_LE(stack.conn(0).to_server.readable(c), 4096u);
        }
        stack.shutdown(c, stack.conn(0).to_server);
      },
      [&](Context& c) {
        std::vector<std::uint8_t> buf(512);
        for (;;) {
          const std::size_t k =
              stack.recv(c, stack.conn(0).to_server, buf.data(), buf.size());
          if (k == 0) break;
          c.compute(8000);  // slow consumer
        }
      },
  }});
}

}  // namespace
}  // namespace tsxhpc::netstack

namespace tsxhpc::netapps {
namespace {

using sync::MonitorScheme;

Config quick(MonitorScheme s) {
  Config cfg;
  cfg.scheme = s;
  cfg.scale = 0.25;
  return cfg;
}

// Figure 6 shape claims are calibrated at full scale.
Config full(MonitorScheme s) {
  Config cfg;
  cfg.scheme = s;
  return cfg;
}

class NetAppSchemes
    : public ::testing::TestWithParam<std::tuple<int, MonitorScheme>> {};

TEST_P(NetAppSchemes, PayloadIntegrity) {
  const auto& w = all_workloads()[std::get<0>(GetParam())];
  const Result r = w.fn(quick(std::get<1>(GetParam())));
  EXPECT_NE(r.checksum, 0u) << w.name;
  EXPECT_GT(r.bandwidth_mbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, NetAppSchemes,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(MonitorScheme::kMutex,
                                         MonitorScheme::kTsxAbort,
                                         MonitorScheme::kTsxCond,
                                         MonitorScheme::kMutexBusyWait,
                                         MonitorScheme::kTsxBusyWait)),
    [](const ::testing::TestParamInfo<std::tuple<int, MonitorScheme>>& info) {
      std::string s = all_workloads()[std::get<0>(info.param)].name +
                      std::string("_") +
                      to_string(std::get<1>(info.param));
      for (auto& ch : s) {
        if (ch == '.') ch = '_';
      }
      return s;
    });

double bandwidth(const char* name, MonitorScheme s) {
  for (const auto& w : all_workloads()) {
    if (w.name == name) return w.fn(full(s)).bandwidth_mbps;
  }
  throw std::runtime_error("no such app");
}

TEST(NetApps, Figure6TsxAbortDropsOnNetferret) {
  // Many small packets => every critical section touches a condition
  // variable => the Section 3 generic retry policy re-executes and aborts
  // repeatedly. tsx.abort must fall below mutex on netferret even though
  // it BENEFITS the streaming workload (netdedup) — the paper's contrast.
  const double ferret_rel =
      bandwidth("netferret", MonitorScheme::kTsxAbort) /
      bandwidth("netferret", MonitorScheme::kMutex);
  const double dedup_rel =
      bandwidth("netdedup", MonitorScheme::kTsxAbort) /
      bandwidth("netdedup", MonitorScheme::kMutex);
  EXPECT_LT(ferret_rel, 1.0);
  EXPECT_GT(dedup_rel, 1.05);
  EXPECT_LT(ferret_rel, dedup_rel);
}

TEST(NetApps, Figure6TsxCondRescuesNetferret) {
  // The transactional-execution-aware condvar avoids the aborts entirely
  // and even beats mutex on netferret (Section 6.2).
  EXPECT_GT(bandwidth("netferret", MonitorScheme::kTsxCond),
            1.3 * bandwidth("netferret", MonitorScheme::kTsxAbort));
  EXPECT_GT(bandwidth("netferret", MonitorScheme::kTsxCond),
            bandwidth("netferret", MonitorScheme::kMutex));
}

TEST(NetApps, Figure6TsxBusyWaitBestEverywhere) {
  for (const auto& w : all_workloads()) {
    const double best = w.fn(full(MonitorScheme::kTsxBusyWait)).bandwidth_mbps;
    for (MonitorScheme s :
         {MonitorScheme::kMutex, MonitorScheme::kTsxAbort,
          MonitorScheme::kTsxCond, MonitorScheme::kMutexBusyWait}) {
      EXPECT_GE(best, 0.95 * w.fn(full(s)).bandwidth_mbps)
          << w.name << " vs " << to_string(s);
    }
  }
}

TEST(NetApps, Figure6TsxBusyWaitBeatsMutexByAboutThirty) {
  double product = 1.0;
  for (const auto& w : all_workloads()) {
    product *= w.fn(full(MonitorScheme::kTsxBusyWait)).bandwidth_mbps /
               w.fn(full(MonitorScheme::kMutex)).bandwidth_mbps;
  }
  const double geomean = std::pow(product, 1.0 / 3.0);
  EXPECT_GT(geomean, 1.15) << "paper: 1.31x average improvement";
}

TEST(NetApps, Determinism) {
  const Result a = run_netdedup(quick(MonitorScheme::kTsxCond));
  const Result b = run_netdedup(quick(MonitorScheme::kTsxCond));
  EXPECT_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace tsxhpc::netapps

namespace tsxhpc::netstack {
namespace {

using sync::MonitorScheme;

class AcceptSchemes : public ::testing::TestWithParam<MonitorScheme> {};

TEST_P(AcceptSchemes, ConnectAcceptPairsUpAndDrains) {
  sim::Machine m;
  constexpr int kConns = 3;
  NetStack stack(m, GetParam(), kConns);
  std::vector<int> accepted;
  std::vector<std::function<void(sim::Context&)>> bodies;
  // Three clients connect, send one message each, close.
  for (int i = 0; i < kConns; ++i) {
    bodies.emplace_back([&, i](sim::Context& c) {
      c.compute(1000 * (i + 1));  // staggered arrival
      const int conn = stack.connect(c);
      std::uint8_t msg[16];
      std::memset(msg, 0xA0 + conn, sizeof(msg));
      stack.send(c, stack.conn(conn).to_server, msg, sizeof(msg));
      stack.shutdown(c, stack.conn(conn).to_server);
    });
  }
  // One acceptor dispatches connections; workers inline (single server
  // thread handles them sequentially here).
  bodies.emplace_back([&](sim::Context& c) {
    for (;;) {
      const int conn = stack.accept(c);
      if (conn == NetStack::kNoConnection) break;
      accepted.push_back(conn);
      std::uint8_t msg[16];
      std::size_t got = 0;
      while (got < sizeof(msg)) {
        const std::size_t k = stack.recv(c, stack.conn(conn).to_server,
                                         msg + got, sizeof(msg) - got);
        if (k == 0) break;
        got += k;
      }
      EXPECT_EQ(got, sizeof(msg));
      EXPECT_EQ(msg[0], 0xA0 + conn);
      if (accepted.size() == kConns) stack.close_listener(c);
    }
  });
  m.run({.bodies = bodies});
  ASSERT_EQ(accepted.size(), static_cast<std::size_t>(kConns));
  // Every slot handed out exactly once.
  std::vector<bool> seen(kConns, false);
  for (int conn : accepted) {
    ASSERT_GE(conn, 0);
    ASSERT_LT(conn, kConns);
    EXPECT_FALSE(seen[conn]);
    seen[conn] = true;
  }
}

TEST_P(AcceptSchemes, ClosedListenerUnblocksAcceptors) {
  sim::Machine m;
  NetStack stack(m, GetParam(), 1);
  int result = 0;
  m.run({.bodies = {
      [&](sim::Context& c) { result = stack.accept(c); },
      [&](sim::Context& c) {
        c.compute(30000);
        stack.close_listener(c);
      },
  }});
  EXPECT_EQ(result, NetStack::kNoConnection);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AcceptSchemes,
    ::testing::Values(MonitorScheme::kMutex, MonitorScheme::kTsxAbort,
                      MonitorScheme::kTsxCond, MonitorScheme::kMutexBusyWait,
                      MonitorScheme::kTsxBusyWait),
    [](const ::testing::TestParamInfo<MonitorScheme>& info) {
      std::string s = to_string(info.param);
      for (auto& ch : s) {
        if (ch == '.') ch = '_';
      }
      return s;
    });

}  // namespace
}  // namespace tsxhpc::netstack
