// Capacity-abort provenance under the layered cache hierarchy. These tests
// pin the level each abort mechanism keys off: write-set capacity is an L1
// property (eviction of a transactionally written line dooms immediately,
// with the evicted line recorded as the doom line), while read-set capacity
// is an LLC property (losing the L1 copy is harmless as long as the LLC
// still backs the secondary tracker; losing the LLC copy risks the abort).
// Set-targeted strides make every eviction deterministic, so the scenarios
// hold exactly rather than statistically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/shared.h"
#include "sim/telemetry.h"

namespace tsxhpc::sim {
namespace {

// Default geometry: L1 32 KB / 8-way and LLC 40 KB / 10-way are both
// 64-set, so lines a multiple of (64 * line_bytes) apart collide in the
// same set at *both* levels — touching k such lines occupies one L1 set
// (8 ways) and one LLC set (10 ways).
constexpr std::size_t kSetStrideLines = 64;

struct SetProbe {
  MachineConfig cfg;
  Machine m;
  Addr base;
  TxAbort abort;  // last abort observed by run()
  bool aborted = false;

  explicit SetProbe(const MachineConfig& c) : cfg(c), m(cfg) {
    base = m.alloc(32 * kSetStrideLines * cfg.line_bytes, 64);
  }

  Addr line_addr(std::size_t i) const {
    return base + i * kSetStrideLines * cfg.line_bytes;
  }

  // One transaction touching `lines` same-set lines; true = committed.
  bool run(std::size_t lines, bool writes) {
    aborted = false;
    m.run({.threads = 1, .body = [&](Context& c) {
      try {
        c.xbegin();
        for (std::size_t i = 0; i < lines; ++i) {
          if (writes) {
            c.store(line_addr(i), i + 1);
          } else {
            (void)c.load(line_addr(i));
          }
        }
        c.xend();
      } catch (const TxAbort& a) {
        abort = a;
        aborted = true;
      }
    }});
    return !aborted;
  }
};

TEST(Hierarchy, WriteSetEvictionAbortsWithDoomLine) {
  // 9 same-set writes overflow the 8-way L1 set; the 9th evicts the LRU
  // (first-written) line and dooms the transaction at that instant. The
  // 9 lines fit the 10-way LLC set, proving the doom came from the L1.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  SetProbe p(cfg);
  EXPECT_FALSE(p.run(9, /*writes=*/true));
  EXPECT_EQ(p.abort.cause, AbortCause::kCapacityWrite);

  const ThreadStats t = tel.runs().at(0).stats.threads.at(0);
  EXPECT_EQ(t.tx_aborted[static_cast<size_t>(AbortCause::kCapacityWrite)], 1u);
  EXPECT_EQ(t.tx_aborted[static_cast<size_t>(AbortCause::kCapacityRead)], 0u);

  // Provenance names the evicted line, not the line whose fill evicted it.
  const auto& cap = tel.runs().at(0).capacity_lines;
  ASSERT_EQ(cap.count(p.line_addr(0)), 1u);
  EXPECT_EQ(cap.at(p.line_addr(0)).write_evict_dooms, 1u);
  EXPECT_EQ(cap.at(p.line_addr(0)).read_evict_dooms, 0u);
}

TEST(Hierarchy, ReadEvictedFromL1ButLlcResidentDoesNotAbort) {
  // The same 9-line footprint as reads: the L1 set overflows (secondary
  // tracking engages, tx_read_lines_evicted counts it) but all 9 lines stay
  // LLC-resident, so even probability 1.0 cannot abort — the tracker is
  // backed by the LLC, not the L1.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.read_evict_abort_prob = 1.0;
  SetProbe p(cfg);
  EXPECT_TRUE(p.run(9, /*writes=*/false));

  const ThreadStats t = tel.runs().at(0).stats.threads.at(0);
  EXPECT_EQ(t.tx_committed, 1u);
  EXPECT_EQ(t.tx_aborts_total(), 0u);
  EXPECT_GE(t.tx_read_lines_evicted, 1u);
}

TEST(Hierarchy, ReadEvictedFromLlcAbortsDeterministically) {
  // 11 same-set reads overflow the 10-way LLC set: the 11th fill evicts the
  // LRU line, which is still in the transaction's read set — with
  // probability 1.0 the doom is certain and lands on that exact line.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.read_evict_abort_prob = 1.0;
  SetProbe p(cfg);
  EXPECT_FALSE(p.run(11, /*writes=*/false));
  EXPECT_EQ(p.abort.cause, AbortCause::kCapacityRead);

  const ThreadStats t = tel.runs().at(0).stats.threads.at(0);
  EXPECT_EQ(t.tx_aborted[static_cast<size_t>(AbortCause::kCapacityRead)], 1u);
  EXPECT_GE(t.llc_evictions, 1u);

  const auto& cap = tel.runs().at(0).capacity_lines;
  ASSERT_EQ(cap.count(p.line_addr(0)), 1u);
  EXPECT_EQ(cap.at(p.line_addr(0)).read_evict_dooms, 1u);
  EXPECT_EQ(cap.at(p.line_addr(0)).write_evict_dooms, 0u);
}

TEST(Hierarchy, LlcCapacityAbortIsDeterministicAcrossRuns) {
  auto once = [] {
    MachineConfig cfg;
    cfg.read_evict_abort_prob = 0.3;
    SetProbe p(cfg);
    int commits = 0;
    for (int i = 0; i < 10; ++i) commits += p.run(12, /*writes=*/false);
    return commits;
  };
  EXPECT_EQ(once(), once());
}

TEST(Hierarchy, CycleBucketsSumToEndCycleWithPerLevelStalls) {
  // A footprint larger than the LLC exercises every level (L1 hit, LLC hit,
  // DRAM) plus cross-core transfers. Without locks or fallbacks, both
  // accounting invariants hold exactly: the buckets partition end_cycle,
  // and the per-level stall attribution partitions the kMemStall bucket.
  MachineConfig cfg;
  cfg.llc_bytes = 256 * 1024;  // 4096 lines: holds the spans, the L1 doesn't
  cfg.llc_ways = 16;
  Machine m(cfg);
  const std::size_t span_lines = 768;  // per-thread private span, 1.5x the L1
  Addr base = m.alloc(4 * span_lines * cfg.line_bytes, 64);
  RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    const Addr mine = base + c.tid() * span_lines * cfg.line_bytes;
    // Pass 1: cold — every line is a DRAM miss. Pass 2: the span no longer
    // fits the L1 but sits whole in the LLC — every first touch is an LLC
    // hit; the immediate re-touch of each line is an L1 hit.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < span_lines; ++i) {
        const Addr a = mine + i * cfg.line_bytes;
        if (i % 3 == 0) {
          c.store(a, i);
        } else {
          (void)c.load(a);
        }
        (void)c.load(a);
        c.compute(2);
      }
    }
  }});

  for (const ThreadStats& t : rs.threads) {
    EXPECT_EQ(t.cycles_total(), t.end_cycle);
    Cycles stall_by_level = 0;
    for (Cycles s : t.mem_stall_by_level) stall_by_level += s;
    EXPECT_EQ(stall_by_level, t.bucket(CycleBucket::kMemStall));
    // Every level actually served accesses in this workload.
    EXPECT_GT(t.l1_hits, 0u);
    EXPECT_GT(t.llc_hits, 0u);
    EXPECT_GT(t.llc_misses, 0u);
    // Per-level counters reconcile with the totals (the CI invariant).
    EXPECT_EQ(t.mem_accesses, t.l1_hits + t.l1_misses);
    EXPECT_EQ(t.l1_misses, t.xfers_in + t.llc_hits + t.llc_misses);
  }
}

TEST(Hierarchy, DirectoryIsBoundedByLlcCapacity) {
  // The directory lives in LLC entries, so streaming over a working set far
  // larger than the LLC cannot grow it past the LLC's line capacity — the
  // unbounded map of the flat model is gone.
  MachineConfig cfg;
  Machine m(cfg);
  const std::size_t span_lines = 16 * 1024;  // 1 MB, ~25x the LLC
  Addr base = m.alloc(span_lines * cfg.line_bytes, 64);
  m.run({.threads = 2, .body = [&](Context& c) {
    for (std::size_t i = 0; i < span_lines; ++i) {
      c.store(base + i * cfg.line_bytes, c.tid());
    }
  }});
  EXPECT_LE(m.mem().directory_entries(), m.mem().llc().capacity_lines());
  EXPECT_GT(m.mem().directory_entries(), 0u);
}

// 2-socket / 4-slice / 8-core machine used by the topology tests below:
// every map policy places threads distinctly, both hop kinds get charged,
// and the whole thing still fits the 64-entry mask width.
MachineConfig topo_cfg() {
  MachineConfig cfg;
  cfg.num_cores = 8;
  cfg.smt_per_core = 1;
  cfg.topology.num_sockets = 2;
  cfg.topology.llc_slices = 4;
  return cfg;
}

/// Cross-socket sharing workload: every thread transactionally bumps
/// counters spread over enough lines to hash onto every slice.
RunStats topo_run(const MachineConfig& cfg, int threads = 8) {
  Machine m(cfg);
  const Addr base = m.alloc({.name = "grid", .bytes = 256 * 64});
  return m.run({.threads = threads, .body = [&](Context& c) {
    for (int i = 0; i < 30; ++i) {
      try {
        c.xbegin();
        for (int k = 0; k < 6; ++k) {
          const Addr a = base + ((c.tid() * 37 + i * 11 + k) % 256) * 64;
          c.store(a, c.load(a) + 1);
        }
        c.xend();
      } catch (const TxAbort&) {
      }
    }
  }, .label = "topo"});
}

TEST(Topology, SliceHashIsStableAndIdentityAtOne) {
  // The hash is part of the artifact contract: telemetry baselines and the
  // color strategy's layouts both bake it in, so its values are goldens.
  for (Addr line : {Addr{0}, Addr{1}, Addr{64}, Addr{12345}, Addr{1} << 40}) {
    EXPECT_EQ(llc_slice_of_line(line, 1), 0) << line;
  }
  EXPECT_EQ(llc_slice_of_line(0, 4), 0);
  EXPECT_EQ(llc_slice_of_line(1, 4), 1);
  EXPECT_EQ(llc_slice_of_line(2, 4), 2);
  EXPECT_EQ(llc_slice_of_line(3, 4), 3);
  EXPECT_EQ(llc_slice_of_line(4, 4), 3);
  EXPECT_EQ(llc_slice_of_line(12345, 8), 2);
  // Every slice is reachable (the hash spreads consecutive lines).
  for (int slices : {2, 4, 8}) {
    std::vector<int> seen(slices, 0);
    for (Addr line = 0; line < 64; ++line) {
      seen[llc_slice_of_line(line, slices)]++;
    }
    for (int s = 0; s < slices; ++s) EXPECT_GT(seen[s], 0) << slices;
  }
}

TEST(Topology, HopCyclesReconcileExactly) {
  // The per-thread hop counters decompose the hop surcharge bit-for-bit:
  // hop_cycles == slice_hops * lat_hop_slice + socket_hops * lat_hop_socket.
  const MachineConfig cfg = topo_cfg();
  const ThreadStats tot = topo_run(cfg).total();
  EXPECT_GT(tot.slice_hops, 0u);
  EXPECT_GT(tot.socket_hops, 0u);
  EXPECT_EQ(tot.hop_cycles,
            tot.slice_hops * cfg.topology.lat_hop_slice +
                tot.socket_hops * cfg.topology.lat_hop_socket);
}

TEST(Topology, DefaultTopologyChargesNoHops) {
  // 1 socket / 1 slice is the historic machine: no interconnect exists, so
  // no hop may ever be charged (the committed baselines depend on this).
  const ThreadStats tot = topo_run(MachineConfig{}, 4).total();
  EXPECT_EQ(tot.slice_hops, 0u);
  EXPECT_EQ(tot.socket_hops, 0u);
  EXPECT_EQ(tot.hop_cycles, 0u);
}

TEST(Topology, MapPoliciesDegenerateToHistoricPlacementAtOneSocket) {
  MachineConfig cfg;  // default: 1 socket, 4 cores x 2 SMT
  for (MapPolicy map : {MapPolicy::kCompact, MapPolicy::kScatter,
                        MapPolicy::kSharingAware}) {
    cfg.topology.map = map;
    for (ThreadId t = 0; t < cfg.num_hw_threads(); ++t) {
      // kSpreadCores historic formula: thread t lands on core t % num_cores.
      EXPECT_EQ(cfg.core_of(t), t % cfg.num_cores) << to_string(map);
    }
  }
}

TEST(Topology, FiberAndThreadBackendsAreByteIdenticalOnSlicedMachine) {
  // Topology counters and hop charging must not leak host scheduling: the
  // same 2-socket/4-slice run under both backends produces byte-identical
  // telemetry apart from the run's own backend name tag.
  Telemetry fiber_tel, thread_tel;
  MachineConfig cfg = topo_cfg();
  cfg.set_stats = true;
  cfg.backend = BackendKind::kFiber;
  cfg.telemetry = &fiber_tel;
  topo_run(cfg);
  cfg.backend = BackendKind::kThread;
  cfg.telemetry = &thread_tel;
  topo_run(cfg);
  std::string fiber_json = fiber_tel.json("topology_test");
  const std::string thread_json = thread_tel.json("topology_test");
  const std::string from = "\"backend\":\"fiber\"";
  const std::size_t at = fiber_json.find(from);
  ASSERT_NE(at, std::string::npos);
  fiber_json.replace(at, from.size(), "\"backend\":\"thread\"");
  EXPECT_EQ(fiber_json, thread_json);
}

TEST(Hierarchy, TxRegistryDrainsAfterCommitsAndAborts) {
  // The reverse tx-line maps are transient: committed and aborted
  // transactions both return the registry to empty, so it is bounded by
  // live footprints, not run length.
  MachineConfig cfg;
  cfg.read_evict_abort_prob = 1.0;
  SetProbe p(cfg);
  EXPECT_TRUE(p.run(6, /*writes=*/true));    // commits
  EXPECT_FALSE(p.run(11, /*writes=*/false)); // aborts (LLC overflow)
  EXPECT_EQ(p.m.mem().tx_registry_entries(), 0u);
}

}  // namespace
}  // namespace tsxhpc::sim
