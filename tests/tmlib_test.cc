// Tests for the TM macro layer: the same region body must behave
// identically under sgl, tl2, and tsx backends.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "tmlib/tm.h"

namespace tsxhpc::tmlib {
namespace {

using sim::Context;
using sim::Machine;
using sim::RunStats;
using sim::Shared;
using sim::SharedArray;

class TmBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(TmBackends, CounterIsExactUnderContention) {
  Machine m;
  TmRuntime rt(m, GetParam());
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  m.run({.threads = kThreads, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (int i = 0; i < kIters; ++i) {
      t.atomic([&](TmAccess& tm) {
        tm.write(counter, tm.read(counter) + 1);
      });
    }
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_P(TmBackends, LinkedListInsertionKeepsStructure) {
  // Sorted singly-linked list in shared memory: {next, value} per node.
  Machine m;
  TmRuntime rt(m, GetParam());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  // head sentinel at value 0.
  sim::Addr head = m.alloc(16);
  m.heap().write_word(head, 0, 8);      // next = null
  m.heap().write_word(head + 8, 0, 8);  // value
  std::vector<sim::Addr> node_pool;
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    node_pool.push_back(m.alloc(16));
  }
  m.run({.threads = kThreads, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(7 + c.tid());
    for (int i = 0; i < kPerThread; ++i) {
      const sim::Addr node = node_pool[c.tid() * kPerThread + i];
      const std::uint64_t value = 1 + rng.next_below(10000);
      m.heap().write_word(node + 8, value, 8);  // private until linked
      t.atomic([&](TmAccess& tm) {
        sim::Addr prev = head;
        sim::Addr cur = tm.read(head);
        while (cur != 0 && tm.read(cur + 8) < value) {
          prev = cur;
          cur = tm.read(cur);
        }
        tm.write(node, cur);
        tm.write(prev, static_cast<std::uint64_t>(node));
      });
    }
  }});
  // Verify: sorted, and exactly kThreads*kPerThread nodes.
  int count = 0;
  std::uint64_t last = 0;
  for (sim::Addr cur = m.heap().read_word(head, 8); cur != 0;
       cur = m.heap().read_word(cur, 8)) {
    const std::uint64_t v = m.heap().read_word(cur + 8, 8);
    EXPECT_GE(v, last);
    last = v;
    count++;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TmBackends,
                         ::testing::Values(Backend::kSgl, Backend::kTl2,
                                           Backend::kTsx, Backend::kTicToc,
                                           Backend::kTicTocHybrid,
                                           Backend::kMvcc),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string name = to_string(info.param);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(TmLib, SglSerializesDisjointRegions) {
  // Control experiment for the elision test: under sgl, disjoint critical
  // sections do NOT scale; under tsx they do.
  auto makespan = [](Backend b) {
    Machine m;
    TmRuntime rt(m, b);
    auto cells = SharedArray<std::uint64_t>::alloc(m, 4 * 8, 0);
    RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
      TmThread t(rt, c);
      const std::size_t idx = static_cast<std::size_t>(c.tid()) * 8;
      for (int i = 0; i < 300; ++i) {
        t.atomic([&](TmAccess& tm) {
          tm.write(cells.addr(idx), tm.read(cells.addr(idx)) + 1);
          tm.ctx().compute(120);
        });
      }
    }});
    return rs.makespan;
  };
  EXPECT_GT(makespan(Backend::kSgl), 2 * makespan(Backend::kTsx));
}

TEST(TmLib, Tl2AbortStatsReported) {
  Machine m;
  TmRuntime rt(m, Backend::kTl2);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 8, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (int i = 0; i < 100; ++i) {
      t.atomic([&](TmAccess& tm) {
        tm.write(cell, tm.read(cell) + 1);
        tm.ctx().compute(200);
      });
    }
  }});
  const sim::CcStats& cc = rt.cc_stats();
  EXPECT_EQ(cc.scheme, "tl2");
  EXPECT_GE(cc.starts, 800u);
  EXPECT_GT(cc.aborts, 0u) << "8 threads on one cell must conflict";
  EXPECT_EQ(cc.commits, 800u) << "every region must eventually commit";
}

// The v7 reconciliation invariants, at the source: starts = commits +
// aborts, and every abort carries exactly one class. Run a contended
// counter under every STM scheme.
TEST(TmLib, CcStatsReconcileAcrossStmSchemes) {
  for (Backend b : {Backend::kTl2, Backend::kTicToc, Backend::kTicTocHybrid,
                    Backend::kMvcc}) {
    Machine m;
    TmRuntime rt(m, b);
    auto cell = Shared<std::uint64_t>::alloc(m, 0);
    m.run({.threads = 4, .body = [&](Context& c) {
      TmThread t(rt, c);
      for (int i = 0; i < 50; ++i) {
        t.atomic([&](TmAccess& tm) {
          tm.write(cell, tm.read(cell) + 1);
          tm.ctx().compute(100);
        });
      }
    }});
    const sim::CcStats& cc = rt.cc_stats();
    EXPECT_EQ(cc.scheme, to_string(b));
    EXPECT_EQ(cc.commits, 200u) << to_string(b);
    EXPECT_EQ(cc.starts, cc.commits + cc.aborts) << to_string(b);
    EXPECT_EQ(cc.aborts, cc.aborts_read_validation + cc.aborts_lock_acquire +
                             cc.aborts_commit_validation)
        << to_string(b);
    EXPECT_EQ(cell.peek(m), 200u) << to_string(b);
  }
}

// Region-level accounting for the non-STM schemes: every region is one
// start + one commit, aborts are zero (hardware retries live below the
// seam, in the telemetry attempt chains).
TEST(TmLib, CcStatsRegionLevelForDirectSchemes) {
  for (Backend b : {Backend::kSgl, Backend::kTsx}) {
    Machine m;
    TmRuntime rt(m, b);
    auto cell = Shared<std::uint64_t>::alloc(m, 0);
    m.run({.threads = 4, .body = [&](Context& c) {
      TmThread t(rt, c);
      for (int i = 0; i < 50; ++i) {
        t.atomic(
            [&](TmAccess& tm) { tm.write(cell, tm.read(cell) + 1); });
      }
    }});
    const sim::CcStats& cc = rt.cc_stats();
    EXPECT_EQ(cc.scheme, to_string(b));
    EXPECT_EQ(cc.starts, 200u) << to_string(b);
    EXPECT_EQ(cc.commits, 200u) << to_string(b);
    EXPECT_EQ(cc.aborts, 0u) << to_string(b);
  }
}

// MVCC's reason to exist: read-only transactions are free snapshots — they
// never fail validation, even racing concurrent writers.
TEST(TmLib, MvccReadOnlySnapshotsCommitWithoutValidation) {
  Machine m;
  TmRuntime rt(m, Backend::kMvcc);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 64, 0);
  constexpr int kReaders = 3;
  constexpr int kRoRegions = 60;
  m.run({.threads = 4, .body = [&](Context& c) {
    TmThread t(rt, c);
    if (c.tid() == 0) {
      // One writer churning versions under the readers.
      for (int i = 0; i < 120; ++i) {
        t.atomic([&](TmAccess& tm) {
          const std::size_t idx = static_cast<std::size_t>(i) % 64;
          tm.write(cells.addr(idx), tm.read(cells.addr(idx)) + 1);
        });
      }
    } else {
      for (int i = 0; i < kRoRegions; ++i) {
        t.atomic([&](TmAccess& tm) {
          std::uint64_t sum = 0;
          for (std::size_t j = 0; j < 64; ++j) sum += tm.read(cells.addr(j));
          tm.ctx().compute(sum & 1);  // consume
        });
      }
    }
  }});
  const sim::CcStats& cc = rt.cc_stats();
  EXPECT_EQ(cc.snapshot_commits,
            static_cast<std::uint64_t>(kReaders) * kRoRegions)
      << "every read-only region must commit as a free snapshot";
  EXPECT_EQ(cc.aborts_read_validation, 0u) << "MVCC reads never abort";
  EXPECT_GT(cc.versions_created, 0u);
  EXPECT_LE(cc.gc_reclaims, cc.versions_created);
}

// TicToc's signature move: commit-time rts extension instead of aborting on
// merely-old reads.
TEST(TmLib, TicTocExtendsReadTimestamps) {
  Machine m;
  TmRuntime rt(m, Backend::kTicToc);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 8, 0);
  m.run({.threads = 4, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (int i = 0; i < 80; ++i) {
      t.atomic([&](TmAccess& tm) {
        // Read one cell, write another: the read's rts must be extended
        // past concurrent writers' commit timestamps.
        const std::size_t r = static_cast<std::size_t>(c.tid()) % 8;
        const std::size_t w = static_cast<std::size_t>(c.tid() + 1 + i) % 8;
        const std::uint64_t v = tm.read(cells.addr(r));
        tm.write(cells.addr(w), v + 1);
        tm.ctx().compute(60);
      });
    }
  }});
  const sim::CcStats& cc = rt.cc_stats();
  EXPECT_EQ(cc.starts, cc.commits + cc.aborts);
  EXPECT_GT(cc.read_set_extensions, 0u)
      << "contended read/write mix must trigger rts extensions";
}

TEST(TmLib, TsxSingleThreadOverheadIsSmall) {
  // Figure 2's key single-thread observation: tsx ≈ sgl, tl2 much slower.
  auto makespan = [](Backend b) {
    Machine m;
    TmRuntime rt(m, b);
    auto cells = SharedArray<std::uint64_t>::alloc(m, 512, 0);
    RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
      TmThread t(rt, c);
      for (int i = 0; i < 200; ++i) {
        t.atomic([&](TmAccess& tm) {
          for (int j = 0; j < 16; ++j) {
            const std::size_t idx = (i * 16 + j) % 512;
            tm.write(cells.addr(idx), tm.read(cells.addr(idx)) + 1);
          }
        });
      }
    }});
    return static_cast<double>(rs.makespan);
  };
  const double sgl = makespan(Backend::kSgl);
  const double tsx = makespan(Backend::kTsx);
  const double tl2 = makespan(Backend::kTl2);
  EXPECT_LT(tsx, 1.6 * sgl) << "tsx single-thread cost comparable to sgl";
  EXPECT_GT(tl2, 1.8 * sgl) << "tl2 pays instrumentation at one thread";
}

}  // namespace
}  // namespace tsxhpc::tmlib
