// Tests for the CLOMP-TM benchmark: correctness of every scheme and the
// qualitative Figure 1 shape claims.
#include <gtest/gtest.h>

#include "clomp/clomp.h"

namespace tsxhpc::clomp {
namespace {

Config small_config(int scatters) {
  Config cfg;
  cfg.zones_per_thread = 32;
  cfg.scatters_per_zone = scatters;
  cfg.repetitions = 6;
  return cfg;
}

class ClompSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(ClompSchemes, ChecksumMatchesSerial) {
  // Every synchronized scheme must compute exactly what the serial version
  // computes (deposits are additive and scheme-independent).
  Config cfg = small_config(4);
  cfg.cross_partition_fraction = 0.3;  // force real contention
  const Result serial = run(cfg, Scheme::kSerial);
  const Result r = run(cfg, GetParam());
  EXPECT_EQ(r.checksum, serial.checksum) << to_string(GetParam());
  EXPECT_EQ(r.total_updates, serial.total_updates);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ClompSchemes,
    ::testing::Values(Scheme::kSmallAtomic, Scheme::kSmallCritical,
                      Scheme::kLargeCritical, Scheme::kSmallTM,
                      Scheme::kLargeTM),
    [](const ::testing::TestParamInfo<Scheme>& info) {
      std::string s = to_string(info.param);
      for (auto& ch : s)
        if (ch == '-') ch = '_';
      return s;
    });

TEST(Clomp, SerialDeterminism) {
  Config cfg = small_config(4);
  const Result a = run(cfg, Scheme::kLargeTM);
  const Result b = run(cfg, Scheme::kLargeTM);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Clomp, Figure1SmallAtomicBeatsSmallTMAndSmallCritical) {
  Config cfg = small_config(1);
  const double atomic = speedup_vs_serial(cfg, Scheme::kSmallAtomic);
  const double small_tm = speedup_vs_serial(cfg, Scheme::kSmallTM);
  const double small_crit = speedup_vs_serial(cfg, Scheme::kSmallCritical);
  EXPECT_GT(atomic, small_tm) << "LOCK-prefixed beats per-update txn";
  EXPECT_GT(small_tm, small_crit) << "per-update lock is worst";
  // "not too much worse": within ~2.5x.
  EXPECT_GT(small_tm, atomic / 2.5);
}

TEST(Clomp, Figure1LargeTMOvertakesSmallAtomicWhenBatching) {
  // The headline crossover: batching 3-4 scatter updates makes Large TM win.
  Config cfg1 = small_config(1);
  EXPECT_LT(speedup_vs_serial(cfg1, Scheme::kLargeTM) /
                speedup_vs_serial(cfg1, Scheme::kSmallAtomic),
            1.05)
      << "no batching advantage at 1 scatter";
  Config cfg6 = small_config(6);
  EXPECT_GT(speedup_vs_serial(cfg6, Scheme::kLargeTM),
            speedup_vs_serial(cfg6, Scheme::kSmallAtomic))
      << "Large TM must win once >=6 updates are batched";
}

TEST(Clomp, Figure1LargeCriticalStaysSlow) {
  Config cfg = small_config(8);
  const double large_crit = speedup_vs_serial(cfg, Scheme::kLargeCritical);
  const double large_tm = speedup_vs_serial(cfg, Scheme::kLargeTM);
  EXPECT_LT(large_crit, 1.6) << "global lock serializes 4 threads";
  EXPECT_GT(large_tm, 2 * large_crit);
}

TEST(Clomp, NoContentionConfigHasNoConflictAborts) {
  Config cfg = small_config(4);
  const Result r = run(cfg, Scheme::kLargeTM);
  EXPECT_EQ(
      r.stats.total().tx_aborted[size_t(sim::AbortCause::kConflict)], 0u)
      << "Figure 1 wiring keeps partitions disjoint";
}

TEST(Clomp, CrossPartitionWiringCausesAborts) {
  Config cfg = small_config(4);
  cfg.cross_partition_fraction = 0.5;
  cfg.repetitions = 10;
  const Result r = run(cfg, Scheme::kLargeTM);
  EXPECT_GT(r.stats.total().tx_aborts_total(), 0u);
}

}  // namespace
}  // namespace tsxhpc::clomp
