// Unit tests for the memory system: heap, cache model, coherence costs,
// transactional read/write sets, conflicts, and capacity aborts.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/shared.h"

namespace tsxhpc::sim {
namespace {

MachineConfig quantum0() {
  MachineConfig cfg;
  cfg.sched_quantum = 0;  // precise interleaving for unit tests
  return cfg;
}

TEST(SharedHeap, AllocateAlignsAndGrows) {
  SharedHeap h(64);
  Addr a = h.allocate(10, 8);
  EXPECT_EQ(a % 8, 0u);
  Addr b = h.allocate(1000, 64);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
  // Growth beyond the initial 1 MB backing store.
  Addr big = h.allocate(8u << 20, 64);
  h.write_word(big + (8u << 20) - 8, 0xDEADBEEF, 8);
  EXPECT_EQ(h.read_word(big + (8u << 20) - 8, 8), 0xDEADBEEFu);
}

TEST(SharedHeap, NullAndOutOfBoundsRejected) {
  SharedHeap h(64);
  EXPECT_THROW(h.read_word(kNullAddr, 8), SimError);
  EXPECT_THROW(h.read_word(1 << 30, 8), SimError);
}

TEST(SharedHeap, SubWordAccess) {
  SharedHeap h(64);
  Addr a = h.allocate(8, 8);
  h.write_word(a, 0x1122334455667788ULL, 8);
  EXPECT_EQ(h.read_word(a, 1), 0x88u);
  EXPECT_EQ(h.read_word(a + 4, 4), 0x11223344u);
}

TEST(Memory, LoadStoreRoundTrip) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 7);
  m.run({.threads = 1, .body = [&](Context& c) {
    EXPECT_EQ(cell.load(c), 7u);
    cell.store(c, 42);
    EXPECT_EQ(cell.load(c), 42u);
  }});
  EXPECT_EQ(cell.peek(m), 42u);
}

TEST(Memory, AlignmentEnforced) {
  Machine m(quantum0());
  Addr a = m.alloc(64);
  m.run({.threads = 1, .body = [&](Context& c) {
    EXPECT_THROW(c.load(a + 1, 8), SimError);
    EXPECT_THROW(c.load(a + 2, 4), SimError);
    EXPECT_THROW(c.load(a, 3), SimError);
    EXPECT_NO_THROW(c.load(a + 4, 4));
  }});
}

TEST(Memory, L1HitIsCheaperThanMiss) {
  Machine m(quantum0());
  Addr a = m.alloc(64);
  Cycles first = 0, second = 0;
  m.run({.threads = 1, .body = [&](Context& c) {
    Cycles t0 = c.now();
    c.load(a);
    first = c.now() - t0;
    t0 = c.now();
    c.load(a);
    second = c.now() - t0;
  }});
  EXPECT_EQ(first, m.config().lat_mem);
  EXPECT_EQ(second, m.config().lat_l1_hit);
}

TEST(Memory, CrossCoreDirtyTransferCost) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  auto flag = Shared<std::uint32_t>::alloc(m, 0);
  std::vector<Cycles> load_cost(2, 0);
  m.run({.bodies = {
      [&](Context& c) {
        cell.store(c, 5);  // dirty in core 0's L1
        flag.store(c, 1);
      },
      [&](Context& c) {
        while (flag.load(c) == 0) c.compute(50);
        Cycles t0 = c.now();
        cell.load(c);
        load_cost[1] = c.now() - t0;
      },
  }});
  EXPECT_EQ(load_cost[1], m.config().lat_xfer_dirty);
}

TEST(Memory, AtomicFetchAddIsAtomicAcrossThreads) {
  Machine m;  // default quantum: coarse interleaving still must be atomic
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  m.run({.threads = kThreads, .body = [&](Context& c) {
    for (int i = 0; i < kIters; ++i) counter.fetch_add(c, 1);
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Memory, AtomicCostsMoreThanPlainAccess) {
  Machine m(quantum0());
  Addr a = m.alloc(64);
  Cycles plain = 0, atomic = 0;
  m.run({.threads = 1, .body = [&](Context& c) {
    c.load(a);  // warm
    Cycles t0 = c.now();
    c.store(a, 1);
    plain = c.now() - t0;
    t0 = c.now();
    c.fetch_add(a, 1);
    atomic = c.now() - t0;
  }});
  EXPECT_GT(atomic, plain);
}

TEST(Tx, CommitPublishesWrites) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 1);
  m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    cell.store(c, 99);
    EXPECT_EQ(cell.load(c), 99u);       // read own speculative write
    EXPECT_EQ(cell.peek(m), 1u);
    c.xend();
    EXPECT_EQ(cell.load(c), 99u);
  }});
  EXPECT_EQ(cell.peek(m), 99u);
}

TEST(Tx, ExplicitAbortDiscardsWrites) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 1);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    try {
      c.xbegin();
      cell.store(c, 99);
      c.xabort(0x42);
      FAIL() << "xabort must not return";
    } catch (const TxAbort& a) {
      EXPECT_EQ(a.cause, AbortCause::kExplicit);
      EXPECT_EQ(a.code, 0x42);
    }
    EXPECT_FALSE(c.in_txn());
    EXPECT_EQ(cell.load(c), 1u);
  }});
  EXPECT_EQ(rs.threads[0].tx_aborted[size_t(AbortCause::kExplicit)], 1u);
}

TEST(Tx, SubWordWritesMergeInBuffer) {
  Machine m(quantum0());
  Addr a = m.alloc(8);
  m.heap().write_word(a, 0, 8);
  m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    c.store(a, 0xAA, 1);
    c.store(a + 4, 0xBBCCDDEE, 4);
    EXPECT_EQ(c.load(a, 1), 0xAAu);
    EXPECT_EQ(c.load(a + 4, 4), 0xBBCCDDEEu);
    EXPECT_EQ(c.load(a, 8), 0xBBCCDDEE000000AAULL);
    c.xend();
  }});
  EXPECT_EQ(m.heap().read_word(a, 8), 0xBBCCDDEE000000AAULL);
}

TEST(Tx, SyscallAbortsTransaction) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    try {
      c.xbegin();
      cell.store(c, 5);
      c.syscall();
      FAIL() << "syscall inside txn must abort";
    } catch (const TxAbort& a) {
      EXPECT_EQ(a.cause, AbortCause::kSyscall);
    }
  }});
  EXPECT_EQ(cell.peek(m), 0u);
  EXPECT_EQ(rs.threads[0].tx_aborted[size_t(AbortCause::kSyscall)], 1u);
}

TEST(Tx, NestingIsFlatAndDepthLimited) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    c.xbegin();  // nested
    cell.store(c, 1);
    c.xend();
    EXPECT_TRUE(c.in_txn());  // flat: still transactional
    EXPECT_EQ(cell.peek(m), 0u);
    c.xend();
    EXPECT_FALSE(c.in_txn());
  }});
  EXPECT_EQ(cell.peek(m), 1u);

  // Depth overflow.
  m.run({.threads = 1, .body = [&](Context& c) {
    bool aborted = false;
    try {
      for (int i = 0; i < 64; ++i) c.xbegin();
    } catch (const TxAbort& a) {
      aborted = true;
      EXPECT_EQ(a.cause, AbortCause::kNesting);
    }
    EXPECT_TRUE(aborted);
    EXPECT_FALSE(c.in_txn());
  }});
}

TEST(Tx, WriteWriteConflictRequesterWins) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  auto ready = Shared<std::uint32_t>::alloc(m, 0);
  int victim_aborts = 0;
  m.run({.bodies = {
      // Thread 0: opens a txn, writes the cell, then spins. Thread 1's
      // conflicting write must doom it (requester wins).
      [&](Context& c) {
        try {
          c.xbegin();
          cell.store(c, 10);
          ready.store(c, 1);  // NOTE: speculative; not visible to thread 1!
          for (int i = 0; i < 200; ++i) c.compute(100);
          c.xend();
        } catch (const TxAbort& a) {
          victim_aborts++;
          EXPECT_EQ(a.cause, AbortCause::kConflict);
        }
      },
      [&](Context& c) {
        c.compute(2000);  // let thread 0 enter its txn
        cell.store(c, 20);
      },
  }});
  EXPECT_EQ(victim_aborts, 1);
  EXPECT_EQ(cell.peek(m), 20u);
}

TEST(Tx, ReadersDoomedByRemoteWrite) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  int aborts = 0;
  m.run({.bodies = {
      [&](Context& c) {
        try {
          c.xbegin();
          (void)cell.load(c);
          for (int i = 0; i < 200; ++i) c.compute(100);
          c.xend();
        } catch (const TxAbort&) {
          aborts++;
        }
      },
      [&](Context& c) {
        c.compute(2000);
        cell.store(c, 1);  // non-transactional write dooms the reader
      },
  }});
  EXPECT_EQ(aborts, 1);
}

TEST(Tx, ConcurrentReadersDoNotConflict) {
  Machine m(quantum0());
  auto cell = Shared<std::uint64_t>::alloc(m, 7);
  RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    c.xbegin();
    EXPECT_EQ(cell.load(c), 7u);
    c.compute(500);
    c.xend();
  }});
  EXPECT_EQ(rs.total().tx_committed, 4u);
  EXPECT_EQ(rs.total().tx_aborts_total(), 0u);
}

TEST(Tx, CapacityAbortOnWriteSetOverflow) {
  // Write more lines into one L1 set than it has ways.
  Machine m(quantum0());
  const auto& cfg = m.config();
  const std::size_t set_stride =
      static_cast<std::size_t>(cfg.l1_sets()) * cfg.line_bytes;
  Addr base = m.alloc(set_stride * (cfg.l1_ways + 2), 64);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    bool aborted = false;
    try {
      c.xbegin();
      for (std::uint32_t i = 0; i < cfg.l1_ways + 2; ++i) {
        c.store(base + i * set_stride, i);
      }
      c.xend();
    } catch (const TxAbort& a) {
      aborted = true;
      EXPECT_EQ(a.cause, AbortCause::kCapacityWrite);
    }
    EXPECT_TRUE(aborted);
  }});
  EXPECT_EQ(rs.threads[0].tx_aborted[size_t(AbortCause::kCapacityWrite)], 1u);
}

TEST(Tx, ReadSetEvictionDoesNotAbort) {
  // Reads overflowing the L1 go to secondary tracking, not (deterministic)
  // abort (Sec. 2). Disable the probabilistic secondary-imprecision model.
  MachineConfig mc = quantum0();
  mc.read_evict_abort_prob = 0.0;
  Machine m(mc);
  const auto& cfg = m.config();
  const std::size_t set_stride =
      static_cast<std::size_t>(cfg.l1_sets()) * cfg.line_bytes;
  Addr base = m.alloc(set_stride * (cfg.l1_ways + 4), 64);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    for (std::uint32_t i = 0; i < cfg.l1_ways + 4; ++i) {
      c.load(base + i * set_stride);
    }
    c.xend();
  }});
  EXPECT_EQ(rs.threads[0].tx_committed, 1u);
  EXPECT_GT(rs.threads[0].tx_read_lines_evicted, 0u);
}

TEST(Tx, EvictedReadLineStillDetectsConflicts) {
  // A line evicted from the L1 but still in the (secondary) read set must
  // still cause an abort when another thread writes it.
  MachineConfig mc = quantum0();
  mc.read_evict_abort_prob = 0.0;
  Machine m(mc);
  const auto& cfg = m.config();
  const std::size_t set_stride =
      static_cast<std::size_t>(cfg.l1_sets()) * cfg.line_bytes;
  Addr probe = m.alloc(64, 64);
  // Aliases: same set as probe.
  Addr alias = m.alloc(set_stride * (cfg.l1_ways + 2), 64);
  // Adjust alias to land in the same set as probe.
  alias += (probe % set_stride) - (alias % set_stride);
  int aborts = 0;
  m.run({.bodies = {
      [&](Context& c) {
        try {
          c.xbegin();
          c.load(probe);
          // Evict probe from the L1 with same-set fills.
          for (std::uint32_t i = 0; i < cfg.l1_ways + 1; ++i) {
            c.load(alias + i * set_stride);
          }
          for (int i = 0; i < 300; ++i) c.compute(100);
          c.xend();
        } catch (const TxAbort& a) {
          aborts++;
          EXPECT_EQ(a.cause, AbortCause::kConflict);
        }
      },
      [&](Context& c) {
        c.compute(8000);
        c.store(probe, 1);
      },
  }});
  EXPECT_EQ(aborts, 1);
}

TEST(Tx, SmtSiblingPressureCausesCapacityAborts) {
  // Two threads on the same core (tids 0 and 4 with 4 cores) hammering
  // disjoint data halve each other's effective L1 capacity.
  MachineConfig cfg = quantum0();
  Machine m(cfg);
  const std::size_t set_stride =
      static_cast<std::size_t>(cfg.l1_sets()) * cfg.line_bytes;
  // Two disjoint regions mapping to the same sets.
  Addr r0 = m.alloc(set_stride * cfg.l1_ways, 64);
  Addr r1 = m.alloc(set_stride * cfg.l1_ways, 64);
  int capacity_aborts = 0;
  auto body = [&](Context& c) {
    Addr base = c.tid() == 0 ? r0 : r1;
    // 5 same-set lines each: alone would fit (8 ways); together they thrash.
    for (int rep = 0; rep < 6; ++rep) {
      try {
        c.xbegin();
        for (std::uint32_t i = 0; i < 5; ++i) {
          c.store(base + i * set_stride, rep);
        }
        c.compute(300);
        c.xend();
      } catch (const TxAbort& a) {
        if (a.cause == AbortCause::kCapacityWrite) capacity_aborts++;
      }
    }
  };
  std::vector<std::function<void(Context&)>> bodies(8, [](Context& c) {
    c.compute(1);
  });
  bodies[0] = body;
  bodies[4] = body;  // same core as thread 0 (t % 4)
  m.run({.bodies = bodies});
  EXPECT_GT(capacity_aborts, 0);
}

}  // namespace
}  // namespace tsxhpc::sim

namespace tsxhpc::sim {
namespace {

TEST(Affinity, PackedSiblingsShareAnL1) {
  MachineConfig cfg;
  cfg.affinity = Affinity::kPackCores;
  EXPECT_EQ(cfg.core_of(0), cfg.core_of(1));
  EXPECT_NE(cfg.core_of(0), cfg.core_of(2));
  MachineConfig spread;  // the paper's default
  EXPECT_NE(spread.core_of(0), spread.core_of(1));
  EXPECT_EQ(spread.core_of(0), spread.core_of(4));
}

TEST(Affinity, PackingRaisesTransactionalCapacityPressure) {
  // The Section 3 affinity choice matters: two threads with medium write
  // sets abort more when packed onto one L1 than when spread (the same
  // mechanism as Table 1's 8-thread column, at 2 threads).
  auto capacity_aborts = [](Affinity a) {
    MachineConfig cfg;
    cfg.sched_quantum = 0;
    cfg.affinity = a;
    Machine m(cfg);
    const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
    Addr r0 = m.alloc(stride * cfg.l1_ways, 64);
    Addr r1 = m.alloc(stride * cfg.l1_ways, 64);
    std::uint64_t aborts = 0;
    RunStats rs = m.run({.threads = 2, .body = [&](Context& c) {
      const Addr base = c.tid() == 0 ? r0 : r1;
      for (int rep = 0; rep < 8; ++rep) {
        try {
          c.xbegin();
          for (std::uint32_t i = 0; i < 5; ++i) {
            c.store(base + i * stride, rep);
          }
          c.compute(400);
          c.xend();
        } catch (const TxAbort&) {
        }
      }
    }});
    aborts = rs.total().tx_aborts_total();
    return aborts;
  };
  EXPECT_GT(capacity_aborts(Affinity::kPackCores),
            capacity_aborts(Affinity::kSpreadCores));
}

}  // namespace
}  // namespace tsxhpc::sim
