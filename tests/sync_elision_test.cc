// Unit tests for RTM lock elision, lockset elision, and coarsening helpers.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sync/coarsen.h"
#include "sync/elision.h"

namespace tsxhpc::sync {
namespace {

using sim::Context;
using sim::Machine;
using sim::MachineConfig;
using sim::RunStats;
using sim::Shared;
using sim::SharedArray;

TEST(ElidedLock, UncontendedSectionsCommitElided) {
  Machine m;
  ElidedLock lock(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    for (int i = 0; i < 100; ++i) {
      lock.critical(c, [&] { cell.store(c, cell.load(c) + 1); });
    }
  }});
  EXPECT_EQ(cell.peek(m), 100u);
  EXPECT_EQ(lock.stats().elided_commits, 100u);
  EXPECT_EQ(lock.stats().fallback_acquires, 0u);
  EXPECT_EQ(rs.threads[0].tx_committed, 100u);
}

TEST(ElidedLock, DisjointSectionsRunConcurrently) {
  // Threads updating different lines under the SAME lock must not serialize:
  // this is the core TSX value proposition.
  auto makespan = [](bool elide) {
    Machine m;
    ElidedLock el(m);
    auto cells = SharedArray<std::uint64_t>::alloc(m, 8 * 8, 0);  // 1/line
    RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
      const std::size_t idx = static_cast<std::size_t>(c.tid()) * 8;
      for (int i = 0; i < 500; ++i) {
        if (elide) {
          el.critical(c, [&] {
            cells.at(idx).store(c, cells.at(idx).load(c) + 1);
            c.compute(100);
          });
        } else {
          el.underlying().acquire(c);
          cells.at(idx).store(c, cells.at(idx).load(c) + 1);
          c.compute(100);
          el.underlying().release(c);
        }
      }
    }});
    return rs.makespan;
  };
  const auto elided = makespan(true);
  const auto locked = makespan(false);
  EXPECT_LT(elided * 2, locked)
      << "elision should expose at least 2x concurrency here";
}

TEST(ElidedLock, ConflictingSectionsStaySequentiallyConsistent) {
  Machine m;
  ElidedLock lock(m);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  RunStats rs = m.run({.threads = kThreads, .body = [&](Context& c) {
    for (int i = 0; i < kIters; ++i) {
      lock.critical(c, [&] { counter.store(c, counter.load(c) + 1); });
    }
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(rs.total().tx_aborts_total(), 0u) << "contended: some aborts";
}

TEST(ElidedLock, FallbackAfterMaxRetries) {
  // A section whose footprint can never fit must fall back to the lock.
  Machine m;
  ElidedLock lock(m);
  const auto& cfg = m.config();
  const std::size_t lines = cfg.l1_ways + 2;
  const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
  sim::Addr base = m.alloc(stride * lines, 64);
  m.run({.threads = 1, .body = [&](Context& c) {
    lock.critical(c, [&] {
      for (std::size_t i = 0; i < lines; ++i) c.store(base + i * stride, i);
    });
  }});
  EXPECT_EQ(lock.stats().fallback_acquires, 1u);
  // Capacity aborts clear the hardware retry hint: exactly one attempt.
  EXPECT_EQ(lock.stats().aborts, 1u);
  for (std::size_t i = 0; i < lines; ++i) {
    EXPECT_EQ(m.heap().read_word(base + i * stride, 8), i);
  }
}

TEST(ElidedLock, RetryCountHonoredForConflicts) {
  // With honor_retry_hint, conflict aborts retry up to max_retries times.
  MachineConfig cfg;
  cfg.sched_quantum = 0;
  Machine m(cfg);
  ElisionPolicy pol;
  pol.max_retries = 3;
  pol.spin_until_free = false;
  ElidedLock lock(m, pol);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  // Thread 1 writes the cell non-transactionally in a tight loop, dooming
  // thread 0's transactional attempts every time.
  RunStats rs = m.run({.bodies = {
      [&](Context& c) {
        lock.critical(c, [&] {
          std::uint64_t v = cell.load(c);
          for (int i = 0; i < 100; ++i) c.compute(200);
          cell.store(c, v + 1);
        });
      },
      [&](Context& c) {
        for (int i = 0; i < 600; ++i) {
          cell.store(c, 7);
          c.compute(40);
        }
      },
  }});
  (void)rs;
  EXPECT_EQ(lock.stats().fallback_acquires, 1u);
  EXPECT_EQ(lock.stats().aborts, 3u);
}

TEST(ElidedLock, ExplicitAcquireDoomsEliders) {
  MachineConfig cfg;
  cfg.sched_quantum = 0;
  Machine m(cfg);
  ElidedLock lock(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  bool saw_abort = false;
  m.run({.bodies = {
      [&](Context& c) {
        try {
          c.xbegin();
          if (lock.underlying().word().load(c) != 0) c.xabort(0xFF);
          for (int i = 0; i < 400; ++i) c.compute(100);
          c.xend();
        } catch (const sim::TxAbort& a) {
          saw_abort = true;
          EXPECT_EQ(a.cause, sim::AbortCause::kConflict)
              << "lock-word subscription conflict";
        }
      },
      [&](Context& c) {
        c.compute(5000);
        lock.acquire(c);  // explicit acquisition writes the lock word
        cell.store(c, 1);
        lock.release(c);
      },
  }});
  EXPECT_TRUE(saw_abort);
}

TEST(ElidedLock, NestedElisionFlattens) {
  Machine m;
  ElidedLock outer(m), inner(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    outer.critical(c, [&] {
      inner.critical(c, [&] { cell.store(c, cell.load(c) + 1); });
    });
  }});
  EXPECT_EQ(cell.peek(m), 1u);
  // One hardware transaction, not two.
  EXPECT_EQ(rs.threads[0].tx_started, 1u);
}

TEST(ElidedLock, AdaptiveSkipAfterHopelessAborts) {
  // A section whose write set can never fit the L1 must stop burning
  // transactional attempts: after the first capacity-driven fallback the
  // lock takes an elision holiday (glibc-style adaptive elision).
  Machine m;
  ElisionPolicy pol;
  pol.adaptive_skip = 4;
  ElidedLock lock(m, pol);
  const auto& cfg = m.config();
  const std::size_t lines = cfg.l1_ways + 2;
  const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
  sim::Addr base = m.alloc(stride * lines, 64);
  m.run({.threads = 1, .body = [&](Context& c) {
    for (int rep = 0; rep < 10; ++rep) {
      lock.critical(c, [&] {
        for (std::size_t i = 0; i < lines; ++i) c.store(base + i * stride, i);
      });
    }
  }});
  EXPECT_EQ(lock.stats().fallback_acquires, 10u);
  // Far fewer transactional attempts than the 50 a non-adaptive retry-5
  // policy would burn: the holiday suppresses most of them.
  EXPECT_LE(lock.stats().aborts, 6u);
}

TEST(ElidedLock, AdaptiveSkipForgivesAfterSuccess) {
  // Conflict-driven fallbacks must NOT poison elision for well-behaved
  // sections: after a successful elided commit the skip base resets.
  Machine m;
  ElidedLock lock(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 8, .body = [&](Context& c) {
    for (int i = 0; i < 200; ++i) {
      lock.critical(c, [&] { cell.store(c, cell.load(c) + 1); });
      c.compute(100);
    }
  }});
  (void)rs;
  EXPECT_EQ(cell.peek(m), 1600u);
  EXPECT_GT(lock.stats().elision_rate(), 0.5)
      << "most sections should still elide despite occasional conflicts";
}

TEST(ElidedLockSet, SingleBeginReplacesManyAcquisitions) {
  Machine m;
  constexpr int kLocks = 4;
  std::vector<SpinLock> locks;
  for (int i = 0; i < kLocks; ++i) locks.emplace_back(m);
  ElidedLockSet lockset;
  auto cells = SharedArray<std::uint64_t>::alloc(m, kLocks, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    lockset.critical(c, {&locks[0], &locks[1], &locks[2], &locks[3]}, [&] {
      for (int i = 0; i < kLocks; ++i) {
        cells.at(i).store(c, cells.at(i).load(c) + 1);
      }
    });
  }});
  EXPECT_EQ(rs.threads[0].tx_started, 1u);
  EXPECT_EQ(rs.threads[0].atomics, 0u) << "no lock CAS on the elided path";
  for (int i = 0; i < kLocks; ++i) EXPECT_EQ(cells.at(i).peek(m), 1u);
}

TEST(ElidedLockSet, FallbackAcquiresInCanonicalOrderWithoutDeadlock) {
  // Force fallbacks by writing a huge footprint, from two threads locking
  // the set in opposite orders. Canonical-order fallback must not deadlock.
  Machine m;
  std::vector<SpinLock> locks;
  for (int i = 0; i < 2; ++i) locks.emplace_back(m);
  ElidedLockSet lockset;
  const auto& cfg = m.config();
  const std::size_t lines = cfg.l1_ways + 2;
  const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
  sim::Addr big = m.alloc(stride * lines * 2, 64);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 2, .body = [&](Context& c) {
    std::vector<SpinLock*> order = c.tid() == 0
                                       ? std::vector<SpinLock*>{&locks[0], &locks[1]}
                                       : std::vector<SpinLock*>{&locks[1], &locks[0]};
    for (int it = 0; it < 20; ++it) {
      lockset.critical(c, order, [&] {
        sim::Addr base = big + (c.tid() ? stride * lines : 0);
        for (std::size_t i = 0; i < lines; ++i) {
          c.store(base + i * stride, i);
        }
        counter.store(c, counter.load(c) + 1);
      });
    }
  }});
  EXPECT_EQ(counter.peek(m), 40u);
  EXPECT_GT(lockset.stats().fallback_acquires, 0u);
}

TEST(ElidedLockSet, DuplicateLocksInSetDoNotSelfDeadlock) {
  // Dynamic coarsening can batch sections naming the same lock twice; the
  // fallback must deduplicate before acquiring.
  Machine m;
  SpinLock lock(m);
  ElisionPolicy pol;
  pol.max_retries = 1;
  ElidedLockSet lockset(pol);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  const auto& cfg = m.config();
  const std::size_t lines = cfg.l1_ways + 2;
  const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
  sim::Addr big = m.alloc(stride * lines, 64);
  m.run({.threads = 1, .body = [&](Context& c) {
    // Oversized footprint forces the fallback path.
    lockset.critical(c, {&lock, &lock, &lock}, [&] {
      for (std::size_t i = 0; i < lines; ++i) c.store(big + i * stride, 1);
      cell.store(c, cell.load(c) + 1);
    });
  }});
  EXPECT_EQ(cell.peek(m), 1u);
  EXPECT_EQ(lockset.stats().fallback_acquires, 1u);
}

TEST(Coarsen, ForEachCoarsenedCoversAllAndBatches) {
  Machine m;
  ElidedLock lock(m);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 37, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    for_each_coarsened(c, lock, 37, 4,
                       [&](std::size_t i) { cells.at(i).store(c, i + 1); });
  }});
  for (std::size_t i = 0; i < 37; ++i) EXPECT_EQ(cells.at(i).peek(m), i + 1);
  EXPECT_EQ(rs.threads[0].tx_started, 10u) << "ceil(37/4) regions";
}

TEST(Coarsen, BatcherFlushesOnDestructionAndGranularity) {
  Machine m;
  ElidedLock lock(m);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 10, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    auto fn = [&](std::size_t i) { cells.at(i).store(c, 1); };
    CoarseningBatcher<decltype(fn)> batcher(c, lock, 3, fn);
    for (std::size_t i = 0; i < 10; ++i) batcher.add(i);
  }});
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(cells.at(i).peek(m), 1u);
  EXPECT_EQ(rs.threads[0].tx_started, 4u) << "3+3+3+1";
}

TEST(Coarsen, CoarserRegionsAmortizeOverhead) {
  // Single thread: the Figure 1 "Large TM beats Small Atomic" mechanism.
  auto makespan = [](std::size_t gran) {
    Machine m;
    ElidedLock lock(m);
    auto cells = SharedArray<std::uint64_t>::alloc(m, 1024, 0);
    RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
      for_each_coarsened(c, lock, 1024, gran, [&](std::size_t i) {
        cells.at(i).store(c, cells.at(i).load(c) + 1);
      });
    }});
    return rs.makespan;
  };
  EXPECT_LT(makespan(8), makespan(1));
}

}  // namespace
}  // namespace tsxhpc::sync
