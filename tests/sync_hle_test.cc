// Tests for the HLE (XACQUIRE/XRELEASE) interface and the transactional
// cycle-accounting / perf-report facilities.
#include <gtest/gtest.h>

#include "sim/perf.h"
#include "sync/elision.h"
#include "sync/hle.h"

namespace tsxhpc::sync {
namespace {

using sim::Context;
using sim::Machine;
using sim::RunStats;
using sim::Shared;
using sim::SharedArray;

TEST(HleLock, UncontendedSectionsElide) {
  Machine m;
  HleLock lock(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    for (int i = 0; i < 50; ++i) {
      lock.critical(c, [&] { cell.store(c, cell.load(c) + 1); });
    }
  }});
  EXPECT_EQ(cell.peek(m), 50u);
  EXPECT_EQ(lock.elided(), 50u);
  EXPECT_EQ(lock.acquired(), 0u);
  EXPECT_EQ(rs.threads[0].tx_committed, 50u);
}

TEST(HleLock, MutualExclusionUnderContention) {
  Machine m;
  HleLock lock(m);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  m.run({.threads = kThreads, .body = [&](Context& c) {
    for (int i = 0; i < kIters; ++i) {
      lock.critical(c, [&] { counter.store(c, counter.load(c) + 1); });
    }
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(HleLock, HardwarePolicyIsOneRetry) {
  // A section that can never fit must fall back after at most 2 attempts —
  // HLE has no software-controllable retry policy (Section 2 vs Section 3).
  Machine m;
  HleLock lock(m);
  const auto& cfg = m.config();
  const std::size_t lines = cfg.l1_ways + 2;
  const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
  sim::Addr base = m.alloc(stride * lines, 64);
  m.run({.threads = 1, .body = [&](Context& c) {
    lock.critical(c, [&] {
      for (std::size_t i = 0; i < lines; ++i) c.store(base + i * stride, i);
    });
  }});
  EXPECT_EQ(lock.acquired(), 1u);
  EXPECT_LE(lock.aborts(), 2u);
}

TEST(HleLock, DisjointSectionsScale) {
  auto makespan = [](bool elide) {
    Machine m;
    HleLock lock(m);
    auto cells = SharedArray<std::uint64_t>::alloc(m, 8 * 8, 0);
    RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
      const std::size_t idx = static_cast<std::size_t>(c.tid()) * 8;
      for (int i = 0; i < 300; ++i) {
        if (elide) {
          lock.critical(c, [&] {
            cells.at(idx).store(c, cells.at(idx).load(c) + 1);
            c.compute(120);
          });
        } else {
          lock.underlying().acquire(c);
          cells.at(idx).store(c, cells.at(idx).load(c) + 1);
          c.compute(120);
          lock.underlying().release(c);
        }
      }
    }});
    return rs.makespan;
  };
  EXPECT_LT(2 * makespan(true), makespan(false));
}

TEST(CycleAccounting, CommittedAndWastedCyclesSplit) {
  Machine m;
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    // One committing transaction with known work.
    c.xbegin();
    c.compute(1000);
    cell.store(c, 1);
    c.xend();
    // One explicitly aborted transaction with known work.
    try {
      c.xbegin();
      c.compute(2000);
      c.xabort(1);
    } catch (const sim::TxAbort&) {
    }
  }});
  const auto& t = rs.threads[0];
  EXPECT_GE(t.tx_cycles_committed, 1000u);
  EXPECT_LT(t.tx_cycles_committed, 1600u);
  EXPECT_GE(t.tx_cycles_wasted, 2000u);
  EXPECT_LT(t.tx_cycles_wasted, 2600u);
}

TEST(CycleAccounting, NestedRegionsCountOnce) {
  Machine m;
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    c.compute(500);
    c.xbegin();  // flat nesting
    c.compute(500);
    cell.store(c, 1);
    c.xend();
    c.compute(500);
    c.xend();
  }});
  const auto& t = rs.threads[0];
  EXPECT_GE(t.tx_cycles_committed, 1500u);
  EXPECT_LT(t.tx_cycles_committed, 2200u) << "not double-counted";
  EXPECT_EQ(t.tx_cycles_wasted, 0u);
}

TEST(PerfReport, ContainsTheHeadlineCounters) {
  Machine m;
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  RunStats rs = m.run({.threads = 2, .body = [&](Context& c) {
    for (int i = 0; i < 20; ++i) {
      try {
        c.xbegin();
        cell.store(c, cell.load(c) + 1);
        c.compute(200);
        c.xend();
      } catch (const sim::TxAbort&) {
      }
    }
  }});
  const std::string report = sim::perf_report(rs);
  for (const char* key :
       {"tx-start", "tx-commit", "tx-abort", "cycles-t", "cycles-ct",
        "tx-abort.conflict", "makespan-cycles"}) {
    EXPECT_NE(report.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace tsxhpc::sync
