// Property tests for the transact-aware containers: randomized operation
// sequences checked against std:: reference models, across all TM backends
// and under multi-threaded contention.
#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>

#include "containers/arena.h"
#include "containers/hashmap.h"
#include "containers/heap.h"
#include "containers/list.h"
#include "containers/queue.h"
#include "containers/treap.h"
#include "sim/rng.h"

namespace tsxhpc::containers {
namespace {

using sim::Context;
using sim::Machine;
using tmlib::Backend;
using tmlib::TmAccess;
using tmlib::TmRuntime;
using tmlib::TmThread;

class ContainerBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(ContainerBackends, ListMatchesReferenceModel) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmList list(m, arena);
  std::map<std::uint64_t, std::uint64_t> model;
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(11);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t key = rng.next_below(60);
      const std::uint64_t val = rng.next();
      const int op = static_cast<int>(rng.next_below(3));
      t.atomic([&](TmAccess& tm) {
        switch (op) {
          case 0: {
            const bool inserted = list.insert(tm, key, val);
            EXPECT_EQ(inserted, !model.count(key));
            if (inserted) model[key] = val;
            break;
          }
          case 1: {
            const auto removed = list.remove(tm, key);
            const auto it = model.find(key);
            EXPECT_EQ(removed.has_value(), it != model.end());
            if (removed) {
              EXPECT_EQ(*removed, it->second);
              model.erase(it);
            }
            break;
          }
          default: {
            const auto found = list.find(tm, key);
            const auto it = model.find(key);
            EXPECT_EQ(found.has_value(), it != model.end());
            if (found) EXPECT_EQ(*found, it->second);
          }
        }
      });
    }
    // Full-content check: in-order iteration matches the sorted model.
    t.atomic([&](TmAccess& tm) {
      auto it = model.begin();
      list.for_each(tm, [&](std::uint64_t k, std::uint64_t v) {
        EXPECT_NE(it, model.end());
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
        return true;
      });
      EXPECT_EQ(it, model.end());
      EXPECT_EQ(list.size(tm), model.size());
    });
  }});
}

TEST_P(ContainerBackends, TreapMatchesReferenceModel) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmMap map(m, arena);
  std::map<std::uint64_t, std::uint64_t> model;
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(23);
    for (int i = 0; i < 800; ++i) {
      const std::uint64_t key = rng.next_below(200);
      const std::uint64_t val = rng.next();
      const int op = static_cast<int>(rng.next_below(4));
      t.atomic([&](TmAccess& tm) {
        switch (op) {
          case 0: {
            const bool inserted = map.insert(tm, key, val);
            EXPECT_EQ(inserted, !model.count(key));
            if (inserted) model[key] = val;
            break;
          }
          case 1: {
            const auto removed = map.remove(tm, key);
            EXPECT_EQ(removed.has_value(), model.count(key) > 0);
            if (removed) {
              EXPECT_EQ(*removed, model[key]);
              model.erase(key);
            }
            break;
          }
          case 2: {
            const auto found = map.find(tm, key);
            EXPECT_EQ(found.has_value(), model.count(key) > 0);
            if (found) EXPECT_EQ(*found, model[key]);
            break;
          }
          default: {
            const auto ceil = map.ceil_key(tm, key);
            const auto it = model.lower_bound(key);
            EXPECT_EQ(ceil.has_value(), it != model.end());
            if (ceil) EXPECT_EQ(*ceil, it->first);
          }
        }
      });
    }
  }});
  // Structural check: in-order traversal is sorted and complete.
  std::vector<std::uint64_t> keys;
  map.peek_inorder(m, [&](std::uint64_t k, std::uint64_t) {
    keys.push_back(k);
  });
  ASSERT_EQ(keys.size(), model.size());
  auto it = model.begin();
  for (std::size_t i = 0; i < keys.size(); ++i, ++it) {
    EXPECT_EQ(keys[i], it->first);
  }
}

TEST_P(ContainerBackends, HashMapMatchesReferenceModel) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmHashMap map(m, arena, 64);
  std::map<std::uint64_t, std::uint64_t> model;
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(37);
    for (int i = 0; i < 600; ++i) {
      const std::uint64_t key = rng.next_below(150);
      const std::uint64_t val = rng.next();
      const int op = static_cast<int>(rng.next_below(4));
      t.atomic([&](TmAccess& tm) {
        switch (op) {
          case 0:
            EXPECT_EQ(map.insert(tm, key, val), !model.count(key));
            if (!model.count(key)) model[key] = val;
            break;
          case 1:
            map.put(tm, key, val);
            model[key] = val;
            break;
          case 2: {
            const auto removed = map.remove(tm, key);
            EXPECT_EQ(removed.has_value(), model.count(key) > 0);
            if (removed) model.erase(key);
            break;
          }
          default: {
            const auto found = map.find(tm, key);
            EXPECT_EQ(found.has_value(), model.count(key) > 0);
            if (found) EXPECT_EQ(*found, model[key]);
          }
        }
      });
    }
  }});
  std::size_t n = 0;
  map.peek_each(m, [&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(model[k], v);
    ++n;
  });
  EXPECT_EQ(n, model.size());
}

TEST_P(ContainerBackends, QueueIsFifo) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmQueue q(m, arena);
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    std::queue<std::uint64_t> model;
    sim::Xoshiro256 rng(5);
    for (int i = 0; i < 500; ++i) {
      t.atomic([&](TmAccess& tm) {
        if (rng.next_bool(0.55)) {
          const std::uint64_t v = rng.next();
          q.push(tm, v);
          model.push(v);
        } else {
          const auto popped = q.pop(tm);
          EXPECT_EQ(popped.has_value(), !model.empty());
          if (popped) {
            EXPECT_EQ(*popped, model.front());
            model.pop();
          }
        }
        EXPECT_EQ(q.size(tm), model.size());
      });
    }
  }});
}

TEST_P(ContainerBackends, HeapPopsInSortedOrder) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TmHeap heap(m, 256);
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        model;
    sim::Xoshiro256 rng(71);
    for (int i = 0; i < 600; ++i) {
      t.atomic([&](TmAccess& tm) {
        if (rng.next_bool(0.6) && model.size() < 256) {
          const std::uint64_t v = rng.next_below(10000);
          EXPECT_TRUE(heap.push(tm, v));
          model.push(v);
        } else {
          const auto popped = heap.pop_min(tm);
          EXPECT_EQ(popped.has_value(), !model.empty());
          if (popped) {
            EXPECT_EQ(*popped, model.top());
            model.pop();
          }
        }
      });
    }
  }});
}

TEST_P(ContainerBackends, ConcurrentMapInsertionsAllLand) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmMap map(m, arena);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  m.run({.threads = kThreads, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (int i = 0; i < kPerThread; ++i) {
      const std::uint64_t key = c.tid() * 10000 + i;
      t.atomic([&](TmAccess& tm) { map.insert(tm, key, key * 2); });
    }
  }});
  std::size_t n = 0;
  std::uint64_t prev = 0;
  bool first = true;
  map.peek_inorder(m, [&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k * 2);
    if (!first) EXPECT_GT(k, prev);
    prev = k;
    first = false;
    ++n;
  });
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_P(ContainerBackends, ConcurrentQueueConservesItems) {
  Machine m;
  TmRuntime rt(m, GetParam());
  TxArena arena(m);
  TmQueue q(m, arena);
  auto popped_sum = sim::Shared<std::uint64_t>::alloc(m, 0);
  auto popped_count = sim::Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kItems = 120;
  for (int i = 1; i <= kItems; ++i) q.seed(m, i);
  m.run({.threads = 4, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (;;) {
      bool done = false;
      t.atomic([&](TmAccess& tm) {
        done = false;  // body may re-execute after an abort
        const auto v = q.pop(tm);
        if (!v) {
          done = true;
          return;
        }
        // Must be annotated accesses: an unannotated (plain) store inside a
        // TL2 transaction would survive an abort and double-count.
        tm.write(popped_sum.addr(), tm.read(popped_sum.addr()) + *v);
        tm.write(popped_count.addr(), tm.read(popped_count.addr()) + 1);
      });
      if (done) break;
    }
  }});
  EXPECT_EQ(popped_count.peek(m), static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(popped_sum.peek(m),
            static_cast<std::uint64_t>(kItems) * (kItems + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ContainerBackends,
                         ::testing::Values(Backend::kSgl, Backend::kTl2,
                                           Backend::kTsx, Backend::kTicToc,
                                           Backend::kTicTocHybrid,
                                           Backend::kMvcc),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string name = to_string(info.param);
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(TxArena, ReusesFreedBlocksOutsideTxn) {
  Machine m;
  TxArena arena(m);
  m.run({.threads = 1, .body = [&](Context& c) {
    sim::Addr a = arena.alloc(c, 24);
    arena.free(c, a, 24);
    sim::Addr b = arena.alloc(c, 24);
    EXPECT_EQ(a, b) << "free list reuse";
  }});
}

TEST(TxArena, FreeInsideTxnDoesNotRecycle) {
  Machine m;
  TxArena arena(m);
  m.run({.threads = 1, .body = [&](Context& c) {
    sim::Addr a = arena.alloc(c, 24);
    c.xbegin();
    arena.free(c, a, 24);  // deferred (leaked): txn may abort
    c.xend();
    sim::Addr b = arena.alloc(c, 24);
    EXPECT_NE(a, b);
  }});
}

TEST(TxArena, AllocZeroes) {
  Machine m;
  TxArena arena(m);
  m.run({.threads = 1, .body = [&](Context& c) {
    sim::Addr a = arena.alloc(c, 64);
    m.heap().write_word(a, 0xFF, 8);
    arena.free(c, a, 64);
    sim::Addr b = arena.alloc(c, 64);
    ASSERT_EQ(a, b);
    EXPECT_EQ(m.heap().read_word(b, 8), 0u);
  }});
}

}  // namespace
}  // namespace tsxhpc::containers
