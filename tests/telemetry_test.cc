// Tests for the structured telemetry layer: determinism of the exported
// artifacts, zero observer effect on simulated timing, attempt-ring
// bounding, and the perf_report() / TraceLog regressions fixed alongside.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/machine.h"
#include "sim/perf.h"
#include "sim/shared.h"
#include "sim/telemetry.h"
#include "sim/trace.h"
#include "sync/elision.h"

namespace tsxhpc::sim {
namespace {

/// A small contended workload exercising elision commits, retries,
/// fallbacks, conflicts and futex traffic — every telemetry hook fires.
RunStats contended_run(Telemetry* tel, int threads = 4, int iters = 60,
                       std::string label = {}) {
  MachineConfig cfg;
  cfg.telemetry = tel;
  Machine m(cfg);
  sync::ElidedLock lock(m);
  auto cells = SharedArray<std::uint64_t>::alloc(m, 8, 0);
  return m.run({.threads = threads, .body = [&](Context& c) {
    for (int i = 0; i < iters; ++i) {
      lock.critical(c, [&] {
        auto cell = cells.at((c.tid() + i) % 8);
        cell.store(c, cell.load(c) + 1);
        c.compute(80);
      });
    }
  }, .label = std::move(label)});
}

TEST(Telemetry, ExportsAreByteIdenticalAcrossRuns) {
  TelemetryOptions opt;
  opt.collect_attempts = true;
  Telemetry a(opt);
  Telemetry b(opt);
  contended_run(&a, 4, 60, "golden");
  contended_run(&b, 4, 60, "golden");
  EXPECT_EQ(a.json("telemetry_test"), b.json("telemetry_test"));
  EXPECT_EQ(a.chrome_trace(), b.chrome_trace());
  // And the artifact is non-trivial: the run actually recorded something.
  ASSERT_EQ(a.runs().size(), 1u);
  EXPECT_TRUE(a.runs()[0].complete);
  EXPECT_GT(a.runs()[0].stats.total().tx_committed, 0u);
}

TEST(Telemetry, FileExportsAreAtomicRenames) {
  Telemetry tel;
  contended_run(&tel, 2, 20, "atomic");
  const std::string path = ::testing::TempDir() + "telemetry_test_atomic.json";
  ASSERT_TRUE(tel.write_json(path, "telemetry_test"));
  // write_json stages to <path>.tmp and renames into place: the artifact
  // exists with the full contents, the staging file does not.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "r"), nullptr);
  std::remove(path.c_str());
  // A failing write (unwritable directory) reports false and leaves neither
  // the artifact nor a stray .tmp behind.
  EXPECT_FALSE(tel.write_json("/nonexistent-dir/t.json", "telemetry_test"));
}

TEST(Telemetry, AttachingDoesNotPerturbSimulatedTiming) {
  Telemetry tel;
  const RunStats with = contended_run(&tel);
  const RunStats without = contended_run(nullptr);
  EXPECT_EQ(with.makespan, without.makespan);
  EXPECT_EQ(with.total().tx_started, without.total().tx_started);
  EXPECT_EQ(with.total().l1_misses, without.total().l1_misses);
}

TEST(Telemetry, RecordsLockSitesAndAttemptChains) {
  TelemetryOptions opt;
  opt.collect_attempts = true;
  Telemetry tel(opt);
  contended_run(&tel);
  const RunRecord& r = tel.runs().at(0);

  // The elided lock registered exactly one site, with outcomes accounted.
  ASSERT_EQ(r.locks.size(), 1u);
  const LockSiteStats& site = r.locks.begin()->second;
  EXPECT_EQ(site.kind, LockKind::kElided);
  EXPECT_GT(site.elided_commits, 0u);
  EXPECT_EQ(site.elided_commits + site.fallback_acquires, 4u * 60u);
  EXPECT_GT(site.elision_rate(), 0.0);
  EXPECT_LE(site.elision_rate(), 1.0);

  // Attempt records are per-thread chronological (threads interleave in the
  // ring in completion order, but each thread's clock only moves forward)
  // and attributed to that site.
  const auto attempts = r.attempts_in_order();
  ASSERT_FALSE(attempts.empty());
  std::map<ThreadId, Cycles> last_end;
  for (const auto& rec : attempts) {
    EXPECT_GE(rec.end, rec.start);
    EXPECT_GE(rec.end, last_end[rec.tid]);
    last_end[rec.tid] = rec.end;
    if (!rec.fallback) {
      EXPECT_EQ(rec.site, r.locks.begin()->first);
    }
  }
  // Lineage aggregates cover every section outcome.
  std::uint64_t sections = 0;
  for (auto n : r.committed_by_attempt) sections += n;
  for (auto n : r.fallback_after_attempts) sections += n;
  EXPECT_EQ(sections, 4u * 60u);
}

TEST(Telemetry, PolicyDecisionsReconcileWithAbortsAndFallbacks) {
  Telemetry tel;
  const RunStats rs = contended_run(&tel);
  const RunRecord& r = tel.runs().at(0);
  ASSERT_EQ(r.locks.size(), 1u);
  const LockSiteStats& site = r.locks.begin()->second;
  auto count = [&](PolicyDecision d) {
    return site.policy_decisions[static_cast<std::size_t>(d)];
  };
  // Exactly one decision per abort...
  EXPECT_EQ(count(PolicyDecision::kRetry) + count(PolicyDecision::kBackoff) +
                count(PolicyDecision::kLockWait) +
                count(PolicyDecision::kFallback),
            site.tx_aborts);
  // ...and every real acquisition is preceded by exactly one section-ending
  // decision or one adaptive skip.
  EXPECT_EQ(count(PolicyDecision::kFallback) + count(PolicyDecision::kSkip),
            site.fallback_acquires);
  EXPECT_GT(site.policy_decisions_total(), 0u);
  // The backoff sub-counter never exceeds its bucket.
  for (const ThreadStats& t : rs.threads) {
    EXPECT_LE(t.backoff_cycles,
              t.cycles_by_bucket[static_cast<std::size_t>(
                  CycleBucket::kTxWasted)]);
  }
}

TEST(Telemetry, AttemptRingDropsOldestWhenFull) {
  TelemetryOptions opt;
  opt.collect_attempts = true;
  opt.max_attempts = 16;
  Telemetry tel(opt);
  contended_run(&tel);
  const RunRecord& r = tel.runs().at(0);
  EXPECT_EQ(r.attempts.size(), 16u);
  EXPECT_GT(r.attempts_dropped, 0u);
  // The unrolled ring holds the *latest* records, per-thread in order.
  const auto attempts = r.attempts_in_order();
  ASSERT_EQ(attempts.size(), 16u);
  std::map<ThreadId, Cycles> last_end;
  for (const auto& rec : attempts) {
    EXPECT_GE(rec.end, last_end[rec.tid]);
    last_end[rec.tid] = rec.end;
  }
}

TEST(Telemetry, RunLabelsAdoptAndSuffix) {
  Telemetry tel;
  contended_run(&tel, 2, 4, "sweep/t4");
  // Re-announcing the same label means "another run of the same region":
  // the sticky suffixing kicks in.
  contended_run(&tel, 2, 4, "sweep/t4");
  contended_run(&tel, 2, 4);
  ASSERT_EQ(tel.runs().size(), 3u);
  EXPECT_EQ(tel.runs()[0].label, "sweep/t4");
  EXPECT_EQ(tel.runs()[1].label, "sweep/t4#2");
  EXPECT_EQ(tel.runs()[2].label, "sweep/t4#3");
}

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// no trailing garbage. Catches emitter bugs (unclosed scopes, stray commas
/// would unbalance nothing but malformed escapes would).
void expect_balanced_json(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\')
        ++i;
      else if (c == '"')
        in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_str);
  EXPECT_EQ(depth, 0);
}

TEST(Telemetry, JsonAndTraceAreStructurallyValid) {
  TelemetryOptions opt;
  opt.collect_attempts = true;
  Telemetry tel(opt);
  contended_run(&tel, 4, 60, "validity");
  const std::string j = tel.json("telemetry_test");
  expect_balanced_json(j);
  EXPECT_NE(j.find("\"schema\":\"tsxhpc-telemetry-v7\""), std::string::npos);
  EXPECT_NE(j.find("\"label\":\"validity\""), std::string::npos);
  EXPECT_NE(j.find("\"backoff_cycles\""), std::string::npos);
  EXPECT_NE(j.find("\"policy\""), std::string::npos);
  EXPECT_NE(j.find("\"llc_misses\""), std::string::npos);
  EXPECT_NE(j.find("\"mem_stall\""), std::string::npos);
  const std::string t = tel.chrome_trace();
  expect_balanced_json(t);
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("\"txn commit\""), std::string::npos);
}

TEST(Telemetry, V5SampleColumnsSumToRunTotals) {
  // The v5 interval columns (llc_misses, mem_stall) get an end_run tail
  // flush into the last bucket, so each column sums exactly to the run
  // total. (The v4 l1 columns deliberately keep their frozen, unflushed
  // semantics — goldens depend on those bytes.)
  Telemetry tel;
  const RunStats rs = contended_run(&tel, 4, 60, "sums");
  const RunRecord& r = tel.runs().at(0);
  ASSERT_FALSE(r.samples.empty());
  std::uint64_t llc = 0, stall = 0;
  for (const IntervalSample& s : r.samples) {
    llc += s.llc_misses;
    stall += s.mem_stall;
  }
  const ThreadStats tot = rs.total();
  EXPECT_EQ(llc, tot.llc_misses);
  EXPECT_EQ(stall, tot.bucket(CycleBucket::kMemStall));
}

TEST(PerfReport, GoldenSmallCounters) {
  RunStats rs;
  rs.threads.resize(1);
  ThreadStats& t = rs.threads[0];
  t.tx_started = 10;
  t.tx_committed = 8;
  t.tx_aborted[static_cast<size_t>(AbortCause::kConflict)] = 2;
  t.tx_cycles_committed = 800;
  t.tx_cycles_wasted = 200;
  t.tx_read_lines_evicted = 3;
  t.l1_hits = 100;
  t.l1_misses = 7;
  t.atomics = 4;
  t.syscalls = 1;
  rs.makespan = 12345;

  const std::string expected =
      "            10      tx-start\n"
      "             8      tx-commit\n"
      "             2      tx-abort                  #  20.0% of starts\n"
      "             2      tx-abort.conflict\n"
      "             0      tx-abort.capacity\n"
      "             0      tx-abort.explicit\n"
      "             0      tx-abort.syscall\n"
      "             0      tx-abort.capacity-read    # secondary-tracker "
      "losses\n"
      "          1000      cycles-t                  # cycles in "
      "transactions\n"
      "           800      cycles-ct                 # committed-transaction "
      "cycles\n"
      "           200      cycles-wasted             #  20.0% of "
      "transactional cycles\n"
      "             3      tx-read-lines-evicted     # secondary tracking\n"
      "           100      l1-hits\n"
      "             7      l1-misses\n"
      "             4      atomics\n"
      "             1      syscalls\n"
      "         12345      makespan-cycles\n"
      "  abort rate: 20.00% of started transactions\n"
      "  wasted cycles: 20.00% of transactional cycles\n";
  EXPECT_EQ(perf_report(rs), expected);
}

TEST(PerfReport, DoesNotTruncateWithLargeCounters) {
  // The old implementation rendered into a fixed 1536-byte buffer; with
  // 20-digit counters the report exceeds that and the tail was cut off.
  RunStats rs;
  rs.threads.resize(1);
  ThreadStats& t = rs.threads[0];
  t.tx_started = 18446744073709551615ULL;
  t.tx_committed = 18446744073709551615ULL;
  for (auto& a : t.tx_aborted) a = 1000000000000000000ULL;
  t.tx_cycles_committed = 18446744073709551615ULL;
  t.tx_read_lines_evicted = 18446744073709551615ULL;
  t.l1_hits = 18446744073709551615ULL;
  t.l1_misses = 18446744073709551615ULL;
  t.atomics = 18446744073709551615ULL;
  t.syscalls = 18446744073709551615ULL;
  rs.makespan = 18446744073709551615ULL;

  const std::string report = perf_report(rs);
  // All 19 lines survive (17 counters + 2 derived), none cut mid-way.
  std::size_t lines = 0;
  for (char c : report) lines += c == '\n';
  EXPECT_EQ(lines, 19u);
  // Every section survives, down to the final line.
  for (const char* label :
       {"tx-start", "tx-commit", "tx-abort.conflict", "tx-abort.capacity",
        "cycles-t", "cycles-ct", "cycles-wasted", "l1-hits", "l1-misses",
        "atomics", "syscalls", "makespan-cycles"}) {
    EXPECT_NE(report.find(label), std::string::npos) << label;
  }
  EXPECT_EQ(report.back(), '\n');
  EXPECT_NE(report.find("18446744073709551615      makespan-cycles\n"),
            std::string::npos);
}

TEST(TraceLog, DumpToPathWritesEvents) {
  Machine m;
  TraceLog trace;
  m.set_trace(&trace);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 1, .body = [&](Context& c) {
    c.xbegin();
    cell.store(c, 1);
    c.xend();
  }});
  m.set_trace(nullptr);

  const std::string path = ::testing::TempDir() + "telemetry_test_trace.txt";
  ASSERT_TRUE(trace.dump(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  buf[n] = '\0';
  const std::string contents(buf);
  EXPECT_NE(contents.find("t0"), std::string::npos);
  EXPECT_NE(contents.find("COMMIT"), std::string::npos);
}

}  // namespace
}  // namespace tsxhpc::sim
