// Malformed-input coverage for the minimal JSON parser. The sweep merger
// parses many artifacts this process did not write (per-cell telemetry from
// child benches, committed sweep baselines), so every corruption class must
// fail loudly with an offset-located error — never a silently wrong
// document.
#include "sim/json_parse.h"

#include <gtest/gtest.h>

#include <string>

namespace tsxhpc::sim {
namespace {

/// Parse and require failure; returns the error message for shape checks.
std::string parse_error(const std::string& text) {
  std::string err;
  const JsonValue v = JsonParser::parse(text, &err);
  EXPECT_TRUE(v.is_null()) << "expected parse failure for: " << text;
  EXPECT_FALSE(err.empty()) << "no error message for: " << text;
  return err;
}

TEST(JsonParse, WellFormedRoundTrip) {
  std::string err;
  const JsonValue v = JsonParser::parse(
      R"({"a":1,"b":[true,false,null],"c":{"d":"x\ny","e":-2.5e3}})", &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v["a"].as_u64(), 1u);
  EXPECT_EQ(v["b"].size(), 3u);
  EXPECT_TRUE(v["b"].at(0).as_bool());
  EXPECT_TRUE(v["b"].at(2).is_null());
  EXPECT_EQ(v["c"]["d"].as_string(), "x\ny");
  EXPECT_EQ(v["c"]["e"].as_double(), -2500.0);
}

TEST(JsonParse, MultiByteUtf8StringsSurvive) {
  std::string err;
  // "著" (3-byte) and "é" (2-byte) and a 4-byte emoji.
  const std::string text = "{\"s\":\"\xe8\x91\x97 \xc3\xa9 \xf0\x9f\x98\x80\"}";
  const JsonValue v = JsonParser::parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(v["s"].as_string(), "\xe8\x91\x97 \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonParse, TruncatedObjectFails) {
  parse_error("{\"runs\":[{\"label\":\"a\"}");
  parse_error("{\"a\":");
  parse_error("{\"a\"");
  parse_error("{");
  parse_error("[1,2");
  parse_error("\"unterminated");
}

TEST(JsonParse, ErrorsCarryTheOffset) {
  const std::string err = parse_error("{\"a\":1,\"b\":}");
  EXPECT_NE(err.find("offset"), std::string::npos) << err;
}

TEST(JsonParse, BadEscapesFail) {
  parse_error(R"({"a":"\q"})");        // unknown escape
  parse_error(R"({"a":"\u12"})");      // short \u
  parse_error(R"({"a":"\u12zz"})");    // non-hex \u
  parse_error("{\"a\":\"x\\");         // escape at end of input
}

TEST(JsonParse, DuplicateKeysFail) {
  const std::string err = parse_error(R"({"a":1,"a":2})");
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  // Nested objects are checked too.
  parse_error(R"({"outer":{"k":1,"k":1}})");
  // Same key at different nesting levels is fine.
  std::string ok_err;
  const JsonValue v = JsonParser::parse(R"({"a":{"a":1}})", &ok_err);
  EXPECT_TRUE(ok_err.empty()) << ok_err;
  EXPECT_EQ(v["a"]["a"].as_u64(), 1u);
}

TEST(JsonParse, NonUtf8BytesFail) {
  // 0xFF can never appear in UTF-8.
  parse_error(std::string("{\"a\":\"\xff\"}"));
  // Bare continuation byte without a lead.
  parse_error(std::string("{\"a\":\"\x80go\"}"));
  // Overlong-encoding lead bytes 0xC0/0xC1 are invalid.
  parse_error(std::string("{\"a\":\"\xc0\xaf\"}"));
  // Lead byte whose continuation is missing (truncated sequence).
  parse_error(std::string("{\"a\":\"\xe8\x91:\"}"));
}

TEST(JsonParse, UnescapedControlCharactersFail) {
  parse_error(std::string("{\"a\":\"x\ny\"}"));  // literal newline
  parse_error(std::string("{\"a\":\"x\x01y\"}"));
  // The escaped spellings still work, including \u00XX for control bytes.
  std::string err;
  const JsonValue v = JsonParser::parse(R"({"a":"x\ny\u0001z"})", &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(v["a"].as_string(), std::string("x\ny\x01z"));
}

TEST(JsonParse, BadLiteralsAndNumbersFail) {
  parse_error("{\"a\":tru}");
  parse_error("{\"a\":nul}");
  parse_error("{\"a\":+1}");
  parse_error("{\"a\":-}");
  parse_error("{\"a\":1} trailing");
}

}  // namespace
}  // namespace tsxhpc::sim
