// Unit tests for the virtual-time engine: determinism, ordering, blocking,
// deadlock detection, futexes, and error propagation.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/shared.h"

namespace tsxhpc::sim {

/// White-box access for scheduler-internals regression tests (friend of
/// Engine). Lets a test stage exact engine states that are awkward to reach
/// through a full Machine::run.
class EngineTestPeer {
 public:
  static void make_ready(Engine& e, ThreadId t, Cycles clock) {
    e.states_[t] = Engine::State::kReady;
    e.clocks_[t] = clock;
  }
  static void make_blocked(Engine& e, ThreadId t, Cycles clock) {
    e.states_[t] = Engine::State::kBlocked;
    e.clocks_[t] = clock;
  }
  static void make_running(Engine& e, ThreadId t, Cycles clock) {
    e.states_[t] = Engine::State::kRunning;
    e.clocks_[t] = clock;
    e.current_ = t;
  }
  static void clear_current(Engine& e) { e.current_ = -1; }
  static void set_deadline(Engine& e, Cycles d) { e.deadline_ = d; }
  static Cycles deadline(const Engine& e) { return e.deadline_; }
};

namespace {

TEST(Engine, SingleThreadClockAdvances) {
  Machine m;
  RunStats rs = m.run({.threads = 1, .body = [&](Context& c) {
    EXPECT_EQ(c.now(), 0u);
    c.compute(100);
    EXPECT_EQ(c.now(), 100u);
  }});
  EXPECT_EQ(rs.makespan, 100u);
}

TEST(Engine, MakespanIsMaxOverThreads) {
  Machine m;
  RunStats rs = m.run({.bodies = {
      [](Context& c) { c.compute(100); },
      [](Context& c) { c.compute(5000); },
      [](Context& c) { c.compute(300); },
  }});
  EXPECT_EQ(rs.makespan, 5000u);
  EXPECT_EQ(rs.threads[0].end_cycle, 100u);
  EXPECT_EQ(rs.threads[1].end_cycle, 5000u);
}

TEST(Engine, ThreadCountCappedByMachine) {
  Machine m;  // 8 hardware threads
  EXPECT_THROW(m.run({.threads = 9, .body = [](Context&) {}}), SimError);
}

TEST(Engine, VirtualTimeOrderingIsDeterministic) {
  // The sequence of fetch_add results must be identical across repeats.
  auto trace = [] {
    Machine m;
    auto counter = Shared<std::uint64_t>::alloc(m, 0);
    std::vector<std::vector<std::uint64_t>> seen(4);
    m.run({.threads = 4, .body = [&](Context& c) {
      Xoshiro256 rng(17 + c.tid());
      for (int i = 0; i < 300; ++i) {
        c.compute(rng.next_below(150));
        seen[c.tid()].push_back(counter.fetch_add(c, 1));
      }
    }});
    return seen;
  };
  auto a = trace();
  auto b = trace();
  EXPECT_EQ(a, b);
}

TEST(Engine, InterleavingRespectsVirtualTime) {
  // With quantum 0, a thread that computes less reaches the counter first.
  MachineConfig cfg;
  cfg.sched_quantum = 0;
  Machine m(cfg);
  auto order = SharedArray<std::uint64_t>::alloc(m, 2, 0);
  auto next = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.bodies = {
      [&](Context& c) {
        c.compute(10000);
        order.at(0).store(c, next.fetch_add(c, 1));
      },
      [&](Context& c) {
        c.compute(100);
        order.at(1).store(c, next.fetch_add(c, 1));
      },
  }});
  EXPECT_EQ(order.at(1).peek(m), 0u) << "thread 1 arrived first";
  EXPECT_EQ(order.at(0).peek(m), 1u);
}

TEST(Engine, FutexWaitWakeRoundTrip) {
  Machine m;
  auto word = Shared<std::uint32_t>::alloc(m, 0);
  auto data = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.bodies = {
      [&](Context& c) {
        // Consumer: wait until the producer flips the word.
        while (word.load(c) == 0) {
          c.futex_wait(word.addr(), 0);
        }
        EXPECT_EQ(data.load(c), 41u);
      },
      [&](Context& c) {
        c.compute(20000);
        data.store(c, 41);
        word.store(c, 1);
        c.futex_wake(word.addr(), 1);
      },
  }});
}

TEST(Engine, FutexWaitReturnsImmediatelyOnValueMismatch) {
  Machine m;
  auto word = Shared<std::uint32_t>::alloc(m, 5);
  m.run({.threads = 1, .body = [&](Context& c) {
    c.futex_wait(word.addr(), 0);  // *addr != expected: EAGAIN, no block
    SUCCEED();
  }});
}

TEST(Engine, WokenThreadClockJumpsToWaker) {
  Machine m;
  auto word = Shared<std::uint32_t>::alloc(m, 0);
  Cycles woken_at = 0;
  m.run({.bodies = {
      [&](Context& c) {
        c.futex_wait(word.addr(), 0);
        woken_at = c.now();
      },
      [&](Context& c) {
        c.compute(50000);
        word.store(c, 1);
        c.futex_wake(word.addr(), 1);
      },
  }});
  EXPECT_GT(woken_at, 50000u);
}

TEST(Engine, DeadlockDetected) {
  Machine m;
  auto word = Shared<std::uint32_t>::alloc(m, 0);
  EXPECT_THROW(m.run({.threads = 2, .body = [&](Context& c) {
                       c.futex_wait(word.addr(), 0);  // nobody will wake us
                     }}),
               SimError);
}

TEST(Engine, BodyExceptionPropagates) {
  Machine m;
  EXPECT_THROW(m.run({.threads = 4, .body = [&](Context& c) {
                       c.compute(10);
                       if (c.tid() == 2) throw std::runtime_error("boom");
                       for (int i = 0; i < 100000; ++i) c.compute(100);
                     }}),
               std::runtime_error);
  // The machine remains usable afterwards.
  RunStats rs = m.run({.threads = 2, .body = [](Context& c) { c.compute(5); }});
  EXPECT_EQ(rs.makespan, 5u);
}

TEST(Engine, LivelockGuardFires) {
  MachineConfig cfg;
  cfg.max_cycles = 10000;
  Machine m(cfg);
  EXPECT_THROW(m.run({.threads = 1, .body = [](Context& c) {
                       for (;;) c.compute(100);
                     }}),
               SimError);
}

TEST(Engine, OpenTransactionAtExitIsAnError) {
  Machine m;
  EXPECT_THROW(m.run({.threads = 1, .body = [](Context& c) { c.xbegin(); }}), SimError);
}

TEST(Engine, ManyThreadsManyWakeups) {
  // Stress: a barrier-like pattern with futexes, repeated.
  Machine m;
  auto word = Shared<std::uint32_t>::alloc(m, 0);
  auto arrived = Shared<std::uint32_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  m.run({.threads = kThreads, .body = [&](Context& c) {
    for (int r = 0; r < kRounds; ++r) {
      std::uint32_t n = arrived.fetch_add(c, 1) + 1;
      if (n == kThreads) {
        arrived.store(c, 0);
        word.fetch_add(c, 1);
        c.futex_wake(word.addr(), kThreads);
      } else {
        std::uint32_t round = static_cast<std::uint32_t>(r);
        while (word.load(c) <= round) {
          c.futex_wait(word.addr(), round);
        }
      }
    }
  }});
  EXPECT_EQ(word.peek(m), static_cast<std::uint32_t>(kRounds));
}

}  // namespace
}  // namespace tsxhpc::sim

namespace tsxhpc::sim {
namespace {

// Scheduling-quantum robustness: the quantum changes the interleaving (and
// hence timings) but must never change correctness-visible outcomes.
class QuantumSweep : public ::testing::TestWithParam<Cycles> {};

TEST_P(QuantumSweep, AtomicCounterExactUnderAnyQuantum) {
  MachineConfig cfg;
  cfg.sched_quantum = GetParam();
  Machine m(cfg);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 8, .body = [&](Context& c) {
    Xoshiro256 rng(c.tid());
    for (int i = 0; i < 250; ++i) {
      counter.fetch_add(c, 1);
      c.compute(rng.next_below(90));
    }
  }});
  EXPECT_EQ(counter.peek(m), 2000u);
}

TEST_P(QuantumSweep, TransactionalIsolationHoldsUnderAnyQuantum) {
  MachineConfig cfg;
  cfg.sched_quantum = GetParam();
  Machine m(cfg);
  // Two cells that must always be updated together (x == y invariant).
  // NOTE: a bare retry loop with a CONSTANT backoff livelocks under
  // requester-wins at quantum 0 (threads doom each other in lockstep
  // forever) — a faithful rendition of Section 2's warning that RTM alone
  // guarantees no forward progress. Randomized backoff breaks the symmetry
  // here; real code uses the lock fallback (ElidedLock) instead.
  auto x = Shared<std::uint64_t>::alloc(m, 0);
  auto y = Shared<std::uint64_t>::alloc(m, 0);
  std::uint64_t violations = 0;
  m.run({.threads = 8, .body = [&](Context& c) {
    Xoshiro256 rng(91 + c.tid());
    for (int i = 0; i < 150; ++i) {
      for (;;) {
        try {
          c.xbegin();
          const std::uint64_t vx = x.load(c);
          const std::uint64_t vy = y.load(c);
          if (vx != vy) violations++;  // would be a torn view
          x.store(c, vx + 1);
          c.compute(60);
          y.store(c, vy + 1);
          c.xend();
          break;
        } catch (const TxAbort&) {
          c.compute(50 + rng.next_below(400));
        }
      }
    }
  }});
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(x.peek(m), 1200u);
  EXPECT_EQ(y.peek(m), 1200u);
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(0u, 50u, 200u, 1000u, 10000u));

TEST(Engine, MachineReusableAcrossManyRuns) {
  // State (heap contents) persists across runs; stats/clocks reset.
  Machine m;
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  for (int round = 0; round < 5; ++round) {
    RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
      if (c.tid() == 0) cell.fetch_add(c, 1);
      c.compute(10);
    }});
    EXPECT_EQ(rs.total().tx_started, 0u) << "stats reset each run";
    EXPECT_LE(rs.makespan, 500u);
  }
  EXPECT_EQ(cell.peek(m), 5u) << "heap contents persist";
}

// Regression: wake() with no token holder (current() < 0 — e.g. a wake
// issued from the driver between dispatches) used to leave the standing
// quantum deadline untouched. The stale deadline predated the woken thread
// becoming runnable, so the next scheduled thread could overrun its quantum
// against the waker. wake() must zero the deadline so the next dispatch
// recomputes it.
TEST(Engine, WakeWithNoTokenHolderResetsDeadline) {
  MachineConfig cfg;
  Engine e(cfg, 2);
  EngineTestPeer::make_ready(e, 0, 100);
  EngineTestPeer::make_blocked(e, 1, 50);
  EngineTestPeer::clear_current(e);
  EngineTestPeer::set_deadline(e, 1'000'000);  // stale, from before the block
  e.wake(1, 400);
  EXPECT_FALSE(e.is_blocked(1));
  EXPECT_EQ(e.clock(1), 400u) << "woken clock jumps to the waker's";
  EXPECT_EQ(EngineTestPeer::deadline(e), 0u)
      << "next dispatch must recompute the deadline against the woken thread";
}

TEST(Engine, WakeWithTokenHolderRecomputesDeadline) {
  MachineConfig cfg;
  cfg.sched_quantum = 200;
  Engine e(cfg, 2);
  EngineTestPeer::make_running(e, 0, 1000);
  EngineTestPeer::make_blocked(e, 1, 50);
  EngineTestPeer::set_deadline(e, 1'000'000);
  e.wake(1, 700);
  EXPECT_EQ(e.clock(1), 700u);
  EXPECT_EQ(EngineTestPeer::deadline(e), 900u)
      << "deadline = woken thread's clock + quantum";
}

TEST(Engine, WakeOfNonBlockedThreadIsLost) {
  MachineConfig cfg;
  Engine e(cfg, 2);
  EngineTestPeer::make_running(e, 0, 1000);
  EngineTestPeer::make_ready(e, 1, 50);
  EngineTestPeer::set_deadline(e, 250);
  e.wake(1, 700);  // futex semantics: no waiter, the wake is dropped
  EXPECT_EQ(e.clock(1), 50u);
  EXPECT_EQ(EngineTestPeer::deadline(e), 250u);
}

}  // namespace
}  // namespace tsxhpc::sim
