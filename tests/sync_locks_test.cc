// Unit tests for the baseline lock primitives.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sync/locks.h"

namespace tsxhpc::sync {
namespace {

using sim::Context;
using sim::Machine;
using sim::MachineConfig;
using sim::RunStats;
using sim::Shared;

template <typename Lock>
void mutual_exclusion_check(int threads, int iters) {
  Machine m;
  Lock lock(m);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  auto in_cs = Shared<std::uint32_t>::alloc(m, 0);
  m.run({.threads = threads, .body = [&](Context& c) {
    for (int i = 0; i < iters; ++i) {
      lock.acquire(c);
      ASSERT_EQ(in_cs.fetch_add(c, 1), 0u) << "two threads inside the CS";
      std::uint64_t v = counter.load(c);
      c.compute(30);
      counter.store(c, v + 1);
      in_cs.fetch_add(c, static_cast<std::uint32_t>(-1));
      lock.release(c);
      c.compute(50);
    }
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(threads) * iters);
}

TEST(SpinLock, MutualExclusion) { mutual_exclusion_check<SpinLock>(8, 300); }
TEST(TicketLock, MutualExclusion) { mutual_exclusion_check<TicketLock>(8, 300); }
TEST(FutexMutex, MutualExclusion) { mutual_exclusion_check<FutexMutex>(8, 300); }

TEST(SpinLock, TryAcquire) {
  Machine m;
  SpinLock lock(m);
  m.run({.threads = 1, .body = [&](Context& c) {
    EXPECT_TRUE(lock.try_acquire(c));
    EXPECT_FALSE(lock.try_acquire(c));
    lock.release(c);
    EXPECT_TRUE(lock.try_acquire(c));
    lock.release(c);
  }});
}

TEST(FutexMutex, BlocksInsteadOfSpinning) {
  // Under contention the futex mutex must actually sleep (futex_waits > 0).
  Machine m;
  FutexMutex lock(m);
  RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    for (int i = 0; i < 50; ++i) {
      lock.acquire(c);
      c.compute(3000);  // long critical section forces contention
      lock.release(c);
    }
  }});
  EXPECT_GT(rs.total().futex_waits, 0u);
}

TEST(Barrier, AllThreadsMeet) {
  Machine m;
  constexpr int kThreads = 8;
  Barrier bar(m, kThreads);
  auto phase_counts = sim::SharedArray<std::uint32_t>::alloc(m, 3, 0);
  m.run({.threads = kThreads, .body = [&](Context& c) {
    sim::Xoshiro256 rng(c.tid() + 1);
    for (int p = 0; p < 3; ++p) {
      c.compute(rng.next_below(5000));
      phase_counts.at(p).fetch_add(c, 1);
      bar.wait(c);
      // After the barrier, everyone must have arrived in this phase.
      ASSERT_EQ(phase_counts.at(p).load(c), static_cast<std::uint32_t>(kThreads));
    }
  }});
}

TEST(Barrier, BlockingVariant) {
  Machine m;
  Barrier bar(m, 4, /*blocking=*/true);
  RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    c.compute((c.tid() + 1) * 20000);  // heavily skewed arrival
    bar.wait(c);
  }});
  EXPECT_GT(rs.total().futex_waits, 0u);
}

TEST(Guard, ReleasesOnScopeExit) {
  Machine m;
  SpinLock lock(m);
  m.run({.threads = 1, .body = [&](Context& c) {
    {
      Guard<SpinLock> g(c, lock);
      EXPECT_FALSE(lock.try_acquire(c));
    }
    EXPECT_TRUE(lock.try_acquire(c));
    lock.release(c);
  }});
}

TEST(Locks, ContendedLockCostsMoreThanUncontended) {
  // Sanity for the cost model: the same total critical-section work takes
  // longer (per-thread) when the lock bounces between cores.
  auto run_with = [](int threads) {
    Machine m;
    SpinLock lock(m);
    auto cell = Shared<std::uint64_t>::alloc(m, 0);
    RunStats rs = m.run({.threads = threads, .body = [&](Context& c) {
      for (int i = 0; i < 400; ++i) {
        lock.acquire(c);
        cell.store(c, cell.load(c) + 1);
        lock.release(c);
      }
    }});
    return static_cast<double>(rs.makespan);
  };
  const double t1 = run_with(1);
  const double t4 = run_with(4);
  // 4 threads do 4x the work fully serialized + transfer costs.
  EXPECT_GT(t4, 3.5 * t1);
}

}  // namespace
}  // namespace tsxhpc::sync
