// Property tests for the red-black tree, typed over both ordered-map
// implementations (TmRbMap and the treap TmMap): randomized operation
// sequences against std::map, plus RB-specific structural validation.
#include <gtest/gtest.h>

#include <map>

#include "containers/rbtree.h"
#include "containers/treap.h"
#include "sim/rng.h"

namespace tsxhpc::containers {
namespace {

using sim::Context;
using sim::Machine;
using tmlib::Backend;
using tmlib::TmAccess;
using tmlib::TmRuntime;
using tmlib::TmThread;

template <typename MapT>
class OrderedMaps : public ::testing::Test {};

using MapTypes = ::testing::Types<TmMap, TmRbMap>;
TYPED_TEST_SUITE(OrderedMaps, MapTypes);

TYPED_TEST(OrderedMaps, RandomOpsMatchStdMap) {
  for (Backend backend : {Backend::kSgl, Backend::kTl2, Backend::kTsx,
                          Backend::kTicToc, Backend::kTicTocHybrid,
                          Backend::kMvcc}) {
    Machine m;
    TmRuntime rt(m, backend);
    TxArena arena(m);
    TypeParam map(m, arena);
    std::map<std::uint64_t, std::uint64_t> model;
    m.run({.threads = 1, .body = [&](Context& c) {
      TmThread t(rt, c);
      sim::Xoshiro256 rng(404);
      for (int i = 0; i < 1200; ++i) {
        const std::uint64_t key = rng.next_below(300);
        const std::uint64_t val = rng.next();
        const int op = static_cast<int>(rng.next_below(5));
        t.atomic([&](TmAccess& tm) {
          switch (op) {
            case 0:
              EXPECT_EQ(map.insert(tm, key, val), !model.count(key));
              if (!model.count(key)) model[key] = val;
              break;
            case 1: {
              const auto removed = map.remove(tm, key);
              EXPECT_EQ(removed.has_value(), model.count(key) > 0);
              if (removed) {
                EXPECT_EQ(*removed, model[key]);
                model.erase(key);
              }
              break;
            }
            case 2: {
              const auto found = map.find(tm, key);
              EXPECT_EQ(found.has_value(), model.count(key) > 0);
              if (found) EXPECT_EQ(*found, model[key]);
              break;
            }
            case 3:
              EXPECT_EQ(map.update(tm, key, val), model.count(key) > 0);
              if (model.count(key)) model[key] = val;
              break;
            default: {
              const auto ceil = map.ceil_key(tm, key);
              const auto it = model.lower_bound(key);
              EXPECT_EQ(ceil.has_value(), it != model.end());
              if (ceil) EXPECT_EQ(*ceil, it->first);
            }
          }
        });
      }
    }});
    // Full-content equality.
    auto it = model.begin();
    std::size_t n = 0;
    map.peek_inorder(m, [&](std::uint64_t k, std::uint64_t v) {
      ASSERT_NE(it, model.end());
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
      ++n;
    });
    EXPECT_EQ(n, model.size()) << tmlib::to_string(backend);
  }
}

TYPED_TEST(OrderedMaps, ConcurrentMixedOpsKeepInvariants) {
  Machine m;
  TmRuntime rt(m, Backend::kTsx);
  TxArena arena(m);
  TypeParam map(m, arena);
  // Pre-populate.
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (std::uint64_t k = 0; k < 200; k += 2) {
      t.atomic([&](TmAccess& tm) { map.insert(tm, k, k); });
    }
  }});
  m.run({.threads = 8, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(13 + c.tid());
    for (int i = 0; i < 120; ++i) {
      const std::uint64_t key = rng.next_below(400);
      t.atomic([&](TmAccess& tm) {
        if (rng.next_bool(0.5)) {
          map.insert(tm, key, key * 3);
        } else {
          map.remove(tm, key);
        }
      });
    }
  }});
  // Values are always key*1 or key*3: check structural sanity.
  std::uint64_t prev = 0;
  bool first = true;
  map.peek_inorder(m, [&](std::uint64_t k, std::uint64_t v) {
    if (!first) EXPECT_GT(k, prev);
    EXPECT_TRUE(v == k || v == k * 3);
    prev = k;
    first = false;
  });
}

TEST(RbTree, StructuralInvariantsAfterChurn) {
  Machine m;
  TmRuntime rt(m, Backend::kSgl);
  TxArena arena(m);
  TmRbMap map(m, arena);
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    sim::Xoshiro256 rng(77);
    for (int round = 0; round < 40; ++round) {
      for (int i = 0; i < 30; ++i) {
        const std::uint64_t key = 1 + rng.next_below(500);
        t.atomic([&](TmAccess& tm) {
          if (rng.next_bool(0.6)) {
            map.insert(tm, key, key);
          } else {
            map.remove(tm, key);
          }
        });
      }
      // Red-black invariants must hold after EVERY batch.
      ASSERT_GE(map.peek_validate(m), 0) << "round " << round;
    }
  }});
}

TEST(RbTree, SequentialInsertStaysBalanced) {
  // Monotone insertion: the classic BST worst case. A valid red-black tree
  // keeps O(log n) depth (we check the black-height proxy via validate and
  // a direct depth probe through find cost).
  Machine m;
  TmRuntime rt(m, Backend::kSgl);
  TxArena arena(m);
  TmRbMap map(m, arena);
  constexpr std::uint64_t kN = 1024;
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (std::uint64_t k = 1; k <= kN; ++k) {
      t.atomic([&](TmAccess& tm) { map.insert(tm, k, k); });
    }
  }});
  const int bh = map.peek_validate(m);
  ASSERT_GE(bh, 0);
  EXPECT_LE(bh, 11) << "black height must stay logarithmic";
  std::size_t n = 0;
  map.peek_inorder(m, [&](std::uint64_t, std::uint64_t) { n++; });
  EXPECT_EQ(n, kN);
}

TEST(RbTree, AbortedInsertLeavesNoTrace) {
  // Under tsx, an aborted structural operation must roll back completely.
  Machine m;
  TmRuntime rt(m, Backend::kTsx);
  TxArena arena(m);
  TmRbMap map(m, arena);
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(rt, c);
    for (std::uint64_t k = 1; k <= 64; ++k) {
      t.atomic([&](TmAccess& tm) { map.insert(tm, k, k); });
    }
    // Raw transactional insert, explicitly aborted.
    try {
      c.xbegin();
      TmThread t2(rt, c);
      t2.atomic([&](TmAccess& tm) { map.insert(tm, 1000, 1000); });
      c.xabort(0x7);
    } catch (const sim::TxAbort&) {
    }
  }});
  EXPECT_GE(map.peek_validate(m), 0);
  std::size_t n = 0;
  map.peek_inorder(m, [&](std::uint64_t k, std::uint64_t) {
    EXPECT_LE(k, 64u);
    n++;
  });
  EXPECT_EQ(n, 64u);
}

}  // namespace
}  // namespace tsxhpc::containers
