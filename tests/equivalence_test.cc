// Cross-backend equivalence: a randomized program whose threads operate on
// DISJOINT key ranges has an interleaving-independent final state, so its
// outcome must be bit-identical across ALL TM backends and thread counts.
// This is the strongest end-to-end check of the transactional machinery:
// any isolation bug, lost write, stale read, or rollback leak in sgl, TL2,
// or the RTM elision path breaks the equality.
#include <gtest/gtest.h>

#include <map>

#include "containers/hashmap.h"
#include "containers/list.h"
#include "containers/queue.h"
#include "containers/rbtree.h"
#include "containers/treap.h"
#include "sim/rng.h"

namespace tsxhpc::containers {
namespace {

using sim::Context;
using sim::Machine;
using tmlib::Backend;
using tmlib::TmAccess;
using tmlib::TmRuntime;
using tmlib::TmThread;

/// Deterministic op stream for one thread over its private key range.
/// Returns a digest of the structures' final contents.
std::uint64_t run_program(Backend backend, int threads, std::uint64_t seed) {
  Machine m;
  TmRuntime rt(m, backend);
  TxArena arena(m);
  TmRbMap rb(m, arena);
  TmMap treap(m, arena);
  TmHashMap hash(m, arena, 256);
  TmList list(m, arena);

  constexpr std::uint64_t kRangePerThread = 1000;
  m.run({.threads = threads, .body = [&](Context& c) {
    TmThread t(rt, c);
    const std::uint64_t lo = 1 + c.tid() * kRangePerThread;
    sim::Xoshiro256 rng(seed * 1000003 + c.tid());
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t key = lo + rng.next_below(kRangePerThread);
      const std::uint64_t val = rng.next();
      const int structure = static_cast<int>(rng.next_below(4));
      const bool insert = rng.next_bool(0.65);
      t.atomic([&](TmAccess& tm) {
        switch (structure) {
          case 0:
            insert ? (void)rb.insert(tm, key, val) : (void)rb.remove(tm, key);
            break;
          case 1:
            insert ? (void)treap.insert(tm, key, val)
                   : (void)treap.remove(tm, key);
            break;
          case 2:
            insert ? (void)hash.insert(tm, key, val)
                   : (void)hash.remove(tm, key);
            break;
          default:
            insert ? (void)list.insert(tm, key, val)
                   : (void)list.remove(tm, key);
        }
      });
    }
  }});

  // Order-insensitive content digest over all four structures.
  std::uint64_t digest = 0x9E3779B97F4A7C15ULL;
  auto mix = [&](std::uint64_t k, std::uint64_t v) {
    digest += k * 0xBF58476D1CE4E5B9ULL + v;
    digest ^= digest >> 29;
  };
  rb.peek_inorder(m, mix);
  treap.peek_inorder(m, mix);
  std::uint64_t hsum = 0;
  hash.peek_each(m, [&](std::uint64_t k, std::uint64_t v) {
    hsum += k * 131 + v;  // bucket order varies by nothing, but be safe
  });
  digest ^= hsum;
  // List iteration needs a TM context; use a 1-thread region.
  std::uint64_t lsum = 0;
  TmRuntime srt(m, Backend::kSgl);
  m.run({.threads = 1, .body = [&](Context& c) {
    TmThread t(srt, c);
    t.atomic([&](TmAccess& tm) {
      list.for_each(tm, [&](std::uint64_t k, std::uint64_t v) {
        lsum += k * 31 + v;
        return true;
      });
    });
  }});
  return digest ^ lsum;
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, AllBackendsAgreeAtEveryThreadCount) {
  const std::uint64_t seed = GetParam();
  // Thread count fixes WHICH op streams run; for a given count the final
  // state must be identical across backends (disjoint key ranges make it
  // interleaving-independent).
  for (int threads : {1, 2, 4, 8}) {
    const std::uint64_t reference =
        run_program(Backend::kSgl, threads, seed);
    ASSERT_NE(reference, 0u);
    for (Backend b : {Backend::kTl2, Backend::kTsx, Backend::kTicToc,
                      Backend::kTicTocHybrid, Backend::kMvcc}) {
      EXPECT_EQ(run_program(b, threads, seed), reference)
          << tmlib::to_string(b) << " with " << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(1u, 42u, 1234567u));

}  // namespace
}  // namespace tsxhpc::containers
