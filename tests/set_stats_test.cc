// Cache-set-resolved telemetry (schema v5): the per-set counters each
// CacheLevel records under MachineConfig::set_stats are charged at the same
// sites as the ThreadStats totals, so every per-set column must sum exactly
// to its level total; capacity dooms are charged per set at rollback time
// keyed by the abort cause, so they must reconcile with the tx_aborted
// capacity classes; and named-object set attribution is pure geometry the
// tests can predict from the allocation layout. Set-targeted strides (see
// hierarchy_test.cc) make every scenario deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"
#include "sim/report.h"
#include "sim/json_parse.h"
#include "sim/shared.h"
#include "sim/telemetry.h"
#include "sync/elision.h"

namespace tsxhpc::sim {
namespace {

// Both default levels are 64-set, so lines (64 * line_bytes) apart collide
// in the same set at both levels.
constexpr std::size_t kSetStrideLines = 64;

const LevelSetStats* find_level(const RunRecord& r, const std::string& name) {
  for (const LevelSetStats& l : r.set_stats) {
    if (l.level == name) return &l;
  }
  return nullptr;
}

const NamedRegionRec* find_object(const RunRecord& r,
                                  const std::string& name) {
  for (const NamedRegionRec& o : r.set_objects) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

struct SetSums {
  std::uint64_t hits = 0, misses = 0, evictions = 0, xfers = 0;
  std::uint64_t back_inv = 0, w_dooms = 0, r_dooms = 0;
};

SetSums sum_level(const LevelSetStats& l) {
  SetSums s;
  for (const SetCounters& c : l.counters) {
    s.hits += c.hits;
    s.misses += c.misses;
    s.evictions += c.evictions;
    s.xfers += c.xfers;
    s.back_inv += c.back_invalidations;
    s.w_dooms += c.capacity_write_dooms;
    s.r_dooms += c.capacity_read_dooms;
  }
  return s;
}

/// A contended elision workload with cross-core sharing — exercises L1
/// hits/misses/evictions, LLC transfers and back-invalidations.
RunStats contended_run(Telemetry* tel, BackendKind backend = default_backend(),
                       const std::string& label = "setstats") {
  MachineConfig cfg;
  cfg.telemetry = tel;
  cfg.set_stats = true;
  cfg.backend = backend;
  Machine m(cfg);
  sync::ElidedLock lock(m);
  auto cells = SharedArray<std::uint64_t>::alloc(m, {.name = "cells"}, 512);
  RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
    for (int i = 0; i < 40; ++i) {
      lock.critical(c, [&] {
        for (int k = 0; k < 24; ++k) {
          auto cell = cells.at((c.tid() * 131 + i * 17 + k) % 512);
          cell.store(c, cell.load(c) + 1);
        }
        c.compute(20);
      });
    }
  }, .label = label});
  return rs;
}

TEST(SetStats, PerSetCountersSumToLevelTotals) {
  // The load-bearing v5 invariant: set-resolved counters are a partition of
  // the existing v4 level totals, not a parallel accounting that can drift.
  Telemetry tel;
  const RunStats rs = contended_run(&tel);
  const RunRecord& r = tel.runs().at(0);
  ASSERT_EQ(r.set_stats.size(), 5u);  // 4 per-core L1s + the LLC
  const ThreadStats tot = rs.total();

  SetSums l1;
  for (int c = 0; c < 4; ++c) {
    const LevelSetStats* lvl = find_level(r, "l1.c" + std::to_string(c));
    ASSERT_NE(lvl, nullptr);
    EXPECT_EQ(lvl->sets, 64u);
    EXPECT_EQ(lvl->ways, 8u);
    const SetSums s = sum_level(*lvl);
    l1.hits += s.hits;
    l1.misses += s.misses;
    l1.evictions += s.evictions;
  }
  EXPECT_EQ(l1.hits, tot.l1_hits);
  EXPECT_EQ(l1.misses, tot.l1_misses);

  const LevelSetStats* llc = find_level(r, "llc");
  ASSERT_NE(llc, nullptr);
  EXPECT_EQ(llc->sets, 64u);
  EXPECT_EQ(llc->ways, 10u);
  const SetSums s = sum_level(*llc);
  EXPECT_EQ(s.hits, tot.llc_hits);
  EXPECT_EQ(s.xfers, tot.xfers_in);
  EXPECT_EQ(s.misses, tot.llc_misses);
  EXPECT_EQ(s.evictions, tot.llc_evictions);
  // An L1 miss is served by exactly one of: a cross-core transfer, an LLC
  // hit, or an LLC fill — so the LLC-level per-set columns also partition
  // the L1 miss total.
  EXPECT_EQ(s.hits + s.xfers + s.misses, tot.l1_misses);

  // Occupancy snapshots are bounded by the geometry.
  for (const LevelSetStats& lvl : r.set_stats) {
    ASSERT_EQ(lvl.occupancy.size(), lvl.sets);
    for (std::uint32_t occ : lvl.occupancy) EXPECT_LE(occ, lvl.ways);
  }
}

TEST(SetStats, WriteCapacityDoomChargedToTheOverflowingL1Set) {
  // 9 same-set writes overflow the 8-way L1 set (hierarchy_test.cc pins the
  // mechanism); v5 additionally pins *where*: the doomed line's set, on the
  // aborting core's L1, carries exactly one capacity_write_doom.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  Machine m(cfg);
  const Addr base =
      m.alloc({.name = "probe", .bytes = 32 * kSetStrideLines * cfg.line_bytes});
  m.run({.threads = 1, .body = [&](Context& c) {
    try {
      c.xbegin();
      for (std::size_t i = 0; i < 9; ++i) {
        c.store(base + i * kSetStrideLines * cfg.line_bytes, i + 1);
      }
      c.xend();
    } catch (const TxAbort&) {
    }
  }});

  const RunRecord& r = tel.runs().at(0);
  const ThreadStats tot = r.stats.total();
  ASSERT_EQ(tot.tx_aborted[static_cast<size_t>(AbortCause::kCapacityWrite)],
            1u);
  const LevelSetStats* l1 = find_level(r, "l1.c0");
  ASSERT_NE(l1, nullptr);
  const std::uint32_t target =
      static_cast<std::uint32_t>(cfg.line_of(base)) & (l1->sets - 1);
  std::uint64_t dooms = 0;
  for (std::uint32_t set = 0; set < l1->sets; ++set) {
    dooms += l1->counters[set].capacity_write_dooms;
    if (set != target) {
      EXPECT_EQ(l1->counters[set].capacity_write_dooms, 0u) << set;
    }
  }
  EXPECT_EQ(dooms, 1u);
  EXPECT_EQ(l1->counters[target].capacity_write_dooms, 1u);
  // The whole probe strides one set: every L1 eviction it caused lands
  // there too, and no other set saw any.
  for (std::uint32_t set = 0; set < l1->sets; ++set) {
    if (set != target) EXPECT_EQ(l1->counters[set].evictions, 0u) << set;
  }
  EXPECT_GE(l1->counters[target].evictions, 1u);
}

TEST(SetStats, ReadCapacityDoomAndDrawsChargedToTheLlcSet) {
  // 11 same-set reads overflow the 10-way LLC set with probability 1.0:
  // exactly one capacity_read_doom, in the doomed line's LLC set, and the
  // doom-draw lottery count reconciles with it (prob 1.0: every draw on a
  // read-set line dooms, and only one eviction hit a read-set line).
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  cfg.read_evict_abort_prob = 1.0;
  Machine m(cfg);
  const Addr base =
      m.alloc({.name = "probe", .bytes = 32 * kSetStrideLines * cfg.line_bytes});
  m.run({.threads = 1, .body = [&](Context& c) {
    try {
      c.xbegin();
      for (std::size_t i = 0; i < 11; ++i) {
        (void)c.load(base + i * kSetStrideLines * cfg.line_bytes);
      }
      c.xend();
    } catch (const TxAbort&) {
    }
  }});

  const RunRecord& r = tel.runs().at(0);
  const ThreadStats tot = r.stats.total();
  ASSERT_EQ(tot.tx_aborted[static_cast<size_t>(AbortCause::kCapacityRead)],
            1u);
  const LevelSetStats* llc = find_level(r, "llc");
  ASSERT_NE(llc, nullptr);
  const std::uint32_t target =
      static_cast<std::uint32_t>(cfg.line_of(base)) & (llc->sets - 1);
  SetSums s = sum_level(*llc);
  EXPECT_EQ(s.r_dooms, 1u);
  EXPECT_EQ(s.w_dooms, 0u);
  EXPECT_EQ(llc->counters[target].capacity_read_dooms, 1u);
  EXPECT_GE(llc->counters[target].doom_draws, 1u);
  for (std::uint32_t set = 0; set < llc->sets; ++set) {
    if (set != target) EXPECT_EQ(llc->counters[set].doom_draws, 0u) << set;
  }
}

TEST(SetStats, CapacityDoomsReconcileWithAbortCauseTotals) {
  // Aggregate reconciliation on a mixed workload: summed over every level
  // and set, write dooms equal the kCapacityWrite abort count and read
  // dooms the kCapacityRead count.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  cfg.read_evict_abort_prob = 0.3;
  Machine m(cfg);
  const Addr base =
      m.alloc(32 * kSetStrideLines * cfg.line_bytes, 64);
  m.run({.threads = 2, .body = [&](Context& c) {
    for (int rep = 0; rep < 8; ++rep) {
      try {
        c.xbegin();
        for (std::size_t i = 0; i < 12; ++i) {
          const Addr a = base + i * kSetStrideLines * cfg.line_bytes;
          if (rep % 2 == 0) {
            c.store(a, rep);
          } else {
            (void)c.load(a);
          }
        }
        c.xend();
      } catch (const TxAbort&) {
      }
    }
  }});

  const RunRecord& r = tel.runs().at(0);
  const ThreadStats tot = r.stats.total();
  std::uint64_t w = 0, rd = 0;
  for (const LevelSetStats& lvl : r.set_stats) {
    const SetSums s = sum_level(lvl);
    w += s.w_dooms;
    rd += s.r_dooms;
  }
  EXPECT_EQ(w,
            tot.tx_aborted[static_cast<size_t>(AbortCause::kCapacityWrite)]);
  EXPECT_EQ(rd,
            tot.tx_aborted[static_cast<size_t>(AbortCause::kCapacityRead)]);
  EXPECT_GT(w + rd, 0u);  // the workload actually aborted
}

TEST(SetStats, NamedObjectSetAttributionMatchesAddressLayout) {
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  Machine m(cfg);
  // `wide` spans more lines than there are sets: covers every set, in both
  // levels. `narrow` spans exactly 3 lines starting at a known set.
  auto wide = SharedArray<std::uint64_t>::alloc(
      m, {.name = "wide"},
      2 * kSetStrideLines * cfg.line_bytes / sizeof(std::uint64_t));
  const Addr narrow = m.alloc({.name = "narrow", .bytes = 3 * cfg.line_bytes});
  (void)wide;
  m.run({.threads = 1, .body = [&](Context& c) { (void)c.load(narrow); }});

  const RunRecord& r = tel.runs().at(0);
  EXPECT_EQ(r.line_bytes, cfg.line_bytes);
  const NamedRegionRec* w = find_object(r, "wide");
  const NamedRegionRec* n = find_object(r, "narrow");
  ASSERT_NE(w, nullptr);
  ASSERT_NE(n, nullptr);

  EXPECT_EQ(w->lines, 2 * kSetStrideLines);
  EXPECT_EQ(w->l1_sets_covered, cfg.l1_sets());    // saturates at the geometry
  EXPECT_EQ(w->llc_sets_covered, cfg.llc_sets());

  EXPECT_EQ(n->base, narrow);
  EXPECT_EQ(n->bytes, 3u * cfg.line_bytes);
  EXPECT_EQ(n->lines, 3u);
  EXPECT_EQ(n->l1_sets_covered, 3u);
  EXPECT_EQ(n->llc_sets_covered, 3u);
  EXPECT_EQ(n->l1_set_start, static_cast<std::uint32_t>(cfg.line_of(narrow)) &
                                 (cfg.l1_sets() - 1));
  EXPECT_EQ(n->llc_set_start, static_cast<std::uint32_t>(cfg.line_of(narrow)) &
                                  (cfg.llc_sets() - 1));
}

TEST(SetStats, PerSliceCountersSumToLlcTotalsOnSlicedMachine) {
  // The v6 decomposition invariants: slice counters partition the LLC level
  // totals, socket counters partition mem_accesses and llc_misses, and the
  // per-set tables (re-keyed "llc.s<i>" when sliced) agree with the slice
  // counters they resolve.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  cfg.num_cores = 8;
  cfg.smt_per_core = 1;
  cfg.topology.num_sockets = 2;
  cfg.topology.llc_slices = 4;
  Machine m(cfg);
  auto cells = SharedArray<std::uint64_t>::alloc(m, {.name = "cells"}, 512);
  const RunStats rs = m.run({.threads = 8, .body = [&](Context& c) {
    for (int i = 0; i < 40; ++i) {
      for (int k = 0; k < 24; ++k) {
        auto cell = cells.at((c.tid() * 131 + i * 17 + k) % 512);
        cell.store(c, cell.load(c) + 1);
      }
    }
  }, .label = "sliced"});
  const ThreadStats tot = rs.total();
  const RunRecord& r = tel.runs().at(0);
  const TopologyRec& topo = r.topology;
  ASSERT_EQ(topo.slices, 4);
  ASSERT_EQ(topo.sockets, 2);
  ASSERT_EQ(topo.slice_stats.size(), 4u);
  ASSERT_EQ(topo.socket_stats.size(), 2u);

  SliceStats slice_sum;
  for (const SliceStats& s : topo.slice_stats) {
    slice_sum.hits += s.hits;
    slice_sum.misses += s.misses;
    slice_sum.evictions += s.evictions;
    slice_sum.xfers += s.xfers;
  }
  EXPECT_EQ(slice_sum.hits, tot.llc_hits);
  EXPECT_EQ(slice_sum.misses, tot.llc_misses);
  EXPECT_EQ(slice_sum.evictions, tot.llc_evictions);
  EXPECT_EQ(slice_sum.xfers, tot.xfers_in);

  std::uint64_t accesses = 0, dram_local = 0, dram_remote = 0;
  for (const SocketStats& s : topo.socket_stats) {
    accesses += s.accesses;
    dram_local += s.dram_local;
    dram_remote += s.dram_remote;
  }
  EXPECT_EQ(accesses, tot.mem_accesses);
  EXPECT_EQ(dram_local + dram_remote, tot.llc_misses);

  // Sliced machines re-key the per-set LLC tables "llc.s<i>", one per
  // slice; each table's sums match its slice's counters exactly.
  EXPECT_EQ(find_level(r, "llc"), nullptr);
  ASSERT_EQ(r.set_stats.size(), 12u);  // 8 per-core L1s + 4 LLC slices
  for (int i = 0; i < 4; ++i) {
    const LevelSetStats* lvl = find_level(r, "llc.s" + std::to_string(i));
    ASSERT_NE(lvl, nullptr) << i;
    const SetSums s = sum_level(*lvl);
    EXPECT_EQ(s.hits, topo.slice_stats[i].hits) << i;
    EXPECT_EQ(s.misses, topo.slice_stats[i].misses) << i;
    EXPECT_EQ(s.evictions, topo.slice_stats[i].evictions) << i;
    EXPECT_EQ(s.xfers, topo.slice_stats[i].xfers) << i;
  }
}

TEST(SetStats, ArtifactIsByteIdenticalAcrossBackends) {
  // The v5 set_stats block must not leak host scheduling: fiber and OS
  // thread backends produce the same artifact byte for byte, apart from the
  // run's own `backend` name tag.
  Telemetry fiber_tel, thread_tel;
  contended_run(&fiber_tel, BackendKind::kFiber);
  contended_run(&thread_tel, BackendKind::kThread);
  std::string fiber_json = fiber_tel.json("set_stats_test");
  const std::string thread_json = thread_tel.json("set_stats_test");
  const std::string from = "\"backend\":\"fiber\"";
  const std::size_t at = fiber_json.find(from);
  ASSERT_NE(at, std::string::npos);
  fiber_json.replace(at, from.size(), "\"backend\":\"thread\"");
  EXPECT_EQ(fiber_json, thread_json);
}

TEST(SetStats, DisabledRunsEmitNoSetStatsBlock) {
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;  // set_stats left at the default (off)
  Machine m(cfg);
  auto cell = Shared<std::uint64_t>::alloc(m, 0);
  m.run({.threads = 1, .body = [&](Context& c) { cell.store(c, 1); }});
  EXPECT_TRUE(tel.runs().at(0).set_stats.empty());
  const std::string j = tel.json("set_stats_test");
  EXPECT_EQ(j.find("\"set_stats\""), std::string::npos);
  // The schema is still v6 — the block is an optional extension, not a
  // schema fork.
  EXPECT_NE(j.find("\"schema\":\"tsxhpc-telemetry-v7\""), std::string::npos);
}

TEST(SetStats, HeatmapRendererShowsTargetedObjectAndGatesOnV5Block) {
  // End-to-end through the artifact: a set-targeted named object shows up
  // in the heatmap's hot-set attribution; artifacts without the block (or
  // a filter matching no level) return false with an explanation.
  Telemetry tel;
  MachineConfig cfg;
  cfg.telemetry = &tel;
  cfg.set_stats = true;
  Machine m(cfg);
  const Addr base =
      m.alloc({.name = "adversary", .bytes = 32 * kSetStrideLines * cfg.line_bytes});
  m.run({.threads = 1, .body = [&](Context& c) {
    for (std::size_t i = 0; i < 12; ++i) {
      c.store(base + i * kSetStrideLines * cfg.line_bytes, i);
    }
  }});

  std::string err;
  const JsonValue doc = JsonParser::parse(tel.json("set_stats_test"), &err);
  ASSERT_EQ(err, "");
  std::string out;
  ASSERT_TRUE(render_set_heatmaps(doc, "all", out)) << out;
  EXPECT_NE(out.find("adversary"), std::string::npos) << out;
  EXPECT_NE(out.find("llc"), std::string::npos);
  out.clear();
  EXPECT_TRUE(render_set_heatmaps(doc, "l1.c0", out)) << out;
  out.clear();
  EXPECT_FALSE(render_set_heatmaps(doc, "l1.c99", out));
  EXPECT_NE(out.find("no cache level matches"), std::string::npos) << out;

  // A run recorded without --set-stats has no block to render.
  Telemetry off;
  MachineConfig plain;
  plain.telemetry = &off;
  Machine m2(plain);
  auto cell = Shared<std::uint64_t>::alloc(m2, 0);
  m2.run({.threads = 1, .body = [&](Context& c) { cell.store(c, 1); }});
  const JsonValue doc2 = JsonParser::parse(off.json("set_stats_test"), &err);
  ASSERT_EQ(err, "");
  out.clear();
  EXPECT_FALSE(render_set_heatmaps(doc2, "all", out));
  EXPECT_NE(out.find("--set-stats"), std::string::npos) << out;

  // The HTML dashboard renders the same artifact without external assets.
  const std::string html = render_html(doc);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("adversary"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

}  // namespace
}  // namespace tsxhpc::sim
