// Tests for the OpenMP-flavoured compatibility layer, including a port of
// the paper's Listing 1 (graphCluster's test-lock / set-lock double path)
// and Listing 2 (ua's atomic mortar gathers).
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "sync/omp.h"

namespace tsxhpc::omp {
namespace {

using sim::Context;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;

TEST(OmpShim, ParallelForStaticCoversEveryIndexOnce) {
  Machine m;
  auto hits = SharedArray<std::uint64_t>::alloc(m, 1000, 0);
  parallel_for(m, 8, 1000, [&](Context& c, std::size_t i) {
    hits.at(i).fetch_add(c, 1);
  });
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits.at(i).peek(m), 1u) << i;
  }
}

TEST(OmpShim, ParallelForDynamicCoversEveryIndexOnce) {
  Machine m;
  auto hits = SharedArray<std::uint64_t>::alloc(m, 777, 0);
  parallel_for(
      m, 8, 777,
      [&](Context& c, std::size_t i) { hits.at(i).fetch_add(c, 1); },
      Schedule::kDynamic, 5);
  for (std::size_t i = 0; i < 777; ++i) {
    EXPECT_EQ(hits.at(i).peek(m), 1u) << i;
  }
}

TEST(OmpShim, AtomicAddIntegralAndFloating) {
  Machine m;
  auto icell = Shared<std::uint64_t>::alloc(m, 0);
  auto fcell = Shared<double>::alloc(m, 0.0);
  m.run({.threads = 8, .body = [&](Context& c) {
    for (int i = 0; i < 100; ++i) {
      atomic_add<std::uint64_t>(c, icell, 1);
      atomic_add(c, fcell, 0.5);
    }
  }});
  EXPECT_EQ(icell.peek(m), 800u);
  EXPECT_DOUBLE_EQ(fcell.peek(m), 400.0);
}

TEST(OmpShim, CriticalMutualExclusion) {
  for (bool elide : {false, true}) {
    Machine m;
    Critical crit(m, elide);
    auto counter = Shared<std::uint64_t>::alloc(m, 0);
    m.run({.threads = 8, .body = [&](Context& c) {
      for (int i = 0; i < 200; ++i) {
        crit.run(c, [&] { counter.store(c, counter.load(c) + 1); });
      }
    }});
    EXPECT_EQ(counter.peek(m), 1600u) << "elide=" << elide;
    if (elide) EXPECT_GT(crit.stats().elided_commits, 0u);
  }
}

TEST(OmpShim, CriticalConsumesTheMachineTxPolicy) {
  // The shim has no retry loop of its own: elided criticals delegate to
  // ElidedLock, which takes its abort/retry/fallback decisions from the
  // machine-selected TxPolicy. Drive every policy through a workload with
  // conflicts (retries), an over-capacity section (fallback), and enough
  // repetitions for the adaptive machinery to engage.
  sim::Cycles paper_span = 0;
  for (sim::TxPolicyKind kind :
       {sim::TxPolicyKind::kPaper, sim::TxPolicyKind::kNoHint,
        sim::TxPolicyKind::kExpoBackoff, sim::TxPolicyKind::kAdaptiveSite}) {
    sim::MachineConfig mc;
    mc.tx_policy = kind;
    Machine m(mc);
    Critical crit(m, /*elide=*/true);
    auto counter = Shared<std::uint64_t>::alloc(m, 0);
    const auto& cfg = m.config();
    const std::size_t lines = cfg.l1_ways + 2;
    const std::size_t stride = cfg.l1_sets() * cfg.line_bytes;
    sim::Addr big = m.alloc(stride * lines, 64);
    sim::RunStats rs = m.run({.threads = 4, .body = [&](Context& c) {
      for (int i = 0; i < 50; ++i) {
        if (i % 10 == 3 && c.tid() == 1) {
          crit.run(c, [&] {  // cannot fit: must fall back under any policy
            for (std::size_t j = 0; j < lines; ++j) {
              c.store(big + j * stride, j);
            }
          });
        } else {
          crit.run(c, [&] { counter.store(c, counter.load(c) + 1); });
        }
      }
    }});
    EXPECT_EQ(counter.peek(m), 4u * 50u - 5u)
        << "mutual exclusion under policy " << sim::to_string(kind);
    EXPECT_GT(crit.stats().elided_commits, 0u) << sim::to_string(kind);
    EXPECT_GT(crit.stats().fallback_acquires, 0u)
        << "oversized sections must fall back under " << sim::to_string(kind);
    if (kind == sim::TxPolicyKind::kPaper) {
      paper_span = rs.makespan;
    } else {
      EXPECT_NE(rs.makespan, paper_span)
          << sim::to_string(kind) << " must steer the shim differently";
    }
  }
}

TEST(OmpShim, Listing1DoublePathBehavesLikeALock) {
  // The paper's Listing 1: omp_test_lock fast path, omp_set_lock slow path.
  Machine m;
  constexpr std::size_t kVertices = 64;
  std::vector<Lock> locks;
  for (std::size_t i = 0; i < kVertices; ++i) locks.emplace_back(m);
  auto status = SharedArray<std::uint64_t>::alloc(m, kVertices, 0);
  std::uint64_t fast = 0, slow = 0;
  m.run({.threads = 8, .body = [&](Context& c) {
    sim::Xoshiro256 rng(c.tid() + 1);
    for (int i = 0; i < 150; ++i) {
      const std::size_t v = rng.next_below(kVertices);
      if (locks[v].test(c)) {  // non-blocking path
        status.at(v).store(c, status.at(v).load(c) + 1);
        c.compute(200);
        locks[v].unset(c);
        fast++;  // host counter: token-serialized
      } else {  // blocking path
        locks[v].set(c);
        status.at(v).store(c, status.at(v).load(c) + 1);
        c.compute(200);
        locks[v].unset(c);
        slow++;
      }
    }
  }});
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < kVertices; ++v) total += status.at(v).peek(m);
  EXPECT_EQ(total, 8u * 150u);
  EXPECT_GT(slow, 0u) << "contention must exercise the blocking path";
  EXPECT_GT(fast, slow) << "but the fast path should dominate";
}

TEST(OmpShim, Listing2AtomicGathersSumExactly) {
  // The paper's Listing 2: four `#pragma omp atomic` adds per point.
  Machine m;
  constexpr std::size_t kMortars = 128;
  constexpr std::size_t kPoints = 512;
  auto tmor = SharedArray<double>::alloc(m, kMortars, 0.0);
  const double third = 1.0 / 3.0;
  parallel_for(m, 8, kPoints, [&](Context& c, std::size_t p) {
    sim::SplitMix64 h(p);
    for (int j = 0; j < 4; ++j) {
      const std::size_t ig = h.next() % kMortars;
      atomic_add(c, tmor.at(ig), (1.0 + p % 7) * third);
    }
  });
  double total = 0, expect = 0;
  for (std::size_t i = 0; i < kMortars; ++i) total += tmor.at(i).peek(m);
  for (std::size_t p = 0; p < kPoints; ++p) {
    expect += 4 * (1.0 + p % 7) * third;
  }
  EXPECT_NEAR(total, expect, 1e-6 * expect);
}

}  // namespace
}  // namespace tsxhpc::omp
