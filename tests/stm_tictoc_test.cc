// Unit and property tests for the TicToc timestamp-ordering OCC.
#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stm/tictoc.h"

namespace tsxhpc::stm {
namespace {

using sim::Context;
using sim::Machine;
using sim::Shared;
using sim::SharedArray;

TEST(TicToc, TsWordPackingRoundTrips) {
  for (std::uint64_t wts :
       {std::uint64_t{0}, std::uint64_t{2}, std::uint64_t{1000},
        TicTocSpace::kWtsMax}) {
    for (std::uint64_t delta :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{77}}) {
      for (bool locked : {false, true}) {
        const std::uint64_t w = TicTocSpace::pack(wts, wts + delta, locked);
        EXPECT_EQ(TicTocSpace::wts(w), wts);
        EXPECT_EQ(TicTocSpace::rts(w), wts + delta);
        EXPECT_EQ(TicTocSpace::locked(w), locked);
      }
    }
  }
  // The delta field saturates instead of overflowing into garbage.
  const std::uint64_t w =
      TicTocSpace::pack(10, 10 + TicTocSpace::kDeltaMax + 5, false);
  EXPECT_EQ(TicTocSpace::wts(w), 10u);
  EXPECT_EQ(TicTocSpace::rts(w), 10 + TicTocSpace::kDeltaMax);
}

TEST(TicToc, ReadYourOwnWrites) {
  Machine m;
  TicTocSpace space(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 3);
  m.run({.threads = 1, .body = [&](Context& c) {
    TicTocTx tx(space);
    tx.begin(c);
    EXPECT_EQ(tx.read(c, cell.addr()), 3u);
    tx.write(c, cell.addr(), 9);
    EXPECT_EQ(tx.read(c, cell.addr()), 9u);
    EXPECT_EQ(cell.peek(m), 3u) << "no write-back before commit";
    tx.commit(c);
  }});
  EXPECT_EQ(cell.peek(m), 9u);
}

TEST(TicToc, SubWordWritesMerge) {
  Machine m;
  TicTocSpace space(m);
  sim::Addr a = m.alloc(8);
  m.heap().write_word(a, 0x1111111111111111ULL, 8);
  m.run({.threads = 1, .body = [&](Context& c) {
    TicTocTx tx(space);
    tx.begin(c);
    tx.write(c, a, 0xAB, 1);
    tx.write(c, a + 4, 0xCDEF, 2);
    EXPECT_EQ(tx.read(c, a, 1), 0xABu);
    tx.commit(c);
  }});
  EXPECT_EQ(m.heap().read_word(a, 8), 0x1111CDEF111111ABULL);
}

TEST(TicToc, RtsExtensionSavesMerelyOldReads) {
  // Thread 0 reads A early, then commits a write to B *after* thread 1 has
  // advanced B's timestamps. Its commit_ts exceeds A's rts, but A itself
  // never changed — TicToc extends A's rts in place instead of aborting
  // (TL2 would abort here: the clock moved past the snapshot).
  sim::MachineConfig cfg;
  cfg.sched_quantum = 0;
  Machine m(cfg);
  TicTocSpace space(m);
  auto a = Shared<std::uint64_t>::alloc(m, 1);
  auto b = Shared<std::uint64_t>::alloc(m, 2);
  std::uint64_t extensions = 0, aborts = 0;
  m.run({.bodies = {
      [&](Context& c) {
        TicTocTx tx(space);
        tx.begin(c);
        (void)tx.read(c, a.addr());
        for (int i = 0; i < 100; ++i) c.compute(100);  // let thread 1 commit
        tx.write(c, b.addr(), 20);
        tx.commit(c);
        extensions = tx.read_set_extensions();
        aborts = tx.aborts();
      },
      [&](Context& c) {
        c.compute(500);
        TicTocTx tx(space);
        tx.begin(c);
        (void)tx.read(c, b.addr());
        tx.write(c, b.addr(), 10);
        tx.commit(c);
      },
  }});
  EXPECT_EQ(aborts, 0u);
  EXPECT_GE(extensions, 1u);
  EXPECT_EQ(b.peek(m), 20u);
}

class TicTocModes : public ::testing::TestWithParam<TicTocReadMode> {};

TEST_P(TicTocModes, CounterIncrementsAreLinearizable) {
  Machine m;
  TicTocSpace space(m);
  auto counter = Shared<std::uint64_t>::alloc(m, 0);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  const TicTocReadMode mode = GetParam();
  m.run({.threads = kThreads, .body = [&](Context& c) {
    TicTocTx tx(space);
    for (int i = 0; i < kIters; ++i) {
      TicTocReadMode attempt =
          mode == TicTocReadMode::kHybrid ? TicTocReadMode::kOcc : mode;
      for (;;) {
        tx.begin(c, attempt);
        try {
          const auto v = tx.read(c, counter.addr());
          tx.write(c, counter.addr(), v + 1);
          tx.commit(c);
          break;
        } catch (const StmAbort&) {
          if (mode == TicTocReadMode::kHybrid) {
            attempt = TicTocReadMode::kLock;
          }
          c.compute(150);
        }
      }
    }
  }});
  EXPECT_EQ(counter.peek(m), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_P(TicTocModes, MoneyConservationProperty) {
  Machine m;
  TicTocSpace space(m);
  constexpr int kAccounts = 32;
  constexpr std::uint64_t kInitial = 1000;
  auto accounts = SharedArray<std::uint64_t>::alloc(m, kAccounts, kInitial);
  const TicTocReadMode mode = GetParam();
  m.run({.threads = 8, .body = [&](Context& c) {
    TicTocTx tx(space);
    sim::Xoshiro256 rng(99 + c.tid());
    for (int i = 0; i < 150; ++i) {
      const std::size_t from = rng.next_below(kAccounts);
      const std::size_t to = rng.next_below(kAccounts);
      const std::uint64_t amt = rng.next_below(20);
      TicTocReadMode attempt =
          mode == TicTocReadMode::kHybrid ? TicTocReadMode::kOcc : mode;
      for (;;) {
        tx.begin(c, attempt);
        try {
          const auto f = tx.read(c, accounts.addr(from));
          const auto t = tx.read(c, accounts.addr(to));
          if (f >= amt && from != to) {
            tx.write(c, accounts.addr(from), f - amt);
            tx.write(c, accounts.addr(to), t + amt);
          }
          tx.commit(c);
          break;
        } catch (const StmAbort&) {
          if (mode == TicTocReadMode::kHybrid) {
            attempt = TicTocReadMode::kLock;
          }
          c.compute(200);
        }
      }
    }
  }});
  std::uint64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) total += accounts.at(i).peek(m);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kAccounts) * kInitial);
}

INSTANTIATE_TEST_SUITE_P(Modes, TicTocModes,
                         ::testing::Values(TicTocReadMode::kOcc,
                                           TicTocReadMode::kLock,
                                           TicTocReadMode::kHybrid),
                         [](const ::testing::TestParamInfo<TicTocReadMode>&
                                info) { return to_string(info.param); });

TEST(TicToc, LockModeReadOfHeldStripeAbortsNoWait) {
  // No-wait read locking: a stripe held by another transaction aborts the
  // reader immediately (lock_acquire class) instead of deadlocking.
  sim::MachineConfig cfg;
  cfg.sched_quantum = 0;
  Machine m(cfg);
  TicTocSpace space(m);
  auto cell = Shared<std::uint64_t>::alloc(m, 7);
  StmAbortKind kind = StmAbortKind::kReadValidation;
  bool aborted = false;
  m.run({.bodies = {
      [&](Context& c) {
        TicTocTx tx(space);
        tx.begin(c, TicTocReadMode::kLock);
        (void)tx.read(c, cell.addr());  // holds the stripe read lock
        for (int i = 0; i < 100; ++i) c.compute(100);
        tx.commit(c);
      },
      [&](Context& c) {
        c.compute(500);
        TicTocTx tx(space);
        tx.begin(c, TicTocReadMode::kLock);
        try {
          (void)tx.read(c, cell.addr());
          tx.commit(c);
        } catch (const StmAbort& a) {
          aborted = true;
          kind = a.kind;
        }
      },
  }});
  EXPECT_TRUE(aborted);
  EXPECT_EQ(kind, StmAbortKind::kLockAcquire);
}

}  // namespace
}  // namespace tsxhpc::stm
